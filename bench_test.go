// Repository-level benchmark harness: one benchmark per evaluation
// artifact of the paper (see the per-experiment index in DESIGN.md).
// Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks print, once per run, the quantity the paper reports
// (total execution time, buffer counts, engine effort) via b.Log, so a
// -v run doubles as a results table.
package lodim_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"lodim/internal/array"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/loopnest"
	"lodim/internal/schedule"
	"lodim/internal/service"
	"lodim/internal/spacetime"
	"lodim/internal/systolic"
	"lodim/internal/uda"
	"lodim/internal/verify"
)

// BenchmarkExample51Procedure regenerates Example 5.1 (E1): the
// time-optimal conflict-free schedule for 3-D matmul on a linear array
// via Procedure 5.1. Paper: Π° ∈ {[1,μ,1],[μ,1,1]}, t = μ(μ+2)+1.
func BenchmarkExample51Procedure(b *testing.B) {
	for _, mu := range []int64{4, 8} {
		b.Run(fmt.Sprintf("mu=%d", mu), func(b *testing.B) {
			algo := uda.MatMul(mu)
			s := intmat.FromRows([]int64{1, 1, -1})
			var res *schedule.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = schedule.FindOptimal(algo, s, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			if want := mu*(mu+2) + 1; res.Time != want {
				b.Fatalf("t = %d, want %d", res.Time, want)
			}
			b.Logf("μ=%d: t=%d (paper μ(μ+2)+1=%d), Π=%v, %d candidates", mu, res.Time, mu*(mu+2)+1, res.Mapping.Pi, res.Candidates)
		})
	}
}

// BenchmarkExample51ILP regenerates E1 through the paper's integer
// programming formulation (Section 5 / appendix Equation 8.1).
func BenchmarkExample51ILP(b *testing.B) {
	for _, mu := range []int64{4, 8} {
		b.Run(fmt.Sprintf("mu=%d", mu), func(b *testing.B) {
			algo := uda.MatMul(mu)
			s := intmat.FromRows([]int64{1, 1, -1})
			var res *schedule.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = schedule.FindOptimalILP(algo, s, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			if want := mu*(mu+2) + 1; res.Time != want {
				b.Fatalf("t = %d, want %d", res.Time, want)
			}
			b.Logf("μ=%d: t=%d, Π=%v, %d B&B nodes", mu, res.Time, res.Mapping.Pi, res.Candidates)
		})
	}
}

// BenchmarkExample51Buffers regenerates E2: the buffer comparison of
// Example 5.1 — 3 buffers for the optimal design versus 4 for [23]'s
// schedule Π' = [2,1,μ] at μ = 4.
func BenchmarkExample51Buffers(b *testing.B) {
	machine := array.NearestNeighbor(1)
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	var opt, ref *array.Decomposition
	var err error
	for i := 0; i < b.N; i++ {
		opt, err = machine.Decompose(s, algo.D, intmat.Vec(1, 4, 1))
		if err != nil {
			b.Fatal(err)
		}
		ref, err = machine.Decompose(s, algo.D, intmat.Vec(2, 1, 4))
		if err != nil {
			b.Fatal(err)
		}
	}
	if opt.TotalBuffers() != 3 || ref.TotalBuffers() != 4 {
		b.Fatalf("buffers %d/%d, want 3/4", opt.TotalBuffers(), ref.TotalBuffers())
	}
	b.Logf("buffers: optimal=%d, [23]=%d (paper: 3 vs 4)", opt.TotalBuffers(), ref.TotalBuffers())
}

// BenchmarkExample52Procedure regenerates E3/E4: transitive closure,
// t = μ(μ+3)+1 versus [22]'s μ(2μ+3)+1.
func BenchmarkExample52Procedure(b *testing.B) {
	for _, mu := range []int64{4, 8} {
		b.Run(fmt.Sprintf("mu=%d", mu), func(b *testing.B) {
			algo := uda.TransitiveClosure(mu)
			s := intmat.FromRows([]int64{0, 0, 1})
			var res *schedule.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = schedule.FindOptimal(algo, s, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			if want := mu*(mu+3) + 1; res.Time != want {
				b.Fatalf("t = %d, want %d", res.Time, want)
			}
			b.Logf("μ=%d: t=%d vs [22] t'=%d (%.2fx)", mu, res.Time, mu*(2*mu+3)+1,
				float64(mu*(2*mu+3)+1)/float64(res.Time))
		})
	}
}

// BenchmarkExample52ILP is E3 through the ILP engine (appendix Eq 8.2).
func BenchmarkExample52ILP(b *testing.B) {
	algo := uda.TransitiveClosure(4)
	s := intmat.FromRows([]int64{0, 0, 1})
	var res *schedule.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = schedule.FindOptimalILP(algo, s, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Time != 29 {
		b.Fatalf("t = %d, want 29", res.Time)
	}
}

// BenchmarkFigure1 regenerates F1: the feasibility classification of
// conflict vectors in a 2-D index set.
func BenchmarkFigure1(b *testing.B) {
	set := uda.Box(4, 4)
	for i := 0; i < b.N; i++ {
		if _, err := spacetime.RenderIndexSet2D(set, intmat.Vec(1, 1)); err != nil {
			b.Fatal(err)
		}
		if _, err := spacetime.RenderIndexSet2D(set, intmat.Vec(3, 5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates F2: the linear-array block diagram.
func BenchmarkFigure2(b *testing.B) {
	m, err := schedule.NewMapping(uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 4, 1))
	if err != nil {
		b.Fatal(err)
	}
	dec, err := array.NearestNeighbor(1).Decompose(m.S, m.Algo.D, m.Pi)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spacetime.RenderLinearArray(m, dec, []string{"B", "A", "C"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Simulation regenerates F3: the full cycle-accurate
// execution of the μ = 4 matmul design, including the product check.
func BenchmarkFigure3Simulation(b *testing.B) {
	mu := int64(4)
	rng := rand.New(rand.NewSource(3))
	n := int(mu + 1)
	a := make([][]int64, n)
	bb := make([][]int64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int64, n)
		bb[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			a[i][j] = rng.Int63n(19) - 9
			bb[i][j] = rng.Int63n(19) - 9
		}
	}
	m, err := schedule.NewMapping(uda.MatMul(mu), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, mu, 1))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := systolic.NewMatMulProgram(mu, a, bb)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := systolic.New(m, prog, array.NearestNeighbor(1))
	if err != nil {
		b.Fatal(err)
	}
	var run *systolic.RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err = sim.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if run.Cycles != mu*(mu+2)+1 || len(run.Conflicts) != 0 || len(run.Collisions) != 0 {
		b.Fatalf("cycles=%d conflicts=%d collisions=%d", run.Cycles, len(run.Conflicts), len(run.Collisions))
	}
	want := systolic.MatMulReference(a, bb)
	got := systolic.CollectMatMulOutputs(mu, run.Outputs)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				b.Fatal("product mismatch")
			}
		}
	}
}

// BenchmarkHNFExample regenerates X1: the Hermite normal form of the
// Example 2.1 mapping matrix and the conflict decision.
func BenchmarkHNFExample(b *testing.B) {
	T := intmat.FromRows([]int64{1, 7, 1, 1}, []int64{1, 7, 1, 0})
	set := uda.Cube(4, 6)
	for i := 0; i < b.N; i++ {
		res, err := conflict.Decide(T, set)
		if err != nil {
			b.Fatal(err)
		}
		if res.ConflictFree {
			b.Fatal("Example 2.1 matrix reported conflict-free")
		}
	}
}

// BenchmarkProp81 regenerates X2: the closed-form null basis versus the
// general HNF on a normalized 2×5 space mapping.
func BenchmarkProp81(b *testing.B) {
	s := intmat.FromRows(
		[]int64{1, 0, 1, 0, 1},
		[]int64{0, 1, 0, 1, 1},
	)
	pi := intmat.Vec(1, 1, 3, 9, 27)
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := schedule.Prop81NullVectors(s, pi); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hnf", func(b *testing.B) {
		T := s.AppendRow(pi)
		for i := 0; i < b.N; i++ {
			if _, err := intmat.HermiteNormalForm(T); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngines is X3/X5: the formulation-versus-enumeration
// ablation. The ILP effort is insensitive to μ while Procedure 5.1's
// candidate count grows with the optimum's objective value.
//
// The problem instance is built inside each b.Run so every
// sub-benchmark starts from freshly constructed state and nothing is
// shared (or amortized away) across the μ sweep. The ilp/* rows still
// report near-identical B/op and allocs/op across μ — that is genuine:
// Equation 8.1 produces a structure-identical LP whose coefficients,
// not shape, change with μ, so the branch-and-bound trace is the same
// size at every μ.
func BenchmarkEngines(b *testing.B) {
	for _, mu := range []int64{4, 8, 12} {
		b.Run(fmt.Sprintf("procedure/mu=%d", mu), func(b *testing.B) {
			algo := uda.MatMul(mu)
			s := intmat.FromRows([]int64{1, 1, -1})
			b.ResetTimer()
			var res *schedule.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = schedule.FindOptimal(algo, s, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Candidates), "candidates")
		})
		b.Run(fmt.Sprintf("ilp/mu=%d", mu), func(b *testing.B) {
			algo := uda.MatMul(mu)
			s := intmat.FromRows([]int64{1, 1, -1})
			b.ResetTimer()
			var res *schedule.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = schedule.FindOptimalILP(algo, s, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Candidates), "nodes")
		})
	}
}

// BenchmarkBitLevelConvolution is X4a: the 4-D bit-level convolution
// mapped into a 2-D array (Theorem 3.1 regime).
func BenchmarkBitLevelConvolution(b *testing.B) {
	algo := uda.BitLevelConvolution(4, 3, 3)
	s := intmat.FromRows(
		[]int64{1, 0, 0, 0},
		[]int64{0, 1, 0, 0},
	)
	var res *schedule.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = schedule.FindOptimal(algo, s, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("Π=%v t=%d via %s", res.Mapping.Pi, res.Time, res.Conflict.Method)
}

// BenchmarkBitLevelMatMul is X4b: the 5-D bit-level matmul mapped into
// a 2-D array (Theorem 4.7 regime).
func BenchmarkBitLevelMatMul(b *testing.B) {
	algo := uda.BitLevelMatMul(2, 2)
	s := intmat.FromRows(
		[]int64{1, 0, 0, 0, 0},
		[]int64{0, 1, 0, 0, 0},
	)
	var res *schedule.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = schedule.FindOptimal(algo, s, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("Π=%v t=%d via %s", res.Mapping.Pi, res.Time, res.Conflict.Method)
}

// BenchmarkDecideScaling sweeps the conflict decision across algorithm
// dimension and codimension — the shape study for the theorem ladder:
// k = n−1 uses the closed form, k = n−2/n−3 the certificate + fallback,
// and the cost of the exact fallback grows with the β-lattice bounds.
func BenchmarkDecideScaling(b *testing.B) {
	cases := []struct {
		name string
		t    *intmat.Matrix
		mu   int64
	}{
		{"n=3/k=2", intmat.FromRows([]int64{1, 1, -1}, []int64{1, 4, 1}), 4},
		{"n=4/k=2", intmat.FromRows([]int64{1, 7, 1, 1}, []int64{1, 7, 1, 0}), 6},
		{"n=5/k=3", intmat.FromRows([]int64{1, 0, 0, 0, 0}, []int64{0, 1, 0, 0, 0}, []int64{1, 1, 1, 9, 3}), 2},
		{"n=6/k=3", intmat.FromRows(
			[]int64{1, 0, 0, -8, 0, 0},
			[]int64{0, 1, 0, 0, -8, 0},
			[]int64{0, 0, 1, 0, 0, -8}), 7},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			set := uda.Cube(c.t.Cols(), c.mu)
			for i := 0; i < b.N; i++ {
				if _, err := conflict.Decide(c.t, set); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchScaling sweeps Procedure 5.1 across problem size for
// the matmul workload — the empirical form of the paper's complexity
// claim that enumeration effort grows with the optimum's objective.
func BenchmarkSearchScaling(b *testing.B) {
	for _, mu := range []int64{2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("mu=%d", mu), func(b *testing.B) {
			algo := uda.MatMul(mu)
			s := intmat.FromRows([]int64{1, 1, -1})
			var res *schedule.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = schedule.FindOptimal(algo, s, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Candidates), "candidates")
		})
	}
}

// BenchmarkFrontend measures the source-to-algorithm pipeline: parse,
// dependence analysis and uniformization of the matmul statement.
func BenchmarkFrontend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nest, err := loopnest.Parse("mm", []string{"i", "j", "k"}, []int64{4, 4, 4},
			"C[i,j] = C[i,j] + A[i,k] * B[k,j]")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := loopnest.Analyze(nest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitSerialMatMul times the full functional bit-serial
// execution (243 computations, carry chains, product verification
// input) on the 5-D mapping.
func BenchmarkBitSerialMatMul(b *testing.B) {
	algo := uda.BitLevelMatMul(2, 2)
	m, err := schedule.NewMapping(algo,
		intmat.FromRows([]int64{1, 0, 0, 0, 0}, []int64{0, 1, 0, 0, 0}),
		intmat.Vec(1, 1, 1, 9, 3))
	if err != nil {
		b.Fatal(err)
	}
	a := [][]int64{{7, 2, 5}, {1, 6, 3}, {4, 0, 7}}
	bb := [][]int64{{3, 5, 1}, {7, 2, 0}, {6, 4, 2}}
	prog, err := systolic.NewBitMatMulProgram(2, 2, a, bb)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := systolic.New(m, prog, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJointMapping measures the Problem 6.2 engine (X6): the full
// joint (S, Π) search on the two flagship algorithms, sequentially and
// with the outer candidate loop fanned across NumCPU workers. The log
// line reports the search effort — candidates enumerated versus pruned
// before evaluation — and the invariant winner.
func BenchmarkJointMapping(b *testing.B) {
	algos := []*uda.Algorithm{uda.MatMul(4), uda.TransitiveClosure(4)}
	for _, algo := range algos {
		for _, workers := range []int{1, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("%s/workers=%d", algo.Name, workers), func(b *testing.B) {
				opts := &schedule.SpaceOptions{Schedule: schedule.Options{Workers: workers}}
				var res *schedule.JointResult
				var err error
				for i := 0; i < b.N; i++ {
					res, err = schedule.FindJointMapping(algo, 1, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Candidates), "candidates")
				b.ReportMetric(float64(res.Pruned), "pruned")
				b.Logf("t=%d cost=%d procs=%d: %d candidates, %d pruned, S=%v, Π=%v",
					res.Time, res.Cost, res.Processors, res.Candidates, res.Pruned,
					res.Mapping.S.Row(0), res.Mapping.Pi)
			})
		}
	}
}

// BenchmarkPareto measures the multi-objective joint engine (X7): the
// full non-dominated front over (time, processors, buffers, links) at
// slack 0 (time-optimal members only) and slack 2 (widened window).
// The front's head must reproduce the single-objective optimum — the
// multi-objective sweep costs extra bookkeeping, never optimality.
func BenchmarkPareto(b *testing.B) {
	algos := []*uda.Algorithm{uda.MatMul(4), uda.TransitiveClosure(4)}
	for _, algo := range algos {
		joint, err := schedule.FindJointMapping(algo, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, slack := range []int64{0, 2} {
			b.Run(fmt.Sprintf("%s/slack=%d", algo.Name, slack), func(b *testing.B) {
				opts := &schedule.ParetoOptions{
					Space:     schedule.SpaceOptions{Schedule: schedule.Options{Workers: 1}},
					TimeSlack: slack,
				}
				var res *schedule.ParetoResult
				for i := 0; i < b.N; i++ {
					res, err = schedule.FindPareto(algo, 1, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				if got := res.Front[0].Vector[schedule.ObjTime]; got != joint.Time {
					b.Fatalf("front head at t=%d, joint optimum t=%d", got, joint.Time)
				}
				b.ReportMetric(float64(len(res.Front)), "front")
				b.ReportMetric(float64(res.Candidates), "candidates")
				b.Logf("front=%d members, window [*, %d], %d candidates (%d pruned)",
					len(res.Front), res.TimeBound, res.Candidates, res.Pruned)
			})
		}
	}
}

// BenchmarkParetoCertify measures the independent Pareto verifier on
// the widened matmul front — the certification gate every front passes
// before entering a mapserve cache.
func BenchmarkParetoCertify(b *testing.B) {
	algo := uda.MatMul(4)
	res, err := schedule.FindPareto(algo, 1, &schedule.ParetoOptions{TimeSlack: 2})
	if err != nil {
		b.Fatal(err)
	}
	members := make([]verify.ParetoInput, len(res.Front))
	for i, m := range res.Front {
		members[i] = verify.ParetoInput{S: m.Mapping.S, Pi: m.Mapping.Pi, Vector: [verify.ParetoAxes]int64(m.Vector)}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert, err := verify.CertifyPareto(ctx, algo, members, res.TimeBound, &verify.Options{SkipOptimality: true})
		if err != nil {
			b.Fatal(err)
		}
		if !cert.Valid {
			b.Fatalf("front rejected: %s (%s)", cert.FailedWitness, cert.FailedDetail)
		}
	}
}

// BenchmarkServicePareto measures the /v1/pareto fast path: a front
// query answered from the canonical cache with per-request best-member
// selection — canonicalization, LRU lookup, selection, translation.
func BenchmarkServicePareto(b *testing.B) {
	svc := service.New(service.Config{Pool: 1, SearchWorkers: 1})
	defer svc.Close()
	ctx := context.Background()
	req := &service.ParetoRequest{Algorithm: "matmul", Sizes: []int64{3}, Dims: 1, TimeSlack: 2}
	if _, _, err := svc.Pareto(ctx, req); err != nil {
		b.Fatal(err)
	}
	sel := &service.ParetoRequest{Algorithm: "matmul", Sizes: []int64{3}, Dims: 1, TimeSlack: 2,
		Mode: "lex", LexOrder: []string{"processors", "time"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, status, err := svc.Pareto(ctx, sel)
		if err != nil {
			b.Fatal(err)
		}
		if status != service.CacheHit {
			b.Fatalf("status = %s, want hit", status)
		}
	}
}

// BenchmarkSpaceMapping measures the Problem 6.1 engine (X6): the
// space-mapping search under the fixed paper schedules, sequentially
// and at NumCPU workers.
func BenchmarkSpaceMapping(b *testing.B) {
	cases := []struct {
		algo *uda.Algorithm
		pi   intmat.Vector
	}{
		{uda.MatMul(4), intmat.Vec(1, 4, 1)},
		{uda.TransitiveClosure(4), intmat.Vec(4, 1, 1)},
	}
	for _, c := range cases {
		for _, workers := range []int{1, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.algo.Name, workers), func(b *testing.B) {
				opts := &schedule.SpaceOptions{Schedule: schedule.Options{Workers: workers}}
				var res *schedule.SpaceResult
				var err error
				for i := 0; i < b.N; i++ {
					res, err = schedule.FindSpaceMapping(c.algo, c.pi, 1, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Candidates), "candidates")
				b.ReportMetric(float64(res.Pruned), "pruned")
				b.Logf("cost=%d procs=%d wire=%d: %d candidates, %d pruned",
					res.Cost, res.Processors, res.WireLength, res.Candidates, res.Pruned)
			})
		}
	}
}

// BenchmarkServiceCacheHit measures the mapserve fast path: a map
// request answered from the canonical cache — canonicalization plus an
// LRU lookup plus result translation, no search.
func BenchmarkServiceCacheHit(b *testing.B) {
	svc := service.New(service.Config{Pool: 1, SearchWorkers: 1})
	defer svc.Close()
	ctx := context.Background()
	req := &service.MapRequest{Algorithm: "matmul", Sizes: []int64{3}, Dims: 1}
	if _, _, err := svc.Map(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, status, err := svc.Map(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if status != service.CacheHit {
			b.Fatalf("status = %s, want hit", status)
		}
	}
}

// BenchmarkServiceCacheMiss measures the mapserve slow path: the same
// request with the cache flushed every iteration, so each Map call runs
// the full joint (S, Π) search. The hit/miss ratio of the two
// benchmarks is the value of canonical caching.
func BenchmarkServiceCacheMiss(b *testing.B) {
	svc := service.New(service.Config{Pool: 1, SearchWorkers: 1})
	defer svc.Close()
	ctx := context.Background()
	req := &service.MapRequest{Algorithm: "matmul", Sizes: []int64{3}, Dims: 1}
	for i := 0; i < b.N; i++ {
		svc.FlushCache()
		_, status, err := svc.Map(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if status != service.CacheMiss {
			b.Fatalf("status = %s, want miss", status)
		}
	}
}

// BenchmarkExactVsBruteForce quantifies the decision procedures: the
// lattice enumeration versus the definitional brute force on the
// Example 2.1 instance.
func BenchmarkExactVsBruteForce(b *testing.B) {
	T := intmat.FromRows([]int64{1, 7, 1, 1}, []int64{1, 7, 1, 0})
	set := uda.Cube(4, 6)
	b.Run("exact-lattice", func(b *testing.B) {
		a, err := conflict.Analyze(T, set)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := a.ExactDecision(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conflict.BruteForce(T, set)
		}
	})
}
