// Example 5.1, end to end: design the time-optimal linear systolic
// array for 3-D matrix multiplication, compare it against the schedule
// of reference [23] of the paper, render the paper's Figures 2 and 3,
// and execute the design cycle-accurately.
//
//	go run ./examples/matmul [-mu 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"lodim/internal/spacetime"
	"lodim/mapping"
)

func main() {
	mu := flag.Int64("mu", 4, "problem size μ (matrices are (μ+1)×(μ+1))")
	flag.Parse()

	algo := mapping.MatMul(*mu)
	S := mapping.FromRows([]int64{1, 1, -1})
	machine := mapping.NearestNeighbor(1)

	// Optimal design via the ILP formulation of Problem 2.2.
	res, err := mapping.FindOptimalILP(algo, S, &mapping.Options{Machine: machine})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== optimal design (engine %s) ==\n", res.Method)
	fmt.Printf("Π° = %v, total time t = %d = μ(μ+2)+1 = %d\n", res.Mapping.Pi, res.Time, *mu*(*mu+2)+1)
	fmt.Printf("buffers: %v (total %d), single-hop: %v\n\n",
		res.Decomp.Buffers, res.Decomp.TotalBuffers(), res.Decomp.SingleHop())

	// The paper's explicitly reported optimum Π2 = [1, μ, 1] (Figure 2/3
	// are drawn for it); confirm it achieves the same time.
	paperMapping, err := mapping.NewMapping(algo, S, mapping.Vec(1, *mu, 1))
	if err != nil {
		log.Fatal(err)
	}
	chk, err := paperMapping.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper's Π2 = [1 %d 1]: t = %d, %s\n\n", *mu, paperMapping.TotalTime(), chk)

	// Reference [23]: Π' = [2, 1, μ] — conflict-free but slower.
	refMapping, err := mapping.NewMapping(algo, S, mapping.Vec(2, 1, *mu))
	if err != nil {
		log.Fatal(err)
	}
	refChk, err := refMapping.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[23]'s Π' = [2 1 %d]: t = %d = μ(μ+3)+1, %s\n\n", *mu, refMapping.TotalTime(), refChk)

	// Figures 2 and 3 for the paper's Π2.
	dec, err := machine.Decompose(paperMapping.S, algo.D, paperMapping.Pi)
	if err != nil {
		log.Fatal(err)
	}
	fig2, err := spacetime.RenderLinearArray(paperMapping, dec, []string{"B", "A", "C"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig2)
	fig3, err := spacetime.RenderSpaceTime(paperMapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig3)

	// Execute the design with random data and verify.
	rng := rand.New(rand.NewSource(7))
	n := int(*mu + 1)
	a := make([][]int64, n)
	b := make([][]int64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int64, n)
		b[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			a[i][j] = rng.Int63n(19) - 9
			b[i][j] = rng.Int63n(19) - 9
		}
	}
	prog, err := mapping.NewMatMulProgram(*mu, a, b)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := mapping.NewSimulator(paperMapping, prog, machine)
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution: %d cycles, %d PEs, peak parallelism %d, conflicts %d, collisions %d\n",
		run.Cycles, run.Processors, run.MaxOccupancy, len(run.Conflicts), len(run.Collisions))
	got := mapping.CollectMatMulOutputs(*mu, run.Outputs)
	want := mapping.MatMulReference(a, b)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				log.Fatalf("C[%d][%d] mismatch", i, j)
			}
		}
	}
	fmt.Println("product verified ✓")
}
