// Space optimization — the paper's Section 6 future-work problems,
// solved by exhaustive search over bounded-coefficient space mappings:
//
//   - Problem 6.1: given Example 5.1's optimal schedule Π = [1, μ, 1],
//     find the cheapest conflict-free array (processors + wire). The
//     search discovers a 9-PE linear array, beating the 13 PEs of the
//     paper's S = [1,1,−1] at the same optimal time.
//
//   - Problem 6.2: optimize S and Π jointly. For the transitive closure
//     the joint optimum is strictly faster (t = 25) than the paper's
//     fixed-S result (t = 29).
//
//     go run ./examples/spaceopt
package main

import (
	"fmt"
	"log"

	"lodim/mapping"
)

func main() {
	// ---- Problem 6.1 on Example 5.1 ----------------------------------
	mu := int64(4)
	algo := mapping.MatMul(mu)
	pi := mapping.Vec(1, mu, 1)
	fmt.Printf("Problem 6.1: %s with fixed Π = %v\n", algo, pi)

	res, err := mapping.FindSpaceMapping(algo, pi, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  optimal array: S = %v → %d PEs, wire length %d (cost %d)\n",
		res.Mapping.S.Row(0), res.Processors, res.WireLength, res.Cost)

	paper, err := mapping.NewMapping(algo, mapping.FromRows([]int64{1, 1, -1}), pi)
	if err != nil {
		log.Fatal(err)
	}
	paperProcs := map[string]bool{}
	paper.Algo.Set.Each(func(j mapping.Vector) bool {
		paperProcs[paper.Processor(j).String()] = true
		return true
	})
	fmt.Printf("  paper's S = [1 1 -1] uses %d PEs at the same t = %d\n\n", len(paperProcs), res.Time)

	if free, w := mapping.BruteForce(res.Mapping.T, algo.Set); !free {
		log.Fatalf("winner has conflict %v", w)
	}

	// ---- Problem 6.2 on both example algorithms -----------------------
	for _, c := range []struct {
		algo  *mapping.Algorithm
		fixed int64 // the paper's fixed-S optimum
	}{
		{mapping.MatMul(4), 25},
		{mapping.TransitiveClosure(4), 29},
	} {
		joint, err := mapping.FindJointMapping(c.algo, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ties"
		if joint.Time < c.fixed {
			verdict = "beats"
		}
		fmt.Printf("Problem 6.2: %-20s joint optimum t = %d (%s the fixed-S optimum %d)\n",
			c.algo.Name+":", joint.Time, verdict, c.fixed)
		fmt.Printf("  S = %v, Π = %v, %d PEs, wire %d\n",
			joint.Mapping.S.Row(0), joint.Mapping.Pi, joint.Processors, joint.WireLength)
		if free, w := mapping.BruteForce(joint.Mapping.T, c.algo.Set); !free {
			log.Fatalf("joint winner has conflict %v", w)
		}
	}
	fmt.Println("\nall winners verified conflict-free by brute force ✓")
}
