// Quickstart: map 3-D matrix multiplication onto a linear processor
// array, find the time-optimal conflict-free schedule, and execute real
// data through the simulated array.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lodim/mapping"
)

func main() {
	// The algorithm: C = A·B as a uniform dependence algorithm over the
	// cube 0 ≤ j1, j2, j3 ≤ μ with dependence matrix I (paper Ex. 3.1).
	const mu = 4
	algo := mapping.MatMul(mu)
	fmt.Println("algorithm:", algo)

	// The space mapping: processor = j1 + j2 − j3 (a linear array).
	S := mapping.FromRows([]int64{1, 1, -1})

	// Find the time-optimal conflict-free schedule (Procedure 5.1).
	res, err := mapping.FindOptimal(algo, S, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mapping.DesignReport(res))

	// Push real matrices through the simulated array and check C = A·B.
	a := [][]int64{
		{1, 2, 0, -1, 3},
		{0, 1, 1, 2, -2},
		{4, 0, 1, 0, 1},
		{-1, 1, 0, 1, 0},
		{2, -3, 1, 0, 1},
	}
	b := [][]int64{
		{1, 0, 2, 1, -1},
		{0, 3, 1, 0, 2},
		{1, 1, 0, -2, 0},
		{2, 0, 1, 1, 1},
		{0, -1, 0, 3, 2},
	}
	prog, err := mapping.NewMatMulProgram(mu, a, b)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := mapping.NewSimulator(res.Mapping, prog, mapping.NearestNeighbor(1))
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d computations on %d PEs in %d cycles; conflicts=%d collisions=%d\n",
		run.Computations, run.Processors, run.Cycles, len(run.Conflicts), len(run.Collisions))

	got := mapping.CollectMatMulOutputs(mu, run.Outputs)
	want := mapping.MatMulReference(a, b)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				log.Fatalf("C[%d][%d] = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	fmt.Println("C = A·B verified against the sequential reference ✓")
}
