// The full RAB-style pipeline of the paper's introduction: a nested
// loop program written as text is (1) analyzed and uniformized into a
// uniform dependence algorithm, (2) expanded to bit level, and (3)
// mapped — time-optimally and conflict-free — into a 2-dimensional
// processor array, the exact flow the paper motivates ("maps often a
// four or five dimensional bit level algorithm into a 2-dimensional
// bit level processor array").
//
//	go run ./examples/frontend
package main

import (
	"fmt"
	"log"

	"lodim/internal/systolic"
	"lodim/mapping"
)

func main() {
	// Step 0: the program, as the user would write it.
	const stmt = "C[i,j] = C[i,j] + A[i,k] * B[k,j]"
	vars := []string{"i", "j", "k"}
	bounds := []int64{2, 2, 2}
	fmt.Printf("program: for %v in %v:  %s\n\n", vars, bounds, stmt)

	// Step 1: dependence analysis + uniformization.
	nest, err := mapping.ParseNest("matmul", vars, bounds, stmt)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := mapping.AnalyzeNest(nest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived dependencies:")
	for _, d := range analysis.Dependencies {
		fmt.Printf("  %v  (%s, from %s)\n", d.Vector, d.Kind, d.Array)
	}
	word := analysis.Algorithm
	fmt.Printf("word-level algorithm: %s\nD =\n%v\n\n", word, word.D)

	// Step 2: bit-level expansion (2-bit operands for a small demo).
	bit := mapping.BitExpand(word, 2)
	fmt.Printf("bit-level algorithm: %s (n = %d, m = %d)\nD =\n%v\n\n", bit, bit.Dim(), bit.NumDeps(), bit.D)

	// Step 3: map the 5-D bit-level algorithm into a 2-D array with
	// PE = (i, j) — the Theorem 4.7 regime (k = n−2).
	S := mapping.FromRows(
		[]int64{1, 0, 0, 0, 0},
		[]int64{0, 1, 0, 0, 0},
	)
	res, err := mapping.FindOptimal(bit, S, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D array mapping: Π° = %v, t = %d, certificate %s (%d candidates)\n",
		res.Mapping.Pi, res.Time, res.Conflict.Method, res.Candidates)

	// Cross-checks: brute force + cycle-accurate run.
	if free, w := mapping.BruteForce(res.Mapping.T, bit.Set); !free {
		log.Fatalf("conflict found by brute force: %v", w)
	}
	sim, err := mapping.NewSimulator(res.Mapping, &systolic.ChecksumProgram{Streams: bit.NumDeps()}, nil)
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution: %d computations on %d PEs in %d cycles, conflicts %d\n",
		run.Computations, run.Processors, run.Cycles, len(run.Conflicts))
	if len(run.Conflicts) != 0 {
		log.Fatal("conflicts observed")
	}
	fmt.Println("pipeline verified ✓")
}
