// Example 5.2, end to end: the reindexed transitive closure algorithm
// mapped to a linear array with S = [0,0,1]. The optimizer recovers the
// paper's Π° = [μ+1, 1, 1] with total time μ(μ+3)+1, improving the
// earlier result t' = μ(2μ+3)+1 of reference [22], and the simulator
// confirms a conflict- and collision-free execution.
//
//	go run ./examples/transitive [-mu 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"lodim/internal/systolic"
	"lodim/mapping"
)

func main() {
	mu := flag.Int64("mu", 4, "problem size μ")
	flag.Parse()

	algo := mapping.TransitiveClosure(*mu)
	S := mapping.FromRows([]int64{0, 0, 1})
	fmt.Println("algorithm:", algo)
	fmt.Printf("dependence matrix D:\n%v\n\n", algo.D)

	// Both engines; they must agree.
	proc, err := mapping.FindOptimal(algo, S, nil)
	if err != nil {
		log.Fatal(err)
	}
	ilp, err := mapping.FindOptimalILP(algo, S, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Procedure 5.1: Π° = %v, t = %d (%d candidates)\n", proc.Mapping.Pi, proc.Time, proc.Candidates)
	fmt.Printf("ILP:           Π° = %v, t = %d (%d B&B nodes)\n", ilp.Mapping.Pi, ilp.Time, ilp.Candidates)
	if proc.Time != ilp.Time {
		log.Fatalf("engines disagree: %d vs %d", proc.Time, ilp.Time)
	}

	paperT := *mu*(*mu+3) + 1
	refT := *mu*(2**mu+3) + 1
	fmt.Printf("\npaper closed form μ(μ+3)+1 = %d; [22]'s heuristic achieved μ(2μ+3)+1 = %d (%.2fx slower)\n",
		paperT, refT, float64(refT)/float64(paperT))
	if proc.Time != paperT {
		log.Fatalf("measured optimum %d != paper %d", proc.Time, paperT)
	}

	// Conflict vector of the winning schedule (Equation 3.7 family).
	gamma, err := mapping.UniqueConflictVector(proc.Mapping.T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict vector γ = %v, feasible: %v\n\n", gamma, mapping.Feasible(algo.Set, gamma))

	// Cycle-accurate run with the dataflow checksum program.
	sim, err := mapping.NewSimulator(proc.Mapping, &systolic.ChecksumProgram{Streams: algo.NumDeps()}, mapping.NearestNeighbor(1))
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution: %d cycles on %d PEs (linear array), conflicts %d, collisions %d\n",
		run.Cycles, run.Processors, len(run.Conflicts), len(run.Collisions))
	if len(run.Conflicts) != 0 || len(run.Collisions) != 0 {
		log.Fatal("unexpected conflicts/collisions")
	}
	fmt.Println("conflict-free execution confirmed ✓")
}
