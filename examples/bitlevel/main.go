// Bit-level mapping study: the paper's motivating use case is mapping
// 4- and 5-dimensional bit-level algorithms into 2-dimensional
// processor arrays (GAPP/DAP/MPP-class machines). This example maps
//
//   - the 4-D bit-level convolution through the k = n−1 machinery
//     (Theorem 3.1: a unique conflict vector), and
//   - the 5-D bit-level matrix multiplication through the k = n−2
//     machinery (Theorem 4.7 certificates on the Hermite multiplier),
//
// then cross-checks the winning mappings against brute force.
//
//	go run ./examples/bitlevel
package main

import (
	"fmt"
	"log"

	"lodim/internal/systolic"
	"lodim/mapping"
)

func main() {
	// --- 4-D bit-level convolution into a 2-D array -------------------
	conv := mapping.BitLevelConvolution(4, 3, 3)
	fmt.Println("algorithm:", conv)
	fmt.Printf("dependence matrix D (word deps + bit recurrences + carry):\n%v\n\n", conv.D)

	sConv := mapping.FromRows(
		[]int64{1, 0, 0, 0}, // PE row = output index i
		[]int64{0, 1, 0, 0}, // PE column = tap index k
	)
	resConv, err := mapping.FindOptimal(conv, sConv, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D array mapping: Π° = %v, t = %d, certificate %s\n", resConv.Mapping.Pi, resConv.Time, resConv.Conflict.Method)
	if free, w := mapping.BruteForce(resConv.Mapping.T, conv.Set); !free {
		log.Fatalf("brute force found conflict %v", w)
	}
	fmt.Println("brute-force cross-check: conflict-free ✓")

	run := simulate(resConv.Mapping, conv.NumDeps())
	fmt.Printf("execution: %d cycles on %d PEs (%d-point index set), conflicts %d\n\n",
		run.Cycles, run.Processors, run.Computations, len(run.Conflicts))

	// --- 5-D bit-level matmul into a 2-D array ------------------------
	mm := mapping.BitLevelMatMul(2, 2)
	fmt.Println("algorithm:", mm)
	sMM := mapping.FromRows(
		[]int64{1, 0, 0, 0, 0}, // PE row = result row i
		[]int64{0, 1, 0, 0, 0}, // PE column = result column j
	)
	resMM, err := mapping.FindOptimal(mm, sMM, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D array mapping: Π° = %v, t = %d, certificate %s\n", resMM.Mapping.Pi, resMM.Time, resMM.Conflict.Method)

	// Real bit-serial arithmetic: 3-bit operands flow through the array
	// bit by bit; carries chain along the (0,0,0,1,-1) dependence.
	a := [][]int64{{7, 2, 5}, {1, 6, 3}, {4, 0, 7}}
	b := [][]int64{{3, 5, 1}, {7, 2, 0}, {6, 4, 2}}
	bitProg, err := systolic.NewBitMatMulProgram(2, 2, a, b)
	if err != nil {
		log.Fatal(err)
	}
	bitSim, err := mapping.NewSimulator(resMM.Mapping, bitProg, nil)
	if err != nil {
		log.Fatal(err)
	}
	bitRun, err := bitSim.Run()
	if err != nil {
		log.Fatal(err)
	}
	got := systolic.CollectBitMatMul(2, bitRun.Outputs)
	want := mapping.MatMulReference(a, b)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				log.Fatalf("bit-serial C[%d][%d] = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	fmt.Println("bit-serial arithmetic verified: C = A·B computed bit by bit through the carry chains ✓")

	// The schedule must serialize the 3-D (k, l, p) sub-box on each PE:
	// conflict vectors live entirely in the null space of S.
	h, err := mapping.HermiteNormalForm(resMM.Mapping.T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conflict-vector lattice basis (trailing columns of U):")
	for _, u := range h.NullBasis() {
		fmt.Printf("  %v (feasible: %v)\n", u, mapping.Feasible(mm.Set, u))
	}
	if free, w := mapping.BruteForce(resMM.Mapping.T, mm.Set); !free {
		log.Fatalf("brute force found conflict %v", w)
	}
	fmt.Println("brute-force cross-check: conflict-free ✓")

	run = simulate(resMM.Mapping, mm.NumDeps())
	fmt.Printf("execution: %d cycles on %d PEs (%d-point index set), conflicts %d\n",
		run.Cycles, run.Processors, run.Computations, len(run.Conflicts))
}

func simulate(m *mapping.Mapping, streams int) *mapping.RunResult {
	sim, err := mapping.NewSimulator(m, &systolic.ChecksumProgram{Streams: streams}, nil)
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	return run
}
