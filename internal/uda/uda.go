// Package uda models uniform dependence algorithms — the algorithm
// class of Shang & Fortes (1990), Definition 2.1.
//
// A uniform dependence algorithm is characterized structurally by the
// pair (J, D): J is the index set (here always a constant-bounded box,
// Assumption 2.1 / Equation 2.5 of the paper: 0 ≤ j_i ≤ μ_i) and D is
// the n×m dependence matrix whose columns are the constant dependence
// vectors. The computation at index point j̄ reads the values produced
// at j̄ − d̄_i for every dependence column d̄_i that stays inside J.
//
// The package also carries the algorithm library used by the paper's
// examples and by the bit-level motivation of its introduction:
// matrix multiplication (Example 3.1/5.1), the reindexed transitive
// closure (Example 3.2/5.2), convolution, LU decomposition, a 2-D
// stencil, and 4-/5-dimensional bit-level expansions of convolution and
// matrix multiplication.
package uda

import (
	"errors"
	"fmt"

	"lodim/internal/intmat"
)

// IndexSet is a constant-bounded index set
//
//	J = { j ∈ Z^n : 0 ≤ j_i ≤ μ_i }
//
// (Equation 2.5). Upper holds the problem-size variables μ_i ≥ 1.
type IndexSet struct {
	Upper intmat.Vector
}

// Box returns the index set with the given upper bounds.
func Box(upper ...int64) IndexSet {
	return IndexSet{Upper: intmat.Vec(upper...)}
}

// Cube returns the n-dimensional index set with every bound equal to μ.
func Cube(n int, mu int64) IndexSet {
	u := make(intmat.Vector, n)
	for i := range u {
		u[i] = mu
	}
	return IndexSet{Upper: u}
}

// Dim returns the dimension n of the index set.
func (s IndexSet) Dim() int { return len(s.Upper) }

// Validate checks that every bound is a positive integer, as required
// by Equation 2.5 (μ_i ∈ N⁺).
func (s IndexSet) Validate() error {
	if len(s.Upper) == 0 {
		return errors.New("uda: empty index set")
	}
	for i, u := range s.Upper {
		if u < 1 {
			return fmt.Errorf("uda: bound μ_%d = %d, want ≥ 1", i+1, u)
		}
	}
	return nil
}

// Contains reports whether j lies in the index set.
func (s IndexSet) Contains(j intmat.Vector) bool {
	if len(j) != len(s.Upper) {
		return false
	}
	for i, x := range j {
		if x < 0 || x > s.Upper[i] {
			return false
		}
	}
	return true
}

// Size returns |J| = ∏(μ_i + 1). The product is computed in int64 and
// can wrap for very large bounds; callers enforcing a ceiling must use
// SizeExceeds, which saturates instead of overflowing.
func (s IndexSet) Size() int64 {
	size := int64(1)
	for _, u := range s.Upper {
		size *= u + 1
	}
	return size
}

// SizeExceeds reports whether |J| = ∏(μ_i + 1) > limit. Unlike Size,
// the partial product cannot wrap: it answers true as soon as the
// running product would pass limit, for any μ_i up to MaxInt64.
func (s IndexSet) SizeExceeds(limit int64) bool {
	if limit < 1 {
		return true // |J| ≥ 1 always
	}
	size := int64(1)
	for _, u := range s.Upper {
		f := u + 1
		if f <= 0 || size > limit/f {
			return true
		}
		size *= f
	}
	return false
}

// Each calls f for every index point in lexicographic order, stopping
// early if f returns false. It reports whether the iteration ran to
// completion.
func (s IndexSet) Each(f func(j intmat.Vector) bool) bool {
	n := s.Dim()
	j := make(intmat.Vector, n)
	for {
		if !f(j.Clone()) {
			return false
		}
		// Odometer increment.
		i := n - 1
		for i >= 0 {
			j[i]++
			if j[i] <= s.Upper[i] {
				break
			}
			j[i] = 0
			i--
		}
		if i < 0 {
			return true
		}
	}
}

// maxPointsPrealloc caps the Points preallocation: beyond it the slice
// grows by append instead of one up-front make.
const maxPointsPrealloc = 1 << 20

// pointsCap returns the preallocation capacity Points may safely pass
// to make: |J| when it is small, maxPointsPrealloc otherwise. Size
// wraps int64 for large bounds, and a wrapped negative capacity panics
// makeslice — so the clamp must go through SizeExceeds, which saturates
// instead of overflowing.
func (s IndexSet) pointsCap() int64 {
	if s.SizeExceeds(maxPointsPrealloc) {
		return maxPointsPrealloc
	}
	return s.Size()
}

// Points returns all index points in lexicographic order. Use only for
// small index sets (tests, brute-force validation).
func (s IndexSet) Points() []intmat.Vector {
	pts := make([]intmat.Vector, 0, s.pointsCap())
	s.Each(func(j intmat.Vector) bool {
		pts = append(pts, j)
		return true
	})
	return pts
}

// Algorithm is a uniform dependence algorithm characterized by (J, D).
type Algorithm struct {
	Name string
	Set  IndexSet
	// D is the n×m dependence matrix; column i is dependence vector d̄_i.
	D *intmat.Matrix
}

// Dim returns the algorithm dimension n.
func (a *Algorithm) Dim() int { return a.Set.Dim() }

// NumDeps returns m, the number of dependence vectors.
func (a *Algorithm) NumDeps() int { return a.D.Cols() }

// Dep returns dependence vector d̄_i (0-based).
func (a *Algorithm) Dep(i int) intmat.Vector { return a.D.Col(i) }

// Validate checks structural consistency: a non-empty valid index set
// and a dependence matrix with n rows and no zero columns (a zero
// dependence would make the computation depend on itself).
func (a *Algorithm) Validate() error {
	if err := a.Set.Validate(); err != nil {
		return err
	}
	if a.D == nil {
		return fmt.Errorf("uda: algorithm %q has no dependence matrix", a.Name)
	}
	if a.D.Rows() != a.Set.Dim() {
		return fmt.Errorf("uda: algorithm %q: D has %d rows, index set dimension is %d", a.Name, a.D.Rows(), a.Set.Dim())
	}
	for i := 0; i < a.D.Cols(); i++ {
		if a.D.Col(i).IsZero() {
			return fmt.Errorf("uda: algorithm %q: dependence vector %d is zero", a.Name, i+1)
		}
	}
	return nil
}

// Predecessors returns the in-set dependence sources j̄ − d̄_i of point j.
func (a *Algorithm) Predecessors(j intmat.Vector) []intmat.Vector {
	var preds []intmat.Vector
	for i := 0; i < a.NumDeps(); i++ {
		p := j.Sub(a.Dep(i))
		if a.Set.Contains(p) {
			preds = append(preds, p)
		}
	}
	return preds
}

func (a *Algorithm) String() string {
	return fmt.Sprintf("%s: n=%d, m=%d, μ=%v", a.Name, a.Dim(), a.NumDeps(), a.Set.Upper)
}
