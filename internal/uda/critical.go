package uda

import (
	"fmt"

	"lodim/internal/intmat"
)

// This file computes dataflow-limit quantities of an algorithm: the
// free (ASAP) schedule and the critical path. They bound what any
// linear schedule — indeed any schedule at all with unit-time
// computations — can achieve: t ≥ CriticalPath(algo), making them the
// natural baseline column next to the achieved linear-schedule times in
// the experiment tables.

// FreeSchedule returns the earliest firing time of every index point
// under pure dataflow execution (unbounded processors): level(j̄) =
// 1 + max over in-set predecessors, with sources at level 1. The map is
// keyed by the point's String(). Use only on enumerable index sets.
func (a *Algorithm) FreeSchedule() (map[string]int64, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	level := make(map[string]int64, a.Set.Size())
	// Lexicographic iteration is NOT generally a topological order of
	// the dependence graph (dependence vectors may have negative
	// entries), so iterate to a fixed point; each pass finalizes at
	// least one more level, and the level values are bounded by |J|.
	// For lex-positive dependence matrices one pass suffices.
	lexPositiveDeps := true
	for i := 0; i < a.NumDeps(); i++ {
		d := a.Dep(i)
		pos := false
		for _, x := range d {
			if x > 0 {
				pos = true
				break
			}
			if x < 0 {
				break
			}
		}
		if !pos {
			lexPositiveDeps = false
			break
		}
	}
	passes := 1
	if !lexPositiveDeps {
		passes = int(a.Set.Size())
	}
	for p := 0; p < passes; p++ {
		changed := false
		a.Set.Each(func(j intmat.Vector) bool {
			lv := int64(1)
			for i := 0; i < a.NumDeps(); i++ {
				src := j.Sub(a.Dep(i))
				if !a.Set.Contains(src) {
					continue
				}
				if sl := level[src.String()]; sl+1 > lv {
					lv = sl + 1
				}
			}
			if lv != level[j.String()] {
				level[j.String()] = lv
				changed = true
			}
			return true
		})
		if !changed {
			break
		}
		if p == passes-1 && changed && !lexPositiveDeps {
			return nil, fmt.Errorf("uda: %s: free schedule did not converge — the dependence graph has a cycle", a.Name)
		}
	}
	return level, nil
}

// CriticalPath returns the length of the longest dependence chain in
// the algorithm — the minimum possible total execution time with
// unit-time computations, achieved by the free schedule on unboundedly
// many processors. Any valid linear schedule satisfies
// TotalTime(Π) ≥ CriticalPath.
func (a *Algorithm) CriticalPath() (int64, error) {
	levels, err := a.FreeSchedule()
	if err != nil {
		return 0, err
	}
	var max int64
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	return max, nil
}
