package uda

import (
	"testing"

	"lodim/internal/intmat"
)

// TestCriticalPathMatMul: with D = I over the μ-cube the longest chain
// walks all three axes: 3μ + 1 levels.
func TestCriticalPathMatMul(t *testing.T) {
	for _, mu := range []int64{2, 3, 4} {
		cp, err := MatMul(mu).CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		if want := 3*mu + 1; cp != want {
			t.Errorf("μ=%d: critical path %d, want %d", mu, cp, want)
		}
	}
}

// TestCriticalPathEditDistance: the (1,1) diagonal dominates:
// μ1 + μ2 + 1 levels.
func TestCriticalPathEditDistance(t *testing.T) {
	cp, err := EditDistance(3, 5).CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 9 {
		t.Errorf("critical path %d, want 9", cp)
	}
}

// TestFreeScheduleLevels: sources at level 1, levels increase along
// dependencies.
func TestFreeScheduleLevels(t *testing.T) {
	a := MatMul(2)
	levels, err := a.FreeSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if levels[intmat.Vec(0, 0, 0).String()] != 1 {
		t.Errorf("origin level %d, want 1", levels[intmat.Vec(0, 0, 0).String()])
	}
	if levels[intmat.Vec(2, 2, 2).String()] != 7 {
		t.Errorf("corner level %d, want 7", levels[intmat.Vec(2, 2, 2).String()])
	}
	// Monotone along every dependence.
	a.Set.Each(func(j intmat.Vector) bool {
		for i := 0; i < a.NumDeps(); i++ {
			src := j.Sub(a.Dep(i))
			if a.Set.Contains(src) && levels[j.String()] <= levels[src.String()] {
				t.Errorf("level not increasing along dependence at %v", j)
				return false
			}
		}
		return true
	})
}

// TestCriticalPathNegativeEntries: transitive closure has dependence
// vectors with negative entries, exercising the fixed-point path.
func TestCriticalPathNegativeEntries(t *testing.T) {
	a := TransitiveClosure(3)
	cp, err := a.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: bounded by |J| and at least the μ+1 chain along d̄_1.
	if cp < 4 || cp > a.Set.Size() {
		t.Errorf("critical path %d out of sane range", cp)
	}
	// Any valid linear schedule dominates the critical path — check the
	// paper's optimum.
	piTime := int64(3*(3+3) + 1)
	if piTime < cp {
		t.Errorf("linear schedule t=%d below the dataflow bound %d", piTime, cp)
	}
}

// TestCriticalPathBoundsLibrary: the dataflow bound never exceeds the
// (schedule-dependent) box diameter bound and is ≥ 1.
func TestCriticalPathBoundsLibrary(t *testing.T) {
	for _, a := range Library() {
		if a.Set.Size() > 3000 {
			continue
		}
		cp, err := a.CriticalPath()
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		if cp < 1 || cp > a.Set.Size() {
			t.Errorf("%s: critical path %d out of range", a.Name, cp)
		}
	}
}
