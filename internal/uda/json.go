package uda

import (
	"encoding/json"
	"fmt"

	"lodim/internal/intmat"
)

// algorithmJSON is the stable on-disk representation of an Algorithm:
//
//	{
//	  "name": "matmul",
//	  "bounds": [4, 4, 4],
//	  "dependencies": [[1,0,0], [0,1,0], [0,0,1]]
//	}
//
// Dependence vectors are listed as rows (one vector per entry), the
// transpose of the paper's column convention, because a list of vectors
// is the natural JSON shape.
type algorithmJSON struct {
	Name         string    `json:"name"`
	Bounds       []int64   `json:"bounds"`
	Dependencies [][]int64 `json:"dependencies"`
}

// MarshalJSON implements json.Marshaler.
func (a *Algorithm) MarshalJSON() ([]byte, error) {
	out := algorithmJSON{Name: a.Name, Bounds: a.Set.Upper}
	for i := 0; i < a.NumDeps(); i++ {
		out.Dependencies = append(out.Dependencies, a.Dep(i))
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, validating the decoded
// algorithm.
func (a *Algorithm) UnmarshalJSON(data []byte) error {
	var in algorithmJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	n := len(in.Bounds)
	if n == 0 {
		return fmt.Errorf("uda: algorithm %q has no bounds", in.Name)
	}
	d := intmat.New(n, len(in.Dependencies))
	for c, dep := range in.Dependencies {
		if len(dep) != n {
			return fmt.Errorf("uda: algorithm %q: dependence %d has %d entries, want %d", in.Name, c+1, len(dep), n)
		}
		d.SetCol(c, dep)
	}
	a.Name = in.Name
	a.Set = IndexSet{Upper: append(intmat.Vector{}, in.Bounds...)}
	a.D = d
	return a.Validate()
}
