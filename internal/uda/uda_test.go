package uda

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"lodim/internal/intmat"
)

func TestBoxAndCube(t *testing.T) {
	b := Box(2, 3, 4)
	if b.Dim() != 3 || b.Upper[2] != 4 {
		t.Errorf("Box = %v", b)
	}
	c := Cube(4, 6)
	if c.Dim() != 4 {
		t.Fatalf("Cube dim %d", c.Dim())
	}
	for i, u := range c.Upper {
		if u != 6 {
			t.Errorf("Cube bound %d = %d", i, u)
		}
	}
}

func TestIndexSetValidate(t *testing.T) {
	if err := Box(1, 2).Validate(); err != nil {
		t.Errorf("valid box rejected: %v", err)
	}
	if err := Box().Validate(); err == nil {
		t.Error("empty box accepted")
	}
	if err := Box(0).Validate(); err == nil {
		t.Error("zero bound accepted")
	}
	if err := Box(3, -1).Validate(); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestContains(t *testing.T) {
	s := Box(2, 3)
	cases := []struct {
		j    intmat.Vector
		want bool
	}{
		{intmat.Vec(0, 0), true},
		{intmat.Vec(2, 3), true},
		{intmat.Vec(3, 0), false},
		{intmat.Vec(0, 4), false},
		{intmat.Vec(-1, 0), false},
		{intmat.Vec(1), false},
		{intmat.Vec(1, 1, 1), false},
	}
	for _, c := range cases {
		if got := s.Contains(c.j); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.j, got, c.want)
		}
	}
}

func TestSizeAndPoints(t *testing.T) {
	s := Box(1, 2)
	if s.Size() != 6 {
		t.Errorf("Size = %d, want 6", s.Size())
	}
	pts := s.Points()
	if int64(len(pts)) != s.Size() {
		t.Fatalf("Points count %d, want %d", len(pts), s.Size())
	}
	// Lexicographic order with last coordinate fastest.
	if !pts[0].Equal(intmat.Vec(0, 0)) || !pts[1].Equal(intmat.Vec(0, 1)) || !pts[5].Equal(intmat.Vec(1, 2)) {
		t.Errorf("Points order wrong: %v", pts)
	}
	// All distinct and contained.
	seen := map[string]bool{}
	for _, p := range pts {
		k := p.String()
		if seen[k] {
			t.Errorf("duplicate point %v", p)
		}
		seen[k] = true
		if !s.Contains(p) {
			t.Errorf("point %v outside set", p)
		}
	}
}

func TestSizeExceeds(t *testing.T) {
	cases := []struct {
		upper []int64
		limit int64
		want  bool
	}{
		{[]int64{1, 2}, 6, false}, // |J| = 6, exactly at the limit
		{[]int64{1, 2}, 5, true},  // one past it
		{[]int64{1, 2}, 0, true},  // |J| ≥ 1 beats any non-positive limit
		{[]int64{1, 2}, -1, true},
		// ∏(μ_i+1) = 65536^4 = 2^64 wraps int64 to exactly 0 — Size lies,
		// SizeExceeds must not.
		{[]int64{65535, 65535, 65535, 65535}, 1 << 20, true},
		// μ_i+1 itself wraps negative.
		{[]int64{math.MaxInt64, 1}, math.MaxInt64, true},
		// Large but in-range products still compare exactly.
		{[]int64{math.MaxInt64 - 1}, math.MaxInt64, false},
		{[]int64{1 << 30, 1 << 30}, math.MaxInt64, false},
	}
	for _, c := range cases {
		s := Box(c.upper...)
		if got := s.SizeExceeds(c.limit); got != c.want {
			t.Errorf("Box(%v).SizeExceeds(%d) = %v, want %v", c.upper, c.limit, got, c.want)
		}
	}
}

func TestEachEarlyStop(t *testing.T) {
	s := Box(3, 3)
	count := 0
	complete := s.Each(func(j intmat.Vector) bool {
		count++
		return count < 5
	})
	if complete {
		t.Error("Each reported completion despite early stop")
	}
	if count != 5 {
		t.Errorf("Each visited %d points after stop at 5", count)
	}
}

// Property: Size always equals the number of enumerated points for
// random small boxes.
func TestSizeMatchesEnumeration(t *testing.T) {
	f := func(a, b uint8) bool {
		s := Box(int64(a%4)+1, int64(b%4)+1)
		return s.Size() == int64(len(s.Points()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithmAccessors(t *testing.T) {
	a := MatMul(4)
	if a.Dim() != 3 || a.NumDeps() != 3 {
		t.Errorf("MatMul dims: n=%d m=%d", a.Dim(), a.NumDeps())
	}
	if !a.Dep(0).Equal(intmat.Vec(1, 0, 0)) {
		t.Errorf("Dep(0) = %v", a.Dep(0))
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestAlgorithmValidate(t *testing.T) {
	for _, a := range Library() {
		if err := a.Validate(); err != nil {
			t.Errorf("library algorithm %q invalid: %v", a.Name, err)
		}
	}
	bad := &Algorithm{Name: "bad-rows", Set: Cube(3, 2), D: intmat.FromRows([]int64{1, 0}, []int64{0, 1})}
	if err := bad.Validate(); err == nil {
		t.Error("row-mismatched D accepted")
	}
	zero := &Algorithm{Name: "bad-zero", Set: Cube(2, 2), D: intmat.New(2, 1)}
	if err := zero.Validate(); err == nil {
		t.Error("zero dependence accepted")
	}
	nodep := &Algorithm{Name: "bad-nil", Set: Cube(2, 2)}
	if err := nodep.Validate(); err == nil {
		t.Error("nil D accepted")
	}
}

func TestTransitiveClosureMatchesPaper(t *testing.T) {
	a := TransitiveClosure(4)
	// Equation 3.6 columns.
	want := []intmat.Vector{
		intmat.Vec(0, 0, 1),
		intmat.Vec(0, 1, 0),
		intmat.Vec(1, -1, -1),
		intmat.Vec(1, -1, 0),
		intmat.Vec(1, 0, -1),
	}
	if a.NumDeps() != len(want) {
		t.Fatalf("m = %d, want %d", a.NumDeps(), len(want))
	}
	for i, w := range want {
		if !a.Dep(i).Equal(w) {
			t.Errorf("d_%d = %v, want %v", i+1, a.Dep(i), w)
		}
	}
}

func TestAlgorithmJSONRoundTrip(t *testing.T) {
	for _, a := range Library() {
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("%s: marshal: %v", a.Name, err)
		}
		var back Algorithm
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", a.Name, err)
		}
		if back.Name != a.Name || !back.Set.Upper.Equal(a.Set.Upper) || !back.D.Equal(a.D) {
			t.Errorf("%s: round trip mismatch:\n%v\nvs\n%v", a.Name, a, &back)
		}
	}
}

func TestAlgorithmJSONErrors(t *testing.T) {
	cases := []string{
		`{"name":"x","bounds":[],"dependencies":[[1]]}`,
		`{"name":"x","bounds":[3],"dependencies":[[1,2]]}`,
		`{"name":"x","bounds":[3],"dependencies":[[0]]}`,
		`{"name":"x","bounds":[0],"dependencies":[[1]]}`,
		`not json`,
	}
	for _, c := range cases {
		var a Algorithm
		if err := json.Unmarshal([]byte(c), &a); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// A valid document decodes.
	var a Algorithm
	doc := `{"name":"mm","bounds":[4,4,4],"dependencies":[[1,0,0],[0,1,0],[0,0,1]]}`
	if err := json.Unmarshal([]byte(doc), &a); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	if a.NumDeps() != 3 || a.Dim() != 3 {
		t.Errorf("decoded shape n=%d m=%d", a.Dim(), a.NumDeps())
	}
}

func TestPredecessors(t *testing.T) {
	a := MatMul(2)
	// Interior point: all three predecessors present.
	if got := a.Predecessors(intmat.Vec(1, 1, 1)); len(got) != 3 {
		t.Errorf("interior predecessors = %v", got)
	}
	// Origin: none.
	if got := a.Predecessors(intmat.Vec(0, 0, 0)); len(got) != 0 {
		t.Errorf("origin predecessors = %v", got)
	}
	// Face point (1,0,0): only the d1 = (1,0,0) source.
	got := a.Predecessors(intmat.Vec(1, 0, 0))
	if len(got) != 1 || !got[0].Equal(intmat.Vec(0, 0, 0)) {
		t.Errorf("face predecessors = %v", got)
	}
}

func TestNewLibraryAlgorithms(t *testing.T) {
	cases := []struct {
		algo *Algorithm
		n, m int
	}{
		{MatVec(4, 3), 2, 2},
		{EditDistance(5, 4), 2, 3},
		{Jacobi2D(3, 4, 5), 3, 5},
		{Correlation(6, 3), 2, 3},
	}
	for _, c := range cases {
		if err := c.algo.Validate(); err != nil {
			t.Errorf("%s: %v", c.algo.Name, err)
		}
		if c.algo.Dim() != c.n || c.algo.NumDeps() != c.m {
			t.Errorf("%s: n=%d m=%d, want %d/%d", c.algo.Name, c.algo.Dim(), c.algo.NumDeps(), c.n, c.m)
		}
	}
	// Jacobi2D stencil: interior point has all five predecessors.
	j := Jacobi2D(3, 4, 4)
	if got := j.Predecessors(intmat.Vec(2, 2, 2)); len(got) != 5 {
		t.Errorf("jacobi2d interior predecessors = %d, want 5", len(got))
	}
	// EditDistance corner (1,1) has all three.
	e := EditDistance(3, 3)
	if got := e.Predecessors(intmat.Vec(1, 1)); len(got) != 3 {
		t.Errorf("edit-distance predecessors = %d, want 3", len(got))
	}
}

func TestLibraryCount(t *testing.T) {
	lib := Library()
	if len(lib) != 11 {
		t.Errorf("library has %d algorithms, want 11", len(lib))
	}
	names := map[string]bool{}
	for _, a := range lib {
		if names[a.Name] {
			t.Errorf("duplicate algorithm name %q", a.Name)
		}
		names[a.Name] = true
	}
}

// TestBitExpandMatchesHandWritten: the generic expansion must coincide
// with the hand-written bit-level constructors, dependence for
// dependence.
func TestBitExpandMatchesHandWritten(t *testing.T) {
	gotMM := BitExpand(MatMul(3), 3)
	refMM := BitLevelMatMul(3, 3)
	if !gotMM.D.Equal(refMM.D) {
		t.Errorf("bit matmul D:\n%v\nwant\n%v", gotMM.D, refMM.D)
	}
	if !gotMM.Set.Upper.Equal(refMM.Set.Upper) {
		t.Errorf("bit matmul bounds %v, want %v", gotMM.Set.Upper, refMM.Set.Upper)
	}
	gotCV := BitExpand(Convolution(4, 3), 3)
	refCV := BitLevelConvolution(4, 3, 3)
	if !gotCV.D.Equal(refCV.D) {
		t.Errorf("bit convolution D:\n%v\nwant\n%v", gotCV.D, refCV.D)
	}
	// Expansion of any library algorithm validates.
	for _, a := range Library() {
		b := BitExpand(a, 2)
		if err := b.Validate(); err != nil {
			t.Errorf("BitExpand(%s): %v", a.Name, err)
		}
		if b.Dim() != a.Dim()+2 || b.NumDeps() != a.NumDeps()+3 {
			t.Errorf("BitExpand(%s) shape n=%d m=%d", a.Name, b.Dim(), b.NumDeps())
		}
	}
}

func TestBitLevelDimensions(t *testing.T) {
	c := BitLevelConvolution(4, 3, 3)
	if c.Dim() != 4 {
		t.Errorf("bit-convolution dim %d, want 4", c.Dim())
	}
	m := BitLevelMatMul(3, 3)
	if m.Dim() != 5 {
		t.Errorf("bit-matmul dim %d, want 5", m.Dim())
	}
	// The carry dependence must couple the last two axes.
	carry := m.Dep(5)
	if carry[3] != 1 || carry[4] != -1 {
		t.Errorf("carry dependence = %v", carry)
	}
}

// TestPointsCapClampsWrappedSize: Points used to preallocate with
// Size(), which wraps int64 for large bounds — a wrapped negative
// capacity panicked makeslice before the first point was ever visited.
// The capacity must go through the saturating SizeExceeds clamp.
func TestPointsCapClampsWrappedSize(t *testing.T) {
	// ∏(μ_i+1) = (2^32)^2 · 2 = 2^65 ≡ 0 (mod 2^64); intermediate
	// partial products pass through negative territory.
	wrapped := Box(1<<32-1, 1<<32-1, 1)
	if wrapped.SizeExceeds(maxPointsPrealloc) != true {
		t.Fatal("precondition: crafted μ must exceed the prealloc cap")
	}
	c := wrapped.pointsCap()
	if c != maxPointsPrealloc {
		t.Errorf("pointsCap = %d, want the clamp %d", c, maxPointsPrealloc)
	}
	// The exact expression Points passes to make must not panic.
	pts := make([]intmat.Vector, 0, wrapped.pointsCap())
	_ = pts

	// A μ whose product wraps to a *negative* int64 — the crash case:
	// make([]T, 0, negative) panics "makeslice: cap out of range".
	// Here ∏(μ_i+1) = 2^61 · 4 = 2^63 ≡ MinInt64.
	negative := Box(1<<61-1, 3)
	if negative.Size() >= 0 {
		t.Fatalf("precondition: Size must wrap negative, got %d", negative.Size())
	}
	if c := negative.pointsCap(); c != maxPointsPrealloc {
		t.Errorf("pointsCap on wrapped-negative Size = %d, want %d", c, maxPointsPrealloc)
	}

	// Small sets keep the exact preallocation.
	small := Box(1, 2)
	if c := small.pointsCap(); c != small.Size() {
		t.Errorf("pointsCap on small set = %d, want %d", c, small.Size())
	}
	// And Points itself still enumerates correctly past the clamp logic.
	if got := len(small.Points()); int64(got) != small.Size() {
		t.Errorf("Points = %d points, want %d", got, small.Size())
	}
}
