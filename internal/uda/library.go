package uda

import "lodim/internal/intmat"

// This file is the algorithm library: constructors for the uniform
// dependence algorithms used in the paper and in its motivating
// applications. Each dependence matrix is written column-per-dependence
// exactly as printed in the paper where the paper gives one.

// MatMul returns the 3-dimensional matrix multiplication algorithm of
// Example 3.1 (Equation 3.4): C = A·B over the cube 0 ≤ j_i ≤ μ with
//
//	D = [1 0 0]
//	    [0 1 0]
//	    [0 0 1]
//
// where d̄_1, d̄_2, d̄_3 are induced by B, A and C respectively.
func MatMul(mu int64) *Algorithm {
	return &Algorithm{
		Name: "matmul",
		Set:  Cube(3, mu),
		D: intmat.FromRows(
			[]int64{1, 0, 0},
			[]int64{0, 1, 0},
			[]int64{0, 0, 1},
		),
	}
}

// TransitiveClosure returns the 3-dimensional reindexed transitive
// closure algorithm of Example 3.2 (Equation 3.6):
//
//	D = [0 0  1  1  1]
//	    [0 1 -1 -1  0]
//	    [1 0 -1  0 -1]
func TransitiveClosure(mu int64) *Algorithm {
	return &Algorithm{
		Name: "transitive-closure",
		Set:  Cube(3, mu),
		D: intmat.FromRows(
			[]int64{0, 0, 1, 1, 1},
			[]int64{0, 1, -1, -1, 0},
			[]int64{1, 0, -1, 0, -1},
		),
	}
}

// Convolution returns the 2-dimensional word-level convolution
// y_i = Σ_k h_k·x_{i−k} over 0 ≤ i ≤ muOut, 0 ≤ k ≤ muTap, with the
// standard uniformized dependencies: weights stay resident along i
// (d̄_1), inputs travel along the diagonal (d̄_2) and partial sums
// accumulate along k (d̄_3).
func Convolution(muOut, muTap int64) *Algorithm {
	return &Algorithm{
		Name: "convolution",
		Set:  Box(muOut, muTap),
		D: intmat.FromRows(
			[]int64{1, 1, 0},
			[]int64{0, 1, 1},
		),
	}
}

// LU returns the 3-dimensional LU decomposition algorithm (without
// pivoting) with the classical uniformized dependence matrix: pivot
// rows propagate along i (d̄_1), pivot columns along j (d̄_2) and
// updates along k (d̄_3).
func LU(mu int64) *Algorithm {
	return &Algorithm{
		Name: "lu",
		Set:  Cube(3, mu),
		D: intmat.FromRows(
			[]int64{1, 0, 0},
			[]int64{0, 1, 0},
			[]int64{0, 0, 1},
		),
	}
}

// SOR returns a 2-dimensional successive-over-relaxation stencil sweep
// (one time-like axis, one space axis) with the three-point dependence
// pattern d̄_1 = (1,0), d̄_2 = (1,1), d̄_3 = (1,−1).
func SOR(muT, muX int64) *Algorithm {
	return &Algorithm{
		Name: "sor",
		Set:  Box(muT, muX),
		D: intmat.FromRows(
			[]int64{1, 1, 1},
			[]int64{0, 1, -1},
		),
	}
}

// BitLevelConvolution returns the 4-dimensional bit-level convolution
// of the paper's Section 3 motivation ("mapping of 4-dimensional
// convolution algorithm at bit-level [26] into a 2-dimensional systolic
// array"). The word-level indices (i, k) are expanded with a
// multiplicand bit index l and a partial-sum bit index p; word-level
// dependencies are inherited on the first two coordinates and the
// bit-serial arithmetic adds bit-broadcast (d̄_4) and carry (d̄_5)
// dependencies on the last two:
//
//	d̄_1 = (1,0,0,0)  weights resident along i
//	d̄_2 = (1,1,0,0)  inputs along the diagonal
//	d̄_3 = (0,1,0,0)  partial-sum accumulation along k
//	d̄_4 = (0,0,1,0)  operand bit recurrence along l
//	d̄_5 = (0,0,0,1)  sum bit recurrence along p
//	d̄_6 = (0,0,1,-1) carry propagation between bit planes
func BitLevelConvolution(muOut, muTap, muBit int64) *Algorithm {
	return &Algorithm{
		Name: "bit-convolution",
		Set:  Box(muOut, muTap, muBit, muBit),
		D: intmat.FromRows(
			[]int64{1, 1, 0, 0, 0, 0},
			[]int64{0, 1, 1, 0, 0, 0},
			[]int64{0, 0, 0, 1, 0, 1},
			[]int64{0, 0, 0, 0, 1, -1},
		),
	}
}

// BitLevelMatMul returns a 5-dimensional bit-level matrix
// multiplication: word-level (i, j, k) indices expanded with a
// multiplier bit index l and an accumulation bit index p. This is the
// algorithm class the paper's RAB motivation targets ("often a four or
// five dimensional bit level algorithm into a 2-dimensional bit level
// processor array") and the subject of Theorem 4.8 (k = n−3 = 2+1 rows
// maps 5-D into 2-D arrays):
//
//	d̄_1 = (1,0,0,0,0)  B operand reuse along i
//	d̄_2 = (0,1,0,0,0)  A operand reuse along j
//	d̄_3 = (0,0,1,0,0)  word-level accumulation along k
//	d̄_4 = (0,0,0,1,0)  operand bit recurrence along l
//	d̄_5 = (0,0,0,0,1)  sum bit recurrence along p
//	d̄_6 = (0,0,0,1,-1) carry propagation between bit planes
func BitLevelMatMul(mu, muBit int64) *Algorithm {
	return &Algorithm{
		Name: "bit-matmul",
		Set:  Box(mu, mu, mu, muBit, muBit),
		D: intmat.FromRows(
			[]int64{1, 0, 0, 0, 0, 0},
			[]int64{0, 1, 0, 0, 0, 0},
			[]int64{0, 0, 1, 0, 0, 0},
			[]int64{0, 0, 0, 1, 0, 1},
			[]int64{0, 0, 0, 0, 1, -1},
		),
	}
}

// MatVec returns the 2-dimensional matrix-vector product y = A·x over
// 0 ≤ i ≤ muRow (result index), 0 ≤ j ≤ muCol (reduction index):
// x values stay resident along i (d̄_1), partial sums accumulate along
// j (d̄_2).
func MatVec(muRow, muCol int64) *Algorithm {
	return &Algorithm{
		Name: "matvec",
		Set:  Box(muRow, muCol),
		D: intmat.FromRows(
			[]int64{1, 0},
			[]int64{0, 1},
		),
	}
}

// EditDistance returns the 2-dimensional string-edit dynamic program
// (Levenshtein recurrence): cell (i, j) depends on (i−1, j), (i, j−1)
// and (i−1, j−1).
func EditDistance(mu1, mu2 int64) *Algorithm {
	return &Algorithm{
		Name: "edit-distance",
		Set:  Box(mu1, mu2),
		D: intmat.FromRows(
			[]int64{1, 0, 1},
			[]int64{0, 1, 1},
		),
	}
}

// Jacobi2D returns a 3-dimensional Jacobi sweep over a 2-D grid with a
// time-like axis t and the five-point spatial stencil: point (t, x, y)
// reads (t−1, x, y), (t−1, x±1, y) and (t−1, x, y±1).
func Jacobi2D(muT, muX, muY int64) *Algorithm {
	return &Algorithm{
		Name: "jacobi2d",
		Set:  Box(muT, muX, muY),
		D: intmat.FromRows(
			[]int64{1, 1, 1, 1, 1},
			[]int64{0, 1, -1, 0, 0},
			[]int64{0, 0, 0, 1, -1},
		),
	}
}

// Correlation returns the 2-dimensional cross-correlation
// r_i = Σ_k a_k·b_{i+k}: the reference sequence stays resident along i
// (d̄_1), the searched sequence travels against the diagonal (d̄_2), and
// sums accumulate along k (d̄_3). It differs from Convolution only in
// the diagonal's sign, which flips the natural travel direction on the
// array — a useful contrast case for the optimizers.
func Correlation(muOut, muLag int64) *Algorithm {
	return &Algorithm{
		Name: "correlation",
		Set:  Box(muOut, muLag),
		D: intmat.FromRows(
			[]int64{1, 1, 0},
			[]int64{0, -1, 1},
		),
	}
}

// BitExpand performs the generic word-to-bit-level expansion of the
// RAB pipeline ("algorithms are first expanded into bit level
// algorithms"): an n-dimensional word-level algorithm becomes an
// (n+2)-dimensional bit-level algorithm with an operand-bit axis l and
// a sum-bit axis p, both bounded by muBit. Word-level dependencies are
// inherited on the first n coordinates; bit-serial arithmetic adds the
// operand-bit recurrence e_{n+1}, the sum-bit recurrence e_{n+2}, and
// the carry dependence e_{n+1} − e_{n+2} between bit planes.
//
// BitExpand(MatMul(μ), w) equals BitLevelMatMul(μ, w) and
// BitExpand(Convolution(a, b), w) equals BitLevelConvolution(a, b, w);
// the named constructors remain for documentation value.
func BitExpand(word *Algorithm, muBit int64) *Algorithm {
	n := word.Dim()
	m := word.NumDeps()
	d := intmat.New(n+2, m+3)
	for c := 0; c < m; c++ {
		col := word.Dep(c)
		for r := 0; r < n; r++ {
			d.Set(r, c, col[r])
		}
	}
	d.Set(n, m, 1)     // operand-bit recurrence e_{n+1}
	d.Set(n+1, m+1, 1) // sum-bit recurrence e_{n+2}
	d.Set(n, m+2, 1)   // carry: e_{n+1} − e_{n+2}
	d.Set(n+1, m+2, -1)
	upper := append(word.Set.Upper.Clone(), muBit, muBit)
	return &Algorithm{
		Name: "bit-" + word.Name,
		Set:  IndexSet{Upper: upper},
		D:    d,
	}
}

// Library returns every named constructor instantiated at a small
// default size, for table-driven tests and the experiment driver.
func Library() []*Algorithm {
	return []*Algorithm{
		MatMul(4),
		TransitiveClosure(4),
		Convolution(6, 3),
		LU(4),
		SOR(5, 5),
		BitLevelConvolution(4, 3, 3),
		BitLevelMatMul(3, 3),
		MatVec(4, 4),
		EditDistance(5, 5),
		Jacobi2D(4, 4, 4),
		Correlation(6, 3),
	}
}
