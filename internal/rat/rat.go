// Package rat provides an immutable exact rational number type used by
// the simplex and branch-and-bound solvers.
//
// The type is a thin veneer over math/big.Rat with value semantics:
// every operation returns a fresh value and never mutates its operands,
// which makes solver code read like arithmetic instead of like buffer
// management. The mapping problems of Shang & Fortes (1990) produce LPs
// with a handful of variables and constraints, so the allocation cost is
// irrelevant while exactness is essential — the optimizers reason about
// integrality of extreme points, which floating point cannot support.
package rat

import (
	"fmt"
	"math/big"
)

// Rat is an immutable exact rational number. The zero value is 0.
type Rat struct {
	r *big.Rat // nil means zero
}

// Zero returns 0.
func Zero() Rat { return Rat{} }

// One returns 1.
func One() Rat { return FromInt(1) }

// FromInt returns n as a rational.
func FromInt(n int64) Rat { return Rat{r: new(big.Rat).SetInt64(n)} }

// FromFrac returns num/den. It panics if den is zero.
func FromFrac(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	return Rat{r: big.NewRat(num, den)}
}

// Parse parses strings like "3", "-7/2".
func Parse(s string) (Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return Rat{r: r}, nil
}

func (a Rat) big() *big.Rat {
	if a.r == nil {
		return new(big.Rat)
	}
	return a.r
}

// Add returns a + b.
func (a Rat) Add(b Rat) Rat { return Rat{r: new(big.Rat).Add(a.big(), b.big())} }

// Sub returns a - b.
func (a Rat) Sub(b Rat) Rat { return Rat{r: new(big.Rat).Sub(a.big(), b.big())} }

// Mul returns a · b.
func (a Rat) Mul(b Rat) Rat { return Rat{r: new(big.Rat).Mul(a.big(), b.big())} }

// Div returns a / b. It panics if b is zero.
func (a Rat) Div(b Rat) Rat {
	if b.Sign() == 0 {
		panic("rat: division by zero")
	}
	return Rat{r: new(big.Rat).Quo(a.big(), b.big())}
}

// Neg returns -a.
func (a Rat) Neg() Rat { return Rat{r: new(big.Rat).Neg(a.big())} }

// Abs returns |a|.
func (a Rat) Abs() Rat { return Rat{r: new(big.Rat).Abs(a.big())} }

// Inv returns 1/a. It panics if a is zero.
func (a Rat) Inv() Rat {
	if a.Sign() == 0 {
		panic("rat: inverse of zero")
	}
	return Rat{r: new(big.Rat).Inv(a.big())}
}

// Sign returns -1, 0, or +1.
func (a Rat) Sign() int { return a.big().Sign() }

// Cmp compares a and b, returning -1, 0, or +1.
func (a Rat) Cmp(b Rat) int { return a.big().Cmp(b.big()) }

// Equal reports a == b.
func (a Rat) Equal(b Rat) bool { return a.Cmp(b) == 0 }

// Less reports a < b.
func (a Rat) Less(b Rat) bool { return a.Cmp(b) < 0 }

// LessEq reports a ≤ b.
func (a Rat) LessEq(b Rat) bool { return a.Cmp(b) <= 0 }

// IsZero reports a == 0.
func (a Rat) IsZero() bool { return a.Sign() == 0 }

// IsInt reports whether a is an integer.
func (a Rat) IsInt() bool { return a.big().IsInt() }

// Floor returns ⌊a⌋ as an int64. It panics if the result does not fit.
func (a Rat) Floor() int64 {
	r := a.big()
	q := new(big.Int)
	m := new(big.Int)
	q.QuoRem(r.Num(), r.Denom(), m)
	if m.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("rat: Floor result exceeds int64")
	}
	return q.Int64()
}

// Ceil returns ⌈a⌉ as an int64. It panics if the result does not fit.
func (a Rat) Ceil() int64 {
	return -(a.Neg().Floor())
}

// Int64 returns the value as an int64 and whether the value is an
// integer that fits.
func (a Rat) Int64() (int64, bool) {
	r := a.big()
	if !r.IsInt() || !r.Num().IsInt64() {
		return 0, false
	}
	return r.Num().Int64(), true
}

// Float64 returns the nearest float64 (for reporting only).
func (a Rat) Float64() float64 {
	f, _ := a.big().Float64()
	return f
}

// String formats a as "p/q" or "p".
func (a Rat) String() string { return a.big().RatString() }

// Min returns the smaller of a and b.
func Min(a, b Rat) Rat {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Rat) Rat {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// Sum returns the sum of all values (0 for none).
func Sum(vs ...Rat) Rat {
	s := Zero()
	for _, v := range vs {
		s = s.Add(v)
	}
	return s
}

// Dot returns Σ a_i·b_i. It panics if the lengths differ.
func Dot(a, b []Rat) Rat {
	if len(a) != len(b) {
		panic(fmt.Sprintf("rat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := Zero()
	for i := range a {
		s = s.Add(a[i].Mul(b[i]))
	}
	return s
}
