// Package rat provides an immutable exact rational number type used by
// the simplex and branch-and-bound solvers.
//
// The type has value semantics: every operation returns a fresh value
// and never mutates its operands, which makes solver code read like
// arithmetic instead of like buffer management. Values small enough to
// fit an int64 numerator and denominator — essentially every pivot the
// mapping LPs of Shang & Fortes (1990) ever produce — are carried
// inline with no heap allocation; an operation whose intermediates
// overflow transparently falls back to math/big.Rat, and big results
// that fit again shrink back to the inline form. Exactness is essential
// either way: the optimizers reason about integrality of extreme
// points, which floating point cannot support.
package rat

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
)

// Rat is an immutable exact rational number. The zero value is 0.
//
// Representation: when r is nil the value is n/d in lowest terms with
// d > 0, except that the all-zero struct (d == 0) represents 0 — so the
// zero value stays valid. When r is non-nil it holds the value and n, d
// are meaningless.
type Rat struct {
	n, d int64
	r    *big.Rat
}

// Zero returns 0.
func Zero() Rat { return Rat{} }

// One returns 1.
func One() Rat { return Rat{n: 1, d: 1} }

// FromInt returns n as a rational.
func FromInt(n int64) Rat { return Rat{n: n, d: 1} }

// FromFrac returns num/den. It panics if den is zero.
func FromFrac(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if r, ok := makeSmall(num, den); ok {
		return r
	}
	return wrapBig(big.NewRat(num, den))
}

// Parse parses strings like "3", "-7/2".
func Parse(s string) (Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return wrapBig(r), nil
}

// parts returns the inline numerator and denominator; ok is false for
// big-backed values.
func (a Rat) parts() (n, d int64, ok bool) {
	if a.r != nil {
		return 0, 0, false
	}
	if a.d == 0 {
		return a.n, 1, true // zero value
	}
	return a.n, a.d, true
}

// makeSmall normalizes num/den (den ≠ 0) into the inline form: sign on
// the numerator, lowest terms. ok is false when normalization itself
// would overflow (den == MinInt64 needing negation).
func makeSmall(num, den int64) (Rat, bool) {
	if den < 0 {
		if num == math.MinInt64 || den == math.MinInt64 {
			return Rat{}, false
		}
		num, den = -num, -den
	}
	if num == 0 {
		return Rat{}, true
	}
	if g := gcd64(num, den); g > 1 {
		num, den = num/g, den/g
	}
	return Rat{n: num, d: den}, true
}

// gcd64 returns gcd(|a|, |b|) computed without int64 negation overflow.
func gcd64(a, b int64) int64 {
	ua, ub := absU(a), absU(b)
	for ub != 0 {
		ua, ub = ub, ua%ub
	}
	if ua > math.MaxInt64 {
		// gcd(MinInt64, MinInt64) — callers only hit this when both
		// operands are MinInt64; treat as no reduction.
		return 1
	}
	return int64(ua)
}

func absU(a int64) uint64 {
	if a < 0 {
		return uint64(-(a + 1)) + 1
	}
	return uint64(a)
}

// wrapBig wraps a big.Rat, shrinking back to the inline form when the
// components fit int64 — keeping later arithmetic on the fast path.
func wrapBig(r *big.Rat) Rat {
	if r.Num().IsInt64() && r.Denom().IsInt64() {
		if s, ok := makeSmall(r.Num().Int64(), r.Denom().Int64()); ok {
			return s
		}
	}
	return Rat{r: r}
}

func (a Rat) big() *big.Rat {
	if a.r != nil {
		return a.r
	}
	n, d, _ := a.parts()
	return new(big.Rat).SetFrac64(n, d)
}

// Overflow-aware int64 helpers; ok = false means fall back to big.
func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	return p, true
}

// Add returns a + b.
func (a Rat) Add(b Rat) Rat {
	if an, ad, ok := a.parts(); ok {
		if bn, bd, ok := b.parts(); ok {
			// a/ad + b/bd = (an·(bd/g) + bn·(ad/g)) / (ad·(bd/g)), g = gcd(ad, bd).
			g := gcd64(ad, bd)
			if x, ok := mulOv(an, bd/g); ok {
				if y, ok := mulOv(bn, ad/g); ok {
					if num, ok := addOv(x, y); ok {
						if den, ok := mulOv(ad, bd/g); ok {
							if r, ok := makeSmall(num, den); ok {
								return r
							}
						}
					}
				}
			}
		}
	}
	return wrapBig(new(big.Rat).Add(a.big(), b.big()))
}

// Sub returns a - b.
func (a Rat) Sub(b Rat) Rat { return a.Add(b.Neg()) }

// Mul returns a · b.
func (a Rat) Mul(b Rat) Rat {
	if an, ad, ok := a.parts(); ok {
		if bn, bd, ok := b.parts(); ok {
			// Cross-reduce before multiplying: keeps intermediates small
			// and the products in range for every realistic pivot.
			if g := gcd64(an, bd); g > 1 {
				an, bd = an/g, bd/g
			}
			if g := gcd64(bn, ad); g > 1 {
				bn, ad = bn/g, ad/g
			}
			if num, ok := mulOv(an, bn); ok {
				if den, ok := mulOv(ad, bd); ok {
					if r, ok := makeSmall(num, den); ok {
						return r
					}
				}
			}
		}
	}
	return wrapBig(new(big.Rat).Mul(a.big(), b.big()))
}

// Div returns a / b. It panics if b is zero.
func (a Rat) Div(b Rat) Rat {
	if b.Sign() == 0 {
		panic("rat: division by zero")
	}
	if bn, bd, ok := b.parts(); ok && bn != math.MinInt64 {
		// a / (bn/bd) = a · (bd/bn) with the sign moved to the numerator.
		if bn < 0 {
			bn, bd = -bn, -bd
		}
		return a.Mul(Rat{n: bd, d: bn})
	}
	return wrapBig(new(big.Rat).Quo(a.big(), b.big()))
}

// Neg returns -a.
func (a Rat) Neg() Rat {
	if n, d, ok := a.parts(); ok && n != math.MinInt64 {
		if n == 0 {
			return Rat{}
		}
		return Rat{n: -n, d: d}
	}
	return wrapBig(new(big.Rat).Neg(a.big()))
}

// Abs returns |a|.
func (a Rat) Abs() Rat {
	if a.Sign() >= 0 {
		return a
	}
	return a.Neg()
}

// Inv returns 1/a. It panics if a is zero.
func (a Rat) Inv() Rat {
	if a.Sign() == 0 {
		panic("rat: inverse of zero")
	}
	return One().Div(a)
}

// Sign returns -1, 0, or +1.
func (a Rat) Sign() int {
	if n, _, ok := a.parts(); ok {
		switch {
		case n > 0:
			return 1
		case n < 0:
			return -1
		}
		return 0
	}
	return a.r.Sign()
}

// Cmp compares a and b, returning -1, 0, or +1.
func (a Rat) Cmp(b Rat) int {
	if an, ad, ok := a.parts(); ok {
		if bn, bd, ok := b.parts(); ok {
			// Both in lowest terms with positive denominators, so the
			// cross products decide (when they fit).
			if x, ok := mulOv(an, bd); ok {
				if y, ok := mulOv(bn, ad); ok {
					switch {
					case x < y:
						return -1
					case x > y:
						return 1
					}
					return 0
				}
			}
		}
	}
	return a.big().Cmp(b.big())
}

// Equal reports a == b.
func (a Rat) Equal(b Rat) bool { return a.Cmp(b) == 0 }

// Less reports a < b.
func (a Rat) Less(b Rat) bool { return a.Cmp(b) < 0 }

// LessEq reports a ≤ b.
func (a Rat) LessEq(b Rat) bool { return a.Cmp(b) <= 0 }

// IsZero reports a == 0.
func (a Rat) IsZero() bool { return a.Sign() == 0 }

// IsInt reports whether a is an integer.
func (a Rat) IsInt() bool {
	if _, d, ok := a.parts(); ok {
		return d == 1
	}
	return a.r.IsInt()
}

// Floor returns ⌊a⌋ as an int64. It panics if the result does not fit.
func (a Rat) Floor() int64 {
	if n, d, ok := a.parts(); ok {
		q := n / d
		if n%d != 0 && n < 0 {
			q--
		}
		return q
	}
	r := a.r
	q := new(big.Int)
	m := new(big.Int)
	q.QuoRem(r.Num(), r.Denom(), m)
	if m.Sign() < 0 {
		q.Sub(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("rat: Floor result exceeds int64")
	}
	return q.Int64()
}

// Ceil returns ⌈a⌉ as an int64. It panics if the result does not fit.
func (a Rat) Ceil() int64 {
	if n, d, ok := a.parts(); ok {
		q := n / d
		if n%d != 0 && n > 0 {
			q++
		}
		return q
	}
	return -(a.Neg().Floor())
}

// Int64 returns the value as an int64 and whether the value is an
// integer that fits.
func (a Rat) Int64() (int64, bool) {
	if n, d, ok := a.parts(); ok {
		if d != 1 {
			return 0, false
		}
		return n, true
	}
	if !a.r.IsInt() || !a.r.Num().IsInt64() {
		return 0, false
	}
	return a.r.Num().Int64(), true
}

// Float64 returns the nearest float64 (for reporting only).
func (a Rat) Float64() float64 {
	if n, d, ok := a.parts(); ok {
		return float64(n) / float64(d)
	}
	f, _ := a.r.Float64()
	return f
}

// String formats a as "p/q" or "p".
func (a Rat) String() string {
	if n, d, ok := a.parts(); ok {
		if d == 1 {
			return strconv.FormatInt(n, 10)
		}
		return strconv.FormatInt(n, 10) + "/" + strconv.FormatInt(d, 10)
	}
	return a.r.RatString()
}

// Min returns the smaller of a and b.
func Min(a, b Rat) Rat {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Rat) Rat {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// Sum returns the sum of all values (0 for none).
func Sum(vs ...Rat) Rat {
	s := Zero()
	for _, v := range vs {
		s = s.Add(v)
	}
	return s
}

// Dot returns Σ a_i·b_i. It panics if the lengths differ.
func Dot(a, b []Rat) Rat {
	if len(a) != len(b) {
		panic(fmt.Sprintf("rat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := Zero()
	for i := range a {
		s = s.Add(a[i].Mul(b[i]))
	}
	return s
}
