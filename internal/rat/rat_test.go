package rat

import (
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var z Rat
	if !z.IsZero() || z.Sign() != 0 {
		t.Error("zero value is not 0")
	}
	if got := z.Add(FromInt(5)); !got.Equal(FromInt(5)) {
		t.Errorf("0 + 5 = %v", got)
	}
	if z.String() != "0" {
		t.Errorf("zero String = %q", z.String())
	}
}

func TestBasicArithmetic(t *testing.T) {
	a, b := FromFrac(1, 2), FromFrac(1, 3)
	if got := a.Add(b); !got.Equal(FromFrac(5, 6)) {
		t.Errorf("1/2 + 1/3 = %v", got)
	}
	if got := a.Sub(b); !got.Equal(FromFrac(1, 6)) {
		t.Errorf("1/2 - 1/3 = %v", got)
	}
	if got := a.Mul(b); !got.Equal(FromFrac(1, 6)) {
		t.Errorf("1/2 * 1/3 = %v", got)
	}
	if got := a.Div(b); !got.Equal(FromFrac(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %v", got)
	}
	if got := a.Neg(); !got.Equal(FromFrac(-1, 2)) {
		t.Errorf("-1/2 = %v", got)
	}
	if got := FromFrac(-3, 4).Abs(); !got.Equal(FromFrac(3, 4)) {
		t.Errorf("|-3/4| = %v", got)
	}
	if got := FromFrac(2, 5).Inv(); !got.Equal(FromFrac(5, 2)) {
		t.Errorf("inv(2/5) = %v", got)
	}
}

func TestImmutability(t *testing.T) {
	a := FromFrac(1, 2)
	_ = a.Add(FromInt(1))
	_ = a.Neg()
	if !a.Equal(FromFrac(1, 2)) {
		t.Error("operations mutated the receiver")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div by zero did not panic")
		}
	}()
	FromInt(1).Div(Zero())
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv of zero did not panic")
		}
	}()
	Zero().Inv()
}

func TestFromFracZeroDenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromFrac with zero denominator did not panic")
		}
	}()
	FromFrac(1, 0)
}

func TestComparisons(t *testing.T) {
	if !FromFrac(1, 3).Less(FromFrac(1, 2)) {
		t.Error("1/3 < 1/2 failed")
	}
	if !FromInt(2).LessEq(FromInt(2)) {
		t.Error("2 <= 2 failed")
	}
	if FromInt(3).Cmp(FromInt(2)) != 1 {
		t.Error("Cmp(3, 2) != 1")
	}
	if Min(FromInt(3), FromInt(2)).Cmp(FromInt(2)) != 0 {
		t.Error("Min wrong")
	}
	if Max(FromInt(3), FromInt(2)).Cmp(FromInt(3)) != 0 {
		t.Error("Max wrong")
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		v           Rat
		floor, ceil int64
	}{
		{FromFrac(7, 2), 3, 4},
		{FromFrac(-7, 2), -4, -3},
		{FromInt(5), 5, 5},
		{FromInt(-5), -5, -5},
		{Zero(), 0, 0},
		{FromFrac(1, 3), 0, 1},
		{FromFrac(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.v.Floor(); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.v, got, c.floor)
		}
		if got := c.v.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", c.v, got, c.ceil)
		}
	}
}

func TestIsIntAndInt64(t *testing.T) {
	if !FromFrac(6, 3).IsInt() {
		t.Error("6/3 not recognized as integer")
	}
	if FromFrac(1, 2).IsInt() {
		t.Error("1/2 recognized as integer")
	}
	if v, ok := FromFrac(6, 3).Int64(); !ok || v != 2 {
		t.Errorf("Int64(6/3) = %d, %v", v, ok)
	}
	if _, ok := FromFrac(1, 2).Int64(); ok {
		t.Error("Int64(1/2) reported ok")
	}
}

func TestParse(t *testing.T) {
	v, err := Parse("-7/2")
	if err != nil || !v.Equal(FromFrac(-7, 2)) {
		t.Errorf("Parse(-7/2) = %v, %v", v, err)
	}
	if _, err := Parse("x"); err == nil {
		t.Error("Parse(x) did not fail")
	}
}

func TestSumAndDot(t *testing.T) {
	if got := Sum(FromInt(1), FromInt(2), FromFrac(1, 2)); !got.Equal(FromFrac(7, 2)) {
		t.Errorf("Sum = %v", got)
	}
	a := []Rat{FromInt(1), FromInt(2)}
	b := []Rat{FromInt(3), FromFrac(1, 2)}
	if got := Dot(a, b); !got.Equal(FromInt(4)) {
		t.Errorf("Dot = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := FromFrac(4, 6).String(); got != "2/3" {
		t.Errorf("String(4/6) = %q", got)
	}
	if got := FromInt(-3).String(); got != "-3" {
		t.Errorf("String(-3) = %q", got)
	}
}

// Property: field axioms spot-checks over random small fractions.
func TestFieldProperties(t *testing.T) {
	mk := func(n int16, d uint8) Rat {
		return FromFrac(int64(n), int64(d)+1)
	}
	f := func(an int16, ad uint8, bn int16, bd uint8, cn int16, cd uint8) bool {
		a, b, c := mk(an, ad), mk(bn, bd), mk(cn, cd)
		// commutativity and associativity
		if !a.Add(b).Equal(b.Add(a)) || !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		if !a.Add(b).Add(c).Equal(a.Add(b.Add(c))) {
			return false
		}
		// distributivity
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		// inverses
		if !a.Sub(a).IsZero() {
			return false
		}
		if !a.IsZero() && !a.Div(a).Equal(One()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Floor/Ceil bracket the value.
func TestFloorCeilProperty(t *testing.T) {
	f := func(n int16, d uint8) bool {
		v := FromFrac(int64(n), int64(d)+1)
		fl, ce := v.Floor(), v.Ceil()
		if FromInt(fl).Cmp(v) > 0 || v.Cmp(FromInt(ce)) > 0 {
			return false
		}
		if ce-fl > 1 {
			return false
		}
		return v.IsInt() == (fl == ce)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
