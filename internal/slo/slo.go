// Package slo is a zero-dependency rolling-window SLO engine: fixed
// rings of bucketed (total, bad) counters over four windows (1m, 5m,
// 30m, 6h), availability and latency-threshold objectives, and
// fast/slow multi-window burn-rate evaluation (the standard two-window
// alerting shape: the slow window proves the budget is really burning,
// the fast window proves it is burning *now* and gates recovery).
//
// The engine is deliberately callback-free: Observe returns the breach
// and recovery events it produced, and the caller decides what an
// alert or an evidence capture looks like. Capture rate-limiting is
// the engine's job, though, because the cooldown is per-objective
// state that must be evaluated under the same lock as the transition.
package slo

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// window is one rolling-window geometry: n buckets of width each.
type window struct {
	name  string
	width time.Duration
	n     int
}

// windows are the four fixed rolling windows, shortest first. The
// bucket widths keep every ring at 60–72 buckets, so a full advance
// costs at most one pass over a small array.
var windows = [4]window{
	{"1m", time.Second, 60},
	{"5m", 5 * time.Second, 60},
	{"30m", 30 * time.Second, 60},
	{"6h", 5 * time.Minute, 72},
}

// WindowNames lists every rolling window, shortest first.
func WindowNames() []string {
	out := make([]string, len(windows))
	for i, w := range windows {
		out[i] = w.name
	}
	return out
}

// SlowWindowNames lists the windows valid as an objective's slow
// window. The shortest window cannot be slow: the fast window is
// always one step shorter.
func SlowWindowNames() []string { return WindowNames()[1:] }

// ValidSlowWindow reports whether name can serve as the slow window.
func ValidSlowWindow(name string) bool {
	for _, n := range SlowWindowNames() {
		if n == name {
			return true
		}
	}
	return false
}

func windowIndex(name string) int {
	for i, w := range windows {
		if w.name == name {
			return i
		}
	}
	return -1
}

// bucket is one ring slot's counters.
type bucket struct {
	total int64
	bad   int64
}

// ring is a fixed-size bucketed counter over one window. Stale buckets
// are zeroed lazily on advance, and running sums are maintained
// incrementally so reading totals is O(1) amortized.
type ring struct {
	width    time.Duration
	buckets  []bucket
	epoch    int64 // bucket epoch (unixNano / width) of the newest bucket
	primed   bool
	sumTotal int64
	sumBad   int64
}

func newRing(w window) *ring {
	return &ring{width: w.width, buckets: make([]bucket, w.n)}
}

func (r *ring) index(epoch int64) int {
	n := int64(len(r.buckets))
	return int(((epoch % n) + n) % n)
}

// advance rotates the ring forward to now, evicting buckets that fell
// out of the window.
func (r *ring) advance(now time.Time) {
	e := now.UnixNano() / int64(r.width)
	if !r.primed {
		r.epoch = e
		r.primed = true
		return
	}
	if e <= r.epoch {
		return
	}
	steps := e - r.epoch
	if steps > int64(len(r.buckets)) {
		steps = int64(len(r.buckets))
	}
	for i := int64(1); i <= steps; i++ {
		idx := r.index(r.epoch + i)
		r.sumTotal -= r.buckets[idx].total
		r.sumBad -= r.buckets[idx].bad
		r.buckets[idx] = bucket{}
	}
	r.epoch = e
}

func (r *ring) observe(now time.Time, bad bool) {
	r.advance(now)
	idx := r.index(r.epoch)
	r.buckets[idx].total++
	r.sumTotal++
	if bad {
		r.buckets[idx].bad++
		r.sumBad++
	}
}

func (r *ring) totals(now time.Time) (total, bad int64) {
	r.advance(now)
	return r.sumTotal, r.sumBad
}

// Objective is one SLO target. Target is the good fraction (e.g.
// 0.999 availability). A zero Threshold makes it an availability
// objective (bad = the caller said the request errored); a positive
// Threshold makes it a latency objective (bad = latency above the
// threshold, regardless of the error flag).
type Objective struct {
	Name      string
	Target    float64
	Threshold time.Duration
}

// Config sizes an Engine.
type Config struct {
	// Objectives to track (at least one; names must be unique).
	Objectives []Objective
	// Window names the slow window ("5m", "30m" or "6h"; default
	// "5m"). The fast window is always one step shorter.
	Window string
	// BurnRate is the alerting threshold B: a breach requires both the
	// fast and slow windows to burn budget at ≥ B× the sustainable
	// rate (0 selects 4).
	BurnRate float64
	// MinEvents guards against deciding a breach from a handful of
	// requests: the slow window must hold at least this many events
	// (0 selects 20).
	MinEvents int64
	// CaptureCooldown rate-limits evidence captures per objective: a
	// breach within the cooldown of the previous capture still alerts,
	// but its Event carries Capture=false (0 selects 10m).
	CaptureCooldown time.Duration
	// Now injects the clock for tests (nil selects time.Now).
	Now func() time.Time
}

// Event is one state transition produced by Observe.
type Event struct {
	Objective  string
	Window     string // slow window name
	FastWindow string
	FastBurn   float64
	SlowBurn   float64
	BurnRate   float64 // the threshold that was crossed
	Recovered  bool    // false = breach, true = recovery
	Capture    bool    // breach only: the capture cooldown allows an evidence capture
}

// objectiveState is one objective's rings and breach state.
type objectiveState struct {
	cfg         Objective
	rings       [len(windows)]*ring
	breached    bool
	breaches    int64
	captures    int64
	lastCapture time.Time
}

// Engine evaluates a set of objectives over the rolling windows.
// Observe is safe for concurrent use.
type Engine struct {
	burnRate  float64
	minEvents int64
	cooldown  time.Duration
	slowIdx   int
	fastIdx   int
	now       func() time.Time

	mu   sync.Mutex
	objs []*objectiveState
}

// NewEngine validates the config and builds the engine.
func NewEngine(cfg Config) (*Engine, error) {
	if len(cfg.Objectives) == 0 {
		return nil, errors.New("slo: at least one objective is required")
	}
	if cfg.Window == "" {
		cfg.Window = "5m"
	}
	if !ValidSlowWindow(cfg.Window) {
		return nil, fmt.Errorf("slo: window %q is not one of %v", cfg.Window, SlowWindowNames())
	}
	if cfg.BurnRate == 0 {
		cfg.BurnRate = 4
	}
	if cfg.BurnRate <= 1 {
		return nil, fmt.Errorf("slo: burn rate %g must be > 1 (1 is the sustainable rate)", cfg.BurnRate)
	}
	if cfg.MinEvents == 0 {
		cfg.MinEvents = 20
	}
	if cfg.MinEvents < 1 {
		return nil, fmt.Errorf("slo: min events %d must be >= 1", cfg.MinEvents)
	}
	if cfg.CaptureCooldown == 0 {
		cfg.CaptureCooldown = 10 * time.Minute
	}
	if cfg.CaptureCooldown < 0 {
		return nil, fmt.Errorf("slo: capture cooldown %s must be >= 0", cfg.CaptureCooldown)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	seen := map[string]bool{}
	e := &Engine{
		burnRate:  cfg.BurnRate,
		minEvents: cfg.MinEvents,
		cooldown:  cfg.CaptureCooldown,
		slowIdx:   windowIndex(cfg.Window),
		now:       cfg.Now,
	}
	e.fastIdx = e.slowIdx - 1
	for _, ob := range cfg.Objectives {
		if ob.Name == "" {
			return nil, errors.New("slo: objective name must not be empty")
		}
		if seen[ob.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", ob.Name)
		}
		seen[ob.Name] = true
		if ob.Target <= 0 || ob.Target >= 1 {
			return nil, fmt.Errorf("slo: objective %q target %g must be in (0, 1)", ob.Name, ob.Target)
		}
		if ob.Threshold < 0 {
			return nil, fmt.Errorf("slo: objective %q threshold %s must be >= 0", ob.Name, ob.Threshold)
		}
		st := &objectiveState{cfg: ob}
		for i, w := range windows {
			st.rings[i] = newRing(w)
		}
		e.objs = append(e.objs, st)
	}
	return e, nil
}

// burn converts a window's bad fraction into a burn rate: 1.0 means
// the error budget is being consumed exactly at the sustainable pace,
// B means B× too fast. An empty window burns nothing.
func burn(total, bad int64, target float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// Observe records one request outcome against every objective and
// returns the breach/recovery transitions it caused (usually none).
// errored marks the request failed for availability objectives;
// latency is judged against each latency objective's own threshold.
func (e *Engine) Observe(errored bool, latency time.Duration) []Event {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	var events []Event
	for _, st := range e.objs {
		bad := errored
		if st.cfg.Threshold > 0 {
			bad = latency > st.cfg.Threshold
		}
		for _, r := range st.rings {
			r.observe(now, bad)
		}
		fastTotal, fastBad := st.rings[e.fastIdx].totals(now)
		slowTotal, slowBad := st.rings[e.slowIdx].totals(now)
		fb := burn(fastTotal, fastBad, st.cfg.Target)
		sb := burn(slowTotal, slowBad, st.cfg.Target)
		switch {
		case !st.breached && fb >= e.burnRate && sb >= e.burnRate && slowTotal >= e.minEvents:
			st.breached = true
			st.breaches++
			capture := st.lastCapture.IsZero() || now.Sub(st.lastCapture) >= e.cooldown
			if capture {
				st.lastCapture = now
				st.captures++
			}
			events = append(events, Event{
				Objective: st.cfg.Name, Window: windows[e.slowIdx].name, FastWindow: windows[e.fastIdx].name,
				FastBurn: fb, SlowBurn: sb, BurnRate: e.burnRate, Capture: capture,
			})
		case st.breached && fb < e.burnRate:
			// Recovery keys on the fast window alone: the slow window can
			// stay hot long after the incident ends, and re-alerting on it
			// would flap.
			st.breached = false
			events = append(events, Event{
				Objective: st.cfg.Name, Window: windows[e.slowIdx].name, FastWindow: windows[e.fastIdx].name,
				FastBurn: fb, SlowBurn: sb, BurnRate: e.burnRate, Recovered: true,
			})
		}
	}
	return events
}

// WindowBurn is one window's burn rate, in shortest-first window order.
type WindowBurn struct {
	Window string  `json:"window"`
	Burn   float64 `json:"burn"`
}

// ObjectiveSnapshot is one objective's full state.
type ObjectiveSnapshot struct {
	Name        string  `json:"name"`
	Target      float64 `json:"target"`
	ThresholdMS float64 `json:"threshold_ms,omitempty"`
	Window      string  `json:"window"`
	FastWindow  string  `json:"fast_window"`
	// Burn lists every window's current burn rate, shortest first.
	Burn []WindowBurn `json:"burn"`
	// BudgetRemaining is 1 − slow-window burn: 0 means the budget is
	// being consumed exactly at the sustainable rate, negative means
	// faster.
	BudgetRemaining float64 `json:"budget_remaining"`
	Events          int64   `json:"events"` // slow-window totals
	Bad             int64   `json:"bad"`
	Breached        bool    `json:"breached"`
	Breaches        int64   `json:"breaches"`
	Captures        int64   `json:"captures"`
}

// Snapshot is the engine's full state, for /healthz, /metrics and the
// cluster status protocol.
type Snapshot struct {
	BurnRate   float64             `json:"burn_rate_threshold"`
	Healthy    bool                `json:"healthy"`
	Objectives []ObjectiveSnapshot `json:"objectives"`
}

// Snapshot reports every objective's windows, burns and breach state.
func (e *Engine) Snapshot() Snapshot {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Snapshot{BurnRate: e.burnRate, Healthy: true}
	for _, st := range e.objs {
		ob := ObjectiveSnapshot{
			Name:       st.cfg.Name,
			Target:     st.cfg.Target,
			Window:     windows[e.slowIdx].name,
			FastWindow: windows[e.fastIdx].name,
			Breached:   st.breached,
			Breaches:   st.breaches,
			Captures:   st.captures,
		}
		if st.cfg.Threshold > 0 {
			ob.ThresholdMS = float64(st.cfg.Threshold.Nanoseconds()) / 1e6
		}
		for i, w := range windows {
			total, bad := st.rings[i].totals(now)
			ob.Burn = append(ob.Burn, WindowBurn{Window: w.name, Burn: burn(total, bad, st.cfg.Target)})
			if i == e.slowIdx {
				ob.Events, ob.Bad = total, bad
				ob.BudgetRemaining = 1 - burn(total, bad, st.cfg.Target)
			}
		}
		if st.breached {
			out.Healthy = false
		}
		out.Objectives = append(out.Objectives, ob)
	}
	return out
}

// Healthy reports whether no objective is currently breached.
func (e *Engine) Healthy() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.objs {
		if st.breached {
			return false
		}
	}
	return true
}
