package slo

import (
	"sync"
	"testing"
	"time"
)

// testClock is a settable clock for deterministic window tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func availEngine(t *testing.T, clock *testClock, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Objectives: []Objective{{Name: "availability", Target: 0.99}},
		Window:     "5m",
		MinEvents:  10,
		Now:        clock.Now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	avail := []Objective{{Name: "availability", Target: 0.99}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no objectives", Config{}},
		{"bad window", Config{Objectives: avail, Window: "2m"}},
		{"fast window as slow", Config{Objectives: avail, Window: "1m"}},
		{"burn rate at 1", Config{Objectives: avail, BurnRate: 1}},
		{"negative min events", Config{Objectives: avail, MinEvents: -1}},
		{"negative cooldown", Config{Objectives: avail, CaptureCooldown: -time.Second}},
		{"empty name", Config{Objectives: []Objective{{Target: 0.99}}}},
		{"duplicate name", Config{Objectives: []Objective{{Name: "a", Target: 0.9}, {Name: "a", Target: 0.99}}}},
		{"target zero", Config{Objectives: []Objective{{Name: "a"}}}},
		{"target one", Config{Objectives: []Objective{{Name: "a", Target: 1}}}},
		{"negative threshold", Config{Objectives: []Objective{{Name: "a", Target: 0.9, Threshold: -time.Second}}}},
	}
	for _, tc := range cases {
		if _, err := NewEngine(tc.cfg); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
	if _, err := NewEngine(Config{Objectives: avail}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestRingExpiry(t *testing.T) {
	clock := newTestClock()
	r := newRing(windows[0]) // 1m: 60 × 1s
	for i := 0; i < 30; i++ {
		r.observe(clock.Now(), i%2 == 0)
		clock.Advance(time.Second)
	}
	if total, bad := r.totals(clock.Now()); total != 30 || bad != 15 {
		t.Fatalf("totals = (%d, %d), want (30, 15)", total, bad)
	}
	// 45s later the first 16 observations (t=0..15s) have left the
	// 60s window measured from the newest bucket.
	clock.Advance(45 * time.Second)
	if total, _ := r.totals(clock.Now()); total >= 30 {
		t.Fatalf("after expiry total = %d, want < 30", total)
	}
	// Far future: everything expires, sums return to zero exactly.
	clock.Advance(time.Hour)
	if total, bad := r.totals(clock.Now()); total != 0 || bad != 0 {
		t.Fatalf("after full expiry totals = (%d, %d), want (0, 0)", total, bad)
	}
}

func TestBurnMath(t *testing.T) {
	if got := burn(0, 0, 0.99); got != 0 {
		t.Fatalf("empty window burn = %g, want 0", got)
	}
	// 10% bad against a 99% target burns 10× the sustainable rate.
	if got := burn(100, 10, 0.99); got < 9.99 || got > 10.01 {
		t.Fatalf("burn = %g, want 10", got)
	}
}

func TestBreachAndRecovery(t *testing.T) {
	clock := newTestClock()
	e := availEngine(t, clock, nil)

	// 100 good requests: no events, healthy.
	for i := 0; i < 100; i++ {
		if evs := e.Observe(false, time.Millisecond); len(evs) != 0 {
			t.Fatalf("good traffic produced events: %+v", evs)
		}
	}
	if !e.Healthy() {
		t.Fatal("healthy = false before breach")
	}

	// Burst of failures: exactly one breach event.
	var breaches int
	for i := 0; i < 50; i++ {
		for _, ev := range e.Observe(true, time.Millisecond) {
			if ev.Recovered {
				t.Fatalf("unexpected recovery: %+v", ev)
			}
			breaches++
			if ev.Objective != "availability" || ev.Window != "5m" || ev.FastWindow != "1m" {
				t.Fatalf("bad event fields: %+v", ev)
			}
			if ev.FastBurn < ev.BurnRate || ev.SlowBurn < ev.BurnRate {
				t.Fatalf("breach below threshold: %+v", ev)
			}
			if !ev.Capture {
				t.Fatalf("first breach did not capture: %+v", ev)
			}
		}
	}
	if breaches != 1 {
		t.Fatalf("breach events = %d, want 1", breaches)
	}
	if e.Healthy() {
		t.Fatal("healthy = true during breach")
	}

	// Two minutes of silence expire the fast window; the next good
	// request recovers.
	clock.Advance(2 * time.Minute)
	evs := e.Observe(false, time.Millisecond)
	if len(evs) != 1 || !evs[0].Recovered {
		t.Fatalf("expected one recovery event, got %+v", evs)
	}
	if !e.Healthy() {
		t.Fatal("healthy = false after recovery")
	}
}

func TestMinEventsGuard(t *testing.T) {
	clock := newTestClock()
	e := availEngine(t, clock, func(c *Config) { c.MinEvents = 100 })
	for i := 0; i < 99; i++ {
		if evs := e.Observe(true, 0); len(evs) != 0 {
			t.Fatalf("breach before min events at request %d: %+v", i, evs)
		}
	}
	if evs := e.Observe(true, 0); len(evs) != 1 {
		t.Fatalf("expected breach at min events, got %+v", evs)
	}
}

func TestSlowWindowVetoesFastSpike(t *testing.T) {
	clock := newTestClock()
	e := availEngine(t, clock, nil)
	// 4 minutes of good traffic fill the 5m window.
	for i := 0; i < 240; i++ {
		e.Observe(false, 0)
		clock.Advance(time.Second)
	}
	// A short burst of failures saturates the 1m window but the slow
	// burn stays diluted below threshold: no breach.
	for i := 0; i < 10; i++ {
		if evs := e.Observe(true, 0); len(evs) != 0 {
			t.Fatalf("slow window did not veto: %+v", evs)
		}
	}
}

func TestLatencyObjective(t *testing.T) {
	clock := newTestClock()
	e := availEngine(t, clock, func(c *Config) {
		c.Objectives = []Objective{{Name: "latency-p99", Target: 0.99, Threshold: 100 * time.Millisecond}}
	})
	// Fast-but-errored requests are fine for a latency objective.
	for i := 0; i < 50; i++ {
		if evs := e.Observe(true, time.Millisecond); len(evs) != 0 {
			t.Fatalf("fast errored request breached latency objective: %+v", evs)
		}
	}
	// Slow requests breach it.
	var breached bool
	for i := 0; i < 50; i++ {
		for _, ev := range e.Observe(false, time.Second) {
			breached = true
			if ev.Objective != "latency-p99" {
				t.Fatalf("bad objective: %+v", ev)
			}
		}
	}
	if !breached {
		t.Fatal("slow requests did not breach latency objective")
	}
}

func TestCaptureCooldown(t *testing.T) {
	clock := newTestClock()
	e := availEngine(t, clock, func(c *Config) { c.CaptureCooldown = 10 * time.Minute })

	breach := func(wantCapture bool) {
		t.Helper()
		var got []Event
		for i := 0; i < 50; i++ {
			got = append(got, e.Observe(true, 0)...)
		}
		if len(got) != 1 || got[0].Recovered {
			t.Fatalf("expected one breach, got %+v", got)
		}
		if got[0].Capture != wantCapture {
			t.Fatalf("capture = %v, want %v", got[0].Capture, wantCapture)
		}
	}
	recover := func() {
		t.Helper()
		clock.Advance(2 * time.Minute)
		evs := e.Observe(false, 0)
		if len(evs) != 1 || !evs[0].Recovered {
			t.Fatalf("expected recovery, got %+v", evs)
		}
	}

	breach(true) // first breach captures
	recover()
	breach(false) // ~2 minutes later: inside cooldown, alert without capture
	recover()
	clock.Advance(10 * time.Minute)
	breach(true) // cooldown elapsed: captures again

	snap := e.Snapshot()
	if ob := snap.Objectives[0]; ob.Breaches != 3 || ob.Captures != 2 {
		t.Fatalf("breaches = %d captures = %d, want 3 and 2", ob.Breaches, ob.Captures)
	}
}

func TestSnapshot(t *testing.T) {
	clock := newTestClock()
	e := availEngine(t, clock, func(c *Config) {
		c.Objectives = []Objective{
			{Name: "availability", Target: 0.99},
			{Name: "latency-p99", Target: 0.99, Threshold: 250 * time.Millisecond},
		}
		c.Window = "30m"
	})
	for i := 0; i < 80; i++ {
		e.Observe(i%4 == 0, time.Second) // 25% errored, all slow
	}
	snap := e.Snapshot()
	if snap.BurnRate != 4 {
		t.Fatalf("burn rate threshold = %g, want 4", snap.BurnRate)
	}
	if len(snap.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(snap.Objectives))
	}
	av, lat := snap.Objectives[0], snap.Objectives[1]
	if av.Name != "availability" || lat.Name != "latency-p99" {
		t.Fatalf("objective order: %q, %q", av.Name, lat.Name)
	}
	if av.Window != "30m" || av.FastWindow != "5m" {
		t.Fatalf("windows = %q/%q, want 30m/5m", av.Window, av.FastWindow)
	}
	if lat.ThresholdMS != 250 {
		t.Fatalf("threshold ms = %g, want 250", lat.ThresholdMS)
	}
	if av.Events != 80 || av.Bad != 20 {
		t.Fatalf("availability events/bad = %d/%d, want 80/20", av.Events, av.Bad)
	}
	if lat.Bad != 80 {
		t.Fatalf("latency bad = %d, want 80", lat.Bad)
	}
	if len(av.Burn) != len(windows) {
		t.Fatalf("burn windows = %d, want %d", len(av.Burn), len(windows))
	}
	// 25% bad over a 99% target burns 25×; budget remaining 1−25 = −24.
	if got := av.Burn[2].Burn; got < 24.9 || got > 25.1 {
		t.Fatalf("30m burn = %g, want 25", got)
	}
	if av.BudgetRemaining > -23.9 || av.BudgetRemaining < -24.1 {
		t.Fatalf("budget remaining = %g, want -24", av.BudgetRemaining)
	}
	if !av.Breached || !lat.Breached || snap.Healthy {
		t.Fatalf("breach flags: avail %v latency %v healthy %v", av.Breached, lat.Breached, snap.Healthy)
	}
}

func TestObserveConcurrent(t *testing.T) {
	e := availEngine(t, newTestClock(), func(c *Config) { c.Now = time.Now })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Observe(g%2 == 0 && i%3 == 0, time.Duration(i)*time.Microsecond)
				if i%100 == 0 {
					e.Snapshot()
					e.Healthy()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := e.Snapshot()
	if snap.Objectives[0].Events != 4000 {
		t.Fatalf("events = %d, want 4000", snap.Objectives[0].Events)
	}
}

func TestWindowHelpers(t *testing.T) {
	if got := WindowNames(); len(got) != 4 || got[0] != "1m" || got[3] != "6h" {
		t.Fatalf("WindowNames = %v", got)
	}
	if got := SlowWindowNames(); len(got) != 3 || got[0] != "5m" {
		t.Fatalf("SlowWindowNames = %v", got)
	}
	if ValidSlowWindow("1m") || !ValidSlowWindow("6h") {
		t.Fatal("ValidSlowWindow misclassifies")
	}
}
