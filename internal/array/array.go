// Package array models the target processor array: its interconnection
// primitives, the decomposition SD = PK required by condition 2 of
// Definition 2.2 in Shang & Fortes (1990), buffer counts, and the
// appendix's link-collision criterion.
//
// A (k−1)-dimensional array is described by its matrix of
// interconnection primitives P ∈ Z^{(k−1)×r}: column l is a vector a
// datum can travel along in one time unit (for the four-neighbor mesh,
// ±e_1 and ±e_2). A space mapping S is implementable on the machine
// when every transferred dependence SD_i decomposes into primitive
// hops, P·K_i = S·d̄_i with usage counts k_li ≥ 0, and the hop count
// does not exceed the time the schedule leaves for the datum to arrive:
// Σ_l k_li ≤ Π·d̄_i (Equation 2.3).
package array

import (
	"errors"
	"fmt"

	"lodim/internal/ilp"
	"lodim/internal/intmat"
	"lodim/internal/lp"
	"lodim/internal/rat"
)

// Machine is a fixed-interconnection processor array.
type Machine struct {
	// P is the matrix of interconnection primitives; column l is one
	// primitive. The zero-column "stay" primitive need not be listed:
	// a datum may always wait in place (buffers model the waiting).
	P *intmat.Matrix
}

// NearestNeighbor returns the dim-dimensional mesh machine whose
// primitives are ±e_1, …, ±e_dim — for dim = 2 exactly the paper's
//
//	P = [0  0 1 -1]
//	    [1 -1 0  0]
//
// (column order here is +e_1, −e_1, …).
func NearestNeighbor(dim int) *Machine {
	p := intmat.New(dim, 2*dim)
	for i := 0; i < dim; i++ {
		p.Set(i, 2*i, 1)
		p.Set(i, 2*i+1, -1)
	}
	return &Machine{P: p}
}

// FromPrimitives returns a machine with the given primitive columns.
func FromPrimitives(cols ...intmat.Vector) *Machine {
	if len(cols) == 0 {
		panic("array: no primitives")
	}
	p := intmat.New(len(cols[0]), len(cols))
	for j, c := range cols {
		p.SetCol(j, c)
	}
	return &Machine{P: p}
}

// Dim returns the array dimensionality k−1.
func (m *Machine) Dim() int { return m.P.Rows() }

// Decomposition is the result of realizing SD on a machine: K solves
// P·K = S·D with non-negative usage counts, and Buffers[i] =
// Π·d̄_i − Σ_l k_li is the number of delay registers needed on the path
// of dependence i.
type Decomposition struct {
	K       *intmat.Matrix
	Buffers []int64
}

// ErrUnrealizable reports that some transferred dependence cannot be
// decomposed into primitive hops within its schedule slack.
var ErrUnrealizable = errors.New("array: space mapping not realizable on this machine")

// Decompose finds, for each dependence d̄_i, non-negative integer usage
// counts of the primitives realizing the transfer S·d̄_i in the fewest
// hops, then checks the timing inequality Σ_l k_li ≤ Π·d̄_i. The
// minimum-hop decomposition is found exactly with a small integer
// program per dependence (the instances have r variables and k−1
// equality rows — trivial for the solver).
func (m *Machine) Decompose(s *intmat.Matrix, d *intmat.Matrix, pi intmat.Vector) (*Decomposition, error) {
	if s.Rows() != m.Dim() {
		return nil, fmt.Errorf("array: S has %d rows, machine is %d-dimensional", s.Rows(), m.Dim())
	}
	if s.Cols() != d.Rows() || len(pi) != d.Rows() {
		return nil, fmt.Errorf("array: dimension mismatch: S %dx%d, D %dx%d, Π %d",
			s.Rows(), s.Cols(), d.Rows(), d.Cols(), len(pi))
	}
	sd := s.Mul(d)
	r := m.P.Cols()
	K := intmat.New(r, d.Cols())
	buffers := make([]int64, d.Cols())
	for i := 0; i < d.Cols(); i++ {
		target := sd.Col(i)
		counts, hops, err := m.minHops(target)
		if err != nil {
			return nil, fmt.Errorf("%w: dependence %d transfers %v: %v", ErrUnrealizable, i+1, target, err)
		}
		slack := pi.Dot(d.Col(i))
		if hops > slack {
			return nil, fmt.Errorf("%w: dependence %d needs %d hops but Π·d̄ = %d", ErrUnrealizable, i+1, hops, slack)
		}
		K.SetCol(i, counts)
		buffers[i] = slack - hops
	}
	return &Decomposition{K: K, Buffers: buffers}, nil
}

// MinHops returns, for each dependence column of D, the minimum number
// of primitive hops needed to realize the transfer S·d̄_i, independent
// of any schedule. It returns ErrUnrealizable if some transfer cannot
// be decomposed at all.
func (m *Machine) MinHops(s *intmat.Matrix, d *intmat.Matrix) ([]int64, error) {
	if s.Rows() != m.Dim() || s.Cols() != d.Rows() {
		return nil, fmt.Errorf("array: dimension mismatch: S %dx%d, D %dx%d", s.Rows(), s.Cols(), d.Rows(), d.Cols())
	}
	sd := s.Mul(d)
	hops := make([]int64, d.Cols())
	for i := 0; i < d.Cols(); i++ {
		_, h, err := m.minHops(sd.Col(i))
		if err != nil {
			return nil, fmt.Errorf("%w: dependence %d transfers %v: %v", ErrUnrealizable, i+1, sd.Col(i), err)
		}
		hops[i] = h
	}
	return hops, nil
}

// minHops finds non-negative integer counts x minimizing Σx subject to
// P·x = target.
func (m *Machine) minHops(target intmat.Vector) (intmat.Vector, int64, error) {
	r := m.P.Cols()
	c := make([]rat.Rat, r)
	lower := make([]lp.Bound, r)
	for j := 0; j < r; j++ {
		c[j] = rat.One()
		lower[j] = lp.BoundAt(rat.Zero())
	}
	prob := &lp.Problem{NumVars: r, C: c, Lower: lower}
	for row := 0; row < m.P.Rows(); row++ {
		coeffs := make([]rat.Rat, r)
		for j := 0; j < r; j++ {
			coeffs[j] = rat.FromInt(m.P.At(row, j))
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: coeffs, Op: lp.EQ, RHS: rat.FromInt(target[row]),
		})
	}
	sol, err := ilp.Solve(prob, nil)
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("no primitive decomposition (%v)", sol.Status)
	}
	counts := make(intmat.Vector, r)
	for j := 0; j < r; j++ {
		v, ok := sol.X[j].Int64()
		if !ok {
			return nil, 0, fmt.Errorf("non-integral decomposition %v", sol.X[j])
		}
		counts[j] = v
	}
	hops, ok := sol.Objective.Int64()
	if !ok {
		return nil, 0, fmt.Errorf("non-integral hop count %v", sol.Objective)
	}
	return counts, hops, nil
}

// SingleHop reports the appendix's link-collision criterion: when every
// column of K has at most one non-zero entry and that entry is 1, each
// datum uses at most one link exactly once on its way from source to
// destination, so no two data can ever contend for a link ("data link
// collisions occur only if data use links more than once when passing
// from the source to the destination").
func (d *Decomposition) SingleHop() bool {
	for j := 0; j < d.K.Cols(); j++ {
		nonZero := 0
		for i := 0; i < d.K.Rows(); i++ {
			v := d.K.At(i, j)
			if v == 0 {
				continue
			}
			if v != 1 {
				return false
			}
			nonZero++
		}
		if nonZero > 1 {
			return false
		}
	}
	return true
}

// TotalBuffers returns the sum of buffer registers over all
// dependencies — the cost figure the paper compares designs by
// ("the number of buffers is Σ(Π·d̄_i − 1) = 4" for [23] versus 3 here).
func (d *Decomposition) TotalBuffers() int64 {
	var s int64
	for _, b := range d.Buffers {
		s += b
	}
	return s
}
