package array

import (
	"errors"
	"math/rand"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

func TestNearestNeighborShape(t *testing.T) {
	m := NearestNeighbor(2)
	if m.Dim() != 2 || m.P.Cols() != 4 {
		t.Fatalf("P is %dx%d", m.P.Rows(), m.P.Cols())
	}
	// Columns must be ±e1, ±e2 in some order; check sums.
	seen := map[string]bool{}
	for j := 0; j < 4; j++ {
		seen[m.P.Col(j).String()] = true
	}
	for _, want := range []string{"[1 0]", "[-1 0]", "[0 1]", "[0 -1]"} {
		if !seen[want] {
			t.Errorf("missing primitive %s; have %v", want, seen)
		}
	}
}

func TestFromPrimitives(t *testing.T) {
	m := FromPrimitives(intmat.Vec(1), intmat.Vec(-1))
	if m.Dim() != 1 || m.P.Cols() != 2 {
		t.Fatalf("P is %dx%d", m.P.Rows(), m.P.Cols())
	}
}

// TestExample51LinearArray reproduces the matmul design of Example 5.1:
// S = [1,1,-1], Π = [1,μ,1] with μ = 4, linear array with primitives
// P = [1, -1] (left-right links). SD = [1, 1, -1]; the decomposition
// needs exactly 1 hop per dependence, and the A-link (dependence d̄_2,
// Π·d̄_2 = μ = 4) carries 3 buffers. Total buffers = 3, versus 4 for
// the [23] schedule Π' = [2,1,μ].
func TestExample51LinearArray(t *testing.T) {
	machine := NearestNeighbor(1)
	S := intmat.FromRows([]int64{1, 1, -1})
	algo := uda.MatMul(4)
	pi := intmat.Vec(1, 4, 1)

	dec, err := machine.Decompose(S, algo.D, pi)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Buffers; got[0] != 0 || got[1] != 3 || got[2] != 0 {
		t.Errorf("buffers = %v, want [0 3 0]", got)
	}
	if dec.TotalBuffers() != 3 {
		t.Errorf("total buffers = %d, want 3", dec.TotalBuffers())
	}
	if !dec.SingleHop() {
		t.Error("Example 5.1 design should be single-hop (collision-free)")
	}
	// Verify P·K = S·D.
	if !machine.P.Mul(dec.K).Equal(S.Mul(algo.D)) {
		t.Errorf("PK != SD:\nK=\n%v", dec.K)
	}

	// The [23] schedule needs Σ(Π'·d̄_i − 1) = 4 buffers.
	piRef := intmat.Vec(2, 1, 4)
	decRef, err := machine.Decompose(S, algo.D, piRef)
	if err != nil {
		t.Fatal(err)
	}
	if decRef.TotalBuffers() != 4 {
		t.Errorf("[23] total buffers = %d, want 4", decRef.TotalBuffers())
	}
}

// TestExample52TransitiveClosure: S = [0,0,1], Π = [μ+1,1,1], μ = 4.
// P = SD = [1, 0, -1, 0, -1] realized on the bidirectional linear
// array; every transfer is 0 or 1 hop.
func TestExample52TransitiveClosure(t *testing.T) {
	machine := NearestNeighbor(1)
	S := intmat.FromRows([]int64{0, 0, 1})
	algo := uda.TransitiveClosure(4)
	pi := intmat.Vec(5, 1, 1)

	dec, err := machine.Decompose(S, algo.D, pi)
	if err != nil {
		t.Fatal(err)
	}
	if !machine.P.Mul(dec.K).Equal(S.Mul(algo.D)) {
		t.Error("PK != SD")
	}
	if !dec.SingleHop() {
		t.Error("Example 5.2 design should be single-hop")
	}
	// Transfers: SD = [1,0,-1,0,-1]; hop counts 1,0,1,0,1. Slacks
	// Π·d̄: d1=(0,0,1)→1; d2=(0,1,0)→1; d3=(1,-1,-1)→3; d4=(1,-1,0)→4;
	// d5=(1,0,-1)→4. Buffers = slack − hops = [0,1,2,4,3].
	want := []int64{0, 1, 2, 4, 3}
	for i, b := range dec.Buffers {
		if b != want[i] {
			t.Errorf("buffer[%d] = %d, want %d", i, b, want[i])
		}
	}
}

func TestDecomposeMultiHop(t *testing.T) {
	// A transfer of (2,1) on the 2-D mesh needs 3 hops.
	machine := NearestNeighbor(2)
	S := intmat.FromRows([]int64{2, 0}, []int64{1, 0})
	D := intmat.FromRows([]int64{1, 0}, []int64{0, 1})
	pi := intmat.Vec(3, 1)
	dec, err := machine.Decompose(S, D, pi)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0 of K must sum to 3 with buffer 0.
	var hops int64
	for i := 0; i < dec.K.Rows(); i++ {
		hops += dec.K.At(i, 0)
	}
	if hops != 3 || dec.Buffers[0] != 0 {
		t.Errorf("hops = %d buffers = %d, want 3 and 0", hops, dec.Buffers[0])
	}
	if dec.SingleHop() {
		t.Error("multi-hop decomposition reported single-hop")
	}
}

func TestDecomposeTimingViolation(t *testing.T) {
	// Same transfer but the schedule leaves only 2 time units.
	machine := NearestNeighbor(2)
	S := intmat.FromRows([]int64{2, 0}, []int64{1, 0})
	D := intmat.FromRows([]int64{1, 0}, []int64{0, 1})
	pi := intmat.Vec(2, 1)
	if _, err := machine.Decompose(S, D, pi); !errors.Is(err, ErrUnrealizable) {
		t.Errorf("err = %v, want ErrUnrealizable", err)
	}
}

func TestDecomposeImpossibleTransfer(t *testing.T) {
	// A machine with only the +e1 primitive cannot realize a −1 transfer.
	machine := FromPrimitives(intmat.Vec(1))
	S := intmat.FromRows([]int64{-1})
	D := intmat.FromRows([]int64{1})
	pi := intmat.Vec(10)
	if _, err := machine.Decompose(S, D, pi); !errors.Is(err, ErrUnrealizable) {
		t.Errorf("err = %v, want ErrUnrealizable", err)
	}
}

func TestDecomposeShapeErrors(t *testing.T) {
	machine := NearestNeighbor(2)
	S1 := intmat.FromRows([]int64{1, 0}) // 1 row, machine wants 2
	D := intmat.Identity(2)
	if _, err := machine.Decompose(S1, D, intmat.Vec(1, 1)); err == nil {
		t.Error("row-mismatched S accepted")
	}
	S2 := intmat.FromRows([]int64{1, 0, 0}, []int64{0, 1, 0})
	if _, err := machine.Decompose(S2, D, intmat.Vec(1, 1)); err == nil {
		t.Error("column-mismatched S accepted")
	}
}

// TestDecomposePropertyRandom: on random meshes, space mappings and
// dependence matrices, any successful decomposition satisfies P·K = SD
// with non-negative counts, hop counts equal to the L1 norm of the
// transfer (the mesh's exact shortest path), and buffers equal to the
// slack.
func TestDecomposePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(2)
		machine := NearestNeighbor(dim)
		n := 2 + rng.Intn(2)
		m := 1 + rng.Intn(3)
		s := intmat.New(dim, n)
		for i := 0; i < dim; i++ {
			for j := 0; j < n; j++ {
				s.Set(i, j, rng.Int63n(5)-2)
			}
		}
		d := intmat.New(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				d.Set(i, j, rng.Int63n(3)-1)
			}
		}
		// A generous schedule so timing never blocks the property.
		pi := make(intmat.Vector, n)
		for i := range pi {
			pi[i] = 100
		}
		dec, err := machine.Decompose(s, d, pi)
		if err != nil {
			continue // timing can still fail when Π·d̄ ≤ 0
		}
		if !machine.P.Mul(dec.K).Equal(s.Mul(d)) {
			t.Fatalf("PK != SD for S=\n%v D=\n%v", s, d)
		}
		sd := s.Mul(d)
		for i := 0; i < m; i++ {
			var hops int64
			for l := 0; l < dec.K.Rows(); l++ {
				v := dec.K.At(l, i)
				if v < 0 {
					t.Fatalf("negative usage count K[%d][%d] = %d", l, i, v)
				}
				hops += v
			}
			if want := sd.Col(i).AbsSum(); hops != want {
				t.Fatalf("hops for dependence %d = %d, want L1 = %d", i, hops, want)
			}
			if dec.Buffers[i] != pi.Dot(d.Col(i))-hops {
				t.Fatalf("buffers[%d] = %d, want slack %d", i, dec.Buffers[i], pi.Dot(d.Col(i))-hops)
			}
		}
	}
}

func TestZeroTransferNeedsNoHops(t *testing.T) {
	machine := NearestNeighbor(1)
	S := intmat.FromRows([]int64{0, 0, 1})
	D := intmat.FromRows([]int64{1, 0, 0}, []int64{0, 1, 0}, []int64{0, 0, 1})
	pi := intmat.Vec(1, 1, 1)
	dec, err := machine.Decompose(S, D, pi)
	if err != nil {
		t.Fatal(err)
	}
	// d1, d2 transfer 0 → all counts zero, buffers = Π·d̄ = 1.
	if dec.Buffers[0] != 1 || dec.Buffers[1] != 1 || dec.Buffers[2] != 0 {
		t.Errorf("buffers = %v, want [1 1 0]", dec.Buffers)
	}
}
