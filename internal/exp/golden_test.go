package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenE52Markdown pins the Markdown rendering of the fully
// deterministic Example 5.2 artifact — the regression guard for both
// the experiment's numbers and the renderer's format. Refresh with
// `go test ./internal/exp/ -update` after an intentional change.
func TestGoldenE52Markdown(t *testing.T) {
	artifact, err := E52()
	if err != nil {
		t.Fatal(err)
	}
	got := RenderMarkdown(artifact)
	path := filepath.Join("testdata", "e52.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/exp/ -update`): %v", err)
	}
	if string(want) != got {
		t.Errorf("e52 markdown differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
