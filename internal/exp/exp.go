// Package exp defines the evaluation artifacts of the reproduction as
// typed, renderable values: each experiment produces an Artifact made
// of tables, preformatted figure blocks and notes, which the renderers
// emit as plain text, Markdown (the format EXPERIMENTS.md quotes) or
// JSON. The cmd/experiments tool is a thin shell over this package, so
// every number in the documentation is regenerable and testable.
package exp

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a column-aligned result table.
type Table struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Artifact is one experiment's complete output.
type Artifact struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Tables []Table `json:"tables,omitempty"`
	// Figures are preformatted monospace blocks (ASCII diagrams).
	Figures []string `json:"figures,omitempty"`
	// Notes are prose observations, one paragraph per entry.
	Notes []string `json:"notes,omitempty"`
}

// Spec names a runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func() (*Artifact, error)
}

// Registry returns every experiment in presentation order.
func Registry() []Spec {
	return []Spec{
		{"e51", "Example 5.1 — time-optimal matmul on a linear array", E51},
		{"e52", "Example 5.2 — time-optimal transitive closure on a linear array", E52},
		{"fig1", "Figure 1 — feasible vs non-feasible conflict vectors", Fig1},
		{"fig2", "Figure 2 — linear array block diagram for matmul", Fig2},
		{"fig3", "Figure 3 — space-time execution of matmul (μ = 4)", Fig3},
		{"hnf", "Examples 2.1/4.1/4.2 — Hermite normal form and conflict vectors", HNFExample},
		{"prop81", "Proposition 8.1 — closed-form U(Π) for T ∈ Z^{3×5}", Prop81},
		{"engines", "Ablation — Procedure 5.1 vs ILP formulation", Engines},
		{"bitlevel", "Bit-level studies — 4-D convolution and 5-D matmul into 2-D arrays", BitLevel},
		{"gap", "Theorem 4.7 necessity gap — conflict-free matrix failing condition (1)", Gap},
		{"space", "Problems 6.1/6.2 — space-optimal and joint mappings (paper future work)", Space},
	}
}

// Lookup returns the spec with the given ID.
func Lookup(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// RenderText formats an artifact for terminals.
func RenderText(a *Artifact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n", a.ID, a.Title)
	for _, t := range a.Tables {
		if t.Title != "" {
			fmt.Fprintf(&b, "%s\n", t.Title)
		}
		widths := columnWidths(t)
		writeRowText(&b, t.Columns, widths)
		for _, r := range t.Rows {
			writeRowText(&b, r, widths)
		}
		b.WriteString("\n")
	}
	for _, f := range a.Figures {
		b.WriteString(f)
		if !strings.HasSuffix(f, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// RenderMarkdown formats an artifact as a Markdown section.
func RenderMarkdown(a *Artifact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", a.ID, a.Title)
	for _, t := range a.Tables {
		if t.Title != "" {
			fmt.Fprintf(&b, "**%s**\n\n", t.Title)
		}
		b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
		sep := make([]string, len(t.Columns))
		for i := range sep {
			sep[i] = "---"
		}
		b.WriteString("|" + strings.Join(sep, "|") + "|\n")
		for _, r := range t.Rows {
			b.WriteString("| " + strings.Join(r, " | ") + " |\n")
		}
		b.WriteString("\n")
	}
	for _, f := range a.Figures {
		b.WriteString("```\n")
		b.WriteString(f)
		if !strings.HasSuffix(f, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("```\n\n")
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "> %s\n\n", n)
	}
	return b.String()
}

// RenderJSON emits the artifact as indented JSON.
func RenderJSON(a *Artifact) (string, error) {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

func columnWidths(t Table) []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len([]rune(c))
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(w) && len([]rune(c)) > w[i] {
				w[i] = len([]rune(c))
			}
		}
	}
	return w
}

func writeRowText(b *strings.Builder, cells []string, widths []int) {
	for i, c := range cells {
		if i > 0 {
			b.WriteString(" | ")
		}
		pad := 0
		if i < len(widths) {
			pad = widths[i] - len([]rune(c))
		}
		b.WriteString(c)
		if pad > 0 {
			b.WriteString(strings.Repeat(" ", pad))
		}
	}
	b.WriteString("\n")
}
