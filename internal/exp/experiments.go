package exp

import (
	"fmt"

	"lodim/internal/array"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/spacetime"
	"lodim/internal/systolic"
	"lodim/internal/uda"
)

// E51 sweeps the matmul problem size and compares the measured optimum
// against the paper's closed forms: t = μ(μ+2)+1 for the optimum and
// t' = μ(μ+3)+1 for the reference [23] schedule Π' = [2,1,μ]. The
// dataflow bound (critical path, 3μ+1) shows how much of the gap to
// the absolute minimum the linear array leaves.
func E51() (*Artifact, error) {
	a := &Artifact{ID: "e51", Title: "Example 5.1 — time-optimal matmul on a linear array"}
	tbl := Table{
		Title:   "matmul, S = [1,1,-1], linear array (P = [1,-1])",
		Columns: []string{"mu", "t measured", "t paper μ(μ+2)+1", "Π° found", "t' [23] μ(μ+3)+1", "buffers opt/[23]", "dataflow bound", "speedup", "match"},
	}
	machine := array.NearestNeighbor(1)
	for mu := int64(2); mu <= 8; mu++ {
		algo := uda.MatMul(mu)
		s := intmat.FromRows([]int64{1, 1, -1})
		res, err := schedule.FindOptimal(algo, s, &schedule.Options{Machine: machine})
		if err != nil {
			return nil, err
		}
		paperT := mu*(mu+2) + 1
		refPi := intmat.Vec(2, 1, mu)
		refT := schedule.TotalTime(refPi, algo.Set)
		refDec, err := machine.Decompose(s, algo.D, refPi)
		if err != nil {
			return nil, err
		}
		cp, err := algo.CriticalPath()
		if err != nil {
			return nil, err
		}
		match := "OK"
		if res.Time != paperT {
			match = fmt.Sprintf("MISMATCH (paper %d)", paperT)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(mu), fmt.Sprint(res.Time), fmt.Sprint(paperT),
			res.Mapping.Pi.String(), fmt.Sprint(refT),
			fmt.Sprintf("%d / %d", res.Decomp.TotalBuffers(), refDec.TotalBuffers()),
			fmt.Sprint(cp),
			fmt.Sprintf("%.3fx", float64(refT)/float64(res.Time)),
			match,
		})
	}
	a.Tables = append(a.Tables, tbl)
	a.Notes = append(a.Notes,
		"the optimum is not unique; the paper reports the extreme points [1,μ,1]/[μ,1,1], the enumeration returns the lexicographically first optimal vector of equal cost.",
		"the paper states Π' = [2,1,μ] is optimal at μ = 3 (derived under [23]'s stricter model where data arrive exactly at their use time); under the paper's own relaxed timing (Equation 2.3 inequality, buffers allowed) the exhaustive search finds strictly better schedules at every μ ≥ 2.",
	)
	for _, mu := range []int64{2, 3, 4} {
		algo := uda.MatMul(mu)
		s := intmat.FromRows([]int64{1, 1, -1})
		res, err := schedule.FindOptimal(algo, s, nil)
		if err != nil {
			return nil, err
		}
		refT := schedule.TotalTime(intmat.Vec(2, 1, mu), algo.Set)
		verdict := "optimal"
		if refT > res.Time {
			verdict = "suboptimal"
		}
		a.Notes = append(a.Notes, fmt.Sprintf("μ=%d: t([2,1,μ]) = %d vs optimum %d → [23] schedule is %s here", mu, refT, res.Time, verdict))
	}
	return a, nil
}

// E52 sweeps the transitive closure and compares against the paper's
// t = μ(μ+3)+1 and [22]'s t' = μ(2μ+3)+1.
func E52() (*Artifact, error) {
	a := &Artifact{ID: "e52", Title: "Example 5.2 — time-optimal transitive closure on a linear array"}
	tbl := Table{
		Title:   "transitive closure, S = [0,0,1], linear array (P = SD)",
		Columns: []string{"mu", "t measured", "t paper μ(μ+3)+1", "Π° found", "t' [22] μ(2μ+3)+1", "speedup", "match"},
	}
	for mu := int64(2); mu <= 8; mu++ {
		algo := uda.TransitiveClosure(mu)
		s := intmat.FromRows([]int64{0, 0, 1})
		res, err := schedule.FindOptimal(algo, s, nil)
		if err != nil {
			return nil, err
		}
		paperT := mu*(mu+3) + 1
		refT := mu*(2*mu+3) + 1
		match := "OK"
		if res.Time != paperT {
			match = fmt.Sprintf("MISMATCH (paper %d)", paperT)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(mu), fmt.Sprint(res.Time), fmt.Sprint(paperT),
			res.Mapping.Pi.String(), fmt.Sprint(refT),
			fmt.Sprintf("%.3fx", float64(refT)/float64(res.Time)), match,
		})
	}
	a.Tables = append(a.Tables, tbl)
	a.Notes = append(a.Notes, "conflict vector of Π° = [μ+1,1,1]: γ = [1, -(μ+1), 0] — feasible by Theorem 2.2.")
	return a, nil
}

// Fig1 renders the feasibility classification of Figure 1.
func Fig1() (*Artifact, error) {
	a := &Artifact{ID: "fig1", Title: "Figure 1 — feasible vs non-feasible conflict vectors"}
	set := uda.Box(4, 4)
	for _, gamma := range []intmat.Vector{intmat.Vec(1, 1), intmat.Vec(3, 5)} {
		out, err := spacetime.RenderIndexSet2D(set, gamma)
		if err != nil {
			return nil, err
		}
		a.Figures = append(a.Figures, out)
	}
	return a, nil
}

func figure3Mapping() (*schedule.Mapping, error) {
	return schedule.NewMapping(uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 4, 1))
}

// Fig2 renders the array block diagram of Figure 2.
func Fig2() (*Artifact, error) {
	a := &Artifact{ID: "fig2", Title: "Figure 2 — linear array block diagram for matmul"}
	m, err := figure3Mapping()
	if err != nil {
		return nil, err
	}
	dec, err := array.NearestNeighbor(1).Decompose(m.S, m.Algo.D, m.Pi)
	if err != nil {
		return nil, err
	}
	out, err := spacetime.RenderLinearArray(m, dec, []string{"B", "A", "C"})
	if err != nil {
		return nil, err
	}
	a.Figures = append(a.Figures, out)
	return a, nil
}

// Fig3 renders the space-time diagram of Figure 3.
func Fig3() (*Artifact, error) {
	a := &Artifact{ID: "fig3", Title: "Figure 3 — space-time execution of matmul (μ = 4)"}
	m, err := figure3Mapping()
	if err != nil {
		return nil, err
	}
	out, err := spacetime.RenderSpaceTime(m)
	if err != nil {
		return nil, err
	}
	a.Figures = append(a.Figures, out)
	return a, nil
}

// HNFExample works Examples 2.1/4.1/4.2.
func HNFExample() (*Artifact, error) {
	a := &Artifact{ID: "hnf", Title: "Examples 2.1/4.1/4.2 — Hermite normal form and conflict vectors"}
	T := intmat.FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	set := uda.Cube(4, 6)
	h, err := intmat.HermiteNormalForm(T)
	if err != nil {
		return nil, err
	}
	a.Figures = append(a.Figures,
		fmt.Sprintf("T (Equation 2.8):\n%v\n\nH = TU:\n%v\n\nU:\n%v\n\nV = U^-1:\n%v", T, h.H, h.U, h.V()))
	tbl := Table{Title: "conflict vectors of Example 2.1", Columns: []string{"γ", "Tγ = 0", "feasible (Thm 2.2)"}}
	for _, g := range []intmat.Vector{intmat.Vec(0, 1, -7, 0), intmat.Vec(7, -1, 0, 0), intmat.Vec(1, 0, -1, 0)} {
		tbl.Rows = append(tbl.Rows, []string{
			g.String(), fmt.Sprint(T.MulVec(g).IsZero()), fmt.Sprint(conflict.Feasible(set, g)),
		})
	}
	a.Tables = append(a.Tables, tbl)
	res, err := conflict.Decide(T, set)
	if err != nil {
		return nil, err
	}
	a.Notes = append(a.Notes, fmt.Sprintf("verdict: %s (paper: T is NOT conflict-free — γ3 = [1,0,-1,0] is non-feasible)", res))
	return a, nil
}

// Prop81 demonstrates the closed-form null basis against the HNF.
func Prop81() (*Artifact, error) {
	a := &Artifact{ID: "prop81", Title: "Proposition 8.1 — closed-form U(Π) for T ∈ Z^{3×5}"}
	s := intmat.FromRows(
		[]int64{1, 0, 1, 0, 1},
		[]int64{0, 1, 0, 1, 1},
	)
	pi := intmat.Vec(1, 1, 3, 9, 27)
	u4, u5, err := schedule.Prop81NullVectors(s, pi)
	if err != nil {
		return nil, err
	}
	T := s.AppendRow(pi)
	h, err := intmat.HermiteNormalForm(T)
	if err != nil {
		return nil, err
	}
	a.Figures = append(a.Figures, fmt.Sprintf("S:\n%v\nΠ = %v\n\nProposition 8.1 basis:\n  u4 = %v (T·u4 = %v)\n  u5 = %v (T·u5 = %v)\nHNF basis: %v",
		s, pi, u4, T.MulVec(u4), u5, T.MulVec(u5), h.NullBasis()))
	// Same lattice, proven by Smith-form index 1 in both directions.
	b1 := intmat.New(5, 2)
	b1.SetCol(0, u4)
	b1.SetCol(1, u5)
	b2 := intmat.New(5, 2)
	for j, u := range h.NullBasis() {
		b2.SetCol(j, u)
	}
	idx12, ok12 := intmat.LatticeIndex(b1, b2)
	idx21, ok21 := intmat.LatticeIndex(b2, b1)
	a.Notes = append(a.Notes, fmt.Sprintf("lattice indexes: [HNF : Prop81] = %d (%v), [Prop81 : HNF] = %d (%v) — both 1 ⟹ identical lattices.", idx12, ok12, idx21, ok21))
	if !ok12 || !ok21 || idx12 != 1 || idx21 != 1 {
		return nil, fmt.Errorf("exp: Prop81 lattice mismatch: %d/%v, %d/%v", idx12, ok12, idx21, ok21)
	}
	return a, nil
}

// Engines compares the two optimizers (X3/X5 ablation).
func Engines() (*Artifact, error) {
	a := &Artifact{ID: "engines", Title: "Ablation — Procedure 5.1 vs ILP formulation"}
	cases := []struct {
		algo *uda.Algorithm
		s    *intmat.Matrix
	}{
		{uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1})},
		{uda.MatMul(6), intmat.FromRows([]int64{1, 1, -1})},
		{uda.MatMul(8), intmat.FromRows([]int64{1, 1, -1})},
		{uda.TransitiveClosure(4), intmat.FromRows([]int64{0, 0, 1})},
		{uda.TransitiveClosure(8), intmat.FromRows([]int64{0, 0, 1})},
		{uda.LU(4), intmat.FromRows([]int64{1, 1, -1})},
		{uda.Convolution(8, 3), intmat.New(0, 2)},
	}
	tbl := Table{Columns: []string{"algorithm", "μ", "t (both)", "Π (procedure)", "candidates 5.1", "B&B nodes ILP", "verdict"}}
	for _, c := range cases {
		proc, err := schedule.FindOptimal(c.algo, c.s, nil)
		if err != nil {
			return nil, err
		}
		ilpRes, err := schedule.FindOptimalILP(c.algo, c.s, nil)
		if err != nil {
			return nil, err
		}
		agree := "agree"
		if proc.Time != ilpRes.Time {
			agree = fmt.Sprintf("DISAGREE procedure=%d ilp=%d", proc.Time, ilpRes.Time)
		}
		tbl.Rows = append(tbl.Rows, []string{
			c.algo.Name, c.algo.Set.Upper.String(), fmt.Sprint(proc.Time),
			proc.Mapping.Pi.String(), fmt.Sprint(proc.Candidates), fmt.Sprint(ilpRes.Candidates), agree,
		})
	}
	a.Tables = append(a.Tables, tbl)
	a.Notes = append(a.Notes, "the ILP explores a μ-independent number of nodes while Procedure 5.1's candidate count grows with the objective value — the shape of the paper's complexity discussion (O(n·μ^(2μ+1)) enumeration vs polynomial integer programming).")
	return a, nil
}

// BitLevel maps the paper's motivating bit-level algorithms into 2-D
// arrays (X4).
func BitLevel() (*Artifact, error) {
	a := &Artifact{ID: "bitlevel", Title: "Bit-level studies — 4-D convolution and 5-D matmul into 2-D arrays"}
	tbl := Table{Columns: []string{"algorithm", "n", "μ", "S rows", "Π°", "t", "certificate", "candidates"}}

	conv := uda.BitLevelConvolution(4, 3, 3)
	sConv := intmat.FromRows([]int64{1, 0, 0, 0}, []int64{0, 1, 0, 0})
	resConv, err := schedule.FindOptimal(conv, sConv, nil)
	if err != nil {
		return nil, err
	}
	tbl.Rows = append(tbl.Rows, []string{
		conv.Name, fmt.Sprint(conv.Dim()), conv.Set.Upper.String(), "e1; e2",
		resConv.Mapping.Pi.String(), fmt.Sprint(resConv.Time), resConv.Conflict.Method, fmt.Sprint(resConv.Candidates),
	})

	mm := uda.BitLevelMatMul(2, 2)
	sMM := intmat.FromRows([]int64{1, 0, 0, 0, 0}, []int64{0, 1, 0, 0, 0})
	resMM, err := schedule.FindOptimal(mm, sMM, nil)
	if err != nil {
		return nil, err
	}
	tbl.Rows = append(tbl.Rows, []string{
		mm.Name, fmt.Sprint(mm.Dim()), mm.Set.Upper.String(), "e1; e2",
		resMM.Mapping.Pi.String(), fmt.Sprint(resMM.Time), resMM.Conflict.Method, fmt.Sprint(resMM.Candidates),
	})
	a.Tables = append(a.Tables, tbl)
	a.Notes = append(a.Notes, "the 5-D case runs in the k = n−2 regime of Theorem 4.7 — the configuration the paper reports using for its follow-up bit-level matmul design.")

	// Functional validation: real bit-serial arithmetic through the
	// winning mapping (carries chain along the (0,0,0,1,−1) dependence).
	opA := [][]int64{{7, 2, 5}, {1, 6, 3}, {4, 0, 7}}
	opB := [][]int64{{3, 5, 1}, {7, 2, 0}, {6, 4, 2}}
	prog, err := systolic.NewBitMatMulProgram(2, 2, opA, opB)
	if err != nil {
		return nil, err
	}
	sim, err := systolic.New(resMM.Mapping, prog, nil)
	if err != nil {
		return nil, err
	}
	run, err := sim.Run()
	if err != nil {
		return nil, err
	}
	got := systolic.CollectBitMatMul(2, run.Outputs)
	want := systolic.MatMulReference(opA, opB)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				return nil, fmt.Errorf("exp: bit-serial product mismatch at (%d,%d)", i, j)
			}
		}
	}
	a.Notes = append(a.Notes, fmt.Sprintf("bit-serial arithmetic verified on the winning mapping: 3-bit operands, %d computations in %d cycles, product equals the word-level reference.", run.Computations, run.Cycles))
	return a, nil
}

// Gap exhibits the Theorem 4.7 necessity counterexample (X6).
func Gap() (*Artifact, error) {
	a := &Artifact{ID: "gap", Title: "Theorem 4.7 necessity gap — conflict-free matrix failing condition (1)"}
	T := intmat.FromRows(
		[]int64{1, 0, -10, 2},
		[]int64{0, 1, 2, -10},
	)
	set := uda.Box(5, 5, 5, 5)
	an, err := conflict.Analyze(T, set)
	if err != nil {
		return nil, err
	}
	free, _, err := an.ExactDecision()
	if err != nil {
		return nil, err
	}
	bfFree, _ := conflict.BruteForce(T, set)
	a.Figures = append(a.Figures, fmt.Sprintf("T:\n%v\nμ = %v\nnull basis: %v", T, set.Upper, an.NullBasis()))
	a.Tables = append(a.Tables, Table{Columns: []string{"check", "result"}, Rows: [][]string{
		{"Theorem 4.7 conditions hold", fmt.Sprint(an.Theorem47())},
		{"exact decision: conflict-free", fmt.Sprint(free)},
		{"brute force: conflict-free", fmt.Sprint(bfFree)},
	}})
	a.Notes = append(a.Notes,
		"the matrix is conflict-free although Theorem 4.7's condition (1) fails: the same-sign requirement on a certifying row is not necessary when mixed-sign rows jointly exclude every small combination. lodim therefore treats Theorems 4.7/4.8 as sufficient certificates with an exact fallback.")
	if !free || !bfFree || an.Theorem47() {
		return nil, fmt.Errorf("exp: gap counterexample no longer holds")
	}
	return a, nil
}

// Space runs the Section 6 future-work problems (X7).
func Space() (*Artifact, error) {
	a := &Artifact{ID: "space", Title: "Problems 6.1/6.2 — space-optimal and joint mappings (paper future work)"}
	algo := uda.MatMul(4)
	pi := intmat.Vec(1, 4, 1)
	sres, err := schedule.FindSpaceMapping(algo, pi, 1, nil)
	if err != nil {
		return nil, err
	}
	a.Tables = append(a.Tables, Table{
		Title:   "Problem 6.1: matmul μ=4, Π = [1 4 1] fixed",
		Columns: []string{"space mapping", "processors", "wire", "t"},
		Rows: [][]string{
			{sres.Mapping.S.Row(0).String() + " (search)", fmt.Sprint(sres.Processors), fmt.Sprint(sres.WireLength), fmt.Sprint(sres.Time)},
			{"[1 1 -1] (paper)", "13", "3", "25"},
		},
	})
	tbl := Table{Title: "Problem 6.2: joint S and Π", Columns: []string{"algorithm", "joint t", "fixed-S paper optimum", "S", "Π", "PEs"}}
	for _, c := range []struct {
		algo *uda.Algorithm
		base int64
	}{
		{uda.MatMul(4), 25},
		{uda.TransitiveClosure(4), 29},
	} {
		jres, err := schedule.FindJointMapping(c.algo, 1, nil)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			c.algo.Name, fmt.Sprint(jres.Time), fmt.Sprint(c.base),
			jres.Mapping.S.Row(0).String(), jres.Mapping.Pi.String(), fmt.Sprint(jres.Processors),
		})
	}
	a.Tables = append(a.Tables, tbl)
	a.Notes = append(a.Notes, "for the transitive closure the joint search strictly beats the paper's fixed-S optimum — Example 5.2's S = [0,0,1] is not time-optimal among linear arrays; both winners are verified conflict-free by brute force in the test suite.")
	return a, nil
}
