package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment and
// checks for the headline facts each must contain (in text rendering).
func TestAllExperimentsRun(t *testing.T) {
	wantContains := map[string][]string{
		"e51":      {"25", "OK", "[1 2 3]", "13"}, // t, verdict, winner, dataflow bound at μ=4
		"e52":      {"29", "OK", "[5 1 1]"},
		"fig1":     {"NON-FEASIBLE", "FEASIBLE"},
		"fig2":     {"buffers: 3", "link A"},
		"fig3":     {"000", "444"},
		"hnf":      {"has conflicts", "[1 0 -1 0]", "false"},
		"prop81":   {"T·u4 = [0 0 0]", "identical lattices"},
		"engines":  {"agree"},
		"bitlevel": {"theorem-4.7", "theorem-3.1"},
		"gap":      {"Theorem 4.7 conditions hold", "false", "true"},
		"space":    {"9", "Problem 6.2", "beats"},
	}
	for _, spec := range Registry() {
		artifact, err := spec.Run()
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		if artifact.ID != spec.ID {
			t.Errorf("%s: artifact ID %q", spec.ID, artifact.ID)
		}
		out := RenderText(artifact)
		if out == "" {
			t.Errorf("%s: empty output", spec.ID)
		}
		for _, want := range wantContains[spec.ID] {
			if !strings.Contains(out, want) {
				t.Errorf("%s: output missing %q:\n%s", spec.ID, want, out)
			}
		}
	}
}

func TestRegistryUniqueAndLookup(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Registry() {
		if seen[spec.ID] {
			t.Errorf("duplicate experiment %q", spec.ID)
		}
		seen[spec.ID] = true
		if spec.Title == "" || spec.Run == nil {
			t.Errorf("%s: incomplete spec", spec.ID)
		}
		got, ok := Lookup(spec.ID)
		if !ok || got.ID != spec.ID {
			t.Errorf("Lookup(%s) failed", spec.ID)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown ID succeeded")
	}
}

func TestRenderMarkdown(t *testing.T) {
	a := &Artifact{
		ID:      "x",
		Title:   "demo",
		Tables:  []Table{{Title: "tt", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}},
		Figures: []string{"ascii art"},
		Notes:   []string{"a note"},
	}
	md := RenderMarkdown(a)
	for _, want := range []string{"## x — demo", "| a | b |", "|---|---|", "| 1 | 2 |", "```\nascii art\n```", "> a note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	a, err := E52()
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.ID != "e52" || len(back.Tables) == 0 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestRenderTextAlignment(t *testing.T) {
	a := &Artifact{ID: "x", Title: "t", Tables: []Table{{
		Columns: []string{"col", "c"},
		Rows:    [][]string{{"long-cell", "1"}, {"s", "22"}},
	}}}
	out := RenderText(a)
	lines := strings.Split(out, "\n")
	// Header and rows must align on the separator.
	var bars []int
	for _, l := range lines {
		if i := strings.Index(l, " | "); i >= 0 {
			bars = append(bars, i)
		}
	}
	if len(bars) != 3 {
		t.Fatalf("expected 3 table lines, got %d:\n%s", len(bars), out)
	}
	if bars[0] != bars[1] || bars[1] != bars[2] {
		t.Errorf("columns not aligned: %v\n%s", bars, out)
	}
}
