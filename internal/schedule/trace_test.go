package schedule

import (
	"context"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/trace"
	"lodim/internal/uda"
)

// traceTestAlgo is the matmul-shaped algorithm the schedule tests use.
func traceTestAlgo(t *testing.T) *uda.Algorithm {
	t.Helper()
	return uda.MatMul(3)
}

// TestTracedSearchMatchesUntraced locks the invariant that tracing is
// pure observation: the same joint search under an active trace span
// returns the identical mapping, time, cost, and effort counters, and
// additionally carries the trace summary.
func TestTracedSearchMatchesUntraced(t *testing.T) {
	algo := traceTestAlgo(t)
	opts := &SpaceOptions{Schedule: Options{Workers: 4}}

	plain, err := FindJointMappingContext(context.Background(), algo, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced search carries a trace summary")
	}

	tracer := trace.New(trace.Config{})
	ctx, root := tracer.StartRoot(context.Background(), "test", "")
	traced, err := FindJointMappingContext(ctx, algo, 1, opts)
	root.End()
	if err != nil {
		t.Fatal(err)
	}

	if !traced.Mapping.T.Equal(plain.Mapping.T) {
		t.Fatalf("traced winner differs:\ntraced\n%v\nplain\n%v", traced.Mapping.T, plain.Mapping.T)
	}
	if traced.Time != plain.Time || traced.Cost != plain.Cost || traced.Candidates != plain.Candidates {
		t.Fatalf("traced metrics differ: (%d,%d,%d) vs (%d,%d,%d)",
			traced.Time, traced.Cost, traced.Candidates, plain.Time, plain.Cost, plain.Candidates)
	}
	// Orbit pruning is deterministic; the incumbent-racing counters can
	// differ between runs, so only the exact ones are compared.
	if traced.Stats.SpaceCandidates != plain.Stats.SpaceCandidates ||
		traced.Stats.PrunedOrbit != plain.Stats.PrunedOrbit {
		t.Fatalf("traced deterministic stats differ: %+v vs %+v", traced.Stats, plain.Stats)
	}

	if traced.Trace == nil {
		t.Fatal("traced search did not attach a trace summary")
	}
	if traced.Trace.TraceID != root.TraceID() {
		t.Fatalf("summary trace id %s, want %s", traced.Trace.TraceID, root.TraceID())
	}
	if traced.ScheduleResult.Trace != traced.Trace {
		t.Fatal("ScheduleResult does not share the joint trace summary")
	}

	// The span tree has the expected taxonomy: joint-search with a
	// collect child, worker spans, and nested pi-search spans.
	names := map[string]int{}
	var count func(s *trace.Span)
	count = func(s *trace.Span) {
		names[s.Name()]++
		for _, c := range s.Children() {
			count(c)
		}
	}
	count(root)
	for _, want := range []string{"joint-search", "collect", "worker", "pi-search"} {
		if names[want] == 0 {
			t.Fatalf("span taxonomy missing %q: %v", want, names)
		}
	}
	if names["worker"] > 4 {
		t.Fatalf("%d worker spans for Workers=4", names["worker"])
	}
}

// TestTracedScheduleSearchLevels checks the top-level Procedure 5.1
// span taxonomy: one pi-search span with per-cost-level children.
func TestTracedScheduleSearchLevels(t *testing.T) {
	algo := traceTestAlgo(t)
	s := intmat.FromRows([]int64{1, 1, -1})

	tracer := trace.New(trace.Config{})
	ctx, root := tracer.StartRoot(context.Background(), "test", "")
	res, err := FindOptimalContext(ctx, algo, s, nil)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.TraceID != root.TraceID() {
		t.Fatalf("Result.Trace = %+v, want trace %s", res.Trace, root.TraceID())
	}
	var pi *trace.Span
	for _, c := range root.Children() {
		if c.Name() == "pi-search" {
			pi = c
		}
	}
	if pi == nil {
		t.Fatal("no pi-search span under the root")
	}
	levels := 0
	for _, c := range pi.Children() {
		if c.Name() == "level" {
			levels++
		}
	}
	if levels == 0 {
		t.Fatal("top-level schedule search recorded no cost-level spans")
	}
	if int64(levels) != res.Stats.CostLevels {
		t.Fatalf("%d level spans but stats report %d cost levels", levels, res.Stats.CostLevels)
	}
}
