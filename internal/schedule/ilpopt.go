package schedule

import (
	"fmt"

	"lodim/internal/conflict"
	"lodim/internal/ilp"
	"lodim/internal/intmat"
	"lodim/internal/lp"
	"lodim/internal/rat"
	"lodim/internal/uda"
)

// FindOptimalILP solves Problem 2.2 for mappings T ∈ Z^{(n−1)×n} via
// the integer-programming formulation (5.1)–(5.2):
//
//	min Σ μ_i·|π_i|
//	s.t. ΠD ≥ 1                          (dependencies, integral form)
//	     ∃i: |f_i(π_1, …, π_n)| ≥ μ_i+1  (conflict-freeness, Thm 3.1/2.2)
//	     Π·d̄_i ≥ hops_i                  (machine realizability, opt.)
//	     Π ∈ Z^{1×n}
//
// The f_i are the conflict-vector entries of Equation 3.2; Proposition
// 3.2 shows they are linear in Π once S is fixed, and the coefficients
// are extracted here by evaluating the signed maximal minors at the
// unit vectors Π = e_j. The non-convex disjunction is decomposed into
// 2n convex branches (f_i ≥ μ_i+1 and −f_i ≥ μ_i+1) exactly as the
// paper's appendix does for Examples 5.1 and 5.2; |π_i| is linearized
// with auxiliary variables a_i ≥ ±π_i.
//
// The formulation ignores the gcd normalization of conflict vectors
// (the paper does the same, then checks: "this constraint is ignored
// and the resulting conflict vector is checked to see if it is
// feasible"). Accordingly the ILP optimum is a lower bound; the
// returned schedule is verified with the exact conflict decision and,
// in the rare case the verification fails, the optimizer falls back to
// Procedure 5.1 starting at the ILP objective — preserving optimality.
func FindOptimalILP(algo *uda.Algorithm, s *intmat.Matrix, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	base, disjuncts, integer, err := ilpFormulation(algo, s, opts, 1, 0)
	if err != nil {
		return nil, err
	}
	sol, err := ilp.SolveDisjunctive(base, disjuncts, integer)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("%w: ILP status %v", ErrNoSchedule, sol.Status)
	}
	pi, err := ilpSchedule(sol, algo.Dim())
	if err != nil {
		return nil, err
	}
	// Exact verification (the gcd caveat): accept only if the true
	// conflict decision agrees; otherwise fall back to enumeration from
	// the ILP bound, which remains optimal.
	if r, ok := tryCandidate(algo, s, pi, opts); ok {
		r.Candidates = sol.Nodes
		r.Method = "ilp"
		return r, nil
	}
	bound, ok := sol.Objective.Int64()
	if !ok {
		bound = sol.Objective.Ceil()
	}
	fb, err := FindOptimal(algo, s, &Options{Machine: opts.Machine, MaxCost: opts.MaxCost, MinCost: bound})
	if err != nil {
		return nil, err
	}
	fb.Method = "ilp+fallback"
	return fb, nil
}

// ilpFormulation builds the shared constraint system of the (5.1)–(5.2)
// family under the scalarized objective
//
//	min wTime·Σ μ_i·a_i + wBuf·Σ_k Π·d̄_k
//
// — wTime = 1, wBuf = 0 recovers the paper's time-only program, and a
// positive wBuf adds the buffer-depth axis Σ(Π·d̄_k − 1) up to the
// constant −wBuf·m, which shifts every objective equally and so
// changes no argmin.
func ilpFormulation(algo *uda.Algorithm, s *intmat.Matrix, opts *Options, wTime, wBuf int64) (*lp.Problem, [][]lp.Constraint, []bool, error) {
	n := algo.Dim()
	if s.Cols() != n || s.Rows() != n-2 {
		return nil, nil, nil, fmt.Errorf("schedule: ILP formulation needs S ∈ Z^{(n-2)×n}, got %dx%d for n = %d", s.Rows(), s.Cols(), n)
	}
	coeff, err := conflictFormCoefficients(s)
	if err != nil {
		return nil, nil, nil, err
	}

	// Variables: π_1..π_n (integral, free), a_1..a_n (≥ 0, a_i ≥ |π_i|).
	numVars := 2 * n
	c := make([]rat.Rat, numVars)
	lower := make([]lp.Bound, numVars)
	for i := 0; i < n; i++ {
		c[n+i] = rat.FromInt(wTime * algo.Set.Upper[i])
		lower[n+i] = lp.BoundAt(rat.Zero())
	}
	if wBuf != 0 {
		for j := 0; j < n; j++ {
			var sum int64
			for k := 0; k < algo.NumDeps(); k++ {
				sum += algo.D.At(j, k)
			}
			c[j] = rat.FromInt(wBuf * sum)
		}
	}
	base := &lp.Problem{NumVars: numVars, C: c, Lower: lower}

	// a_i ≥ π_i and a_i ≥ −π_i.
	for i := 0; i < n; i++ {
		row1 := make([]rat.Rat, numVars)
		row1[n+i] = rat.One()
		row1[i] = rat.One().Neg()
		base.Constraints = append(base.Constraints, lp.Constraint{Coeffs: row1, Op: lp.GE, RHS: rat.Zero(), Name: fmt.Sprintf("abs+%d", i)})
		row2 := make([]rat.Rat, numVars)
		row2[n+i] = rat.One()
		row2[i] = rat.One()
		base.Constraints = append(base.Constraints, lp.Constraint{Coeffs: row2, Op: lp.GE, RHS: rat.Zero(), Name: fmt.Sprintf("abs-%d", i)})
	}
	// ΠD ≥ 1 per dependence; with the machine option, Π·d̄_i ≥ max(1, hops_i).
	hops := make([]int64, algo.NumDeps())
	if opts.Machine != nil {
		hops, err = opts.Machine.MinHops(s, algo.D)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	for i := 0; i < algo.NumDeps(); i++ {
		d := algo.Dep(i)
		row := make([]rat.Rat, numVars)
		for j := 0; j < n; j++ {
			row[j] = rat.FromInt(d[j])
		}
		rhs := int64(1)
		if hops[i] > rhs {
			rhs = hops[i]
		}
		base.Constraints = append(base.Constraints, lp.Constraint{Coeffs: row, Op: lp.GE, RHS: rat.FromInt(rhs), Name: fmt.Sprintf("dep%d", i)})
	}
	// Disjunction: for each i, f_i(π) ≥ μ_i+1 or −f_i(π) ≥ μ_i+1.
	var disjuncts [][]lp.Constraint
	for i := 0; i < n; i++ {
		pos := make([]rat.Rat, numVars)
		neg := make([]rat.Rat, numVars)
		allZero := true
		for j := 0; j < n; j++ {
			pos[j] = rat.FromInt(coeff.At(i, j))
			neg[j] = rat.FromInt(-coeff.At(i, j))
			if coeff.At(i, j) != 0 {
				allZero = false
			}
		}
		if allZero {
			continue // f_i ≡ 0 can never certify feasibility
		}
		rhs := rat.FromInt(algo.Set.Upper[i] + 1)
		disjuncts = append(disjuncts,
			[]lp.Constraint{{Coeffs: pos, Op: lp.GE, RHS: rhs, Name: fmt.Sprintf("f%d+", i)}},
			[]lp.Constraint{{Coeffs: neg, Op: lp.GE, RHS: rhs, Name: fmt.Sprintf("f%d-", i)}},
		)
	}
	if len(disjuncts) == 0 {
		return nil, nil, nil, fmt.Errorf("schedule: every conflict form f_i is identically zero — S is rank deficient")
	}
	integer := make([]bool, numVars)
	for i := 0; i < n; i++ {
		integer[i] = true
	}
	return base, disjuncts, integer, nil
}

// ilpSchedule extracts the integral Π from a solved formulation.
func ilpSchedule(sol *ilp.Solution, n int) (intmat.Vector, error) {
	pi := make(intmat.Vector, n)
	for j := 0; j < n; j++ {
		v, ok := sol.X[j].Int64()
		if !ok {
			return nil, fmt.Errorf("schedule: ILP returned non-integral π_%d = %v", j+1, sol.X[j])
		}
		pi[j] = v
	}
	return pi, nil
}

// FindWeightedILP generalizes FindOptimalILP to the scalarized
// two-axis objective
//
//	min wTime·(1 + Σ μ_i·|π_i|) + wBuf·Σ_k (Π·d̄_k − 1)
//
// over schedules Π for a fixed S — the ILP face of the Pareto engine's
// ModeWeighted restricted to the axes that vary with Π (processors and
// links are constants of S and only shift the objective). wTime must
// be ≥ 1 (it bounds the enumeration fallback); wBuf must be ≥ 0.
//
// Like FindOptimalILP, the relaxation ignores the conflict vectors'
// gcd normalization, so the ILP optimum is a lower bound; its witness
// is accepted only after the exact conflict decision, and a rejected
// witness falls back to exact weighted enumeration, preserving
// optimality either way.
func FindWeightedILP(algo *uda.Algorithm, s *intmat.Matrix, wTime, wBuf int64, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	if wTime < 1 {
		return nil, fmt.Errorf("schedule: weighted ILP needs a time weight ≥ 1, got %d", wTime)
	}
	if wBuf < 0 {
		return nil, fmt.Errorf("schedule: negative buffer weight %d", wBuf)
	}
	base, disjuncts, integer, err := ilpFormulation(algo, s, opts, wTime, wBuf)
	if err != nil {
		return nil, err
	}
	sol, err := ilp.SolveDisjunctive(base, disjuncts, integer)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("%w: ILP status %v", ErrNoSchedule, sol.Status)
	}
	pi, err := ilpSchedule(sol, algo.Dim())
	if err != nil {
		return nil, err
	}
	if r, ok := tryCandidate(algo, s, pi, opts); ok {
		r.Candidates = sol.Nodes
		r.Method = "ilp-weighted"
		return r, nil
	}
	fb, err := findWeightedEnum(algo, s, wTime, wBuf, opts)
	if err != nil {
		return nil, err
	}
	fb.Method = "ilp-weighted+fallback"
	return fb, nil
}

// findWeightedEnum is the exact enumeration fallback of FindWeightedILP:
// it scans objective levels in ascending Σ|π_i|·μ_i order, keeps the
// first schedule minimizing the scalarized objective, and stops once
// even a zero-buffer schedule at the current level could not improve —
// wTime·(1 + cost) alone already reaching the best makes every deeper
// level futile, because buffers only add (wBuf ≥ 0) and the tie-break
// prefers the earlier (lower-time, lex-least) witness.
func findWeightedEnum(algo *uda.Algorithm, s *intmat.Matrix, wTime, wBuf int64, opts *Options) (*Result, error) {
	analyzer, err := conflict.NewSpaceAnalyzer(s, algo.Set)
	if err != nil {
		return nil, err
	}
	maxCost := opts.MaxCost
	if maxCost == 0 {
		maxCost = defaultMaxCost(algo.Set)
	}
	cctx := newCandCtx(algo, s, opts, analyzer)
	var best *Result
	var bestObj int64
	for cost := int64(1); cost <= maxCost; cost++ {
		if best != nil && wTime*(1+cost) >= bestObj {
			break
		}
		enumerate(algo.Set.Upper, cost, func(pi intmat.Vector) bool {
			r, ok := cctx.try(pi)
			if !ok {
				return true
			}
			obj := wTime*r.Time + wBuf*bufferDepth(pi, cctx.depCols)
			if best == nil || obj < bestObj {
				best, bestObj = r, obj
			}
			return true
		})
		if err := cctx.takeErr(); err != nil {
			return nil, err
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no conflict-free schedule with Σ|π_i|·μ_i ≤ %d for the given S",
			ErrNoSchedule, maxCost)
	}
	return best, nil
}

// conflictFormCoefficients returns the n×n matrix F with
// f_i(π) = Σ_j F[i][j]·π_j, extracted by evaluating the signed maximal
// minors of [S; e_j] (linearity per Proposition 3.2).
func conflictFormCoefficients(s *intmat.Matrix) (*intmat.Matrix, error) {
	n := s.Cols()
	f := intmat.New(n, n)
	for j := 0; j < n; j++ {
		e := intmat.NewVector(n)
		e[j] = 1
		forms, err := conflict.LinearForms(s.AppendRow(e))
		if err != nil {
			return nil, err
		}
		f.SetCol(j, forms)
	}
	return f, nil
}
