package schedule

import (
	"fmt"
	"sort"
	"strings"

	"lodim/internal/array"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// DesignReport renders everything a designer needs to know about a
// solved mapping as one text block: the mapping matrices, the schedule
// certificate, execution time against the dataflow bound, and — when a
// machine realization exists — the interconnection usage, buffers and
// collision status. The examples and CLIs print it; downstream users
// get a one-call summary.
func DesignReport(res *Result) string {
	var b strings.Builder
	m := res.Mapping
	algo := m.Algo
	fmt.Fprintf(&b, "design report: %s\n", algo)
	fmt.Fprintf(&b, "mapping matrix T = [S; Π]:\n%v\n", m.T)
	fmt.Fprintf(&b, "schedule: Π = %v found by %s (%d candidates examined)\n", m.Pi, res.Method, res.Candidates)
	fmt.Fprintf(&b, "conflict certificate: %s\n", res.Conflict)
	fmt.Fprintf(&b, "total execution time: t = %d\n", res.Time)
	if cp, err := algo.CriticalPath(); err == nil {
		slack := "meets"
		if res.Time > cp {
			slack = fmt.Sprintf("%.2fx above", float64(res.Time)/float64(cp))
		}
		fmt.Fprintf(&b, "dataflow bound (critical path): %d — schedule is %s the bound\n", cp, slack)
	}
	procs := designProcessors(m)
	fmt.Fprintf(&b, "processors: %d (array dimensionality %d)\n", procs, m.S.Rows())
	if res.Decomp != nil {
		fmt.Fprintf(&b, "machine realization: buffers %v (total %d), single-hop: %v\n",
			res.Decomp.Buffers, res.Decomp.TotalBuffers(), res.Decomp.SingleHop())
	}
	return b.String()
}

// designProcessors counts |S(J)| exactly.
func designProcessors(m *Mapping) int64 {
	seen := map[string]struct{}{}
	m.Algo.Set.Each(func(j intmat.Vector) bool {
		seen[m.Processor(j).String()] = struct{}{}
		return true
	})
	return int64(len(seen))
}

// CompareDesigns renders a side-by-side comparison of several solved
// mappings of the same algorithm — the form the paper's Example 5.1
// uses to contrast its design with reference [23]'s.
func CompareDesigns(algo *uda.Algorithm, machine *array.Machine, labeled map[string]*Result) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "design comparison for %s\n", algo)
	fmt.Fprintf(&b, "%-14s | %-14s | %6s | %10s | %7s\n", "design", "Π", "t", "processors", "buffers")
	names := make([]string, 0, len(labeled))
	for name := range labeled {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := labeled[name]
		buffers := "-"
		if machine != nil {
			dec, err := machine.Decompose(res.Mapping.S, algo.D, res.Mapping.Pi)
			if err != nil {
				return "", fmt.Errorf("schedule: design %q not realizable: %w", name, err)
			}
			buffers = fmt.Sprint(dec.TotalBuffers())
		}
		fmt.Fprintf(&b, "%-14s | %-14v | %6d | %10d | %7s\n",
			name, res.Mapping.Pi, res.Time, designProcessors(res.Mapping), buffers)
	}
	return b.String(), nil
}
