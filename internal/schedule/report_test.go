package schedule

import (
	"strings"
	"testing"

	"lodim/internal/array"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

func TestDesignReport(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	res, err := FindOptimal(algo, s, &Options{Machine: array.NearestNeighbor(1)})
	if err != nil {
		t.Fatal(err)
	}
	out := DesignReport(res)
	for _, want := range []string{
		"design report: matmul",
		"t = 25",
		"dataflow bound (critical path): 13",
		"processors: 13",
		"buffers",
		"conflict certificate: conflict-free",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDesignReportWithoutMachine(t *testing.T) {
	algo := uda.TransitiveClosure(3)
	res, err := FindOptimal(algo, intmat.FromRows([]int64{0, 0, 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := DesignReport(res)
	if strings.Contains(out, "machine realization") {
		t.Errorf("machine section present without machine:\n%s", out)
	}
	if !strings.Contains(out, "dataflow bound") {
		t.Errorf("missing dataflow bound:\n%s", out)
	}
}

func TestCompareDesigns(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	machine := array.NearestNeighbor(1)
	opt, err := FindOptimal(algo, s, &Options{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	refMapping, err := NewMapping(algo, s, intmat.Vec(2, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	refChk, err := refMapping.Check()
	if err != nil {
		t.Fatal(err)
	}
	ref := &Result{Mapping: refMapping, Time: refMapping.TotalTime(), Conflict: refChk, Method: "manual"}
	out, err := CompareDesigns(algo, machine, map[string]*Result{
		"this paper": opt,
		"ref [23]":   ref,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"this paper", "ref [23]", "25", "29", "3", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
	// Sorted label order: "ref [23]" before "this paper".
	if strings.Index(out, "ref [23]") > strings.Index(out, "this paper") {
		t.Error("labels not sorted")
	}
	// Unrealizable design errors.
	bad, err := NewMapping(algo, intmat.FromRows([]int64{2, 1, -1}), intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	badRes := &Result{Mapping: bad, Time: bad.TotalTime(), Method: "manual"}
	if _, err := CompareDesigns(algo, machine, map[string]*Result{"bad": badRes}); err == nil {
		t.Error("unrealizable design accepted")
	}
	// Without a machine, buffers are dashed and nothing errors.
	out2, err := CompareDesigns(algo, nil, map[string]*Result{"x": opt})
	if err != nil || !strings.Contains(out2, "-") {
		t.Errorf("machineless comparison: %v\n%s", err, out2)
	}
}
