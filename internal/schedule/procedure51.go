package schedule

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/trace"
	"lodim/internal/uda"
)

// FindOptimal implements Procedure 5.1: schedule vectors Π are
// enumerated in strictly increasing order of the objective
// f = Σ|π_i|·μ_i (by Theorem 2.1 total time is monotone in the |π_i|,
// so the first candidate passing every test is time-optimal). Each
// candidate is tested against:
//
//  1. ΠD > 0,
//  2. rank(T) = k,
//  3. conflict-freeness (conflict.Decide — exact at every k), and
//  4. when a machine is configured, realizability SD = PK within slack.
//
// Within one objective level candidates are visited in lexicographic
// order, making the result deterministic.
func FindOptimal(algo *uda.Algorithm, s *intmat.Matrix, opts *Options) (*Result, error) {
	return FindOptimalContext(context.Background(), algo, s, opts)
}

// FindOptimalContext is FindOptimal with cancellation: the enumeration
// checks ctx between objective levels and every few hundred candidates,
// so a cancelled or expired context stops the search promptly. When the
// context ends before a schedule is found the context's error is
// returned (not ErrNoSchedule — an interrupted search proves nothing
// about feasibility).
func FindOptimalContext(ctx context.Context, algo *uda.Algorithm, s *intmat.Matrix, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	if s.Cols() != algo.Dim() {
		return nil, fmt.Errorf("schedule: S has %d columns, algorithm dimension is %d", s.Cols(), algo.Dim())
	}
	// The factored analyzer caches the Π-independent null(S) basis so
	// each candidate costs a handful of gcd steps instead of a full
	// Hermite reduction; it is exact (theorem certificates with an
	// enumeration fallback). Rank-deficient S surfaces on first use.
	var analyzer *conflict.SpaceAnalyzer
	if !opts.NoFactorization {
		var err error
		analyzer, err = conflict.NewSpaceAnalyzer(s, algo.Set)
		if err != nil {
			return nil, err
		}
	}
	return findOptimalWith(ctx, algo, s, opts, analyzer, nil)
}

// ctxCheckMask paces the in-level cancellation checks: ctx.Err() takes
// a lock, while a typical rejected candidate costs nanoseconds, so the
// enumeration polls once every 256 candidates (plus once per level).
const ctxCheckMask = 255

// findOptimalWith is the enumeration engine behind FindOptimal with a
// caller-supplied (possibly nil) factored analyzer. The joint optimizer
// (spaceopt.go) builds one analyzer per space-mapping candidate and
// shares it between this search and the array-metric evaluation, so the
// Π-independent Hermite work happens exactly once per S.
//
// stats, when non-nil, is a shared collector the engine accumulates
// candidate and level counts into (the joint optimizer passes one
// collector across all inner searches); when nil the engine owns a
// fresh collector and attaches its snapshot to the winning Result.
func findOptimalWith(ctx context.Context, algo *uda.Algorithm, s *intmat.Matrix, opts *Options, analyzer *conflict.SpaceAnalyzer, stats *statsCollector) (_ *Result, err error) {
	ownStats := stats == nil
	if ownStats {
		stats = &statsCollector{}
	}
	// One span per Π search: a top-level Procedure 5.1 run gets its own,
	// and each joint-search inner search becomes a child of its worker
	// span. Candidate counts land as attributes at the end — per-span
	// totals, never per-candidate spans.
	ctx, span := trace.Start(ctx, "pi-search")
	candidates := 0
	levels := int64(0)
	defer func() {
		span.SetInt("candidates", int64(candidates))
		span.SetInt("levels", levels)
		if err != nil {
			span.SetStr("error", err.Error())
		}
		span.End()
	}()
	startAt := time.Now()
	n := algo.Dim()
	maxCost := opts.MaxCost
	if maxCost == 0 {
		maxCost = defaultMaxCost(algo.Set)
	}
	minCost := opts.MinCost
	if minCost < 1 {
		minCost = 1
	}
	if opts.MinimizeBuffers && opts.Machine == nil {
		return nil, fmt.Errorf("schedule: MinimizeBuffers requires a Machine")
	}
	cctx := newCandCtx(algo, s, opts, analyzer)
	// One conflict scratch per worker, held across cost levels: the
	// scratch's decision cache is what makes neighbouring candidates
	// incremental (adjacent levels re-probe the same h lines), so it must
	// survive level boundaries. Counters drain into stats before the
	// snapshot and again — idempotently — when the scratches are
	// released.
	var scs []*conflict.Scratch
	if analyzer != nil {
		nw := opts.Workers
		if nw < 1 {
			nw = 1
		}
		scs = make([]*conflict.Scratch, nw)
		for i := range scs {
			scs[i] = conflict.GetScratch()
		}
		defer func() {
			for _, sc := range scs {
				stats.drainScratch(sc)
				conflict.PutScratch(sc)
			}
		}()
	}
	var seqScratch *conflict.Scratch
	if len(scs) > 0 {
		seqScratch = scs[0]
	}
	var found *Result
	var levelBuf []int64 // reused flat storage for level-mode candidates
	for cost := minCost; cost <= maxCost && found == nil; cost++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats.costLevels.Add(1)
		levels++
		// Cost-level spans only for a top-level search: a joint run's
		// hundreds of inner searches would multiply them into noise
		// (and through the per-trace span cap), while their level
		// counts are already on the pi-search span.
		var levelSpan *trace.Span
		if ownStats {
			_, levelSpan = trace.Start(ctx, "level")
			levelSpan.SetInt("cost", cost)
		}
		levelStart := candidates
		endLevel := func() {
			levelSpan.SetInt("candidates", int64(candidates-levelStart))
			levelSpan.End()
		}
		if opts.Workers > 1 || opts.MinimizeBuffers {
			// Level-synchronous evaluation: materialize the level into a
			// reused flat buffer, test candidates (in parallel when
			// configured), then apply the deterministic selection rule
			// over all passers.
			levelBuf = levelBuf[:0]
			enumerate(algo.Set.Upper, cost, func(pi intmat.Vector) bool {
				levelBuf = append(levelBuf, pi...)
				return true
			})
			level := make([]intmat.Vector, len(levelBuf)/n)
			for i := range level {
				level[i] = intmat.Vector(levelBuf[i*n : (i+1)*n])
			}
			candidates += len(level)
			results := evaluateLevel(ctx, level, cctx, scs)
			// A context that ended mid-level may have left earlier
			// (potentially winning) candidates unevaluated, so the
			// level's verdict cannot be trusted — report the
			// interruption instead.
			if err := ctx.Err(); err != nil {
				endLevel()
				return nil, err
			}
			found = pickWinner(results, opts)
			endLevel()
			continue
		}
		// Sequential fast path: the first passer in enumeration order
		// wins, so evaluation can stop early.
		interrupted := false
		enumerate(algo.Set.Upper, cost, func(pi intmat.Vector) bool {
			candidates++
			if candidates&ctxCheckMask == 0 && ctx.Err() != nil {
				interrupted = true
				return false
			}
			r, ok := cctx.tryWith(pi, seqScratch)
			if !ok {
				return true
			}
			found = r
			return false
		})
		endLevel()
		if interrupted {
			return nil, ctx.Err()
		}
	}
	stats.scheduleCandidates.Add(int64(candidates))
	for _, sc := range scs {
		stats.drainScratch(sc)
	}
	// An arithmetic overflow recorded by a worker invalidates the whole
	// run — the enumeration may have mis-ranked candidates — and takes
	// precedence over both a winner and ErrNoSchedule.
	if err := cctx.takeErr(); err != nil {
		return nil, err
	}
	if found == nil {
		return nil, fmt.Errorf("%w: algorithm %q, S =\n%v, cost ≤ %d", ErrNoSchedule, algo.Name, s, maxCost)
	}
	found.Candidates = candidates
	found.Method = "procedure-5.1"
	if opts.SelfCheck {
		if err := runSelfCheck(found.Mapping); err != nil {
			return nil, err
		}
	}
	if ownStats {
		workers := opts.Workers
		if workers < 1 {
			workers = 1
		}
		elapsed := time.Since(startAt)
		found.Stats = stats.snapshot("procedure-5.1", workers, 0, elapsed, elapsed)
		found.Stats.annotateSpan(span)
		found.Trace = trace.SummaryFromContext(ctx)
	}
	return found, nil
}

// evaluateLevel tests every candidate of one objective level, fanning
// the work across opts.Workers goroutines. The result slice is aligned
// with the input (nil = rejected), so selection order is independent of
// scheduling. A done context stops the evaluation early (checked once
// per chunk); the caller detects the interruption via ctx.Err.
//
// scs, when non-empty, holds one conflict scratch per worker (index w
// for goroutine w) — scratches are single-owner, and this indexing
// keeps each one on exactly one goroutine per level while its decision
// cache persists across levels.
func evaluateLevel(ctx context.Context, level []intmat.Vector, cctx *candCtx, scs []*conflict.Scratch) []*Result {
	results := make([]*Result, len(level))
	workers := cctx.opts.Workers
	scratchFor := func(w int) *conflict.Scratch {
		if w < len(scs) {
			return scs[w]
		}
		return nil
	}
	if workers <= 1 {
		sc := scratchFor(0)
		for i, pi := range level {
			if i&ctxCheckMask == 0 && ctx.Err() != nil {
				return results
			}
			if r, ok := cctx.tryWith(pi, sc); ok {
				results[i] = r
			}
		}
		return results
	}
	var wg sync.WaitGroup
	next := int64(0)
	// Most candidates are rejected by the ΠD > 0 test in nanoseconds,
	// so workers claim chunks rather than single indexes — per-item
	// atomics would cost more than the work itself.
	const chunk = 512
	// bestIdx is a monotone watermark: once a passer at index i exists,
	// later indexes cannot win the earliest-passer rule, so workers skip
	// them. Under MinimizeBuffers every passer matters and the watermark
	// stays disabled.
	bestIdx := int64(len(level))
	useWatermark := !cctx.opts.MinimizeBuffers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sc *conflict.Scratch) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				lo := (atomic.AddInt64(&next, 1) - 1) * chunk
				if lo >= int64(len(level)) {
					return
				}
				hi := lo + chunk
				if hi > int64(len(level)) {
					hi = int64(len(level))
				}
				if useWatermark && lo > atomic.LoadInt64(&bestIdx) {
					continue
				}
				for i := lo; i < hi; i++ {
					if useWatermark && i > atomic.LoadInt64(&bestIdx) {
						break
					}
					if r, ok := cctx.tryWith(level[i], sc); ok {
						results[i] = r
						if useWatermark {
							for {
								cur := atomic.LoadInt64(&bestIdx)
								if i >= cur || atomic.CompareAndSwapInt64(&bestIdx, cur, i) {
									break
								}
							}
						}
					}
				}
			}
		}(scratchFor(w))
	}
	wg.Wait()
	return results
}

// pickWinner applies the deterministic selection rule to one level's
// results: earliest passer, or — under MinimizeBuffers — the passer
// with the fewest total buffers (earliest among equals).
func pickWinner(results []*Result, opts *Options) *Result {
	var best *Result
	for _, r := range results {
		if r == nil {
			continue
		}
		if best == nil {
			best = r
			if !opts.MinimizeBuffers {
				return best
			}
			continue
		}
		if opts.MinimizeBuffers && r.Decomp.TotalBuffers() < best.Decomp.TotalBuffers() {
			best = r
		}
	}
	return best
}

// candCtx carries the per-search state of Procedure 5.1's step-5 tests:
// the optional factored analyzer and the cached dependence columns
// (Matrix.Col allocates a fresh vector per call, and the ΠD > 0 test
// runs once per enumerated candidate).
type candCtx struct {
	algo     *uda.Algorithm
	s        *intmat.Matrix
	opts     *Options
	analyzer *conflict.SpaceAnalyzer
	depCols  []intmat.Vector

	// errMu guards err, the first arithmetic failure observed by any
	// worker. try runs inside evaluateLevel's goroutines, where a panic
	// would crash the process instead of unwinding to the caller's
	// Guard — so overflow is captured here and re-surfaced by takeErr.
	errMu sync.Mutex
	err   error
}

func newCandCtx(algo *uda.Algorithm, s *intmat.Matrix, opts *Options, analyzer *conflict.SpaceAnalyzer) *candCtx {
	cols := make([]intmat.Vector, algo.NumDeps())
	for i := range cols {
		cols[i] = algo.D.Col(i)
	}
	return &candCtx{algo: algo, s: s, opts: opts, analyzer: analyzer, depCols: cols}
}

// recordErr stores the first failure; later ones are dropped.
func (c *candCtx) recordErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// takeErr returns the recorded failure, if any.
func (c *candCtx) takeErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// valid is Valid(pi, algo.D) on the cached columns.
func (c *candCtx) valid(pi intmat.Vector) bool {
	for _, d := range c.depCols {
		if pi.Dot(d) <= 0 {
			return false
		}
	}
	return true
}

// tryCandidate applies the four tests of Procedure 5.1's step 5 to a
// single Π, building the full Result on success.
func tryCandidate(algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector, opts *Options) (*Result, bool) {
	return newCandCtx(algo, s, opts, nil).try(pi)
}

// try applies the four tests of Procedure 5.1's step 5 to a single Π,
// using the pre-built factored analyzer when available. The analyzer
// also subsumes the rank(T) = k test: it reports ErrRank exactly when Π
// is a rational combination of S's rows.
func (c *candCtx) try(pi intmat.Vector) (*Result, bool) {
	return c.tryWith(pi, nil)
}

// tryWith is try with an optional per-worker conflict scratch, which
// routes the decision through the arena-backed incremental path
// (conflict.DecideScratch). The verdict is identical either way; only
// the allocation profile and the informational Method/Witness of the
// conflict Result can differ.
func (c *candCtx) tryWith(pi intmat.Vector, sc *conflict.Scratch) (*Result, bool) {
	if !c.valid(pi) {
		return nil, false
	}
	algo, s, opts := c.algo, c.s, c.opts
	var res conflict.Result
	var err error
	switch {
	case c.analyzer != nil && sc != nil:
		res, err = c.analyzer.DecideScratch(sc, pi)
	case c.analyzer != nil:
		res, err = c.analyzer.Decide(pi)
	default:
		t := s.AppendRow(pi)
		if t.Rank() != t.Rows() {
			return nil, false
		}
		res, err = conflict.Decide(t, algo.Set)
	}
	if err != nil || !res.ConflictFree {
		return nil, false
	}
	t, err := TotalTimeChecked(pi, algo.Set)
	if err != nil {
		c.recordErr(err)
		return nil, false
	}
	r := &Result{
		Mapping:  &Mapping{Algo: algo, S: s, Pi: pi.Clone(), T: s.AppendRow(pi)},
		Time:     t,
		Conflict: res,
	}
	if opts.Machine != nil {
		dec, err := opts.Machine.Decompose(s, algo.D, pi)
		if err != nil {
			return nil, false
		}
		if opts.RequireSingleHop && !dec.SingleHop() {
			return nil, false
		}
		r.Decomp = dec
	}
	return r, true
}

// defaultMaxCost is a generous ceiling on Σ|π_i|·μ_i: large enough for
// every optimum this repository meets (the matmul optimum is μ(μ+2),
// the transitive-closure optimum μ(μ+3)) while keeping a wrong-model
// search from running unbounded.
func defaultMaxCost(set uda.IndexSet) int64 {
	var sum, max int64
	for _, u := range set.Upper {
		sum += u
		if u > max {
			max = u
		}
	}
	return 4 * (max + 2) * sum
}

// enumerate visits every integer vector π with Σ|π_i|·μ_i exactly equal
// to cost, in lexicographic order (negative before positive at equal
// magnitude ordering is avoided by visiting values in increasing order
// −v_max … +v_max per coordinate). The visitor returns false to stop.
//
// A degenerate axis (μ_i = 0, a single-point dimension — legal even
// though validated algorithms keep μ_i ≥ 1) contributes nothing to the
// objective; it is enumerated at effective weight 1 so the recursion
// stays finite instead of dividing by zero, which means levels
// over-approximate f by |π_i| on such axes (the search stays complete
// in the limit).
func enumerate(mu intmat.Vector, cost int64, visit func(intmat.Vector) bool) bool {
	n := len(mu)
	w := make(intmat.Vector, n)
	for i, m := range mu {
		if m == 0 {
			m = 1
		}
		w[i] = m
	}
	// sufGCD[i] = gcd(w_i, …, w_{n−1}): the remaining axes can absorb a
	// budget only if it is divisible by their gcd, so whole subtrees —
	// and entire fruitless levels, e.g. every cost ≢ 0 (mod μ) on a
	// cube — are skipped in O(1).
	sufGCD := make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		sufGCD[i] = intmat.GCDAll(w[i], sufGCD[i+1])
	}
	pi := make(intmat.Vector, n)
	var rec func(i int, remaining int64) bool
	rec = func(i int, remaining int64) bool {
		if i == n {
			if remaining != 0 {
				return true
			}
			return visit(pi)
		}
		if remaining%sufGCD[i] != 0 {
			return true
		}
		// Each coordinate may take any value v with |v|·w_i ≤ remaining;
		// the final coordinate must land exactly.
		maxAbs := remaining / w[i]
		for v := -maxAbs; v <= maxAbs; v++ {
			pi[i] = v
			used := v * w[i]
			if used < 0 {
				used = -used
			}
			if !rec(i+1, remaining-used) {
				return false
			}
		}
		pi[i] = 0
		return true
	}
	return rec(0, cost)
}
