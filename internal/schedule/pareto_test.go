package schedule

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

func randObjVec(rng *rand.Rand) ObjectiveVector {
	var v ObjectiveVector
	for i := range v {
		v[i] = int64(rng.Intn(4))
	}
	return v
}

// TestDominatesProperties: the dominance relation is a strict partial
// order — irreflexive, antisymmetric, transitive — and equal vectors
// never dominate each other.
func TestDominatesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		a, b, c := randObjVec(rng), randObjVec(rng), randObjVec(rng)
		if Dominates(a, a) {
			t.Fatalf("Dominates(%v, %v) must be false (irreflexive)", a, a)
		}
		if a == b && (Dominates(a, b) || Dominates(b, a)) {
			t.Fatalf("equal vectors %v dominate each other", a)
		}
		if Dominates(a, b) && Dominates(b, a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			t.Fatalf("transitivity violated for %v, %v, %v", a, b, c)
		}
	}
}

// testMember wraps a vector in a minimal member whose tie keys (Π, S)
// are derived from a distinct integer identity.
func testMember(id int64, v ObjectiveVector) ParetoMember {
	return ParetoMember{
		Mapping: &Mapping{Pi: intmat.Vec(id), S: intmat.FromRows([]int64{id})},
		Vector:  v,
	}
}

// bruteFront computes the expected archive content directly from the
// definition: keep m iff nothing dominates it, and among equal vectors
// keep the memberLess-least representative.
func bruteFront(members []ParetoMember) []ParetoMember {
	var out []ParetoMember
	for i := range members {
		keep := true
		for j := range members {
			if Dominates(members[j].Vector, members[i].Vector) {
				keep = false
				break
			}
			if members[j].Vector == members[i].Vector && memberLess(&members[j], &members[i]) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, members[i])
		}
	}
	var arch Archive
	arch.members = out
	return arch.Front()
}

// TestArchiveInsertOrderIndependence: any insertion order yields the
// brute-force front, member for member.
func TestArchiveInsertOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(14)
		members := make([]ParetoMember, n)
		for i := range members {
			members[i] = testMember(int64(i), randObjVec(rng))
		}
		want := bruteFront(members)
		for shuffle := 0; shuffle < 5; shuffle++ {
			perm := rng.Perm(n)
			var arch Archive
			for _, i := range perm {
				arch.Insert(members[i])
			}
			got := arch.Front()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("front depends on insertion order %v:\ngot  %v\nwant %v", perm, got, want)
			}
		}
	}
}

// TestArchiveEvictsDominated: inserting a dominating member removes
// every member it dominates.
func TestArchiveEvictsDominated(t *testing.T) {
	var arch Archive
	arch.Insert(testMember(1, ObjectiveVector{5, 5, 5, 5}))
	arch.Insert(testMember(2, ObjectiveVector{5, 5, 5, 4}))
	arch.Insert(testMember(3, ObjectiveVector{4, 4, 4, 4}))
	front := arch.Front()
	if len(front) != 1 || front[0].Vector != (ObjectiveVector{4, 4, 4, 4}) {
		t.Fatalf("front = %v, want the single dominating member", front)
	}
	if arch.Insert(testMember(4, ObjectiveVector{4, 4, 4, 5})) {
		t.Fatal("dominated insert reported as retained")
	}
}

func frontSignature(res *ParetoResult) [][3]string {
	sig := make([][3]string, len(res.Front))
	for i, m := range res.Front {
		sig[i] = [3]string{m.Vector.String(), m.Mapping.Pi.String(), m.Mapping.S.String()}
	}
	return sig
}

// TestFindParetoMatmulFront: on Example 5.1's matmul, the front's
// minimum time matches the single-objective joint optimum, every
// member is pairwise non-dominated and genuinely conflict-free.
func TestFindParetoMatmulFront(t *testing.T) {
	algo := uda.MatMul(4)
	res, err := FindPareto(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := FindJointMapping(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Front[0].Vector[ObjTime] != joint.Time {
		t.Errorf("front min time %d, joint optimum %d", res.Front[0].Vector[ObjTime], joint.Time)
	}
	if res.TimeBound != joint.Time {
		t.Errorf("TimeBound = %d with zero slack, want the optimum %d", res.TimeBound, joint.Time)
	}
	for i, m := range res.Front {
		if m.Vector[ObjTime] > res.TimeBound {
			t.Errorf("member %d time %d beyond window %d", i, m.Vector[ObjTime], res.TimeBound)
		}
		if free, w := conflict.BruteForce(m.Mapping.T, algo.Set); !free {
			t.Errorf("member %d has conflict %v", i, w)
		}
		for j, o := range res.Front {
			if i != j && Dominates(o.Vector, m.Vector) {
				t.Errorf("front member %d dominated by member %d", i, j)
			}
		}
	}
}

// TestFindParetoWorkerInvariance: the front — members, order, best
// pick, bound — is identical at Workers=1 and Workers=8, with and
// without slack. This also locks the archive against
// discovery-order tie-breaking.
func TestFindParetoWorkerInvariance(t *testing.T) {
	algos := []*uda.Algorithm{uda.MatMul(3), uda.TransitiveClosure(2), uda.Convolution(3, 2)}
	for _, algo := range algos {
		for _, slack := range []int64{0, 4} {
			seq, err := FindPareto(algo, 1, &ParetoOptions{TimeSlack: slack})
			if err != nil {
				t.Fatalf("%s slack=%d: %v", algo.Name, slack, err)
			}
			for workers := 2; workers <= 8; workers += 6 {
				par, err := FindPareto(algo, 1, &ParetoOptions{
					TimeSlack: slack,
					Space:     SpaceOptions{Schedule: Options{Workers: workers}},
				})
				if err != nil {
					t.Fatalf("%s slack=%d workers=%d: %v", algo.Name, slack, workers, err)
				}
				if !reflect.DeepEqual(frontSignature(seq), frontSignature(par)) {
					t.Errorf("%s slack=%d: front differs at workers=%d:\nseq %v\npar %v",
						algo.Name, slack, workers, frontSignature(seq), frontSignature(par))
				}
				if seq.Best != par.Best || seq.TimeBound != par.TimeBound {
					t.Errorf("%s slack=%d: best/bound differ at workers=%d", algo.Name, slack, workers)
				}
			}
		}
	}
}

// TestFindParetoSlackWindow: widening the window keeps every
// zero-slack vector on the front (a wider window can only add
// trade-offs, never dominate a time-optimal member) and respects the
// bound.
func TestFindParetoSlackWindow(t *testing.T) {
	algo := uda.MatMul(3)
	tight, err := FindPareto(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := FindPareto(algo, 1, &ParetoOptions{TimeSlack: 6})
	if err != nil {
		t.Fatal(err)
	}
	if wide.TimeBound != tight.TimeBound+6 {
		t.Errorf("wide bound %d, want %d", wide.TimeBound, tight.TimeBound+6)
	}
	haveVec := map[ObjectiveVector]bool{}
	for _, m := range wide.Front {
		if m.Vector[ObjTime] > wide.TimeBound {
			t.Errorf("member time %d beyond window %d", m.Vector[ObjTime], wide.TimeBound)
		}
		haveVec[m.Vector] = true
	}
	for _, m := range tight.Front {
		if !haveVec[m.Vector] {
			t.Errorf("time-optimal vector %v lost with slack", m.Vector)
		}
	}
}

// TestParetoModes: lex and weighted selection agree with a direct scan
// of the front, and the front itself is mode-independent.
func TestParetoModes(t *testing.T) {
	algo := uda.TransitiveClosure(2)
	base, err := FindPareto(algo, 1, &ParetoOptions{TimeSlack: 4})
	if err != nil {
		t.Fatal(err)
	}
	lex, err := FindPareto(algo, 1, &ParetoOptions{
		TimeSlack: 4, Mode: ModeLex, LexOrder: []Objective{ObjProcessors, ObjBuffers},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(frontSignature(base), frontSignature(lex)) {
		t.Fatal("front differs between modes")
	}
	want := 0
	order := fullLexOrder([]Objective{ObjProcessors, ObjBuffers})
	for i := range lex.Front {
		if lexVecLess(lex.Front[i].Vector, lex.Front[want].Vector, order) {
			want = i
		}
	}
	if lex.Best != want {
		t.Errorf("lex best = %d, want %d", lex.Best, want)
	}
	weighted, err := FindPareto(algo, 1, &ParetoOptions{
		TimeSlack: 4, Mode: ModeWeighted, Weights: [NumObjectives]int64{1, 3, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want = 0
	score := func(v ObjectiveVector) int64 { return v[ObjTime] + 3*v[ObjProcessors] }
	for i := range weighted.Front {
		if score(weighted.Front[i].Vector) < score(weighted.Front[want].Vector) {
			want = i
		}
	}
	if weighted.Best != want {
		t.Errorf("weighted best = %d, want %d", weighted.Best, want)
	}
}

// TestParetoOptionValidation: malformed selections fail before any
// search runs.
func TestParetoOptionValidation(t *testing.T) {
	algo := uda.MatMul(2)
	cases := []*ParetoOptions{
		{TimeSlack: -1},
		{Mode: ModeLex, LexOrder: []Objective{ObjTime, ObjTime}},
		{Mode: ModeLex, LexOrder: []Objective{Objective(9)}},
		{Mode: ModeWeighted},
		{Mode: ModeWeighted, Weights: [NumObjectives]int64{-1, 1, 0, 0}},
		{Mode: ParetoMode(42)},
	}
	for i, opts := range cases {
		if _, err := FindPareto(algo, 1, opts); err == nil || errors.Is(err, ErrNoSchedule) {
			t.Errorf("case %d: want a validation error, got %v", i, err)
		}
	}
}

// TestFindWeightedILP: the weighted ILP agrees with exact weighted
// enumeration on the paper's matmul space mapping, for a pure-time
// objective and for a buffer-heavy one.
func TestFindWeightedILP(t *testing.T) {
	algo := uda.MatMul(3)
	s := intmat.FromRows([]int64{1, 1, -1})
	for _, w := range [][2]int64{{1, 0}, {1, 5}, {2, 3}} {
		ilpRes, err := FindWeightedILP(algo, s, w[0], w[1], nil)
		if err != nil {
			t.Fatalf("w=%v: %v", w, err)
		}
		enumRes, err := findWeightedEnum(algo, s, w[0], w[1], &Options{})
		if err != nil {
			t.Fatalf("w=%v enum: %v", w, err)
		}
		obj := func(r *Result) int64 {
			cols := make([]intmat.Vector, algo.NumDeps())
			for i := range cols {
				cols[i] = algo.D.Col(i)
			}
			return w[0]*r.Time + w[1]*bufferDepth(r.Mapping.Pi, cols)
		}
		if obj(ilpRes) != obj(enumRes) {
			t.Errorf("w=%v: ILP objective %d, enumeration %d (Π %v vs %v)",
				w, obj(ilpRes), obj(enumRes), ilpRes.Mapping.Pi, enumRes.Mapping.Pi)
		}
		if free, wit := conflict.BruteForce(ilpRes.Mapping.T, algo.Set); !free {
			t.Errorf("w=%v: ILP winner has conflict %v", w, wit)
		}
	}
	if _, err := FindWeightedILP(algo, s, 0, 1, nil); err == nil {
		t.Error("wTime=0 accepted; the enumeration fallback would not terminate")
	}
}

// randomAlgorithm builds a seeded random 3-D uniform dependence
// algorithm: identity dependences guarantee ΠD > 0 is satisfiable,
// extra random columns create the tie-rich instances the tie-break
// test needs.
func randomAlgorithm(rng *rand.Rand) *uda.Algorithm {
	n := 3
	bounds := make(intmat.Vector, n)
	for i := range bounds {
		bounds[i] = 2 + int64(rng.Intn(2))
	}
	deps := intmat.New(n, n+1+rng.Intn(2))
	for i := 0; i < n; i++ {
		col := make(intmat.Vector, n)
		col[i] = 1
		deps.SetCol(i, col)
	}
	for c := n; c < deps.Cols(); c++ {
		col := make(intmat.Vector, n)
		for i := range col {
			col[i] = int64(rng.Intn(3) - 1)
		}
		if col[0] <= 0 {
			col[0] = 1 // keep the column schedulable alongside the identity
		}
		deps.SetCol(c, col)
	}
	return &uda.Algorithm{Name: "random", Set: uda.Cube(3, bounds[0]), D: deps}
}

// TestJointTieBreakDeterminism locks the pinned total tie-break order
// of the joint search: a fixed seed generates tie-rich instances and
// the winner must be byte-identical at Workers=1 and Workers=8.
func TestJointTieBreakDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1990))
	algos := []*uda.Algorithm{uda.MatMul(3), uda.TransitiveClosure(2), uda.Convolution(3, 2)}
	for i := 0; i < 6; i++ {
		a := randomAlgorithm(rng)
		if err := a.Validate(); err != nil {
			continue
		}
		algos = append(algos, a)
	}
	for i, algo := range algos {
		seq, seqErr := FindJointMapping(algo, 1, &SpaceOptions{Schedule: Options{Workers: 1}})
		for run := 0; run < 3; run++ {
			par, parErr := FindJointMapping(algo, 1, &SpaceOptions{Schedule: Options{Workers: 8}})
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("algo %d: outcome differs: seq err %v, par err %v", i, seqErr, parErr)
			}
			if seqErr != nil {
				if !errors.Is(seqErr, ErrNoSchedule) || !errors.Is(parErr, ErrNoSchedule) {
					t.Fatalf("algo %d: unexpected errors %v / %v", i, seqErr, parErr)
				}
				continue
			}
			if seq.Time != par.Time || seq.Cost != par.Cost ||
				seq.Mapping.Pi.String() != par.Mapping.Pi.String() ||
				seq.Mapping.S.String() != par.Mapping.S.String() {
				t.Errorf("algo %d run %d: winner differs between worker counts:\nseq t=%d c=%d Π=%v S=%v\npar t=%d c=%d Π=%v S=%v",
					i, run, seq.Time, seq.Cost, seq.Mapping.Pi, seq.Mapping.S,
					par.Time, par.Cost, par.Mapping.Pi, par.Mapping.S)
			}
		}
	}
}
