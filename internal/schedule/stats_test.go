package schedule

import (
	"errors"
	"math"
	"strings"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// TestSearchStatsProcedure51 checks the pure Procedure 5.1 stats: the
// engine owns its collector, counts every enumerated candidate and cost
// level, and the snapshot agrees with the legacy Candidates field.
func TestSearchStatsProcedure51(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	res, err := FindOptimal(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("Result.Stats is nil")
	}
	if st.Engine != "procedure-5.1" {
		t.Errorf("engine = %q", st.Engine)
	}
	if st.Workers != 1 {
		t.Errorf("workers = %d, want 1", st.Workers)
	}
	if st.ScheduleCandidates != int64(res.Candidates) {
		t.Errorf("ScheduleCandidates = %d, Candidates = %d", st.ScheduleCandidates, res.Candidates)
	}
	if st.CostLevels < 1 || st.ScheduleCandidates < 1 {
		t.Errorf("levels = %d, candidates = %d, want ≥ 1", st.CostLevels, st.ScheduleCandidates)
	}
	if st.Total <= 0 || st.Search <= 0 {
		t.Errorf("durations total=%v search=%v, want > 0", st.Total, st.Search)
	}
	if st.SpaceCandidates != 0 || st.Pruned() != 0 {
		t.Errorf("pure schedule search reported space stats: %+v", st)
	}
}

// TestSearchStatsJoint checks the joint Problem 6.2 stats on the matmul
// example: every pruning rule fires, inner searches aggregate, and the
// stats are shared between SpaceResult and ScheduleResult.
func TestSearchStatsJoint(t *testing.T) {
	algo := uda.MatMul(4)
	res, err := FindJointMapping(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("SpaceResult.Stats is nil")
	}
	if st.Engine != "joint-6.2" {
		t.Errorf("engine = %q", st.Engine)
	}
	if res.ScheduleResult.Stats != st {
		t.Error("ScheduleResult.Stats not shared with SpaceResult.Stats")
	}
	if st.SpaceCandidates != int64(res.Candidates) {
		t.Errorf("SpaceCandidates = %d, Candidates = %d", st.SpaceCandidates, res.Candidates)
	}
	// The matmul cube is symmetric and heavily prunable: both the orbit
	// rule and the incumbent cut must have fired, and the per-rule split
	// reconciles with the legacy Pruned counter (which only counts
	// pre-evaluation discards: orbit + lower bound).
	if st.PrunedOrbit < 1 {
		t.Errorf("PrunedOrbit = %d, want ≥ 1", st.PrunedOrbit)
	}
	if st.PrunedIncumbent < 1 {
		t.Errorf("PrunedIncumbent = %d, want ≥ 1", st.PrunedIncumbent)
	}
	if got := st.PrunedOrbit + st.PrunedLowerBound; got != int64(res.Pruned) {
		t.Errorf("orbit+lb = %d, legacy Pruned = %d", got, res.Pruned)
	}
	if st.InnerSearches < 1 || st.ScheduleCandidates < 1 || st.CostLevels < 1 {
		t.Errorf("inner effort empty: %+v", st)
	}
	if st.Total <= 0 || st.Search <= 0 {
		t.Errorf("durations total=%v search=%v, want > 0", st.Total, st.Search)
	}
	if s := st.String(); !strings.Contains(s, "engine=joint-6.2") || !strings.Contains(s, "pruned(") {
		t.Errorf("String() = %q", s)
	}
}

// TestSearchStatsSpace checks the Problem 6.1 stats.
func TestSearchStatsSpace(t *testing.T) {
	algo := uda.MatMul(4)
	res, err := FindSpaceMapping(algo, intmat.Vec(1, 4, 1), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("SpaceResult.Stats is nil")
	}
	if st.Engine != "space-6.1" {
		t.Errorf("engine = %q", st.Engine)
	}
	if st.SpaceCandidates != int64(res.Candidates) {
		t.Errorf("SpaceCandidates = %d, Candidates = %d", st.SpaceCandidates, res.Candidates)
	}
	if got := st.Pruned(); got != int64(res.Pruned) {
		t.Errorf("Stats.Pruned() = %d, legacy Pruned = %d", got, res.Pruned)
	}
	if st.InnerSearches != 0 || st.ScheduleCandidates != 0 {
		t.Errorf("fixed-Π search reported schedule stats: %+v", st)
	}
}

// TestSearchStatsDeterministicCounts: the exact counters (candidates,
// levels, orbit pruning) must not depend on worker scheduling.
func TestSearchStatsDeterministicCounts(t *testing.T) {
	algo := uda.MatMul(4)
	seq, err := FindJointMapping(algo, 1, &SpaceOptions{Schedule: Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := FindJointMapping(algo, 1, &SpaceOptions{Schedule: Options{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.SpaceCandidates != par.Stats.SpaceCandidates {
		t.Errorf("space candidates differ: %d vs %d", seq.Stats.SpaceCandidates, par.Stats.SpaceCandidates)
	}
	if seq.Stats.PrunedOrbit != par.Stats.PrunedOrbit {
		t.Errorf("orbit pruning differs: %d vs %d", seq.Stats.PrunedOrbit, par.Stats.PrunedOrbit)
	}
	if par.Stats.Workers != 4 {
		t.Errorf("parallel run reports workers = %d", par.Stats.Workers)
	}
}

// TestSearchStatsHNFCounters: the factored engines route decisions
// through the per-worker scratch, and the incremental/from-scratch
// split must land in the stats. On the matmul search many candidates
// share h lines (shifting Π by a row of S leaves h = Π·W unchanged),
// so a healthy cache shows plenty of incremental decisions.
func TestSearchStatsHNFCounters(t *testing.T) {
	algo := uda.MatMul(6)
	s := intmat.FromRows([]int64{1, 1, -1})
	res, err := FindOptimal(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.HNFFromScratch < 1 {
		t.Fatalf("HNFFromScratch = %d, want ≥ 1 (stats: %+v)", st.HNFFromScratch, st)
	}
	if st.HNFIncremental < 1 {
		t.Fatalf("HNFIncremental = %d, want ≥ 1 — the decision cache never hit (stats: %+v)", st.HNFIncremental, st)
	}
	if !strings.Contains(st.String(), "hnf(incremental=") {
		t.Errorf("String() lacks hnf counters: %q", st.String())
	}

	// The joint search shares one collector across inner searches; the
	// counters must aggregate there too.
	joint, err := FindJointMapping(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if joint.Stats.HNFFromScratch < 1 {
		t.Errorf("joint HNFFromScratch = %d, want ≥ 1", joint.Stats.HNFFromScratch)
	}

	// A NoFactorization run never touches the scratch path.
	plain, err := FindOptimal(algo, s, &Options{NoFactorization: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.HNFIncremental != 0 || plain.Stats.HNFFromScratch != 0 {
		t.Errorf("NoFactorization run reported hnf counters: %+v", plain.Stats)
	}
}

// TestScratchSearchMatchesUncached: the scratch cache must not change
// what the search finds — same Π, time, conflict verdict, and effort
// counters as the factored-but-uncached and the unfactored engines.
func TestScratchSearchMatchesUncached(t *testing.T) {
	cases := []struct {
		algo *uda.Algorithm
		s    *intmat.Matrix
	}{
		{uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1})},
		{uda.MatMul(6), intmat.FromRows([]int64{1, 1, -1})},
		{uda.MatMul(4), intmat.FromRows([]int64{1, 0, 0})},
	}
	for _, c := range cases {
		cached, err := FindOptimal(c.algo, c.s, nil)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := FindOptimal(c.algo, c.s, &Options{NoFactorization: true})
		if err != nil {
			t.Fatal(err)
		}
		if !cached.Mapping.Pi.Equal(plain.Mapping.Pi) {
			t.Fatalf("winner differs: cached Π=%v, plain Π=%v", cached.Mapping.Pi, plain.Mapping.Pi)
		}
		if cached.Time != plain.Time || cached.Candidates != plain.Candidates {
			t.Fatalf("effort differs: cached (t=%d, cand=%d) plain (t=%d, cand=%d)",
				cached.Time, cached.Candidates, plain.Time, plain.Candidates)
		}
		if cached.Conflict.ConflictFree != plain.Conflict.ConflictFree {
			t.Fatalf("conflict verdict differs for Π=%v", cached.Mapping.Pi)
		}
	}
}

// TestTotalTimeOverflow is the regression test for the unchecked
// t += p·μ_i wrap: the checked arithmetic must refuse instead of
// returning a negative total time that wins incumbent comparisons.
func TestTotalTimeOverflow(t *testing.T) {
	set := uda.Box(math.MaxInt64/2, 1)
	pi := intmat.Vec(3, 1)
	if _, err := TotalTimeChecked(pi, set); err == nil {
		t.Fatal("TotalTimeChecked: want overflow error")
	} else {
		var oe *intmat.OverflowError
		if !errors.As(err, &oe) {
			t.Fatalf("error %v is not *intmat.OverflowError", err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("TotalTime: want overflow panic")
		}
	}()
	TotalTime(pi, set)
}

// TestTotalTimeCheckedAgreement: on in-range inputs the checked form
// agrees with the panicking one, including the |MinInt64|-free path.
func TestTotalTimeCheckedAgreement(t *testing.T) {
	set := uda.Box(4, 4, 4)
	pi := intmat.Vec(-1, 2, -3)
	got, err := TotalTimeChecked(pi, set)
	if err != nil {
		t.Fatal(err)
	}
	if want := TotalTime(pi, set); got != want {
		t.Errorf("checked = %d, plain = %d", got, want)
	}
	if got != 25 {
		t.Errorf("t = %d, want 25", got)
	}
	m, err := NewMapping(uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	mt, err := m.TotalTimeChecked()
	if err != nil || mt != m.TotalTime() {
		t.Errorf("method form: t = %d err = %v, want %d", mt, err, m.TotalTime())
	}
}

// TestCandCtxCapturesOverflow: try runs inside worker goroutines where
// an overflow panic would crash the process; the candidate context must
// capture it as an error instead, and the engine surface it via
// takeErr.
func TestCandCtxCapturesOverflow(t *testing.T) {
	huge := int64(math.MaxInt64 - 1)
	algo := &uda.Algorithm{
		Name: "overflow-probe",
		Set:  uda.Box(huge, 1),
		D:    intmat.Identity(2),
	}
	if err := algo.Validate(); err != nil {
		t.Fatal(err)
	}
	s := intmat.FromRows([]int64{0, 1})
	cctx := newCandCtx(algo, s, &Options{}, nil)
	// Π = (3, 1) passes ΠD > 0, full rank and conflict-freeness
	// (T = [[0,1],[3,1]] is nonsingular, hence injective), but its
	// total time 1 + 3·(2^63 − 2) + 1 overflows int64.
	pi := intmat.Vec(3, 1)
	if _, ok := cctx.try(pi); ok {
		t.Fatal("overflowing candidate reported success")
	}
	err := cctx.takeErr()
	var oe *intmat.OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("takeErr() = %v, want *intmat.OverflowError", err)
	}
}

// TestFindSpaceMappingOverflow: the fixed-Π search evaluates TotalTime
// inside worker goroutines; the hoisted pre-check must convert an
// overflowing (Π, μ) pair into an error before the fan-out.
func TestFindSpaceMappingOverflow(t *testing.T) {
	huge := int64(math.MaxInt64 - 1)
	algo := &uda.Algorithm{
		Name: "overflow-probe",
		Set:  uda.Box(huge, 1),
		D:    intmat.Identity(2),
	}
	_, err := FindSpaceMapping(algo, intmat.Vec(3, 1), 1, nil)
	var oe *intmat.OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("FindSpaceMapping = %v, want *intmat.OverflowError", err)
	}
}
