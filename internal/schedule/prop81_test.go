package schedule

import (
	"errors"
	"math/rand"
	"testing"

	"lodim/internal/intmat"
)

// normalizedS returns a random S ∈ Z^{2×5} satisfying the Proposition
// 8.1 normalization s11 = 1, s22 − s21·s12 = 1.
func normalizedS(rng *rand.Rand, amp int64) *intmat.Matrix {
	s12 := rng.Int63n(2*amp+1) - amp
	s21 := rng.Int63n(2*amp+1) - amp
	s := intmat.New(2, 5)
	s.Set(0, 0, 1)
	s.Set(0, 1, s12)
	s.Set(1, 0, s21)
	s.Set(1, 1, 1+s21*s12)
	for q := 2; q < 5; q++ {
		s.Set(0, q, rng.Int63n(2*amp+1)-amp)
		s.Set(1, q, rng.Int63n(2*amp+1)-amp)
	}
	return s
}

// isIntegralCombo reports whether target is an integral combination of
// basis vectors b1, b2 (both length-n, linearly independent).
func isIntegralCombo(target, b1, b2 intmat.Vector) bool {
	// Find two coordinate rows where the 2x2 basis minor is nonsingular.
	n := len(target)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			det := b1[i]*b2[j] - b1[j]*b2[i]
			if det == 0 {
				continue
			}
			// Cramer: a = (t_i·b2_j − t_j·b2_i)/det, b = (b1_i·t_j − b1_j·t_i)/det.
			aNum := target[i]*b2[j] - target[j]*b2[i]
			bNum := b1[i]*target[j] - b1[j]*target[i]
			if aNum%det != 0 || bNum%det != 0 {
				return false
			}
			a, b := aNum/det, bNum/det
			return target.Equal(b1.Scale(a).Add(b2.Scale(b)))
		}
	}
	return false
}

// TestProp81AgainstHNF: on random normalized space mappings and random
// schedules, the closed-form basis must (1) be annihilated by T, (2) be
// linearly independent, and (3) span exactly the integer lattice found
// by the Hermite normal form.
func TestProp81AgainstHNF(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	checked := 0
	for trial := 0; trial < 400; trial++ {
		s := normalizedS(rng, 2)
		pi := make(intmat.Vector, 5)
		for i := range pi {
			pi[i] = rng.Int63n(11) - 5
		}
		T := s.AppendRow(pi)
		if T.Rank() != 3 {
			continue
		}
		u4, u5, err := Prop81NullVectors(s, pi)
		if errors.Is(err, ErrProp81Degenerate) {
			continue
		}
		if err != nil {
			t.Fatalf("Prop81NullVectors: %v\nS=\n%v\nΠ=%v", err, s, pi)
		}
		checked++
		for _, u := range []intmat.Vector{u4, u5} {
			if !T.MulVec(u).IsZero() {
				t.Fatalf("T·u != 0 for u=%v\nS=\n%v\nΠ=%v", u, s, pi)
			}
		}
		// Linear independence via some nonzero 2x2 minor.
		indep := false
		for i := 0; i < 5 && !indep; i++ {
			for j := i + 1; j < 5; j++ {
				if u4[i]*u5[j]-u4[j]*u5[i] != 0 {
					indep = true
					break
				}
			}
		}
		if !indep {
			t.Fatalf("u4=%v, u5=%v linearly dependent", u4, u5)
		}
		// Lattice equality with the HNF basis.
		h, err := intmat.HermiteNormalForm(T)
		if err != nil {
			t.Fatal(err)
		}
		basis := h.NullBasis()
		for _, b := range basis {
			if !isIntegralCombo(b, u4, u5) {
				t.Fatalf("HNF basis vector %v not in Prop81 lattice {%v, %v}", b, u4, u5)
			}
		}
		for _, u := range []intmat.Vector{u4, u5} {
			if !isIntegralCombo(u, basis[0], basis[1]) {
				t.Fatalf("Prop81 vector %v not in HNF lattice {%v, %v}", u, basis[0], basis[1])
			}
		}
	}
	if checked < 100 {
		t.Errorf("only %d non-degenerate samples — generator too narrow", checked)
	}
}

func TestProp81ShapeAndNormalizationErrors(t *testing.T) {
	// Wrong shape.
	if _, _, err := Prop81NullVectors(intmat.New(2, 4), intmat.Vec(1, 1, 1, 1)); !errors.Is(err, ErrProp81Shape) {
		t.Errorf("err = %v", err)
	}
	// s11 != 1.
	s := intmat.New(2, 5)
	s.Set(0, 0, 2)
	s.Set(1, 1, 1)
	if _, _, err := Prop81NullVectors(s, intmat.NewVector(5)); !errors.Is(err, ErrProp81Shape) {
		t.Errorf("err = %v", err)
	}
	// Normalization broken: s22 − s21·s12 != 1.
	s2 := intmat.New(2, 5)
	s2.Set(0, 0, 1)
	s2.Set(1, 1, 2)
	if _, _, err := Prop81NullVectors(s2, intmat.NewVector(5)); !errors.Is(err, ErrProp81Shape) {
		t.Errorf("err = %v", err)
	}
}

func TestProp81Degenerate(t *testing.T) {
	// Π equal to the first row of S makes all h_q vanish together with
	// rank(T) = 2.
	rng := rand.New(rand.NewSource(31))
	s := normalizedS(rng, 2)
	pi := s.Row(0)
	_, _, err := Prop81NullVectors(s, pi)
	if !errors.Is(err, ErrProp81Degenerate) {
		t.Errorf("err = %v, want ErrProp81Degenerate", err)
	}
}

func TestProp81HForms(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		s := normalizedS(rng, 2)
		forms, err := Prop81HForms(s)
		if err != nil {
			t.Fatal(err)
		}
		pi := make(intmat.Vector, 5)
		for i := range pi {
			pi[i] = rng.Int63n(9) - 4
		}
		// h_q(Π) must equal Π·w_q; w_q is annihilated by S, so
		// [S; Π]·w_q = (0, 0, h_q). Reconstruct w_q from the form row:
		// the coefficients of h_q over π are exactly the entries of w_q.
		for q := 0; q < 3; q++ {
			w := forms.Row(q)
			if !s.MulVec(w).IsZero() {
				t.Fatalf("S·w != 0 for w = %v derived from forms row %d\nS=\n%v", w, q, s)
			}
			if got := pi.Dot(w); got != forms.Row(q).Dot(pi) {
				t.Fatalf("h inconsistency: %d vs %d", got, forms.Row(q).Dot(pi))
			}
		}
	}
}

func TestProp81HFormsShapeError(t *testing.T) {
	if _, err := Prop81HForms(intmat.New(3, 5)); !errors.Is(err, ErrProp81Shape) {
		t.Errorf("err = %v", err)
	}
}
