package schedule

import (
	"errors"
	"testing"

	"lodim/internal/array"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// TestFindSpaceMappingMatmul solves Problem 6.1 for the matmul schedule
// Π = [1, 4, 1] of Example 5.1. The paper's S = [1,1,-1] uses 3μ+1 = 13
// processors; the search must find a mapping at least as cheap (e.g.
// S = [1,-1,0] with 2μ+1 = 9 processors is conflict-free for this Π).
func TestFindSpaceMappingMatmul(t *testing.T) {
	algo := uda.MatMul(4)
	pi := intmat.Vec(1, 4, 1)
	res, err := FindSpaceMapping(algo, pi, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processors > 9 {
		t.Errorf("found %d processors; S = [1,-1,0] achieves 9", res.Processors)
	}
	// The winner must be genuinely conflict-free (brute force).
	if free, w := conflict.BruteForce(res.Mapping.T, algo.Set); !free {
		t.Fatalf("winning mapping has conflict %v:\n%v", w, res.Mapping.T)
	}
	// The paper's S is among the feasible candidates but costs more.
	paper, ok := evaluateSpaceMapping(algo, intmat.FromRows([]int64{1, 1, -1}), pi, &SpaceOptions{})
	if !ok {
		t.Fatal("paper S rejected")
	}
	if paper.Processors != 13 {
		t.Errorf("paper S processors = %d, want 13", paper.Processors)
	}
	if res.Cost > paper.Cost {
		t.Errorf("search cost %d worse than paper's %d", res.Cost, paper.Cost)
	}
}

// TestFindSpaceMappingHonorsMachine: with a linear-array machine, the
// winner must be realizable within Π's slack.
func TestFindSpaceMappingHonorsMachine(t *testing.T) {
	algo := uda.MatMul(4)
	pi := intmat.Vec(1, 4, 1)
	opts := &SpaceOptions{Schedule: Options{Machine: array.NearestNeighbor(1)}}
	res, err := FindSpaceMapping(algo, pi, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := array.NearestNeighbor(1).Decompose(res.Mapping.S, algo.D, pi); err != nil {
		t.Errorf("winner not realizable: %v", err)
	}
}

func TestFindSpaceMappingValidation(t *testing.T) {
	algo := uda.MatMul(3)
	if _, err := FindSpaceMapping(algo, intmat.Vec(1, 1), 1, nil); err == nil {
		t.Error("short Π accepted")
	}
	if _, err := FindSpaceMapping(algo, intmat.Vec(0, 1, 1), 1, nil); err == nil {
		t.Error("invalid schedule accepted")
	}
	if _, err := FindSpaceMapping(algo, intmat.Vec(1, 1, 1), 0, nil); err == nil {
		t.Error("zero array dims accepted")
	}
	if _, err := FindSpaceMapping(algo, intmat.Vec(1, 1, 1), 3, nil); err == nil {
		t.Error("array dims = n accepted")
	}
}

func TestFindSpaceMappingNoSolution(t *testing.T) {
	// Π = [1,1,1] on the matmul cube cannot be conflict-free with any
	// 1-D space mapping with entries in {-1,0,1}: check the optimizer
	// reports ErrNoSchedule rather than inventing one... unless one
	// exists — then assert its correctness instead.
	algo := uda.MatMul(3)
	res, err := FindSpaceMapping(algo, intmat.Vec(1, 1, 1), 1, nil)
	if err != nil {
		if !errors.Is(err, ErrNoSchedule) {
			t.Fatalf("unexpected error %v", err)
		}
		return
	}
	if free, w := conflict.BruteForce(res.Mapping.T, algo.Set); !free {
		t.Fatalf("returned conflicting mapping (witness %v)", w)
	}
}

// TestFindJointMappingMatmul solves Problem 6.2 for matmul into a
// linear array: the joint optimum must be at least as fast as the best
// schedule for the paper's fixed S, i.e. t ≤ μ(μ+2)+1.
func TestFindJointMappingMatmul(t *testing.T) {
	algo := uda.MatMul(4)
	res, err := FindJointMapping(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time > 25 {
		t.Errorf("joint optimum t = %d, expected ≤ 25 (paper's S achieves 25)", res.Time)
	}
	if free, w := conflict.BruteForce(res.Mapping.T, algo.Set); !free {
		t.Fatalf("joint winner conflicts (witness %v):\n%v", w, res.Mapping.T)
	}
	t.Logf("joint optimum: t=%d, %d PEs, S=%v, Π=%v",
		res.Time, res.Processors, res.Mapping.S.Row(0), res.Mapping.Pi)
}

// TestFindJointMappingTransitiveClosure: the joint search must do at
// least as well as the paper's fixed S = [0,0,1] optimum μ(μ+3)+1.
func TestFindJointMappingTransitiveClosure(t *testing.T) {
	mu := int64(3)
	algo := uda.TransitiveClosure(mu)
	res, err := FindJointMapping(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := mu*(mu+3) + 1; res.Time > want {
		t.Errorf("joint optimum t = %d, expected ≤ %d", res.Time, want)
	}
	if free, _ := conflict.BruteForce(res.Mapping.T, algo.Set); !free {
		t.Fatal("joint winner conflicts")
	}
}

func TestEnumerateSpaceMappingsCanonical(t *testing.T) {
	count := 0
	seen := map[string]bool{}
	err := enumerateSpaceMappings(2, 1, 1, func(s *intmat.Matrix) bool {
		count++
		key := s.String()
		if seen[key] {
			t.Errorf("duplicate candidate %s", key)
		}
		seen[key] = true
		r := s.Row(0)
		if fz := r.FirstNonZero(); fz < 0 || r[fz] <= 0 {
			t.Errorf("non-canonical row %v", r)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Canonical non-zero rows over {-1,0,1}^2: (0,1), (1,-1), (1,0), (1,1) → 4.
	if count != 4 {
		t.Errorf("candidate count = %d, want 4", count)
	}
}

func TestEnumerateSpaceMappingsRankFilter(t *testing.T) {
	// All 2-row candidates over {-1,0,1}^2 must be nonsingular.
	err := enumerateSpaceMappings(2, 2, 1, func(s *intmat.Matrix) bool {
		if s.Rank() != 2 {
			t.Errorf("rank-deficient candidate\n%v", s)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountProcessorsAndWireLength(t *testing.T) {
	algo := uda.MatMul(2)
	m, err := NewMapping(algo, intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	// S·j spans [-2, 4]: 7 processors.
	if got := countProcessors(m); got != 7 {
		t.Errorf("processors = %d, want 7", got)
	}
	// ‖S·d_i‖₁ = 1 per dependence, 3 total.
	if got := wireLength(m.S, algo.D); got != 3 {
		t.Errorf("wire length = %d, want 3", got)
	}
}

func BenchmarkFindSpaceMappingMatmul(b *testing.B) {
	algo := uda.MatMul(4)
	pi := intmat.Vec(1, 4, 1)
	for i := 0; i < b.N; i++ {
		if _, err := FindSpaceMapping(algo, pi, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindJointMappingMatmul(b *testing.B) {
	algo := uda.MatMul(3)
	for i := 0; i < b.N; i++ {
		if _, err := FindJointMapping(algo, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
