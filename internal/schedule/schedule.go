// Package schedule implements linear schedules and the two
// time-optimal, conflict-free mapping optimizers of Shang & Fortes
// (1990), Section 5:
//
//   - Procedure 5.1 — enumeration of candidate schedule vectors Π in
//     increasing total-execution-time order, testing the exact
//     conflict-freeness conditions on each candidate; and
//   - the integer-programming formulation (5.1)–(5.2) for mappings
//     T ∈ Z^{(n−1)×n}, built on the linearity of the conflict-vector
//     entries in Π (Proposition 3.2) and solved by disjunctive
//     decomposition exactly as in the paper's appendix.
//
// Both optimizers minimize the total execution time of Equation 2.7,
//
//	t = 1 + Σ |π_i|·μ_i,
//
// subject to ΠD > 0 (dependencies respected), rank(T) = k, T
// conflict-free, and — when a target machine is given — the
// realizability condition SD = PK with Σ_l k_li ≤ Π·d̄_i.
package schedule

import (
	"errors"
	"fmt"

	"lodim/internal/array"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/trace"
	"lodim/internal/uda"
)

// Valid reports whether Π respects every dependence: ΠD > 0
// (condition 1 of Definition 2.2).
func Valid(pi intmat.Vector, d *intmat.Matrix) bool {
	if len(pi) != d.Rows() {
		panic(fmt.Sprintf("schedule: Π has %d entries, D has %d rows", len(pi), d.Rows()))
	}
	for i := 0; i < d.Cols(); i++ {
		if pi.Dot(d.Col(i)) <= 0 {
			return false
		}
	}
	return true
}

// TotalTime returns the total execution time of Equation 2.7:
// t = 1 + Σ|π_i|·μ_i. The sum is computed with checked arithmetic: a Π
// and μ whose product exceeds int64 used to wrap to a negative total
// time that silently *won* incumbent-time comparisons; now the overflow
// panics with *intmat.OverflowError. Callers handling untrusted Π
// should use TotalTimeChecked, which converts the panic to an error.
func TotalTime(pi intmat.Vector, set uda.IndexSet) int64 {
	if len(pi) != set.Dim() {
		panic(fmt.Sprintf("schedule: Π has %d entries, index set dimension is %d", len(pi), set.Dim()))
	}
	t := int64(1)
	for i, p := range pi {
		t = intmat.AddChecked(t, intmat.MulChecked(intmat.AbsChecked(p), set.Upper[i]))
	}
	return t
}

// TotalTimeChecked is TotalTime with the overflow panic converted to an
// error under intmat.Guard.
func TotalTimeChecked(pi intmat.Vector, set uda.IndexSet) (t int64, err error) {
	defer intmat.Guard(&err)
	return TotalTime(pi, set), nil
}

// Cost returns the objective f = t − 1 = Σ|π_i|·μ_i of Problem 2.2. It
// shares TotalTime's checked arithmetic (and its overflow panic).
func Cost(pi intmat.Vector, set uda.IndexSet) int64 { return TotalTime(pi, set) - 1 }

// Mapping is a complete, validated space-time mapping T = [S; Π] of an
// algorithm.
type Mapping struct {
	Algo *uda.Algorithm
	S    *intmat.Matrix // (k−1)×n space mapping
	Pi   intmat.Vector  // 1×n linear schedule
	T    *intmat.Matrix // [S; Π]
}

// NewMapping assembles and validates a mapping: shape consistency,
// ΠD > 0 and rank(T) = k. Conflict-freeness is not required here — the
// simulator deliberately accepts conflicting mappings so the conflicts
// can be observed; use Check for the full verdict.
func NewMapping(algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector) (*Mapping, error) {
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	n := algo.Dim()
	if s.Cols() != n {
		return nil, fmt.Errorf("schedule: S has %d columns, algorithm dimension is %d", s.Cols(), n)
	}
	if len(pi) != n {
		return nil, fmt.Errorf("schedule: Π has %d entries, algorithm dimension is %d", len(pi), n)
	}
	if !Valid(pi, algo.D) {
		return nil, fmt.Errorf("schedule: ΠD > 0 violated for Π = %v", pi)
	}
	t := s.AppendRow(pi)
	if t.Rank() != t.Rows() {
		return nil, fmt.Errorf("schedule: rank(T) = %d < k = %d", t.Rank(), t.Rows())
	}
	return &Mapping{Algo: algo, S: s, Pi: pi, T: t}, nil
}

// K returns the number of rows of T.
func (m *Mapping) K() int { return m.T.Rows() }

// Processor returns S·j̄, the array coordinates executing point j̄.
func (m *Mapping) Processor(j intmat.Vector) intmat.Vector { return m.S.MulVec(j) }

// Time returns Π·j̄, the execution time of point j̄.
func (m *Mapping) Time(j intmat.Vector) int64 { return m.Pi.Dot(j) }

// TotalTime returns the schedule's total execution time over the
// algorithm's index set.
func (m *Mapping) TotalTime() int64 { return TotalTime(m.Pi, m.Algo.Set) }

// TotalTimeChecked is the method form of the package-level
// TotalTimeChecked: the overflow panic becomes an error.
func (m *Mapping) TotalTimeChecked() (int64, error) {
	return TotalTimeChecked(m.Pi, m.Algo.Set)
}

// Check decides conflict-freeness of the mapping.
func (m *Mapping) Check() (conflict.Result, error) {
	return conflict.Decide(m.T, m.Algo.Set)
}

// Options configures the optimizers.
type Options struct {
	// Machine, when non-nil, adds realizability condition 2 of
	// Definition 2.2 (SD = PK within the schedule slack).
	Machine *array.Machine
	// MaxCost caps the objective Σ|π_i|·μ_i explored by the
	// enumeration; 0 selects a generous default.
	MaxCost int64
	// MinCost starts the enumeration above a known lower bound
	// (used by the ILP fallback); 0 starts at 1.
	MinCost int64
	// NoFactorization disables the factored per-space-mapping conflict
	// analysis in FindOptimal, forcing a full Hermite decomposition per
	// candidate. Exists for the acceleration ablation; results are
	// identical either way.
	NoFactorization bool
	// RequireSingleHop additionally rejects designs whose machine
	// decomposition uses more than one primitive hop for any transfer —
	// the structural guarantee of link-collision freedom from the
	// paper's appendix (and condition 5 of its reference [23]). Only
	// meaningful together with Machine.
	RequireSingleHop bool
	// Workers sets the number of goroutines evaluating candidates in
	// FindOptimal (0 or 1 = sequential). The result is deterministic
	// regardless of parallelism: within one objective level every
	// passing candidate is collected and the one earliest in
	// enumeration order wins, exactly as in the sequential search.
	//
	// Parallelism pays off only when individual candidate tests are
	// expensive (deep codimension with frequent exact-enumeration
	// fallbacks) and real cores are available; for typical searches the
	// per-candidate work is tens of nanoseconds (the ΠD > 0 rejection)
	// and the sequential early-exit path is faster — see
	// BenchmarkParallelSearch.
	Workers int
	// MinimizeBuffers breaks ties among time-optimal schedules by the
	// total buffer count of the machine realization (the paper's
	// secondary design criterion in Example 5.1: "the systolic array
	// designed in this paper only needs three buffers"). Requires
	// Machine; within equal time and buffers the enumeration order
	// still decides.
	MinimizeBuffers bool
	// SelfCheck certifies the winning mapping through the independent
	// verification engine before returning it; a certificate failure
	// surfaces as an error instead of a wrong answer. The checker is
	// registered by importing lodim/internal/verify (the mapping facade
	// and internal/service do so); with no checker registered, a search
	// with SelfCheck set fails rather than silently skipping the check.
	SelfCheck bool
}

// Result is an optimizer's answer.
type Result struct {
	Mapping *Mapping
	// Time is the total execution time 1 + Σ|π_i|μ_i.
	Time int64
	// Conflict is the certificate for the winning schedule.
	Conflict conflict.Result
	// Decomp is the machine realization when a machine was given.
	Decomp *array.Decomposition
	// Candidates counts schedule vectors examined (Procedure 5.1) or
	// branch-and-bound nodes (ILP); an effort metric for the
	// formulation-versus-enumeration ablation.
	Candidates int
	// Method names the engine: "procedure-5.1" or "ilp".
	Method string
	// Stats carries the structured search statistics collected during
	// the run (candidate counts per pruning rule, phase wall times).
	// Nil when the engine predates stats collection (ILP fallback).
	Stats *SearchStats
	// Trace references the span trace recorded for this search when the
	// caller's context carried an active trace span (see internal/trace);
	// nil when tracing is off. The summary names the trace so the full
	// span tree can be found in the /debug/requests inspector or a
	// -trace-dir export.
	Trace *trace.Summary
}

// ErrNoSchedule reports that no feasible conflict-free schedule exists
// within the explored cost range.
var ErrNoSchedule = errors.New("schedule: no conflict-free schedule found within cost bound")

func (r *Result) String() string {
	return fmt.Sprintf("Π = %v, t = %d (%s, %d candidates)", r.Mapping.Pi, r.Time, r.Method, r.Candidates)
}
