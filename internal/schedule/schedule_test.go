package schedule

import (
	"errors"
	"fmt"
	"testing"

	"lodim/internal/array"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

func TestValid(t *testing.T) {
	algo := uda.MatMul(4)
	if !Valid(intmat.Vec(1, 1, 1), algo.D) {
		t.Error("Π = [1 1 1] rejected for D = I")
	}
	if Valid(intmat.Vec(1, 0, 1), algo.D) {
		t.Error("Π with Πd = 0 accepted")
	}
	if Valid(intmat.Vec(-1, 1, 1), algo.D) {
		t.Error("Π with Πd < 0 accepted")
	}
	tc := uda.TransitiveClosure(4)
	if !Valid(intmat.Vec(5, 1, 1), tc.D) {
		t.Error("paper-optimal transitive closure schedule rejected")
	}
	if Valid(intmat.Vec(1, 1, 1), tc.D) {
		t.Error("Π = [1 1 1] accepted for transitive closure (Πd̄_3 = -1)")
	}
}

func TestTotalTime(t *testing.T) {
	set := uda.Cube(3, 4)
	if got := TotalTime(intmat.Vec(1, 4, 1), set); got != 25 {
		t.Errorf("t = %d, want 25 (= μ(μ+2)+1)", got)
	}
	if got := TotalTime(intmat.Vec(-1, 4, 1), set); got != 25 {
		t.Errorf("absolute value not applied: t = %d", got)
	}
	if got := Cost(intmat.Vec(1, 4, 1), set); got != 24 {
		t.Errorf("Cost = %d, want 24", got)
	}
}

func TestNewMappingValidation(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	m, err := NewMapping(algo, s, intmat.Vec(1, 4, 1))
	if err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	if m.K() != 2 || m.TotalTime() != 25 {
		t.Errorf("K = %d, t = %d", m.K(), m.TotalTime())
	}
	if got := m.Processor(intmat.Vec(1, 2, 3)); !got.Equal(intmat.Vec(0)) {
		t.Errorf("Processor = %v", got)
	}
	if got := m.Time(intmat.Vec(1, 2, 3)); got != 1+8+3 {
		t.Errorf("Time = %d", got)
	}
	// ΠD violation.
	if _, err := NewMapping(algo, s, intmat.Vec(0, 1, 1)); err == nil {
		t.Error("ΠD = 0 accepted")
	}
	// Rank deficiency: Π a multiple of S's row.
	if _, err := NewMapping(algo, intmat.FromRows([]int64{1, 1, 1}), intmat.Vec(2, 2, 2)); err == nil {
		t.Error("rank-deficient T accepted")
	}
	// Shape errors.
	if _, err := NewMapping(algo, intmat.FromRows([]int64{1, 1}), intmat.Vec(1, 1, 1)); err == nil {
		t.Error("short S accepted")
	}
	if _, err := NewMapping(algo, s, intmat.Vec(1, 1)); err == nil {
		t.Error("short Π accepted")
	}
}

func TestMappingCheck(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	good, err := NewMapping(algo, s, intmat.Vec(1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := good.Check()
	if err != nil || !res.ConflictFree {
		t.Errorf("optimal mapping not conflict-free: %v %v", res, err)
	}
	bad, err := NewMapping(algo, s, intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err = bad.Check()
	if err != nil || res.ConflictFree {
		t.Errorf("Π = [1 1 1] reported conflict-free: %v %v", res, err)
	}
}

// TestExample51Procedure reproduces Example 5.1 with Procedure 5.1: the
// matmul algorithm with S = [1,1,-1] and μ = 4 has optimal schedule
// Π° = [1,μ,1] (lexicographically first of the two paper optima) and
// total time t = μ(μ+2)+1 = 25, strictly better than the [23] schedule
// Π' = [2,1,μ] with t' = μ(μ+3)+1 = 29.
func TestExample51Procedure(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	res, err := FindOptimal(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 25 {
		t.Errorf("t = %d, want 25", res.Time)
	}
	if !res.Conflict.ConflictFree {
		t.Error("winning schedule not certified conflict-free")
	}
	// The optimum is not unique: the paper reports the extreme points
	// Π2 = [1,μ,1] and Π3 = [μ,1,1] of its convex subproblems, but
	// interior integral points of the same cost (e.g. [1,2,3]) are also
	// conflict-free. Verify the paper's Π2 is among the optima.
	paper, err := NewMapping(algo, s, intmat.Vec(1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	chk, err := paper.Check()
	if err != nil || !chk.ConflictFree || paper.TotalTime() != res.Time {
		t.Errorf("paper optimum [1 4 1] not confirmed: t=%d, %v, %v", paper.TotalTime(), chk, err)
	}
	// The [23] reference schedule must be feasible but slower.
	ref := TotalTime(intmat.Vec(2, 1, 4), algo.Set)
	if ref != 29 {
		t.Errorf("reference t' = %d, want 29", ref)
	}
	if res.Time >= ref {
		t.Errorf("found schedule (t=%d) does not beat [23] (t'=%d)", res.Time, ref)
	}
}

// TestExample52Procedure reproduces Example 5.2: the transitive closure
// with S = [0,0,1] and μ = 4 has optimal schedule Π° = [μ+1,1,1] and
// total time μ(μ+3)+1 = 29, improving [22]'s Π' = [2μ+1,1,1] with
// t' = μ(2μ+3)+1 = 45.
func TestExample52Procedure(t *testing.T) {
	mu := int64(4)
	algo := uda.TransitiveClosure(mu)
	s := intmat.FromRows([]int64{0, 0, 1})
	res, err := FindOptimal(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := mu*(mu+3) + 1; res.Time != want {
		t.Errorf("t = %d, want %d", res.Time, want)
	}
	if !res.Mapping.Pi.Equal(intmat.Vec(mu+1, 1, 1)) {
		t.Errorf("Π = %v, want [%d 1 1]", res.Mapping.Pi, mu+1)
	}
	// [22] reference.
	if ref := TotalTime(intmat.Vec(2*mu+1, 1, 1), algo.Set); ref != mu*(2*mu+3)+1 {
		t.Errorf("reference t' = %d", ref)
	}
}

// TestILPMatchesProcedure: the two engines must agree on the optimum
// for the paper's examples and for additional algorithm/space-mapping
// pairs (the X3 ablation).
func TestILPMatchesProcedure(t *testing.T) {
	cases := []struct {
		algo *uda.Algorithm
		s    *intmat.Matrix
	}{
		{uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1})},
		{uda.MatMul(3), intmat.FromRows([]int64{1, 1, -1})},
		{uda.MatMul(5), intmat.FromRows([]int64{1, 1, -1})},
		{uda.TransitiveClosure(4), intmat.FromRows([]int64{0, 0, 1})},
		{uda.TransitiveClosure(2), intmat.FromRows([]int64{0, 0, 1})},
		// Convolution mapped to a single processor: S has zero rows and
		// T = Π ∈ Z^{1×2} must be injective on the index set.
		{uda.Convolution(6, 3), intmat.New(0, 2)},
		{uda.LU(4), intmat.FromRows([]int64{1, 1, -1})},
	}
	for _, c := range cases {
		proc, err := FindOptimal(c.algo, c.s, nil)
		if err != nil {
			t.Fatalf("%s: procedure: %v", c.algo.Name, err)
		}
		ilpRes, err := FindOptimalILP(c.algo, c.s, nil)
		if err != nil {
			t.Fatalf("%s: ILP: %v", c.algo.Name, err)
		}
		if proc.Time != ilpRes.Time {
			t.Errorf("%s μ=%v: procedure t=%d (Π=%v), ILP t=%d (Π=%v)",
				c.algo.Name, c.algo.Set.Upper, proc.Time, proc.Mapping.Pi, ilpRes.Time, ilpRes.Mapping.Pi)
		}
		// Both must be genuinely conflict-free.
		for _, r := range []*Result{proc, ilpRes} {
			chk, err := r.Mapping.Check()
			if err != nil || !chk.ConflictFree {
				t.Errorf("%s: %s result not conflict-free: %v %v", c.algo.Name, r.Method, chk, err)
			}
		}
	}
}

// TestExample51WithMachine adds the linear-array realizability
// condition; the optimum is unchanged (the optimal design is 1-hop).
func TestExample51WithMachine(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	opts := &Options{Machine: array.NearestNeighbor(1)}
	res, err := FindOptimal(algo, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 25 {
		t.Errorf("t = %d, want 25", res.Time)
	}
	if res.Decomp == nil {
		t.Fatal("no decomposition attached")
	}
	if res.Decomp.TotalBuffers() != 3 {
		t.Errorf("buffers = %d, want 3", res.Decomp.TotalBuffers())
	}
	if !res.Decomp.SingleHop() {
		t.Error("design not single-hop")
	}
}

// TestRequireSingleHop: with a multi-hop space mapping S = [2,1,-1],
// the option must force the optimizer past designs needing several
// primitive hops per transfer — or report no solution if none exists.
func TestRequireSingleHop(t *testing.T) {
	algo := uda.MatMul(3)
	machine := array.NearestNeighbor(1)
	// The standard S = [1,1,-1] design is 1-hop: the optimum is
	// unchanged with the option on.
	s := intmat.FromRows([]int64{1, 1, -1})
	plain, err := FindOptimal(algo, s, &Options{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := FindOptimal(algo, s, &Options{Machine: machine, RequireSingleHop: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Time != strict.Time {
		t.Errorf("single-hop option changed the optimum: %d vs %d", plain.Time, strict.Time)
	}
	if !strict.Decomp.SingleHop() {
		t.Error("strict winner not single-hop")
	}
	// S = [2,1,-1] forces 2 hops on d̄_1; the strict search must reject
	// every schedule (the hop count is Π-independent).
	s2 := intmat.FromRows([]int64{2, 1, -1})
	if _, err := FindOptimal(algo, s2, &Options{Machine: machine, RequireSingleHop: true, MaxCost: 60}); err == nil {
		t.Error("multi-hop design accepted under RequireSingleHop")
	}
	// Without the option it is realizable (buffers absorb the hops).
	if _, err := FindOptimal(algo, s2, &Options{Machine: machine}); err != nil {
		t.Errorf("relaxed search failed: %v", err)
	}
}

func TestFindOptimalNoSolution(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	_, err := FindOptimal(algo, s, &Options{MaxCost: 3})
	if !errors.Is(err, ErrNoSchedule) {
		t.Errorf("err = %v, want ErrNoSchedule", err)
	}
}

func TestFindOptimalShapeError(t *testing.T) {
	algo := uda.MatMul(4)
	if _, err := FindOptimal(algo, intmat.FromRows([]int64{1, 1}), nil); err == nil {
		t.Error("short S accepted")
	}
	if _, err := FindOptimalILP(algo, intmat.FromRows([]int64{1, 1, -1}, []int64{0, 1, 0}), nil); err == nil {
		t.Error("ILP accepted S with wrong row count")
	}
}

func TestEnumerateExactCost(t *testing.T) {
	mu := intmat.Vec(1, 2)
	var got []string
	enumerate(mu, 2, func(pi intmat.Vector) bool {
		got = append(got, pi.String())
		return true
	})
	// Σ|π_i|·μ_i = 2 with μ = (1,2): (±2, 0), (0, ±1).
	want := map[string]bool{"[-2 0]": true, "[2 0]": true, "[0 -1]": true, "[0 1]": true}
	if len(got) != len(want) {
		t.Fatalf("enumerated %v, want the 4 vectors %v", got, want)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected vector %s", g)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	mu := intmat.Vec(1, 1)
	count := 0
	completed := enumerate(mu, 2, func(pi intmat.Vector) bool {
		count++
		return count < 2
	})
	if completed || count != 2 {
		t.Errorf("completed=%v count=%d", completed, count)
	}
}

func TestResultString(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	res, err := FindOptimal(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}

// TestFindOptimalIsTrulyOptimal cross-checks the optimizer's answer
// against a definitional search: enumerate every Π up to the found
// cost, test conflict-freeness by brute force over the index set, and
// confirm nothing cheaper passes. Run on small instances only.
func TestFindOptimalIsTrulyOptimal(t *testing.T) {
	cases := []struct {
		algo *uda.Algorithm
		s    *intmat.Matrix
	}{
		{uda.MatMul(2), intmat.FromRows([]int64{1, 1, -1})},
		{uda.MatMul(3), intmat.FromRows([]int64{1, 1, -1})},
		{uda.TransitiveClosure(2), intmat.FromRows([]int64{0, 0, 1})},
		{uda.Convolution(3, 2), intmat.FromRows([]int64{1, -1})},
		{uda.EditDistance(3, 3), intmat.FromRows([]int64{1, 0})},
		{uda.SOR(3, 3), intmat.FromRows([]int64{0, 1})},
	}
	for _, c := range cases {
		res, err := FindOptimal(c.algo, c.s, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.algo.Name, err)
		}
		// Definitional check: no strictly cheaper Π may be valid.
		for cost := int64(1); cost < res.Time-1; cost++ {
			enumerate(c.algo.Set.Upper, cost, func(pi intmat.Vector) bool {
				if !Valid(pi, c.algo.D) {
					return true
				}
				T := c.s.AppendRow(pi)
				if T.Rank() != T.Rows() {
					return true
				}
				if free, _ := conflict.BruteForce(T, c.algo.Set); free {
					t.Errorf("%s: Π = %v at cost %d beats claimed optimum %d",
						c.algo.Name, pi, cost, res.Time-1)
					return false
				}
				return true
			})
		}
		// And the winner itself must be genuinely conflict-free.
		if free, w := conflict.BruteForce(res.Mapping.T, c.algo.Set); !free {
			t.Errorf("%s: winner has conflict %v", c.algo.Name, w)
		}
	}
}

// TestParallelSearchDeterministic: the parallel evaluator must return
// exactly the sequential result (value and candidate count) for every
// worker count.
func TestParallelSearchDeterministic(t *testing.T) {
	cases := []struct {
		algo *uda.Algorithm
		s    *intmat.Matrix
	}{
		{uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1})},
		{uda.TransitiveClosure(4), intmat.FromRows([]int64{0, 0, 1})},
		{uda.BitLevelConvolution(3, 2, 2), intmat.FromRows([]int64{1, 1, 0, 0})},
	}
	for _, c := range cases {
		seq, err := FindOptimal(c.algo, c.s, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.algo.Name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := FindOptimal(c.algo, c.s, &Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.algo.Name, workers, err)
			}
			if par.Time != seq.Time || !par.Mapping.Pi.Equal(seq.Mapping.Pi) {
				t.Errorf("%s workers=%d: Π=%v t=%d, sequential Π=%v t=%d",
					c.algo.Name, workers, par.Mapping.Pi, par.Time, seq.Mapping.Pi, seq.Time)
			}
		}
	}
}

// TestMinimizeBuffers: the tie-break picks an equal-time schedule with
// the fewest buffers. For the transitive closure at μ = 4 the optimum
// cost level contains schedules with different buffer totals.
func TestMinimizeBuffers(t *testing.T) {
	algo := uda.TransitiveClosure(4)
	s := intmat.FromRows([]int64{0, 0, 1})
	machine := array.NearestNeighbor(1)
	plain, err := FindOptimal(algo, s, &Options{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	best, err := FindOptimal(algo, s, &Options{Machine: machine, MinimizeBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.Time != plain.Time {
		t.Fatalf("tie-break changed the optimal time: %d vs %d", best.Time, plain.Time)
	}
	if best.Decomp.TotalBuffers() > plain.Decomp.TotalBuffers() {
		t.Errorf("MinimizeBuffers chose %d buffers, plain search found %d",
			best.Decomp.TotalBuffers(), plain.Decomp.TotalBuffers())
	}
	// Exhaustive confirmation: no equal-cost schedule beats the winner.
	minBuf := best.Decomp.TotalBuffers()
	enumerate(algo.Set.Upper, best.Time-1, func(pi intmat.Vector) bool {
		r, ok := tryCandidate(algo, s, pi, &Options{Machine: machine})
		if ok && r.Decomp.TotalBuffers() < minBuf {
			t.Errorf("Π = %v has %d buffers < winner's %d", pi, r.Decomp.TotalBuffers(), minBuf)
			return false
		}
		return true
	})
	// Without a machine the option errors.
	if _, err := FindOptimal(algo, s, &Options{MinimizeBuffers: true}); err == nil {
		t.Error("MinimizeBuffers without Machine accepted")
	}
}

// TestNoFactorizationAblationAgrees: disabling the factored analysis
// must not change any result.
func TestNoFactorizationAblationAgrees(t *testing.T) {
	cases := []struct {
		algo *uda.Algorithm
		s    *intmat.Matrix
	}{
		{uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1})},
		{uda.TransitiveClosure(4), intmat.FromRows([]int64{0, 0, 1})},
		{uda.BitLevelConvolution(3, 2, 2), intmat.FromRows([]int64{1, 0, 0, 0}, []int64{0, 1, 0, 0})},
	}
	for _, c := range cases {
		fast, err := FindOptimal(c.algo, c.s, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.algo.Name, err)
		}
		slow, err := FindOptimal(c.algo, c.s, &Options{NoFactorization: true})
		if err != nil {
			t.Fatalf("%s: %v", c.algo.Name, err)
		}
		if fast.Time != slow.Time || !fast.Mapping.Pi.Equal(slow.Mapping.Pi) {
			t.Errorf("%s: factored (Π=%v t=%d) vs full (Π=%v t=%d)",
				c.algo.Name, fast.Mapping.Pi, fast.Time, slow.Mapping.Pi, slow.Time)
		}
		if fast.Candidates != slow.Candidates {
			t.Errorf("%s: candidate counts differ: %d vs %d", c.algo.Name, fast.Candidates, slow.Candidates)
		}
	}
}

func BenchmarkProcedure51Factored(b *testing.B) {
	// A k = n−2 instance (4-D bit-level convolution into a 1-D array):
	// the codimension-2 regime is where the factored analysis pays off,
	// since the full path needs a complete Hermite decomposition per
	// candidate while the factored path runs one single-row reduction.
	algo := uda.BitLevelConvolution(3, 2, 2)
	s := intmat.FromRows([]int64{1, 1, 0, 0})
	b.Run("factored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FindOptimal(algo, s, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-hnf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FindOptimal(algo, s, &Options{NoFactorization: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParallelSearch(b *testing.B) {
	algo := uda.BitLevelConvolution(3, 2, 2)
	s := intmat.FromRows([]int64{1, 1, 0, 0})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := &Options{Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := FindOptimal(algo, s, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProcedure51Matmul(b *testing.B) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindOptimal(algo, s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkILPMatmul(b *testing.B) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindOptimalILP(algo, s, nil); err != nil {
			b.Fatal(err)
		}
	}
}
