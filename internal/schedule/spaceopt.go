package schedule

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/trace"
	"lodim/internal/uda"
)

// This file implements the two optimization problems the paper's
// Section 6 poses as future work:
//
//   - Problem 6.1 (space-optimal, conflict-free mapping): given a
//     linear schedule Π, find a space mapping S such that T = [S; Π] is
//     conflict-free and "the number of processors plus the wire length
//     of the array is minimized".
//   - Problem 6.2 (optimal conflict-free mapping): neither S nor Π is
//     given; find a conflict-free T optimizing a joint criterion (here:
//     total execution time first, then array cost).
//
// Both are solved by exhaustive search over small-coefficient space
// mappings — the paper gives no algorithm, and the space of practically
// used mappings has entries in {−1, 0, 1} (every S in the paper and its
// references does), so bounded exhaustive search is both exact for that
// class and fast. Candidates equivalent up to row reordering and row
// negation (which relabel the array without changing its geometry) are
// enumerated once.
//
// The search engine fans candidates across Schedule.Workers goroutines
// and prunes with three exact rules (see DESIGN.md, "Joint search
// engine"): axis-symmetry orbits keep only their lexicographically
// least member, a processor-count lower bound rejects candidates that
// cannot beat the incumbent cost, and the shared incumbent time bounds
// every inner schedule search. All three preserve the sequential
// winner, so results are identical at any worker count.

// SpaceOptions configures FindSpaceMapping and FindJointMapping.
type SpaceOptions struct {
	// MaxEntry bounds |s_ij| in the search (default 1).
	MaxEntry int64
	// WireWeight scales the wire-length term of the cost (default 1).
	WireWeight int64
	// Schedule options applied to the inner Π search (joint problem
	// only); the Machine option also applies to Problem 6.1. The
	// Workers field parallelizes the *outer* space-mapping search in
	// both problems (the joint inner searches always run sequentially,
	// which keeps their candidate counts deterministic).
	Schedule Options
	// NoPrune disables symmetry and lower-bound pruning, forcing every
	// candidate through full evaluation. The winner is unaffected; the
	// flag exists for validation and ablation measurements.
	NoPrune bool
}

// SpaceResult is the outcome of a space-mapping search.
type SpaceResult struct {
	Mapping *Mapping
	// Processors is |S(J)|, the exact number of array cells used.
	Processors int64
	// WireLength is Σ_i ‖S·d̄_i‖₁, the total transfer distance per use.
	WireLength int64
	// Cost = Processors + WireWeight·WireLength, the Problem 6.1
	// objective.
	Cost int64
	// Candidates counts space mappings enumerated (including pruned
	// ones).
	Candidates int
	// Pruned counts space mappings rejected before evaluation, by
	// symmetry or by cost lower bound. With Workers > 1 the lower-bound
	// rule races the incumbent, so Pruned may vary between runs; the
	// winning mapping never does.
	Pruned int
	// Time is the total execution time (joint problem: of the winning
	// schedule; Problem 6.1: of the given Π).
	Time int64
	// Stats carries the structured search statistics: per-rule pruning
	// counts, inner-search effort, and phase wall times. Unlike Pruned,
	// the per-rule counters are exact for orbit pruning and may vary
	// between runs for the incumbent-racing rules at Workers > 1.
	Stats *SearchStats
	// Trace references the span trace recorded for this search when the
	// caller's context carried an active trace span; nil when tracing is
	// off (see Result.Trace).
	Trace *trace.Summary
}

func (r *SpaceResult) String() string {
	return fmt.Sprintf("S =\n%v\nΠ = %v: %d processors, wire %d, t = %d",
		r.Mapping.S, r.Mapping.Pi, r.Processors, r.WireLength, r.Time)
}

// FindSpaceMapping solves Problem 6.1 by exhaustive search over
// (k−1)×n space mappings with entries bounded by MaxEntry: among all S
// making T = [S; Π] a valid conflict-free mapping (full rank; machine
// realizability when configured), it returns the one minimizing
// |S(J)| + WireWeight·Σ‖S·d̄_i‖₁, breaking ties lexicographically. The
// search runs on Schedule.Workers goroutines and returns the same
// winner at any worker count.
func FindSpaceMapping(algo *uda.Algorithm, pi intmat.Vector, arrayDims int, opts *SpaceOptions) (*SpaceResult, error) {
	return FindSpaceMappingContext(context.Background(), algo, pi, arrayDims, opts)
}

// FindSpaceMappingContext is FindSpaceMapping with cancellation: a done
// context stops the candidate loop promptly and the context's error is
// returned (an interrupted search proves nothing about feasibility).
func FindSpaceMappingContext(ctx context.Context, algo *uda.Algorithm, pi intmat.Vector, arrayDims int, opts *SpaceOptions) (*SpaceResult, error) {
	if opts == nil {
		opts = &SpaceOptions{}
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	if len(pi) != algo.Dim() {
		return nil, fmt.Errorf("schedule: Π has %d entries, algorithm dimension is %d", len(pi), algo.Dim())
	}
	if !Valid(pi, algo.D) {
		return nil, fmt.Errorf("schedule: ΠD > 0 violated for Π = %v", pi)
	}
	if arrayDims < 1 || arrayDims >= algo.Dim() {
		return nil, fmt.Errorf("schedule: array dimensionality %d out of range [1, n-1]", arrayDims)
	}
	// Π is fixed across every candidate, so one checked evaluation here
	// proves the TotalTime calls inside the worker goroutines (same
	// inputs) cannot hit the overflow panic.
	if _, err := TotalTimeChecked(pi, algo.Set); err != nil {
		return nil, err
	}
	ctx, span := trace.Start(ctx, "space-search")
	defer span.End()
	span.SetInt("dims", int64(arrayDims))
	startAt := time.Now()
	stats := &statsCollector{}
	_, collectSpan := trace.Start(ctx, "collect")
	cands, err := collectSpaceMappings(algo.Dim(), arrayDims, maxEntryOrDefault(opts))
	if err != nil {
		collectSpan.End()
		return nil, err
	}
	symPruned := make([]bool, len(cands))
	if !opts.NoPrune {
		symPruned = symmetryPruned(cands, axisAutomorphisms(algo, pi))
	}
	collectSpan.SetInt("candidates", int64(len(cands)))
	collectSpan.End()
	collectDur := time.Since(startAt)
	stats.spaceCandidates.Add(int64(len(cands)))
	weight := wireWeightOrDefault(opts)
	results := make([]*SpaceResult, len(cands))
	var bestCost, prunedCount atomic.Int64
	bestCost.Store(math.MaxInt64)
	searchAt := time.Now()
	forEachCandidate(ctx, len(cands), opts.Schedule.Workers, func(_ context.Context, i int) {
		s := cands[i]
		if symPruned[i] {
			prunedCount.Add(1)
			stats.prunedOrbit.Add(1)
			return
		}
		if !opts.NoPrune {
			// The candidate's cost is at least the processor lower
			// bound plus its exact wire term; the incumbent only
			// decreases, so a strict > here can never discard a
			// candidate tying the final minimum.
			lb := processorLowerBound(s, algo.Set.Upper) + weight*wireLength(s, algo.D)
			if lb > bestCost.Load() {
				prunedCount.Add(1)
				stats.prunedLowerBound.Add(1)
				return
			}
		}
		r, ok := evaluateSpaceMapping(algo, s, pi, opts)
		if !ok {
			return
		}
		results[i] = r
		for {
			cur := bestCost.Load()
			if r.Cost >= cur || bestCost.CompareAndSwap(cur, r.Cost) {
				break
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("schedule: space search: %w", err)
	}
	var best *SpaceResult
	for _, r := range results {
		if r == nil {
			continue
		}
		if best == nil || r.Cost < best.Cost {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no conflict-free space mapping with |entries| ≤ %d for Π = %v",
			ErrNoSchedule, maxEntryOrDefault(opts), pi)
	}
	best.Candidates = len(cands)
	best.Pruned = int(prunedCount.Load())
	if opts.Schedule.SelfCheck {
		if err := runSelfCheck(best.Mapping); err != nil {
			return nil, err
		}
	}
	best.Stats = stats.snapshot("space-6.1", effectiveWorkers(opts.Schedule.Workers, len(cands)),
		collectDur, time.Since(searchAt), time.Since(startAt))
	best.Stats.annotateSpan(span)
	best.Trace = trace.SummaryFromContext(ctx)
	return best, nil
}

// effectiveWorkers mirrors forEachCandidate's clamping for reporting.
func effectiveWorkers(workers, count int) int {
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// JointResult is the outcome of the joint Problem 6.2 search.
type JointResult struct {
	SpaceResult
	// ScheduleResult carries the inner optimizer's certificate.
	ScheduleResult *Result
}

// FindJointMapping solves Problem 6.2: over all space mappings S with
// bounded entries, run the time-optimal schedule search and keep the
// mapping with the smallest total execution time, breaking ties by the
// Problem 6.1 array cost (then by the pinned semantic order of
// jointLess). The returned
// mapping is exact within the entry bound; entries beyond {−1, 0, 1}
// are rarely useful for space mappings but can be enabled through
// MaxEntry.
//
// The outer candidate loop runs on Schedule.Workers goroutines sharing
// a (time, cost) incumbent that tightens every inner search's cost
// ceiling; selection is by the total order of jointLess (time, cost,
// processors, Π key, S rows) over fully evaluated candidates, so the
// winner is identical at any worker count and never depends on
// discovery order. Inner searches that exhaust their bound report ErrNoSchedule
// and are skipped; any other inner error aborts the whole search.
func FindJointMapping(algo *uda.Algorithm, arrayDims int, opts *SpaceOptions) (*JointResult, error) {
	return FindJointMappingContext(context.Background(), algo, arrayDims, opts)
}

// FindJointMappingContext is FindJointMapping with cancellation: the
// outer candidate loop checks ctx before every claim and each inner Π
// search polls it between objective levels and every few hundred
// candidates, so a cancelled request stops burning workers promptly.
// When the context ends before the search completes, the context's
// error is returned (never ErrNoSchedule — an interrupted search proves
// nothing about feasibility). The first real (non-ErrNoSchedule) inner
// error also cancels the remaining candidates instead of letting the
// workers drain the whole list.
func FindJointMappingContext(ctx context.Context, algo *uda.Algorithm, arrayDims int, opts *SpaceOptions) (*JointResult, error) {
	if opts == nil {
		opts = &SpaceOptions{}
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	if arrayDims < 1 || arrayDims >= algo.Dim() {
		return nil, fmt.Errorf("schedule: array dimensionality %d out of range [1, n-1]", arrayDims)
	}
	ctx, span := trace.Start(ctx, "joint-search")
	defer span.End()
	span.SetInt("dims", int64(arrayDims))
	startAt := time.Now()
	stats := &statsCollector{}
	_, collectSpan := trace.Start(ctx, "collect")
	cands, err := collectSpaceMappings(algo.Dim(), arrayDims, maxEntryOrDefault(opts))
	if err != nil {
		collectSpan.End()
		return nil, err
	}
	symPruned := make([]bool, len(cands))
	if !opts.NoPrune {
		symPruned = symmetryPruned(cands, axisAutomorphisms(algo, nil))
	}
	collectSpan.SetInt("candidates", int64(len(cands)))
	collectSpan.End()
	stats.spaceCandidates.Add(int64(len(cands)))
	weight := wireWeightOrDefault(opts)
	baseMaxCost := opts.Schedule.MaxCost
	if baseMaxCost == 0 {
		baseMaxCost = defaultMaxCost(algo.Set)
	}
	// tFloor is a lower bound on the total time of *any* candidate: the
	// cheapest Π satisfying ΠD > 0 alone (ignoring conflicts). Once the
	// incumbent reaches it, time cannot improve further, so candidates
	// whose cost lower bound loses the tie-break skip their inner
	// search entirely.
	tFloor := int64(-1)
	if !opts.NoPrune {
		if c := minValidCost(algo, baseMaxCost); c > 0 {
			tFloor = 1 + c
		}
	}
	inc := newIncumbent()
	results := make([]*JointResult, len(cands))
	errs := make([]error, len(cands))
	var prunedCount atomic.Int64
	// searchCtx lets the first real inner error cancel every other
	// worker: the claim loop stops handing out candidates and running
	// inner searches return searchCtx's error instead of finishing.
	searchCtx, cancelSearch := context.WithCancel(ctx)
	defer cancelSearch()
	collectDur := time.Since(startAt)
	searchAt := time.Now()
	forEachCandidate(searchCtx, len(cands), opts.Schedule.Workers, func(wctx context.Context, i int) {
		s := cands[i]
		if symPruned[i] {
			prunedCount.Add(1)
			stats.prunedOrbit.Add(1)
			return
		}
		wire := wireLength(s, algo.D)
		costLB := processorLowerBound(s, algo.Set.Upper) + weight*wire
		if !opts.NoPrune && tFloor > 0 {
			if iT, iC := inc.snapshot(); iT <= tFloor && costLB > iC {
				prunedCount.Add(1)
				stats.prunedLowerBound.Add(1)
				return
			}
		}
		analyzer, err := conflict.NewSpaceAnalyzer(s, algo.Set)
		if err != nil {
			errs[i] = err
			cancelSearch()
			return
		}
		schedOpts := opts.Schedule
		// The outer loop owns the parallelism; a sequential inner
		// search also keeps the winner's Candidates count independent
		// of worker scheduling.
		schedOpts.Workers = 0
		// Self-checking every inner winner would certify hundreds of
		// losing candidates; only the final joint winner is certified
		// (below, after selection).
		schedOpts.SelfCheck = false
		// Bound the inner search by the incumbent: anything strictly
		// above the incumbent's time cannot win on the primary
		// criterion, but ties must stay reachable for the cost
		// tie-break — hence MaxCost = time − 1 (time = 1 + cost).
		bound := baseMaxCost
		if iT := inc.time(); iT != math.MaxInt64 && iT-1 < bound {
			bound = iT - 1
		}
		if bound < 1 {
			stats.prunedIncumbent.Add(1)
			return
		}
		schedOpts.MaxCost = bound
		stats.innerSearches.Add(1)
		res, err := findOptimalWith(wctx, algo, s, &schedOpts, analyzer, stats)
		if err != nil {
			if errors.Is(err, ErrNoSchedule) {
				return // bounded out or genuinely unschedulable: skip
			}
			errs[i] = err
			cancelSearch() // first real error: stop the other workers now
			return
		}
		iT, iC := inc.snapshot()
		if res.Time > iT {
			stats.prunedIncumbent.Add(1)
			return // incumbent improved since the bound was read
		}
		if !opts.NoPrune && res.Time == iT && costLB > iC {
			stats.prunedIncumbent.Add(1)
			return // can only tie on time and already loses on cost
		}
		procs := countProcessorImages(s, algo.Set)
		cost := procs + weight*wire
		results[i] = &JointResult{
			SpaceResult: SpaceResult{
				Mapping:    res.Mapping,
				Processors: procs,
				WireLength: wire,
				Cost:       cost,
				Time:       res.Time,
			},
			ScheduleResult: res,
		}
		inc.offer(res.Time, cost)
	})
	// A real inner error wins over context errors: once cancelSearch
	// fires, the still-running workers report searchCtx's cancellation,
	// which must not mask the root cause.
	for _, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			continue
		}
		return nil, fmt.Errorf("schedule: joint search: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("schedule: joint search: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("schedule: joint search: %w", err)
		}
	}
	var best *JointResult
	for _, r := range results {
		if r == nil {
			continue
		}
		if best == nil || jointLess(r, best) {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no conflict-free joint mapping with |entries| ≤ %d",
			ErrNoSchedule, maxEntryOrDefault(opts))
	}
	best.Candidates = len(cands)
	best.Pruned = int(prunedCount.Load())
	if opts.Schedule.SelfCheck {
		if err := runSelfCheck(best.Mapping); err != nil {
			return nil, err
		}
	}
	best.Stats = stats.snapshot("joint-6.2", effectiveWorkers(opts.Schedule.Workers, len(cands)),
		collectDur, time.Since(searchAt), time.Since(startAt))
	best.ScheduleResult.Stats = best.Stats
	best.Stats.annotateSpan(span)
	best.Trace = trace.SummaryFromContext(ctx)
	best.ScheduleResult.Trace = best.Trace
	return best, nil
}

// jointLess is the pinned total tie-break order of the joint search:
// time, then Problem 6.1 array cost, then processor count, then the
// lexicographic Π key, then the lexicographic S rows. Every key is a
// property of the mapping itself — never a discovery index — so the
// winner is a pure function of the problem, locked by the
// Workers=1-vs-8 determinism test.
func jointLess(a, b *JointResult) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.Processors != b.Processors {
		return a.Processors < b.Processors
	}
	if vecLess(a.Mapping.Pi, b.Mapping.Pi) {
		return true
	}
	if vecLess(b.Mapping.Pi, a.Mapping.Pi) {
		return false
	}
	return rowsLess(matrixRowVecs(a.Mapping.S), matrixRowVecs(b.Mapping.S))
}

func maxEntryOrDefault(opts *SpaceOptions) int64 {
	if opts.MaxEntry > 0 {
		return opts.MaxEntry
	}
	return 1
}

func wireWeightOrDefault(opts *SpaceOptions) int64 {
	if opts.WireWeight > 0 {
		return opts.WireWeight
	}
	return 1
}

// incumbent is the shared (time, cost) bound of the joint search,
// lexicographically tightened as candidates complete. The time is
// mirrored in an atomic so the hot bound-read needs no lock; the pair
// is read and written under the mutex.
type incumbent struct {
	mu sync.Mutex
	t  atomic.Int64
	c  int64
}

func newIncumbent() *incumbent {
	inc := &incumbent{c: math.MaxInt64}
	inc.t.Store(math.MaxInt64)
	return inc
}

func (inc *incumbent) time() int64 { return inc.t.Load() }

func (inc *incumbent) snapshot() (int64, int64) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.t.Load(), inc.c
}

func (inc *incumbent) offer(t, c int64) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	cur := inc.t.Load()
	if t < cur || (t == cur && c < inc.c) {
		inc.t.Store(t)
		inc.c = c
	}
}

// forEachCandidate runs fn(ctx, i) for i in [0, count) on up to
// workers goroutines (sequentially when workers ≤ 1). fn must confine
// writes to slots it owns. A done context stops the loop before the
// next claim; candidates already handed out finish their fn call
// (which observes the same context itself when it is expensive).
//
// Each parallel worker runs under its own "worker" trace span carrying
// the count of candidates it claimed — the batching level the tracing
// layer attributes candidate work to (fn receives the worker's span
// context, so inner searches nest under it). The sequential path adds
// no span: its work already nests under the caller's phase span.
func forEachCandidate(ctx context.Context, count, workers int, fn func(ctx context.Context, i int)) {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(ctx, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx, span := trace.Start(ctx, "worker")
			span.SetInt("worker", int64(w))
			claimed := int64(0)
			defer func() {
				span.SetInt("claimed", claimed)
				span.End()
			}()
			for {
				if wctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= count {
					return
				}
				claimed++
				fn(wctx, i)
			}
		}(w)
	}
	wg.Wait()
}

// minValidCost returns the smallest objective Σ|π_i|·μ_i of any Π with
// ΠD > 0, ignoring conflict-freeness — so 1 + minValidCost lower-bounds
// the total time of every candidate's optimal schedule. Returns −1 when
// no valid Π exists within maxCost.
func minValidCost(algo *uda.Algorithm, maxCost int64) int64 {
	cols := make([]intmat.Vector, algo.NumDeps())
	for i := range cols {
		cols[i] = algo.D.Col(i)
	}
	for cost := int64(1); cost <= maxCost; cost++ {
		found := false
		enumerate(algo.Set.Upper, cost, func(pi intmat.Vector) bool {
			for _, d := range cols {
				if pi.Dot(d) <= 0 {
					return true
				}
			}
			found = true
			return false
		})
		if found {
			return cost
		}
	}
	return -1
}

// evaluateSpaceMapping checks validity and conflict-freeness of [S; Π]
// and computes the Problem 6.1 metrics.
func evaluateSpaceMapping(algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector, opts *SpaceOptions) (*SpaceResult, bool) {
	analyzer, err := conflict.NewSpaceAnalyzer(s, algo.Set)
	if err != nil {
		return nil, false
	}
	return evaluateSpaceMappingWith(algo, s, pi, opts, analyzer)
}

// evaluateSpaceMappingWith is evaluateSpaceMapping on a pre-built
// analyzer for S. The analyzer's Decide subsumes the rank(T) = k test
// (ErrRank when Π lies in the row space of S).
func evaluateSpaceMappingWith(algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector, opts *SpaceOptions, analyzer *conflict.SpaceAnalyzer) (*SpaceResult, bool) {
	res, err := analyzer.Decide(pi)
	if err != nil || !res.ConflictFree {
		return nil, false
	}
	m := &Mapping{Algo: algo, S: s.Clone(), Pi: pi.Clone(), T: s.AppendRow(pi)}
	if opts.Schedule.Machine != nil {
		if _, err := opts.Schedule.Machine.Decompose(s, algo.D, pi); err != nil {
			return nil, false
		}
	}
	procs := countProcessorImages(s, algo.Set)
	wire := wireLength(s, algo.D)
	weight := wireWeightOrDefault(opts)
	return &SpaceResult{
		Mapping:    m,
		Processors: procs,
		WireLength: wire,
		Cost:       procs + weight*wire,
		Time:       TotalTime(pi, algo.Set),
	}, true
}

// countProcessors returns |S(J)| exactly.
func countProcessors(m *Mapping) int64 {
	return countProcessorImages(m.S, m.Algo.Set)
}

// countProcessorImages returns |S(J)| exactly: closed-form via the
// 1-D image DP for linear arrays, enumeration with compact map keys
// otherwise.
func countProcessorImages(s *intmat.Matrix, set uda.IndexSet) int64 {
	rows := make([]intmat.Vector, s.Rows())
	for r := range rows {
		rows[r] = s.Row(r)
	}
	if len(rows) == 0 {
		return 1
	}
	if len(rows) == 1 {
		if n := rowImageSize(rows[0], set.Upper); n >= 0 {
			return n
		}
	}
	seen := intmat.NewVecMap[struct{}](1024)
	img := make(intmat.Vector, len(rows))
	set.Each(func(j intmat.Vector) bool {
		for r, row := range rows {
			img[r] = row.Dot(j)
		}
		seen.Store(intmat.KeyFor(img), struct{}{})
		return true
	})
	return int64(seen.Len())
}

// rowImageSize returns |{Σ_i c_i·j_i : 0 ≤ j_i ≤ μ_i}| for one row c —
// the exact processor count of a 1-row space mapping — without touching
// the (product-sized) index set. Reflecting axis i (j_i → μ_i − j_i)
// shows the image size only depends on |c_i|, so the reachable sums are
// a subset of [0, Σ|c_i|μ_i] computed by a bounded-knapsack DP over
// that range: aux chains how many steps of one axis were taken since an
// already-reachable sum. Returns −1 when the range is too wide to
// tabulate (callers fall back to enumeration or a weaker bound).
func rowImageSize(row intmat.Vector, upper intmat.Vector) int64 {
	const maxWidth = 1 << 22
	var hi int64
	for i, c := range row {
		if c < 0 {
			c = -c
		}
		if c > 0 && upper[i] > maxWidth/c {
			return -1
		}
		hi += c * upper[i]
		if hi >= maxWidth {
			return -1
		}
	}
	if hi == 0 {
		return 1
	}
	width := int(hi) + 1
	reach := make([]bool, width)
	aux := make([]int64, width)
	reach[0] = true
	for i, c := range row {
		if c < 0 {
			c = -c
		}
		if c == 0 || upper[i] == 0 {
			continue
		}
		step, cnt := int(c), upper[i]
		for x := 0; x < width; x++ {
			if reach[x] {
				aux[x] = 0
				continue
			}
			a := int64(math.MaxInt64)
			if x >= step && aux[x-step] != math.MaxInt64 {
				a = aux[x-step] + 1
			}
			aux[x] = a
			if a <= cnt {
				reach[x] = true
			}
		}
	}
	var count int64
	for _, r := range reach {
		if r {
			count++
		}
	}
	return count
}

// processorLowerBound returns a lower bound on |S(J)|: each row of S,
// alone, already distinguishes rowImageSize many processor images, so
// the maximum over rows bounds the count from below. Exact for 1-row S.
func processorLowerBound(s *intmat.Matrix, upper intmat.Vector) int64 {
	lb := int64(1)
	for r := 0; r < s.Rows(); r++ {
		row := s.Row(r)
		n := rowImageSize(row, upper)
		if n < 0 {
			// Range too wide to tabulate: along any axis with a
			// non-zero coefficient the row takes μ_i + 1 distinct
			// values with the other coordinates fixed.
			for i, c := range row {
				if c != 0 && upper[i]+1 > n {
					n = upper[i] + 1
				}
			}
		}
		if n > lb {
			lb = n
		}
	}
	return lb
}

// wireLength returns Σ_i ‖S·d̄_i‖₁.
func wireLength(s *intmat.Matrix, d *intmat.Matrix) int64 {
	sd := s.Mul(d)
	var total int64
	for i := 0; i < sd.Cols(); i++ {
		total += sd.Col(i).AbsSum()
	}
	return total
}

// axisAutomorphisms returns the non-identity coordinate permutations σ
// (encoded as p with (σv)_i = v_{p[i]}) under which the algorithm is
// invariant: μ_{p[i]} = μ_i for all i and the multiset of dependence
// columns of D maps onto itself. When pi is non-nil (Problem 6.1's
// fixed schedule) Π must additionally be invariant. Applying such a σ
// to a space mapping relabels the index space by an isomorphism, so
// every mapping in the resulting orbit shares its time, processor
// count, wire length — and hence its search metrics — exactly.
func axisAutomorphisms(algo *uda.Algorithm, pi intmat.Vector) [][]int {
	n := algo.Dim()
	mu := algo.Set.Upper
	cols := make([]intmat.Vector, algo.NumDeps())
	colCount := make(map[string]int, len(cols))
	for i := range cols {
		cols[i] = algo.D.Col(i)
		colCount[cols[i].String()]++
	}
	var perms [][]int
	p := make([]int, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			identity := true
			for j, v := range p {
				if v != j {
					identity = false
					break
				}
			}
			if identity {
				return
			}
			cnt := make(map[string]int, len(colCount))
			pc := make(intmat.Vector, n)
			for _, c := range cols {
				for j := 0; j < n; j++ {
					pc[j] = c[p[j]]
				}
				cnt[pc.String()]++
			}
			for k, v := range colCount {
				if cnt[k] != v {
					return
				}
			}
			perms = append(perms, append([]int(nil), p...))
			return
		}
		for v := 0; v < n; v++ {
			if used[v] || mu[v] != mu[i] {
				continue
			}
			if pi != nil && pi[v] != pi[i] {
				continue
			}
			used[v] = true
			p[i] = v
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return perms
}

// symmetryPruned marks every candidate that is not the
// lexicographically least member of its automorphism orbit. The
// enumeration emits candidates in lexicographic matrix order
// (canonical rows ascending), each orbit image is itself an enumerated
// candidate (permuting coordinates of canonical rows and
// re-canonicalizing stays within the row set, preserves rank and
// distinctness), and orbit members share all search metrics — so
// keeping only the least member preserves the (metric, enumeration
// index) winner exactly.
func symmetryPruned(cands []*intmat.Matrix, perms [][]int) []bool {
	pruned := make([]bool, len(cands))
	if len(perms) == 0 {
		return pruned
	}
	for ci, s := range cands {
		rows := make([]intmat.Vector, s.Rows())
		for r := range rows {
			rows[r] = s.Row(r)
		}
		for _, p := range perms {
			img := make([]intmat.Vector, len(rows))
			for r, row := range rows {
				pr := make(intmat.Vector, len(row))
				for j := range pr {
					pr[j] = row[p[j]]
				}
				if fz := pr.FirstNonZero(); fz >= 0 && pr[fz] < 0 {
					for j := range pr {
						pr[j] = -pr[j]
					}
				}
				img[r] = pr
			}
			sort.Slice(img, func(a, b int) bool { return vecLess(img[a], img[b]) })
			if rowsLess(img, rows) {
				pruned[ci] = true
				break
			}
		}
	}
	return pruned
}

// vecLess is lexicographic order on equal-length vectors.
func vecLess(a, b intmat.Vector) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// rowsLess is lexicographic order on equal-shape row lists.
func rowsLess(a, b []intmat.Vector) bool {
	for r := range a {
		if vecLess(a[r], b[r]) {
			return true
		}
		if vecLess(b[r], a[r]) {
			return false
		}
	}
	return false
}

// collectSpaceMappings materializes the canonical candidate list in
// enumeration (lexicographic) order, so the parallel search can index
// candidates stably.
func collectSpaceMappings(n, rows int, maxEntry int64) ([]*intmat.Matrix, error) {
	var out []*intmat.Matrix
	err := enumerateSpaceMappings(n, rows, maxEntry, func(s *intmat.Matrix) bool {
		out = append(out, s.Clone())
		return true
	})
	return out, err
}

// enumerateSpaceMappings visits every (rows×n) integer matrix with
// entries in [−maxEntry, maxEntry], full row rank, and rows in
// canonical orientation and order: each row's first non-zero entry is
// positive (negating a row merely relabels array coordinates) and rows
// appear in a fixed generation order without repetition (reordering
// rows merely relabels axes), so each geometric array is visited once.
// The visitor returns false to stop early.
func enumerateSpaceMappings(n, rows int, maxEntry int64, visit func(*intmat.Matrix) bool) error {
	if rows < 1 {
		return fmt.Errorf("schedule: need at least one space row")
	}
	// Generate canonical rows once.
	var rowSet []intmat.Vector
	var gen func(i int, v intmat.Vector)
	gen = func(i int, v intmat.Vector) {
		if i == n {
			if fz := v.FirstNonZero(); fz >= 0 && v[fz] > 0 {
				rowSet = append(rowSet, v.Clone())
			}
			return
		}
		for e := -maxEntry; e <= maxEntry; e++ {
			v[i] = e
			gen(i+1, v)
		}
		v[i] = 0
	}
	gen(0, make(intmat.Vector, n))

	s := intmat.New(rows, n)
	var rec func(r, start int) bool
	rec = func(r, start int) bool {
		if r == rows {
			if s.Rank() != rows {
				return true
			}
			return visit(s)
		}
		for c := start; c < len(rowSet); c++ {
			s.SetRow(r, rowSet[c])
			if !rec(r+1, c+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
	return nil
}
