package schedule

import (
	"fmt"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// This file implements the two optimization problems the paper's
// Section 6 poses as future work:
//
//   - Problem 6.1 (space-optimal, conflict-free mapping): given a
//     linear schedule Π, find a space mapping S such that T = [S; Π] is
//     conflict-free and "the number of processors plus the wire length
//     of the array is minimized".
//   - Problem 6.2 (optimal conflict-free mapping): neither S nor Π is
//     given; find a conflict-free T optimizing a joint criterion (here:
//     total execution time first, then array cost).
//
// Both are solved by exhaustive search over small-coefficient space
// mappings — the paper gives no algorithm, and the space of practically
// used mappings has entries in {−1, 0, 1} (every S in the paper and its
// references does), so bounded exhaustive search is both exact for that
// class and fast. Candidates equivalent up to row reordering and row
// negation (which relabel the array without changing its geometry) are
// enumerated once.

// SpaceOptions configures FindSpaceMapping and FindJointMapping.
type SpaceOptions struct {
	// MaxEntry bounds |s_ij| in the search (default 1).
	MaxEntry int64
	// WireWeight scales the wire-length term of the cost (default 1).
	WireWeight int64
	// Schedule options applied to the inner Π search (joint problem
	// only); the Machine option also applies to Problem 6.1.
	Schedule Options
}

// SpaceResult is the outcome of a space-mapping search.
type SpaceResult struct {
	Mapping *Mapping
	// Processors is |S(J)|, the exact number of array cells used.
	Processors int64
	// WireLength is Σ_i ‖S·d̄_i‖₁, the total transfer distance per use.
	WireLength int64
	// Cost = Processors + WireWeight·WireLength, the Problem 6.1
	// objective.
	Cost int64
	// Candidates counts space mappings examined.
	Candidates int
	// Time is the total execution time (joint problem: of the winning
	// schedule; Problem 6.1: of the given Π).
	Time int64
}

func (r *SpaceResult) String() string {
	return fmt.Sprintf("S =\n%v\nΠ = %v: %d processors, wire %d, t = %d",
		r.Mapping.S, r.Mapping.Pi, r.Processors, r.WireLength, r.Time)
}

// FindSpaceMapping solves Problem 6.1 by exhaustive search over
// (k−1)×n space mappings with entries bounded by MaxEntry: among all S
// making T = [S; Π] a valid conflict-free mapping (full rank; machine
// realizability when configured), it returns the one minimizing
// |S(J)| + WireWeight·Σ‖S·d̄_i‖₁, breaking ties lexicographically.
func FindSpaceMapping(algo *uda.Algorithm, pi intmat.Vector, arrayDims int, opts *SpaceOptions) (*SpaceResult, error) {
	if opts == nil {
		opts = &SpaceOptions{}
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	if len(pi) != algo.Dim() {
		return nil, fmt.Errorf("schedule: Π has %d entries, algorithm dimension is %d", len(pi), algo.Dim())
	}
	if !Valid(pi, algo.D) {
		return nil, fmt.Errorf("schedule: ΠD > 0 violated for Π = %v", pi)
	}
	if arrayDims < 1 || arrayDims >= algo.Dim() {
		return nil, fmt.Errorf("schedule: array dimensionality %d out of range [1, n-1]", arrayDims)
	}
	var best *SpaceResult
	candidates := 0
	err := enumerateSpaceMappings(algo.Dim(), arrayDims, maxEntryOrDefault(opts), func(s *intmat.Matrix) bool {
		candidates++
		r, ok := evaluateSpaceMapping(algo, s, pi, opts)
		if ok && (best == nil || r.Cost < best.Cost) {
			best = r
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no conflict-free space mapping with |entries| ≤ %d for Π = %v",
			ErrNoSchedule, maxEntryOrDefault(opts), pi)
	}
	best.Candidates = candidates
	return best, nil
}

// JointResult is the outcome of the joint Problem 6.2 search.
type JointResult struct {
	SpaceResult
	// ScheduleResult carries the inner optimizer's certificate.
	ScheduleResult *Result
}

// FindJointMapping solves Problem 6.2: over all space mappings S with
// bounded entries, run the time-optimal schedule search and keep the
// mapping with the smallest total execution time, breaking ties by the
// Problem 6.1 array cost. The returned mapping is exact within the
// entry bound; entries beyond {−1, 0, 1} are rarely useful for space
// mappings but can be enabled through MaxEntry.
func FindJointMapping(algo *uda.Algorithm, arrayDims int, opts *SpaceOptions) (*JointResult, error) {
	if opts == nil {
		opts = &SpaceOptions{}
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	if arrayDims < 1 || arrayDims >= algo.Dim() {
		return nil, fmt.Errorf("schedule: array dimensionality %d out of range [1, n-1]", arrayDims)
	}
	var best *JointResult
	candidates := 0
	err := enumerateSpaceMappings(algo.Dim(), arrayDims, maxEntryOrDefault(opts), func(s *intmat.Matrix) bool {
		candidates++
		schedOpts := opts.Schedule
		if best != nil {
			// Bound the inner search: anything at or above the
			// incumbent's time cannot win on the primary criterion,
			// except to tie-break — so allow equality.
			schedOpts.MaxCost = best.Time - 1
		}
		res, err := FindOptimal(algo, s, &schedOpts)
		if err != nil {
			return true // no schedule for this S within bounds; skip
		}
		r, ok := evaluateSpaceMapping(algo, s, res.Mapping.Pi, opts)
		if !ok {
			return true
		}
		jr := &JointResult{SpaceResult: *r, ScheduleResult: res}
		if best == nil || res.Time < best.Time || (res.Time == best.Time && r.Cost < best.Cost) {
			best = jr
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no conflict-free joint mapping with |entries| ≤ %d",
			ErrNoSchedule, maxEntryOrDefault(opts))
	}
	best.Candidates = candidates
	return best, nil
}

func maxEntryOrDefault(opts *SpaceOptions) int64 {
	if opts.MaxEntry > 0 {
		return opts.MaxEntry
	}
	return 1
}

// evaluateSpaceMapping checks validity and conflict-freeness of [S; Π]
// and computes the Problem 6.1 metrics.
func evaluateSpaceMapping(algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector, opts *SpaceOptions) (*SpaceResult, bool) {
	t := s.AppendRow(pi)
	if t.Rank() != t.Rows() {
		return nil, false
	}
	res, err := conflict.Decide(t, algo.Set)
	if err != nil || !res.ConflictFree {
		return nil, false
	}
	m := &Mapping{Algo: algo, S: s.Clone(), Pi: pi.Clone(), T: t}
	if opts.Schedule.Machine != nil {
		if _, err := opts.Schedule.Machine.Decompose(s, algo.D, pi); err != nil {
			return nil, false
		}
	}
	procs := countProcessors(m)
	wire := wireLength(s, algo.D)
	weight := opts.WireWeight
	if weight == 0 {
		weight = 1
	}
	return &SpaceResult{
		Mapping:    m,
		Processors: procs,
		WireLength: wire,
		Cost:       procs + weight*wire,
		Time:       TotalTime(pi, algo.Set),
	}, true
}

// countProcessors returns |S(J)| exactly by enumerating the index set.
func countProcessors(m *Mapping) int64 {
	seen := make(map[string]struct{})
	m.Algo.Set.Each(func(j intmat.Vector) bool {
		seen[m.Processor(j).String()] = struct{}{}
		return true
	})
	return int64(len(seen))
}

// wireLength returns Σ_i ‖S·d̄_i‖₁.
func wireLength(s *intmat.Matrix, d *intmat.Matrix) int64 {
	sd := s.Mul(d)
	var total int64
	for i := 0; i < sd.Cols(); i++ {
		total += sd.Col(i).AbsSum()
	}
	return total
}

// enumerateSpaceMappings visits every (rows×n) integer matrix with
// entries in [−maxEntry, maxEntry], full row rank, and rows in
// canonical orientation and order: each row's first non-zero entry is
// positive (negating a row merely relabels array coordinates) and rows
// appear in a fixed generation order without repetition (reordering
// rows merely relabels axes), so each geometric array is visited once.
// The visitor returns false to stop early.
func enumerateSpaceMappings(n, rows int, maxEntry int64, visit func(*intmat.Matrix) bool) error {
	if rows < 1 {
		return fmt.Errorf("schedule: need at least one space row")
	}
	// Generate canonical rows once.
	var rowSet []intmat.Vector
	var gen func(i int, v intmat.Vector)
	gen = func(i int, v intmat.Vector) {
		if i == n {
			if fz := v.FirstNonZero(); fz >= 0 && v[fz] > 0 {
				rowSet = append(rowSet, v.Clone())
			}
			return
		}
		for e := -maxEntry; e <= maxEntry; e++ {
			v[i] = e
			gen(i+1, v)
		}
		v[i] = 0
	}
	gen(0, make(intmat.Vector, n))

	s := intmat.New(rows, n)
	var rec func(r, start int) bool
	rec = func(r, start int) bool {
		if r == rows {
			if s.Rank() != rows {
				return true
			}
			return visit(s)
		}
		for c := start; c < len(rowSet); c++ {
			s.SetRow(r, rowSet[c])
			if !rec(r+1, c+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
	return nil
}
