package schedule

import (
	"errors"
	"fmt"
	"sync"
)

// The self-check hook decouples this package from the verification
// engine: internal/verify must import schedule (it certifies Mappings
// and replays them through internal/systolic), so schedule cannot
// import verify back. Instead verify registers itself here from its
// init, and Options.SelfCheck dispatches through the registered
// function.
var (
	selfCheckMu sync.RWMutex
	selfChecker func(*Mapping) error
)

// ErrNoSelfChecker reports that Options.SelfCheck was requested but no
// verification engine registered itself. Import lodim/mapping or
// lodim/internal/verify (even blank) to install one.
var ErrNoSelfChecker = errors.New("schedule: SelfCheck requested but no verifier is registered (import lodim/internal/verify)")

// RegisterSelfChecker installs the certification function used by
// Options.SelfCheck. It is called from internal/verify's init; the
// last registration wins.
func RegisterSelfChecker(f func(*Mapping) error) {
	selfCheckMu.Lock()
	defer selfCheckMu.Unlock()
	selfChecker = f
}

// runSelfCheck certifies m through the registered checker.
func runSelfCheck(m *Mapping) error {
	selfCheckMu.RLock()
	f := selfChecker
	selfCheckMu.RUnlock()
	if f == nil {
		return ErrNoSelfChecker
	}
	if err := f(m); err != nil {
		return fmt.Errorf("schedule: self-check rejected the winning mapping: %w", err)
	}
	return nil
}
