package schedule

import (
	"context"
	"errors"
	"testing"
	"time"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

func TestFindOptimalContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	_, err := FindOptimalContext(ctx, algo, s, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrNoSchedule) {
		t.Fatal("cancelled search must not report ErrNoSchedule")
	}
}

func TestFindOptimalContextBackgroundMatchesPlain(t *testing.T) {
	algo := uda.MatMul(4)
	s := intmat.FromRows([]int64{1, 1, -1})
	want, err := FindOptimal(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FindOptimalContext(context.Background(), algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || !got.Mapping.Pi.Equal(want.Mapping.Pi) || got.Candidates != want.Candidates {
		t.Fatalf("context search diverged: got %v, want %v", got, want)
	}
}

func TestFindJointMappingContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FindJointMappingContext(ctx, uda.MatMul(4), 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFindJointMappingContextDeadline(t *testing.T) {
	// A deliberately large instance: the full joint search takes far
	// longer than the deadline, so the search must be interrupted and
	// report DeadlineExceeded promptly.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		start := time.Now()
		_, err := FindJointMappingContext(ctx, uda.TransitiveClosure(30), 1,
			&SpaceOptions{Schedule: Options{Workers: workers}})
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want context.DeadlineExceeded", workers, err)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("workers=%d: cancellation took %v, want prompt return", workers, elapsed)
		}
	}
}

func TestFindJointMappingContextBackgroundMatchesPlain(t *testing.T) {
	algo := uda.TransitiveClosure(4)
	want, err := FindJointMapping(algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FindJointMappingContext(context.Background(), algo, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || got.Cost != want.Cost ||
		!got.Mapping.Pi.Equal(want.Mapping.Pi) || !got.Mapping.S.Equal(want.Mapping.S) {
		t.Fatalf("context search diverged: got %v, want %v", got, want)
	}
}

func TestFindSpaceMappingContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FindSpaceMappingContext(ctx, uda.MatMul(4), intmat.Vec(1, 4, 1), 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
