package schedule

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/trace"
	"lodim/internal/uda"
)

// This file generalizes the single-objective Problem 6.2 search into a
// multi-objective search over four array-cost axes, maintaining a
// deterministic Pareto archive instead of a scalar incumbent. The
// paper optimizes total time alone; the archive records every
// non-dominated trade-off between time and the array resources the
// Section 6 problems care about, so a caller can pick by lexicographic
// priority or a weighted scalarization *after* the (single) search.
//
// Determinism contract: the front — membership, representatives, and
// order — is a pure function of the problem, independent of
// Schedule.Workers. Workers only write per-candidate record slots they
// own; the only cross-worker state is a monotonically decreasing
// atomic bound on the best feasible time, and any stale (too loose)
// read of it merely produces extra records that the final sequential
// pass filters out again. Ties between members with equal objective
// vectors keep the member least under the pinned total order below.

// Objective indexes one axis of an ObjectiveVector.
type Objective int

const (
	// ObjTime is the total execution time 1 + Σ|π_i|·μ_i.
	ObjTime Objective = iota
	// ObjProcessors is |S(J)|, the number of array cells used.
	ObjProcessors
	// ObjBuffers is Σ_i (Π·d̄_i − 1): dependence i is alive for Π·d̄_i
	// time steps, so every unit above one buffers a value in flight.
	ObjBuffers
	// ObjLinks is the number of distinct non-zero columns of S·D — the
	// physical link classes the array must wire between cells.
	ObjLinks
	// NumObjectives is the number of axes.
	NumObjectives
)

var objectiveNames = [NumObjectives]string{"time", "processors", "buffers", "links"}

func (o Objective) String() string {
	if o >= 0 && o < NumObjectives {
		return objectiveNames[o]
	}
	return fmt.Sprintf("objective(%d)", int(o))
}

// ParseObjective resolves an axis name ("time", "processors",
// "buffers", "links") to its Objective index.
func ParseObjective(name string) (Objective, error) {
	for i, n := range objectiveNames {
		if n == name {
			return Objective(i), nil
		}
	}
	return 0, fmt.Errorf("schedule: unknown objective %q (want time|processors|buffers|links)", name)
}

// ObjectiveVector is one point in objective space, indexed by
// Objective. Smaller is better on every axis.
type ObjectiveVector [NumObjectives]int64

func (v ObjectiveVector) String() string {
	return fmt.Sprintf("(t=%d, p=%d, b=%d, l=%d)", v[ObjTime], v[ObjProcessors], v[ObjBuffers], v[ObjLinks])
}

// Dominates reports whether a is at least as good as b on every axis
// and strictly better on at least one (the strict Pareto order; equal
// vectors do not dominate each other).
func Dominates(a, b ObjectiveVector) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// ParetoMember is one front element: a full mapping plus its
// objective vector.
type ParetoMember struct {
	Mapping *Mapping
	Vector  ObjectiveVector
}

// memberLess is the pinned total tie-order of the archive: objective
// vector lexicographically (time, processors, buffers, links), then
// the Π key, then the S rows — all semantic keys, so the order is
// independent of enumeration indices and worker scheduling.
func memberLess(a, b *ParetoMember) bool {
	for i := range a.Vector {
		if a.Vector[i] != b.Vector[i] {
			return a.Vector[i] < b.Vector[i]
		}
	}
	if vecLess(a.Mapping.Pi, b.Mapping.Pi) {
		return true
	}
	if vecLess(b.Mapping.Pi, a.Mapping.Pi) {
		return false
	}
	return rowsLess(matrixRowVecs(a.Mapping.S), matrixRowVecs(b.Mapping.S))
}

func matrixRowVecs(m *intmat.Matrix) []intmat.Vector {
	rows := make([]intmat.Vector, m.Rows())
	for r := range rows {
		rows[r] = m.Row(r)
	}
	return rows
}

// Archive is a deterministic Pareto archive: it retains exactly the
// non-dominated objective vectors among everything inserted, with one
// representative per distinct vector — the least under memberLess.
// The final front is therefore independent of insertion order.
type Archive struct {
	members []ParetoMember
}

// Insert offers a member. It reports whether the member is retained
// (false: dominated by, or tied with and not less than, an existing
// member). Existing members dominated by m are evicted.
func (a *Archive) Insert(m ParetoMember) bool {
	for i := range a.members {
		if a.members[i].Vector == m.Vector {
			if memberLess(&m, &a.members[i]) {
				a.members[i] = m
				return true
			}
			return false
		}
		if Dominates(a.members[i].Vector, m.Vector) {
			return false
		}
	}
	kept := a.members[:0]
	for i := range a.members {
		if !Dominates(m.Vector, a.members[i].Vector) {
			kept = append(kept, a.members[i])
		}
	}
	a.members = append(kept, m)
	return true
}

// Len returns the current archive size.
func (a *Archive) Len() int { return len(a.members) }

// Front returns the archived members sorted by the pinned total
// order. The returned slice is freshly allocated.
func (a *Archive) Front() []ParetoMember {
	out := append([]ParetoMember(nil), a.members...)
	sort.Slice(out, func(i, j int) bool { return memberLess(&out[i], &out[j]) })
	return out
}

// ParetoMode selects how a single "best" member is picked from the
// front. The front itself is identical in every mode.
type ParetoMode int

const (
	// ModeFront returns the front with Best at its pinned-order head.
	ModeFront ParetoMode = iota
	// ModeLex picks the lexicographic minimum under LexOrder.
	ModeLex
	// ModeWeighted picks the minimum of Σ Weights[k]·Vector[k].
	ModeWeighted
)

// ParetoOptions configures FindPareto.
type ParetoOptions struct {
	// Space carries the single-objective search knobs that still
	// apply: MaxEntry, NoPrune, and Schedule (Workers, MaxCost,
	// Machine, RequireSingleHop). WireWeight is ignored — the link
	// axis replaces the scalarized wire term.
	Space SpaceOptions
	// TimeSlack widens the explored time window: schedules with total
	// time up to (optimal time + TimeSlack) enter the archive. 0 keeps
	// only time-optimal members, so the front trades processors,
	// buffers, and links at the paper's optimum time.
	TimeSlack int64
	// Mode selects the Best member (see ParetoMode).
	Mode ParetoMode
	// LexOrder is the axis priority for ModeLex; omitted axes follow
	// in canonical order (time, processors, buffers, links).
	LexOrder []Objective
	// Weights are the per-axis scalarization weights for ModeWeighted
	// (each ≥ 0, not all zero).
	Weights [NumObjectives]int64
}

// ParetoResult is the outcome of a multi-objective search.
type ParetoResult struct {
	// Front is the certified candidate set: all non-dominated
	// objective vectors with total time within the explored window,
	// in pinned order.
	Front []ParetoMember
	// Best indexes the front member selected by the requested mode.
	Best int
	// TimeBound is the inclusive total-time ceiling of the window
	// (optimal time + TimeSlack, clamped by MaxCost).
	TimeBound int64
	// Candidates / Pruned mirror the joint search counters.
	Candidates int
	Pruned     int
	Stats      *SearchStats
	Trace      *trace.Summary
}

// paretoRecord is a worker-local candidate for the archive.
type paretoRecord struct {
	mapping *Mapping
	vec     ObjectiveVector
}

// FindPareto runs the multi-objective joint search over space
// mappings S (entries bounded by MaxEntry) and schedules Π, returning
// the Pareto front over (time, processors, buffers, links).
func FindPareto(algo *uda.Algorithm, arrayDims int, opts *ParetoOptions) (*ParetoResult, error) {
	return FindParetoContext(context.Background(), algo, arrayDims, opts)
}

// FindParetoContext is FindPareto with cancellation. The front is
// identical at any Schedule.Workers count; see the determinism
// contract at the top of this file.
func FindParetoContext(ctx context.Context, algo *uda.Algorithm, arrayDims int, opts *ParetoOptions) (*ParetoResult, error) {
	if opts == nil {
		opts = &ParetoOptions{}
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	if arrayDims < 1 || arrayDims >= algo.Dim() {
		return nil, fmt.Errorf("schedule: array dimensionality %d out of range [1, n-1]", arrayDims)
	}
	if opts.TimeSlack < 0 {
		return nil, fmt.Errorf("schedule: negative TimeSlack %d", opts.TimeSlack)
	}
	if err := validateSelection(opts); err != nil {
		return nil, err
	}
	ctx, span := trace.Start(ctx, "pareto-search")
	defer span.End()
	span.SetInt("dims", int64(arrayDims))
	startAt := time.Now()
	stats := &statsCollector{}
	_, collectSpan := trace.Start(ctx, "collect")
	cands, err := collectSpaceMappings(algo.Dim(), arrayDims, maxEntryOrDefault(&opts.Space))
	if err != nil {
		collectSpan.End()
		return nil, err
	}
	symPruned := make([]bool, len(cands))
	if !opts.Space.NoPrune {
		// Orbit pruning is Pareto-exact: an axis automorphism maps
		// every feasible (S, Π) of a candidate to a feasible pair of
		// its orbit representative with the identical objective vector
		// (μ-invariance fixes time and buffers, the index-space
		// isomorphism fixes |S(J)|, and uniform row relabeling of S·D
		// preserves column distinctness, fixing links).
		symPruned = symmetryPruned(cands, axisAutomorphisms(algo, nil))
	}
	collectSpan.SetInt("candidates", int64(len(cands)))
	collectSpan.End()
	stats.spaceCandidates.Add(int64(len(cands)))
	baseMaxCost := opts.Space.Schedule.MaxCost
	if baseMaxCost == 0 {
		baseMaxCost = defaultMaxCost(algo.Set)
	}
	// No Π satisfies ΠD > 0 below this objective level, so every
	// candidate starts its level scan there; −1 proves infeasibility
	// outright.
	floor := minValidCost(algo, baseMaxCost)
	if floor < 0 {
		return nil, fmt.Errorf("%w: no Π with ΠD > 0 and Σ|π_i|·μ_i ≤ %d", ErrNoSchedule, baseMaxCost)
	}
	// cStar is the cost of the best feasible schedule found so far
	// (monotonically decreasing); cStar + TimeSlack bounds the level
	// scan. A stale read only loosens a worker's bound, producing
	// records beyond the final window that the sequential pass below
	// filters out — never missing ones inside it.
	var cStar atomic.Int64
	cStar.Store(math.MaxInt64)
	levelBound := func() int64 {
		bound := baseMaxCost
		if c := cStar.Load(); c != math.MaxInt64 && c+opts.TimeSlack < bound {
			bound = c + opts.TimeSlack
		}
		return bound
	}
	records := make([][]paretoRecord, len(cands))
	errs := make([]error, len(cands))
	var prunedCount atomic.Int64
	searchCtx, cancelSearch := context.WithCancel(ctx)
	defer cancelSearch()
	collectDur := time.Since(startAt)
	searchAt := time.Now()
	forEachCandidate(searchCtx, len(cands), opts.Space.Schedule.Workers, func(wctx context.Context, i int) {
		s := cands[i]
		if symPruned[i] {
			prunedCount.Add(1)
			stats.prunedOrbit.Add(1)
			return
		}
		analyzer, err := conflict.NewSpaceAnalyzer(s, algo.Set)
		if err != nil {
			errs[i] = err
			cancelSearch()
			return
		}
		schedOpts := opts.Space.Schedule
		schedOpts.Workers = 0
		schedOpts.SelfCheck = false
		schedOpts.MaxCost = baseMaxCost
		cctx := newCandCtx(algo, s, &schedOpts, analyzer)
		sc := conflict.GetScratch()
		defer func() {
			stats.drainScratch(sc)
			conflict.PutScratch(sc)
		}()
		procs := countProcessorImages(s, algo.Set)
		links := linkCount(s, algo.D)
		stats.innerSearches.Add(1)
		// Per-S staircase: time strictly increases with the level, and
		// processors/links are fixed by S, so a level's winner enters
		// the record list only when its buffer count strictly improves
		// on every lower level — anything else is dominated within S.
		bestBuf := int64(math.MaxInt64)
		for cost := floor; cost <= levelBound(); cost++ {
			if wctx.Err() != nil {
				return
			}
			stats.costLevels.Add(1)
			var lvlMapping *Mapping
			var lvlBuf int64
			tried := 0
			enumerate(algo.Set.Upper, cost, func(pi intmat.Vector) bool {
				tried++
				if tried&ctxCheckMask == 0 && wctx.Err() != nil {
					return false
				}
				r, ok := cctx.tryWith(pi, sc)
				if !ok {
					return true
				}
				// enumerate visits Π in lexicographic order, so a
				// strict < keeps the lex-least among equal-buffer
				// winners of the level.
				if b := bufferDepth(pi, cctx.depCols); lvlMapping == nil || b < lvlBuf {
					lvlMapping, lvlBuf = r.Mapping, b
				}
				return true
			})
			stats.scheduleCandidates.Add(int64(tried))
			if err := cctx.takeErr(); err != nil {
				errs[i] = err
				cancelSearch()
				return
			}
			if wctx.Err() != nil {
				return
			}
			if lvlMapping == nil {
				continue
			}
			offerMin(&cStar, cost)
			if lvlBuf < bestBuf {
				bestBuf = lvlBuf
				records[i] = append(records[i], paretoRecord{
					mapping: lvlMapping,
					vec: ObjectiveVector{
						ObjTime:       1 + cost,
						ObjProcessors: procs,
						ObjBuffers:    lvlBuf,
						ObjLinks:      links,
					},
				})
				if bestBuf == 0 {
					// Buffers cannot improve further and higher levels
					// only add time: no later record of this S can
					// survive the archive.
					return
				}
			}
		}
	})
	for _, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			continue
		}
		return nil, fmt.Errorf("schedule: pareto search: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("schedule: pareto search: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("schedule: pareto search: %w", err)
		}
	}
	cBest := cStar.Load()
	if cBest == math.MaxInt64 {
		return nil, fmt.Errorf("%w: no conflict-free joint mapping with |entries| ≤ %d",
			ErrNoSchedule, maxEntryOrDefault(&opts.Space))
	}
	finalBound := baseMaxCost
	if cBest+opts.TimeSlack < finalBound {
		finalBound = cBest + opts.TimeSlack
	}
	timeBound := 1 + finalBound
	// Sequential front build in candidate-index order. Discarding
	// beyond-window records here is exact: dominance requires ≤ on the
	// time axis, so a member outside the window can never dominate one
	// inside it.
	var arch Archive
	for _, recs := range records {
		for _, rec := range recs {
			if rec.vec[ObjTime] <= timeBound {
				arch.Insert(ParetoMember{Mapping: rec.mapping, Vector: rec.vec})
			}
		}
	}
	front := arch.Front()
	if len(front) == 0 {
		return nil, fmt.Errorf("%w: no conflict-free joint mapping with |entries| ≤ %d",
			ErrNoSchedule, maxEntryOrDefault(&opts.Space))
	}
	res := &ParetoResult{
		Front:      front,
		Best:       selectBest(front, opts),
		TimeBound:  timeBound,
		Candidates: len(cands),
		Pruned:     int(prunedCount.Load()),
	}
	if opts.Space.Schedule.SelfCheck {
		for i := range front {
			if err := runSelfCheck(front[i].Mapping); err != nil {
				return nil, err
			}
		}
	}
	res.Stats = stats.snapshot("pareto-front", effectiveWorkers(opts.Space.Schedule.Workers, len(cands)),
		collectDur, time.Since(searchAt), time.Since(startAt))
	res.Stats.annotateSpan(span)
	res.Trace = trace.SummaryFromContext(ctx)
	return res, nil
}

// bufferDepth is Σ_i (Π·d̄_i − 1) over the cached dependence columns.
// Every term is ≥ 0 for a valid Π (ΠD > 0 integral means Π·d̄_i ≥ 1).
func bufferDepth(pi intmat.Vector, depCols []intmat.Vector) int64 {
	var total int64
	for _, d := range depCols {
		total += pi.Dot(d) - 1
	}
	return total
}

// linkCount returns the number of distinct non-zero columns of S·D:
// dependences routed identically share a link class; a zero column is
// cell-local and needs no wire.
func linkCount(s *intmat.Matrix, d *intmat.Matrix) int64 {
	sd := s.Mul(d)
	seen := make(map[string]struct{}, sd.Cols())
	for i := 0; i < sd.Cols(); i++ {
		col := sd.Col(i)
		if col.FirstNonZero() < 0 {
			continue
		}
		seen[col.String()] = struct{}{}
	}
	return int64(len(seen))
}

// offerMin lowers v to x if x is smaller (atomic CAS loop).
func offerMin(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x >= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// ValidateSelection checks the mode-specific selection knobs (Mode,
// LexOrder, Weights) without running a search — the service layer uses
// it to reject a bad request before paying for anything.
func (o *ParetoOptions) ValidateSelection() error { return validateSelection(o) }

// SelectBest picks the front index the selection options choose. The
// front must be non-empty and in pinned order (as FindPareto returns
// it); selection reads only the objective vectors, so a caller holding
// a cached front can re-select under a different mode without
// re-searching.
func SelectBest(front []ParetoMember, opts *ParetoOptions) (int, error) {
	if opts == nil {
		opts = &ParetoOptions{}
	}
	if err := validateSelection(opts); err != nil {
		return 0, err
	}
	if len(front) == 0 {
		return 0, errors.New("schedule: cannot select from an empty front")
	}
	return selectBest(front, opts), nil
}

// validateSelection checks the mode-specific knobs up front so a bad
// request fails before the search runs.
func validateSelection(opts *ParetoOptions) error {
	switch opts.Mode {
	case ModeFront:
		return nil
	case ModeLex:
		seen := [NumObjectives]bool{}
		for _, o := range opts.LexOrder {
			if o < 0 || o >= NumObjectives {
				return fmt.Errorf("schedule: lex order references unknown objective %d", int(o))
			}
			if seen[o] {
				return fmt.Errorf("schedule: lex order repeats objective %v", o)
			}
			seen[o] = true
		}
		return nil
	case ModeWeighted:
		any := false
		for i, w := range opts.Weights {
			if w < 0 {
				return fmt.Errorf("schedule: negative weight %d for objective %v", w, Objective(i))
			}
			if w > 0 {
				any = true
			}
		}
		if !any {
			return errors.New("schedule: weighted mode needs at least one positive weight")
		}
		return nil
	default:
		return fmt.Errorf("schedule: unknown pareto mode %d", int(opts.Mode))
	}
}

// selectBest picks the front index for the requested mode. The lex
// and weighted optima are always on the front (a dominating vector
// would be lex-smaller / weigh no more), so selection never needs the
// discarded interior; ties fall back to the pinned front order, whose
// head is the first encountered.
func selectBest(front []ParetoMember, opts *ParetoOptions) int {
	switch opts.Mode {
	case ModeLex:
		order := fullLexOrder(opts.LexOrder)
		best := 0
		for i := 1; i < len(front); i++ {
			if lexVecLess(front[i].Vector, front[best].Vector, order) {
				best = i
			}
		}
		return best
	case ModeWeighted:
		best, bestScore := 0, weightedScore(front[0].Vector, opts.Weights)
		for i := 1; i < len(front); i++ {
			if s := weightedScore(front[i].Vector, opts.Weights); s < bestScore {
				best, bestScore = i, s
			}
		}
		return best
	default:
		return 0
	}
}

// fullLexOrder completes a partial axis priority with the remaining
// axes in canonical order.
func fullLexOrder(prefix []Objective) []Objective {
	order := make([]Objective, 0, NumObjectives)
	seen := [NumObjectives]bool{}
	for _, o := range prefix {
		order = append(order, o)
		seen[o] = true
	}
	for o := Objective(0); o < NumObjectives; o++ {
		if !seen[o] {
			order = append(order, o)
		}
	}
	return order
}

func lexVecLess(a, b ObjectiveVector, order []Objective) bool {
	for _, o := range order {
		if a[o] != b[o] {
			return a[o] < b[o]
		}
	}
	return false
}

func weightedScore(v ObjectiveVector, w [NumObjectives]int64) int64 {
	var s int64
	for i := range v {
		s += w[i] * v[i]
	}
	return s
}
