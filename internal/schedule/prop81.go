package schedule

import (
	"errors"
	"fmt"

	"lodim/internal/intmat"
)

// This file implements Proposition 8.1 of the paper's appendix: for a
// mapping matrix T = [S; Π] ∈ Z^{3×5} with the space mapping normalized
// so that s11 = 1 and s22 − s21·s12 = 1, the last two columns of the
// Hermite multiplier U — i.e. a basis of the conflict-vector lattice —
// are available in closed form as integer combinations of the vectors
//
//	w_q = (c1q, c2q, e_q)ᵀ,  q = 3, 4, 5,
//
// which span the null space of S, weighted by the linear forms
// h_q(Π) = Π·w_q. This is what makes the Theorem 4.7-based integer
// program of (5.5)–(5.6) expressible with U as a function of Π.

// ErrProp81Shape is returned when S does not satisfy the proposition's
// normalization or shape requirements.
var ErrProp81Shape = errors.New("schedule: Proposition 8.1 requires S ∈ Z^{2×5} with s11 = 1 and s22 − s21·s12 = 1")

// ErrProp81Degenerate is returned when every h_q(Π) vanishes, i.e. Π
// lies in the row space of S and rank(T) < 3.
var ErrProp81Degenerate = errors.New("schedule: Proposition 8.1 degenerate — Π is a rational combination of the rows of S")

// Prop81NullVectors returns a basis (u4, u5) of the conflict-vector
// lattice of T = [S; Π] computed by the closed form of Proposition 8.1.
// The returned vectors satisfy T·u = 0, are integral and span the same
// integer lattice as the Hermite-normal-form null basis (verified by
// the package tests against intmat.HermiteNormalForm).
func Prop81NullVectors(s *intmat.Matrix, pi intmat.Vector) (u4, u5 intmat.Vector, err error) {
	if s.Rows() != 2 || s.Cols() != 5 || len(pi) != 5 {
		return nil, nil, fmt.Errorf("%w: got S %dx%d, Π length %d", ErrProp81Shape, s.Rows(), s.Cols(), len(pi))
	}
	if s.At(0, 0) != 1 || s.At(1, 1)-s.At(1, 0)*s.At(0, 1) != 1 {
		return nil, nil, ErrProp81Shape
	}
	s12, s21 := s.At(0, 1), s.At(1, 0)

	// w_q = (c1q, c2q, δ3q, δ4q, δ5q): S·w_q = 0 by the normalization.
	w := make([]intmat.Vector, 3) // w[0] = w3, w[1] = w4, w[2] = w5
	h := make([]int64, 3)         // h[q] = Π·w_q (Equations 8.4)
	for t := 0; t < 3; t++ {
		q := t + 2 // column index 2,3,4 (paper's 3,4,5)
		c2 := s21*s.At(0, q) - s.At(1, q)
		c1 := -s12*c2 - s.At(0, q)
		wq := intmat.NewVector(5)
		wq[0], wq[1], wq[q] = c1, c2, 1
		w[t] = wq
		h[t] = pi.Dot(wq)
	}
	h3, h4, h5 := h[0], h[1], h[2]

	// u4 kills (h3, h4): u4 = (h4/g1)·w3 − (h3/g1)·w4 with g1 = gcd.
	// u5 kills (g1, h5) through the Bézout pair p1·h3 + q1·h4 = g1:
	// u5 = −(p1·h5/g2)·w3 − (q1·h5/g2)·w4 + (g1/g2)·w5.
	switch {
	case h3 == 0 && h4 == 0 && h5 == 0:
		return nil, nil, ErrProp81Degenerate
	case h3 == 0 && h4 == 0:
		// w3 and w4 already lie in null(T).
		return w[0].Clone(), w[1].Clone(), nil
	}
	g1, p1, q1 := intmat.ExtGCD(h3, h4)
	u4 = w[0].Scale(h4 / g1).Sub(w[1].Scale(h3 / g1))
	g2 := intmat.GCD(g1, h5)
	if g2 == 0 {
		// h5 = 0 with g1 ≠ 0: w5 itself is annihilated by Π.
		return u4, w[2].Clone(), nil
	}
	u5 = w[2].Scale(g1 / g2).
		Sub(w[0].Scale(p1 * (h5 / g2))).
		Sub(w[1].Scale(q1 * (h5 / g2)))
	return u4, u5, nil
}

// Prop81HForms returns the linear forms h_3(Π), h_4(Π), h_5(Π) of
// Equations 8.4 as coefficient rows over (π_1, …, π_5): row q-3 holds
// the coefficients of h_q. These drive the Theorem 4.7 integer program
// for 5-dimensional algorithms mapped to 2-D arrays.
func Prop81HForms(s *intmat.Matrix) (*intmat.Matrix, error) {
	if s.Rows() != 2 || s.Cols() != 5 {
		return nil, fmt.Errorf("%w: got S %dx%d", ErrProp81Shape, s.Rows(), s.Cols())
	}
	if s.At(0, 0) != 1 || s.At(1, 1)-s.At(1, 0)*s.At(0, 1) != 1 {
		return nil, ErrProp81Shape
	}
	s12, s21 := s.At(0, 1), s.At(1, 0)
	forms := intmat.New(3, 5)
	for t := 0; t < 3; t++ {
		q := t + 2
		c2 := s21*s.At(0, q) - s.At(1, q)
		c1 := -s12*c2 - s.At(0, q)
		forms.Set(t, 0, c1)
		forms.Set(t, 1, c2)
		forms.Set(t, q, 1)
	}
	return forms, nil
}
