package schedule

import (
	"fmt"
	"sync/atomic"
	"time"

	"lodim/internal/conflict"
	"lodim/internal/trace"
)

// SearchStats reports, in structured form, where a search spent its
// effort: how many candidates each pruning rule removed before the
// expensive conflict analysis ran, how many survived to be evaluated,
// and the wall time of each phase. It is the per-run analogue of the
// effort metric Result.Candidates, attached to Result.Stats and to
// SpaceResult.Stats, and is the unit the service's Prometheus pruning
// counters aggregate over.
//
// The counter fields are plain int64 snapshots — the atomics live in
// the unexported statsCollector that the hot loops write through.
type SearchStats struct {
	// Engine names the search that produced the stats:
	// "procedure-5.1", "space-6.1" or "joint-6.2".
	Engine string `json:"engine"`
	// Workers is the effective parallelism of the candidate loop.
	Workers int `json:"workers"`

	// SpaceCandidates counts space mappings S enumerated by the
	// Problem 6.1/6.2 searches (zero for pure Procedure 5.1 runs).
	SpaceCandidates int64 `json:"space_candidates,omitempty"`
	// PrunedOrbit counts candidates removed by the axis-symmetry
	// orbit rule before any evaluation.
	PrunedOrbit int64 `json:"pruned_orbit,omitempty"`
	// PrunedLowerBound counts candidates removed because their
	// processor/cost lower bound already exceeded the best known cost.
	PrunedLowerBound int64 `json:"pruned_lower_bound,omitempty"`
	// PrunedIncumbent counts candidates removed by the shared
	// incumbent-time cut (including post-search discards).
	PrunedIncumbent int64 `json:"pruned_incumbent,omitempty"`
	// InnerSearches counts Procedure 5.1 invocations launched by the
	// joint search (one per surviving space candidate).
	InnerSearches int64 `json:"inner_searches,omitempty"`

	// ScheduleCandidates counts schedule vectors Π examined across all
	// Procedure 5.1 cost levels (equals Result.Candidates for a pure
	// schedule search; aggregates over inner searches for joint runs).
	ScheduleCandidates int64 `json:"schedule_candidates"`
	// CostLevels counts objective levels f = Σ|π_i|μ_i the Procedure
	// 5.1 enumeration stepped through (aggregate over inner searches).
	CostLevels int64 `json:"cost_levels"`

	// HNFIncremental counts conflict decisions answered incrementally —
	// the candidate's h = Π·W line matched a decomposition already held
	// by the per-worker scratch cache, so no new Hermite reduction ran.
	HNFIncremental int64 `json:"hnf_incremental,omitempty"`
	// HNFFromScratch counts conflict decisions that ran a fresh
	// decomposition.
	HNFFromScratch int64 `json:"hnf_from_scratch,omitempty"`

	// Collect is the wall time spent enumerating/collecting candidate
	// space mappings (zero for pure schedule searches); Search is the
	// wall time of the candidate evaluation loop; Total spans the whole
	// engine call.
	Collect time.Duration `json:"collect_ns,omitempty"`
	Search  time.Duration `json:"search_ns"`
	Total   time.Duration `json:"total_ns"`
}

// Pruned returns the total number of candidates removed by all three
// pruning rules.
func (s *SearchStats) Pruned() int64 {
	return s.PrunedOrbit + s.PrunedLowerBound + s.PrunedIncumbent
}

// String renders a one-line human-readable summary, used by
// mapfind -stats.
func (s *SearchStats) String() string {
	if s == nil {
		return "<no stats>"
	}
	out := fmt.Sprintf("engine=%s workers=%d", s.Engine, s.Workers)
	if s.SpaceCandidates > 0 {
		out += fmt.Sprintf(" space=%d pruned(orbit=%d lb=%d incumbent=%d) inner=%d",
			s.SpaceCandidates, s.PrunedOrbit, s.PrunedLowerBound, s.PrunedIncumbent, s.InnerSearches)
	}
	out += fmt.Sprintf(" sched=%d levels=%d", s.ScheduleCandidates, s.CostLevels)
	if s.HNFIncremental > 0 || s.HNFFromScratch > 0 {
		out += fmt.Sprintf(" hnf(incremental=%d scratch=%d)", s.HNFIncremental, s.HNFFromScratch)
	}
	if s.Collect > 0 {
		out += fmt.Sprintf(" collect=%s", s.Collect.Round(time.Microsecond))
	}
	out += fmt.Sprintf(" search=%s total=%s",
		s.Search.Round(time.Microsecond), s.Total.Round(time.Microsecond))
	return out
}

// annotateSpan attaches the stats' counters to a search span, so the
// trace inspector shows where the spanned search spent its effort
// without a separate stats lookup. No-op on a nil span.
func (s *SearchStats) annotateSpan(span *trace.Span) {
	if s == nil || span == nil {
		return
	}
	span.SetStr("engine", s.Engine)
	span.SetInt("workers", int64(s.Workers))
	if s.SpaceCandidates > 0 {
		span.SetInt("space_candidates", s.SpaceCandidates)
		span.SetInt("pruned_orbit", s.PrunedOrbit)
		span.SetInt("pruned_lower_bound", s.PrunedLowerBound)
		span.SetInt("pruned_incumbent", s.PrunedIncumbent)
		span.SetInt("inner_searches", s.InnerSearches)
	}
	span.SetInt("schedule_candidates", s.ScheduleCandidates)
	span.SetInt("cost_levels", s.CostLevels)
	if s.HNFIncremental > 0 || s.HNFFromScratch > 0 {
		span.SetInt("hnf_incremental", s.HNFIncremental)
		span.SetInt("hnf_from_scratch", s.HNFFromScratch)
	}
}

// statsCollector is the write side of SearchStats: atomic counters the
// candidate loops bump from many goroutines, snapshotted once at the
// end of the search.
type statsCollector struct {
	spaceCandidates    atomic.Int64
	prunedOrbit        atomic.Int64
	prunedLowerBound   atomic.Int64
	prunedIncumbent    atomic.Int64
	innerSearches      atomic.Int64
	scheduleCandidates atomic.Int64
	costLevels         atomic.Int64
	hnfIncremental     atomic.Int64
	hnfFromScratch     atomic.Int64
}

// drainScratch folds a worker scratch's cache counters into the
// collector; called when a worker finishes with (or releases) its
// scratch. Nil-safe on both sides.
func (c *statsCollector) drainScratch(sc *conflict.Scratch) {
	if c == nil || sc == nil {
		return
	}
	hits, misses := sc.TakeStats()
	c.hnfIncremental.Add(hits)
	c.hnfFromScratch.Add(misses)
}

// snapshot freezes the counters into a SearchStats. The caller fills
// the identity and timing fields.
func (c *statsCollector) snapshot(engine string, workers int, collect, search, total time.Duration) *SearchStats {
	return &SearchStats{
		Engine:             engine,
		Workers:            workers,
		SpaceCandidates:    c.spaceCandidates.Load(),
		PrunedOrbit:        c.prunedOrbit.Load(),
		PrunedLowerBound:   c.prunedLowerBound.Load(),
		PrunedIncumbent:    c.prunedIncumbent.Load(),
		InnerSearches:      c.innerSearches.Load(),
		ScheduleCandidates: c.scheduleCandidates.Load(),
		CostLevels:         c.costLevels.Load(),
		HNFIncremental:     c.hnfIncremental.Load(),
		HNFFromScratch:     c.hnfFromScratch.Load(),
		Collect:            collect,
		Search:             search,
		Total:              total,
	}
}
