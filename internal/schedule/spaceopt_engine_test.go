package schedule

import (
	"errors"
	"fmt"
	"testing"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// TestEnumerateDegenerateAxis is the regression test for the
// divide-by-zero on μ_i = 0: degenerate axes are enumerated at
// effective weight 1 instead of crashing the recursion.
func TestEnumerateDegenerateAxis(t *testing.T) {
	var got []string
	enumerate(intmat.Vec(0, 2), 2, func(pi intmat.Vector) bool {
		got = append(got, pi.String())
		return true
	})
	// Weights (1, 2): |π_0| + 2|π_1| = 2 → (-2,0), (0,-1), (0,1), (2,0).
	want := []string{"[-2 0]", "[0 -1]", "[0 1]", "[2 0]"}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
	// All-degenerate index set: the full level must still enumerate.
	count := 0
	enumerate(intmat.Vec(0, 0), 1, func(intmat.Vector) bool {
		count++
		return true
	})
	if count != 4 { // (-1,0), (0,-1), (0,1), (1,0)
		t.Errorf("all-zero μ level 1 visited %d candidates, want 4", count)
	}
}

// TestEnumerateSuffixGCDComplete checks the gcd subtree pruning against
// a reference enumeration on mixed weights: the same candidate set, in
// the same order.
func TestEnumerateSuffixGCDComplete(t *testing.T) {
	mu := intmat.Vec(2, 3, 4)
	for cost := int64(1); cost <= 15; cost++ {
		var got []string
		enumerate(mu, cost, func(pi intmat.Vector) bool {
			got = append(got, pi.String())
			return true
		})
		var want []string
		var rec func(i int, remaining int64, pi intmat.Vector)
		rec = func(i int, remaining int64, pi intmat.Vector) {
			if i == len(mu) {
				if remaining == 0 {
					want = append(want, pi.String())
				}
				return
			}
			maxAbs := remaining / mu[i]
			for v := -maxAbs; v <= maxAbs; v++ {
				pi[i] = v
				used := v * mu[i]
				if used < 0 {
					used = -used
				}
				rec(i+1, remaining-used, pi)
			}
			pi[i] = 0
		}
		rec(0, cost, make(intmat.Vector, len(mu)))
		if len(got) != len(want) {
			t.Fatalf("cost %d: %d candidates, want %d", cost, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cost %d: candidate %d = %s, want %s", cost, i, got[i], want[i])
			}
		}
	}
}

// TestFindJointMappingPropagatesInnerErrors: an inner search failing
// for a reason other than "no schedule in range" must abort the joint
// search, not be silently skipped as if the candidate were infeasible.
func TestFindJointMappingPropagatesInnerErrors(t *testing.T) {
	algo := uda.MatMul(3)
	// MinimizeBuffers without a Machine is a configuration error the
	// inner search reports for every candidate.
	_, err := FindJointMapping(algo, 1, &SpaceOptions{Schedule: Options{MinimizeBuffers: true}})
	if err == nil {
		t.Fatal("configuration error swallowed")
	}
	if errors.Is(err, ErrNoSchedule) {
		t.Fatalf("configuration error reported as ErrNoSchedule: %v", err)
	}
	// A genuinely bounded-out search is ErrNoSchedule: every inner
	// search exhausts MaxCost = 2 (the matmul optimum needs cost 15).
	_, err = FindJointMapping(algo, 1, &SpaceOptions{Schedule: Options{MaxCost: 2}})
	if err == nil {
		t.Fatal("expected ErrNoSchedule for MaxCost = 2")
	}
	if !errors.Is(err, ErrNoSchedule) {
		t.Fatalf("bounded-out search returned %v, want ErrNoSchedule", err)
	}
}

// jointFingerprint captures every deterministic field of a joint
// result. Pruned is deliberately excluded: with Workers > 1 the
// lower-bound rule races the incumbent, so the number of pruned
// candidates (but never the winner) may vary between runs.
func jointFingerprint(r *JointResult) string {
	return fmt.Sprintf("S=%v Pi=%v t=%d cost=%d procs=%d wire=%d cands=%d inner=%d innerT=%d",
		r.Mapping.S, r.Mapping.Pi, r.Time, r.Cost, r.Processors, r.WireLength,
		r.Candidates, r.ScheduleResult.Candidates, r.ScheduleResult.Time)
}

// TestFindJointMappingDeterministicWorkers: the joint search must
// return byte-identical results (same S, Π, cost, time) at any worker
// count, on every seed algorithm.
func TestFindJointMappingDeterministicWorkers(t *testing.T) {
	cases := []struct {
		algo *uda.Algorithm
		dims int
	}{
		{uda.MatMul(3), 1},
		{uda.MatMul(4), 1},
		{uda.MatMul(3), 2},
		{uda.TransitiveClosure(3), 1},
		{uda.TransitiveClosure(4), 1},
		{uda.TransitiveClosure(3), 2},
	}
	for _, c := range cases {
		name := fmt.Sprintf("%s/dims=%d", c.algo.Name, c.dims)
		t.Run(name, func(t *testing.T) {
			seq, err := FindJointMapping(c.algo, c.dims, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := jointFingerprint(seq)
			for _, workers := range []int{2, 8} {
				for rep := 0; rep < 3; rep++ {
					par, err := FindJointMapping(c.algo, c.dims, &SpaceOptions{Schedule: Options{Workers: workers}})
					if err != nil {
						t.Fatal(err)
					}
					if got := jointFingerprint(par); got != want {
						t.Fatalf("workers=%d rep=%d:\n got %s\nwant %s", workers, rep, got, want)
					}
				}
			}
		})
	}
}

// TestFindSpaceMappingDeterministicWorkers: same guarantee for the
// Problem 6.1 search.
func TestFindSpaceMappingDeterministicWorkers(t *testing.T) {
	algo := uda.MatMul(4)
	pi := intmat.Vec(1, 4, 1)
	seq, err := FindSpaceMapping(algo, pi, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := FindSpaceMapping(algo, pi, 1, &SpaceOptions{Schedule: Options{Workers: workers}})
		if err != nil {
			t.Fatal(err)
		}
		if par.Mapping.S.String() != seq.Mapping.S.String() || par.Cost != seq.Cost ||
			par.Processors != seq.Processors || par.Candidates != seq.Candidates {
			t.Fatalf("workers=%d: got %v cost=%d, want %v cost=%d",
				workers, par.Mapping.S, par.Cost, seq.Mapping.S, seq.Cost)
		}
	}
}

// TestPruningPreservesWinner: symmetry and lower-bound pruning are
// exact — NoPrune must reproduce the identical winner, only slower.
func TestPruningPreservesWinner(t *testing.T) {
	for _, algo := range []*uda.Algorithm{uda.MatMul(3), uda.TransitiveClosure(3)} {
		pruned, err := FindJointMapping(algo, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, err := FindJointMapping(algo, 1, &SpaceOptions{NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if jointFingerprint(pruned) != jointFingerprint(full) {
			t.Errorf("%s: pruned winner %s != unpruned %s",
				algo.Name, jointFingerprint(pruned), jointFingerprint(full))
		}
		if full.Pruned != 0 {
			t.Errorf("%s: NoPrune still pruned %d candidates", algo.Name, full.Pruned)
		}
		if pruned.Pruned == 0 {
			t.Errorf("%s: pruning rules never fired", algo.Name)
		}
	}
}

// TestRowImageSize checks the closed-form 1-D processor count against
// direct enumeration.
func TestRowImageSize(t *testing.T) {
	cases := []struct {
		row   intmat.Vector
		upper intmat.Vector
	}{
		{intmat.Vec(1, 1, -1), intmat.Vec(4, 4, 4)},
		{intmat.Vec(1, -1, 0), intmat.Vec(4, 4, 4)},
		{intmat.Vec(0, 0, 1), intmat.Vec(2, 3, 5)},
		{intmat.Vec(2, -3), intmat.Vec(5, 2)},
		{intmat.Vec(3, 5), intmat.Vec(1, 1)},
		{intmat.Vec(0, 0), intmat.Vec(3, 3)},
		{intmat.Vec(-2, 4, 7), intmat.Vec(2, 0, 3)},
	}
	for _, c := range cases {
		want := map[int64]bool{}
		set := uda.IndexSet{Upper: c.upper}
		set.Each(func(j intmat.Vector) bool {
			want[c.row.Dot(j)] = true
			return true
		})
		if got := rowImageSize(c.row, c.upper); got != int64(len(want)) {
			t.Errorf("rowImageSize(%v, %v) = %d, want %d", c.row, c.upper, got, len(want))
		}
	}
}

// TestCountProcessorImages checks the keyed enumeration for multi-row S
// against a string-set reference.
func TestCountProcessorImages(t *testing.T) {
	algo := uda.MatMul(3)
	s := intmat.FromRows([]int64{1, 0, -1}, []int64{0, 1, 1})
	want := map[string]bool{}
	algo.Set.Each(func(j intmat.Vector) bool {
		want[s.MulVec(j).String()] = true
		return true
	})
	if got := countProcessorImages(s, algo.Set); got != int64(len(want)) {
		t.Errorf("countProcessorImages = %d, want %d", got, len(want))
	}
	// Lower bound must never exceed the exact count.
	if lb := processorLowerBound(s, algo.Set.Upper); lb > int64(len(want)) {
		t.Errorf("processorLowerBound = %d exceeds exact count %d", lb, len(want))
	}
}

// TestAxisAutomorphisms pins the symmetry groups of the two flagship
// algorithms: matmul (D = I on a cube) is invariant under all 3! axis
// permutations; transitive closure only under swapping the last two
// axes.
func TestAxisAutomorphisms(t *testing.T) {
	if got := len(axisAutomorphisms(uda.MatMul(3), nil)); got != 5 {
		t.Errorf("matmul automorphisms = %d, want 5 (S₃ minus identity)", got)
	}
	perms := axisAutomorphisms(uda.TransitiveClosure(3), nil)
	if len(perms) != 1 || perms[0][0] != 0 || perms[0][1] != 2 || perms[0][2] != 1 {
		t.Errorf("transitive closure automorphisms = %v, want [[0 2 1]]", perms)
	}
	// A fixed Π that breaks the symmetry must shrink the group.
	if got := len(axisAutomorphisms(uda.MatMul(3), intmat.Vec(1, 3, 1))); got != 1 {
		t.Errorf("matmul automorphisms fixing Π=[1,3,1] = %d, want 1 (swap axes 0,2)", got)
	}
}

// TestFindJointMappingConflictFreeAllWorkers spot-checks that parallel
// winners are genuinely conflict-free, not just internally consistent.
func TestFindJointMappingConflictFreeAllWorkers(t *testing.T) {
	algo := uda.TransitiveClosure(3)
	res, err := FindJointMapping(algo, 1, &SpaceOptions{Schedule: Options{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if free, w := conflict.BruteForce(res.Mapping.T, algo.Set); !free {
		t.Fatalf("parallel winner conflicts (witness %v)", w)
	}
}
