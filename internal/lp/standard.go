package lp

import "lodim/internal/rat"

// stdProblem is the computational standard form:
//
//	minimize  c·y
//	subject to A·y = b,  y ≥ 0,  b ≥ 0
//
// together with the bookkeeping needed to map a standard-form solution
// back to the original variables.
type stdProblem struct {
	nVars int // number of standard variables (columns of A)
	c     []rat.Rat
	a     [][]rat.Rat // m rows, nVars columns
	b     []rat.Rat   // m entries, all ≥ 0

	// Per original variable: how to reconstruct it.
	//   kind shifted:  x_j = lower_j + y[pos]
	//   kind split:    x_j = y[pos] - y[neg]
	recov []varRecovery
}

type varRecovery struct {
	split    bool
	pos, neg int     // standard-variable indices
	shift    rat.Rat // added when not split
	negMult  bool    // true for the upper-bound-only encoding x = shift - y
}

// standardize rewrites p into stdProblem:
//
//   - a variable with a finite lower bound l is substituted x = l + y,
//     y ≥ 0 (an upper bound u becomes the row y ≤ u - l);
//   - a variable with only an upper bound u is substituted x = u - y,
//     y ≥ 0, encoded as a shifted variable with coefficient negation;
//   - a free variable is split x = y⁺ - y⁻;
//   - every inequality gains a slack or surplus variable;
//   - rows with negative right-hand side are negated.
func standardize(p *Problem) *stdProblem {
	s := &stdProblem{recov: make([]varRecovery, p.NumVars)}

	// Column construction: for each original variable decide its
	// standard representation; colCoef[j] maps (std var index → multiplier)
	// applied to original coefficient of x_j; colShift[j] is the constant
	// substituted into each row and the objective.
	type colPiece struct {
		idx  int
		mult rat.Rat
	}
	pieces := make([][]colPiece, p.NumVars)
	shift := make([]rat.Rat, p.NumVars)

	for j := 0; j < p.NumVars; j++ {
		lo, hasLo := p.lowerAt(j)
		up, hasUp := p.upperAt(j)
		switch {
		case hasLo:
			y := s.addVar(rat.Zero())
			s.recov[j] = varRecovery{pos: y, shift: lo}
			pieces[j] = []colPiece{{y, rat.One()}}
			shift[j] = lo
			// A coexisting upper bound becomes a synthesized x_j ≤ up
			// row below.
		case hasUp:
			// x = up - y, y ≥ 0.
			y := s.addVar(rat.Zero())
			s.recov[j] = varRecovery{pos: y, shift: up, negMult: true}
			// multiplier -1: coefficient a on x becomes -a on y, plus shift a·up.
			pieces[j] = []colPiece{{y, rat.One().Neg()}}
			shift[j] = up
		default:
			yp := s.addVar(rat.Zero())
			yn := s.addVar(rat.Zero())
			s.recov[j] = varRecovery{split: true, pos: yp, neg: yn}
			pieces[j] = []colPiece{{yp, rat.One()}, {yn, rat.One().Neg()}}
			shift[j] = rat.Zero()
		}
	}

	// Objective: c·x = Σ c_j·(pieces_j + shift_j); constants are dropped
	// (they do not affect the argmin) — Solve recomputes the true
	// objective from the recovered x.
	for j := 0; j < p.NumVars; j++ {
		for _, pc := range pieces[j] {
			s.c[pc.idx] = s.c[pc.idx].Add(p.C[j].Mul(pc.mult))
		}
	}

	// Rows: original constraints plus synthesized upper-bound rows for
	// doubly-bounded variables.
	addRow := func(coeffs []rat.Rat, op Relation, rhs rat.Rat) {
		row := make([]rat.Rat, s.nVars)
		acc := rhs
		for j := 0; j < p.NumVars; j++ {
			cj := coeffs[j]
			if cj.IsZero() {
				continue
			}
			for _, pc := range pieces[j] {
				row[pc.idx] = row[pc.idx].Add(cj.Mul(pc.mult))
			}
			acc = acc.Sub(cj.Mul(shift[j]))
		}
		// Slack/surplus.
		switch op {
		case LE:
			sv := s.addVar(rat.Zero())
			row = padTo(row, s.nVars)
			row[sv] = rat.One()
		case GE:
			sv := s.addVar(rat.Zero())
			row = padTo(row, s.nVars)
			row[sv] = rat.One().Neg()
		case EQ:
			// nothing
		}
		row = padTo(row, s.nVars)
		if acc.Sign() < 0 {
			for i := range row {
				row[i] = row[i].Neg()
			}
			acc = acc.Neg()
		}
		s.a = append(s.a, row)
		s.b = append(s.b, acc)
	}

	for _, c := range p.Constraints {
		addRow(c.Coeffs, c.Op, c.RHS)
	}
	// Upper bounds on lower-bounded variables: x_j ≤ u  ⇒  y ≤ u - lo.
	for j := 0; j < p.NumVars; j++ {
		_, hasLo := p.lowerAt(j)
		up, hasUp := p.upperAt(j)
		if hasLo && hasUp {
			coeffs := make([]rat.Rat, p.NumVars)
			coeffs[j] = rat.One()
			addRow(coeffs, LE, up)
		}
	}

	// Pad all earlier rows to the final variable count (slack variables
	// are appended as rows are created, so earlier rows may be short).
	for i := range s.a {
		s.a[i] = padTo(s.a[i], s.nVars)
	}
	return s
}

func (s *stdProblem) addVar(c rat.Rat) int {
	s.c = append(s.c, c)
	s.nVars++
	return s.nVars - 1
}

func padTo(row []rat.Rat, n int) []rat.Rat {
	for len(row) < n {
		row = append(row, rat.Zero())
	}
	return row
}

// recover maps a standard-form solution vector back to original space.
func (s *stdProblem) recover(y []rat.Rat) []rat.Rat {
	x := make([]rat.Rat, len(s.recov))
	for j, r := range s.recov {
		if r.split {
			x[j] = y[r.pos].Sub(y[r.neg])
			continue
		}
		// Shifted variable: detect the upper-bound encoding by the sign
		// convention — we stored x = shift ± y; the multiplier sign is
		// recoverable from whether shift was a lower or an upper bound.
		// To keep recovery simple we re-derive: lower-bound encoding is
		// x = shift + y, upper-bound-only is x = shift - y. The encoding
		// kind is stored in negated form of the piece; we track it via
		// the sign marker below.
		x[j] = r.shift.Add(y[r.pos].Mul(r.mult()))
	}
	return x
}

// mult reports the ±1 multiplier of the shifted encoding. It is stored
// implicitly: varRecovery for an upper-bound-only variable is written
// with shift = upper bound and negMult = true.
func (r varRecovery) mult() rat.Rat {
	if r.negMult {
		return rat.One().Neg()
	}
	return rat.One()
}
