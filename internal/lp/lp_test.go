package lp

import (
	"testing"

	"lodim/internal/rat"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.FromFrac(n, d) }
func rvec(ns ...int64) []rat.Rat {
	v := make([]rat.Rat, len(ns))
	for i, n := range ns {
		v[i] = rat.FromInt(n)
	}
	return v
}

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

// min x+y s.t. x+y >= 2, x >= 0, y >= 0 → objective 2.
func TestSimpleMin(t *testing.T) {
	p := &Problem{
		NumVars: 2,
		C:       rvec(1, 1),
		Constraints: []Constraint{
			{Coeffs: rvec(1, 1), Op: GE, RHS: ri(2)},
		},
		Lower: []Bound{BoundAt(ri(0)), BoundAt(ri(0))},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.Objective.Equal(ri(2)) {
		t.Errorf("objective %v, want 2", sol.Objective)
	}
}

// Classic 2-variable LP with fractional optimum:
// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18, x,y>=0 → x=2, y=6, obj=36.
func TestClassicDantzig(t *testing.T) {
	p := &Problem{
		NumVars: 2,
		C:       rvec(-3, -5), // maximize via negation
		Constraints: []Constraint{
			{Coeffs: rvec(1, 0), Op: LE, RHS: ri(4)},
			{Coeffs: rvec(0, 2), Op: LE, RHS: ri(12)},
			{Coeffs: rvec(3, 2), Op: LE, RHS: ri(18)},
		},
		Lower: []Bound{BoundAt(ri(0)), BoundAt(ri(0))},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.Objective.Equal(ri(-36)) {
		t.Errorf("objective %v, want -36", sol.Objective)
	}
	if !sol.X[0].Equal(ri(2)) || !sol.X[1].Equal(ri(6)) {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
}

func TestFractionalOptimum(t *testing.T) {
	// min -x-y s.t. 2x+y <= 3, x+2y <= 3, x,y >= 0 → x=y=1? Check:
	// vertices (0,0),(3/2,0),(0,3/2),(1,1); max x+y at (1,1) = 2.
	p := &Problem{
		NumVars: 2,
		C:       rvec(-1, -1),
		Constraints: []Constraint{
			{Coeffs: rvec(2, 1), Op: LE, RHS: ri(3)},
			{Coeffs: rvec(1, 2), Op: LE, RHS: ri(3)},
		},
		Lower: []Bound{BoundAt(ri(0)), BoundAt(ri(0))},
	}
	sol := mustSolve(t, p)
	if !sol.Objective.Equal(ri(-2)) {
		t.Errorf("objective %v, want -2", sol.Objective)
	}
	if !sol.X[0].Equal(ri(1)) || !sol.X[1].Equal(ri(1)) {
		t.Errorf("x = %v, want [1 1]", sol.X)
	}
}

func TestExactFractions(t *testing.T) {
	// min x s.t. 3x >= 1 → x = 1/3 exactly.
	p := &Problem{
		NumVars:     1,
		C:           rvec(1),
		Constraints: []Constraint{{Coeffs: rvec(3), Op: GE, RHS: ri(1)}},
		Lower:       []Bound{BoundAt(ri(0))},
	}
	sol := mustSolve(t, p)
	if !sol.X[0].Equal(rf(1, 3)) {
		t.Errorf("x = %v, want 1/3", sol.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		C:       rvec(1),
		Constraints: []Constraint{
			{Coeffs: rvec(1), Op: GE, RHS: ri(3)},
			{Coeffs: rvec(1), Op: LE, RHS: ri(2)},
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:     1,
		C:           rvec(-1), // maximize x
		Constraints: []Constraint{{Coeffs: rvec(1), Op: GE, RHS: ri(0)}},
	}
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status %v, want unbounded", sol.Status)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+y = 5, x-y = 1 → x=3, y=2.
	p := &Problem{
		NumVars: 2,
		C:       rvec(1, 1),
		Constraints: []Constraint{
			{Coeffs: rvec(1, 1), Op: EQ, RHS: ri(5)},
			{Coeffs: rvec(1, -1), Op: EQ, RHS: ri(1)},
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.X[0].Equal(ri(3)) || !sol.X[1].Equal(ri(2)) {
		t.Errorf("x = %v, want [3 2]", sol.X)
	}
}

func TestFreeVariables(t *testing.T) {
	// min x s.t. x >= -10 via constraint (variable itself free) → x=-10.
	p := &Problem{
		NumVars:     1,
		C:           rvec(1),
		Constraints: []Constraint{{Coeffs: rvec(1), Op: GE, RHS: ri(-10)}},
	}
	sol := mustSolve(t, p)
	if !sol.X[0].Equal(ri(-10)) {
		t.Errorf("x = %v, want -10", sol.X[0])
	}
}

func TestNegativeRHS(t *testing.T) {
	// min -x s.t. -x >= -4 (i.e. x <= 4), x >= 0 → x=4.
	p := &Problem{
		NumVars:     1,
		C:           rvec(-1),
		Constraints: []Constraint{{Coeffs: rvec(-1), Op: GE, RHS: ri(-4)}},
		Lower:       []Bound{BoundAt(ri(0))},
	}
	sol := mustSolve(t, p)
	if !sol.X[0].Equal(ri(4)) {
		t.Errorf("x = %v, want 4", sol.X[0])
	}
}

func TestVariableBounds(t *testing.T) {
	// min -x-y with 1 <= x <= 3, 2 <= y <= 5 → x=3, y=5.
	p := &Problem{
		NumVars: 2,
		C:       rvec(-1, -1),
		Lower:   []Bound{BoundAt(ri(1)), BoundAt(ri(2))},
		Upper:   []Bound{BoundAt(ri(3)), BoundAt(ri(5))},
	}
	sol := mustSolve(t, p)
	if !sol.X[0].Equal(ri(3)) || !sol.X[1].Equal(ri(5)) {
		t.Errorf("x = %v, want [3 5]", sol.X)
	}
}

func TestUpperBoundOnly(t *testing.T) {
	// min -x with x <= 7 (no lower bound) → x=7.
	p := &Problem{
		NumVars: 1,
		C:       rvec(-1),
		Upper:   []Bound{BoundAt(ri(7))},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.X[0].Equal(ri(7)) {
		t.Errorf("x = %v, want 7", sol.X[0])
	}
}

func TestLowerAboveUpperInvalid(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		C:       rvec(1),
		Lower:   []Bound{BoundAt(ri(5))},
		Upper:   []Bound{BoundAt(ri(3))},
	}
	if _, err := p.Solve(); err == nil {
		t.Error("crossed bounds accepted")
	}
}

func TestValidateShapeErrors(t *testing.T) {
	bad := []*Problem{
		{NumVars: 2, C: rvec(1)},
		{NumVars: 1, C: rvec(1), Constraints: []Constraint{{Coeffs: rvec(1, 2), Op: LE, RHS: ri(0)}}},
		{NumVars: 1, C: rvec(1), Lower: []Bound{{}, {}}},
		{NumVars: -1},
	}
	for i, p := range bad {
		if _, err := p.Solve(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestDegenerateCycleResistance(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	// min -3/4 x1 + 150 x2 - 1/50 x3 + 6 x4
	// s.t. 1/4 x1 - 60 x2 - 1/25 x3 + 9 x4 <= 0
	//      1/2 x1 - 90 x2 - 1/50 x3 + 3 x4 <= 0
	//      x3 <= 1, x >= 0. Optimum = -1/20.
	p := &Problem{
		NumVars: 4,
		C:       []rat.Rat{rf(-3, 4), ri(150), rf(-1, 50), ri(6)},
		Constraints: []Constraint{
			{Coeffs: []rat.Rat{rf(1, 4), ri(-60), rf(-1, 25), ri(9)}, Op: LE, RHS: ri(0)},
			{Coeffs: []rat.Rat{rf(1, 2), ri(-90), rf(-1, 50), ri(3)}, Op: LE, RHS: ri(0)},
			{Coeffs: rvec(0, 0, 1, 0), Op: LE, RHS: ri(1)},
		},
		Lower: []Bound{BoundAt(ri(0)), BoundAt(ri(0)), BoundAt(ri(0)), BoundAt(ri(0))},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.Objective.Equal(rf(-1, 20)) {
		t.Errorf("objective %v, want -1/20", sol.Objective)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equality rows force purgeArtificials to drop a row.
	p := &Problem{
		NumVars: 2,
		C:       rvec(1, 1),
		Constraints: []Constraint{
			{Coeffs: rvec(1, 1), Op: EQ, RHS: ri(4)},
			{Coeffs: rvec(1, 1), Op: EQ, RHS: ri(4)},
			{Coeffs: rvec(2, 2), Op: EQ, RHS: ri(8)},
		},
		Lower: []Bound{BoundAt(ri(0)), BoundAt(ri(0))},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !sol.Objective.Equal(ri(4)) {
		t.Errorf("status %v objective %v, want optimal 4", sol.Status, sol.Objective)
	}
}

// TestPaperMatmulSubproblemI solves Formulation I of the paper's
// appendix (Equation 8.1) as a pure LP:
//
//	min μ(π1+π2+π3) s.t. π_i ≥ 1, π2+π3 ≥ μ+1
//
// With μ = 4 the optimum is 1+1+μ = 6 scaled by μ → 24, attained at the
// integral extreme points [1,1,μ] or [1,μ,1], exactly the paper's Π1/Π2.
func TestPaperMatmulSubproblemI(t *testing.T) {
	mu := int64(4)
	p := &Problem{
		NumVars: 3,
		C:       rvec(mu, mu, mu),
		Constraints: []Constraint{
			{Coeffs: rvec(0, 1, 1), Op: GE, RHS: ri(mu + 1)},
		},
		Lower: []Bound{BoundAt(ri(1)), BoundAt(ri(1)), BoundAt(ri(1))},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	want := ri(mu * (1 + 1 + mu))
	if !sol.Objective.Equal(want) {
		t.Errorf("objective %v, want %v", sol.Objective, want)
	}
	// The optimum must be integral (the paper's integrality argument:
	// all extreme points of this polyhedron are integral).
	for i, x := range sol.X {
		if !x.IsInt() {
			t.Errorf("x[%d] = %v is not integral", i, x)
		}
	}
}

func BenchmarkSimplexSmall(b *testing.B) {
	p := &Problem{
		NumVars: 3,
		C:       rvec(4, 4, 4),
		Constraints: []Constraint{
			{Coeffs: rvec(0, 1, 1), Op: GE, RHS: ri(5)},
			{Coeffs: rvec(1, 0, 1), Op: GE, RHS: ri(5)},
		},
		Lower: []Bound{BoundAt(ri(1)), BoundAt(ri(1)), BoundAt(ri(1))},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
