package lp

import (
	"math/rand"
	"testing"

	"lodim/internal/rat"
)

// TestSimplexAgainstVertexEnumeration cross-checks the solver on random
// bounded 2-variable LPs against the fundamental theorem of linear
// programming: the optimum over a bounded polytope is attained at a
// vertex, and every vertex is the intersection of two active
// constraints. The enumeration intersects every constraint pair
// (including the box bounds), filters feasible points, and minimizes
// exactly in rational arithmetic.
func TestSimplexAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 200; trial++ {
		// Random model: minimize c·x over 0 ≤ x, y ≤ 10 plus up to 4
		// random half-planes a·x + b·y ≤ r.
		c := []rat.Rat{ri(rng.Int63n(11) - 5), ri(rng.Int63n(11) - 5)}
		nCons := 1 + rng.Intn(4)
		// All constraints as rows a·x ≤ b, including the box.
		type row struct {
			a1, a2, b rat.Rat
		}
		rows := []row{
			{ri(-1), ri(0), ri(0)}, // -x ≤ 0
			{ri(0), ri(-1), ri(0)}, // -y ≤ 0
			{ri(1), ri(0), ri(10)}, // x ≤ 10
			{ri(0), ri(1), ri(10)}, // y ≤ 10
		}
		p := &Problem{
			NumVars: 2,
			C:       c,
			Lower:   []Bound{BoundAt(ri(0)), BoundAt(ri(0))},
			Upper:   []Bound{BoundAt(ri(10)), BoundAt(ri(10))},
		}
		for i := 0; i < nCons; i++ {
			r := row{ri(rng.Int63n(9) - 4), ri(rng.Int63n(9) - 4), ri(rng.Int63n(41) - 10)}
			rows = append(rows, r)
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: []rat.Rat{r.a1, r.a2}, Op: LE, RHS: r.b,
			})
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Vertex enumeration.
		feasible := func(x, y rat.Rat) bool {
			for _, r := range rows {
				if r.a1.Mul(x).Add(r.a2.Mul(y)).Cmp(r.b) > 0 {
					return false
				}
			}
			return true
		}
		var best rat.Rat
		found := false
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				// Solve the 2x2 system rows[i], rows[j] as equalities.
				det := rows[i].a1.Mul(rows[j].a2).Sub(rows[i].a2.Mul(rows[j].a1))
				if det.IsZero() {
					continue
				}
				x := rows[i].b.Mul(rows[j].a2).Sub(rows[i].a2.Mul(rows[j].b)).Div(det)
				y := rows[i].a1.Mul(rows[j].b).Sub(rows[i].b.Mul(rows[j].a1)).Div(det)
				if !feasible(x, y) {
					continue
				}
				obj := c[0].Mul(x).Add(c[1].Mul(y))
				if !found || obj.Less(best) {
					best, found = obj, true
				}
			}
		}
		if !found {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: enumeration infeasible, solver says %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: solver status %v, enumeration found %v", trial, sol.Status, best)
		}
		if !sol.Objective.Equal(best) {
			t.Fatalf("trial %d: solver %v, enumeration %v", trial, sol.Objective, best)
		}
	}
}
