// Package lp implements an exact linear programming solver over the
// rationals.
//
// The solver is a dense two-phase primal simplex with Bland's
// anti-cycling rule, operating entirely in exact rational arithmetic
// (internal/rat). It exists because the time-optimal mapping problem of
// Shang & Fortes (1990) reduces — after the disjunctive decomposition of
// the conflict-freeness constraint — to small linear programs whose
// extreme points are provably integral; exact arithmetic lets the
// integrality argument of the paper's appendix be used verbatim, and a
// handful of variables and constraints makes performance a non-issue.
//
// The model is
//
//	minimize   c·x
//	subject to a_i·x (≤ | = | ≥) b_i   for each constraint i
//	           optional per-variable lower/upper bounds
//
// with variables free by default. Internally the problem is rewritten
// to standard computational form (equalities over non-negative
// variables): bounded variables are translated, free variables are
// split into differences of non-negative pairs, and slack/surplus
// variables absorb the inequalities.
package lp

import (
	"errors"
	"fmt"

	"lodim/internal/rat"
)

// Relation is the sense of a linear constraint.
type Relation int

const (
	LE Relation = iota // a·x ≤ b
	GE                 // a·x ≥ b
	EQ                 // a·x = b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is a single linear constraint a·x (op) b. Coeffs must have
// exactly NumVars entries.
type Constraint struct {
	Coeffs []rat.Rat
	Op     Relation
	RHS    rat.Rat
	Name   string // optional, for diagnostics
}

// Bound is an optional variable bound.
type Bound struct {
	Valid bool
	Value rat.Rat
}

// BoundAt returns a set bound with the given value.
func BoundAt(v rat.Rat) Bound { return Bound{Valid: true, Value: v} }

// Problem is a linear program: minimize C·x subject to Constraints and
// bounds. Maximization is expressed by negating C.
type Problem struct {
	NumVars     int
	C           []rat.Rat
	Constraints []Constraint
	Lower       []Bound // optional; nil means all free below
	Upper       []Bound // optional; nil means all free above
}

// Status describes the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []rat.Rat // variable values in original model space (Optimal only)
	Objective rat.Rat   // c·x at the optimum (Optimal only)
}

// ErrBadModel reports a structurally invalid problem.
var ErrBadModel = errors.New("lp: invalid model")

// Validate checks the structural consistency of the problem.
func (p *Problem) Validate() error {
	if p.NumVars < 0 {
		return fmt.Errorf("%w: negative NumVars", ErrBadModel)
	}
	if len(p.C) != p.NumVars {
		return fmt.Errorf("%w: len(C) = %d, want %d", ErrBadModel, len(p.C), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("%w: constraint %d has %d coefficients, want %d", ErrBadModel, i, len(c.Coeffs), p.NumVars)
		}
	}
	if p.Lower != nil && len(p.Lower) != p.NumVars {
		return fmt.Errorf("%w: len(Lower) = %d, want %d", ErrBadModel, len(p.Lower), p.NumVars)
	}
	if p.Upper != nil && len(p.Upper) != p.NumVars {
		return fmt.Errorf("%w: len(Upper) = %d, want %d", ErrBadModel, len(p.Upper), p.NumVars)
	}
	for j := 0; j < p.NumVars; j++ {
		lo, hasLo := p.lowerAt(j)
		up, hasUp := p.upperAt(j)
		if hasLo && hasUp && up.Less(lo) {
			return fmt.Errorf("%w: variable %d has lower bound %v above upper bound %v", ErrBadModel, j, lo, up)
		}
	}
	return nil
}

func (p *Problem) lowerAt(j int) (rat.Rat, bool) {
	if p.Lower == nil || !p.Lower[j].Valid {
		return rat.Zero(), false
	}
	return p.Lower[j].Value, true
}

func (p *Problem) upperAt(j int) (rat.Rat, bool) {
	if p.Upper == nil || !p.Upper[j].Valid {
		return rat.Zero(), false
	}
	return p.Upper[j].Value, true
}

// Solve runs the two-phase simplex and returns the solution. The error
// is non-nil only for invalid models; infeasibility and unboundedness
// are reported through Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	std := standardize(p)
	tab := newTableau(std)
	status := tab.solve()
	switch status {
	case Infeasible:
		return &Solution{Status: Infeasible}, nil
	case Unbounded:
		return &Solution{Status: Unbounded}, nil
	}
	xStd := tab.extract()
	x := std.recover(xStd)
	obj := rat.Dot(p.C, x)
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}
