package lp

import "lodim/internal/rat"

// tableau is a dense simplex tableau over exact rationals. Columns
// 0…n-1 are the standard-form variables; columns n…n+m-1 are the
// phase-1 artificial variables. The row data a is kept in the
// "updated" form B⁻¹A (and b = B⁻¹b̂), so reduced costs are computed
// directly from the basis costs each iteration. Bland's rule makes
// cycling impossible, so no perturbation is needed even on the highly
// degenerate problems the mapping formulations produce.
type tableau struct {
	m, n  int // constraint rows, standard variables (excluding artificials)
	a     [][]rat.Rat
	b     []rat.Rat
	costs []rat.Rat // phase-2 costs for standard variables
	basis []int     // basis[i] = column basic in row i
}

func newTableau(s *stdProblem) *tableau {
	m, n := len(s.a), s.nVars
	t := &tableau{m: m, n: n, costs: s.c, basis: make([]int, m)}
	t.a = make([][]rat.Rat, m)
	t.b = make([]rat.Rat, m)
	for i := 0; i < m; i++ {
		row := make([]rat.Rat, n+m)
		copy(row, s.a[i])
		row[n+i] = rat.One() // artificial
		t.a[i] = row
		t.b[i] = s.b[i]
		t.basis[i] = n + i
	}
	return t
}

// solve runs both phases. It returns Optimal, Infeasible or Unbounded.
func (t *tableau) solve() Status {
	// Phase 1: minimize the sum of artificials.
	phase1 := make([]rat.Rat, t.n+t.m)
	for j := t.n; j < t.n+t.m; j++ {
		phase1[j] = rat.One()
	}
	if st := t.iterate(phase1, true); st == Unbounded {
		// The phase-1 objective is bounded below by zero; unbounded here
		// would indicate a programming error.
		panic("lp: phase 1 reported unbounded")
	}
	if t.objective(phase1).Sign() > 0 {
		return Infeasible
	}
	t.purgeArtificials()

	// Phase 2: minimize the real objective.
	phase2 := make([]rat.Rat, t.n+t.m)
	copy(phase2, t.costs)
	return t.iterate(phase2, false)
}

// objective returns c_B·b for the given cost vector.
func (t *tableau) objective(c []rat.Rat) rat.Rat {
	obj := rat.Zero()
	for i := 0; i < t.m; i++ {
		obj = obj.Add(c[t.basis[i]].Mul(t.b[i]))
	}
	return obj
}

// iterate runs primal simplex iterations with Bland's rule until
// optimality or unboundedness. When allowArtificial is false, artificial
// columns may not enter the basis.
func (t *tableau) iterate(c []rat.Rat, allowArtificial bool) Status {
	for {
		enter := -1
		limit := t.n
		if allowArtificial {
			limit = t.n + t.m
		}
		// Reduced cost r_j = c_j - c_B·a_j; Bland: first negative wins.
		for j := 0; j < limit; j++ {
			if t.isBasic(j) {
				continue
			}
			r := c[j]
			for i := 0; i < t.m; i++ {
				cb := c[t.basis[i]]
				if cb.IsZero() || t.a[i][j].IsZero() {
					continue
				}
				r = r.Sub(cb.Mul(t.a[i][j]))
			}
			if r.Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test; Bland's tie-break on smallest basis index.
		leave := -1
		var best rat.Rat
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij.Sign() <= 0 {
				continue
			}
			ratio := t.b[i].Div(aij)
			if leave < 0 || ratio.Less(best) || (ratio.Equal(best) && t.basis[i] < t.basis[leave]) {
				leave, best = i, ratio
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	p := t.a[leave][enter]
	inv := p.Inv()
	for j := range t.a[leave] {
		t.a[leave][j] = t.a[leave][j].Mul(inv)
	}
	t.b[leave] = t.b[leave].Mul(inv)
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f.IsZero() {
			continue
		}
		for j := range t.a[i] {
			t.a[i][j] = t.a[i][j].Sub(f.Mul(t.a[leave][j]))
		}
		t.b[i] = t.b[i].Sub(f.Mul(t.b[leave]))
	}
	t.basis[leave] = enter
}

// purgeArtificials removes artificial variables from the basis after a
// successful phase 1. A basic artificial (necessarily at value zero) is
// pivoted out through any non-artificial column with a non-zero entry
// in its row; if the whole row is zero the constraint is redundant and
// the row is dropped.
func (t *tableau) purgeArtificials() {
	for i := 0; i < t.m; {
		if t.basis[i] < t.n {
			i++
			continue
		}
		pivotCol := -1
		for j := 0; j < t.n; j++ {
			if !t.isBasic(j) && !t.a[i][j].IsZero() {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
			i++
			continue
		}
		// Redundant row: drop it.
		t.a = append(t.a[:i], t.a[i+1:]...)
		t.b = append(t.b[:i], t.b[i+1:]...)
		t.basis = append(t.basis[:i], t.basis[i+1:]...)
		t.m--
	}
}

// extract returns the standard-form solution vector.
func (t *tableau) extract() []rat.Rat {
	x := make([]rat.Rat, t.n)
	for i, bj := range t.basis {
		if bj < t.n {
			x[bj] = t.b[i]
		}
	}
	return x
}
