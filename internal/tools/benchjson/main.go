// Command benchjson converts `go test -bench` text output (stdin) into
// a stable JSON document (stdout), so benchmark runs can be diffed and
// compared against a committed baseline:
//
//	go test -run '^$' -bench=. -benchmem ./... | go run ./internal/tools/benchjson
//
// Output is sorted by (package, benchmark name), making the document
// independent of package scheduling order.
//
// With -diff it instead compares two previously captured documents:
//
//	go run ./internal/tools/benchjson -diff BENCH_baseline.json BENCH_pr6.json
//
// printing per-benchmark ns/op, B/op and allocs/op deltas and marking
// any metric that worsened by more than -threshold (default 10%) as
// REGRESSED. With -fail, one or more regressions make the exit status
// nonzero, so the comparison can gate CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Report is the whole document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output. Header lines (goos/goarch/
// pkg/cpu) set the context for subsequent Benchmark lines; everything
// else (PASS, ok, test logs) is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		a, b := rep.Benchmarks[i], rep.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
	return rep, nil
}

// parseLine parses one "BenchmarkName-P  N  x ns/op  [y B/op  z allocs/op]"
// line. ok=false skips non-result lines that merely start with
// "Benchmark" (e.g. a benchmark's own log output).
func parseLine(line string) (Benchmark, bool, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: f[0], Procs: 1}
	if i := strings.LastIndexByte(f[0], '-'); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			b.Name, b.Procs = f[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b.Iterations = iters
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("benchjson: bad value %q in %q", f[i], line)
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		case "MB/s":
			b.MBPerSec = v
		}
	}
	return b, true, nil
}

func main() {
	diff := flag.Bool("diff", false, "compare two captured JSON reports: benchjson -diff OLD NEW")
	threshold := flag.Float64("threshold", 0.10, "relative worsening beyond which a metric is REGRESSED")
	fail := flag.Bool("fail", false, "with -diff: exit nonzero when any benchmark regressed")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-threshold 0.10] [-fail] OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold, *fail))
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
