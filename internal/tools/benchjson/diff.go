package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// metricDelta is the before/after pair for one metric of one benchmark.
// Pct is the relative change (new-old)/old; +Inf when old was zero and
// new is not. Regressed applies the higher-is-worse rule against the
// caller's threshold.
type metricDelta struct {
	Unit      string
	Old, New  float64
	Pct       float64
	Regressed bool
}

// benchDiff is the comparison of one benchmark across two reports.
// OnlyOld/OnlyNew flag benchmarks present in a single report (renamed,
// added or removed) — reported but never counted as regressions.
type benchDiff struct {
	Pkg, Name string
	Metrics   []metricDelta
	OnlyOld   bool
	OnlyNew   bool
}

func (d *benchDiff) regressed() bool {
	for _, m := range d.Metrics {
		if m.Regressed {
			return true
		}
	}
	return false
}

func key(b Benchmark) string { return b.Pkg + "\x00" + b.Name }

// deltaOf compares one metric. All benchmark metrics here (ns/op, B/op,
// allocs/op) are higher-is-worse, so a regression is new exceeding old
// by more than threshold (relative).
func deltaOf(unit string, old, new float64, threshold float64) metricDelta {
	d := metricDelta{Unit: unit, Old: old, New: new}
	switch {
	case old == 0 && new == 0:
		d.Pct = 0
	case old == 0:
		d.Pct = math.Inf(1)
		d.Regressed = true
	default:
		d.Pct = (new - old) / old
		d.Regressed = d.Pct > threshold
	}
	return d
}

// diffReports matches benchmarks by (pkg, name) and computes per-metric
// deltas. Metrics absent from either side (e.g. a run without -benchmem
// reports no B/op) are skipped rather than treated as zero.
func diffReports(oldRep, newRep *Report, threshold float64) []benchDiff {
	olds := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		olds[key(b)] = b
	}
	var out []benchDiff
	seen := make(map[string]bool, len(newRep.Benchmarks))
	for _, nb := range newRep.Benchmarks {
		seen[key(nb)] = true
		ob, ok := olds[key(nb)]
		if !ok {
			out = append(out, benchDiff{Pkg: nb.Pkg, Name: nb.Name, OnlyNew: true})
			continue
		}
		d := benchDiff{Pkg: nb.Pkg, Name: nb.Name}
		d.Metrics = append(d.Metrics, deltaOf("ns/op", ob.NsPerOp, nb.NsPerOp, threshold))
		if ob.BytesPerOp != 0 || nb.BytesPerOp != 0 {
			d.Metrics = append(d.Metrics, deltaOf("B/op", float64(ob.BytesPerOp), float64(nb.BytesPerOp), threshold))
		}
		if ob.AllocsPerOp != 0 || nb.AllocsPerOp != 0 {
			d.Metrics = append(d.Metrics, deltaOf("allocs/op", float64(ob.AllocsPerOp), float64(nb.AllocsPerOp), threshold))
		}
		out = append(out, d)
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[key(ob)] {
			out = append(out, benchDiff{Pkg: ob.Pkg, Name: ob.Name, OnlyOld: true})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func fmtPct(p float64) string {
	if math.IsInf(p, 1) {
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", p*100)
}

func fmtVal(v float64) string { return fmt.Sprintf("%.0f", v) }

// writeDiff renders the comparison and returns the number of regressed
// benchmarks.
func writeDiff(w io.Writer, diffs []benchDiff, threshold float64) int {
	regressions := 0
	for _, d := range diffs {
		name := d.Pkg + " " + d.Name
		switch {
		case d.OnlyOld:
			fmt.Fprintf(w, "%-72s removed (only in OLD)\n", name)
			continue
		case d.OnlyNew:
			fmt.Fprintf(w, "%-72s added (only in NEW)\n", name)
			continue
		}
		line := fmt.Sprintf("%-72s", name)
		for _, m := range d.Metrics {
			cell := fmt.Sprintf("%s %s→%s (%s)", m.Unit, fmtVal(m.Old), fmtVal(m.New), fmtPct(m.Pct))
			if m.Regressed {
				cell += " REGRESSED"
			}
			line += "  " + cell
		}
		fmt.Fprintln(w, line)
		if d.regressed() {
			regressions++
		}
	}
	fmt.Fprintf(w, "\n%d benchmarks compared, %d regressed (threshold %+.0f%%)\n",
		len(diffs), regressions, threshold*100)
	return regressions
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &Report{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("benchjson: parse %s: %w", path, err)
	}
	return rep, nil
}

// runDiff implements `benchjson -diff OLD NEW`: exit status 1 when any
// benchmark regressed beyond the threshold and -fail was given, 2 on
// usage/IO errors.
func runDiff(oldPath, newPath string, threshold float64, failOnRegression bool) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	regressions := writeDiff(os.Stdout, diffReports(oldRep, newRep, threshold), threshold)
	if regressions > 0 && failOnRegression {
		return 1
	}
	return 0
}
