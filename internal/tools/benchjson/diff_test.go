package main

import (
	"math"
	"strings"
	"testing"
)

func rep(bs ...Benchmark) *Report { return &Report{Benchmarks: bs} }

func TestDiffReportsDeltasAndRegressions(t *testing.T) {
	oldRep := rep(
		Benchmark{Pkg: "p", Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 800, AllocsPerOp: 40},
		Benchmark{Pkg: "p", Name: "BenchmarkB", NsPerOp: 500},
		Benchmark{Pkg: "p", Name: "BenchmarkGone", NsPerOp: 1},
	)
	newRep := rep(
		Benchmark{Pkg: "p", Name: "BenchmarkA", NsPerOp: 900, BytesPerOp: 80, AllocsPerOp: 4},
		Benchmark{Pkg: "p", Name: "BenchmarkB", NsPerOp: 600}, // +20% — regressed at 10%
		Benchmark{Pkg: "p", Name: "BenchmarkNew", NsPerOp: 2},
	)
	diffs := diffReports(oldRep, newRep, 0.10)
	if len(diffs) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(diffs), diffs)
	}
	byName := map[string]benchDiff{}
	for _, d := range diffs {
		byName[d.Name] = d
	}
	a := byName["BenchmarkA"]
	if a.regressed() {
		t.Errorf("A (all improved) flagged regressed: %+v", a)
	}
	if len(a.Metrics) != 3 || a.Metrics[0].Unit != "ns/op" || a.Metrics[0].Pct >= 0 {
		t.Errorf("A metrics: %+v", a.Metrics)
	}
	if got := a.Metrics[2]; got.Unit != "allocs/op" || math.Abs(got.Pct-(-0.9)) > 1e-9 {
		t.Errorf("A allocs delta: %+v", got)
	}
	b := byName["BenchmarkB"]
	if !b.regressed() {
		t.Errorf("B (+20%% ns/op) not flagged at threshold 10%%: %+v", b)
	}
	if len(b.Metrics) != 1 {
		t.Errorf("B should only compare ns/op (no -benchmem data): %+v", b.Metrics)
	}
	if !byName["BenchmarkGone"].OnlyOld || !byName["BenchmarkNew"].OnlyNew {
		t.Errorf("presence flags: %+v %+v", byName["BenchmarkGone"], byName["BenchmarkNew"])
	}

	// The same pair at a looser threshold has no regressions.
	for _, d := range diffReports(oldRep, newRep, 0.25) {
		if d.regressed() {
			t.Errorf("threshold 25%%: %s still regressed", d.Name)
		}
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	oldRep := rep(Benchmark{Pkg: "p", Name: "BenchmarkZ", NsPerOp: 10, AllocsPerOp: 0, BytesPerOp: 0})
	newRep := rep(Benchmark{Pkg: "p", Name: "BenchmarkZ", NsPerOp: 10, AllocsPerOp: 3, BytesPerOp: 64})
	diffs := diffReports(oldRep, newRep, 0.10)
	if len(diffs) != 1 || !diffs[0].regressed() {
		t.Fatalf("0→3 allocs must regress: %+v", diffs)
	}
	for _, m := range diffs[0].Metrics {
		if m.Unit != "ns/op" && !math.IsInf(m.Pct, 1) {
			t.Errorf("zero baseline pct should be +inf: %+v", m)
		}
	}
}

func TestWriteDiffOutput(t *testing.T) {
	oldRep := rep(Benchmark{Pkg: "p", Name: "BenchmarkB", NsPerOp: 500})
	newRep := rep(Benchmark{Pkg: "p", Name: "BenchmarkB", NsPerOp: 600})
	var sb strings.Builder
	n := writeDiff(&sb, diffReports(oldRep, newRep, 0.10), 0.10)
	if n != 1 {
		t.Fatalf("regression count = %d, want 1", n)
	}
	out := sb.String()
	for _, want := range []string{"BenchmarkB", "ns/op 500→600", "+20.0%", "REGRESSED", "1 benchmarks compared, 1 regressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
