package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lodim/internal/schedule
cpu: Example CPU @ 2.00GHz
BenchmarkFindOptimal-8   	     120	   9876543 ns/op	  4096 B/op	      12 allocs/op
BenchmarkJoint-8         	      10	 123456789 ns/op
PASS
ok  	lodim/internal/schedule	2.345s
pkg: lodim/internal/conflict
BenchmarkDecide-8        	   50000	     25000 ns/op	     0 B/op	       0 allocs/op
Benchmark log line that is not a result
PASS
ok  	lodim/internal/conflict	1.2s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Example CPU @ 2.00GHz" {
		t.Errorf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	// Sorted by (pkg, name): conflict first.
	b := rep.Benchmarks[0]
	if b.Pkg != "lodim/internal/conflict" || b.Name != "BenchmarkDecide" || b.Procs != 8 {
		t.Errorf("first benchmark: %+v", b)
	}
	if b.Iterations != 50000 || b.NsPerOp != 25000 {
		t.Errorf("metrics: %+v", b)
	}
	fo := rep.Benchmarks[1]
	if fo.Name != "BenchmarkFindOptimal" || fo.BytesPerOp != 4096 || fo.AllocsPerOp != 12 {
		t.Errorf("FindOptimal metrics: %+v", fo)
	}
	if rep.Benchmarks[2].Name != "BenchmarkJoint" || rep.Benchmarks[2].BytesPerOp != 0 {
		t.Errorf("Joint (no -benchmem fields): %+v", rep.Benchmarks[2])
	}
}

func TestParseSubBenchmarkAndFractionalNs(t *testing.T) {
	in := "pkg: p\nBenchmarkX/case=3-16 \t 1000000000 \t 0.25 ns/op\n"
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("parsed %d, want 1", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkX/case=3" || b.Procs != 16 || b.NsPerOp != 0.25 {
		t.Errorf("got %+v", b)
	}
}

func TestParseRejectsCorruptValue(t *testing.T) {
	in := "BenchmarkBad-4 \t 10 \t notanumber ns/op\n"
	if _, err := parse(strings.NewReader(in)); err == nil {
		t.Error("corrupt value accepted")
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks == nil || len(rep.Benchmarks) != 0 {
		t.Errorf("want empty non-nil slice, got %#v", rep.Benchmarks)
	}
}
