package corpus

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testCorpus generates a small solved corpus once per test binary.
var testCorpus struct {
	meta  Meta
	insts []Instance
}

func corpusFixture(t *testing.T) (Meta, []Instance) {
	t.Helper()
	if testCorpus.insts == nil {
		meta, insts, err := Generate(context.Background(), 42, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		testCorpus.meta, testCorpus.insts = meta, insts
	}
	return testCorpus.meta, testCorpus.insts
}

func TestPlanSumsAndShares(t *testing.T) {
	for _, count := range []int{1, 7, 100, 10000} {
		plan := Plan(count)
		total := 0
		for _, fam := range Families {
			total += plan[fam]
		}
		if total != count {
			t.Errorf("Plan(%d) allocates %d instances", count, total)
		}
	}
	plan := Plan(10000)
	want := map[string]int{"matmul": 2500, "transitive": 1500, "convolution": 2500, "bitlevel": 1500, "adversarial": 2000}
	for fam, n := range want {
		if plan[fam] != n {
			t.Errorf("Plan(10000)[%s] = %d, want %d", fam, plan[fam], n)
		}
	}
}

// TestManifestDeterministicRoundTrip: the same seed yields a byte-
// identical manifest, and Read inverts Write exactly.
func TestManifestDeterministicRoundTrip(t *testing.T) {
	meta, insts := corpusFixture(t)

	var buf1, buf2 bytes.Buffer
	if err := Write(&buf1, meta, insts); err != nil {
		t.Fatal(err)
	}
	meta2, insts2, err := Generate(context.Background(), 42, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf2, meta2, insts2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two generations from one seed are not byte-identical")
	}

	rmeta, rinsts, err := Read(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rmeta.Seed != meta.Seed || rmeta.Count != len(rinsts) || len(rinsts) != len(insts) {
		t.Fatalf("round-trip meta %+v over %d instances", rmeta, len(rinsts))
	}
	var buf3 bytes.Buffer
	if err := Write(&buf3, rmeta, rinsts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
		t.Fatal("Write ∘ Read is not the identity on the manifest bytes")
	}
}

// TestInstanceRegenerableInIsolation: any single instance can be
// rebuilt from (seed, family, index) without generating its
// predecessors.
func TestInstanceRegenerableInIsolation(t *testing.T) {
	_, insts := corpusFixture(t)
	for _, probe := range []int{0, 17, 63, len(insts) - 1} {
		inst := insts[probe]
		var idx int
		if _, err := fmtSscanf(inst.ID, inst.Family, &idx); err != nil {
			t.Fatalf("instance ID %q does not parse: %v", inst.ID, err)
		}
		regen := NewInstance(42, inst.Family, idx)
		if regen.ID != inst.ID || regen.Dims != inst.Dims {
			t.Fatalf("regenerated %q differs: %+v vs %+v", inst.ID, regen, inst)
		}
		if !equalI64(regen.Bounds, inst.Bounds) || !equalDeps(regen.Dependencies, inst.Dependencies) {
			t.Fatalf("regenerated %q problem differs: %+v vs %+v", inst.ID, regen, inst)
		}
	}
}

// TestSampleStratifiedAndDeterministic: the sample is reproducible for
// a seed and every family is represented proportionally.
func TestSampleStratifiedAndDeterministic(t *testing.T) {
	_, insts := corpusFixture(t)
	s1 := Sample(insts, 30, 9)
	s2 := Sample(insts, 30, 9)
	if len(s1) != 30 || len(s2) != 30 {
		t.Fatalf("sample sizes %d, %d, want 30", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].ID != s2[i].ID {
			t.Fatalf("sample not deterministic at %d: %s vs %s", i, s1[i].ID, s2[i].ID)
		}
	}
	perFamily := map[string]int{}
	for _, inst := range s1 {
		perFamily[inst.Family]++
	}
	for _, fam := range Families {
		if perFamily[fam] == 0 {
			t.Errorf("family %s absent from a stratified sample of 30", fam)
		}
	}
	if got := Sample(insts, len(insts)+5, 9); len(got) != len(insts) {
		t.Errorf("oversized sample returned %d instances", len(got))
	}
}

// TestCheckSampleAgainstVerifier: replaying a sample through the
// engine and the independent verifier reproduces every recorded
// outcome.
func TestCheckSampleAgainstVerifier(t *testing.T) {
	_, insts := corpusFixture(t)
	divs, err := CheckSample(context.Background(), insts, 40, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("divergence %s: %v", d.ID, d.Err)
	}
}

// TestCheckParetoSampleAgainstVerifier: the multi-objective oracle —
// every sampled instance's Pareto front leads with the recorded
// optimal time and the whole front is certified by the independent
// Pareto verifier; infeasible instances stay infeasible.
func TestCheckParetoSampleAgainstVerifier(t *testing.T) {
	_, insts := corpusFixture(t)
	divs, err := CheckParetoSample(context.Background(), insts, 40, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("divergence %s: %v", d.ID, d.Err)
	}
}

// TestCheckParetoDetectsTamperedOutcome: the Pareto oracle fires on a
// manifest whose recorded optimum or feasibility verdict is wrong.
func TestCheckParetoDetectsTamperedOutcome(t *testing.T) {
	_, insts := corpusFixture(t)
	ctx := context.Background()
	var feasible, infeasible *Instance
	for i := range insts {
		if insts[i].Feasible && feasible == nil {
			feasible = &insts[i]
		}
		if !insts[i].Feasible && infeasible == nil {
			infeasible = &insts[i]
		}
	}
	if feasible == nil || infeasible == nil {
		t.Fatal("fixture lacks a feasible or infeasible instance")
	}
	tampered := *feasible
	tampered.TotalTime++
	if err := CheckParetoInstance(ctx, &tampered); err == nil {
		t.Error("tampered total time not detected")
	}
	tampered = *feasible
	tampered.Feasible = false
	tampered.TotalTime, tampered.Processors = 0, 0
	if err := CheckParetoInstance(ctx, &tampered); err == nil {
		t.Error("tampered feasibility not detected")
	}
	tampered = *infeasible
	tampered.Feasible = true
	tampered.TotalTime, tampered.Processors = 10, 10
	if err := CheckParetoInstance(ctx, &tampered); err == nil {
		t.Error("infeasible instance recorded feasible not detected")
	}
}

// TestCheckDetectsTamperedOutcome: the oracle actually fires — a
// manifest with a wrong total time, a wrong feasibility verdict, or a
// wrong processor count is reported as a divergence.
func TestCheckDetectsTamperedOutcome(t *testing.T) {
	_, insts := corpusFixture(t)
	ctx := context.Background()
	var feasible, infeasible *Instance
	for i := range insts {
		if insts[i].Feasible && feasible == nil {
			feasible = &insts[i]
		}
		if !insts[i].Feasible && infeasible == nil {
			infeasible = &insts[i]
		}
	}
	if feasible == nil || infeasible == nil {
		t.Fatal("fixture lacks a feasible or infeasible instance")
	}
	tampered := *feasible
	tampered.TotalTime++
	if err := CheckInstance(ctx, &tampered); err == nil {
		t.Error("tampered total time not detected")
	}
	tampered = *feasible
	tampered.Feasible = false
	tampered.TotalTime, tampered.Processors = 0, 0
	if err := CheckInstance(ctx, &tampered); err == nil {
		t.Error("tampered feasibility not detected")
	}
	tampered = *infeasible
	tampered.Feasible = true
	tampered.TotalTime, tampered.Processors = 10, 10
	if err := CheckInstance(ctx, &tampered); err == nil {
		t.Error("infeasible instance recorded feasible not detected")
	}
	tampered = *feasible
	tampered.Processors += 3
	if err := CheckInstance(ctx, &tampered); err == nil {
		t.Error("tampered processor count not detected")
	}
}

// TestMetamorphicAxisPermutation: restating an instance under an axis
// permutation never changes feasibility, total time, or processor
// count.
func TestMetamorphicAxisPermutation(t *testing.T) {
	_, insts := corpusFixture(t)
	perms3 := [][]int{{1, 2, 0}, {2, 0, 1}, {1, 0, 2}}
	perms := map[int][][]int{
		2: {{1, 0}},
		3: perms3,
		4: {{3, 1, 0, 2}, {1, 2, 3, 0}},
	}
	checked := 0
	for i := range insts {
		if i%4 != 0 { // a quarter of the fixture keeps the test fast
			continue
		}
		inst := insts[i]
		for _, perm := range perms[len(inst.Bounds)] {
			p := PermuteAxes(inst, perm)
			if err := Solve(context.Background(), &p); err != nil {
				t.Fatalf("%s permuted %v: %v", inst.ID, perm, err)
			}
			if p.Feasible != inst.Feasible || p.TotalTime != inst.TotalTime || p.Processors != inst.Processors {
				t.Errorf("%s under σ=%v: feasible=%v time=%d procs=%d, want %v/%d/%d",
					inst.ID, perm, p.Feasible, p.TotalTime, p.Processors,
					inst.Feasible, inst.TotalTime, inst.Processors)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no permutations checked")
	}
}

// TestCommittedManifest: the manifest in the repository parses, has
// the advertised shape, regenerates instance statements bit-exactly
// from its seed, and a few spot instances replay cleanly.
func TestCommittedManifest(t *testing.T) {
	path := filepath.Join("..", "..", "corpus", "manifest.jsonl")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("committed manifest not present: %v", err)
	}
	meta, insts, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Count < 10000 {
		t.Fatalf("committed corpus has %d instances, want ≥ 10000", meta.Count)
	}
	perFamily := map[string]int{}
	feasible := 0
	for i := range insts {
		perFamily[insts[i].Family]++
		if insts[i].Feasible {
			feasible++
		}
	}
	for _, fam := range Families {
		if perFamily[fam] != meta.Families[fam] {
			t.Errorf("family %s: %d instances, header says %d", fam, perFamily[fam], meta.Families[fam])
		}
	}
	if feasible == len(insts) {
		t.Error("committed corpus has no infeasible instances — the adversarial family is broken")
	}
	// Problem statements regenerate bit-exactly from the seed.
	for _, probe := range []int{0, 1234, 9999} {
		inst := insts[probe]
		var idx int
		if _, err := fmtSscanf(inst.ID, inst.Family, &idx); err != nil {
			t.Fatalf("instance ID %q: %v", inst.ID, err)
		}
		regen := NewInstance(meta.Seed, inst.Family, idx)
		if !equalI64(regen.Bounds, inst.Bounds) || !equalDeps(regen.Dependencies, inst.Dependencies) ||
			regen.Dims != inst.Dims || regen.MaxEntry != inst.MaxEntry || regen.MaxCost != inst.MaxCost {
			t.Errorf("committed %s does not regenerate from seed %d", inst.ID, meta.Seed)
		}
	}
	// A thin replay slice; make corpus-check covers the wide sample.
	divs, err := CheckSample(context.Background(), insts, 25, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Errorf("divergence %s: %v", d.ID, d.Err)
	}
}

// fmtSscanf parses "<family>/<index>" instance IDs.
func fmtSscanf(id, family string, idx *int) (int, error) {
	return fmt.Sscanf(id, family+"/%d", idx)
}

func equalI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalDeps(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalI64(a[i], b[i]) {
			return false
		}
	}
	return true
}
