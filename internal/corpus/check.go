package corpus

import (
	"context"
	"errors"
	"fmt"

	"lodim/internal/schedule"
	"lodim/internal/verify"
)

// The check path is the regression oracle: each sampled instance is
// re-solved by today's engine and compared against the recorded
// outcome, then — when feasible — the winning mapping is certified by
// the independent verification engine, which re-derives schedule
// validity, conflict-freedom, and the total time from first
// principles. A divergence on any axis fails the check.

// CheckInstance replays one instance. It returns nil when the engine
// and verifier reproduce the recorded outcome exactly.
func CheckInstance(ctx context.Context, inst *Instance) error {
	algo, err := inst.Algorithm()
	if err != nil {
		return err
	}
	res, err := schedule.FindJointMappingContext(ctx, algo, inst.Dims, inst.spaceOptions())
	if errors.Is(err, schedule.ErrNoSchedule) {
		if inst.Feasible {
			return fmt.Errorf("corpus: %s: engine reports infeasible, manifest recorded total_time=%d processors=%d",
				inst.ID, inst.TotalTime, inst.Processors)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("corpus: %s: engine: %w", inst.ID, err)
	}
	if !inst.Feasible {
		return fmt.Errorf("corpus: %s: engine found a mapping (time=%d), manifest recorded infeasible", inst.ID, res.Time)
	}
	if res.Time != inst.TotalTime || res.Processors != inst.Processors {
		return fmt.Errorf("corpus: %s: engine outcome time=%d processors=%d, manifest recorded time=%d processors=%d",
			inst.ID, res.Time, res.Processors, inst.TotalTime, inst.Processors)
	}
	// Independent certification of the engine's winner. Optimality
	// analysis is skipped — the manifest already pins the optimum; the
	// certificate must confirm validity, conflict-freedom, and the
	// recorded total time.
	cert, err := verify.CertifyContext(ctx, algo, res.Mapping.S, res.Mapping.Pi, &verify.Options{SkipOptimality: true})
	if err != nil {
		return fmt.Errorf("corpus: %s: verifier: %w", inst.ID, err)
	}
	if !cert.Valid || !cert.ConflictFree {
		return fmt.Errorf("corpus: %s: verifier rejected the engine's mapping: %s (%s)",
			inst.ID, cert.FailedWitness, cert.FailedDetail)
	}
	if cert.TotalTime != inst.TotalTime {
		return fmt.Errorf("corpus: %s: verifier total time %d, manifest recorded %d", inst.ID, cert.TotalTime, inst.TotalTime)
	}
	return nil
}

// CheckParetoInstance replays one instance through the multi-objective
// engine and cross-checks it against the recorded single-objective
// outcome: a feasible instance's front must lead with a member at the
// recorded optimal total time, the whole front must pass the Pareto
// verifier (member certificates, non-domination, pinned order), and an
// infeasible instance must stay infeasible.
func CheckParetoInstance(ctx context.Context, inst *Instance) error {
	algo, err := inst.Algorithm()
	if err != nil {
		return err
	}
	res, err := schedule.FindParetoContext(ctx, algo, inst.Dims, &schedule.ParetoOptions{Space: *inst.spaceOptions()})
	if errors.Is(err, schedule.ErrNoSchedule) {
		if inst.Feasible {
			return fmt.Errorf("corpus: %s: pareto engine reports infeasible, manifest recorded total_time=%d", inst.ID, inst.TotalTime)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("corpus: %s: pareto engine: %w", inst.ID, err)
	}
	if !inst.Feasible {
		return fmt.Errorf("corpus: %s: pareto engine found a front (time=%d), manifest recorded infeasible",
			inst.ID, res.Front[0].Vector[schedule.ObjTime])
	}
	// The pinned front order leads with the time axis, so the head is
	// the time-optimal member — it must land exactly on the recorded
	// single-objective optimum.
	if got := res.Front[0].Vector[schedule.ObjTime]; got != inst.TotalTime {
		return fmt.Errorf("corpus: %s: pareto min-time member at time=%d, manifest recorded %d", inst.ID, got, inst.TotalTime)
	}
	members := make([]verify.ParetoInput, len(res.Front))
	for i, m := range res.Front {
		members[i] = verify.ParetoInput{S: m.Mapping.S, Pi: m.Mapping.Pi, Vector: [verify.ParetoAxes]int64(m.Vector)}
	}
	cert, err := verify.CertifyPareto(ctx, algo, members, res.TimeBound, &verify.Options{SkipOptimality: true})
	if err != nil {
		return fmt.Errorf("corpus: %s: pareto verifier: %w", inst.ID, err)
	}
	if cerr := cert.Err(); cerr != nil {
		return fmt.Errorf("corpus: %s: pareto verifier rejected the front: %w", inst.ID, cerr)
	}
	return nil
}

// Divergence pairs a failed instance with its mismatch, for reporting.
type Divergence struct {
	ID  string
	Err error
}

// CheckSample replays a deterministic stratified sample of n
// instances across workers and collects every divergence (it does not
// stop at the first, so a report names all regressed instances).
func CheckSample(ctx context.Context, insts []Instance, n int, seed uint64, workers int) ([]Divergence, error) {
	sample := Sample(insts, n, seed)
	divs := make([]Divergence, len(sample))
	err := forAll(ctx, len(sample), workers, func(i int) error {
		if cerr := CheckInstance(ctx, &sample[i]); cerr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			divs[i] = Divergence{ID: sample[i].ID, Err: cerr}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := divs[:0]
	for _, d := range divs {
		if d.Err != nil {
			out = append(out, d)
		}
	}
	return out, nil
}

// CheckParetoSample is CheckSample's multi-objective twin: the same
// deterministic stratified sample replayed through CheckParetoInstance.
func CheckParetoSample(ctx context.Context, insts []Instance, n int, seed uint64, workers int) ([]Divergence, error) {
	sample := Sample(insts, n, seed)
	divs := make([]Divergence, len(sample))
	err := forAll(ctx, len(sample), workers, func(i int) error {
		if cerr := CheckParetoInstance(ctx, &sample[i]); cerr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			divs[i] = Divergence{ID: sample[i].ID, Err: cerr}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := divs[:0]
	for _, d := range divs {
		if d.Err != nil {
			out = append(out, d)
		}
	}
	return out, nil
}
