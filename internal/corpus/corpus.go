// Package corpus generates, stores, and replays the committed
// scenario corpus: a large seeded set of mapping problems — classic
// algorithm families, bit-level variants, and adversarial edge cases —
// each carrying the outcome the engines produced when the corpus was
// built (feasibility, total execution time, processor count). The
// committed manifest is a regression oracle: replaying a stratified
// sample through today's engines and the independent verifier must
// reproduce every recorded outcome exactly.
//
// Determinism is the load-bearing property. Every instance is derived
// from its own RNG, seeded by (corpus seed, family, index), so a
// single instance can be regenerated without materializing its
// predecessors, and the same seed always yields a byte-identical
// manifest. Outcomes are deterministic because the engines are: the
// joint search returns the same winner at any worker count.
package corpus

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// Families lists the scenario families in manifest order. The split
// leans on the paper's running examples (matrix product, transitive
// closure, convolution and its bit-level form) plus an adversarial
// family of degenerate, duplicated, wide, infeasible, and huge-bound
// instances.
var Families = []string{"matmul", "transitive", "convolution", "bitlevel", "adversarial"}

// familyShare is each family's share of the corpus in percent,
// parallel to Families.
var familyShare = []int{25, 15, 25, 15, 20}

// Meta is the manifest's first line: everything needed to regenerate
// or sample the corpus.
type Meta struct {
	Corpus  string `json:"corpus"`
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	Count   int    `json:"count"`
	// Families maps each family to its instance count; instance IDs are
	// "<family>/<index>" with indices 0..count-1.
	Families map[string]int `json:"families"`
}

// Instance is one scenario: the problem statement plus the recorded
// engine outcome. The problem fields mirror the service's map request
// (dependence vectors as rows), so an instance converts directly into
// an API body or a library call.
type Instance struct {
	ID           string    `json:"id"`
	Family       string    `json:"family"`
	Bounds       []int64   `json:"bounds"`
	Dependencies [][]int64 `json:"dependencies"`
	Dims         int       `json:"dims"`
	MaxEntry     int64     `json:"max_entry,omitempty"`
	MaxCost      int64     `json:"max_cost,omitempty"`

	// Recorded outcome: Feasible reports whether a conflict-free
	// mapping exists within the instance's bounds; TotalTime and
	// Processors are the optimum's figures when it does.
	Feasible   bool  `json:"feasible"`
	TotalTime  int64 `json:"total_time,omitempty"`
	Processors int64 `json:"processors,omitempty"`
}

// instanceRand derives the instance's private RNG. FNV-64a over the
// (seed, family, index) triple keeps instances independently
// regenerable: no instance's randomness depends on any other's.
func instanceRand(seed uint64, family string, idx int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, family, idx)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Plan splits count instances across the families by familyShare,
// handing remainder instances to the earliest families.
func Plan(count int) map[string]int {
	plan := make(map[string]int, len(Families))
	total := 0
	for i, fam := range Families {
		n := count * familyShare[i] / 100
		plan[fam] = n
		total += n
	}
	for i := 0; total < count; i++ {
		plan[Families[i%len(Families)]]++
		total++
	}
	return plan
}

// NewInstance generates the problem statement of instance idx of a
// family (outcome fields unset — see Solve).
func NewInstance(seed uint64, family string, idx int) Instance {
	r := instanceRand(seed, family, idx)
	inst := Instance{
		ID:     fmt.Sprintf("%s/%05d", family, idx),
		Family: family,
		Dims:   1,
	}
	unit := func(n, i int) []int64 {
		d := make([]int64, n)
		d[i] = 1
		return d
	}
	bounds := func(n int, lo, hi int64) []int64 {
		b := make([]int64, n)
		for i := range b {
			b[i] = lo + r.Int63n(hi-lo+1)
		}
		return b
	}
	switch family {
	case "matmul":
		// Matrix product (Example 2.1): three unit dependences over a
		// 3-D index set; every fourth instance targets a 2-D array.
		inst.Bounds = bounds(3, 2, 7)
		inst.Dependencies = [][]int64{unit(3, 0), unit(3, 1), unit(3, 2)}
		if idx%4 == 0 {
			inst.Dims = 2
		}
	case "transitive":
		// Transitive closure: the unit dependences plus a pipelining
		// dependence with a negative component, which forces the
		// schedule cone off the all-ones axis.
		inst.Bounds = bounds(3, 2, 4)
		inst.Dependencies = [][]int64{unit(3, 0), unit(3, 1), unit(3, 2), {1, 0, -1}}
	case "convolution":
		// Convolution (Example 5.1): n = 2 with dependence vectors
		// (1,0), (1,1), (0,1).
		inst.Bounds = bounds(2, 2, 12)
		inst.Dependencies = [][]int64{{1, 0}, {1, 1}, {0, 1}}
	case "bitlevel":
		// Bit-level convolution: a 4-D index set over small word
		// bounds, unit dependences plus a word-coupling vector; the
		// search is explicitly pinned to |s_ij| ≤ 1.
		inst.Bounds = bounds(4, 1, 3)
		inst.Dependencies = [][]int64{
			unit(4, 0), unit(4, 1), unit(4, 2), unit(4, 3), {1, 1, 0, 0},
		}
		inst.MaxEntry = 1
		if idx%5 == 0 {
			inst.Dims = 2
		}
	case "adversarial":
		switch idx % 5 {
		case 0:
			// Degenerate: a size-1 axis collapses the index set.
			inst.Bounds = []int64{1, 2 + r.Int63n(3), 2 + r.Int63n(6)}
			inst.Dependencies = [][]int64{unit(3, 0), unit(3, 1), unit(3, 2)}
			r.Shuffle(len(inst.Bounds), func(i, j int) {
				inst.Bounds[i], inst.Bounds[j] = inst.Bounds[j], inst.Bounds[i]
			})
		case 1:
			// Duplicated dependence columns must not change the answer.
			inst.Bounds = bounds(3, 2, 5)
			inst.Dependencies = [][]int64{unit(3, 0), unit(3, 0), {0, 1, 1}, {0, 1, 1}}
		case 2:
			// Wide entries: dependences with components up to ±3; the
			// leading +1 keeps a schedule certain to exist.
			inst.Bounds = bounds(3, 2, 4)
			m := 2 + r.Intn(3)
			deps := make([][]int64, m)
			for i := range deps {
				deps[i] = []int64{1 + r.Int63n(3), r.Int63n(7) - 3, r.Int63n(7) - 3}
			}
			inst.Dependencies = deps
		case 3:
			// Provably infeasible: the convolution dependences need
			// π ≥ (1,1), so Σ|π_i|μ_i ≥ μ₁+μ₂ ≥ 4 > MaxCost.
			inst.Bounds = bounds(2, 2, 9)
			inst.Dependencies = [][]int64{{1, 0}, {1, 1}, {0, 1}}
			inst.MaxCost = 1
		default:
			// Huge bounds: exercises the overflow-guarded arithmetic of
			// total time and processor counting.
			inst.Bounds = bounds(2, 50, 500)
			inst.Dependencies = [][]int64{{1, 0}, {0, 1}}
		}
	default:
		panic("corpus: unknown family " + family)
	}
	return inst
}

// Algorithm rebuilds the instance's uniform dependence algorithm
// (dependence rows become the columns of D).
func (inst *Instance) Algorithm() (*uda.Algorithm, error) {
	n := len(inst.Bounds)
	d := intmat.New(n, len(inst.Dependencies))
	for c, dep := range inst.Dependencies {
		if len(dep) != n {
			return nil, fmt.Errorf("corpus: %s: dependence %d has %d entries, want %d", inst.ID, c+1, len(dep), n)
		}
		d.SetCol(c, dep)
	}
	algo := &uda.Algorithm{
		Name: inst.ID,
		Set:  uda.IndexSet{Upper: append(intmat.Vector{}, inst.Bounds...)},
		D:    d,
	}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	return algo, nil
}

// spaceOptions translates the instance knobs into search options.
func (inst *Instance) spaceOptions() *schedule.SpaceOptions {
	return &schedule.SpaceOptions{
		MaxEntry: inst.MaxEntry,
		Schedule: schedule.Options{MaxCost: inst.MaxCost},
	}
}

// Solve runs the joint search and records the outcome in place. A
// definite ErrNoSchedule is an outcome (Feasible=false), not an error.
func Solve(ctx context.Context, inst *Instance) error {
	algo, err := inst.Algorithm()
	if err != nil {
		return err
	}
	res, err := schedule.FindJointMappingContext(ctx, algo, inst.Dims, inst.spaceOptions())
	if errors.Is(err, schedule.ErrNoSchedule) {
		inst.Feasible = false
		inst.TotalTime = 0
		inst.Processors = 0
		return nil
	}
	if err != nil {
		return fmt.Errorf("corpus: %s: %w", inst.ID, err)
	}
	inst.Feasible = true
	inst.TotalTime = res.Time
	inst.Processors = res.Processors
	return nil
}

// Generate builds the full corpus for a seed: every family's problem
// statements, solved in parallel by workers (≤ 0 selects NumCPU). The
// returned slice is in manifest order (Families order, then index).
func Generate(ctx context.Context, seed uint64, count, workers int) (Meta, []Instance, error) {
	plan := Plan(count)
	insts := make([]Instance, 0, count)
	for _, fam := range Families {
		for idx := 0; idx < plan[fam]; idx++ {
			insts = append(insts, NewInstance(seed, fam, idx))
		}
	}
	if err := solveAll(ctx, insts, workers); err != nil {
		return Meta{}, nil, err
	}
	meta := Meta{
		Corpus:   "lodim-scenarios",
		Version:  1,
		Seed:     seed,
		Count:    len(insts),
		Families: plan,
	}
	return meta, insts, nil
}

// solveAll records outcomes for every instance, fanning the engine
// runs across workers.
func solveAll(ctx context.Context, insts []Instance, workers int) error {
	return forAll(ctx, len(insts), workers, func(i int) error {
		return Solve(ctx, &insts[i])
	})
}

// forAll runs fn over [0,n) on a bounded worker pool (workers ≤ 0
// selects NumCPU). The first returned error cancels the sweep and is
// returned.
func forAll(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	next := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Sample draws a deterministic stratified sample of n instances:
// each family contributes in proportion to its corpus share, chosen
// by a sampler RNG derived from the seed. Instances keep manifest
// order within the sample.
func Sample(insts []Instance, n int, seed uint64) []Instance {
	if n >= len(insts) {
		return insts
	}
	byFamily := make(map[string][]int)
	for i, inst := range insts {
		byFamily[inst.Family] = append(byFamily[inst.Family], i)
	}
	r := instanceRand(seed, "sample", n)
	picked := make([]int, 0, n)
	// Family quota by exact share of the live corpus; remainders go to
	// the earliest families, mirroring Plan.
	total := len(insts)
	quota := make(map[string]int, len(byFamily))
	used := 0
	for _, fam := range Families {
		q := n * len(byFamily[fam]) / total
		quota[fam] = q
		used += q
	}
	for i := 0; used < n; i++ {
		fam := Families[i%len(Families)]
		if quota[fam] < len(byFamily[fam]) {
			quota[fam]++
			used++
		}
	}
	for _, fam := range Families {
		idxs := append([]int(nil), byFamily[fam]...)
		r.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		q := quota[fam]
		if q > len(idxs) {
			q = len(idxs)
		}
		picked = append(picked, idxs[:q]...)
	}
	sort.Ints(picked)
	out := make([]Instance, len(picked))
	for i, idx := range picked {
		out[i] = insts[idx]
	}
	return out
}

// PermuteAxes restates an instance under an axis permutation σ (new
// axis i is old axis perm[i]). Feasibility, total time, and processor
// count are invariant under σ — the metamorphic property the
// regression tests replay.
func PermuteAxes(inst Instance, perm []int) Instance {
	out := inst
	out.Bounds = make([]int64, len(inst.Bounds))
	for i, p := range perm {
		out.Bounds[i] = inst.Bounds[p]
	}
	out.Dependencies = make([][]int64, len(inst.Dependencies))
	for c, dep := range inst.Dependencies {
		nd := make([]int64, len(dep))
		for i, p := range perm {
			nd[i] = dep[p]
		}
		out.Dependencies[c] = nd
	}
	return out
}
