package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The manifest is JSON Lines: the Meta header on the first line, then
// one Instance per line in manifest order. Line-oriented storage keeps
// git diffs reviewable at corpus scale and lets the checker stream
// without holding 10k instances' JSON in one document.

// Write emits the manifest. Encoding goes through one json.Encoder so
// the same (meta, instances) always serializes byte-identically.
func Write(w io.Writer, meta Meta, insts []Instance) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for i := range insts {
		if err := enc.Encode(&insts[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a manifest and cross-checks the header against the
// instance lines.
func Read(r io.Reader) (Meta, []Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Meta{}, nil, err
		}
		return Meta{}, nil, fmt.Errorf("corpus: empty manifest")
	}
	var meta Meta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("corpus: manifest header: %w", err)
	}
	insts := make([]Instance, 0, meta.Count)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var inst Instance
		if err := json.Unmarshal(sc.Bytes(), &inst); err != nil {
			return Meta{}, nil, fmt.Errorf("corpus: instance line %d: %w", len(insts)+2, err)
		}
		insts = append(insts, inst)
	}
	if err := sc.Err(); err != nil {
		return Meta{}, nil, err
	}
	if meta.Count != len(insts) {
		return Meta{}, nil, fmt.Errorf("corpus: manifest header says %d instances, found %d", meta.Count, len(insts))
	}
	return meta, insts, nil
}

// ReadFile reads a manifest from disk.
func ReadFile(path string) (Meta, []Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, err
	}
	defer f.Close()
	return Read(f)
}
