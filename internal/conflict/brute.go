package conflict

import (
	"sort"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// BruteForce decides conflict-freeness by direct construction: it maps
// every index point through T and reports the first pair of distinct
// points with identical images. It is the definitional ground truth
// (Definition 2.2, condition 3) used to validate every closed-form
// criterion, and is exponential in the index-set size — use only on
// small sets.
//
// The returned witness is the canonicalized difference of a colliding
// pair (a non-feasible conflict vector), nil when conflict-free.
func BruteForce(t *intmat.Matrix, set uda.IndexSet) (conflictFree bool, witness intmat.Vector) {
	seen := intmat.NewVecMap[intmat.Vector](int(set.Size()))
	conflictFree = true
	set.Each(func(j intmat.Vector) bool {
		img := intmat.KeyFor(t.MulVec(j))
		if prev, ok := seen.Load(img); ok {
			conflictFree = false
			witness = j.Sub(prev).Canonical()
			return false
		}
		seen.Store(img, j)
		return true
	})
	return conflictFree, witness
}

// ClassInfo summarizes the collisions attributable to one primitive
// conflict direction.
type ClassInfo struct {
	// Vector is the canonical non-feasible conflict vector of the class.
	Vector intmat.Vector
	// Pairs counts ordered-free colliding point pairs (j, j+c·Vector).
	Pairs int
}

// Classes groups every colliding point pair of the mapping by the
// canonical primitive vector of their difference — a collision census
// per conflict class. Conflict-free mappings return an empty slice. The
// result is sorted by descending pair count, ties by vector string, so
// the dominant conflict direction comes first; it quantifies *how*
// conflicting a rejected mapping is, which the optimizers' diagnostics
// and the experiment reports use.
func Classes(t *intmat.Matrix, set uda.IndexSet) []ClassInfo {
	counts := map[string]*ClassInfo{}
	for _, group := range BruteForceCollisions(t, set) {
		for a := 0; a < len(group); a++ {
			for b := a + 1; b < len(group); b++ {
				key := group[b].Sub(group[a]).Canonical()
				ci, ok := counts[key.String()]
				if !ok {
					ci = &ClassInfo{Vector: key}
					counts[key.String()] = ci
				}
				ci.Pairs++
			}
		}
	}
	out := make([]ClassInfo, 0, len(counts))
	for _, ci := range counts {
		out = append(out, *ci)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Pairs != out[b].Pairs {
			return out[a].Pairs > out[b].Pairs
		}
		return out[a].Vector.String() < out[b].Vector.String()
	})
	return out
}

// BruteForceCollisions returns every group of index points that share a
// processor-and-time image under T, keyed by image. Used by the
// simulator tests and the figure generators to show concrete colliding
// computations.
func BruteForceCollisions(t *intmat.Matrix, set uda.IndexSet) map[string][]intmat.Vector {
	groups := make(map[string][]intmat.Vector)
	set.Each(func(j intmat.Vector) bool {
		img := t.MulVec(j).String()
		groups[img] = append(groups[img], j)
		return true
	})
	for k, g := range groups {
		if len(g) < 2 {
			delete(groups, k)
		}
	}
	return groups
}
