package conflict

import (
	"errors"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// TestFeasibleTheorem22 checks the feasibility criterion against its
// geometric definition on the paper's Figure 1 data: in the 2-D index
// set 0 ≤ j_1, j_2 ≤ 4, γ = [1,1] is non-feasible and γ = [3,5] is
// feasible.
func TestFeasibleTheorem22(t *testing.T) {
	set := uda.Box(4, 4)
	if Feasible(set, intmat.Vec(1, 1)) {
		t.Error("γ = [1 1] reported feasible")
	}
	if !Feasible(set, intmat.Vec(3, 5)) {
		t.Error("γ = [3 5] reported non-feasible")
	}
}

// Geometric cross-check of Theorem 2.2 on many vectors: feasible iff no
// j in the set has j+γ in the set.
func TestFeasibleMatchesGeometry(t *testing.T) {
	set := uda.Box(3, 2)
	for g1 := int64(-5); g1 <= 5; g1++ {
		for g2 := int64(-4); g2 <= 4; g2++ {
			gamma := intmat.Vec(g1, g2)
			if gamma.IsZero() {
				continue
			}
			geometric := true
			set.Each(func(j intmat.Vector) bool {
				if set.Contains(j.Add(gamma)) {
					geometric = false
					return false
				}
				return true
			})
			if got := Feasible(set, gamma); got != geometric {
				t.Errorf("Feasible(%v) = %v, geometry says %v", gamma, got, geometric)
			}
		}
	}
}

// TestExample21 reproduces Example 2.1: the 4-D cube μ = 6 with the
// mapping matrix of Equation 2.8. γ1 = [0,1,-7,0] and γ2 = [7,-1,0,0]
// are feasible conflict vectors; γ3 = [1,0,-1,0] is a non-feasible one,
// so T is not conflict-free.
func TestExample21(t *testing.T) {
	T := intmat.FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	set := uda.Cube(4, 6)
	g1, g2, g3 := intmat.Vec(0, 1, -7, 0), intmat.Vec(7, -1, 0, 0), intmat.Vec(1, 0, -1, 0)
	for _, g := range []intmat.Vector{g1, g2, g3} {
		if !T.MulVec(g).IsZero() {
			t.Errorf("Tγ != 0 for %v", g)
		}
		if g.GCD() != 1 {
			t.Errorf("γ = %v not primitive", g)
		}
	}
	if !Feasible(set, g1) || !Feasible(set, g2) {
		t.Error("γ1/γ2 should be feasible")
	}
	if Feasible(set, g3) {
		t.Error("γ3 should be non-feasible")
	}
	// [2,0,-2,0] solves Tγ=0 but is not a conflict vector (gcd 2).
	if intmat.Vec(2, 0, -2, 0).GCD() == 1 {
		t.Error("gcd sanity failed")
	}

	res, err := Decide(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConflictFree {
		t.Errorf("Example 2.1 matrix reported conflict-free (%s)", res.Method)
	}
	if res.Witness == nil || !T.MulVec(res.Witness).IsZero() || Feasible(set, res.Witness) {
		t.Errorf("witness %v is not a non-feasible conflict vector", res.Witness)
	}
	// Ground truth.
	if free, w := BruteForce(T, set); free {
		t.Error("brute force disagrees: conflict-free")
	} else if w == nil {
		t.Error("brute force found no witness")
	}
}

// TestExample31MatMulConflictVector checks Equation 3.5: for the matmul
// mapping with S = [1,1,-1] and symbolic Π, the conflict vector is
// γ = [-π2-π3, π1+π3, π1-π2] (up to normalization). We instantiate
// Π = [1,4,1] (the paper's optimal for μ=4) and compare.
func TestExample31MatMulConflictVector(t *testing.T) {
	T := intmat.FromRows(
		[]int64{1, 1, -1},
		[]int64{1, 4, 1},
	)
	gamma, err := UniqueConflictVector(T)
	if err != nil {
		t.Fatal(err)
	}
	// Equation 3.5 at Π = [1,4,1]: [-(4+1), 1+1, 1-4] = [-5, 2, -3];
	// canonicalized (first entry positive): [5, -2, 3].
	want := intmat.Vec(5, -2, 3)
	if !gamma.Equal(want) {
		t.Errorf("γ = %v, want %v", gamma, want)
	}
	// The paper notes Tγ would equal -d3 before normalization; verify
	// the null property instead.
	if !T.MulVec(gamma).IsZero() {
		t.Error("Tγ != 0")
	}
	// μ = 4: feasible (|γ1| = 5 > 4) → conflict-free mapping.
	set := uda.Cube(3, 4)
	res, err := Decide(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConflictFree || res.Method != "theorem-3.1" {
		t.Errorf("Decide = %v", res)
	}
	if free, _ := BruteForce(T, set); !free {
		t.Error("brute force found a conflict")
	}
}

// TestExample32TransitiveClosure checks Equation 3.7 and the paper's
// optimal schedule: T = [[0,0,1],[μ+1,1,1]] has conflict vector
// [1, -(μ+1), 0], feasible for the cube μ.
func TestExample32TransitiveClosure(t *testing.T) {
	mu := int64(4)
	T := intmat.FromRows(
		[]int64{0, 0, 1},
		[]int64{mu + 1, 1, 1},
	)
	gamma, err := UniqueConflictVector(T)
	if err != nil {
		t.Fatal(err)
	}
	want := intmat.Vec(1, -(mu + 1), 0)
	if !gamma.Equal(want) {
		t.Errorf("γ = %v, want %v", gamma, want)
	}
	set := uda.Cube(3, mu)
	res, err := Decide(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConflictFree {
		t.Errorf("Decide = %v", res)
	}
	if free, _ := BruteForce(T, set); !free {
		t.Error("brute force found a conflict")
	}
}

// TestSuboptimalScheduleFromRef23 reproduces the [23] schedule of
// Example 5.1: Π' = [2,1,μ] with conflict vector [-(μ+1), 2+μ, 1];
// (the text's γ̄ = [-(μ+1), 2+μ, 1] — canonicalize to leading positive).
func TestSuboptimalScheduleFromRef23(t *testing.T) {
	mu := int64(4)
	T := intmat.FromRows(
		[]int64{1, 1, -1},
		[]int64{2, 1, mu},
	)
	gamma, err := UniqueConflictVector(T)
	if err != nil {
		t.Fatal(err)
	}
	want := intmat.Vec(mu+1, -(mu + 2), -1)
	if !gamma.Equal(want) {
		t.Errorf("γ = %v, want %v", gamma, want)
	}
	set := uda.Cube(3, mu)
	res, err := Decide(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConflictFree {
		t.Errorf("[23] schedule should be conflict-free: %v", res)
	}
}

func TestUniqueConflictVectorAgreesWithAdjugateForm(t *testing.T) {
	mats := []*intmat.Matrix{
		intmat.FromRows([]int64{1, 1, -1}, []int64{1, 4, 1}),
		intmat.FromRows([]int64{1, 1, -1}, []int64{2, 1, 4}),
		intmat.FromRows([]int64{2, 3, 5}, []int64{1, 0, 2}),
	}
	for _, T := range mats {
		g1, err1 := UniqueConflictVector(T)
		g2, err2 := ConflictVectorViaAdjugate(T)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v, %v", err1, err2)
		}
		if !g1.Equal(g2) {
			t.Errorf("minors %v != adjugate %v for\n%v", g1, g2, T)
		}
	}
}

func TestUniqueConflictVectorRankDeficient(t *testing.T) {
	T := intmat.FromRows([]int64{1, 2, 3}, []int64{2, 4, 6})
	if _, err := UniqueConflictVector(T); !errors.Is(err, ErrRank) {
		t.Errorf("err = %v, want ErrRank", err)
	}
}

func TestConflictVectorViaAdjugateSingularB(t *testing.T) {
	// B (leading 2x2) singular but T full rank.
	T := intmat.FromRows([]int64{1, 2, 0}, []int64{2, 4, 1})
	if _, err := ConflictVectorViaAdjugate(T); err == nil {
		t.Error("singular B accepted")
	}
	// The minors form still works.
	g, err := UniqueConflictVector(T)
	if err != nil {
		t.Fatal(err)
	}
	if !T.MulVec(g).IsZero() {
		t.Error("minors-form γ not in null space")
	}
}

func TestWrongShapeErrors(t *testing.T) {
	T := intmat.FromRows([]int64{1, 2, 3})
	if _, err := UniqueConflictVector(T); !errors.Is(err, ErrNotCodimensionOne) {
		t.Errorf("err = %v", err)
	}
	if _, err := ConflictVectorViaAdjugate(T); !errors.Is(err, ErrNotCodimensionOne) {
		t.Errorf("err = %v", err)
	}
	if _, err := LinearForms(T); !errors.Is(err, ErrNotCodimensionOne) {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	set := uda.Cube(3, 4)
	if _, err := Analyze(intmat.FromRows([]int64{1, 2}), set); err == nil {
		t.Error("column mismatch accepted")
	}
	if _, err := Analyze(intmat.FromRows([]int64{1, 2, 3}, []int64{2, 4, 6}), set); !errors.Is(err, ErrRank) {
		t.Errorf("rank-deficient: %v", err)
	}
}

func TestDecideFullRank(t *testing.T) {
	set := uda.Cube(2, 3)
	res, err := Decide(intmat.Identity(2), set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConflictFree || res.Method != "full-rank-injective" {
		t.Errorf("Decide = %v", res)
	}
}

func TestCombine(t *testing.T) {
	T := intmat.FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	a, err := Analyze(T, uda.Cube(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	basis := a.NullBasis()
	if len(basis) != 2 {
		t.Fatalf("basis size %d", len(basis))
	}
	g := a.Combine(intmat.Vec(2, -3))
	if !T.MulVec(g).IsZero() {
		t.Error("combined vector not annihilated")
	}
	if !g.Equal(basis[0].Scale(2).Add(basis[1].Scale(-3))) {
		t.Error("Combine mismatch")
	}
}

// TestClassesCensus: the collision census groups pairs by primitive
// conflict direction and is empty for conflict-free mappings.
func TestClassesCensus(t *testing.T) {
	// Π = [1,1,1] on the matmul mapping: the primitive non-feasible
	// vector (1,-1,0)-family dominates (γ from Eq 3.5 at Π=[1,1,1]:
	// (-2, 2, 0) → primitive (1,-1,0)).
	T := intmat.FromRows(
		[]int64{1, 1, -1},
		[]int64{1, 1, 1},
	)
	set := uda.Cube(3, 3)
	classes := Classes(T, set)
	if len(classes) == 0 {
		t.Fatal("no classes for conflicting mapping")
	}
	totalPairs := 0
	for _, c := range classes {
		if c.Pairs < 1 {
			t.Errorf("class %v with %d pairs", c.Vector, c.Pairs)
		}
		if Feasible(set, c.Vector) {
			t.Errorf("class vector %v is feasible", c.Vector)
		}
		if !T.MulVec(c.Vector).IsZero() {
			t.Errorf("class vector %v not in null space", c.Vector)
		}
		totalPairs += c.Pairs
	}
	// Cross-check the census against raw collision groups: total pairs
	// = Σ C(|group|, 2).
	want := 0
	for _, g := range BruteForceCollisions(T, set) {
		want += len(g) * (len(g) - 1) / 2
	}
	if totalPairs != want {
		t.Errorf("census pairs = %d, groups give %d", totalPairs, want)
	}
	// Dominant class first.
	for i := 1; i < len(classes); i++ {
		if classes[i].Pairs > classes[i-1].Pairs {
			t.Error("classes not sorted by pair count")
		}
	}
	// Conflict-free mapping → empty census (γ = (-5, 3, -2) is feasible
	// at μ = 3).
	free := intmat.FromRows(
		[]int64{1, 1, -1},
		[]int64{1, 3, 2},
	)
	if got := Classes(free, set); len(got) != 0 {
		t.Errorf("conflict-free census = %v", got)
	}
}

func TestResultString(t *testing.T) {
	r := Result{ConflictFree: true, Method: "x"}
	if r.String() == "" {
		t.Error("empty String")
	}
	r2 := Result{Witness: intmat.Vec(1, 0), Method: "y"}
	if r2.String() == "" {
		t.Error("empty String with witness")
	}
	r3 := Result{Method: "z"}
	if r3.String() == "" {
		t.Error("empty String without witness")
	}
}
