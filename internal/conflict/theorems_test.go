package conflict

import (
	"math/rand"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

func randFullRank(rng *rand.Rand, k, n int, amp int64) *intmat.Matrix {
	for {
		m := intmat.New(k, n)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.Int63n(2*amp+1)-amp)
			}
		}
		if m.Rank() == k {
			return m
		}
	}
}

// TestExactMatchesBruteForce is the central correctness test: the
// HNF-based exact decision agrees with the definitional brute force on
// hundreds of random mapping matrices across shapes.
func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ k, n int }{{1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {1, 4}}
	for _, sh := range shapes {
		for trial := 0; trial < 120; trial++ {
			T := randFullRank(rng, sh.k, sh.n, 4)
			set := uda.Cube(sh.n, 1+int64(rng.Intn(3)))
			a, err := Analyze(T, set)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			gotFree, witness, err := a.ExactDecision()
			if err != nil {
				t.Fatalf("ExactDecision(%v): %v", T, err)
			}
			wantFree, bfWitness := BruteForce(T, set)
			if gotFree != wantFree {
				t.Fatalf("shape %dx%d μ=%v:\n%v\nexact says free=%v, brute force says %v (bf witness %v)",
					sh.k, sh.n, set.Upper, T, gotFree, wantFree, bfWitness)
			}
			if !gotFree {
				if witness == nil {
					t.Fatalf("no witness returned for conflicting %v", T)
				}
				if !T.MulVec(witness).IsZero() {
					t.Fatalf("witness %v not in null space of %v", witness, T)
				}
				if Feasible(set, witness) {
					t.Fatalf("witness %v is feasible for μ=%v", witness, set.Upper)
				}
			}
		}
	}
}

// TestDecideMatchesBruteForce exercises the full dispatcher (theorem
// fast paths + fallbacks) against the ground truth.
func TestDecideMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shapes := []struct{ k, n int }{{2, 3}, {2, 4}, {1, 4}, {3, 4}, {3, 5}, {2, 5}}
	for _, sh := range shapes {
		for trial := 0; trial < 80; trial++ {
			T := randFullRank(rng, sh.k, sh.n, 3)
			set := uda.Cube(sh.n, 1+int64(rng.Intn(2)))
			res, err := Decide(T, set)
			if err != nil {
				t.Fatalf("Decide: %v", err)
			}
			wantFree, _ := BruteForce(T, set)
			if res.ConflictFree != wantFree {
				t.Fatalf("shape %dx%d μ=%v:\n%v\nDecide(%s) says %v, brute force %v",
					sh.k, sh.n, set.Upper, T, res.Method, res.ConflictFree, wantFree)
			}
		}
	}
}

// TestTheorem47Sufficiency: whenever the Theorem 4.7 conditions hold,
// the matrix really is conflict-free (validated by brute force).
func TestTheorem47Sufficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	confirmed := 0
	for trial := 0; trial < 4000 && confirmed < 40; trial++ {
		T := randFullRank(rng, 2, 4, 4)
		set := uda.Cube(4, 1+int64(rng.Intn(3)))
		a, err := Analyze(T, set)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Theorem47() {
			continue
		}
		confirmed++
		if free, w := BruteForce(T, set); !free {
			t.Fatalf("Theorem 4.7 accepted\n%v\nμ=%v but brute force found conflict %v", T, set.Upper, w)
		}
	}
	if confirmed == 0 {
		t.Error("no Theorem 4.7 positives sampled — test vacuous")
	}
}

// TestTheorem47NecessityGap documents the necessity gap in the paper's
// Theorem 4.7: the null basis below is conflict-free on the given box
// (every integral combination leaves the box, certified by the exact
// enumeration) yet violates condition (1) — no row has same-signed
// entries with |u_{i,3} + u_{i,4}| > μ_i. The mixed-sign rows (10,−2)
// and (−2,10) do the certifying instead.
func TestTheorem47NecessityGap(t *testing.T) {
	// Construct T ∈ Z^{2×4} with null basis exactly u1 = (10,-2,1,0),
	// u2 = (-2,10,0,1): T = [A | I2·?]. We need T·u1 = T·u2 = 0.
	// Take T = [[ -10, 2, 106, 0 ], ...]: simpler to build T from the
	// basis: rows orthogonal... integers: choose
	// T = [[1, 0, -10, 2], [0, 1, 2, -10]]:
	//   T·u1 = (10 - 10, -2 + 2) = 0 ✓ (u1 = (10,-2,1,0))
	//   T·u2 = (-2 + 0·10 -0 + 2·1? ...) compute: row1·u2 = -2 -0 + 0 + 2 = 0 ✓
	//   row2·u2 = 10 + 0 - 10 = 0 ✓
	T := intmat.FromRows(
		[]int64{1, 0, -10, 2},
		[]int64{0, 1, 2, -10},
	)
	set := uda.Box(5, 5, 5, 5)
	a, err := Analyze(T, set)
	if err != nil {
		t.Fatal(err)
	}
	free, witness, err := a.ExactDecision()
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Fatalf("construction is not conflict-free (witness %v); adjust the example", witness)
	}
	if bfFree, w := BruteForce(T, set); !bfFree {
		t.Fatalf("brute force found conflict %v", w)
	}
	if a.Theorem47() {
		t.Skip("Theorem 4.7 conditions hold for the computed basis; gap not exhibited by this U")
	}
	// The gap: conflict-free, yet Theorem 4.7 says no. Decide must still
	// answer correctly via the exact fallback.
	res, err := Decide(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConflictFree {
		t.Errorf("Decide = %v, want conflict-free via exact fallback", res)
	}
	if res.Method != "exact-after-4.7" {
		t.Errorf("Decide method = %s, want exact-after-4.7", res.Method)
	}
}

// TestTheorem48Sufficiency mirrors the 4.7 test for k = n−3.
func TestTheorem48Sufficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	confirmed := 0
	for trial := 0; trial < 6000 && confirmed < 20; trial++ {
		T := randFullRank(rng, 1, 4, 4)
		set := uda.Cube(4, 1+int64(rng.Intn(2)))
		a, err := Analyze(T, set)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Theorem48() {
			continue
		}
		confirmed++
		if free, w := BruteForce(T, set); !free {
			t.Fatalf("Theorem 4.8 accepted\n%v\nμ=%v but brute force found conflict %v", T, set.Upper, w)
		}
	}
	if confirmed == 0 {
		t.Skip("no Theorem 4.8 positives sampled at this scale")
	}
}

// TestTheorem46Sufficiency: whenever the gcd-based sufficient condition
// of Theorem 4.6 holds, brute force must confirm conflict-freeness.
func TestTheorem46Sufficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	confirmed := 0
	for trial := 0; trial < 8000 && confirmed < 25; trial++ {
		T := randFullRank(rng, 2, 4, 5)
		set := uda.Cube(4, 1+int64(rng.Intn(3)))
		a, err := Analyze(T, set)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Theorem46() {
			continue
		}
		confirmed++
		if free, w := BruteForce(T, set); !free {
			t.Fatalf("Theorem 4.6 accepted\n%v\nμ=%v but brute force found conflict %v", T, set.Upper, w)
		}
	}
	if confirmed == 0 {
		t.Skip("no Theorem 4.6 positives sampled at this scale")
	}
}

// TestTheorem46ConstructedPositive: null basis u1 = (6,0,1,0),
// u2 = (0,6,0,1) over μ = 5: row 0 gcd(6,0) = 6 ≥ 6 and the kernel pair
// (0,−1) gives |−6| > 5 in row 1.
func TestTheorem46ConstructedPositive(t *testing.T) {
	T := intmat.FromRows(
		[]int64{1, 0, -6, 0},
		[]int64{0, 1, 0, -6},
	)
	set := uda.Box(5, 5, 5, 5)
	a, err := Analyze(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Theorem46() {
		t.Errorf("Theorem 4.6 rejected the constructed positive; basis %v", a.NullBasis())
	}
	if free, w := BruteForce(T, set); !free {
		t.Fatalf("construction has conflict %v", w)
	}
	// Negative instance: μ = 6 breaks the gcd margin.
	set2 := uda.Cube(4, 6)
	a2, err := Analyze(T, set2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Theorem46() {
		t.Error("Theorem 4.6 accepted with insufficient gcd margin")
	}
}

func TestTheorem46PanicsOnWrongCodimension(t *testing.T) {
	a, err := Analyze(intmat.FromRows([]int64{1, 1, -1}, []int64{1, 4, 1}), uda.Cube(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Theorem46 on codim-1 analysis did not panic")
		}
	}()
	a.Theorem46()
}

// TestTheorem48ConstructedPositive exercises Theorem 4.8 on a
// hand-built qualifying instance: T ∈ Z^{3×6} whose null lattice is
// spanned by u1 = (8,0,0,1,0,0), u2 = (0,8,0,0,1,0), u3 = (0,0,8,0,0,1)
// over the box μ = 7. Every nonzero integral combination has an entry
// 8·a with |8a| ≥ 8 > 7, so the mapping is conflict-free, and all four
// sign-pattern conditions hold through the 8-entries.
func TestTheorem48ConstructedPositive(t *testing.T) {
	T := intmat.FromRows(
		[]int64{1, 0, 0, -8, 0, 0},
		[]int64{0, 1, 0, 0, -8, 0},
		[]int64{0, 0, 1, 0, 0, -8},
	)
	set := uda.Cube(6, 7)
	a, err := Analyze(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Theorem48() {
		t.Errorf("Theorem 4.8 rejected the constructed positive; basis = %v", a.NullBasis())
	}
	free, witness, err := a.ExactDecision()
	if err != nil {
		t.Fatal(err)
	}
	if !free {
		t.Errorf("exact decision found conflict %v", witness)
	}
	res, err := Decide(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConflictFree {
		t.Errorf("Decide = %v", res)
	}
	// Shrinking the lattice margin to 8 with μ = 8 must flip the answer:
	// u1 itself sits inside the box (|8| ≤ 8), a conflict.
	set2 := uda.Cube(6, 8)
	res2, err := Decide(T, set2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ConflictFree {
		t.Error("μ=8 variant reported conflict-free")
	}
}

// TestTheorem45Sufficiency: the row-gcd sufficient condition implies
// conflict-freeness.
func TestTheorem45Sufficiency(t *testing.T) {
	// Hand-built positive instance: T = [1, 7] on the 1-D..2-D case:
	// n=2, k=1, null basis = (±7, ∓1)? T·γ=0 → γ = t·(7,-1). gcd row 1
	// entries: |7| ≥ μ1+1 for μ1 ≤ 6; row 2: gcd 1. Need 1 row subset
	// with nonsingular 1x1 minor: row 1 qualifies (7 ≠ 0, gcd 7 ≥ μ+1).
	T := intmat.FromRows([]int64{1, 7})
	set := uda.Box(6, 6)
	a, err := Analyze(T, set)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Theorem45() {
		t.Error("Theorem 4.5 rejected a qualifying instance")
	}
	if free, w := BruteForce(T, set); !free {
		t.Errorf("brute force found conflict %v", w)
	}
	// Negative: μ = 7 breaks the gcd margin (7 ≥ μ+1 fails).
	set2 := uda.Box(7, 7)
	a2, err := Analyze(T, set2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Theorem45() {
		t.Error("Theorem 4.5 accepted with insufficient gcd margin")
	}
}

// TestTheorem43And44Necessity: on random conflict-free matrices, both
// necessary conditions must hold.
func TestTheorem43And44Necessity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 3000 && checked < 60; trial++ {
		k := 1 + rng.Intn(2)
		n := k + 2
		T := randFullRank(rng, k, n, 5)
		set := uda.Cube(n, 1+int64(rng.Intn(2)))
		free, _ := BruteForce(T, set)
		if !free {
			continue
		}
		checked++
		a, err := Analyze(T, set)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Theorem43() {
			t.Fatalf("conflict-free matrix violates necessary condition 4.3:\n%v μ=%v", T, set.Upper)
		}
		if !a.Theorem44() {
			t.Fatalf("conflict-free matrix violates necessary condition 4.4:\n%v μ=%v", T, set.Upper)
		}
	}
	if checked == 0 {
		t.Skip("no conflict-free samples at this scale")
	}
}

// TestExample41NonFeasibleCombination reproduces Example 4.1: the two
// feasible conflict vectors combine (with rational weights 1/7, 1/7)
// into the non-feasible conflict vector [1,0,-1,0]; the β-lattice
// representation of Theorem 4.2 must therefore detect the conflict.
func TestExample41NonFeasibleCombination(t *testing.T) {
	T := intmat.FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	set := uda.Cube(4, 6)
	a, err := Analyze(T, set)
	if err != nil {
		t.Fatal(err)
	}
	free, witness, err := a.ExactDecision()
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Fatal("Example 4.1 matrix reported conflict-free")
	}
	// The canonical non-feasible vector is [1,0,-1,0] (or another vector
	// inside the box); verify the witness is genuinely inside the box.
	for i, g := range witness {
		if abs64(g) > set.Upper[i] {
			t.Errorf("witness %v entry %d outside box", witness, i)
		}
	}
}

func TestTheorem47PanicsOnWrongCodimension(t *testing.T) {
	a, err := Analyze(intmat.FromRows([]int64{1, 1, -1}, []int64{1, 4, 1}), uda.Cube(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Theorem47 on codim-1 analysis did not panic")
		}
	}()
	a.Theorem47()
}

func TestExactDecisionBudget(t *testing.T) {
	// A huge box with a dense V forces the budget error.
	T := intmat.FromRows([]int64{1, 1000000, 1, 1}, []int64{1, 1, 1000000, 1})
	set := uda.Cube(4, 1000000)
	a, err := Analyze(T, set)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = a.ExactDecision()
	if err == nil {
		t.Skip("budget not exceeded at this scale")
	}
}

func BenchmarkExactDecision2x4(b *testing.B) {
	T := intmat.FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	set := uda.Cube(4, 6)
	a, err := Analyze(T, set)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.ExactDecision(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForce2x4(b *testing.B) {
	T := intmat.FromRows(
		[]int64{1, 7, 1, 1},
		[]int64{1, 7, 1, 0},
	)
	set := uda.Cube(4, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForce(T, set)
	}
}
