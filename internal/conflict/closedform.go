package conflict

import (
	"errors"
	"fmt"

	"lodim/internal/intmat"
)

// This file implements the k = n−1 special case of Section 3: a mapping
// matrix T ∈ Z^{(n−1)×n} with rank n−1 has exactly one conflict vector
// (up to the paper's normalization: primitive, first non-zero entry
// positive), computable in closed form.

// ErrNotCodimensionOne is returned when the closed form is applied to a
// matrix that is not (n−1)×n.
var ErrNotCodimensionOne = errors.New("conflict: matrix is not (n-1)×n")

// UniqueConflictVector returns the unique (canonicalized) conflict
// vector of a rank-(n−1) matrix T ∈ Z^{(n−1)×n}. It is computed from
// the signed maximal minors of T:
//
//	γ_i = (−1)^i · det(T with column i removed)
//
// which spans the one-dimensional null space; the result is then made
// primitive with positive leading entry (the λ normalization of
// Equation 3.2). ErrRank is returned when every maximal minor vanishes
// (rank < n−1), matching Theorem 3.1's rank criterion: rank(T) = n−1
// iff some f_i ≠ 0.
func UniqueConflictVector(t *intmat.Matrix) (intmat.Vector, error) {
	n := t.Cols()
	if t.Rows() != n-1 {
		return nil, fmt.Errorf("%w: got %dx%d", ErrNotCodimensionOne, t.Rows(), t.Cols())
	}
	gamma := intmat.NewVector(n)
	cols := make([]int, 0, n-1)
	rows := make([]int, n-1)
	for i := range rows {
		rows[i] = i
	}
	for i := 0; i < n; i++ {
		cols = cols[:0]
		for c := 0; c < n; c++ {
			if c != i {
				cols = append(cols, c)
			}
		}
		d := t.Submatrix(rows, cols).Det()
		if i%2 == 1 {
			d = -d
		}
		gamma[i] = d
	}
	if gamma.IsZero() {
		return nil, ErrRank
	}
	return gamma.Canonical(), nil
}

// ConflictVectorViaAdjugate implements Equation 3.2 literally: with
// T = [B, b̄] and B the leading (n−1)×(n−1) block,
//
//	γ = λ·[ −adj(B)·b̄ ; det B ].
//
// It requires det B ≠ 0 (the paper's "without loss of generality"
// arrangement) and returns the canonicalized vector; it exists to
// cross-validate UniqueConflictVector against the paper's own formula.
func ConflictVectorViaAdjugate(t *intmat.Matrix) (intmat.Vector, error) {
	n := t.Cols()
	if t.Rows() != n-1 {
		return nil, fmt.Errorf("%w: got %dx%d", ErrNotCodimensionOne, t.Rows(), t.Cols())
	}
	rows := make([]int, n-1)
	cols := make([]int, n-1)
	for i := range rows {
		rows[i], cols[i] = i, i
	}
	B := t.Submatrix(rows, cols)
	if B.Det() == 0 {
		return nil, fmt.Errorf("conflict: leading block B is singular; Equation 3.2 requires rank(B) = n-1")
	}
	b := t.Col(n - 1)
	top := B.Adjugate().MulVec(b).Neg()
	gamma := append(top.Clone(), B.Det())
	return intmat.Vector(gamma).Canonical(), nil
}

// LinearForms returns the functions f_1, …, f_n of Equation 3.2
// evaluated for the given T = [S; Π]: f_i is the (signed) determinant
// of T with column i removed, which Proposition 3.2 shows is linear in
// the entries of Π when S is fixed. The schedule optimizer uses the
// symbolic version (internal/schedule); this numeric evaluation backs
// its tests.
func LinearForms(t *intmat.Matrix) (intmat.Vector, error) {
	n := t.Cols()
	if t.Rows() != n-1 {
		return nil, fmt.Errorf("%w: got %dx%d", ErrNotCodimensionOne, t.Rows(), t.Cols())
	}
	gamma := intmat.NewVector(n)
	rows := make([]int, n-1)
	for i := range rows {
		rows[i] = i
	}
	cols := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		cols = cols[:0]
		for c := 0; c < n; c++ {
			if c != i {
				cols = append(cols, c)
			}
		}
		d := t.Submatrix(rows, cols).Det()
		if i%2 == 1 {
			d = -d
		}
		gamma[i] = d
	}
	return gamma, nil
}
