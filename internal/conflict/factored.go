package conflict

import (
	"errors"
	"fmt"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// This file implements the factored conflict decision, the search
// acceleration the paper's Section 5 anticipates ("more sophisticated
// methods of finding the solution of Problem 2.2 may be possible …
// these necessary and sufficient conditions should be used to guide the
// solution search"). The observation generalizes Proposition 8.1 to
// any shape: for T = [S; Π] the null lattice of S does not depend on Π,
// so a basis W of null(S) ∩ Z^n can be computed once per space mapping;
// for each candidate Π only the row vector h = Π·W changes, and the
// conflict-vector lattice of T is W·(null lattice of h), obtained from
// the Hermite normal form of a single row — a few gcd steps instead of
// a full HNF of T. Procedure 5.1 evaluates thousands of candidates per
// search, so the factorization removes its dominant cost.

// SpaceAnalyzer caches the Π-independent part of conflict analysis for
// a fixed space mapping S over a fixed index set.
type SpaceAnalyzer struct {
	S   *intmat.Matrix
	Set uda.IndexSet
	// W is a lattice basis of null(S) ∩ Z^n (columns). For the empty
	// space mapping (0 rows) it is the identity basis.
	W []intmat.Vector
}

// NewSpaceAnalyzer validates S (full row rank, matching dimension) and
// computes the null(S) lattice basis.
func NewSpaceAnalyzer(s *intmat.Matrix, set uda.IndexSet) (*SpaceAnalyzer, error) {
	if s.Cols() != set.Dim() {
		return nil, fmt.Errorf("conflict: S has %d columns, index set dimension is %d", s.Cols(), set.Dim())
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	sa := &SpaceAnalyzer{S: s, Set: set}
	n := s.Cols()
	if s.Rows() == 0 {
		for j := 0; j < n; j++ {
			e := intmat.NewVector(n)
			e[j] = 1
			sa.W = append(sa.W, e)
		}
		return sa, nil
	}
	if s.Rows() == 1 {
		// One-row space mappings (linear arrays) are by far the most
		// common, and the joint optimizer builds one analyzer per
		// enumerated S — the single-row extended-gcd reduction computes
		// the same null lattice as the general Hermite form without its
		// arbitrary-precision cost.
		w, err := intmat.RowNullBasis(s.Row(0))
		if err != nil {
			if errors.Is(err, intmat.ErrRankDeficient) {
				return nil, fmt.Errorf("conflict: space mapping: %w", err)
			}
			return nil, err
		}
		sa.W = w
		return sa, nil
	}
	h, err := intmat.HermiteNormalForm(s)
	if err != nil {
		return nil, fmt.Errorf("conflict: space mapping: %w", err)
	}
	sa.W = h.NullBasis()
	return sa, nil
}

// NullBasisFor returns a lattice basis of the conflict-vector lattice
// of T = [S; Π] — the integral solutions of Tγ = 0 — in time
// proportional to a single-row Hermite reduction. ErrRank is returned
// when Π is a rational combination of the rows of S (rank(T) < k).
func (sa *SpaceAnalyzer) NullBasisFor(pi intmat.Vector) ([]intmat.Vector, error) {
	q := len(sa.W)
	if q == 0 {
		// S is already square nonsingular; appending any row keeps the
		// null space trivial, but rank(T) = k requires k ≤ n — with
		// q = 0, k = n+1 > n: impossible.
		return nil, ErrRank
	}
	h := make(intmat.Vector, q)
	allZero := true
	for t, w := range sa.W {
		h[t] = pi.Dot(w)
		if h[t] != 0 {
			allZero = false
		}
	}
	if allZero {
		return nil, ErrRank
	}
	// Null lattice of the 1×q row h.
	inner, err := intmat.RowNullBasis(h) // q-1 vectors in Z^q
	if err != nil {
		return nil, err
	}
	basis := make([]intmat.Vector, 0, len(inner))
	n := sa.S.Cols()
	for _, a := range inner {
		g := intmat.NewVector(n)
		for t, w := range sa.W {
			if a[t] == 0 {
				continue
			}
			g = g.Add(w.Scale(a[t]))
		}
		basis = append(basis, g)
	}
	sizeReduceBasis(basis)
	return basis, nil
}

// sizeReduceBasis applies pairwise Lagrange-style size reduction in
// place: each vector is reduced against the others until no rounding
// step shrinks anything. The transform is unimodular, so the generated
// lattice is unchanged, but the entries get small — which matters
// because the sign-pattern certificates of Theorems 4.7/4.8 are
// basis-sensitive and succeed far more often on reduced bases.
func sizeReduceBasis(basis []intmat.Vector) {
	for sweep := 0; sweep < 32; sweep++ {
		changed := false
		for p := range basis {
			var pp int64
			for _, x := range basis[p] {
				pp += x * x
			}
			if pp == 0 {
				continue
			}
			for q := range basis {
				if p == q {
					continue
				}
				var dot int64
				for i := range basis[q] {
					dot += basis[q][i] * basis[p][i]
				}
				t := roundDiv64(dot, pp)
				if t != 0 {
					for i := range basis[q] {
						basis[q][i] -= t * basis[p][i]
					}
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// roundDiv64 returns the integer nearest to a/d for d > 0 (ties away
// from zero).
func roundDiv64(a, d int64) int64 {
	half := d / 2
	if a >= 0 {
		return (a + half) / d
	}
	return (a - half) / d
}

// Decide determines conflict-freeness of [S; Π] exactly, using the
// factored basis and the same criterion ladder as the package-level
// Decide. The full-HNF analysis is constructed only when a theorem
// certificate fails and the exact enumeration is needed.
func (sa *SpaceAnalyzer) Decide(pi intmat.Vector) (Result, error) {
	basis, err := sa.NullBasisFor(pi)
	if err != nil {
		return Result{}, err
	}
	return sa.decideFromBasis(basis, pi)
}

// decideFromBasis runs the criterion ladder over a size-reduced basis
// of the conflict-vector lattice of [S; Π]. It is shared by Decide and
// the scratch-backed DecideScratch; basis may be arena-backed — any
// vector that escapes into the Result goes through Canonical, which
// copies.
func (sa *SpaceAnalyzer) decideFromBasis(basis []intmat.Vector, pi intmat.Vector) (Result, error) {
	set := sa.Set
	switch len(basis) {
	case 0:
		return Result{ConflictFree: true, Method: "full-rank-injective"}, nil
	case 1:
		gamma := basis[0].Canonical()
		if Feasible(set, gamma) {
			return Result{ConflictFree: true, Method: "theorem-3.1"}, nil
		}
		return Result{ConflictFree: false, Witness: gamma, Method: "theorem-3.1"}, nil
	case 2:
		if theorem47Basis(basis, set) {
			return Result{ConflictFree: true, Method: "theorem-4.7"}, nil
		}
	case 3:
		if theorem48Basis(basis, set) {
			return Result{ConflictFree: true, Method: "theorem-4.8"}, nil
		}
	default:
		if theorem45Basis(basis, set) {
			return Result{ConflictFree: true, Method: "theorem-4.5"}, nil
		}
	}
	// Cheap exact rejections before the expensive fallback: any lattice
	// vector inside the box certifies a conflict (its primitive part is
	// a non-feasible conflict vector). Check the basis vectors
	// themselves (the contrapositive of Theorem 4.4) and their pairwise
	// sums and differences — on size-reduced bases these catch almost
	// every conflicting candidate the optimizers probe.
	if w, found := quickConflictWitness(basis, set); found {
		return Result{ConflictFree: false, Witness: w, Method: "theorem-4.4-witness"}, nil
	}
	// Exact fallback through the full analysis.
	t := sa.S.AppendRow(pi)
	a, err := Analyze(t, set)
	if err != nil {
		return Result{}, err
	}
	return a.exactResult("exact-factored-fallback")
}

// quickConflictWitness scans small integral combinations of the basis
// (each vector, pairwise sums/differences) for one inside the box.
func quickConflictWitness(basis []intmat.Vector, set uda.IndexSet) (intmat.Vector, bool) {
	inBox := func(v intmat.Vector) bool {
		for i, x := range v {
			if x < 0 {
				x = -x
			}
			if x > set.Upper[i] {
				return false
			}
		}
		return true
	}
	for _, u := range basis {
		if inBox(u) {
			return u.Canonical(), true
		}
	}
	for p := 0; p < len(basis); p++ {
		for q := p + 1; q < len(basis); q++ {
			if s := basis[p].Add(basis[q]); inBox(s) {
				return s.Canonical(), true
			}
			if d := basis[p].Sub(basis[q]); inBox(d) {
				return d.Canonical(), true
			}
		}
	}
	return nil, false
}
