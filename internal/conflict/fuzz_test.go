package conflict

import (
	"errors"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// FuzzDecideVsBruteForce feeds arbitrary 2×4 mapping matrices and box
// bounds to the full decision ladder and cross-checks the definitional
// ground truth. Run with `go test -fuzz FuzzDecideVsBruteForce` for a
// campaign; the seed corpus runs on every `go test`.
func FuzzDecideVsBruteForce(f *testing.F) {
	f.Add(int8(1), int8(7), int8(1), int8(1), int8(1), int8(7), int8(1), int8(0), uint8(2))
	f.Add(int8(1), int8(0), int8(-10), int8(2), int8(0), int8(1), int8(2), int8(-10), uint8(3))
	f.Add(int8(1), int8(1), int8(-1), int8(0), int8(1), int8(4), int8(1), int8(0), uint8(2))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i int8, muRaw uint8) {
		// Clamp entries: huge coefficients make the enumeration bounds
		// astronomically loose without exercising anything new.
		clamp := func(x int8) int64 { return int64(x % 10) }
		T := intmat.FromRows(
			[]int64{clamp(a), clamp(b), clamp(c), clamp(d)},
			[]int64{clamp(e), clamp(g), clamp(h), clamp(i)},
		)
		if T.Rank() != 2 {
			return
		}
		mu := int64(muRaw%3) + 1
		set := uda.Cube(4, mu)
		res, err := Decide(T, set)
		if errors.Is(err, ErrBudget) {
			return // resource bound, not a correctness property
		}
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		free, witness := BruteForce(T, set)
		if res.ConflictFree != free {
			t.Fatalf("Decide=%v (%s) but brute force=%v for\n%v μ=%d (bf witness %v)",
				res.ConflictFree, res.Method, free, T, mu, witness)
		}
		if !res.ConflictFree && res.Witness != nil {
			if !T.MulVec(res.Witness).IsZero() {
				t.Fatalf("witness %v not in null space", res.Witness)
			}
			if Feasible(set, res.Witness) {
				t.Fatalf("witness %v is feasible", res.Witness)
			}
		}
	})
}

// FuzzFactoredVsFull cross-checks the factored SpaceAnalyzer against
// the full decision on arbitrary 1×3 space mappings and schedules.
func FuzzFactoredVsFull(f *testing.F) {
	f.Add(int8(1), int8(1), int8(-1), int8(1), int8(4), int8(1), uint8(4))
	f.Add(int8(0), int8(0), int8(1), int8(5), int8(1), int8(1), uint8(4))
	f.Fuzz(func(t *testing.T, s1, s2, s3, p1, p2, p3 int8, muRaw uint8) {
		S := intmat.FromRows([]int64{int64(s1), int64(s2), int64(s3)})
		if S.Rank() != 1 {
			return
		}
		mu := int64(muRaw%4) + 1
		set := uda.Cube(3, mu)
		sa, err := NewSpaceAnalyzer(S, set)
		if err != nil {
			t.Fatalf("NewSpaceAnalyzer: %v", err)
		}
		pi := intmat.Vec(int64(p1), int64(p2), int64(p3))
		T := S.AppendRow(pi)
		if T.Rank() != 2 {
			return
		}
		fast, err := sa.Decide(pi)
		if err != nil {
			t.Fatalf("factored: %v", err)
		}
		slow, err := Decide(T, set)
		if err != nil {
			t.Fatalf("full: %v", err)
		}
		if fast.ConflictFree != slow.ConflictFree {
			t.Fatalf("factored=%v full=%v for S=%v Π=%v μ=%d",
				fast.ConflictFree, slow.ConflictFree, S.Row(0), pi, mu)
		}
	})
}
