package conflict

import (
	"errors"
	"math/rand"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// TestFactoredAgreesWithDecide is the acceptance test for the factored
// decision: across random (S, Π) pairs of several shapes, the
// SpaceAnalyzer verdict must equal the full Decide verdict.
func TestFactoredAgreesWithDecide(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	shapes := []struct{ sRows, n int }{{0, 2}, {0, 3}, {1, 3}, {1, 4}, {2, 4}, {2, 5}, {1, 5}, {3, 5}}
	for _, sh := range shapes {
		var sa *SpaceAnalyzer
		var S *intmat.Matrix
		set := uda.Cube(sh.n, 1+int64(rng.Intn(3)))
		// Draw a full-row-rank S.
		for {
			S = intmat.New(sh.sRows, sh.n)
			for i := 0; i < sh.sRows; i++ {
				for j := 0; j < sh.n; j++ {
					S.Set(i, j, rng.Int63n(7)-3)
				}
			}
			if sh.sRows == 0 || S.Rank() == sh.sRows {
				break
			}
		}
		var err error
		sa, err = NewSpaceAnalyzer(S, set)
		if err != nil {
			t.Fatalf("NewSpaceAnalyzer: %v", err)
		}
		for trial := 0; trial < 150; trial++ {
			pi := make(intmat.Vector, sh.n)
			for i := range pi {
				pi[i] = rng.Int63n(9) - 4
			}
			T := S.AppendRow(pi)
			fullRank := T.Rank() == T.Rows()
			fast, fastErr := sa.Decide(pi)
			if !fullRank {
				if !errors.Is(fastErr, ErrRank) {
					t.Fatalf("rank-deficient T not rejected: S=\n%v Π=%v err=%v", S, pi, fastErr)
				}
				continue
			}
			if fastErr != nil {
				t.Fatalf("factored Decide: %v (S=\n%v Π=%v)", fastErr, S, pi)
			}
			slow, err := Decide(T, set)
			if err != nil {
				t.Fatalf("Decide: %v", err)
			}
			if fast.ConflictFree != slow.ConflictFree {
				t.Fatalf("disagreement: factored=%v (%s) full=%v (%s)\nS=\n%v\nΠ=%v μ=%v",
					fast.ConflictFree, fast.Method, slow.ConflictFree, slow.Method, S, pi, set.Upper)
			}
		}
	}
}

// TestFactoredNullBasisSpansSameLattice: the factored basis and the
// full HNF basis must generate the same integer lattice (verified by
// mutual integral membership through a dual-coordinate check against
// the full analysis β-coordinates).
func TestFactoredNullBasisSpansSameLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(3)
		k := 1 + rng.Intn(n-2)
		S := intmat.New(k-1, n)
		for i := 0; i < k-1; i++ {
			for j := 0; j < n; j++ {
				S.Set(i, j, rng.Int63n(7)-3)
			}
		}
		if k-1 > 0 && S.Rank() != k-1 {
			continue
		}
		pi := make(intmat.Vector, n)
		for i := range pi {
			pi[i] = rng.Int63n(9) - 4
		}
		T := S.AppendRow(pi)
		if T.Rank() != k {
			continue
		}
		set := uda.Cube(n, 3)
		sa, err := NewSpaceAnalyzer(S, set)
		if err != nil {
			t.Fatal(err)
		}
		fastBasis, err := sa.NullBasisFor(pi)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(T, set)
		if err != nil {
			t.Fatal(err)
		}
		fullBasis := a.NullBasis()
		if len(fastBasis) != len(fullBasis) {
			t.Fatalf("basis sizes %d vs %d", len(fastBasis), len(fullBasis))
		}
		// Every fast vector is annihilated and has integral β
		// coordinates with the leading k entries zero (i.e. is in the
		// full lattice); symmetric membership follows from equal rank
		// and primitivity, but check via V anyway.
		V := a.H.V()
		for _, g := range fastBasis {
			if !T.MulVec(g).IsZero() {
				t.Fatalf("fast basis vector %v not annihilated", g)
			}
			beta := V.MulVec(g)
			for i := 0; i < k; i++ {
				if beta[i] != 0 {
					t.Fatalf("fast basis vector %v outside the full lattice (β=%v)", g, beta)
				}
			}
		}
		// Determinant check on the free coordinates: the fast basis,
		// expressed in β-coordinates, must be unimodular — otherwise it
		// spans a strict sublattice.
		q := len(fastBasis)
		coords := intmat.New(q, q)
		for c, g := range fastBasis {
			beta := V.MulVec(g)
			for r := 0; r < q; r++ {
				coords.Set(r, c, beta[k+r])
			}
		}
		if d := coords.Det(); d != 1 && d != -1 {
			t.Fatalf("fast basis spans sublattice of index |%d|:\nS=\n%v\nΠ=%v", d, S, pi)
		}
	}
}

func TestSpaceAnalyzerErrors(t *testing.T) {
	// Dimension mismatch.
	if _, err := NewSpaceAnalyzer(intmat.New(1, 3), uda.Cube(4, 2)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Rank-deficient S.
	S := intmat.FromRows([]int64{1, 2, 3}, []int64{2, 4, 6})
	if _, err := NewSpaceAnalyzer(S, uda.Cube(3, 2)); err == nil {
		t.Error("rank-deficient S accepted")
	}
	// Invalid index set.
	if _, err := NewSpaceAnalyzer(intmat.New(0, 2), uda.Box(0, 3)); err == nil {
		t.Error("invalid index set accepted")
	}
}

func TestSpaceAnalyzerEmptyS(t *testing.T) {
	// 0-row S: W is the identity basis; Π = [1, μ+1] is injective on
	// the box (a valid single-processor linearization).
	set := uda.Box(3, 3)
	sa, err := NewSpaceAnalyzer(intmat.New(0, 2), set)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sa.Decide(intmat.Vec(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConflictFree {
		t.Errorf("injective linearization reported conflicting: %v", res)
	}
	res2, err := sa.Decide(intmat.Vec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res2.ConflictFree {
		t.Error("Π = [1 1] reported conflict-free on a 2-D box")
	}
}

func TestSpaceAnalyzerRankRejection(t *testing.T) {
	set := uda.Cube(3, 3)
	S := intmat.FromRows([]int64{1, 1, -1})
	sa, err := NewSpaceAnalyzer(S, set)
	if err != nil {
		t.Fatal(err)
	}
	// Π parallel to S's row → rank(T) = 1 < 2.
	if _, err := sa.Decide(intmat.Vec(2, 2, -2)); !errors.Is(err, ErrRank) {
		t.Errorf("err = %v, want ErrRank", err)
	}
}

func BenchmarkFactoredVsFullDecide(b *testing.B) {
	set := uda.Cube(5, 2)
	S := intmat.FromRows(
		[]int64{1, 0, 0, 0, 0},
		[]int64{0, 1, 0, 0, 0},
	)
	pi := intmat.Vec(1, 1, 1, 9, 3)
	b.Run("factored", func(b *testing.B) {
		sa, err := NewSpaceAnalyzer(S, set)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := sa.Decide(pi); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		T := S.AppendRow(pi)
		for i := 0; i < b.N; i++ {
			if _, err := Decide(T, set); err != nil {
				b.Fatal(err)
			}
		}
	})
}
