package conflict

import (
	"sync"

	"lodim/internal/intmat"
)

// Scratch carries the per-worker state that makes repeated conflict
// decisions against one SpaceAnalyzer allocation-free and incremental:
// an arena for the decomposition scratch and a decision cache keyed by
// the canonical direction of h = Π·W. Neighbouring Π candidates in the
// lex-ordered searches very often produce the same h line — shifting Π
// by a row of S leaves h unchanged entirely, and scalings of h have the
// same null lattice — so the cache turns the dominant per-candidate
// Hermite reduction into a map lookup. A Scratch is not safe for
// concurrent use; the engines keep one per worker goroutine.
type Scratch struct {
	owner *SpaceAnalyzer
	ar    *intmat.Arena
	cache *intmat.VecMap[Result]

	// hits counts decisions answered from the cache (the "incremental"
	// decompositions of SearchStats); misses counts fresh ones.
	hits, misses int64

	h     intmat.Vector   // Π·W, heap-backed, reused across calls
	hc    intmat.Vector   // canonical direction of h (primitive, first non-zero > 0)
	inner []intmat.Vector // reused header slice for the inner null basis
	basis []intmat.Vector // reused header slice for the combined basis
}

// scratchCacheLimit bounds the decision cache. A search probes at most
// a few thousand distinct h lines; past the limit the cache is assumed
// degenerate and dropped wholesale.
const scratchCacheLimit = 1 << 14

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a scratch from the package pool.
func GetScratch() *Scratch {
	sc := scratchPool.Get().(*Scratch)
	if sc.ar == nil {
		sc.ar = intmat.GetArena()
	}
	return sc
}

// PutScratch releases sc to the pool. The analyzer binding and cache
// contents are dropped so the pool retains no references into a
// finished search; the arena blocks and the cache's bucket storage stay
// warm for the next search.
func PutScratch(sc *Scratch) {
	sc.owner = nil
	if sc.cache != nil {
		sc.cache.Clear()
	}
	sc.hits, sc.misses = 0, 0
	sc.ar.Reset()
	scratchPool.Put(sc)
}

// TakeStats drains and returns the cache counters: hit decisions
// (answered incrementally from a previous decomposition) and miss
// decisions (decomposed from scratch).
func (sc *Scratch) TakeStats() (hits, misses int64) {
	hits, misses = sc.hits, sc.misses
	sc.hits, sc.misses = 0, 0
	return hits, misses
}

// bind points sc at sa, clearing the cache when the analyzer changes
// (the cache key is expressed in coordinates of sa.W). The map storage
// is kept so that pooled scratches stop allocating per search.
func (sc *Scratch) bind(sa *SpaceAnalyzer) {
	if sc.owner != sa {
		sc.owner = sa
		if sc.cache == nil {
			sc.cache = intmat.NewVecMap[Result](64)
		} else {
			sc.cache.Clear()
		}
		q := len(sa.W)
		if cap(sc.h) < q {
			sc.h = make(intmat.Vector, q)
			sc.hc = make(intmat.Vector, q)
		}
	}
}

// DecideScratch is Decide with scratch-backed storage and the decision
// cache. It returns exactly the verdict Decide would: on a cache miss
// the computation is step-for-step the one Decide performs; on a hit
// the stored Result is returned as-is — its verdict is valid for every
// Π with the same h line because the conflict-vector lattice
// W·null(h) depends only on that line, though the Method and Witness
// reflect the candidate that populated the entry. Callers must treat
// the Result (including any Witness) as read-only; it may be shared
// with the cache.
func (sa *SpaceAnalyzer) DecideScratch(sc *Scratch, pi intmat.Vector) (Result, error) {
	sc.bind(sa)
	q := len(sa.W)
	if q == 0 {
		return Result{}, ErrRank
	}
	h := sc.h[:q]
	allZero := true
	for t, w := range sa.W {
		h[t] = pi.Dot(w)
		if h[t] != 0 {
			allZero = false
		}
	}
	if allZero {
		return Result{}, ErrRank
	}
	hc := sc.hc[:q]
	copy(hc, h)
	canonicalizeDirection(hc)
	key := intmat.KeyFor(hc)
	if res, ok := sc.cache.Load(key); ok {
		sc.hits++
		return res, nil
	}
	sc.misses++
	res, err := sa.decideScratchFresh(sc, h, pi)
	if err != nil {
		return Result{}, err
	}
	// The ladder only ever returns heap vectors (Canonical copies), so
	// the Result is safe to retain past the next arena Reset.
	if sc.cache.Len() >= scratchCacheLimit {
		sc.cache.Clear()
	}
	sc.cache.Store(key, res)
	return res, nil
}

// decideScratchFresh recomputes the decision for h = Π·W with
// arena-backed scratch — the same pipeline as NullBasisFor + the
// criterion ladder, minus the heap traffic.
func (sa *SpaceAnalyzer) decideScratchFresh(sc *Scratch, h intmat.Vector, pi intmat.Vector) (Result, error) {
	ar := sc.ar
	// Safe: everything previously handed out by ar is dead — cached
	// Results hold only heap clones.
	ar.Reset()
	inner, err := intmat.RowNullBasisAppend(sc.inner[:0], ar, h)
	if err != nil {
		return Result{}, err
	}
	sc.inner = inner[:0]
	n := sa.S.Cols()
	basis := sc.basis[:0]
	for _, a := range inner {
		g := ar.Vec(n)
		for t, w := range sa.W {
			c := a[t]
			if c == 0 {
				continue
			}
			for i, wi := range w {
				g[i] = intmat.AddChecked(g[i], intmat.MulChecked(c, wi))
			}
		}
		basis = append(basis, g)
	}
	sc.basis = basis[:0]
	sizeReduceBasis(basis)
	return sa.decideFromBasis(basis, pi)
}

// canonicalizeDirection reduces h in place to the canonical
// representative of its line: divided by gcd, first non-zero entry
// positive. Two h rows with the same canonical direction have the same
// null lattice, hence the same conflict verdict.
func canonicalizeDirection(h intmat.Vector) {
	g := h.GCD()
	if g > 1 {
		for i := range h {
			h[i] /= g
		}
	}
	for _, x := range h {
		if x == 0 {
			continue
		}
		if x < 0 {
			for i := range h {
				h[i] = -h[i]
			}
		}
		return
	}
}
