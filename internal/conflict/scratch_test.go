package conflict

import (
	"errors"
	"math/rand"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// TestDecideScratchAgreesWithDecide: across random (S, Π) pairs the
// scratch-backed decision — both its fresh path and its cache hits —
// must return the same verdict as the allocating Decide. Candidates are
// drawn with repeats and scalings so the cache actually fires.
func TestDecideScratchAgreesWithDecide(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	shapes := []struct{ sRows, n int }{{0, 2}, {0, 3}, {1, 3}, {1, 4}, {2, 4}, {2, 5}, {3, 5}}
	sc := GetScratch()
	defer PutScratch(sc)
	for _, sh := range shapes {
		set := uda.Cube(sh.n, 1+int64(rng.Intn(3)))
		var S *intmat.Matrix
		for {
			S = intmat.New(sh.sRows, sh.n)
			for i := 0; i < sh.sRows; i++ {
				for j := 0; j < sh.n; j++ {
					S.Set(i, j, rng.Int63n(7)-3)
				}
			}
			if sh.sRows == 0 || S.Rank() == sh.sRows {
				break
			}
		}
		sa, err := NewSpaceAnalyzer(S, set)
		if err != nil {
			t.Fatalf("NewSpaceAnalyzer: %v", err)
		}
		var pis []intmat.Vector
		for trial := 0; trial < 300; trial++ {
			var pi intmat.Vector
			switch {
			case len(pis) > 0 && trial%4 == 1:
				pi = pis[rng.Intn(len(pis))] // exact repeat → cache hit
			case len(pis) > 0 && trial%4 == 3:
				// Scaled repeat: same h line, different Π.
				c := int64(2 + rng.Intn(3))
				pi = pis[rng.Intn(len(pis))].Scale(c)
			default:
				pi = make(intmat.Vector, sh.n)
				for i := range pi {
					pi[i] = rng.Int63n(9) - 4
				}
				pis = append(pis, pi)
			}
			want, wantErr := sa.Decide(pi)
			got, gotErr := sa.DecideScratch(sc, pi)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: Decide=%v DecideScratch=%v (S=\n%v Π=%v)", wantErr, gotErr, S, pi)
			}
			if wantErr != nil {
				if errors.Is(wantErr, ErrRank) != errors.Is(gotErr, ErrRank) {
					t.Fatalf("error class mismatch: Decide=%v DecideScratch=%v", wantErr, gotErr)
				}
				continue
			}
			if got.ConflictFree != want.ConflictFree {
				t.Fatalf("verdict mismatch: scratch=%v (%s) plain=%v (%s)\nS=\n%v\nΠ=%v",
					got.ConflictFree, got.Method, want.ConflictFree, want.Method, S, pi)
			}
			if !got.ConflictFree {
				// Any returned witness must be a genuine in-box conflict
				// vector of [S; Π].
				T := S.AppendRow(pi)
				if got.Witness == nil || !T.MulVec(got.Witness).IsZero() {
					t.Fatalf("witness %v not in null(T)\nT=\n%v", got.Witness, T)
				}
				for i, x := range got.Witness {
					if x < 0 {
						x = -x
					}
					if x > set.Upper[i] {
						t.Fatalf("witness %v outside box %v", got.Witness, set.Upper)
					}
				}
			}
		}
	}
	hits, misses := sc.TakeStats()
	if hits == 0 {
		t.Fatalf("cache never hit (hits=%d misses=%d): repeats and scalings should share h lines", hits, misses)
	}
}

// TestDecideScratchRebind: switching a scratch between analyzers must
// drop the cache — the key is expressed in W coordinates.
func TestDecideScratchRebind(t *testing.T) {
	set := uda.Cube(3, 4)
	sa1, err := NewSpaceAnalyzer(intmat.FromRows([]int64{1, 1, -1}), set)
	if err != nil {
		t.Fatal(err)
	}
	sa2, err := NewSpaceAnalyzer(intmat.FromRows([]int64{1, 2, 1}), set)
	if err != nil {
		t.Fatal(err)
	}
	sc := GetScratch()
	defer PutScratch(sc)
	pi := intmat.Vec(2, 0, 1)
	for _, sa := range []*SpaceAnalyzer{sa1, sa2, sa1} {
		want, err1 := sa.Decide(pi)
		got, err2 := sa.DecideScratch(sc, pi)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		if got.ConflictFree != want.ConflictFree {
			t.Fatalf("rebind verdict mismatch for S=\n%v", sa.S)
		}
	}
	hits, misses := sc.TakeStats()
	if hits != 0 || misses != 3 {
		t.Fatalf("rebind must reset the cache: hits=%d misses=%d, want 0/3", hits, misses)
	}
}

// TestDecideScratchHitAllocFree: the steady-state (cache hit) decision
// path must not touch the heap.
func TestDecideScratchHitAllocFree(t *testing.T) {
	if intmat.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	set := uda.Cube(3, 4)
	sa, err := NewSpaceAnalyzer(intmat.FromRows([]int64{1, 1, -1}), set)
	if err != nil {
		t.Fatal(err)
	}
	sc := GetScratch()
	defer PutScratch(sc)
	pi := intmat.Vec(4, 1, 2)
	if _, err := sa.DecideScratch(sc, pi); err != nil { // populate the cache
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := sa.DecideScratch(sc, pi); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Fatalf("cache-hit DecideScratch allocated %.1f objects/op, want 0", got)
	}
	hits, _ := sc.TakeStats()
	if hits == 0 {
		t.Fatal("expected cache hits")
	}
}
