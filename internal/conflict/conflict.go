// Package conflict implements the computational-conflict theory of
// Shang & Fortes (1990): conflict vectors of a mapping matrix, the
// feasibility criterion for constant-bounded index sets, the closed-form
// unique conflict vector of the k = n−1 case, the Hermite-normal-form
// representation of all conflict vectors, and the necessary and/or
// sufficient conflict-freeness conditions of Theorems 4.3–4.8, together
// with an exact decision procedure valid for every k and a brute-force
// ground truth used for validation.
//
// Terminology follows the paper (Definition 2.3): for a mapping matrix
// T ∈ Z^{k×n} with rank k < n, a conflict vector is an integral vector
// γ ≠ 0 with Tγ = 0 and gcd(γ) = 1. The vector is feasible when no two
// points of the index set differ by γ; T is conflict-free when every
// conflict vector is feasible. Two computations mapped by a
// non-conflict-free T collide in the same processor at the same time.
package conflict

import (
	"errors"
	"fmt"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// Feasible reports whether γ is a feasible conflict vector for the
// constant-bounded index set — Theorem 2.2: γ is feasible iff some
// entry satisfies |γ_i| > μ_i.
func Feasible(set uda.IndexSet, gamma intmat.Vector) bool {
	if len(gamma) != set.Dim() {
		panic(fmt.Sprintf("conflict: Feasible dimension mismatch %d vs %d", len(gamma), set.Dim()))
	}
	for i, g := range gamma {
		a := g
		if a < 0 {
			a = -a
		}
		if a > set.Upper[i] {
			return true
		}
	}
	return false
}

// Analysis bundles a mapping matrix with an index set and the Hermite
// normal form of the matrix, giving access to the conflict-vector
// representation of Theorem 4.2.
type Analysis struct {
	T   *intmat.Matrix
	Set uda.IndexSet
	H   *intmat.HNF
}

// ErrRank reports that the mapping matrix violates the rank(T) = k
// requirement of Definition 2.2 (condition 4).
var ErrRank = errors.New("conflict: mapping matrix does not have full row rank")

// Analyze validates T against the index set and computes its Hermite
// normal form. T must have n = set.Dim() columns and full row rank.
func Analyze(t *intmat.Matrix, set uda.IndexSet) (*Analysis, error) {
	if t.Cols() != set.Dim() {
		return nil, fmt.Errorf("conflict: T has %d columns, index set dimension is %d", t.Cols(), set.Dim())
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	h, err := intmat.HermiteNormalForm(t)
	if err != nil {
		if errors.Is(err, intmat.ErrRankDeficient) {
			return nil, ErrRank
		}
		return nil, err
	}
	return &Analysis{T: t, Set: set, H: h}, nil
}

// K returns the number of rows of T (the mapped array has K−1
// dimensions).
func (a *Analysis) K() int { return a.T.Rows() }

// N returns the algorithm dimension.
func (a *Analysis) N() int { return a.T.Cols() }

// NullBasis returns the basis u_{k+1}, …, u_n of the conflict-vector
// lattice (the trailing columns of the HNF multiplier U).
func (a *Analysis) NullBasis() []intmat.Vector { return a.H.NullBasis() }

// Combine returns the conflict-lattice vector γ = Σ β_t·u_{k+t}
// corresponding to the free coordinates β (Theorem 4.2, Equation 4.3).
func (a *Analysis) Combine(beta intmat.Vector) intmat.Vector {
	basis := a.NullBasis()
	if len(beta) != len(basis) {
		panic(fmt.Sprintf("conflict: Combine got %d coordinates, want %d", len(beta), len(basis)))
	}
	gamma := intmat.NewVector(a.N())
	for t, b := range basis {
		gamma = gamma.Add(b.Scale(beta[t]))
	}
	return gamma
}

// Result is the outcome of a conflict-freeness decision.
type Result struct {
	ConflictFree bool
	// Witness is a non-feasible conflict vector when ConflictFree is
	// false and the deciding method produces one (the exact procedure
	// and the brute force always do; closed-form theorem checks may
	// leave it nil).
	Witness intmat.Vector
	// Method names the deciding criterion, e.g. "theorem-3.1",
	// "theorem-4.7", "exact-enumeration".
	Method string
}

func (r Result) String() string {
	if r.ConflictFree {
		return fmt.Sprintf("conflict-free (%s)", r.Method)
	}
	if r.Witness != nil {
		return fmt.Sprintf("has conflicts, witness %v (%s)", r.Witness, r.Method)
	}
	return fmt.Sprintf("has conflicts (%s)", r.Method)
}

// Decide determines conflict-freeness of T over the index set using the
// strongest applicable criterion from the paper:
//
//	k = n   — rank(T) = n makes τ injective on Z^n: always conflict-free.
//	k = n−1 — Theorem 3.1: the unique conflict vector decides (exact in
//	          both directions).
//	k = n−2 — Theorem 4.7 as a fast path confirming conflict-freeness.
//	k = n−3 — Theorem 4.8, likewise.
//	any k   — the exact bounded-lattice enumeration as the fallback.
//
// The paper states Theorems 4.7 and 4.8 as necessary and sufficient,
// but the necessity direction has a gap: when a row of the null basis
// has mixed signs, |u_{i,n−1} + u_{i,n}| can exceed μ_i even though the
// row fails the same-sign requirement, so a matrix can be conflict-free
// with condition (1) violated (see the package tests, which exhibit
// such matrices). Decide therefore treats the theorem conditions as
// sufficient certificates and resolves the remaining cases with the
// exact enumeration, keeping the overall decision exact in both
// directions.
func Decide(t *intmat.Matrix, set uda.IndexSet) (Result, error) {
	a, err := Analyze(t, set)
	if err != nil {
		return Result{}, err
	}
	k, n := a.K(), a.N()
	switch {
	case k >= n:
		return Result{ConflictFree: true, Method: "full-rank-injective"}, nil
	case k == n-1:
		gamma, err := UniqueConflictVector(t)
		if err != nil {
			return Result{}, err
		}
		if Feasible(set, gamma) {
			return Result{ConflictFree: true, Method: "theorem-3.1"}, nil
		}
		return Result{ConflictFree: false, Witness: gamma, Method: "theorem-3.1"}, nil
	case k == n-2:
		if a.Theorem47() {
			return Result{ConflictFree: true, Method: "theorem-4.7"}, nil
		}
		return a.exactResult("exact-after-4.7")
	case k == n-3:
		if a.Theorem48() {
			return Result{ConflictFree: true, Method: "theorem-4.8"}, nil
		}
		return a.exactResult("exact-after-4.8")
	default:
		if a.Theorem45() {
			return Result{ConflictFree: true, Method: "theorem-4.5"}, nil
		}
		return a.exactResult("exact-enumeration")
	}
}

func (a *Analysis) exactResult(method string) (Result, error) {
	free, witness, err := a.ExactDecision()
	if err != nil {
		return Result{}, err
	}
	return Result{ConflictFree: free, Witness: witness, Method: method}, nil
}
