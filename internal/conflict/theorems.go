package conflict

import (
	"errors"
	"fmt"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// This file implements the general-case machinery of Section 4: the
// exact decision procedure built on the Theorem 4.2 representation, and
// the closed-form conditions of Theorems 4.3, 4.4, 4.5, 4.6, 4.7, 4.8.

// ErrBudget reports that the exact enumeration would visit more lattice
// points than the configured budget allows.
var ErrBudget = errors.New("conflict: exact enumeration budget exceeded")

// enumBudget caps the number of β-lattice points ExactDecision may
// visit. The mapping problems of the paper stay far below this.
const enumBudget = 50_000_000

// ExactDecision decides conflict-freeness exactly for any k < n: T has
// a computational conflict iff the null lattice of T contains a nonzero
// vector γ with |γ_i| ≤ μ_i for all i (by Theorem 2.2 such a γ is a
// non-feasible conflict vector after division by its gcd). The lattice
// is enumerated in the β-coordinates of Theorem 4.2: every candidate γ
// satisfies β = Vγ with β_1 = … = β_k = 0, so the free coordinates
// β_{k+1}, …, β_n are bounded by |β_t| ≤ Σ_i |v_{t,i}|·μ_i. The
// returned witness, when present, is the canonicalized non-feasible
// conflict vector.
func (a *Analysis) ExactDecision() (conflictFree bool, witness intmat.Vector, err error) {
	defer intmat.Guard(&err)
	k, n := a.K(), a.N()
	if k >= n {
		return true, nil, nil
	}
	basis := a.NullBasis()
	V := a.H.V()
	// Bounds on the free β coordinates.
	bounds := make([]int64, n-k)
	total := int64(1)
	for t := range bounds {
		var b int64
		row := V.Row(k + t)
		for i := 0; i < n; i++ {
			abs := row[i]
			if abs < 0 {
				abs = -abs
			}
			b += abs * a.Set.Upper[i]
		}
		bounds[t] = b
		if total <= enumBudget {
			total *= 2*b + 1
		}
	}
	if total > enumBudget {
		return false, nil, fmt.Errorf("%w: %d points", ErrBudget, total)
	}
	// Odometer over β ∈ ∏[-bound_t, bound_t], skipping zero.
	beta := make(intmat.Vector, n-k)
	for t := range beta {
		beta[t] = -bounds[t]
	}
	gamma := intmat.NewVector(n)
	for {
		if !beta.IsZero() {
			for i := range gamma {
				gamma[i] = 0
			}
			inBox := true
			for t, b := range beta {
				if b == 0 {
					continue
				}
				u := basis[t]
				for i := range gamma {
					gamma[i] += b * u[i]
				}
			}
			for i, g := range gamma {
				if g < 0 {
					g = -g
				}
				if g > a.Set.Upper[i] {
					inBox = false
					break
				}
			}
			if inBox {
				return false, gamma.Canonical(), nil
			}
		}
		// Increment.
		t := 0
		for t < len(beta) {
			beta[t]++
			if beta[t] <= bounds[t] {
				break
			}
			beta[t] = -bounds[t]
			t++
		}
		if t == len(beta) {
			return true, nil, nil
		}
	}
}

// Theorem43 checks necessary condition 2: in every column of V = U⁻¹,
// at least one of the first k entries must be non-zero. A violation
// means some unit vector e_i is itself a conflict vector, which can
// never be feasible (|(e_i)_i| = 1 ≤ μ_i).
func (a *Analysis) Theorem43() bool {
	V := a.H.V()
	k, n := a.K(), a.N()
	for j := 0; j < n; j++ {
		nonZero := false
		for i := 0; i < k; i++ {
			if V.At(i, j) != 0 {
				nonZero = true
				break
			}
		}
		if !nonZero {
			return false
		}
	}
	return true
}

// Theorem44 checks necessary condition 3: every null-basis column
// u_{k+1}, …, u_n must itself be a feasible conflict vector.
func (a *Analysis) Theorem44() bool {
	for _, u := range a.NullBasis() {
		if !Feasible(a.Set, u) {
			return false
		}
	}
	return true
}

// Theorem45 checks sufficient condition 4: there exist n−k rows
// i_1, …, i_{n−k} of the null block of U such that (1) each row's gcd
// exceeds its bound, gcd(u_{i,k+1}, …, u_{i,n}) ≥ μ_i + 1, and (2) the
// (n−k)×(n−k) submatrix they form is nonsingular. When it holds, T is
// conflict-free (the converse fails in general — the condition is only
// sufficient).
func (a *Analysis) Theorem45() bool { return theorem45Basis(a.NullBasis(), a.Set) }

func theorem45Basis(basis []intmat.Vector, set uda.IndexSet) bool {
	n := set.Dim()
	// Candidate rows: those whose gcd across the null columns beats μ_i.
	var candidates []int
	for i := 0; i < n; i++ {
		vals := make([]int64, len(basis))
		for t, u := range basis {
			vals[t] = u[i]
		}
		if g := intmat.GCDAll(vals...); g >= set.Upper[i]+1 {
			candidates = append(candidates, i)
		}
	}
	need := len(basis)
	if len(candidates) < need {
		return false
	}
	// Search all size-(n−k) subsets for a nonsingular minor.
	rowsOf := func(idx []int) *intmat.Matrix {
		m := intmat.New(len(idx), need)
		for r, i := range idx {
			for t, u := range basis {
				m.Set(r, t, u[i])
			}
		}
		return m
	}
	var pick func(start int, chosen []int) bool
	pick = func(start int, chosen []int) bool {
		if len(chosen) == need {
			return rowsOf(chosen).Det() != 0
		}
		for c := start; c < len(candidates); c++ {
			if pick(c+1, append(chosen, candidates[c])) {
				return true
			}
		}
		return false
	}
	return pick(0, nil)
}

// sameSign reports whether a and b can be assigned the same sign, with
// zero counting as either sign (the paper's convention in Theorems
// 4.6–4.8: "let the sign of the number zero be defined as either
// positive or negative").
func sameSign(a, b int64) bool { return a == 0 || b == 0 || (a > 0) == (b > 0) }

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// Theorem46 checks sufficient condition 5 for T ∈ Z^{(n−2)×n}:
//
//  1. there exists i with gcd(u_{i,n−1}, u_{i,n}) ≥ μ_i + 1, and
//  2. for the (unique up to sign) relatively prime pair (β_{n−1}, β_n)
//     with β_{n−1}·u_{i,n−1} + β_n·u_{i,n} = 0, there exists j ≠ i with
//     |β_{n−1}·u_{j,n−1} + β_n·u_{j,n}| > μ_j.
//
// Any combination with a non-zero i-th entry γ_i must have |γ_i| ≥
// gcd ≥ μ_i + 1; combinations that zero the i-th entry are exactly the
// integer multiples of the (β_{n−1}, β_n) pair, covered by condition 2.
// It panics if the analysis is not of codimension 2.
func (a *Analysis) Theorem46() bool {
	basis := a.NullBasis()
	if len(basis) != 2 {
		panic(fmt.Sprintf("conflict: Theorem46 needs n-k = 2, have %d", len(basis)))
	}
	return theorem46Basis(basis, a.Set)
}

func theorem46Basis(basis []intmat.Vector, set uda.IndexSet) bool {
	u1, u2 := basis[0], basis[1]
	n := set.Dim()
	for i := 0; i < n; i++ {
		g := intmat.GCD(u1[i], u2[i])
		if g < set.Upper[i]+1 {
			continue
		}
		// The kernel pair of row i: (β1, β2) ∝ (u2[i]/g, −u1[i]/g),
		// relatively prime by construction (g non-zero since g ≥ μ+1 ≥ 2).
		b1, b2 := u2[i]/g, -(u1[i] / g)
		ok := false
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if abs64(b1*u1[j]+b2*u2[j]) > set.Upper[j] {
				ok = true
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Theorem47 checks the necessary-and-sufficient condition for
// T ∈ Z^{(n−2)×n} (two null-basis columns u_{n−1}, u_n):
//
//	(1) ∃i: u_{i,n−1}·u_{i,n} ≥ 0 and |u_{i,n−1} + u_{i,n}| > μ_i
//	(2) ∃j: u_{j,n−1}·u_{j,n} ≤ 0 and |u_{j,n−1} − u_{j,n}| > μ_j
//	(3) u_{n−1} and u_n are feasible conflict vectors.
//
// It panics if the analysis is not of codimension 2.
func (a *Analysis) Theorem47() bool {
	basis := a.NullBasis()
	if len(basis) != 2 {
		panic(fmt.Sprintf("conflict: Theorem47 needs n-k = 2, have %d", len(basis)))
	}
	return theorem47Basis(basis, a.Set)
}

func theorem47Basis(basis []intmat.Vector, set uda.IndexSet) bool {
	u1, u2 := basis[0], basis[1]
	n := set.Dim()
	cond1, cond2 := false, false
	for i := 0; i < n; i++ {
		if sameSign(u1[i], u2[i]) && abs64(u1[i]+u2[i]) > set.Upper[i] {
			cond1 = true
		}
		if sameSign(u1[i], -u2[i]) && abs64(u1[i]-u2[i]) > set.Upper[i] {
			cond2 = true
		}
	}
	return cond1 && cond2 && Feasible(set, u1) && Feasible(set, u2)
}

// Theorem48 checks the necessary-and-sufficient condition for
// T ∈ Z^{(n−3)×n} (three null-basis columns u_{n−2}, u_{n−1}, u_n).
// With the sign of zero free, the four sign patterns (+,+,+), (+,+,−),
// (+,−,+) and (−,+,+) of (β_{n−2}, β_{n−1}, β_n) each need a row whose
// correspondingly-signed combination exceeds its bound, and each basis
// column must itself be feasible (covering the patterns with zeros).
func (a *Analysis) Theorem48() bool {
	basis := a.NullBasis()
	if len(basis) != 3 {
		panic(fmt.Sprintf("conflict: Theorem48 needs n-k = 3, have %d", len(basis)))
	}
	return theorem48Basis(basis, a.Set)
}

func theorem48Basis(basis []intmat.Vector, set uda.IndexSet) bool {
	u1, u2, u3 := basis[0], basis[1], basis[2]
	n := set.Dim()
	// signs[s] = (s1, s2, s3) pattern; condition c holds if some row i
	// has s1·u1[i], s2·u2[i], s3·u3[i] all assignable the same sign and
	// |s1·u1[i] + s2·u2[i] + s3·u3[i]| > μ_i.
	patterns := [4][3]int64{
		{1, 1, 1},
		{1, 1, -1},
		{1, -1, 1},
		{-1, 1, 1},
	}
	for _, p := range patterns {
		ok := false
		for i := 0; i < n; i++ {
			a1, a2, a3 := p[0]*u1[i], p[1]*u2[i], p[2]*u3[i]
			if sameSign(a1, a2) && sameSign(a2, a3) && sameSign(a1, a3) &&
				abs64(a1+a2+a3) > set.Upper[i] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	// Pairwise combinations with one β zero reduce to the codimension-2
	// argument on each pair of columns; single-column cases reduce to
	// feasibility of the columns themselves.
	pairs := [3][2]intmat.Vector{{u1, u2}, {u1, u3}, {u2, u3}}
	for _, pr := range pairs {
		cond1, cond2 := false, false
		for i := 0; i < n; i++ {
			x, y := pr[0][i], pr[1][i]
			if sameSign(x, y) && abs64(x+y) > set.Upper[i] {
				cond1 = true
			}
			if sameSign(x, -y) && abs64(x-y) > set.Upper[i] {
				cond2 = true
			}
		}
		if !cond1 || !cond2 {
			return false
		}
	}
	return Feasible(set, u1) && Feasible(set, u2) && Feasible(set, u3)
}
