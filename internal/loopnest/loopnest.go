// Package loopnest is the front end that turns nested-loop programs
// into uniform dependence algorithms — the pipeline stage the paper
// attributes to RAB: "the dependence relations are analyzed and the
// algorithm is uniformized" (Section 1).
//
// The input model matches the paper's program class (Section 2): a
// single statement inside an n-deep loop nest with constant bounds,
// where every array subscript is an affine function of the loop
// variables. Two analyses produce the dependence matrix D:
//
//   - flow dependencies: a read of the array written by the statement
//     depends on the iteration that produced the value; with equal
//     access matrices the distance vector is constant (uniform) and is
//     recovered by exact integer solving;
//   - input uniformization: a read of an input array whose access
//     matrix is column-rank-deficient touches the same element from
//     many iterations (a broadcast); the broadcast is serialized into
//     propagation dependencies along a lattice basis of the access
//     matrix's null space, exactly the classical uniformization the
//     paper cites.
//
// The result is a uda.Algorithm whose (J, D) pair feeds the mapping
// machinery; for the matrix multiplication statement
// C[i,j] = C[i,j] + A[i,k]*B[k,j] the derived D is the paper's
// Equation 3.4 identity matrix.
package loopnest

import (
	"errors"
	"fmt"
	"strings"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// Affine is an affine subscript expression Σ Coef_i·var_i + Const.
type Affine struct {
	Coef  intmat.Vector
	Const int64
}

func (a Affine) String() string {
	var parts []string
	for i, c := range a.Coef {
		switch {
		case c == 0:
		case c == 1:
			parts = append(parts, fmt.Sprintf("v%d", i))
		default:
			parts = append(parts, fmt.Sprintf("%d*v%d", c, i))
		}
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprint(a.Const))
	}
	return strings.Join(parts, "+")
}

// Ref is an array reference with affine subscripts.
type Ref struct {
	Array string
	Index []Affine
}

func (r Ref) String() string {
	idx := make([]string, len(r.Index))
	for i, a := range r.Index {
		idx[i] = a.String()
	}
	return r.Array + "[" + strings.Join(idx, ",") + "]"
}

// accessMatrix returns (C, c): subscripts = C·j + c.
func (r Ref) accessMatrix(n int) (*intmat.Matrix, intmat.Vector) {
	m := intmat.New(len(r.Index), n)
	c := make(intmat.Vector, len(r.Index))
	for i, a := range r.Index {
		m.SetRow(i, a.Coef)
		c[i] = a.Const
	}
	return m, c
}

// Statement is a single assignment: Write = f(Reads...).
type Statement struct {
	Write Ref
	Reads []Ref
}

// Nest is an n-deep loop nest with constant bounds 0 ≤ var_i ≤ Bounds_i
// around a single statement.
type Nest struct {
	Name   string
	Vars   []string
	Bounds intmat.Vector
	Body   Statement
}

// Validate checks structural consistency.
func (nst *Nest) Validate() error {
	n := len(nst.Vars)
	if n == 0 {
		return errors.New("loopnest: no loop variables")
	}
	if len(nst.Bounds) != n {
		return fmt.Errorf("loopnest: %d bounds for %d variables", len(nst.Bounds), n)
	}
	for i, b := range nst.Bounds {
		if b < 1 {
			return fmt.Errorf("loopnest: bound of %s is %d, want ≥ 1", nst.Vars[i], b)
		}
	}
	check := func(r Ref) error {
		if r.Array == "" {
			return errors.New("loopnest: reference without array name")
		}
		if len(r.Index) == 0 {
			return fmt.Errorf("loopnest: %s has no subscripts", r.Array)
		}
		for _, a := range r.Index {
			if len(a.Coef) != n {
				return fmt.Errorf("loopnest: subscript of %s has %d coefficients, want %d", r.Array, len(a.Coef), n)
			}
		}
		return nil
	}
	if err := check(nst.Body.Write); err != nil {
		return err
	}
	if len(nst.Body.Reads) == 0 {
		return errors.New("loopnest: statement has no reads")
	}
	for _, r := range nst.Body.Reads {
		if err := check(r); err != nil {
			return err
		}
	}
	return nil
}

// ErrSameIteration reports a read of the element being written in the
// same iteration with no loop carrying the recurrence — illegal in a
// single statement, legal across statements when the writer precedes
// the reader textually (see AnalyzeMulti).
var ErrSameIteration = errors.New("loopnest: the statement reads the element it writes in the same iteration (no loop carries the recurrence)")

// DependenceInfo records the origin of one column of the derived D.
type DependenceInfo struct {
	Vector intmat.Vector
	// Kind is "flow" (value produced by an earlier iteration) or
	// "uniformized" (broadcast serialized into propagation).
	Kind string
	// Array is the array whose access induced the dependence.
	Array string
}

// Analysis is the result of analyzing a nest.
type Analysis struct {
	Algorithm    *uda.Algorithm
	Dependencies []DependenceInfo
}

// Analyze derives the uniform dependence algorithm (J, D) of the nest.
// It returns an error when a dependence is not uniform (different
// access matrices to the written array) or not lexicographically
// positive (the statement would read a value not yet produced).
func Analyze(nst *Nest) (*Analysis, error) {
	if err := nst.Validate(); err != nil {
		return nil, err
	}
	n := len(nst.Vars)
	wMat, wOff := nst.Body.Write.accessMatrix(n)
	var deps []DependenceInfo
	seen := map[string]bool{}
	add := func(d intmat.Vector, kind, arr string) {
		key := d.String()
		if seen[key] {
			return
		}
		seen[key] = true
		deps = append(deps, DependenceInfo{Vector: d, Kind: kind, Array: arr})
	}

	for _, r := range nst.Body.Reads {
		rMat, rOff := r.accessMatrix(n)
		if r.Array == nst.Body.Write.Array {
			// Flow dependence: writer at j−d, reader at j, with
			// W·(j−d) + wOff = R·j + rOff. Uniformity needs W = R
			// entrywise; the distance solves W·d = wOff − rOff.
			if len(r.Index) != len(nst.Body.Write.Index) {
				return nil, fmt.Errorf("loopnest: %s read/write arity mismatch", r.Array)
			}
			if !wMat.Equal(rMat) {
				return nil, fmt.Errorf("loopnest: dependence on %s is not uniform: read access %v differs from write access %v in the linear part", r.Array, rMat, wMat)
			}
			d, aliases, err := flowDistance(wMat, wOff.Sub(rOff))
			if err != nil {
				return nil, fmt.Errorf("loopnest: %s: %w", r.Array, err)
			}
			if aliases {
				add(d, "flow", r.Array)
				continue
			}
			// Read and write never touch the same element (e.g. A[2i] vs
			// A[2i+1]): no flow dependence — the read behaves like an
			// input and may still need broadcast uniformization below.
		}
		// Input-like read: uniformize broadcasts along null(access).
		reduced := independentRows(rMat)
		if reduced.Rows() == rMat.Cols() {
			continue // bijective-ish access: every iteration reads its own element
		}
		var nullBasis []intmat.Vector
		if reduced.Rows() == 0 {
			for j := 0; j < n; j++ {
				e := intmat.NewVector(n)
				e[j] = 1
				nullBasis = append(nullBasis, e)
			}
		} else {
			h, err := intmat.HermiteNormalForm(reduced)
			if err != nil {
				return nil, fmt.Errorf("loopnest: %s: access analysis failed: %v", r.Array, err)
			}
			nullBasis = h.NullBasis()
		}
		for _, w := range nullBasis {
			add(lexPositive(w), "uniformized", r.Array)
		}
	}
	if len(deps) == 0 {
		return nil, errors.New("loopnest: statement induces no dependencies — every read is a distinct pure input; any full-rank T is trivially valid")
	}
	d := intmat.New(n, len(deps))
	for i, di := range deps {
		d.SetCol(i, di.Vector)
	}
	algo := &uda.Algorithm{Name: nst.Name, Set: uda.IndexSet{Upper: nst.Bounds.Clone()}, D: d}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	return &Analysis{Algorithm: algo, Dependencies: deps}, nil
}

// flowDistance solves W·d = rhs for the realized flow-dependence
// distance: the reader at iteration j consumes the value produced by
// the lexicographically latest earlier writer, so the distance is the
// lexicographically smallest strictly positive element of the solution
// set d0 + null(W). Along a line that minimum is well-defined (lex
// order is monotone in the line parameter); for null dimension 0 the
// solution is unique; for the full-dimensional null space (a scalar
// accumulator) the nearest writer is always the immediate predecessor
// e_n. Intermediate null dimensions make the nearest writer
// point-dependent — not a uniform dependence — and are rejected.
// aliases is false (with nil error) when the read and write can never
// touch the same element, i.e. there is no flow dependence at all.
func flowDistance(w *intmat.Matrix, rhs intmat.Vector) (d intmat.Vector, aliases bool, err error) {
	n := w.Cols()
	// Reduce to independent rows (repeated subscripts are consistent or
	// the system is infeasible; consistency is verified at the end).
	wr := independentRows(w)
	rowsUsed := independentRowIndices(w)
	rhsR := make(intmat.Vector, len(rowsUsed))
	for i, r := range rowsUsed {
		rhsR[i] = rhs[r]
	}
	var d0 intmat.Vector
	var nullBasis []intmat.Vector
	if wr.Rows() == 0 {
		d0 = intmat.NewVector(n)
		for j := 0; j < n; j++ {
			e := intmat.NewVector(n)
			e[j] = 1
			nullBasis = append(nullBasis, e)
		}
	} else {
		h, herr := intmat.HermiteNormalForm(wr)
		if herr != nil {
			return nil, false, fmt.Errorf("access matrix analysis failed: %v", herr)
		}
		// Solve L·y = rhsR by forward substitution; entries must divide
		// exactly for an integral solution to exist.
		k := wr.Rows()
		y := make(intmat.Vector, n)
		L := h.H
		for i := 0; i < k; i++ {
			acc := rhsR[i]
			for j := 0; j < i; j++ {
				acc -= L.At(i, j) * y[j]
			}
			if L.At(i, i) == 0 || acc%L.At(i, i) != 0 {
				return nil, false, nil // accesses never alias: no flow dependence
			}
			y[i] = acc / L.At(i, i)
		}
		d0 = h.U.MulVec(y)
		nullBasis = h.NullBasis()
	}
	// Consistency on redundant rows.
	if !w.MulVec(d0).Equal(rhs) {
		return nil, false, nil // inconsistent subscripts: never alias
	}
	d, err = minimalLexPositive(d0, nullBasis)
	if err != nil {
		return nil, false, err
	}
	return d, true, nil
}

// minimalLexPositive returns the lexicographically smallest strictly
// positive representative of d0 + span_Z(basis), for null dimensions
// 0, 1 and full (see flowDistance).
func minimalLexPositive(d0 intmat.Vector, basis []intmat.Vector) (intmat.Vector, error) {
	n := len(d0)
	switch len(basis) {
	case 0:
		switch lexSign(d0) {
		case 0:
			return nil, ErrSameIteration
		case -1:
			return nil, errors.New("dependence distance is lexicographically negative: the statement reads a value produced by a later iteration")
		}
		return d0, nil
	case n:
		// W ≡ 0: every iteration touches the same element; the nearest
		// earlier writer is the immediate lexicographic predecessor.
		e := intmat.NewVector(n)
		e[n-1] = 1
		return e, nil
	case 1:
		w := lexPositive(basis[0])
		// lex order of d0 + t·w is strictly increasing in t; binary
		// search for the smallest t with a strictly positive vector.
		lo, hi := int64(-1), int64(1)
		for lexSign(d0.Add(w.Scale(lo))) > 0 {
			lo *= 2
			if lo < -(1 << 40) {
				return nil, errors.New("internal: unbounded lexicographic search")
			}
		}
		for lexSign(d0.Add(w.Scale(hi))) <= 0 {
			hi *= 2
			if hi > 1<<40 {
				return nil, errors.New("internal: unbounded lexicographic search")
			}
		}
		for lo+1 < hi {
			mid := lo + (hi-lo)/2
			if lexSign(d0.Add(w.Scale(mid))) > 0 {
				hi = mid
			} else {
				lo = mid
			}
		}
		return d0.Add(w.Scale(hi)), nil
	default:
		return nil, fmt.Errorf("recurrence has a %d-dimensional family of producing iterations — the nearest writer is point-dependent, not a uniform dependence", len(basis))
	}
}

func lexSign(v intmat.Vector) int {
	for _, x := range v {
		if x > 0 {
			return 1
		}
		if x < 0 {
			return -1
		}
	}
	return 0
}

func lexLess(a, b intmat.Vector) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// lexPositive flips a vector so its first non-zero entry is positive —
// propagation direction for uniformized broadcasts (either direction
// serializes the broadcast; lex-positive respects execution order for
// any valid schedule with positive entries).
func lexPositive(v intmat.Vector) intmat.Vector {
	if lexSign(v) < 0 {
		return v.Neg()
	}
	return v.Clone()
}

// independentRows returns a maximal set of linearly independent rows of
// m, in their original order.
func independentRows(m *intmat.Matrix) *intmat.Matrix {
	idx := independentRowIndices(m)
	cols := make([]int, m.Cols())
	for i := range cols {
		cols[i] = i
	}
	return m.Submatrix(idx, cols)
}

func independentRowIndices(m *intmat.Matrix) []int {
	var idx []int
	cur := intmat.New(0, m.Cols())
	for r := 0; r < m.Rows(); r++ {
		cand := cur.AppendRow(m.Row(r))
		if cand.Rank() == cand.Rows() {
			cur = cand
			idx = append(idx, r)
		}
	}
	return idx
}
