package loopnest

import "testing"

// FuzzParse: the statement parser must never panic and must either
// produce a valid nest or a descriptive error, for arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add("C[i,j] = C[i,j] + A[i,k]*B[k,j]")
	f.Add("y[i] = y[i] + h[k] * x[i-k]")
	f.Add("u[t,x] = u[t-1,x-1] + u[t-1,x+1]")
	f.Add("A[2*i-j+3, j] = A[2*i-j+2, j]")
	f.Add("")
	f.Add("[[[")
	f.Add("A[i] = = B[i]")
	f.Add("A[i] = B[((((i))))]")
	f.Fuzz(func(t *testing.T, stmt string) {
		nest, err := Parse("fuzz", []string{"i", "j", "k"}, []int64{3, 3, 3}, stmt)
		if err != nil {
			return
		}
		if err := nest.Validate(); err != nil {
			t.Fatalf("Parse accepted %q but Validate rejects: %v", stmt, err)
		}
		// Analysis must never panic either; errors are fine.
		_, _ = Analyze(nest)
	})
}
