package loopnest

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse builds a Nest from a textual single-statement loop body, e.g.
//
//	Parse("matmul", []string{"i", "j", "k"}, intmat.Vec(4, 4, 4),
//	      "C[i,j] = C[i,j] + A[i,k] * B[k,j]")
//
// The statement grammar is
//
//	stmt    := ref '=' expr
//	expr    := term  (('+'|'-') term)*
//	term    := factor (('*'|'/') factor)*
//	factor  := ref | number | ident | '(' expr ')'
//	ref     := ident '[' affine (',' affine)* ']'
//	affine  := ['+'|'-'] aterm (('+'|'-') aterm)*
//	aterm   := number ['*' var] | var
//
// Only array references matter for dependence analysis; scalar
// identifiers and literal arithmetic are accepted and ignored.
func Parse(name string, vars []string, bounds []int64, stmt string) (*Nest, error) {
	p := &parser{vars: vars}
	p.tokenize(stmt)
	lhs, err := p.ref()
	if err != nil {
		return nil, fmt.Errorf("loopnest: parse %q: left-hand side: %w", stmt, err)
	}
	if !p.eat("=") {
		return nil, fmt.Errorf("loopnest: parse %q: expected '=' after %s", stmt, lhs)
	}
	if err := p.expr(); err != nil {
		return nil, fmt.Errorf("loopnest: parse %q: %w", stmt, err)
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("loopnest: parse %q: trailing input at %q", stmt, p.peek())
	}
	nest := &Nest{Name: name, Vars: vars, Bounds: append([]int64{}, bounds...), Body: Statement{Write: lhs, Reads: p.reads}}
	if err := nest.Validate(); err != nil {
		return nil, err
	}
	return nest, nil
}

type parser struct {
	vars  []string
	toks  []string
	pos   int
	reads []Ref
}

func (p *parser) tokenize(s string) {
	var toks []string
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case unicode.IsDigit(c):
			j := i
			for j < len(s) && unicode.IsDigit(rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			toks = append(toks, string(c))
			i++
		}
	}
	p.toks = toks
}

func (p *parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.atEnd() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) eat(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

func isIdent(tok string) bool {
	if tok == "" {
		return false
	}
	c := rune(tok[0])
	return unicode.IsLetter(c) || c == '_'
}

func isNumber(tok string) bool {
	if tok == "" {
		return false
	}
	return unicode.IsDigit(rune(tok[0]))
}

// expr parses an expression, collecting array references into p.reads.
func (p *parser) expr() error {
	// Optional leading sign.
	if p.peek() == "+" || p.peek() == "-" {
		p.pos++
	}
	if err := p.term(); err != nil {
		return err
	}
	for p.peek() == "+" || p.peek() == "-" {
		p.pos++
		if err := p.term(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) term() error {
	if err := p.factor(); err != nil {
		return err
	}
	for p.peek() == "*" || p.peek() == "/" {
		p.pos++
		if err := p.factor(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) factor() error {
	tok := p.peek()
	switch {
	case tok == "(":
		p.pos++
		if err := p.expr(); err != nil {
			return err
		}
		if !p.eat(")") {
			return fmt.Errorf("expected ')' at %q", p.peek())
		}
		return nil
	case isNumber(tok):
		p.pos++
		return nil
	case isIdent(tok):
		// Array reference, function call, or plain scalar.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1] == "[" {
			r, err := p.ref()
			if err != nil {
				return err
			}
			p.reads = append(p.reads, r)
			return nil
		}
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1] == "(" {
			// Function call, e.g. min(D[i-1,j]+1, D[i,j-1]+1): the
			// callee name is ignored; argument expressions are scanned
			// for array references.
			p.pos += 2 // consume name and '('
			if p.eat(")") {
				return nil
			}
			for {
				if err := p.expr(); err != nil {
					return err
				}
				if p.eat(",") {
					continue
				}
				if p.eat(")") {
					return nil
				}
				return fmt.Errorf("expected ',' or ')' in call to %s, got %q", tok, p.peek())
			}
		}
		p.pos++
		return nil
	default:
		return fmt.Errorf("unexpected token %q", tok)
	}
}

func (p *parser) ref() (Ref, error) {
	tok := p.peek()
	if !isIdent(tok) {
		return Ref{}, fmt.Errorf("expected array name, got %q", tok)
	}
	p.pos++
	if !p.eat("[") {
		return Ref{}, fmt.Errorf("expected '[' after %s", tok)
	}
	var idx []Affine
	for {
		a, err := p.affine()
		if err != nil {
			return Ref{}, err
		}
		idx = append(idx, a)
		if p.eat(",") {
			continue
		}
		if p.eat("]") {
			break
		}
		return Ref{}, fmt.Errorf("expected ',' or ']' in subscripts of %s, got %q", tok, p.peek())
	}
	return Ref{Array: tok, Index: idx}, nil
}

// affine parses a subscript expression over the loop variables.
func (p *parser) affine() (Affine, error) {
	a := Affine{Coef: make([]int64, len(p.vars))}
	sign := int64(1)
	if p.eat("-") {
		sign = -1
	} else {
		p.eat("+")
	}
	for {
		if err := p.affineTerm(&a, sign); err != nil {
			return Affine{}, err
		}
		if p.eat("+") {
			sign = 1
			continue
		}
		if p.eat("-") {
			sign = -1
			continue
		}
		return a, nil
	}
}

func (p *parser) affineTerm(a *Affine, sign int64) error {
	tok := p.peek()
	switch {
	case isNumber(tok):
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return err
		}
		p.pos++
		if p.eat("*") {
			vtok := p.peek()
			vi := p.varIndex(vtok)
			if vi < 0 {
				return fmt.Errorf("expected loop variable after '%d*', got %q", v, vtok)
			}
			p.pos++
			a.Coef[vi] += sign * v
			return nil
		}
		a.Const += sign * v
		return nil
	case isIdent(tok):
		vi := p.varIndex(tok)
		if vi < 0 {
			return fmt.Errorf("unknown loop variable %q in subscript (declared: %s)", tok, strings.Join(p.vars, ", "))
		}
		p.pos++
		a.Coef[vi] += sign
		return nil
	default:
		return fmt.Errorf("unexpected token %q in subscript", tok)
	}
}

func (p *parser) varIndex(tok string) int {
	for i, v := range p.vars {
		if v == tok {
			return i
		}
	}
	return -1
}
