package loopnest

import (
	"errors"
	"fmt"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// This file extends the front end to multi-statement loop bodies via
// statement alignment — the technique the paper points to for programs
// with several statements ("Nested loop programs with multiple
// statements can also use the techniques of this paper together with
// the alignment method discussed in [14] and [24]", Section 2).
//
// Each statement S_s is given an integer offset σ_s; the instance of
// S_s at iteration j̄ is re-indexed to j̄ + σ_s, and all statements at
// the same re-indexed point merge into one macro-computation. A
// cross-statement dependence with raw distance d̄ becomes
// d̄ + σ_writer − σ_reader after alignment; a zero adjusted distance is
// internal to the macro node (legal exactly when the writer precedes
// the reader textually), and the optimizer chooses offsets minimizing
// the total adjusted communication Σ‖d̄'‖₁ — driving as many edges to
// zero as possible, the classical alignment objective.

// MultiNest is a loop nest with an ordered list of statements.
type MultiNest struct {
	Name   string
	Vars   []string
	Bounds intmat.Vector
	Stmts  []Statement
}

// Validate checks structure: distinct written arrays, consistent
// subscript arities.
func (mn *MultiNest) Validate() error {
	if len(mn.Stmts) == 0 {
		return errors.New("loopnest: no statements")
	}
	written := map[string]int{}
	for s, st := range mn.Stmts {
		single := &Nest{Name: mn.Name, Vars: mn.Vars, Bounds: mn.Bounds, Body: st}
		if err := single.Validate(); err != nil {
			return fmt.Errorf("statement %d: %w", s+1, err)
		}
		if prev, dup := written[st.Write.Array]; dup {
			return fmt.Errorf("loopnest: array %s written by statements %d and %d — single assignment per array required", st.Write.Array, prev+1, s+1)
		}
		written[st.Write.Array] = s
	}
	return nil
}

// ParseMulti parses one statement string per list entry into a
// MultiNest.
func ParseMulti(name string, vars []string, bounds []int64, stmts []string) (*MultiNest, error) {
	if len(stmts) == 0 {
		return nil, errors.New("loopnest: no statements")
	}
	mn := &MultiNest{Name: name, Vars: vars, Bounds: append(intmat.Vector{}, bounds...)}
	for i, stmt := range stmts {
		nest, err := Parse(fmt.Sprintf("%s#%d", name, i+1), vars, bounds, stmt)
		if err != nil {
			return nil, err
		}
		mn.Stmts = append(mn.Stmts, nest.Body)
	}
	if err := mn.Validate(); err != nil {
		return nil, err
	}
	return mn, nil
}

// CrossDep records one cross-statement dependence edge.
type CrossDep struct {
	Writer, Reader int // statement indexes (0-based)
	Array          string
	// Raw is the distance before alignment, Adjusted after.
	Raw, Adjusted intmat.Vector
}

// MultiAnalysis is the merged, aligned uniform dependence algorithm.
type MultiAnalysis struct {
	Algorithm *uda.Algorithm
	// Offsets are the alignment vectors σ_s per statement.
	Offsets []intmat.Vector
	// Edges are the cross-statement dependencies (zero Adjusted =
	// internalized by the alignment).
	Edges []CrossDep
	// Dependencies records the columns of the merged D with provenance.
	Dependencies []DependenceInfo
	// Internalized counts cross edges driven to zero communication.
	Internalized int
}

// AlignOptions bounds the offset search.
type AlignOptions struct {
	// MaxOffset bounds |σ_s[i]| (default: the largest raw cross
	// distance magnitude, so any single edge can be internalized).
	MaxOffset int64
}

// AnalyzeMulti derives per-statement and cross-statement dependencies,
// aligns the statements, and merges everything into one uniform
// dependence algorithm over the original index set. Boundary effects of
// the re-indexing (instances shifted past the box edges) follow the
// usual convention: out-of-set sources are inputs.
func AnalyzeMulti(mn *MultiNest, opts *AlignOptions) (*MultiAnalysis, error) {
	if err := mn.Validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &AlignOptions{}
	}
	n := len(mn.Vars)
	q := len(mn.Stmts)
	writerOf := map[string]int{}
	for s, st := range mn.Stmts {
		writerOf[st.Write.Array] = s
	}

	// Per-statement dependencies (self flows + input uniformization)
	// are alignment-invariant: both endpoints shift together.
	var deps []DependenceInfo
	seen := map[string]bool{}
	add := func(d intmat.Vector, kind, arr string) {
		key := d.String()
		if seen[key] || d.IsZero() {
			return
		}
		seen[key] = true
		deps = append(deps, DependenceInfo{Vector: d, Kind: kind, Array: arr})
	}
	var edges []CrossDep
	for s, st := range mn.Stmts {
		wMat, wOff := st.Write.accessMatrix(n)
		for _, r := range st.Reads {
			rMat, rOff := r.accessMatrix(n)
			w, isCross := writerOf[r.Array]
			switch {
			case r.Array == st.Write.Array:
				// Self flow: same machinery as the single-statement case.
				if !wMat.Equal(rMat) {
					return nil, fmt.Errorf("loopnest: statement %d: dependence on %s is not uniform", s+1, r.Array)
				}
				d, aliases, err := flowDistance(wMat, wOff.Sub(rOff))
				if err != nil {
					return nil, fmt.Errorf("loopnest: statement %d: %s: %w", s+1, r.Array, err)
				}
				if aliases {
					add(d, "flow", r.Array)
					continue
				}
				uniformizeInput(rMat, n, add, r.Array)
			case isCross:
				other := mn.Stmts[w]
				owMat, owOff := other.Write.accessMatrix(n)
				if len(r.Index) != len(other.Write.Index) {
					return nil, fmt.Errorf("loopnest: %s read/write arity mismatch", r.Array)
				}
				if !owMat.Equal(rMat) {
					return nil, fmt.Errorf("loopnest: cross dependence on %s is not uniform", r.Array)
				}
				d, aliases, err := crossDistance(owMat, owOff.Sub(rOff))
				if err != nil {
					return nil, fmt.Errorf("loopnest: %s (statement %d → %d): %w", r.Array, w+1, s+1, err)
				}
				if !aliases {
					uniformizeInput(rMat, n, add, r.Array)
					continue
				}
				edges = append(edges, CrossDep{Writer: w, Reader: s, Array: r.Array, Raw: d})
			default:
				uniformizeInput(rMat, n, add, r.Array)
			}
		}
	}

	// Alignment: bounded exhaustive search over offsets (σ_1 = 0).
	offsets, err := alignOffsets(mn, edges, q, n, opts)
	if err != nil {
		return nil, err
	}
	internalized := 0
	for i := range edges {
		e := &edges[i]
		e.Adjusted = e.Raw.Add(offsets[e.Writer]).Sub(offsets[e.Reader])
		if e.Adjusted.IsZero() {
			internalized++
			continue
		}
		add(e.Adjusted, "cross", e.Array)
	}
	if len(deps) == 0 {
		return nil, errors.New("loopnest: merged statement induces no dependencies")
	}
	d := intmat.New(n, len(deps))
	for i, di := range deps {
		d.SetCol(i, di.Vector)
	}
	algo := &uda.Algorithm{Name: mn.Name, Set: uda.IndexSet{Upper: mn.Bounds.Clone()}, D: d}
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	return &MultiAnalysis{
		Algorithm:    algo,
		Offsets:      offsets,
		Edges:        edges,
		Dependencies: deps,
		Internalized: internalized,
	}, nil
}

// uniformizeInput adds broadcast-serialization dependencies for a read
// with rank-deficient access.
func uniformizeInput(rMat *intmat.Matrix, n int, add func(intmat.Vector, string, string), arr string) {
	reduced := independentRows(rMat)
	if reduced.Rows() == rMat.Cols() {
		return
	}
	if reduced.Rows() == 0 {
		for j := 0; j < n; j++ {
			e := intmat.NewVector(n)
			e[j] = 1
			add(e, "uniformized", arr)
		}
		return
	}
	h, err := intmat.HermiteNormalForm(reduced)
	if err != nil {
		return
	}
	for _, w := range h.NullBasis() {
		add(lexPositive(w), "uniformized", arr)
	}
}

// crossDistance is flowDistance under the single-assignment reading of
// cross-statement accesses (the paper's Definition 2.1 model is a
// system of recurrence equations, so textual order carries no meaning):
// a zero distance — the value produced by the other statement in the
// same iteration — is always a candidate; cyclic same-iteration
// dependence is rejected later by the alignment legality check.
func crossDistance(w *intmat.Matrix, rhs intmat.Vector) (intmat.Vector, bool, error) {
	if rhs.IsZero() {
		// Zero solves W·d = 0 and is the lexicographically smallest
		// non-negative distance.
		return intmat.NewVector(w.Cols()), true, nil
	}
	d, aliases, err := flowDistance(w, rhs)
	if err == nil {
		return d, aliases, nil
	}
	if errors.Is(err, ErrSameIteration) {
		return intmat.NewVector(w.Cols()), true, nil
	}
	return nil, false, err
}

// alignOffsets searches offsets σ_s ∈ [−B, B]^n (σ_1 = 0) minimizing
// Σ‖adjusted‖₁ subject to every adjusted distance being legal:
// lexicographically positive, or zero when the writer precedes the
// reader.
func alignOffsets(mn *MultiNest, edges []CrossDep, q, n int, opts *AlignOptions) ([]intmat.Vector, error) {
	offsets := make([]intmat.Vector, q)
	for s := range offsets {
		offsets[s] = intmat.NewVector(n)
	}
	if len(edges) == 0 || q == 1 {
		return offsets, nil
	}
	bound := opts.MaxOffset
	if bound == 0 {
		for _, e := range edges {
			if m := e.Raw.InfNorm(); m > bound {
				bound = m
			}
		}
		if bound == 0 {
			bound = 1
		}
	}
	// Exhaustive search over (2B+1)^(n·(q−1)) assignments; statements
	// and dimensions are small in this model (the search is gated).
	dims := n * (q - 1)
	total := 1.0
	for i := 0; i < dims; i++ {
		total *= float64(2*bound + 1)
		if total > 5e7 {
			return nil, fmt.Errorf("loopnest: alignment search space too large (%d statements × %d dims, |σ| ≤ %d); set AlignOptions.MaxOffset lower", q, n, bound)
		}
	}
	bestCost := int64(1) << 62
	var best []intmat.Vector
	cur := make([]intmat.Vector, q)
	cur[0] = intmat.NewVector(n)
	var rec func(s, i int)
	rec = func(s, i int) {
		if s == q {
			cost, ok := alignmentCost(edges, cur)
			if ok && cost < bestCost {
				bestCost = cost
				best = make([]intmat.Vector, q)
				for t := range cur {
					best[t] = cur[t].Clone()
				}
			}
			return
		}
		if i == n {
			rec(s+1, 0)
			return
		}
		if cur[s] == nil {
			cur[s] = intmat.NewVector(n)
		}
		for v := -bound; v <= bound; v++ {
			cur[s][i] = v
			rec(s, i+1)
		}
		cur[s][i] = 0
	}
	rec(1, 0)
	if best == nil {
		return nil, errors.New("loopnest: no legal alignment within the offset bound — some cross dependence cannot be made lexicographically non-negative")
	}
	return best, nil
}

// alignmentCost returns Σ‖d + σ_w − σ_s‖₁ and whether the assignment
// is legal: every adjusted edge lexicographically non-negative, and the
// zero-adjusted edges acyclic among the statements (a cycle of
// same-iteration dependencies has no execution order inside the merged
// macro node).
func alignmentCost(edges []CrossDep, offsets []intmat.Vector) (int64, bool) {
	var cost int64
	zeroAdj := make(map[int][]int) // writer → readers over zero edges
	for _, e := range edges {
		adj := e.Raw.Add(offsets[e.Writer]).Sub(offsets[e.Reader])
		switch lexSign(adj) {
		case -1:
			return 0, false
		case 0:
			zeroAdj[e.Writer] = append(zeroAdj[e.Writer], e.Reader)
		}
		cost += adj.AbsSum()
	}
	if hasCycle(zeroAdj, len(offsets)) {
		return 0, false
	}
	return cost, true
}

// hasCycle detects a directed cycle in the zero-edge statement graph.
func hasCycle(adj map[int][]int, q int) bool {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int, q)
	var dfs func(v int) bool
	dfs = func(v int) bool {
		state[v] = inStack
		for _, w := range adj[v] {
			switch state[w] {
			case inStack:
				return true
			case unvisited:
				if dfs(w) {
					return true
				}
			}
		}
		state[v] = done
		return false
	}
	for v := 0; v < q; v++ {
		if state[v] == unvisited && dfs(v) {
			return true
		}
	}
	return false
}
