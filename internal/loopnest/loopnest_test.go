package loopnest

import (
	"strings"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

func mustParse(t *testing.T, name string, vars []string, bounds []int64, stmt string) *Nest {
	t.Helper()
	nest, err := Parse(name, vars, bounds, stmt)
	if err != nil {
		t.Fatalf("Parse(%q): %v", stmt, err)
	}
	return nest
}

func mustAnalyze(t *testing.T, nest *Nest) *Analysis {
	t.Helper()
	a, err := Analyze(nest)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", nest.Name, err)
	}
	return a
}

func depSet(a *Analysis) map[string]string {
	m := map[string]string{}
	for _, d := range a.Dependencies {
		m[d.Vector.String()] = d.Kind
	}
	return m
}

// TestMatMulDerivesEquation34: the classic matmul statement must yield
// exactly the paper's dependence matrix D = I (Equation 3.4): the C
// accumulation is a flow dependence along k, and the A and B broadcasts
// uniformize along j and i respectively.
func TestMatMulDerivesEquation34(t *testing.T) {
	nest := mustParse(t, "matmul", []string{"i", "j", "k"}, []int64{4, 4, 4},
		"C[i,j] = C[i,j] + A[i,k] * B[k,j]")
	a := mustAnalyze(t, nest)
	deps := depSet(a)
	want := map[string]string{
		"[0 0 1]": "flow",        // C along k
		"[0 1 0]": "uniformized", // A broadcast along j
		"[1 0 0]": "uniformized", // B broadcast along i
	}
	if len(deps) != len(want) {
		t.Fatalf("deps = %v, want %v", deps, want)
	}
	for v, kind := range want {
		if deps[v] != kind {
			t.Errorf("dependence %s: kind %q, want %q", v, deps[v], kind)
		}
	}
	// The derived algorithm is interchangeable with the hand-written one.
	ref := uda.MatMul(4)
	if a.Algorithm.Dim() != ref.Dim() || a.Algorithm.NumDeps() != ref.NumDeps() {
		t.Errorf("derived algorithm shape differs: %v vs %v", a.Algorithm, ref)
	}
}

// TestConvolutionDerivation: y[i] = y[i] + h[k]*x[i-k] over (i, k).
func TestConvolutionDerivation(t *testing.T) {
	nest := mustParse(t, "conv", []string{"i", "k"}, []int64{6, 3},
		"y[i] = y[i] + h[k] * x[i-k]")
	a := mustAnalyze(t, nest)
	deps := depSet(a)
	want := map[string]string{
		"[0 1]": "flow",        // y accumulates along k
		"[1 0]": "uniformized", // h broadcast along i
		"[1 1]": "uniformized", // x constant along i−k = const diagonals
	}
	for v, kind := range want {
		if deps[v] != kind {
			t.Errorf("dependence %s: got %q, want %q (all: %v)", v, deps[v], kind, deps)
		}
	}
	if len(deps) != len(want) {
		t.Errorf("deps = %v, want exactly %v", deps, want)
	}
}

// TestStencilFlowDistances: u[t,x] = u[t-1,x-1] + u[t-1,x+1] has two
// uniform flow dependencies (1,1) and (1,-1).
func TestStencilFlowDistances(t *testing.T) {
	nest := mustParse(t, "stencil", []string{"t", "x"}, []int64{5, 5},
		"u[t,x] = u[t-1,x-1] + u[t-1,x+1]")
	a := mustAnalyze(t, nest)
	deps := depSet(a)
	if deps["[1 1]"] != "flow" || deps["[1 -1]"] != "flow" {
		t.Errorf("deps = %v", deps)
	}
	if len(deps) != 2 {
		t.Errorf("extra dependencies: %v", deps)
	}
}

// TestScalarAccumulator: s[0] = s[0] + a[i,j] — full-dimensional
// aliasing resolves to the immediate predecessor e_n.
func TestScalarAccumulator(t *testing.T) {
	nest := mustParse(t, "reduce", []string{"i", "j"}, []int64{3, 3},
		"s[0] = s[0] + a[i,j]")
	a := mustAnalyze(t, nest)
	deps := depSet(a)
	if deps["[0 1]"] != "flow" {
		t.Errorf("deps = %v, want flow [0 1]", deps)
	}
	if len(deps) != 1 {
		t.Errorf("deps = %v", deps)
	}
}

// TestNeverAliasingReadIsInput: A[2i] = A[2i+1] + ... never aliases;
// with a broadcast-free access there is no dependence from A at all.
func TestNeverAliasingReadIsInput(t *testing.T) {
	nest := mustParse(t, "odd-even", []string{"i", "j"}, []int64{4, 4},
		"A[2*i] = A[2*i+1] + B[j]")
	a := mustAnalyze(t, nest)
	deps := depSet(a)
	// A[2i+1] never aliases A[2i] → input-like; its access (2i+1) is
	// rank 1 over 2 vars → broadcast along j → dep (0,1).
	// B[j] broadcast along i → dep (1,0).
	if deps["[0 1]"] != "uniformized" || deps["[1 0]"] != "uniformized" {
		t.Errorf("deps = %v", deps)
	}
	if len(deps) != 2 {
		t.Errorf("deps = %v", deps)
	}
}

// TestAntiLexicographicRejected: reading a value produced later must be
// rejected.
func TestAntiLexicographicRejected(t *testing.T) {
	nest := mustParse(t, "bad", []string{"i"}, []int64{4},
		"u[i] = u[i+1] + 1")
	if _, err := Analyze(nest); err == nil || !strings.Contains(err.Error(), "lexicographically negative") {
		t.Errorf("err = %v", err)
	}
}

// TestSameIterationReadRejected: x[i] = x[i] with bijective access and
// no carrying loop is not a uniform dependence algorithm.
func TestSameIterationReadRejected(t *testing.T) {
	nest := mustParse(t, "bad", []string{"i"}, []int64{4},
		"x[i] = x[i] + 1")
	if _, err := Analyze(nest); err == nil || !strings.Contains(err.Error(), "same iteration") {
		t.Errorf("err = %v", err)
	}
}

// TestNonUniformRejected: transposed access is not uniform.
func TestNonUniformRejected(t *testing.T) {
	nest := mustParse(t, "bad", []string{"i", "j"}, []int64{4, 4},
		"A[i,j] = A[j,i] + 1")
	if _, err := Analyze(nest); err == nil || !strings.Contains(err.Error(), "not uniform") {
		t.Errorf("err = %v", err)
	}
}

// TestAmbiguousRecurrenceRejected: u[i] over (i,j,k): write access has
// a 2-dimensional null space → nearest writer is point-dependent.
func TestAmbiguousRecurrenceRejected(t *testing.T) {
	nest := mustParse(t, "bad", []string{"i", "j", "k"}, []int64{3, 3, 3},
		"u[i] = u[i-1] + 1")
	if _, err := Analyze(nest); err == nil || !strings.Contains(err.Error(), "point-dependent") {
		t.Errorf("err = %v", err)
	}
}

// TestPureInputsOnlyRejected: no dependence at all → not mappable by
// this machinery (and trivially parallel anyway).
func TestPureInputsOnlyRejected(t *testing.T) {
	nest := mustParse(t, "copy", []string{"i", "j"}, []int64{3, 3},
		"B[i,j] = A[i,j]")
	if _, err := Analyze(nest); err == nil || !strings.Contains(err.Error(), "no dependencies") {
		t.Errorf("err = %v", err)
	}
}

// TestEndToEndMatmulPipeline: parse → analyze → optimize: the derived
// matmul must admit the paper's optimal schedule (t = μ(μ+2)+1 via the
// schedule package is exercised in the example; here just check the
// algorithm validates and matches the library constructor's deps as a
// set).
func TestEndToEndMatmulPipeline(t *testing.T) {
	nest := mustParse(t, "matmul", []string{"i", "j", "k"}, []int64{4, 4, 4},
		"C[i,j] = C[i,j] + A[i,k] * B[k,j]")
	a := mustAnalyze(t, nest)
	ref := uda.MatMul(4)
	got := map[string]bool{}
	for i := 0; i < a.Algorithm.NumDeps(); i++ {
		got[a.Algorithm.Dep(i).String()] = true
	}
	for i := 0; i < ref.NumDeps(); i++ {
		if !got[ref.Dep(i).String()] {
			t.Errorf("derived D missing %v", ref.Dep(i))
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ vars, stmt string }{
		{"i", "= A[i]"},
		{"i", "A[i] B[i]"},
		{"i", "A[i] = "},
		{"i", "A[i] = B[q]"},
		{"i", "A[i] = B[i"},
		{"i", "A[i] = B[i] extra[i] ="},
		{"i", "A[] = B[i]"},
		{"i", "A[i] = (B[i]"},
		{"i", "A[i] = 2*"},
		{"i", "A[i,, ] = B[i]"},
	}
	for _, c := range cases {
		if _, err := Parse("x", strings.Split(c.vars, ","), []int64{4}, c.stmt); err == nil {
			t.Errorf("Parse(%q) accepted", c.stmt)
		}
	}
}

func TestParseAffineForms(t *testing.T) {
	nest := mustParse(t, "aff", []string{"i", "j"}, []int64{5, 5},
		"A[2*i-j+3, j] = A[2*i-j+2, j] + B[i, -j]")
	w := nest.Body.Write
	if !w.Index[0].Coef.Equal(intmat.Vec(2, -1)) || w.Index[0].Const != 3 {
		t.Errorf("write subscript 0 = %+v", w.Index[0])
	}
	if len(nest.Body.Reads) != 2 {
		t.Fatalf("reads = %v", nest.Body.Reads)
	}
	b := nest.Body.Reads[1]
	if !b.Index[1].Coef.Equal(intmat.Vec(0, -1)) {
		t.Errorf("B subscript 1 = %+v", b.Index[1])
	}
	// The A self-reference has distance solving 2d_i − d_j = 1, d_j = 0
	// → d = (?, 0): 2d_i = 1 has no integral solution → never aliases →
	// A read becomes input-like with full-rank access → no dep from A;
	// B[i,−j] full rank → no dep. Only... nothing: expect the
	// no-dependencies error.
	if _, err := Analyze(nest); err == nil || !strings.Contains(err.Error(), "no dependencies") {
		t.Errorf("err = %v", err)
	}
}

// TestParseFunctionCalls: the Levenshtein statement with min() must
// derive the edit-distance dependence structure.
func TestParseFunctionCalls(t *testing.T) {
	nest := mustParse(t, "edit", []string{"i", "j"}, []int64{5, 5},
		"D[i,j] = min(D[i-1,j]+1, D[i,j-1]+1, D[i-1,j-1]+sub(i,j))")
	a := mustAnalyze(t, nest)
	deps := depSet(a)
	for _, want := range []string{"[1 0]", "[0 1]", "[1 1]"} {
		if deps[want] != "flow" {
			t.Errorf("missing flow dependence %s (got %v)", want, deps)
		}
	}
	if len(deps) != 3 {
		t.Errorf("deps = %v", deps)
	}
	// Empty argument list and nested calls parse.
	if _, err := Parse("x", []string{"i"}, []int64{3}, "A[i] = f() + g(min(A[i-1], 2))"); err != nil {
		t.Errorf("nested calls rejected: %v", err)
	}
	// Malformed calls fail.
	for _, bad := range []string{"A[i] = min(A[i-1]", "A[i] = min(A[i-1];)", "A[i] = min(,)"} {
		if _, err := Parse("x", []string{"i"}, []int64{3}, bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	good := mustParse(t, "ok", []string{"i"}, []int64{3}, "A[i] = A[i-1] + 1")
	if err := good.Validate(); err != nil {
		t.Errorf("valid nest rejected: %v", err)
	}
	bad := &Nest{Name: "x", Vars: nil, Bounds: nil}
	if err := bad.Validate(); err == nil {
		t.Error("empty nest accepted")
	}
	bad2 := &Nest{Name: "x", Vars: []string{"i"}, Bounds: intmat.Vec(0)}
	if err := bad2.Validate(); err == nil {
		t.Error("zero bound accepted")
	}
	if _, err := Parse("x", []string{"i"}, []int64{0}, "A[i] = A[i-1]"); err == nil {
		t.Error("zero bound accepted by Parse")
	}
}

func TestRefAndAffineString(t *testing.T) {
	nest := mustParse(t, "s", []string{"i", "j"}, []int64{3, 3},
		"A[2*i+1, j] = A[2*i, j] + 1")
	s := nest.Body.Write.String()
	if !strings.Contains(s, "A[") {
		t.Errorf("Ref.String = %q", s)
	}
}
