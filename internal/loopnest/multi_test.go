package loopnest

import (
	"strings"
	"testing"

	"lodim/internal/intmat"
)

func mustMulti(t *testing.T, vars []string, bounds []int64, stmts ...string) *MultiNest {
	t.Helper()
	mn, err := ParseMulti("multi", vars, bounds, stmts)
	if err != nil {
		t.Fatal(err)
	}
	return mn
}

// TestAlignmentInternalizesShift: the classic alignment example — a
// producer/consumer pair with a constant shift. Offsetting statement 2
// by the shift drives the cross edge to zero communication.
func TestAlignmentInternalizesShift(t *testing.T) {
	mn := mustMulti(t, []string{"i"}, []int64{9},
		"B[i] = A[i] + 1",
		"C[i] = C[i-1] + B[i-3]",
	)
	ma, err := AnalyzeMulti(mn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Internalized != 1 {
		t.Errorf("internalized = %d, want 1 (edges: %+v)", ma.Internalized, ma.Edges)
	}
	// σ_1 = 0 (fixed); σ_2 must absorb the raw distance 3:
	// adjusted = raw + σ_w − σ_r = 3 + 0 − σ_2 = 0 → σ_2 = (3).
	if !ma.Offsets[1].Equal(intmat.Vec(3)) {
		t.Errorf("σ_2 = %v, want [3]", ma.Offsets[1])
	}
	// The merged algorithm keeps C's self-recurrence (0-D shifted: (1)).
	found := false
	for _, d := range ma.Dependencies {
		if d.Vector.Equal(intmat.Vec(1)) && d.Kind == "flow" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing C recurrence in %v", ma.Dependencies)
	}
}

// TestAlignmentTwoDimensional: a 2-D pipeline with different shifts per
// axis; the minimizer must zero the edge with σ_2 = (1, 2).
func TestAlignmentTwoDimensional(t *testing.T) {
	mn := mustMulti(t, []string{"i", "j"}, []int64{5, 5},
		"B[i,j] = A[i,j] + 1",
		"C[i,j] = C[i-1,j] + B[i-1,j-2]",
	)
	ma, err := AnalyzeMulti(mn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Internalized != 1 {
		t.Errorf("internalized = %d (edges %+v)", ma.Internalized, ma.Edges)
	}
	if !ma.Offsets[1].Equal(intmat.Vec(1, 2)) {
		t.Errorf("σ_2 = %v, want [1 2]", ma.Offsets[1])
	}
}

// TestAlignmentIndependentConsumers: two consumers of B with different
// shifts get independent offsets — both edges internalized.
func TestAlignmentIndependentConsumers(t *testing.T) {
	mn := mustMulti(t, []string{"i"}, []int64{9},
		"B[i] = A[i] + 1",
		"C[i] = C[i-1] + B[i-1]",
		"D[i] = D[i-1] + B[i-3]",
	)
	ma, err := AnalyzeMulti(mn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma.Edges) != 2 || ma.Internalized != 2 {
		t.Fatalf("edges = %+v, internalized %d", ma.Edges, ma.Internalized)
	}
	if !ma.Offsets[1].Equal(intmat.Vec(1)) || !ma.Offsets[2].Equal(intmat.Vec(3)) {
		t.Errorf("offsets = %v", ma.Offsets)
	}
}

// TestAlignmentConflictingEdges: one consumer reading B at two
// different shifts — only one edge can be internalized; the optimal
// residual communication is |3 − 1| = 2.
func TestAlignmentConflictingEdges(t *testing.T) {
	mn := mustMulti(t, []string{"i"}, []int64{9},
		"B[i] = A[i] + 1",
		"C[i] = C[i-1] + B[i-1] + B[i-3]",
	)
	ma, err := AnalyzeMulti(mn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma.Edges) != 2 {
		t.Fatalf("edges = %+v", ma.Edges)
	}
	var total int64
	for _, e := range ma.Edges {
		if lexSign(e.Adjusted) < 0 {
			t.Errorf("illegal adjusted edge %+v", e)
		}
		total += e.Adjusted.AbsSum()
	}
	if total != 2 {
		t.Errorf("total adjusted communication = %d, want 2 (edges %+v)", total, ma.Edges)
	}
}

// TestSameIterationCrossEdge: a read of a value produced earlier in the
// same iteration is legal and internal from the start.
func TestSameIterationCrossEdge(t *testing.T) {
	mn := mustMulti(t, []string{"i"}, []int64{5},
		"B[i] = A[i] + 1",
		"C[i] = C[i-1] + B[i]",
	)
	ma, err := AnalyzeMulti(mn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Internalized != 1 {
		t.Errorf("internalized = %d (edges %+v)", ma.Internalized, ma.Edges)
	}
	if !ma.Offsets[1].IsZero() {
		t.Errorf("σ_2 = %v, want zero", ma.Offsets[1])
	}
}

// TestReversedSameIterationLegal: under the single-assignment reading
// (Definition 2.1 is a recurrence system; textual order is meaningless)
// statement 1 may read statement 2's same-iteration output — the edge
// is internal to the merged macro node.
func TestReversedSameIterationLegal(t *testing.T) {
	mn := mustMulti(t, []string{"i"}, []int64{5},
		"B[i] = C[i] + 1",
		"C[i] = C[i-1] + A[i]",
	)
	ma, err := AnalyzeMulti(mn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Internalized != 1 {
		t.Errorf("internalized = %d (edges %+v)", ma.Internalized, ma.Edges)
	}
}

// TestCyclicSameIterationRejected: mutually same-iteration-dependent
// statements have no execution order — the alignment must fail.
func TestCyclicSameIterationRejected(t *testing.T) {
	mn := mustMulti(t, []string{"i"}, []int64{5},
		"B[i] = C[i] + 1",
		"C[i] = B[i] + A[i]",
	)
	if _, err := AnalyzeMulti(mn, nil); err == nil || !strings.Contains(err.Error(), "no legal alignment") {
		t.Errorf("err = %v", err)
	}
}

func TestMultiValidateErrors(t *testing.T) {
	if _, err := ParseMulti("x", []string{"i"}, []int64{4}, nil); err == nil {
		t.Error("empty statement list accepted")
	}
	if _, err := ParseMulti("x", []string{"i"}, []int64{4},
		[]string{"B[i] = A[i]", "B[i] = C[i]"}); err == nil || !strings.Contains(err.Error(), "single assignment") {
		t.Errorf("double write: %v", err)
	}
	if _, err := ParseMulti("x", []string{"i"}, []int64{4}, []string{"B[i] = ["}); err == nil {
		t.Error("parse error swallowed")
	}
}

func TestMultiNonUniformCrossRejected(t *testing.T) {
	mn := mustMulti(t, []string{"i", "j"}, []int64{4, 4},
		"B[i,j] = A[i,j] + 1",
		"C[i,j] = C[i-1,j] + B[j,i]",
	)
	if _, err := AnalyzeMulti(mn, nil); err == nil || !strings.Contains(err.Error(), "not uniform") {
		t.Errorf("err = %v", err)
	}
}

func TestMultiSingleStatementMatchesAnalyze(t *testing.T) {
	stmt := "C[i,j] = C[i,j] + A[i,k]*B[k,j]"
	single, err := Parse("mm", []string{"i", "j", "k"}, []int64{3, 3, 3}, stmt)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Analyze(single)
	if err != nil {
		t.Fatal(err)
	}
	mn := mustMulti(t, []string{"i", "j", "k"}, []int64{3, 3, 3}, stmt)
	ma, err := AnalyzeMulti(mn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Algorithm.NumDeps() != sa.Algorithm.NumDeps() {
		t.Errorf("multi deps %d != single deps %d", ma.Algorithm.NumDeps(), sa.Algorithm.NumDeps())
	}
}

func TestAlignmentSearchSpaceGuard(t *testing.T) {
	// Large MaxOffset over many statements/dims must be rejected, not
	// hang.
	mn := mustMulti(t, []string{"i", "j", "k"}, []int64{4, 4, 4},
		"B[i,j,k] = A[i,j,k] + 1",
		"C[i,j,k] = C[i,j,k-1] + B[i-1,j,k]",
		"D[i,j,k] = D[i,j,k-1] + B[i,j-1,k]",
		"E[i,j,k] = E[i,j,k-1] + C[i-2,j,k] + D[i,j-2,k]",
	)
	if _, err := AnalyzeMulti(mn, &AlignOptions{MaxOffset: 50}); err == nil || !strings.Contains(err.Error(), "too large") {
		t.Errorf("err = %v", err)
	}
}
