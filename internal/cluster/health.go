package cluster

import (
	"sort"
	"sync"
	"time"
)

// Health passively tracks peer reachability from the outcomes of real
// peer calls — no probing goroutines, no timers. A peer with no
// traffic yet reports healthy (innocent until proven unreachable);
// only transport-level failures mark it down, and the next successful
// call marks it back up.
type Health struct {
	mu    sync.Mutex
	peers map[string]*peerHealth
}

type peerHealth struct {
	member      Member
	healthy     bool
	lastError   string
	lastContact time.Time
	successes   int64
	failures    int64
}

// PeerStatus is one peer's passive health snapshot, rendered in
// /healthz.
type PeerStatus struct {
	ID          string    `json:"id"`
	URL         string    `json:"url"`
	Healthy     bool      `json:"healthy"`
	Successes   int64     `json:"successes"`
	Failures    int64     `json:"failures"`
	LastError   string    `json:"last_error,omitempty"`
	LastContact time.Time `json:"last_contact"`
}

// NewHealth builds a tracker for the given peers.
func NewHealth(peers ...Member) *Health {
	h := &Health{peers: make(map[string]*peerHealth, len(peers))}
	for _, m := range peers {
		h.peers[m.ID] = &peerHealth{member: m, healthy: true}
	}
	return h
}

// ReportOK records a successful call to the peer.
func (h *Health) ReportOK(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	if !ok {
		return
	}
	p.healthy = true
	p.lastError = ""
	p.lastContact = time.Now()
	p.successes++
}

// ReportError records a failed call to the peer.
func (h *Health) ReportError(id string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	if !ok {
		return
	}
	p.healthy = false
	if err != nil {
		p.lastError = err.Error()
	}
	p.lastContact = time.Now()
	p.failures++
}

// Snapshot returns every peer's status, sorted by ID.
func (h *Health) Snapshot() []PeerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PeerStatus, 0, len(h.peers))
	for _, p := range h.peers {
		out = append(out, PeerStatus{
			ID:          p.member.ID,
			URL:         p.member.URL,
			Healthy:     p.healthy,
			Successes:   p.successes,
			Failures:    p.failures,
			LastError:   p.lastError,
			LastContact: p.lastContact,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
