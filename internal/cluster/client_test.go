package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestClientLookupRoundTrip(t *testing.T) {
	var gotHop, gotTraceparent string
	var gotReq LookupRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != LookupPath {
			t.Errorf("peer saw %s %s", r.Method, r.URL.Path)
		}
		gotHop = r.Header.Get(HopHeader)
		gotTraceparent = r.Header.Get("Traceparent")
		if err := json.NewDecoder(r.Body).Decode(&gotReq); err != nil {
			t.Error(err)
		}
		json.NewEncoder(w).Encode(&LookupResponse{
			Disposition: DispositionMiss,
			Result:      WireResult{S: [][]int64{{1, 1, -1}}, Pi: []int64{1, 4, 1}, Time: 42, Engine: "procedure-5.1"},
		})
	}))
	defer srv.Close()

	m := Member{ID: "owner", URL: srv.URL}
	h := NewHealth(m)
	c := NewClient(nil, h)
	req := &LookupRequest{
		Problem:   Problem{Key: "k1", Bounds: []int64{2, 3, 4}, Dependencies: [][]int64{{1, 0, 0}}, Dims: 1},
		TimeoutMS: 1500,
	}
	resp, err := c.Lookup(context.Background(), m, req, "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != DispositionMiss || resp.Result.Time != 42 {
		t.Errorf("response = %+v", resp)
	}
	if gotHop != "1" {
		t.Errorf("hop header = %q, want \"1\"", gotHop)
	}
	if gotTraceparent == "" {
		t.Error("traceparent not propagated")
	}
	if gotReq.Key != "k1" || gotReq.TimeoutMS != 1500 {
		t.Errorf("peer saw request %+v", gotReq)
	}
	st := h.Snapshot()
	if len(st) != 1 || !st[0].Healthy || st[0].Successes != 1 {
		t.Errorf("health after success = %+v", st)
	}
}

func TestClientLookupPeerStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"service: overloaded, retry later"}`))
	}))
	defer srv.Close()
	m := Member{ID: "owner", URL: srv.URL}
	h := NewHealth(m)
	c := NewClient(nil, h)
	_, err := c.Lookup(context.Background(), m, &LookupRequest{}, "")
	var perr *PeerError
	if !errors.As(err, &perr) {
		t.Fatalf("error %v, want *PeerError", err)
	}
	if perr.Status != http.StatusTooManyRequests {
		t.Errorf("status = %d", perr.Status)
	}
	// A peer that answers — even with an error status — is reachable.
	if st := h.Snapshot(); !st[0].Healthy {
		t.Errorf("health after answered error = %+v", st)
	}
}

func TestClientLookupTransportError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	m := Member{ID: "owner", URL: srv.URL}
	srv.Close() // connection refused from here on
	h := NewHealth(m)
	c := NewClient(&http.Client{Timeout: time.Second}, h)
	_, err := c.Lookup(context.Background(), m, &LookupRequest{}, "")
	var perr *PeerError
	if !errors.As(err, &perr) {
		t.Fatalf("error %v, want *PeerError", err)
	}
	if perr.Status != 0 {
		t.Errorf("transport failure carries status %d, want 0", perr.Status)
	}
	st := h.Snapshot()
	if st[0].Healthy || st[0].Failures != 1 || st[0].LastError == "" {
		t.Errorf("health after transport failure = %+v", st)
	}
}

func TestClientLookupRejectsUnknownDisposition(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(&LookupResponse{Disposition: "banana"})
	}))
	defer srv.Close()
	c := NewClient(nil, nil)
	if _, err := c.Lookup(context.Background(), Member{ID: "x", URL: srv.URL}, &LookupRequest{}, ""); err == nil {
		t.Fatal("unknown disposition accepted")
	}
}

func TestClientFill(t *testing.T) {
	var got FillRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != FillPath {
			t.Errorf("fill path = %s", r.URL.Path)
		}
		json.NewDecoder(r.Body).Decode(&got)
		json.NewEncoder(w).Encode(&FillResponse{Stored: true})
	}))
	defer srv.Close()
	c := NewClient(nil, nil)
	err := c.Fill(context.Background(), Member{ID: "x", URL: srv.URL}, &FillRequest{
		Problem: Problem{Key: "k2"},
		Result:  WireResult{Time: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != "k2" || got.Result.Time != 7 {
		t.Errorf("peer saw fill %+v", got)
	}
}

func TestHealthIgnoresUnknownPeer(t *testing.T) {
	h := NewHealth(Member{ID: "a", URL: "http://a"})
	h.ReportOK("ghost")
	h.ReportError("ghost", errors.New("x"))
	if st := h.Snapshot(); len(st) != 1 || st[0].ID != "a" {
		t.Errorf("snapshot = %+v", st)
	}
}

func TestHealthRecovers(t *testing.T) {
	h := NewHealth(Member{ID: "a", URL: "http://a"})
	h.ReportError("a", errors.New("boom"))
	if st := h.Snapshot(); st[0].Healthy {
		t.Error("still healthy after failure")
	}
	h.ReportOK("a")
	st := h.Snapshot()
	if !st[0].Healthy || st[0].LastError != "" {
		t.Errorf("did not recover: %+v", st[0])
	}
	if st[0].Successes != 1 || st[0].Failures != 1 {
		t.Errorf("counters = %+v", st[0])
	}
}
