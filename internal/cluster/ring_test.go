package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func members(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: fmt.Sprintf("node%d", i), URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return out
}

func corpus(n int) []string {
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("v1|mu=%d,%d,%d|D=%d;%d|dims=%d", rng.Intn(20)+2, rng.Intn(20)+2,
			rng.Intn(20)+2, rng.Int63(), rng.Int63(), rng.Intn(2)+1)
	}
	return keys
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(8); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing(8, Member{ID: "a"}, Member{ID: "a"}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := NewRing(8, Member{ID: "", URL: "http://x"}); err == nil {
		t.Error("empty ID accepted")
	}
	r, err := NewRing(0, Member{ID: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Errorf("vnodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	if got := r.Owner("anything"); got.ID != "solo" {
		t.Errorf("single-member ring owner = %q", got.ID)
	}
}

// TestRingDeterministicAcrossNodes: every node that knows the same
// membership set — in any configuration order — owns identical lookups.
func TestRingDeterministicAcrossNodes(t *testing.T) {
	ms := members(5)
	r1, err := NewRing(64, ms...)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]Member(nil), ms...)
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	r2, err := NewRing(64, shuffled...)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range corpus(10000) {
		if a, b := r1.Owner(key), r2.Owner(key); a != b {
			t.Fatalf("key %q: owner %q vs %q across member orderings", key, a.ID, b.ID)
		}
	}
}

// TestRingBoundedMovementOnAdd: adding one node to an n-node ring
// remaps only keys the new node gains — every other key keeps its
// owner — and the gained share stays near 1/(n+1) of a 10k-key corpus.
func TestRingBoundedMovementOnAdd(t *testing.T) {
	keys := corpus(10000)
	for _, n := range []int{2, 3, 5, 8} {
		ms := members(n + 1)
		before, err := NewRing(DefaultVNodes, ms[:n]...)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(DefaultVNodes, ms...)
		if err != nil {
			t.Fatal(err)
		}
		added := ms[n].ID
		moved := 0
		for _, key := range keys {
			a, b := before.Owner(key), after.Owner(key)
			if a == b {
				continue
			}
			if b.ID != added {
				t.Fatalf("n=%d: key %q moved %q → %q, not to the added node %q", n, key, a.ID, b.ID, added)
			}
			moved++
		}
		share := float64(moved) / float64(len(keys))
		ideal := 1.0 / float64(n+1)
		// Virtual nodes make the share approximate; allow 2× the ideal
		// share as the "bounded movement" ceiling and require it is not
		// degenerate (zero would mean the node takes no load).
		if share > 2*ideal {
			t.Errorf("n=%d: adding one node moved %.1f%% of keys, ideal %.1f%%", n, 100*share, 100*ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d: added node received no keys", n)
		}
	}
}

// TestRingBoundedMovementOnRemove: removing one node remaps only the
// keys it owned, and survivors keep every key they had.
func TestRingBoundedMovementOnRemove(t *testing.T) {
	keys := corpus(10000)
	ms := members(4)
	full, err := NewRing(DefaultVNodes, ms...)
	if err != nil {
		t.Fatal(err)
	}
	removed := ms[2]
	rest := append(append([]Member(nil), ms[:2]...), ms[3])
	shrunk, err := NewRing(DefaultVNodes, rest...)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, key := range keys {
		a, b := full.Owner(key), shrunk.Owner(key)
		if a.ID == removed.ID {
			moved++
			continue // must move somewhere; any survivor is fine
		}
		if a != b {
			t.Fatalf("key %q owned by surviving %q moved to %q", key, a.ID, b.ID)
		}
	}
	if moved == 0 {
		t.Error("removed node owned no keys — degenerate ring")
	}
	if share := float64(moved) / float64(len(keys)); share > 2.0/float64(len(ms)) {
		t.Errorf("removed node owned %.1f%% of keys, ideal %.1f%%", 100*share, 100.0/float64(len(ms)))
	}
}

// TestRingBalance: with default vnodes no member's share of a 10k-key
// corpus strays beyond ~2× the fair share.
func TestRingBalance(t *testing.T) {
	ms := members(4)
	r, err := NewRing(DefaultVNodes, ms...)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := corpus(10000)
	for _, key := range keys {
		counts[r.Owner(key).ID]++
	}
	fair := float64(len(keys)) / float64(len(ms))
	for id, c := range counts {
		if float64(c) > 2*fair || float64(c) < fair/3 {
			t.Errorf("member %s owns %d of %d keys (fair %.0f)", id, c, len(keys), fair)
		}
	}
	if len(counts) != len(ms) {
		t.Errorf("only %d of %d members own keys", len(counts), len(ms))
	}
}

func TestRingMemberLookup(t *testing.T) {
	ms := members(3)
	r, err := NewRing(8, ms...)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := r.Member("node1"); !ok || m.URL != ms[1].URL {
		t.Errorf("Member(node1) = %+v, %v", m, ok)
	}
	if _, ok := r.Member("ghost"); ok {
		t.Error("unknown member found")
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}
