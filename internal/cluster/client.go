package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// maxPeerBodyBytes bounds peer response bodies; any valid lookup
// response within the service's problem limits encodes far below this.
const maxPeerBodyBytes = 1 << 20

// Client speaks the peer protocol. A zero Client is not usable; build
// with NewClient. The client reports every outcome to the optional
// Health tracker so /healthz can show passive peer reachability.
type Client struct {
	httpc  *http.Client
	health *Health
}

// NewClient builds a peer client. timeout bounds each peer call
// end-to-end in addition to any context deadline (0 selects 15s — peer
// lookups can legitimately wait for a full search on the owner).
// health may be nil.
func NewClient(httpc *http.Client, health *Health) *Client {
	if httpc == nil {
		httpc = &http.Client{Timeout: 15 * time.Second}
	}
	return &Client{httpc: httpc, health: health}
}

// PeerError reports a failed peer call. Status is the peer's HTTP
// status when the peer answered at all, 0 for transport failures.
type PeerError struct {
	Member Member
	Status int
	Err    error
}

func (e *PeerError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("cluster: peer %s (%s) answered %d: %v", e.Member.ID, e.Member.URL, e.Status, e.Err)
	}
	return fmt.Sprintf("cluster: peer %s (%s) unreachable: %v", e.Member.ID, e.Member.URL, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Lookup forwards a canonical problem to its owner. traceparent, when
// non-empty, joins the peer's request trace to the forwarder's (W3C
// header). The context's deadline rides both the HTTP request and the
// body's TimeoutMS.
func (c *Client) Lookup(ctx context.Context, m Member, req *LookupRequest, traceparent string) (*LookupResponse, error) {
	var resp LookupResponse
	if err := c.post(ctx, m, LookupPath, req, traceparent, &resp); err != nil {
		return nil, err
	}
	switch resp.Disposition {
	case DispositionHit, DispositionMiss, DispositionShared:
	default:
		err := &PeerError{Member: m, Err: fmt.Errorf("unknown disposition %q", resp.Disposition)}
		c.report(m.ID, err)
		return nil, err
	}
	return &resp, nil
}

// Fill pushes a finished result into a peer's cache (best effort: the
// caller already has the result, so any error is advisory).
func (c *Client) Fill(ctx context.Context, m Member, req *FillRequest) error {
	var resp FillResponse
	return c.post(ctx, m, FillPath, req, "", &resp)
}

// ParetoLookup forwards a canonical multi-objective problem to its
// owner — the Pareto leg's counterpart of Lookup.
func (c *Client) ParetoLookup(ctx context.Context, m Member, req *ParetoLookupRequest, traceparent string) (*ParetoLookupResponse, error) {
	var resp ParetoLookupResponse
	if err := c.post(ctx, m, ParetoLookupPath, req, traceparent, &resp); err != nil {
		return nil, err
	}
	switch resp.Disposition {
	case DispositionHit, DispositionMiss, DispositionShared:
	default:
		err := &PeerError{Member: m, Err: fmt.Errorf("unknown disposition %q", resp.Disposition)}
		c.report(m.ID, err)
		return nil, err
	}
	return &resp, nil
}

// ParetoFill pushes a finished front into a peer's cache (best
// effort, like Fill).
func (c *Client) ParetoFill(ctx context.Context, m Member, req *ParetoFillRequest) error {
	var resp ParetoFillResponse
	return c.post(ctx, m, ParetoFillPath, req, "", &resp)
}

// Status fetches a peer's observability snapshot — the read-only leg
// of the protocol. It shares post's transport discipline (hop header,
// body cap, passive health reporting).
func (c *Client) Status(ctx context.Context, m Member, traceparent string) (*NodeStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+StatusPath, nil)
	if err != nil {
		return nil, &PeerError{Member: m, Err: err}
	}
	hreq.Header.Set(HopHeader, strconv.Itoa(MaxHops))
	if traceparent != "" {
		hreq.Header.Set("Traceparent", traceparent)
	}
	var resp NodeStatus
	if err := c.do(m, StatusPath, hreq, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// post runs one peer call: encode, send with the hop header, decode,
// and report the outcome to the health tracker.
func (c *Client) post(ctx context.Context, m Member, path string, body any, traceparent string, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: encode %s: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, m.URL+path, bytes.NewReader(payload))
	if err != nil {
		return &PeerError{Member: m, Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(HopHeader, strconv.Itoa(MaxHops))
	if traceparent != "" {
		hreq.Header.Set("Traceparent", traceparent)
	}
	return c.do(m, path, hreq, out)
}

// do sends a prepared request and handles the shared tail: bounded
// read, non-200 classification (the peer is up — only transport
// failures mark it unhealthy), decode, health report.
func (c *Client) do(m Member, path string, hreq *http.Request, out any) error {
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		perr := &PeerError{Member: m, Err: err}
		c.report(m.ID, perr)
		return perr
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, maxPeerBodyBytes))
	if err != nil {
		perr := &PeerError{Member: m, Err: err}
		c.report(m.ID, perr)
		return perr
	}
	if hresp.StatusCode != http.StatusOK {
		perr := &PeerError{Member: m, Status: hresp.StatusCode, Err: fmt.Errorf("%s", peerErrorDetail(data))}
		// A non-200 answer still proves the peer is up: only transport
		// failures mark it unhealthy.
		c.report(m.ID, nil)
		return perr
	}
	if err := json.Unmarshal(data, out); err != nil {
		perr := &PeerError{Member: m, Err: fmt.Errorf("decode %s response: %w", path, err)}
		c.report(m.ID, perr)
		return perr
	}
	c.report(m.ID, nil)
	return nil
}

// report forwards an outcome to the health tracker, if any.
func (c *Client) report(id string, err error) {
	if c.health == nil {
		return
	}
	if err != nil {
		c.health.ReportError(id, err)
	} else {
		c.health.ReportOK(id)
	}
}

// peerErrorDetail extracts the error string from a JSON error body,
// falling back to the raw (truncated) text.
func peerErrorDetail(data []byte) string {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	const max = 200
	s := string(data)
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}
