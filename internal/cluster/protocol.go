package cluster

import "lodim/internal/slo"

// The peer protocol: two JSON-over-HTTP endpoints every clustered
// mapserve node serves alongside its public API.
//
//	POST /peer/v1/lookup — resolve a canonical problem: answer from the
//	  local cache or run the search (deduplicated with every other
//	  lookup of the same key, local or remote). The forwarder caches
//	  the result locally afterwards (forward-then-fill).
//	POST /peer/v1/fill — push a finished result into the receiver's
//	  cache. Used by a node that had to search locally because the
//	  owner was unreachable, so the owner converges once it returns.
//
// Both bodies carry the problem in *canonical* coordinates (the
// internal/service canonicalizer's output): receivers re-canonicalize
// and reject any body whose recomputed key disagrees, so a buggy or
// malicious peer cannot poison a cache.
const (
	LookupPath = "/peer/v1/lookup"
	FillPath   = "/peer/v1/fill"
)

// HopHeader counts peer-to-peer forwards. Origin requests have no hop
// header; a forwarded lookup carries "1". A receiving node always
// answers a peer lookup locally — it never re-forwards — so a value
// above MaxHops can only mean a forwarding loop (for example two nodes
// with disagreeing membership views each believing the other is the
// owner under a future protocol change) and is rejected with 508.
const (
	HopHeader = "X-Mapserve-Hop"
	MaxHops   = 1
)

// Problem identifies one canonical map query: the canonical algorithm
// (bounds μ ascending, dependence columns sorted) plus the search
// parameters that are part of the cache identity. Key is the composite
// cache key the sender computed; receivers recompute it from the rest
// of the fields and reject mismatches.
type Problem struct {
	Key          string    `json:"key"`
	Bounds       []int64   `json:"bounds"`
	Dependencies [][]int64 `json:"dependencies"`
	Dims         int       `json:"dims"`
	MaxEntry     int64     `json:"max_entry,omitempty"`
	WireWeight   int64     `json:"wire_weight,omitempty"`
	MaxCost      int64     `json:"max_cost,omitempty"`
}

// LookupRequest asks the receiver to resolve a canonical problem.
// TimeoutMS propagates the remaining deadline of the originating
// request so the owner bounds its search by the caller's budget, not
// its own default.
type LookupRequest struct {
	Problem
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Dispositions a lookup can resolve with, from the owner's point of
// view. The forwarding node reports them to its client as
// "peer_hit" / "peer_miss" / "peer_shared".
const (
	DispositionHit    = "hit"    // served from the owner's cache
	DispositionMiss   = "miss"   // the owner ran the search
	DispositionShared = "shared" // joined an in-progress search on the owner
)

// LookupResponse carries the canonical-coordinate result and how the
// owner produced it.
type LookupResponse struct {
	Disposition string     `json:"disposition"`
	Result      WireResult `json:"result"`
}

// WireResult is a search result in canonical coordinates, flattened for
// transport. It carries exactly the fields the service layer needs to
// rebuild a cacheable result whose rendered responses are byte-identical
// to the owner's own.
type WireResult struct {
	S                  [][]int64 `json:"s"`
	Pi                 []int64   `json:"pi"`
	Time               int64     `json:"time"`
	Processors         int64     `json:"processors"`
	WireLength         int64     `json:"wire_length"`
	Cost               int64     `json:"cost"`
	Candidates         int       `json:"candidates"`
	Pruned             int       `json:"pruned"`
	ScheduleCandidates int       `json:"schedule_candidates"`
	Engine             string    `json:"engine"`
	ConflictMethod     string    `json:"conflict_method"`
}

// FillRequest pushes a finished result into the receiver's cache.
type FillRequest struct {
	Problem
	Result WireResult `json:"result"`
}

// FillResponse acknowledges a fill.
type FillResponse struct {
	Stored bool `json:"stored"`
}

// The Pareto leg of the peer protocol mirrors the map leg: the same
// ownership ring (hashing the composite pareto key), the same
// forward-then-fill discipline, the same hop bound. Receivers
// revalidate every front end to end — each member re-certified and the
// non-domination/order invariants re-checked — before caching, so the
// poisoning defense is at least as strong as the map leg's.
const (
	ParetoLookupPath = "/peer/v1/pareto/lookup"
	ParetoFillPath   = "/peer/v1/pareto/fill"
)

// ParetoAxes is the wire width of an objective vector: time,
// processors, buffers, links — pinned in that order.
const ParetoAxes = 4

// ParetoProblem identifies one canonical multi-objective query: the
// canonical algorithm plus every knob that is part of the front's
// cache identity. Selection knobs (mode, lex order, weights) are
// deliberately absent — they pick from the front, they don't change it.
type ParetoProblem struct {
	Key          string    `json:"key"`
	Bounds       []int64   `json:"bounds"`
	Dependencies [][]int64 `json:"dependencies"`
	Dims         int       `json:"dims"`
	MaxEntry     int64     `json:"max_entry,omitempty"`
	MaxCost      int64     `json:"max_cost,omitempty"`
	TimeSlack    int64     `json:"time_slack,omitempty"`
}

// ParetoLookupRequest asks the receiver to resolve a canonical
// multi-objective problem, propagating the origin request's budget.
type ParetoLookupRequest struct {
	ParetoProblem
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ParetoWireMember is one front member in canonical coordinates.
type ParetoWireMember struct {
	S      [][]int64         `json:"s"`
	Pi     []int64           `json:"pi"`
	Vector [ParetoAxes]int64 `json:"vector"`
}

// ParetoWireResult is a full front flattened for transport, in the
// pinned deterministic order.
type ParetoWireResult struct {
	Members    []ParetoWireMember `json:"members"`
	TimeBound  int64              `json:"time_bound"`
	Candidates int                `json:"candidates"`
	Pruned     int                `json:"pruned"`
}

// ParetoLookupResponse carries the canonical front and the owner's
// disposition (the same Disposition* values as the map leg).
type ParetoLookupResponse struct {
	Disposition string           `json:"disposition"`
	Result      ParetoWireResult `json:"result"`
}

// ParetoFillRequest pushes a finished front into the receiver's cache.
type ParetoFillRequest struct {
	ParetoProblem
	Result ParetoWireResult `json:"result"`
}

// ParetoFillResponse acknowledges a Pareto fill.
type ParetoFillResponse struct {
	Stored bool `json:"stored"`
}

// The status leg of the peer protocol is read-only: one GET every
// clustered (or standalone) node serves so a coordinator can merge a
// fleet-wide view without ssh.
//
//	GET /peer/v1/status — the node's observability snapshot: request
//	  counters, SLO engine state, tenant top-K and its view of the ring.
//
// The hop guard applies exactly as on the write legs: a status fan-out
// carries MaxHops, so a receiving node answers locally and never
// re-fans.
const StatusPath = "/peer/v1/status"

// TenantUsage is one tenant's accumulated usage counters. The service
// layer bounds tenant-label cardinality (LRU + an "other" overflow
// bucket), so a fleet merge sums a small, closed set.
type TenantUsage struct {
	Tenant          string `json:"tenant"`
	Requests        int64  `json:"requests"`
	CacheHits       int64  `json:"cache_hits"`
	SearchMillis    int64  `json:"search_ms"`
	QueueRejections int64  `json:"queue_rejections"`
}

// RingView is the node's own view of cluster membership and passive
// peer health. Disagreeing views across nodes are themselves a finding
// the fleet page surfaces.
type RingView struct {
	Self    string       `json:"self"`
	Members []string     `json:"members"`
	VNodes  int          `json:"vnodes"`
	Peers   []PeerStatus `json:"peers,omitempty"`
}

// NodeStatus is one node's observability snapshot, served at
// StatusPath and merged by /v1/cluster/status.
type NodeStatus struct {
	Node          string  `json:"node"`
	Status        string  `json:"status"` // "ok" | "degraded" | "shutting_down"
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Searches    int64 `json:"searches"`
	Rejected    int64 `json:"rejected"`
	Timeouts    int64 `json:"timeouts"`
	Failures    int64 `json:"failures"`

	SLO     *slo.Snapshot `json:"slo,omitempty"`
	Tenants []TenantUsage `json:"tenants,omitempty"`
	Ring    *RingView     `json:"ring,omitempty"`
}
