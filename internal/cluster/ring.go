package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Member is one node of the cluster: a stable identity plus the base
// URL its peers use to reach it (scheme://host:port, no trailing
// slash).
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// DefaultVNodes is the virtual-node count per member when the caller
// does not choose one. 128 points per member keeps the expected
// per-member load within a few percent of uniform for small clusters
// while the ring stays tiny (a few KB).
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring: each member contributes
// vnodes points on a 64-bit circle, and a key is owned by the member
// whose point follows the key's hash clockwise. Adding or removing one
// member moves only the keys that member gains or loses — on average a
// 1/len(members) share — and no key ever moves between two members that
// are present in both rings.
//
// Construction is deterministic in the membership *set*: members are
// sorted by ID before hashing, so every node that knows the same
// members builds the identical ring regardless of configuration order.
type Ring struct {
	vnodes  int
	members []Member // sorted by ID
	points  []point  // sorted by hash
}

type point struct {
	hash   uint64
	member int32 // index into members
}

// NewRing builds a ring from the member set. Duplicate IDs and empty
// member lists are configuration errors.
func NewRing(vnodes int, members ...Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]Member(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, m := range sorted {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member %d (%q) has an empty ID", i, m.URL)
		}
		if i > 0 && sorted[i-1].ID == m.ID {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
	}
	r := &Ring{
		vnodes:  vnodes,
		members: sorted,
		points:  make([]point, 0, vnodes*len(sorted)),
	}
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(m.ID, v), member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties between members (astronomically rare with 64-bit
		// FNV, but possible) resolve by member order so every node
		// breaks them identically.
		return a.member < b.member
	})
	return r, nil
}

// Owner returns the member that owns key.
func (r *Ring) Owner(key string) Member {
	h := keyHash(key)
	// First point with hash >= h, wrapping to the start of the circle.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Members returns the membership sorted by ID. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []Member { return r.members }

// Member looks a member up by ID.
func (r *Ring) Member(id string) (Member, bool) {
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i].ID >= id })
	if i < len(r.members) && r.members[i].ID == id {
		return r.members[i], true
	}
	return Member{}, false
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// keyHash positions a key on the circle (64-bit FNV-1a).
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// vnodeHash positions one virtual node of a member on the circle. The
// NUL separator keeps distinct (ID, index) pairs from colliding as
// strings ("node1"+"1" vs "node"+"11").
func vnodeHash(id string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(vnode)))
	return h.Sum64()
}
