// Package cluster is the federation layer of mapserve: a consistent-hash
// ring over canonical problem keys plus the HTTP peer protocol that lets
// a fleet of mapserve nodes behave as one cache.
//
// Sharding model. Every map query reduces (in internal/service) to a
// canonical problem key that is stable under axis-permutation symmetry —
// the same identity the single-node cache and singleflight already use.
// The ring assigns each key one owner among the members; the owner is
// the only node that ever *searches* for that key. A non-owner that
// misses its local cache forwards the canonical problem to the owner
// over POST /peer/v1/lookup, then caches the returned result locally
// (forward-then-fill), so repeated traffic for a key is absorbed
// anywhere in the cluster after the first round trip.
//
// Exactly-one-search. The owner runs every lookup — its own clients'
// and its peers' — through one singleflight group keyed by the same
// canonical key, so N concurrent clients spread over M nodes cost one
// search cluster-wide. Requests never hop more than once: peer lookups
// carry the X-Mapserve-Hop header and a receiving node always answers
// locally, searching itself if it must, even when its membership view
// says someone else owns the key. A hop count beyond MaxHops is a
// protocol error (508), making forwarding loops impossible even under
// disagreeing membership.
//
// Failure model. Membership is static (flags), and health is tracked
// passively from peer request outcomes. When the owner of a key is
// unreachable the forwarder degrades to a local search — availability
// over strict dedup — and afterwards pushes the result to the owner via
// POST /peer/v1/fill (best effort) so the cluster converges back to
// one-copy-per-owner once the owner returns.
package cluster
