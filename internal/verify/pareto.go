package verify

import (
	"context"
	"fmt"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// This file turns the verifier into a Pareto-optimality checker: given
// a claimed front over the four objective axes (total time, processor
// count, buffer depth, link count), it independently re-certifies
// every member mapping, recomputes each member's objective vector
// from first principles, and checks the two front-level invariants —
// pairwise non-domination (with distinct vectors) and the pinned
// deterministic order. Per the package's independence principle it
// shares no code with internal/schedule: dominance, the objective
// arithmetic, and the processor count are re-derived here.

// Witness names of the Pareto-front checks, in the order they run.
const (
	// WitnessParetoMember: a member's own certificate (validity,
	// conflict-freedom) was rejected.
	WitnessParetoMember = "pareto-member"
	// WitnessObjective: a member's claimed objective vector disagrees
	// with the independent recomputation.
	WitnessObjective = "objective-recompute"
	// WitnessWindow: a member's total time exceeds the claimed window.
	WitnessWindow = "time-window"
	// WitnessDomination: two members dominate or duplicate each other.
	WitnessDomination = "non-domination"
	// WitnessFrontOrder: the front is not in the pinned total order.
	WitnessFrontOrder = "front-order"
)

// ParetoAxes is the number of objective axes. Axis order is pinned:
// time, processors, buffers, links.
const ParetoAxes = 4

// ParetoInput is one claimed front member: the mapping and its
// objective vector as the search engine reported them.
type ParetoInput struct {
	S      *intmat.Matrix
	Pi     intmat.Vector
	Vector [ParetoAxes]int64
}

// ParetoMemberCertificate is the per-member evidence.
type ParetoMemberCertificate struct {
	// Certificate is the member's full independent certificate
	// (schedule validity, conflict-freedom, cross-checks).
	Certificate *Certificate `json:"certificate"`
	// Recomputed is the independently derived objective vector. When
	// ProcessorsChecked is false the processor axis echoes the claim
	// (the index set exceeded the enumeration budget) and the
	// certificate says so rather than failing.
	Recomputed        [ParetoAxes]int64 `json:"recomputed"`
	ProcessorsChecked bool              `json:"processors_checked"`
}

// ParetoCertificate is the front-level verdict.
type ParetoCertificate struct {
	// Valid is the overall verdict; on failure FailedMember (−1 for a
	// front-level check), FailedWitness and FailedDetail identify the
	// first rejected evidence.
	Valid         bool   `json:"valid"`
	FailedMember  int    `json:"failed_member"`
	FailedWitness string `json:"failed_witness,omitempty"`
	FailedDetail  string `json:"failed_detail,omitempty"`

	Members []ParetoMemberCertificate `json:"members"`
	// NonDomination and OrderChecked report the two front-level
	// invariants: every pair of recomputed vectors mutually
	// non-dominated and distinct, and the members sorted by the pinned
	// total order (vector, then Π, then S rows).
	NonDomination bool `json:"non_domination"`
	OrderChecked  bool `json:"order_checked"`
	// TimeBound echoes the claimed window ceiling the members were
	// checked against.
	TimeBound int64 `json:"time_bound"`
}

// Err returns nil for a valid certificate and the failure otherwise.
func (c *ParetoCertificate) Err() error {
	if c.Valid {
		return nil
	}
	return &FailureError{Witness: c.FailedWitness, Detail: c.FailedDetail}
}

func (c *ParetoCertificate) fail(member int, witness, format string, args ...any) {
	c.Valid = false
	if c.FailedWitness == "" {
		c.FailedMember = member
		c.FailedWitness = witness
		c.FailedDetail = fmt.Sprintf(format, args...)
	}
}

// CertifyPareto checks a claimed Pareto front member by member and as
// a whole. A non-nil error reports an infrastructure failure
// (cancellation, malformed algorithm); every analytical rejection is
// delivered through the certificate instead.
func CertifyPareto(ctx context.Context, algo *uda.Algorithm, members []ParetoInput, timeBound int64, opts *Options) (*ParetoCertificate, error) {
	if err := algo.Validate(); err != nil {
		return nil, err
	}
	opt := opts.withDefaults()
	cert := &ParetoCertificate{Valid: true, FailedMember: -1, TimeBound: timeBound}
	if len(members) == 0 {
		cert.fail(-1, WitnessParetoMember, "claimed front is empty")
		return cert, nil
	}
	vectors := make([][ParetoAxes]int64, len(members))
	for i := range members {
		m := &members[i]
		mc, err := CertifyContext(ctx, algo, m.S, m.Pi, opts)
		if err != nil {
			return nil, fmt.Errorf("verify: pareto member %d: %w", i, err)
		}
		rec := ParetoMemberCertificate{Certificate: mc}
		if !mc.Valid || !mc.ConflictFree {
			cert.fail(i, WitnessParetoMember, "member rejected: %s (%s)", mc.FailedWitness, mc.FailedDetail)
			cert.Members = append(cert.Members, rec)
			vectors[i] = m.Vector
			continue
		}
		rec.Recomputed, rec.ProcessorsChecked = recomputeObjectives(algo, m, opt.EnumBudget)
		cert.Members = append(cert.Members, rec)
		vectors[i] = rec.Recomputed
		if rec.Recomputed != m.Vector {
			cert.fail(i, WitnessObjective, "claimed objective vector %v, recomputed %v", m.Vector, rec.Recomputed)
		}
		if rec.Recomputed[0] > timeBound {
			cert.fail(i, WitnessWindow, "member time %d exceeds the claimed window %d", rec.Recomputed[0], timeBound)
		}
	}
	cert.NonDomination = true
	for i := range vectors {
		for j := i + 1; j < len(vectors); j++ {
			switch {
			case vectors[i] == vectors[j]:
				cert.NonDomination = false
				cert.fail(-1, WitnessDomination, "members %d and %d share the objective vector %v", i, j, vectors[i])
			case paretoDominates(vectors[i], vectors[j]):
				cert.NonDomination = false
				cert.fail(-1, WitnessDomination, "member %d %v dominates member %d %v", i, vectors[i], j, vectors[j])
			case paretoDominates(vectors[j], vectors[i]):
				cert.NonDomination = false
				cert.fail(-1, WitnessDomination, "member %d %v dominates member %d %v", j, vectors[j], i, vectors[i])
			}
		}
	}
	cert.OrderChecked = true
	for i := 1; i < len(members); i++ {
		if !paretoInputLess(vectors[i-1], &members[i-1], vectors[i], &members[i]) {
			cert.OrderChecked = false
			cert.fail(-1, WitnessFrontOrder, "members %d and %d violate the pinned front order", i-1, i)
		}
	}
	return cert, nil
}

// paretoDominates is the strict Pareto order: ≤ on every axis, < on at
// least one.
func paretoDominates(a, b [ParetoAxes]int64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// paretoInputLess re-derives the pinned total front order: objective
// vector lexicographically, then the Π key, then the S rows.
func paretoInputLess(va [ParetoAxes]int64, a *ParetoInput, vb [ParetoAxes]int64, b *ParetoInput) bool {
	if va != vb {
		for i := range va {
			if va[i] != vb[i] {
				return va[i] < vb[i]
			}
		}
	}
	if c := compareVectors(a.Pi, b.Pi); c != 0 {
		return c < 0
	}
	for r := 0; r < a.S.Rows() && r < b.S.Rows(); r++ {
		if c := compareVectors(a.S.Row(r), b.S.Row(r)); c != 0 {
			return c < 0
		}
	}
	return a.S.Rows() < b.S.Rows()
}

func compareVectors(a, b intmat.Vector) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return len(a) - len(b)
}

// recomputeObjectives derives the member's objective vector from first
// principles: total time from Equation 4.2's closed form, buffer depth
// as Σ (Π·d̄_k − 1), links as the distinct non-zero columns of S·D, and
// the processor count |S(J)| by direct image enumeration when the
// index set fits the budget (otherwise the claim is echoed and flagged
// unchecked — consistent with the budget-gated brute-force witnesses).
func recomputeObjectives(algo *uda.Algorithm, m *ParetoInput, enumBudget int64) ([ParetoAxes]int64, bool) {
	var v [ParetoAxes]int64
	v[0] = totalTime(m.Pi, algo.Set.Upper)
	for k := 0; k < algo.NumDeps(); k++ {
		v[2] += m.Pi.Dot(algo.Dep(k)) - 1
	}
	sd := m.S.Mul(algo.D)
	links := make(map[string]struct{}, sd.Cols())
	for c := 0; c < sd.Cols(); c++ {
		col := sd.Col(c)
		zero := true
		for _, x := range col {
			if x != 0 {
				zero = false
				break
			}
		}
		if !zero {
			links[col.String()] = struct{}{}
		}
	}
	v[3] = int64(len(links))
	if procs, ok := processorImageCount(m.S, algo.Set, enumBudget); ok {
		v[1] = procs
		return v, true
	}
	v[1] = m.Vector[1]
	return v, false
}

// processorImageCount enumerates |S(J)| directly; false when |J|
// exceeds the budget.
func processorImageCount(s *intmat.Matrix, set uda.IndexSet, budget int64) (int64, bool) {
	if budget <= 0 || set.SizeExceeds(budget) {
		return 0, false
	}
	rows := make([]intmat.Vector, s.Rows())
	for r := range rows {
		rows[r] = s.Row(r)
	}
	seen := make(map[string]struct{}, 1024)
	img := make(intmat.Vector, len(rows))
	set.Each(func(j intmat.Vector) bool {
		for r, row := range rows {
			img[r] = row.Dot(j)
		}
		seen[img.String()] = struct{}{}
		return true
	})
	return int64(len(seen)), true
}
