package verify

import (
	"fmt"
	"math/rand"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// The differential harness's instance generator: deterministic (the
// caller seeds the *rand.Rand), biased toward the small shapes where
// brute force is exact, and shrinkable — a failing instance is reduced
// to a minimal one before being reported, so the reproducer in the
// test log is as readable as a hand-written case.

// instance is one random (n, k, T, μ) conflict problem.
type instance struct {
	t  *intmat.Matrix // k×n, full row rank
	mu intmat.Vector  // n bounds ≥ 1
}

func (in instance) n() int            { return in.t.Cols() }
func (in instance) k() int            { return in.t.Rows() }
func (in instance) set() uda.IndexSet { return uda.IndexSet{Upper: in.mu} }

func (in instance) String() string {
	return fmt.Sprintf("T =\n%v\nμ = %v", in.t, in.mu)
}

func (in instance) clone() instance {
	return instance{t: in.t.Clone(), mu: in.mu.Clone()}
}

// genInstance draws a full-row-rank k×n matrix with entries in
// [−3, 3] and bounds in [1, 3]. Full rank is ensured by rejection;
// with these ranges almost every draw qualifies.
func genInstance(r *rand.Rand) instance {
	for {
		n := 2 + r.Intn(3)   // 2..4
		k := 1 + r.Intn(n-1) // 1..n-1 (a proper lower-dimensional mapping)
		if r.Intn(8) == 0 {  // occasionally full-dimensional
			k = n
		}
		t := intmat.New(k, n)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				t.Set(i, j, r.Int63n(7)-3)
			}
		}
		if t.Rank() != k {
			continue
		}
		mu := make(intmat.Vector, n)
		for i := range mu {
			mu[i] = 1 + r.Int63n(3)
		}
		return instance{t: t, mu: mu}
	}
}

// shrink greedily minimizes a failing instance: it repeatedly tries to
// move matrix entries toward zero and bounds toward one, keeping any
// reduction under which the instance still has full rank and still
// fails. The result is a local minimum — every single-step reduction
// either breaks the rank precondition or makes the failure disappear.
func shrink(in instance, fails func(instance) bool) instance {
	cur := in.clone()
	for {
		improved := false
		for i := 0; i < cur.k(); i++ {
			for j := 0; j < cur.n(); j++ {
				v := cur.t.At(i, j)
				if v == 0 {
					continue
				}
				next := cur.clone()
				step := int64(1)
				if v < 0 {
					step = -1
				}
				next.t.Set(i, j, v-step)
				if next.t.Rank() == next.k() && fails(next) {
					cur = next
					improved = true
				}
			}
		}
		for i := range cur.mu {
			if cur.mu[i] <= 1 {
				continue
			}
			next := cur.clone()
			next.mu[i]--
			if fails(next) {
				cur = next
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// genAlgorithm extends an instance into a full certification problem:
// a dependence matrix D with a schedule Π satisfying ΠD > 0, and a
// space mapping S making T = [S; Π] full rank. Used by the metamorphic
// certificate tests, which need whole algorithms, not bare matrices.
type certInstance struct {
	algo *uda.Algorithm
	s    *intmat.Matrix
	pi   intmat.Vector
}

func genCertInstance(r *rand.Rand) certInstance {
	for {
		n := 2 + r.Intn(3) // 2..4
		mu := make(intmat.Vector, n)
		for i := range mu {
			mu[i] = 1 + r.Int63n(3)
		}
		// A schedule vector with at least one non-zero entry.
		pi := make(intmat.Vector, n)
		for i := range pi {
			pi[i] = r.Int63n(5) - 2
		}
		if pi.IsZero() {
			continue
		}
		// Dependencies oriented into the Π > 0 half-space.
		m := 1 + r.Intn(3)
		d := intmat.New(n, m)
		ok := true
		for c := 0; c < m; c++ {
			col := make(intmat.Vector, n)
			for retry := 0; ; retry++ {
				if retry > 32 {
					ok = false
					break
				}
				for i := range col {
					col[i] = r.Int63n(5) - 2
				}
				dot := pi.Dot(col)
				if dot == 0 || col.IsZero() {
					continue
				}
				if dot < 0 {
					col = col.Neg()
				}
				break
			}
			if !ok {
				break
			}
			d.SetCol(c, col)
		}
		if !ok {
			continue
		}
		k := 1 + r.Intn(n-1)
		s := intmat.New(k-1, n)
		for i := 0; i < k-1; i++ {
			for j := 0; j < n; j++ {
				s.Set(i, j, r.Int63n(5)-2)
			}
		}
		if s.AppendRow(pi).Rank() != k {
			continue
		}
		algo := &uda.Algorithm{Name: "gen", Set: uda.IndexSet{Upper: mu}, D: d}
		if algo.Validate() != nil {
			continue
		}
		return certInstance{algo: algo, s: s, pi: pi}
	}
}

// permuted applies the axis permutation perm to a certification
// instance: canonical-axis i of the result is axis perm[i] of the
// input, exactly the convention of internal/service/canon.go. Mapping
// matrices permute by column, bound vectors by entry.
func (ci certInstance) permuted(perm []int) certInstance {
	n := ci.algo.Dim()
	mu := make(intmat.Vector, n)
	pi := make(intmat.Vector, n)
	for i, ax := range perm {
		mu[i] = ci.algo.Set.Upper[ax]
		pi[i] = ci.pi[ax]
	}
	d := intmat.New(n, ci.algo.NumDeps())
	for c := 0; c < ci.algo.NumDeps(); c++ {
		col := ci.algo.Dep(c)
		out := make(intmat.Vector, n)
		for i, ax := range perm {
			out[i] = col[ax]
		}
		d.SetCol(c, out)
	}
	s := intmat.New(ci.s.Rows(), n)
	if s.Rows() > 0 { // a 0×n S has no columns to permute
		for i, ax := range perm {
			s.SetCol(i, ci.s.Col(ax))
		}
	}
	return certInstance{
		algo: &uda.Algorithm{Name: ci.algo.Name, Set: uda.IndexSet{Upper: mu}, D: d},
		s:    s,
		pi:   pi,
	}
}
