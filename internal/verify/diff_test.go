package verify

import (
	"errors"
	"math/rand"
	"testing"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
)

// The differential harness: three independent oracles over the same
// seeded instance stream. Any disagreement is shrunk to a minimal
// reproducer before failing, so a regression reads as a small concrete
// matrix, not a seed number.

const diffInstances = 220

// TestDifferentialConflictDecisions cross-checks this package's
// independent conflict decision against the definitional brute force
// and against the production decision procedure on every instance.
func TestDifferentialConflictDecisions(t *testing.T) {
	r := rand.New(rand.NewSource(0x10d1_4a5e))
	disagreeBF := func(in instance) bool {
		vFree, _, err := DecideConflict(in.t, in.set(), 0)
		if err != nil {
			return false
		}
		bfFree, _ := conflict.BruteForce(in.t, in.set())
		return vFree != bfFree
	}
	for i := 0; i < diffInstances; i++ {
		in := genInstance(r)
		vFree, vWit, err := DecideConflict(in.t, in.set(), 0)
		if err != nil {
			t.Fatalf("instance %d: DecideConflict: %v\n%v", i, err, in)
		}
		bfFree, bfWit := conflict.BruteForce(in.t, in.set())
		if vFree != bfFree {
			min := shrink(in, disagreeBF)
			t.Fatalf("instance %d: verify says free=%v, brute force says free=%v (bf witness %v)\nminimal reproducer:\n%v",
				i, vFree, bfFree, bfWit, min)
		}
		res, err := conflict.Decide(in.t, in.set())
		if err != nil {
			if errors.Is(err, conflict.ErrBudget) {
				continue
			}
			t.Fatalf("instance %d: Decide: %v\n%v", i, err, in)
		}
		if res.ConflictFree != vFree {
			t.Fatalf("instance %d: verify says free=%v, conflict.Decide says free=%v (method %s)\n%v",
				i, vFree, res.ConflictFree, res.Method, in)
		}
		if !vFree {
			// The witness must be a genuine conflict: non-zero, in
			// null(T), inside the box.
			if vWit.IsZero() {
				t.Fatalf("instance %d: conflict verdict without witness\n%v", i, in)
			}
			for row := 0; row < in.k(); row++ {
				if in.t.Row(row).Dot(vWit) != 0 {
					t.Fatalf("instance %d: witness %v not in null(T)\n%v", i, vWit, in)
				}
			}
			if conflict.Feasible(in.set(), vWit) {
				t.Fatalf("instance %d: witness %v is feasible — no conflict\n%v", i, vWit, in)
			}
		}
	}
}

// TestDifferentialClosedFormGamma checks, for every k = n−1 instance,
// that the Theorem 3.1 closed-form conflict vector (signed maximal
// minors) and the HNF-derived null basis agree up to the paper's
// normalization.
func TestDifferentialClosedFormGamma(t *testing.T) {
	r := rand.New(rand.NewSource(0x31_c105_ed))
	seen := 0
	for i := 0; seen < diffInstances; i++ {
		in := genInstance(r)
		if in.k() != in.n()-1 {
			continue
		}
		seen++
		gammaCF, err := conflict.UniqueConflictVector(in.t)
		if err != nil {
			t.Fatalf("instance %d: UniqueConflictVector on full-rank T: %v\n%v", i, err, in)
		}
		h, err := intmat.HermiteNormalForm(in.t)
		if err != nil {
			t.Fatalf("instance %d: HermiteNormalForm: %v\n%v", i, err, in)
		}
		basis := h.NullBasis()
		if len(basis) != 1 {
			t.Fatalf("instance %d: %d basis vectors for k = n−1\n%v", i, len(basis), in)
		}
		gammaHNF := basis[0].Canonical()
		if !gammaHNF.Equal(gammaCF) {
			t.Fatalf("instance %d: closed-form γ = %v, HNF γ = %v\n%v", i, gammaCF, gammaHNF, in)
		}
		// Both must make the same feasibility call as the full decision.
		free, _, err := DecideConflict(in.t, in.set(), 0)
		if err != nil {
			t.Fatalf("instance %d: DecideConflict: %v\n%v", i, err, in)
		}
		if feas := conflict.Feasible(in.set(), gammaCF); feas != free {
			t.Fatalf("instance %d: Feasible(γ) = %v but decision free = %v\n%v", i, feas, free, in)
		}
	}
}

// TestMetamorphicPermutationInvariance certifies each instance and its
// image under a random axis permutation — the transformation
// internal/service/canon.go applies for cache canonicalization — and
// demands identical verdicts and permutation-covariant witnesses.
func TestMetamorphicPermutationInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(0x9e7a))
	opts := &Options{SkipOptimality: true}
	for i := 0; i < diffInstances; i++ {
		ci := genCertInstance(r)
		perm := r.Perm(ci.algo.Dim())
		cp := ci.permuted(perm)

		cert, err := Certify(ci.algo, ci.s, ci.pi, opts)
		if err != nil {
			t.Fatalf("instance %d: Certify: %v", i, err)
		}
		certP, err := Certify(cp.algo, cp.s, cp.pi, opts)
		if err != nil {
			t.Fatalf("instance %d: Certify permuted: %v", i, err)
		}
		if cert.Valid != certP.Valid {
			t.Fatalf("instance %d (perm %v): valid %v vs %v\noriginal: %v / %v\npermuted: %v / %v",
				i, perm, cert.Valid, certP.Valid, cert.FailedWitness, cert.FailedDetail, certP.FailedWitness, certP.FailedDetail)
		}
		if cert.ConflictFree != certP.ConflictFree {
			t.Fatalf("instance %d (perm %v): conflict-free %v vs %v", i, perm, cert.ConflictFree, certP.ConflictFree)
		}
		if cert.Valid && cert.FailedWitness != certP.FailedWitness {
			t.Fatalf("instance %d (perm %v): failed witness %q vs %q", i, perm, cert.FailedWitness, certP.FailedWitness)
		}
		// Total time 1 + Σ|π_i|μ_i is a sum over axes — permutation
		// invariant.
		if cert.TotalTime != certP.TotalTime {
			t.Fatalf("instance %d (perm %v): total time %d vs %d", i, perm, cert.TotalTime, certP.TotalTime)
		}
		// Schedule witnesses: dependence columns keep their order, dot
		// products are permutation invariant.
		for j := range cert.Schedule {
			if cert.Schedule[j].Dot != certP.Schedule[j].Dot {
				t.Fatalf("instance %d (perm %v): dep %d dot %d vs %d",
					i, perm, j, cert.Schedule[j].Dot, certP.Schedule[j].Dot)
			}
		}
		// A conflict witness of the permuted problem, mapped back, must
		// be a conflict of the original (γ_orig[perm[i]] = γ_perm[i]).
		if certP.ConflictWitness != nil {
			back := make(intmat.Vector, len(certP.ConflictWitness))
			for idx, ax := range perm {
				back[ax] = certP.ConflictWitness[idx]
			}
			tm := ci.s.AppendRow(ci.pi)
			for row := 0; row < tm.Rows(); row++ {
				if tm.Row(row).Dot(back) != 0 {
					t.Fatalf("instance %d (perm %v): mapped-back witness %v not in null(T)", i, perm, back)
				}
			}
			if conflict.Feasible(ci.algo.Set, back) {
				t.Fatalf("instance %d (perm %v): mapped-back witness %v is feasible", i, perm, back)
			}
		}
	}
}
