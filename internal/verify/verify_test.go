package verify

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// The paper's running example: matmul with the linear-array space
// mapping S = [1 1 −1] and the enumeration winner Π = [1 2 3]
// (t = 25 = μ(μ+2)+1 for μ = 4).
func matmulMapping(t *testing.T) (*uda.Algorithm, *intmat.Matrix, intmat.Vector) {
	t.Helper()
	return uda.MatMul(4), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 2, 3)
}

func TestCertifyMatMulWinner(t *testing.T) {
	algo, s, pi := matmulMapping(t)
	cert, err := Certify(algo, s, pi, &Options{Simulate: true})
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if !cert.Valid {
		t.Fatalf("valid mapping rejected: %s / %s", cert.FailedWitness, cert.FailedDetail)
	}
	if !cert.ConflictFree {
		t.Errorf("conflict-free mapping flagged conflicting: witness %v", cert.ConflictWitness)
	}
	if cert.TotalTime != 25 {
		t.Errorf("total time = %d, want 25", cert.TotalTime)
	}
	if len(cert.Schedule) != 3 {
		t.Fatalf("schedule witnesses = %d, want 3", len(cert.Schedule))
	}
	for j, w := range cert.Schedule {
		if !w.OK || w.Dot < 1 {
			t.Errorf("schedule witness %d: dot %d, ok %v", j, w.Dot, w.OK)
		}
	}
	if cert.HNF == nil || !cert.HNF.Checked {
		t.Error("missing or unchecked HNF witness")
	}
	// k = 2, n = 3: exactly one basis vector, with a feasible index.
	if len(cert.Basis) != 1 {
		t.Fatalf("basis witnesses = %d, want 1", len(cert.Basis))
	}
	if bw := cert.Basis[0]; bw.FeasibleIndex < 0 || bw.Excess < 1 {
		t.Errorf("basis witness lacks a feasible index: %+v", bw)
	}
	if cert.BruteForce == nil || !cert.BruteForce.Ran || !cert.BruteForce.Agrees {
		t.Errorf("brute-force cross-check: %+v", cert.BruteForce)
	}
	if cert.Simulation == nil || !cert.Simulation.Ran || !cert.Simulation.Agrees || cert.Simulation.Conflicts != 0 {
		t.Errorf("simulation witness: %+v", cert.Simulation)
	}
	// The conflict constraint forces t = 25 while the unconstrained Π
	// cone admits Π = [1 1 1] (t = 13); the bound must see that and
	// flag the mapping FeasibleOnly.
	if cert.Optimality != FeasibleOnly {
		t.Errorf("optimality = %q, want %q", cert.Optimality, FeasibleOnly)
	}
	if cert.LowerBound != 13 {
		t.Errorf("lower bound = %d (%s), want 13", cert.LowerBound, cert.LowerBoundKind)
	}
	if err := cert.Err(); err != nil {
		t.Errorf("Err() on valid certificate: %v", err)
	}
	if err := cert.Check(algo, s, pi); err != nil {
		t.Errorf("Check rejects its own certificate: %v", err)
	}
}

func TestCertifyOptimalVerdict(t *testing.T) {
	// 2-D algorithm, deps e1, e2; full-dimension mapping S = [1 0],
	// Π = [1 1]: k = n ⇒ no conflict vectors, and Π is the cheapest
	// point of the cone, so the certificate must say Optimal.
	algo := &uda.Algorithm{
		Name: "grid",
		Set:  uda.Box(3, 2),
		D:    intmat.FromRows([]int64{1, 0}, []int64{0, 1}),
	}
	cert, err := Certify(algo, intmat.FromRows([]int64{1, 0}), intmat.Vec(1, 1), nil)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if !cert.Valid || !cert.ConflictFree {
		t.Fatalf("certificate: %+v", cert)
	}
	if len(cert.Basis) != 0 {
		t.Errorf("k = n mapping has %d basis witnesses, want 0", len(cert.Basis))
	}
	if cert.TotalTime != 6 {
		t.Errorf("total time = %d, want 6", cert.TotalTime)
	}
	if cert.Optimality != Optimal || cert.LowerBound != 6 {
		t.Errorf("optimality = %q with bound %d, want %q with 6", cert.Optimality, cert.LowerBound, Optimal)
	}
}

func TestCertifyNamedFailures(t *testing.T) {
	algo := uda.MatMul(2)
	cases := []struct {
		name    string
		s       *intmat.Matrix
		pi      intmat.Vector
		witness string
	}{
		{
			name:    "invalid schedule",
			s:       intmat.FromRows([]int64{1, 1, -1}),
			pi:      intmat.Vec(1, -1, 1), // Π·d̄_2 = −1
			witness: WitnessSchedule,
		},
		{
			name:    "rank deficient",
			s:       intmat.FromRows([]int64{1, 1, 1}),
			pi:      intmat.Vec(1, 1, 1),
			witness: WitnessRank,
		},
		{
			name:    "conflicting",
			s:       intmat.New(0, 3), // T = Π alone must be injective
			pi:      intmat.Vec(1, 1, 1),
			witness: WitnessConflict,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cert, err := Certify(algo, tc.s, tc.pi, nil)
			if err != nil {
				t.Fatalf("Certify: %v", err)
			}
			if cert.Valid {
				t.Fatalf("corrupted mapping accepted")
			}
			if cert.FailedWitness != tc.witness {
				t.Fatalf("failed witness = %q, want %q (detail: %s)", cert.FailedWitness, tc.witness, cert.FailedDetail)
			}
			var fe *FailureError
			if err := cert.Err(); !errors.As(err, &fe) || fe.Witness != tc.witness {
				t.Errorf("Err() = %v, want *FailureError naming %q", err, tc.witness)
			}
			if err := cert.Check(algo, tc.s, tc.pi); err != nil {
				t.Errorf("Check rejects a faithful failing certificate: %v", err)
			}
		})
	}
}

func TestCertifyConflictWitnessIsGenuine(t *testing.T) {
	// Π = [1 1 1] over the μ = 2 cube conflicts: e.g. γ = (1, −1, 0).
	algo := uda.MatMul(2)
	cert, err := Certify(algo, intmat.New(0, 3), intmat.Vec(1, 1, 1), nil)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	w := intmat.Vector(cert.ConflictWitness)
	if w.IsZero() {
		t.Fatalf("no conflict witness recorded")
	}
	if d := w.Dot(intmat.Vec(1, 1, 1)); d != 0 {
		t.Errorf("witness %v not in null(T): Π·γ = %d", w, d)
	}
	for i, g := range w {
		if abs64(g) > algo.Set.Upper[i] {
			t.Errorf("witness %v is Theorem 2.2-feasible at axis %d — no conflict", w, i+1)
		}
	}
	if cert.BruteForce == nil || !cert.BruteForce.Agrees {
		t.Errorf("brute force disagrees with conflict verdict: %+v", cert.BruteForce)
	}
}

func TestVerifyMappingCompositionWitness(t *testing.T) {
	algo, s, pi := matmulMapping(t)
	m, err := schedule.NewMapping(algo, s, pi)
	if err != nil {
		t.Fatalf("NewMapping: %v", err)
	}
	cert, err := VerifyMapping(m, &Options{SkipOptimality: true})
	if err != nil {
		t.Fatalf("VerifyMapping: %v", err)
	}
	if !cert.Valid {
		t.Fatalf("valid mapping rejected: %s", cert.FailedWitness)
	}
	// Corrupt the composed T: S and Π still valid, T no longer [S; Π].
	corrupted := *m
	corrupted.T = intmat.FromRows([]int64{1, 1, -1}, []int64{3, 2, 1})
	cert, err = VerifyMapping(&corrupted, &Options{SkipOptimality: true})
	if err != nil {
		t.Fatalf("VerifyMapping: %v", err)
	}
	if cert.Valid || cert.FailedWitness != WitnessComposition {
		t.Errorf("corrupted T: valid=%v witness=%q, want composition failure", cert.Valid, cert.FailedWitness)
	}
}

func TestCertifyShapeErrors(t *testing.T) {
	algo := uda.MatMul(2)
	if _, err := Certify(nil, nil, intmat.Vec(1, 1, 1), nil); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := Certify(algo, intmat.FromRows([]int64{1, 1}), intmat.Vec(1, 1, 1), nil); err == nil {
		t.Error("2-column S accepted for 3-D algorithm")
	}
	if _, err := Certify(algo, nil, intmat.Vec(1, 1), nil); err == nil {
		t.Error("2-entry Π accepted for 3-D algorithm")
	}
	var fe *FailureError
	_, err := Certify(algo, nil, intmat.Vec(1, 1), nil)
	if !errors.As(err, &fe) || fe.Witness != WitnessShape {
		t.Errorf("shape error = %v, want *FailureError naming %q", err, WitnessShape)
	}
}

func TestCheckRejectsTampering(t *testing.T) {
	algo, s, pi := matmulMapping(t)
	fresh := func() *Certificate {
		cert, err := Certify(algo, s, pi, nil)
		if err != nil {
			t.Fatalf("Certify: %v", err)
		}
		return cert
	}
	tamper := []struct {
		name string
		mut  func(c *Certificate)
	}{
		{"flip a schedule dot", func(c *Certificate) { c.Schedule[0].Dot++ }},
		{"forge total time", func(c *Certificate) { c.TotalTime-- }},
		{"forge basis vector", func(c *Certificate) { c.Basis[0].Gamma[0]++ }},
		{"forge feasible index", func(c *Certificate) { c.Basis[0].FeasibleIndex = 2 }},
		{"claim optimal", func(c *Certificate) { c.Optimality = Optimal }},
		{"raise the bound", func(c *Certificate) { c.LowerBound = c.TotalTime + 1 }},
		{"swap Π", func(c *Certificate) { c.Pi[0] = 7 }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			cert := fresh()
			tc.mut(cert)
			if err := cert.Check(algo, s, pi); err == nil {
				t.Errorf("tampered certificate passed Check")
			}
		})
	}
}

func TestCertificateJSONRoundTrip(t *testing.T) {
	algo, s, pi := matmulMapping(t)
	cert, err := Certify(algo, s, pi, &Options{Simulate: true})
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	blob, err := json.Marshal(cert)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, key := range []string{"schedule_validity", "null_basis", "hnf", "brute_force", "simulation", "lower_bound"} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("serialized certificate lacks %q", key)
		}
	}
	var back Certificate
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := back.Check(algo, s, pi); err != nil {
		t.Errorf("round-tripped certificate fails Check: %v", err)
	}
}

func TestSelfCheckHook(t *testing.T) {
	// Importing this package must have registered the schedule hook.
	algo := uda.MatMul(3)
	s := intmat.FromRows([]int64{1, 1, -1})
	res, err := schedule.FindOptimal(algo, s, &schedule.Options{SelfCheck: true})
	if err != nil {
		t.Fatalf("FindOptimal with SelfCheck: %v", err)
	}
	if res.Mapping == nil {
		t.Fatal("no mapping returned")
	}
	joint, err := schedule.FindJointMapping(algo, 1, &schedule.SpaceOptions{
		Schedule: schedule.Options{SelfCheck: true},
	})
	if err != nil {
		t.Fatalf("FindJointMapping with SelfCheck: %v", err)
	}
	if joint.Mapping == nil {
		t.Fatal("no joint mapping returned")
	}
	space, err := schedule.FindSpaceMapping(algo, intmat.Vec(1, 3, 1), 1, &schedule.SpaceOptions{
		Schedule: schedule.Options{SelfCheck: true},
	})
	if err != nil {
		t.Fatalf("FindSpaceMapping with SelfCheck: %v", err)
	}
	if space.Mapping == nil {
		t.Fatal("no space mapping returned")
	}
}

func TestDeepCodimensionEnumeration(t *testing.T) {
	// k = 1, n = 3: two basis vectors, so the verdict needs the
	// independent lattice sweep, not just per-basis feasibility.
	set := uda.Box(2, 2, 2)
	// T = [1 5 25]: distinct images for all 27 points (base-5 digits),
	// conflict-free despite a 2-D conflict lattice.
	free, wit, err := DecideConflict(intmat.FromRows([]int64{1, 5, 25}), set, 0)
	if err != nil {
		t.Fatalf("DecideConflict: %v", err)
	}
	if !free {
		t.Errorf("injective mapping flagged conflicting: witness %v", wit)
	}
	// T = [1 1 4] collides (e.g. j and j + (1,−1,0)).
	free, wit, err = DecideConflict(intmat.FromRows([]int64{1, 1, 4}), set, 0)
	if err != nil {
		t.Fatalf("DecideConflict: %v", err)
	}
	if free {
		t.Error("colliding mapping flagged conflict-free")
	} else if wit.IsZero() {
		t.Error("conflict verdict without witness")
	}
}

func TestEnumerationBudget(t *testing.T) {
	// Basis vectors (100,−1,0), (0,100,−1) are individually feasible
	// (100 > 99), so the verdict needs the lattice sweep — whose β box
	// is ~4M points. A 10-point budget must surface ErrEnumBudget
	// instead of hanging.
	set := uda.Box(99, 99, 99)
	_, _, err := DecideConflict(intmat.FromRows([]int64{1, 100, 10000}), set, 10)
	if !errors.Is(err, ErrEnumBudget) {
		t.Fatalf("err = %v, want ErrEnumBudget", err)
	}
}
