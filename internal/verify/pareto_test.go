package verify

import (
	"context"
	"testing"

	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// engineFront runs the multi-objective engine and converts its front
// into the verifier's input shape.
func engineFront(t *testing.T, algo *uda.Algorithm, slack int64) ([]ParetoInput, int64) {
	t.Helper()
	res, err := schedule.FindPareto(algo, 1, &schedule.ParetoOptions{TimeSlack: slack})
	if err != nil {
		t.Fatal(err)
	}
	members := make([]ParetoInput, len(res.Front))
	for i, m := range res.Front {
		members[i] = ParetoInput{S: m.Mapping.S, Pi: m.Mapping.Pi, Vector: [ParetoAxes]int64(m.Vector)}
	}
	return members, res.TimeBound
}

// TestCertifyParetoAcceptsEngineFront: the engine's front passes every
// front-level witness with all objective axes independently confirmed.
func TestCertifyParetoAcceptsEngineFront(t *testing.T) {
	for _, algo := range []*uda.Algorithm{uda.MatMul(3), uda.TransitiveClosure(2), uda.Convolution(3, 2)} {
		for _, slack := range []int64{0, 3} {
			members, bound := engineFront(t, algo, slack)
			cert, err := CertifyPareto(context.Background(), algo, members, bound, nil)
			if err != nil {
				t.Fatalf("%s slack=%d: %v", algo.Name, slack, err)
			}
			if !cert.Valid || !cert.NonDomination || !cert.OrderChecked {
				t.Fatalf("%s slack=%d: rejected: %s (%s), member %d",
					algo.Name, slack, cert.FailedWitness, cert.FailedDetail, cert.FailedMember)
			}
			for i, mc := range cert.Members {
				if !mc.ProcessorsChecked {
					t.Errorf("%s member %d: processors unchecked on a tiny index set", algo.Name, i)
				}
				if mc.Certificate.Optimality == "" {
					t.Errorf("%s member %d: optimality analysis missing", algo.Name, i)
				}
			}
		}
	}
}

// TestCertifyParetoRejections: each doctored front fails on the right
// witness.
func TestCertifyParetoRejections(t *testing.T) {
	algo := uda.MatMul(3)
	members, bound := engineFront(t, algo, 3)
	if len(members) < 2 {
		t.Skip("front too small to doctor")
	}
	ctx := context.Background()

	t.Run("empty", func(t *testing.T) {
		cert, err := CertifyPareto(ctx, algo, nil, bound, nil)
		if err != nil || cert.Valid || cert.FailedWitness != WitnessParetoMember {
			t.Fatalf("got valid=%v witness=%q err=%v", cert.Valid, cert.FailedWitness, err)
		}
	})

	t.Run("doctored-vector", func(t *testing.T) {
		bad := append([]ParetoInput(nil), members...)
		bad[0].Vector[2]++ // inflate claimed buffers
		cert, err := CertifyPareto(ctx, algo, bad, bound, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cert.Valid || cert.FailedWitness != WitnessObjective || cert.FailedMember != 0 {
			t.Fatalf("got valid=%v witness=%q member=%d", cert.Valid, cert.FailedWitness, cert.FailedMember)
		}
	})

	t.Run("invalid-member", func(t *testing.T) {
		bad := append([]ParetoInput(nil), members...)
		pi := bad[0].Pi.Clone()
		for i := range pi {
			pi[i] = -1 // violates ΠD > 0 for matmul's identity dependences
		}
		bad[0].Pi = pi
		cert, err := CertifyPareto(ctx, algo, bad, bound, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cert.Valid || cert.FailedWitness != WitnessParetoMember {
			t.Fatalf("got valid=%v witness=%q", cert.Valid, cert.FailedWitness)
		}
	})

	t.Run("window", func(t *testing.T) {
		cert, err := CertifyPareto(ctx, algo, members, members[0].Vector[0]-1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cert.Valid || cert.FailedWitness != WitnessWindow {
			t.Fatalf("got valid=%v witness=%q", cert.Valid, cert.FailedWitness)
		}
	})

	t.Run("duplicate", func(t *testing.T) {
		bad := append(append([]ParetoInput(nil), members...), members[len(members)-1])
		cert, err := CertifyPareto(ctx, algo, bad, bound, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cert.Valid || cert.NonDomination || cert.FailedWitness != WitnessDomination {
			t.Fatalf("got valid=%v nondom=%v witness=%q", cert.Valid, cert.NonDomination, cert.FailedWitness)
		}
	})

	t.Run("reordered", func(t *testing.T) {
		bad := append([]ParetoInput(nil), members...)
		bad[0], bad[1] = bad[1], bad[0]
		cert, err := CertifyPareto(ctx, algo, bad, bound, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cert.Valid || cert.OrderChecked || cert.FailedWitness != WitnessFrontOrder {
			t.Fatalf("got valid=%v ordered=%v witness=%q", cert.Valid, cert.OrderChecked, cert.FailedWitness)
		}
	})
}
