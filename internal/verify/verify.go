// Package verify is the independent certification engine of lodim: it
// re-validates any space-time mapping (S, Π) of a uniform dependence
// algorithm from first principles and records *why* the mapping is
// correct as a machine-checkable Certificate.
//
// Independence is the point. The search engines (internal/schedule,
// internal/conflict's theorem ladder and factored SpaceAnalyzer) decide
// conflict-freeness with layered shortcuts — Theorem 3.1 closed forms,
// the sufficient conditions of Theorems 4.5–4.8, size-reduced cached
// null bases. This package shares none of those code paths. It derives
// everything again from a fresh Hermite factorization T·U = [L, 0]
// (Theorem 4.1), its own bounded lattice enumeration, and — below a
// size cutoff — the definitional conflict.BruteForce ground truth. A
// bug in the search therefore cannot certify itself.
//
// The certificate carries four witness families:
//
//   - schedule validity: Π·d̄_j for every dependence column, each ≥ 1
//     (condition 1 of Definition 2.2);
//   - conflict-freeness: per HNF-derived null-basis vector γ, the axis
//     i with |γ_i| > μ_i (the Theorem 2.2 feasibility witness), plus an
//     exhaustive enumeration of the bounded conflict lattice for
//     codimension ≥ 2, plus the brute-force cross-check;
//   - time optimality: TotalTime(Π) against the best certified lower
//     bound over the ΠD > 0 cone (closed-form per-dependence bound,
//     exact cone minimum, dataflow critical path), flagging Optimal
//     versus FeasibleOnly;
//   - simulation (opt-in): a cycle-accurate replay through
//     internal/systolic asserting no PE executes two computations in
//     one step, in agreement with the algebraic verdict.
//
// For the same reason, this package stays on intmat's allocating API
// (HermiteNormalForm, SmithNormalForm, Mul, …) rather than the
// arena/scratch machinery the search engines use (DESIGN.md §11): the
// allocating wrappers are one-line shims over the same *Into
// arithmetic, so the referee exercises identical math with fresh heap
// storage per call and no aliasing against a searcher's scratch state.
// Verification runs once per result; allocation here is noise.
//
// Importing this package (directly, or through the mapping facade or
// internal/service) registers the self-checker hook that powers
// schedule.Options.SelfCheck.
package verify

import (
	"context"
	"errors"
	"fmt"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/systolic"
	"lodim/internal/trace"
	"lodim/internal/uda"
)

func init() {
	schedule.RegisterSelfChecker(func(m *schedule.Mapping) error {
		// Winner certification: correctness witnesses only. The
		// optimality bound is skipped — it re-enumerates the Π cone the
		// search just walked, doubling search cost for no extra safety.
		cert, err := VerifyMapping(m, &Options{SkipOptimality: true})
		if err != nil {
			return err
		}
		return cert.Err()
	})
}

// Witness names, used in FailureError.Witness and
// Certificate.FailedWitness so callers (and the acceptance tests) can
// tell exactly which proof obligation broke.
const (
	WitnessShape       = "shape"
	WitnessComposition = "composition"
	WitnessRank        = "rank"
	WitnessHNF         = "hnf-factorization"
	WitnessSchedule    = "schedule-validity"
	WitnessConflict    = "conflict-freeness"
	WitnessBrute       = "brute-force-agreement"
	WitnessSimulation  = "simulation-agreement"
)

// Optimality verdicts.
const (
	// Optimal: TotalTime(Π) equals a certified lower bound on every
	// valid schedule, so Π is time-optimal among all Π'D > 0 schedules
	// (conflict-free or not), hence among the conflict-free ones.
	Optimal = "optimal"
	// FeasibleOnly: the mapping is certified valid and conflict-free,
	// but a cheaper valid (possibly conflicting) schedule exists — or
	// the bound computation hit its budget — so time-optimality is not
	// certified. Conflict constraints can force the true conflict-free
	// optimum above every bound this package computes.
	FeasibleOnly = "feasible-only"
)

// Default resource bounds (overridable via Options).
const (
	// DefaultBruteForceLimit is the |J| ceiling below which the
	// definitional brute-force cross-check runs.
	DefaultBruteForceLimit = 1 << 14
	// DefaultSimulateLimit is the |J| ceiling for the opt-in
	// simulation witness.
	DefaultSimulateLimit = 1 << 14
	// DefaultEnumBudget bounds the β-lattice points enumerated by the
	// independent exact conflict decision.
	DefaultEnumBudget = 5_000_000
	// DefaultOptimalityBudget bounds the schedule vectors enumerated
	// for the exact Π-cone lower bound.
	DefaultOptimalityBudget = 2_000_000
	// DefaultCriticalPathLimit is the |J| ceiling for the dataflow
	// critical-path lower bound (it enumerates the index set).
	DefaultCriticalPathLimit = 1 << 14
)

// ErrEnumBudget reports that the independent lattice enumeration
// exceeded its point budget — an operational limit, not a verdict.
var ErrEnumBudget = errors.New("verify: conflict-lattice enumeration budget exceeded")

// Options tunes the certification; the zero value selects every
// default. All limits are resource bounds — they never change a
// verdict, only whether an optional witness is produced.
type Options struct {
	// BruteForceLimit is the |J| ceiling for the brute-force
	// cross-check (0 = DefaultBruteForceLimit, negative disables).
	BruteForceLimit int64
	// Simulate enables the systolic replay witness (bounded by
	// SimulateLimit; 0 = DefaultSimulateLimit).
	Simulate      bool
	SimulateLimit int64
	// SkipOptimality skips the lower-bound analysis; Optimality is
	// left empty. Used by the schedule.Options.SelfCheck hook.
	SkipOptimality bool
	// EnumBudget bounds the lattice points of the exact conflict
	// decision (0 = DefaultEnumBudget).
	EnumBudget int64
	// OptimalityBudget bounds the candidates of the exact Π-cone
	// search (0 = DefaultOptimalityBudget).
	OptimalityBudget int64
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.BruteForceLimit == 0 {
		out.BruteForceLimit = DefaultBruteForceLimit
	}
	if out.SimulateLimit <= 0 {
		out.SimulateLimit = DefaultSimulateLimit
	}
	if out.EnumBudget <= 0 {
		out.EnumBudget = DefaultEnumBudget
	}
	if out.OptimalityBudget <= 0 {
		out.OptimalityBudget = DefaultOptimalityBudget
	}
	return out
}

// FailureError names the witness that failed certification.
type FailureError struct {
	Witness string
	Detail  string
}

func (e *FailureError) Error() string {
	return fmt.Sprintf("verify: %s witness failed: %s", e.Witness, e.Detail)
}

// ScheduleWitness records Π·d̄ for one dependence column — the
// displayed form of condition ΠD > 0.
type ScheduleWitness struct {
	Dep []int64 `json:"dep"`
	Dot int64   `json:"dot"`
	OK  bool    `json:"ok"`
}

// BasisWitness is the Theorem 2.2 witness for one HNF-derived conflict
// vector: the axis index i with |γ_i| > μ_i proving γ cannot connect
// two points of the index box. FeasibleIndex is −1 when no such axis
// exists — then γ itself exhibits a conflict.
type BasisWitness struct {
	Gamma         []int64 `json:"gamma"`
	FeasibleIndex int     `json:"feasible_index"`
	Excess        int64   `json:"excess,omitempty"` // |γ_i| − μ_i at that axis
}

// HNFWitness records the fresh T·U = [L, 0] factorization: the
// positive diagonal of L proves rank(T) = k (Theorem 4.1), and Checked
// reports that T·U = H, U unimodular and the triangular shape were all
// re-verified.
type HNFWitness struct {
	LDiag   []int64 `json:"l_diag"`
	Checked bool    `json:"checked"`
}

// EnumerationWitness summarizes the exhaustive sweep of the bounded
// conflict lattice: every integer combination γ = Σ β_t·u_t whose β
// coordinates fit the |β_t| ≤ Σ_i |V_{k+t,i}|·μ_i box (the only region
// that can hold an in-box γ) was tested.
type EnumerationWitness struct {
	BetaBounds []int64 `json:"beta_bounds"`
	Points     int64   `json:"points_enumerated"`
}

// CrossCheck records the definitional brute-force comparison.
type CrossCheck struct {
	Ran     bool    `json:"ran"`
	Points  int64   `json:"points,omitempty"`
	Agrees  bool    `json:"agrees"`
	Witness []int64 `json:"witness,omitempty"`
}

// SimulationWitness records the opt-in systolic replay.
type SimulationWitness struct {
	Ran          bool  `json:"ran"`
	Cycles       int64 `json:"cycles,omitempty"`
	Computations int64 `json:"computations,omitempty"`
	Conflicts    int   `json:"conflicts"`
	MaxOccupancy int   `json:"max_occupancy,omitempty"`
	Agrees       bool  `json:"agrees"`
}

// Certificate is the full, self-describing verification record of one
// (S, Π) mapping. It is JSON-serializable end to end (mapfind -verify
// and POST /v1/verify emit it directly) and re-checkable offline via
// Check.
type Certificate struct {
	Algorithm string    `json:"algorithm,omitempty"`
	N         int       `json:"n"`
	K         int       `json:"k"`
	Mu        []int64   `json:"mu"`
	S         [][]int64 `json:"s"`
	Pi        []int64   `json:"pi"`

	Valid         bool   `json:"valid"`
	FailedWitness string `json:"failed_witness,omitempty"`
	FailedDetail  string `json:"failed_detail,omitempty"`

	Schedule        []ScheduleWitness   `json:"schedule_validity"`
	HNF             *HNFWitness         `json:"hnf,omitempty"`
	Basis           []BasisWitness      `json:"null_basis"`
	Enumeration     *EnumerationWitness `json:"enumeration,omitempty"`
	ConflictFree    bool                `json:"conflict_free"`
	ConflictWitness []int64             `json:"conflict_witness,omitempty"`
	BruteForce      *CrossCheck         `json:"brute_force,omitempty"`
	Simulation      *SimulationWitness  `json:"simulation,omitempty"`

	TotalTime      int64  `json:"total_time"`
	LowerBound     int64  `json:"lower_bound,omitempty"`
	LowerBoundKind string `json:"lower_bound_kind,omitempty"`
	Optimality     string `json:"optimality,omitempty"`
}

// Err returns nil for a valid certificate and the named failing
// witness otherwise.
func (c *Certificate) Err() error {
	if c.Valid {
		return nil
	}
	return &FailureError{Witness: c.FailedWitness, Detail: c.FailedDetail}
}

// fail records the first failing witness (later failures keep the
// first name, which identifies the root cause).
func (c *Certificate) fail(witness, format string, args ...any) {
	c.Valid = false
	if c.FailedWitness == "" {
		c.FailedWitness = witness
		c.FailedDetail = fmt.Sprintf(format, args...)
	}
}

// VerifyMapping certifies a pre-assembled mapping. Beyond Certify it
// also cross-checks the mapping's composed T field against [S; Π] — a
// Mapping built as a raw struct literal can carry a T that is not the
// stack of its own S and Π, which no downstream consumer would notice.
func VerifyMapping(m *schedule.Mapping, opts *Options) (*Certificate, error) {
	return VerifyMappingContext(context.Background(), m, opts)
}

// VerifyMappingContext is VerifyMapping under a caller context: when
// the context carries an active trace span, the certificate stages are
// recorded as child spans (see internal/trace).
func VerifyMappingContext(ctx context.Context, m *schedule.Mapping, opts *Options) (*Certificate, error) {
	if m == nil {
		return nil, errors.New("verify: nil mapping")
	}
	cert, err := CertifyContext(ctx, m.Algo, m.S, m.Pi, opts)
	if err != nil {
		return nil, err
	}
	if m.T != nil {
		want := m.S.AppendRow(m.Pi)
		if !m.T.Equal(want) {
			cert.fail(WitnessComposition, "mapping's T field is not [S; Π]: got\n%v\nwant\n%v", m.T, want)
		}
	}
	return cert, nil
}

// Certify independently verifies the mapping (S, Π) of algo and
// returns the certificate. The returned error is operational (nil
// inputs, shape mismatch, arithmetic overflow, budget exhaustion) —
// an *invalid mapping* is not an error here: it yields a certificate
// with Valid == false and a named FailedWitness. Use Certificate.Err
// to convert the verdict into an error.
func Certify(algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector, opts *Options) (*Certificate, error) {
	return CertifyContext(context.Background(), algo, s, pi, opts)
}

// CertifyContext is Certify under a caller context. The context is
// used for tracing only — each certificate stage (schedule witnesses,
// conflict analysis, brute-force cross-check, simulation, optimality)
// becomes a child span when the context carries an active trace; the
// engine itself stays uninterruptible because every stage is budgeted
// (EnumBudget, BruteForceLimit, SimulateLimit) rather than unbounded.
func CertifyContext(ctx context.Context, algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector, opts *Options) (*Certificate, error) {
	opt := opts.withDefaults()
	ctx, span := trace.Start(ctx, "certify")
	defer span.End()
	if algo == nil {
		return nil, &FailureError{Witness: WitnessShape, Detail: "nil algorithm"}
	}
	if err := algo.Validate(); err != nil {
		return nil, &FailureError{Witness: WitnessShape, Detail: err.Error()}
	}
	n := algo.Dim()
	if s == nil {
		s = intmat.New(0, n)
	}
	if s.Cols() != n {
		return nil, &FailureError{Witness: WitnessShape,
			Detail: fmt.Sprintf("S has %d columns, algorithm dimension is %d", s.Cols(), n)}
	}
	if len(pi) != n {
		return nil, &FailureError{Witness: WitnessShape,
			Detail: fmt.Sprintf("Π has %d entries, algorithm dimension is %d", len(pi), n)}
	}
	t := s.AppendRow(pi)
	k := t.Rows()

	cert := &Certificate{
		Algorithm: algo.Name,
		N:         n,
		K:         k,
		Mu:        algo.Set.Upper.Clone(),
		S:         matrixRows(s),
		Pi:        pi.Clone(),
		Valid:     true,
	}

	// (b) Schedule validity: Π·d̄_j ≥ 1 per dependence column.
	_, schedSpan := trace.Start(ctx, "schedule-witnesses")
	cert.Schedule = make([]ScheduleWitness, algo.NumDeps())
	for j := 0; j < algo.NumDeps(); j++ {
		dep := algo.Dep(j)
		dot := pi.Dot(dep)
		ok := dot >= 1
		cert.Schedule[j] = ScheduleWitness{Dep: dep, Dot: dot, OK: ok}
		if !ok {
			cert.fail(WitnessSchedule, "Π·d̄_%d = %d < 1 for dependence %v", j+1, dot, dep)
		}
	}
	cert.TotalTime = totalTime(pi, algo.Set.Upper)
	schedSpan.SetInt("dependencies", int64(algo.NumDeps()))
	schedSpan.End()

	// (a) Conflict-freeness from a fresh TU = [L, 0] factorization.
	_, confSpan := trace.Start(ctx, "conflict-analysis")
	free, witness, err := analyzeConflicts(cert, t, algo.Set, opt.EnumBudget)
	confSpan.End()
	if err != nil {
		if errors.Is(err, intmat.ErrRankDeficient) {
			cert.fail(WitnessRank, "rank(T) = %d < k = %d", t.Rank(), k)
			return cert, nil
		}
		return nil, err
	}
	cert.ConflictFree = free
	if !free {
		cert.ConflictWitness = witness
		cert.fail(WitnessConflict, "conflict vector %v connects two index points (all |γ_i| ≤ μ_i)", witness)
	}

	// Definitional cross-check below the size cutoff.
	if opt.BruteForceLimit > 0 && !algo.Set.SizeExceeds(opt.BruteForceLimit) {
		_, bfSpan := trace.Start(ctx, "brute-force")
		bfFree, bfWitness := conflict.BruteForce(t, algo.Set)
		cc := &CrossCheck{Ran: true, Points: algo.Set.Size(), Agrees: bfFree == free, Witness: bfWitness}
		cert.BruteForce = cc
		bfSpan.SetInt("points", cc.Points)
		bfSpan.End()
		if !cc.Agrees {
			cert.fail(WitnessBrute, "independent decision says free=%v but brute force says free=%v (bf witness %v)",
				free, bfFree, bfWitness)
		}
	}

	// (d) Optional simulation replay. Only meaningful on a structurally
	// sound mapping: the simulator needs rank(T) = k and a forward
	// schedule to replay at all.
	if opt.Simulate && cert.FailedWitness != WitnessRank && scheduleAllOK(cert.Schedule) &&
		!algo.Set.SizeExceeds(opt.SimulateLimit) {
		_, simSpan := trace.Start(ctx, "simulation")
		simulateWitness(cert, algo, s, pi, t)
		simSpan.End()
	}

	// (c) Time-optimality bound. Only certified for valid schedules —
	// TotalTime of an invalid Π bounds nothing.
	if !opt.SkipOptimality && scheduleAllOK(cert.Schedule) {
		_, optSpan := trace.Start(ctx, "optimality")
		optimalityWitness(cert, algo, pi, opt)
		optSpan.SetStr("verdict", cert.Optimality)
		optSpan.End()
	}
	if cert.Valid {
		span.SetStr("verdict", "valid")
	} else {
		span.SetStr("verdict", cert.FailedWitness)
	}
	return cert, nil
}

// DecideConflict is the package's independent exact conflict decision
// on a bare mapping matrix, exposed for the differential harness: it
// shares no code with conflict.Decide's criterion ladder or the
// factored SpaceAnalyzer. The returned witness (conflict case) is a
// non-zero lattice vector with every |γ_i| ≤ μ_i.
func DecideConflict(t *intmat.Matrix, set uda.IndexSet, enumBudget int64) (free bool, witness intmat.Vector, err error) {
	if enumBudget <= 0 {
		enumBudget = DefaultEnumBudget
	}
	cert := &Certificate{Valid: true}
	return analyzeConflicts(cert, t, set, enumBudget)
}

// analyzeConflicts runs the independent conflict analysis, filling the
// HNF, basis and enumeration witnesses of cert as it goes.
func analyzeConflicts(cert *Certificate, t *intmat.Matrix, set uda.IndexSet, enumBudget int64) (bool, intmat.Vector, error) {
	h, err := intmat.HermiteNormalForm(t)
	if err != nil {
		return false, nil, err
	}
	k := t.Rows()
	ldiag := make([]int64, k)
	for i := range ldiag {
		ldiag[i] = h.H.At(i, i)
	}
	hw := &HNFWitness{LDiag: ldiag}
	cert.HNF = hw
	// Defense in depth around the exact arithmetic: re-verify the
	// factorization's defining properties before trusting its basis.
	if err := h.Verify(); err != nil {
		cert.fail(WitnessHNF, "%v", err)
		return false, nil, nil
	}
	hw.Checked = true

	// Theorem 2.2 witness per basis vector. An infeasible basis vector
	// is itself a conflict (it is non-zero, integral and in null(T)).
	basis := h.NullBasis()
	cert.Basis = make([]BasisWitness, len(basis))
	var conflictWitness intmat.Vector
	for bi, gamma := range basis {
		idx, excess := feasibleIndex(set, gamma)
		cert.Basis[bi] = BasisWitness{Gamma: gamma, FeasibleIndex: idx, Excess: excess}
		if idx < 0 && conflictWitness == nil {
			conflictWitness = gamma
		}
	}
	if conflictWitness != nil {
		return false, conflictWitness, nil
	}
	// Basis feasibility settles k = n (no null space) and k = n−1 (the
	// lattice is {c·γ}, and |c·γ_i| ≥ |γ_i| > μ_i for c ≠ 0). Deeper
	// codimension needs the exhaustive sweep: a combination of feasible
	// basis vectors can itself be infeasible (Example 4.1).
	if len(basis) <= 1 {
		cert.Enumeration = &EnumerationWitness{BetaBounds: []int64{}, Points: 0}
		return true, nil, nil
	}
	return enumerateLattice(cert, h, basis, set, enumBudget)
}

// feasibleIndex returns the first axis i with |γ_i| > μ_i and the
// excess |γ_i| − μ_i, or (−1, 0) when γ is infeasible-free (i.e. a
// genuine conflict vector of the box).
func feasibleIndex(set uda.IndexSet, gamma intmat.Vector) (int, int64) {
	for i, g := range gamma {
		if g < 0 {
			g = -g
		}
		if g > set.Upper[i] {
			return i, g - set.Upper[i]
		}
	}
	return -1, 0
}

// enumerateLattice exhaustively tests every candidate conflict vector
// γ = Σ β_t·u_t. Any in-box γ has coordinates β = V·γ with
// |β_t| ≤ Σ_i |V_{k+t,i}|·μ_i (V = U⁻¹), so sweeping that β box —
// halved by the γ(−β) = −γ(β) symmetry — is exhaustive.
func enumerateLattice(cert *Certificate, h *intmat.HNF, basis []intmat.Vector, set uda.IndexSet, budget int64) (free bool, witness intmat.Vector, err error) {
	defer intmat.Guard(&err)
	k, n := h.T.Rows(), h.T.Cols()
	q := len(basis)
	v := h.V()
	bounds := make([]int64, q)
	var points int64 = 1
	for tIdx := 0; tIdx < q; tIdx++ {
		var b int64
		for i := 0; i < n; i++ {
			b = checkedAdd(b, checkedMul(abs64(v.At(k+tIdx, i)), set.Upper[i]))
		}
		bounds[tIdx] = b
		points = checkedMul(points, checkedAdd(checkedMul(2, b), 1))
		if points > 2*budget { // symmetry halves the actual visits
			return false, nil, fmt.Errorf("%w: ≥ %d points against budget %d", ErrEnumBudget, points/2, budget)
		}
	}
	// Precheck the γ accumulation range so the inner loop can use plain
	// int64 arithmetic: |γ_i| ≤ Σ_t bounds_t·|u_t[i]| must fit.
	for i := 0; i < n; i++ {
		var m int64
		for tIdx, u := range basis {
			m = checkedAdd(m, checkedMul(bounds[tIdx], abs64(u[i])))
		}
	}
	ew := &EnumerationWitness{BetaBounds: bounds}
	cert.Enumeration = ew

	beta := make([]int64, q)
	gamma := make(intmat.Vector, n)
	// Odometer over the β box, visiting only lexicographically positive
	// β (the first non-zero coordinate positive): γ is odd in β, and
	// the in-box test is symmetric under negation.
	for t0 := 0; t0 < q; t0++ {
		// β_t0 ∈ [1, bounds_t0], β_t ∈ [−bounds_t, bounds_t] for t > t0,
		// β_t = 0 for t < t0.
		if bounds[t0] == 0 {
			continue
		}
		for t := range beta {
			beta[t] = 0
		}
		beta[t0] = 1
		for t := t0 + 1; t < q; t++ {
			beta[t] = -bounds[t]
		}
		for {
			ew.Points++
			for i := range gamma {
				var g int64
				for t := t0; t < q; t++ {
					g += beta[t] * basis[t][i]
				}
				gamma[i] = g
			}
			if idx, _ := feasibleIndex(set, gamma); idx < 0 {
				return false, gamma.Clone(), nil
			}
			// Increment: last coordinate first.
			t := q - 1
			for t > t0 {
				beta[t]++
				if beta[t] <= bounds[t] {
					break
				}
				beta[t] = -bounds[t]
				t--
			}
			if t == t0 {
				beta[t0]++
				if beta[t0] > bounds[t0] {
					break
				}
			}
		}
	}
	return true, nil, nil
}

// scheduleAllOK reports whether every per-dependence witness passed.
func scheduleAllOK(ws []ScheduleWitness) bool {
	for _, w := range ws {
		if !w.OK {
			return false
		}
	}
	return true
}

// simulateWitness replays the mapping through the cycle-accurate
// simulator and checks that the observed computational conflicts agree
// with the algebraic verdict.
func simulateWitness(cert *Certificate, algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector, t *intmat.Matrix) {
	m := &schedule.Mapping{Algo: algo, S: s, Pi: pi, T: t}
	sim, err := systolic.New(m, &systolic.ChecksumProgram{Streams: algo.NumDeps()}, nil)
	if err != nil {
		cert.fail(WitnessSimulation, "building simulator: %v", err)
		return
	}
	run, err := sim.Run()
	if err != nil {
		cert.fail(WitnessSimulation, "simulation run: %v", err)
		return
	}
	sw := &SimulationWitness{
		Ran:          true,
		Cycles:       run.Cycles,
		Computations: run.Computations,
		Conflicts:    len(run.Conflicts),
		MaxOccupancy: run.MaxOccupancy,
		Agrees:       (len(run.Conflicts) == 0) == cert.ConflictFree,
	}
	cert.Simulation = sw
	if !sw.Agrees {
		cert.fail(WitnessSimulation, "algebraic verdict free=%v but simulation observed %d conflicts",
			cert.ConflictFree, len(run.Conflicts))
	}
}

// optimalityWitness computes the best certified lower bound on the
// total time of any valid schedule and compares it with TotalTime(Π).
func optimalityWitness(cert *Certificate, algo *uda.Algorithm, pi intmat.Vector, opt Options) {
	cost := cert.TotalTime - 1
	lb, kind := int64(1), "trivial"

	// Closed-form per-dependence bound: Π·d̄_j ≥ 1 and
	// |Π·d̄_j| ≤ (Σ|π_i|μ_i)·max_i(|d_ij|/μ_i) give
	// cost ≥ ⌈min_{i: d_ij≠0} μ_i/|d_ij|⌉ for every column j.
	if cf := closedFormConeBound(algo); cf > lb {
		lb, kind = cf, "closed-form-cone"
	}

	// Exact cone minimum: the cheapest Π' with Π'D > 0, ignoring
	// conflicts, found by level enumeration up to cost − 1. Finding
	// none proves cost is the cone minimum.
	exact, exhausted := exactConeBound(algo, cost, opt.OptimalityBudget)
	if !exhausted {
		if exact > lb {
			lb, kind = exact, "exact-cone"
		}
	}

	// Dataflow critical path: any schedule with unit-time computations
	// needs at least the longest dependence chain.
	if !algo.Set.SizeExceeds(DefaultCriticalPathLimit) {
		if cp, err := algo.CriticalPath(); err == nil && cp > lb {
			lb, kind = cp, "critical-path"
		}
	}

	cert.LowerBound = lb
	cert.LowerBoundKind = kind
	if lb == cert.TotalTime {
		cert.Optimality = Optimal
	} else {
		cert.Optimality = FeasibleOnly
	}
}

// closedFormConeBound returns 1 + max_j ⌈min_{i: d_ij≠0} μ_i/|d_ij|⌉,
// a closed-form lower bound on the total time of any Π with ΠD > 0.
func closedFormConeBound(algo *uda.Algorithm) int64 {
	mu := algo.Set.Upper
	var best int64 = 1
	for j := 0; j < algo.NumDeps(); j++ {
		dep := algo.Dep(j)
		var q int64 = -1
		for i, d := range dep {
			if d == 0 {
				continue
			}
			c := ceilDiv(mu[i], abs64(d))
			if q < 0 || c < q {
				q = c
			}
		}
		if q > 0 && 1+q > best { // bound on total time is 1 + q
			best = 1 + q
		}
	}
	return best
}

// exactConeBound enumerates schedule vectors in increasing objective
// order (independently of schedule's enumerate) looking for the
// cheapest valid Π' with cost ≤ maxCost − 1. It returns the certified
// lower bound 1 + c on total time when the sweep completes — either
// the cost of the cheapest cheaper valid schedule, or maxCost + 1
// (= the caller's own total time) when none exists. exhausted reports
// the candidate budget ran out before the sweep finished.
func exactConeBound(algo *uda.Algorithm, maxCost int64, budget int64) (bound int64, exhausted bool) {
	cols := make([]intmat.Vector, algo.NumDeps())
	for i := range cols {
		cols[i] = algo.D.Col(i)
	}
	visited := int64(0)
	for c := int64(1); c < maxCost; c++ {
		found, over := anyValidAtCost(algo.Set.Upper, cols, c, &visited, budget)
		if over {
			return 0, true
		}
		if found {
			return 1 + c, false
		}
	}
	return 1 + maxCost, false
}

// anyValidAtCost reports whether some Π with Σ|π_i|·μ_i = cost
// satisfies ΠD > 0, via a sign-and-magnitude recursion independent of
// schedule's enumerator. over reports the visit budget ran out.
func anyValidAtCost(mu intmat.Vector, depCols []intmat.Vector, cost int64, visited *int64, budget int64) (found, over bool) {
	n := len(mu)
	pi := make(intmat.Vector, n)
	var rec func(i int, remaining int64) bool // returns true to keep going
	ok := false
	rec = func(i int, remaining int64) bool {
		if i == n {
			if remaining != 0 {
				return true
			}
			*visited++
			if *visited > budget {
				return false
			}
			valid := true
			for _, d := range depCols {
				if pi.Dot(d) <= 0 {
					valid = false
					break
				}
			}
			if valid {
				ok = true
				return false
			}
			return true
		}
		w := mu[i]
		if w == 0 {
			w = 1
		}
		maxAbs := remaining / w
		for v := -maxAbs; v <= maxAbs; v++ {
			pi[i] = v
			used := v * w
			if used < 0 {
				used = -used
			}
			if !rec(i+1, remaining-used) {
				return false
			}
		}
		pi[i] = 0
		return true
	}
	completed := rec(0, cost)
	if ok {
		return true, false
	}
	return false, !completed && *visited > budget
}

// totalTime is Equation 2.7, computed locally: t = 1 + Σ|π_i|·μ_i.
func totalTime(pi intmat.Vector, mu intmat.Vector) int64 {
	t := int64(1)
	for i, p := range pi {
		if p < 0 {
			p = -p
		}
		t += p * mu[i]
	}
	return t
}

func matrixRows(m *intmat.Matrix) [][]int64 {
	rows := make([][]int64, m.Rows())
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// checkedAdd and checkedMul panic with *intmat.OverflowError (captured
// by intmat.Guard at the enumeration boundary) on int64 overflow.
func checkedAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		panic(&intmat.OverflowError{Op: "verify add"})
	}
	return s
}

func checkedMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		panic(&intmat.OverflowError{Op: "verify mul"})
	}
	return p
}
