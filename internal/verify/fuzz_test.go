package verify

import (
	"testing"

	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// FuzzVerifyVsBruteForce differentially fuzzes this package's
// independent conflict decision against the definitional brute force
// on 2×4 mappings over small cubes — the same shape family as
// internal/conflict's FuzzDecideVsBruteForce, so the two fuzzers
// triangulate: if either decision procedure drifts from the
// definition, one of them catches it.
func FuzzVerifyVsBruteForce(f *testing.F) {
	f.Add(int8(1), int8(0), int8(0), int8(1), int8(0), int8(1), int8(1), int8(0), uint8(1))
	f.Add(int8(1), int8(1), int8(-1), int8(0), int8(1), int8(2), int8(3), int8(1), uint8(2))
	f.Add(int8(2), int8(-1), int8(0), int8(3), int8(0), int8(2), int8(-1), int8(1), uint8(0))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i int8, muRaw uint8) {
		vals := []int64{int64(a) % 10, int64(b) % 10, int64(c) % 10, int64(d) % 10,
			int64(e) % 10, int64(g) % 10, int64(h) % 10, int64(i) % 10}
		tm := intmat.FromRows(vals[:4], vals[4:])
		if tm.Rank() != 2 {
			t.Skip("rank-deficient draw")
		}
		mu := int64(muRaw%3) + 1
		set := uda.Cube(4, mu)
		free, wit, err := DecideConflict(tm, set, 0)
		if err != nil {
			t.Skip("resource limit")
		}
		bfFree, bfWit := conflict.BruteForce(tm, set)
		if free != bfFree {
			t.Fatalf("verify free=%v, brute force free=%v (bf witness %v) for T=\n%v μ=%d",
				free, bfFree, bfWit, tm, mu)
		}
		if !free {
			for row := 0; row < tm.Rows(); row++ {
				if tm.Row(row).Dot(wit) != 0 {
					t.Fatalf("witness %v not in null(T) for T=\n%v", wit, tm)
				}
			}
			if conflict.Feasible(set, wit) {
				t.Fatalf("witness %v is feasible for μ=%d — no conflict", wit, mu)
			}
		}
	})
}

// FuzzClosedFormGamma fuzzes the k = n−1 closed form of Theorem 3.1
// (signed maximal minors) against the HNF-derived null basis on 2×3
// mappings: the two derivations are independent, so agreement up to
// the paper's normalization is a strong invariant.
func FuzzClosedFormGamma(f *testing.F) {
	f.Add(int8(1), int8(1), int8(-1), int8(1), int8(2), int8(3), uint8(3))
	f.Add(int8(1), int8(0), int8(0), int8(0), int8(1), int8(1), uint8(1))
	f.Add(int8(2), int8(-3), int8(1), int8(0), int8(1), int8(-2), uint8(2))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g int8, muRaw uint8) {
		vals := []int64{int64(a) % 10, int64(b) % 10, int64(c) % 10,
			int64(d) % 10, int64(e) % 10, int64(g) % 10}
		tm := intmat.FromRows(vals[:3], vals[3:])
		if tm.Rank() != 2 {
			t.Skip("rank-deficient draw")
		}
		gammaCF, err := conflict.UniqueConflictVector(tm)
		if err != nil {
			t.Fatalf("UniqueConflictVector on full-rank T: %v\nT=\n%v", err, tm)
		}
		h, err := intmat.HermiteNormalForm(tm)
		if err != nil {
			t.Skip("overflow")
		}
		basis := h.NullBasis()
		if len(basis) != 1 {
			t.Fatalf("%d basis vectors for 2×3 full-rank T=\n%v", len(basis), tm)
		}
		if gammaHNF := basis[0].Canonical(); !gammaHNF.Equal(gammaCF) {
			t.Fatalf("closed-form γ=%v, HNF γ=%v for T=\n%v", gammaCF, gammaHNF, tm)
		}
		mu := int64(muRaw%4) + 1
		set := uda.Cube(3, mu)
		free, _, err := DecideConflict(tm, set, 0)
		if err != nil {
			t.Skip("resource limit")
		}
		if feas := conflict.Feasible(set, gammaCF); feas != free {
			t.Fatalf("Feasible(γ)=%v but decision free=%v for T=\n%v μ=%d", feas, free, tm, mu)
		}
	})
}
