package verify

import (
	"fmt"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// Check re-validates a certificate against the mapping it claims to
// certify: every witness is recomputed from the certificate's own data
// with elementary arithmetic (dot products, absolute-value bounds,
// null-space membership), so a certificate that was tampered with — or
// produced for a different mapping — is rejected without re-running
// the engine. A nil return means the certificate's witnesses genuinely
// prove what the certificate claims.
//
// Check deliberately does not re-derive the HNF or re-enumerate the
// lattice: the witnesses are designed so their *consequences* are
// cheap to confirm even though finding them is not. (The exception is
// exhaustiveness of the conflict-free verdict in codimension ≥ 2,
// which only a re-run of Certify can re-establish.)
func (c *Certificate) Check(algo *uda.Algorithm, s *intmat.Matrix, pi intmat.Vector) error {
	if algo == nil {
		return fmt.Errorf("verify: check: nil algorithm")
	}
	n := algo.Dim()
	if s == nil {
		s = intmat.New(0, n)
	}
	// The certificate must describe this mapping, not some other one.
	if c.N != n {
		return fmt.Errorf("verify: check: certificate is for dimension %d, mapping has %d", c.N, n)
	}
	if !intmat.Vector(c.Mu).Equal(algo.Set.Upper) {
		return fmt.Errorf("verify: check: certificate bounds %v != algorithm bounds %v", c.Mu, algo.Set.Upper)
	}
	if !intmat.Vector(c.Pi).Equal(pi) {
		return fmt.Errorf("verify: check: certificate Π %v != mapping Π %v", c.Pi, pi)
	}
	if len(c.S) != s.Rows() {
		return fmt.Errorf("verify: check: certificate S has %d rows, mapping S has %d", len(c.S), s.Rows())
	}
	for i, row := range c.S {
		if !intmat.Vector(row).Equal(s.Row(i)) {
			return fmt.Errorf("verify: check: certificate S row %d = %v != mapping row %v", i, row, s.Row(i))
		}
	}
	t := s.AppendRow(pi)
	if c.K != t.Rows() {
		return fmt.Errorf("verify: check: certificate k = %d, mapping has %d rows", c.K, t.Rows())
	}

	// Schedule witnesses: one per dependence column, dot products exact.
	if len(c.Schedule) != algo.NumDeps() {
		return fmt.Errorf("verify: check: %d schedule witnesses for %d dependencies", len(c.Schedule), algo.NumDeps())
	}
	for j, w := range c.Schedule {
		dep := algo.Dep(j)
		if !intmat.Vector(w.Dep).Equal(dep) {
			return fmt.Errorf("verify: check: schedule witness %d records dependence %v, algorithm has %v", j, w.Dep, dep)
		}
		if got := pi.Dot(dep); got != w.Dot {
			return fmt.Errorf("verify: check: schedule witness %d records Π·d̄ = %d, recomputed %d", j, w.Dot, got)
		}
		if w.OK != (w.Dot >= 1) {
			return fmt.Errorf("verify: check: schedule witness %d flags OK=%v for dot %d", j, w.OK, w.Dot)
		}
		if !w.OK && c.Valid {
			return fmt.Errorf("verify: check: certificate is valid despite failing schedule witness %d", j)
		}
	}
	if got := totalTime(pi, algo.Set.Upper); got != c.TotalTime {
		return fmt.Errorf("verify: check: total time %d, recomputed %d", c.TotalTime, got)
	}

	// Basis witnesses: each γ must be a non-zero null vector of T, and
	// the recorded feasible index must genuinely exceed its bound.
	for bi, bw := range c.Basis {
		gamma := intmat.Vector(bw.Gamma)
		if len(gamma) != n {
			return fmt.Errorf("verify: check: basis witness %d has dimension %d, want %d", bi, len(gamma), n)
		}
		if gamma.IsZero() {
			return fmt.Errorf("verify: check: basis witness %d is the zero vector", bi)
		}
		for r := 0; r < t.Rows(); r++ {
			if t.Row(r).Dot(gamma) != 0 {
				return fmt.Errorf("verify: check: basis witness %d: T·γ ≠ 0 at row %d", bi, r)
			}
		}
		if bw.FeasibleIndex >= 0 {
			i := bw.FeasibleIndex
			if i >= n {
				return fmt.Errorf("verify: check: basis witness %d: feasible index %d out of range", bi, i)
			}
			if abs64(gamma[i]) <= algo.Set.Upper[i] {
				return fmt.Errorf("verify: check: basis witness %d: |γ_%d| = %d does not exceed μ_%d = %d",
					bi, i+1, abs64(gamma[i]), i+1, algo.Set.Upper[i])
			}
			if want := abs64(gamma[i]) - algo.Set.Upper[i]; bw.Excess != want {
				return fmt.Errorf("verify: check: basis witness %d: excess %d, recomputed %d", bi, bw.Excess, want)
			}
		} else if c.Valid {
			return fmt.Errorf("verify: check: certificate is valid despite infeasible basis vector %v", gamma)
		}
	}

	// A claimed conflict must be a genuine one: non-zero, in null(T),
	// every coordinate within its bound.
	if c.ConflictWitness != nil {
		w := intmat.Vector(c.ConflictWitness)
		if c.ConflictFree {
			return fmt.Errorf("verify: check: conflict-free certificate carries conflict witness %v", w)
		}
		if len(w) != n || w.IsZero() {
			return fmt.Errorf("verify: check: malformed conflict witness %v", w)
		}
		for r := 0; r < t.Rows(); r++ {
			if t.Row(r).Dot(w) != 0 {
				return fmt.Errorf("verify: check: conflict witness %v is not in null(T)", w)
			}
		}
		for i, g := range w {
			if abs64(g) > algo.Set.Upper[i] {
				return fmt.Errorf("verify: check: conflict witness %v exceeds bound at axis %d — it is no conflict", w, i+1)
			}
		}
	}
	if !c.ConflictFree && c.ConflictWitness == nil && c.FailedWitness == WitnessConflict {
		return fmt.Errorf("verify: check: conflict verdict without a witness")
	}
	if !c.ConflictFree && c.Valid {
		return fmt.Errorf("verify: check: certificate is valid despite a conflict")
	}
	if c.BruteForce != nil && c.BruteForce.Ran && !c.BruteForce.Agrees && c.Valid {
		return fmt.Errorf("verify: check: certificate is valid despite brute-force disagreement")
	}
	if c.Simulation != nil && c.Simulation.Ran && !c.Simulation.Agrees && c.Valid {
		return fmt.Errorf("verify: check: certificate is valid despite simulation disagreement")
	}

	// Optimality consistency: a bound above the achieved time is no
	// lower bound, and Optimal requires exact equality.
	if c.Optimality != "" {
		if c.LowerBound > c.TotalTime {
			return fmt.Errorf("verify: check: lower bound %d exceeds total time %d", c.LowerBound, c.TotalTime)
		}
		switch c.Optimality {
		case Optimal:
			if c.LowerBound != c.TotalTime {
				return fmt.Errorf("verify: check: Optimal verdict with bound %d < time %d", c.LowerBound, c.TotalTime)
			}
		case FeasibleOnly:
			// Nothing further: the bound is valid but not tight.
		default:
			return fmt.Errorf("verify: check: unknown optimality verdict %q", c.Optimality)
		}
	}
	if c.Valid && c.FailedWitness != "" {
		return fmt.Errorf("verify: check: valid certificate names failed witness %q", c.FailedWitness)
	}
	if !c.Valid && c.FailedWitness == "" {
		return fmt.Errorf("verify: check: invalid certificate without a failed witness")
	}
	return nil
}
