// Package systolic is a cycle-accurate software simulator for the
// processor arrays targeted by Shang & Fortes (1990).
//
// The paper's hardware context — 2-D bit-level arrays such as GAPP, DAP
// and MPP, or custom linear systolic arrays — is not available, so this
// simulator substitutes for it while preserving exactly the properties
// the theory speaks about:
//
//   - each processing element executes at most one computation per time
//     unit (violations are computational conflicts, Definition 2.2
//     condition 3);
//   - data move one interconnection primitive per time unit along
//     per-dependence channels, with FIFO delay registers (buffers)
//     absorbing schedule slack (Equation 2.3);
//   - two tokens of the same stream contending for the same directed
//     channel in the same cycle are a data-link collision (the
//     phenomenon [23] introduced and the paper's appendix discusses).
//
// The simulator executes real data through a Program, so functional
// results (e.g. the matrix product C = A·B of Example 5.1 / Figure 3)
// are checked end to end, not just structurally.
package systolic

import (
	"fmt"
	"sort"

	"lodim/internal/array"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
)

// Program supplies the data semantics of a uniform dependence
// algorithm: stream i is the value flow along dependence vector d̄_i.
type Program interface {
	// Boundary returns the value entering stream i at point j when the
	// source j − d̄_i falls outside the index set.
	Boundary(stream int, j intmat.Vector) int64
	// Step computes the point j: in[i] is the value arriving along
	// stream i, and the returned slice (length m) is the value sent
	// onward along each stream.
	Step(j intmat.Vector, in []int64) []int64
}

// ComputationalConflict records two index points mapped to the same
// processor and time.
type ComputationalConflict struct {
	A, B      intmat.Vector
	Processor intmat.Vector
	Time      int64
}

func (c ComputationalConflict) String() string {
	return fmt.Sprintf("points %v and %v both at PE %v, t = %d", c.A, c.B, c.Processor, c.Time)
}

// LinkCollision records two tokens of one stream contending for a
// directed channel in the same cycle.
type LinkCollision struct {
	Stream    int
	From      intmat.Vector // PE the hop leaves
	Primitive int           // column of the machine's P
	Time      int64
}

func (c LinkCollision) String() string {
	return fmt.Sprintf("stream %d: channel from PE %v along primitive %d at t = %d", c.Stream, c.From, c.Primitive, c.Time)
}

// StreamOutput is a value leaving the array: the token sent along
// stream Stream by point Point whose successor lies outside the index
// set.
type StreamOutput struct {
	Stream int
	Point  intmat.Vector
	Value  int64
}

// RunResult is the outcome of a simulation.
type RunResult struct {
	// Cycles is the number of time units from the first to the last
	// computation, inclusive — comparable to Equation 2.7.
	Cycles int64
	// FirstTime and LastTime bound the schedule.
	FirstTime, LastTime int64
	// Processors is the number of distinct PEs that executed at least
	// one computation.
	Processors int
	// Computations is the number of index points executed.
	Computations int64
	// Conflicts holds every computational conflict observed.
	Conflicts []ComputationalConflict
	// Collisions holds every link collision observed (only when the
	// simulator was built with a machine).
	Collisions []LinkCollision
	// Outputs are the values that left the array, sorted by stream and
	// then by point (lexicographically).
	Outputs []StreamOutput
	// MaxOccupancy is the peak number of computations in one time unit
	// across the whole array — the array's degree of parallelism.
	MaxOccupancy int
	// MaxBuffered[i] is the peak number of stream-i tokens waiting in
	// any single PE's input buffer at one time — the register count a
	// hardware implementation of that link needs. When the simulator
	// has a machine it is bounded by the analytic slack Π·d̄_i − hops_i
	// of the decomposition (Equation 2.3), and reaches it when the
	// stream saturates. Without a machine, hops are zero and the bound
	// is Π·d̄_i.
	MaxBuffered []int64
}

// Utilization returns the fraction of PE-cycles doing useful work:
// Computations / (Cycles × Processors). A perfectly packed array is 1.
func (r *RunResult) Utilization() float64 {
	if r.Cycles == 0 || r.Processors == 0 {
		return 0
	}
	return float64(r.Computations) / (float64(r.Cycles) * float64(r.Processors))
}

// Simulator drives a mapped algorithm through the array model.
type Simulator struct {
	mapping *schedule.Mapping
	prog    Program
	machine *array.Machine
	decomp  *array.Decomposition
}

// New builds a simulator for a mapping and program. machine may be nil,
// in which case routing (and hence link-collision detection) is skipped
// and data teleport from producer to consumer — the pure space-time
// semantics of the linear transformation.
func New(m *schedule.Mapping, prog Program, machine *array.Machine) (*Simulator, error) {
	s := &Simulator{mapping: m, prog: prog, machine: machine}
	if machine != nil {
		dec, err := machine.Decompose(m.S, m.Algo.D, m.Pi)
		if err != nil {
			return nil, err
		}
		s.decomp = dec
	}
	return s, nil
}

// Run executes the full index set in schedule order.
func (s *Simulator) Run() (*RunResult, error) {
	m := s.mapping
	algo := m.Algo
	nDeps := algo.NumDeps()

	// Pass 1: schedule table, conflict detection, occupancy.
	type slot struct {
		point intmat.Vector
		time  int64
	}
	var slots []slot
	occupant := intmat.NewVecMap[intmat.Vector](int(algo.Set.Size())) // (pe, t) → first point
	var conflicts []ComputationalConflict
	peSeen := intmat.NewVecMap[struct{}](64)
	occupancy := make(map[int64]int)
	first, last := int64(1)<<62, int64(-1)<<62
	algo.Set.Each(func(j intmat.Vector) bool {
		t := m.Time(j)
		pe := m.Processor(j)
		key := intmat.KeyFor(pe, t)
		if prev, clash := occupant.Load(key); clash {
			conflicts = append(conflicts, ComputationalConflict{A: prev, B: j, Processor: pe, Time: t})
		} else {
			occupant.Store(key, j)
		}
		peSeen.Store(intmat.KeyFor(pe), struct{}{})
		occupancy[t]++
		if t < first {
			first = t
		}
		if t > last {
			last = t
		}
		slots = append(slots, slot{point: j, time: t})
		return true
	})
	sort.SliceStable(slots, func(a, b int) bool { return slots[a].time < slots[b].time })

	// Pass 2: dataflow in schedule order. produced[point] = out values.
	produced := intmat.NewVecMap[[]int64](len(slots))
	var outputs []StreamOutput
	for _, sl := range slots {
		j := sl.point
		in := make([]int64, nDeps)
		for i := 0; i < nDeps; i++ {
			src := j.Sub(algo.Dep(i))
			if algo.Set.Contains(src) {
				vals, ok := produced.Load(intmat.KeyFor(src))
				if !ok {
					return nil, fmt.Errorf("systolic: point %v consumed before its source %v executed — schedule violates dependence %d", j, src, i)
				}
				in[i] = vals[i]
			} else {
				in[i] = s.prog.Boundary(i, j)
			}
		}
		out := s.prog.Step(j, in)
		if len(out) != nDeps {
			return nil, fmt.Errorf("systolic: Step returned %d values, want %d", len(out), nDeps)
		}
		produced.Store(intmat.KeyFor(j), out)
		for i := 0; i < nDeps; i++ {
			if !algo.Set.Contains(j.Add(algo.Dep(i))) {
				outputs = append(outputs, StreamOutput{Stream: i, Point: j.Clone(), Value: out[i]})
			}
		}
	}
	sort.Slice(outputs, func(a, b int) bool {
		if outputs[a].Stream != outputs[b].Stream {
			return outputs[a].Stream < outputs[b].Stream
		}
		return lexLess(outputs[a].Point, outputs[b].Point)
	})

	// Pass 3: routing and link-collision detection.
	var collisions []LinkCollision
	if s.machine != nil {
		collisions = s.routeAll()
	}

	maxOcc := 0
	for _, c := range occupancy {
		if c > maxOcc {
			maxOcc = c
		}
	}
	return &RunResult{
		Cycles:       last - first + 1,
		FirstTime:    first,
		LastTime:     last,
		Processors:   peSeen.Len(),
		Computations: int64(len(slots)),
		Conflicts:    conflicts,
		Collisions:   collisions,
		Outputs:      outputs,
		MaxOccupancy: maxOcc,
		MaxBuffered:  s.bufferPeaks(),
	}, nil
}

// bufferPeaks computes, per stream, the maximum number of tokens
// simultaneously waiting at one destination PE. A stream-i token for
// consumer j̄+d̄_i arrives at its destination after its hops complete
// (cycle t(j̄) + hops_i + 1; hops are zero without a machine) and leaves
// the buffer when consumed at t(j̄) + Π·d̄_i, so it occupies the buffer
// during [arrival, consumption]; the peak interval overlap per
// (stream, destination) is the required register count.
func (s *Simulator) bufferPeaks() []int64 {
	m := s.mapping
	algo := m.Algo
	nDeps := algo.NumDeps()
	hops := make([]int64, nDeps)
	if s.decomp != nil {
		for i := 0; i < nDeps; i++ {
			for l := 0; l < s.decomp.K.Rows(); l++ {
				hops[i] += s.decomp.K.At(l, i)
			}
		}
	}
	// events[stream][destPE] = list of (time, ±1) deltas.
	type delta struct {
		t int64
		d int
	}
	events := make([]*intmat.VecMap[[]delta], nDeps)
	for i := range events {
		events[i] = intmat.NewVecMap[[]delta](64)
	}
	algo.Set.Each(func(j intmat.Vector) bool {
		t := m.Time(j)
		for i := 0; i < nDeps; i++ {
			cons := j.Add(algo.Dep(i))
			if !algo.Set.Contains(cons) {
				continue
			}
			arrive := t + hops[i] + 1
			depart := t + m.Pi.Dot(algo.Dep(i)) // consumption time
			if depart < arrive {
				continue // consumed straight off the wire; never buffered
			}
			key := intmat.KeyFor(m.Processor(cons))
			evs, _ := events[i].Load(key)
			events[i].Store(key, append(evs, delta{arrive, +1}, delta{depart + 1, -1}))
		}
		return true
	})
	peaks := make([]int64, nDeps)
	for i := 0; i < nDeps; i++ {
		for _, evs := range events[i].Values() {
			sort.Slice(evs, func(a, b int) bool {
				if evs[a].t != evs[b].t {
					return evs[a].t < evs[b].t
				}
				return evs[a].d < evs[b].d // departures before arrivals at the same cycle
			})
			var cur, peak int64
			for _, e := range evs {
				cur += int64(e.d)
				if cur > peak {
					peak = cur
				}
			}
			if peak > peaks[i] {
				peaks[i] = peak
			}
		}
	}
	return peaks
}

// routeAll moves every in-set token hop by hop and records channel
// contention. Stream i's hop sequence is the decomposition column K_i
// expanded into primitive indices in increasing column order; a token
// produced at time t occupies its h-th hop's channel during cycle
// t + h + 1.
func (s *Simulator) routeAll() []LinkCollision {
	m := s.mapping
	algo := m.Algo
	hopSeq := make([][]int, algo.NumDeps())
	for i := range hopSeq {
		for l := 0; l < s.decomp.K.Rows(); l++ {
			for c := int64(0); c < s.decomp.K.At(l, i); c++ {
				hopSeq[i] = append(hopSeq[i], l)
			}
		}
	}
	channel := intmat.NewVecMap[struct{}](256)
	var collisions []LinkCollision
	algo.Set.Each(func(j intmat.Vector) bool {
		t := m.Time(j)
		pe := m.Processor(j)
		for i := 0; i < algo.NumDeps(); i++ {
			if !algo.Set.Contains(j.Add(algo.Dep(i))) {
				continue // token leaves the array; no internal channel used
			}
			pos := pe.Clone()
			for h, prim := range hopSeq[i] {
				cycle := t + int64(h) + 1
				key := intmat.KeyFor(pos, int64(i), int64(prim), cycle)
				if _, used := channel.Load(key); used {
					collisions = append(collisions, LinkCollision{Stream: i, From: pos.Clone(), Primitive: prim, Time: cycle})
				} else {
					channel.Store(key, struct{}{})
				}
				pos = pos.Add(s.machine.P.Col(prim))
			}
		}
		return true
	})
	return collisions
}

func lexLess(a, b intmat.Vector) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
