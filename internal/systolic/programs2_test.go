package systolic

import (
	"math/rand"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// TestEditDistanceExecution maps the string-edit DP onto a linear array
// (anti-diagonal projection S = [1,-1]) and verifies the computed
// distance against the sequential reference for a batch of string pairs.
func TestEditDistanceExecution(t *testing.T) {
	cases := []struct{ s1, s2 string }{
		{"kitten", "sitting"},
		{"flaw", "lawn"},
		{"abc", "abc"},
		{"abcd", "efgh"},
		{"ax", "abcdef"},
	}
	for _, c := range cases {
		mu1, mu2 := int64(len(c.s1)-1), int64(len(c.s2)-1)
		algo := uda.EditDistance(mu1, mu2)
		res, err := schedule.FindOptimal(algo, intmat.FromRows([]int64{1, -1}), nil)
		if err != nil {
			t.Fatalf("%q/%q: %v", c.s1, c.s2, err)
		}
		prog := &EditDistanceProgram{S1: []byte(c.s1), S2: []byte(c.s2)}
		sim, err := New(res.Mapping, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Conflicts) != 0 {
			t.Fatalf("%q/%q: conflicts %v", c.s1, c.s2, run.Conflicts[0])
		}
		got := CollectEditDistance(mu1, mu2, run.Outputs)
		want := EditDistanceReference([]byte(c.s1), []byte(c.s2))
		if got != want {
			t.Errorf("edit(%q, %q) = %d, want %d", c.s1, c.s2, got, want)
		}
	}
}

func TestEditDistanceReferenceKnown(t *testing.T) {
	if got := EditDistanceReference([]byte("kitten"), []byte("sitting")); got != 3 {
		t.Errorf("kitten/sitting = %d, want 3", got)
	}
	if got := EditDistanceReference([]byte(""), []byte("abc")); got != 3 {
		t.Errorf("empty/abc = %d, want 3", got)
	}
	if got := EditDistanceReference([]byte("same"), []byte("same")); got != 0 {
		t.Errorf("same/same = %d, want 0", got)
	}
}

// TestJacobiExecution runs the 3-D Jacobi sweep on a 2-D array
// (projection onto the spatial axes — the natural time-multiplexed
// design) and compares the final plane with the sequential reference.
func TestJacobiExecution(t *testing.T) {
	muT, muX, muY := int64(3), int64(4), int64(4)
	algo := uda.Jacobi2D(muT, muX, muY)
	s := intmat.FromRows(
		[]int64{0, 1, 0},
		[]int64{0, 0, 1},
	)
	m, err := schedule.NewMapping(algo, s, intmat.Vec(3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	chk, err := m.Check()
	if err != nil || !chk.ConflictFree {
		t.Fatalf("mapping not conflict-free: %v %v", chk, err)
	}
	rng := rand.New(rand.NewSource(71))
	init := make([][]int64, muX+1)
	for x := range init {
		init[x] = make([]int64, muY+1)
		for y := range init[x] {
			init[x][y] = rng.Int63n(1001) - 500
		}
	}
	prog := &JacobiProgram{Init: init}
	sim, err := New(m, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", run.Conflicts[0])
	}
	got := CollectJacobi(muT, muX, muY, run.Outputs)
	want := JacobiReference(init, muT)
	for x := range want {
		for y := range want[x] {
			if got[x][y] != want[x][y] {
				t.Errorf("u[%d][%d] = %d, want %d", x, y, got[x][y], want[x][y])
			}
		}
	}
	// The spatial projection uses one PE per grid point.
	if run.Processors != int((muX+1)*(muY+1)) {
		t.Errorf("processors = %d, want %d", run.Processors, (muX+1)*(muY+1))
	}
}

func TestFloorDiv5(t *testing.T) {
	cases := []struct{ in, want int64 }{{10, 2}, {9, 1}, {-10, -2}, {-9, -2}, {0, 0}, {4, 0}, {-1, -1}}
	for _, c := range cases {
		if got := floorDiv5(c.in); got != c.want {
			t.Errorf("floorDiv5(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCollectEditDistanceMissing(t *testing.T) {
	if got := CollectEditDistance(3, 3, nil); got != -1 {
		t.Errorf("missing output = %d, want -1", got)
	}
}
