package systolic

import (
	"fmt"
	"testing"

	"lodim/internal/array"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// TestBufferPeaksBoundedBySlack: across a family of schedules for the
// matmul linear array, the observed peak buffer occupancy of each
// stream never exceeds the analytic register budget Π·d̄_i − hops_i of
// Equation 2.3, and a saturated stream reaches it.
func TestBufferPeaksBoundedBySlack(t *testing.T) {
	machine := array.NearestNeighbor(1)
	algo := uda.MatMul(3)
	s := intmat.FromRows([]int64{1, 1, -1})
	for _, pi := range []intmat.Vector{
		{1, 3, 1}, {1, 3, 2}, {2, 3, 1}, {3, 1, 2}, {1, 2, 3},
	} {
		m, err := schedule.NewMapping(algo, s, pi)
		if err != nil {
			continue
		}
		dec, err := machine.Decompose(s, algo.D, pi)
		if err != nil {
			continue
		}
		sim, err := New(m, &ChecksumProgram{Streams: 3}, machine)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i, peak := range res.MaxBuffered {
			if peak > dec.Buffers[i] {
				t.Errorf("Π=%v stream %d: observed peak %d exceeds analytic slack %d", pi, i, peak, dec.Buffers[i])
			}
		}
	}
}

// TestRef23ScheduleEndToEnd: the reference [23] design Π' = [2,1,μ] is
// slower but correct — run it with real data and confirm 4 buffers and
// a valid product.
func TestRef23ScheduleEndToEnd(t *testing.T) {
	mu := int64(4)
	algo := uda.MatMul(mu)
	m, err := schedule.NewMapping(algo, intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(2, 1, mu))
	if err != nil {
		t.Fatal(err)
	}
	a := make([][]int64, mu+1)
	b := make([][]int64, mu+1)
	for i := range a {
		a[i] = make([]int64, mu+1)
		b[i] = make([]int64, mu+1)
		for j := range a[i] {
			a[i][j] = int64(i*7 + j*3 - 10)
			b[i][j] = int64(i*2 - j*5 + 4)
		}
	}
	prog, err := NewMatMulProgram(mu, a, b)
	if err != nil {
		t.Fatal(err)
	}
	machine := array.NearestNeighbor(1)
	sim, err := New(m, prog, machine)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 || len(res.Collisions) != 0 {
		t.Fatalf("conflicts=%d collisions=%d", len(res.Conflicts), len(res.Collisions))
	}
	if want := mu*(mu+3) + 1; res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
	dec, err := machine.Decompose(m.S, algo.D, m.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TotalBuffers() != 4 {
		t.Errorf("buffers = %d, want 4 (paper's count for [23])", dec.TotalBuffers())
	}
	got := CollectMatMulOutputs(mu, res.Outputs)
	want := MatMulReference(a, b)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("C[%d][%d] mismatch", i, j)
			}
		}
	}
}

// TestConflictCountMatchesCensus: the simulator's observed conflict
// count equals the pairwise census from conflict.Classes.
func TestConflictCountMatchesCensus(t *testing.T) {
	algo := uda.MatMul(3)
	m, err := schedule.NewMapping(algo, intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(m, &ChecksumProgram{Streams: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The simulator reports one conflict per extra occupant of a
	// (PE, t) slot: Σ (|group| − 1). The census counts pairs:
	// Σ C(|group|, 2). Relate both through the raw groups.
	groups := conflict.BruteForceCollisions(m.T, algo.Set)
	extras, pairs := 0, 0
	for _, g := range groups {
		extras += len(g) - 1
		pairs += len(g) * (len(g) - 1) / 2
	}
	if len(res.Conflicts) != extras {
		t.Errorf("simulator conflicts = %d, group extras = %d", len(res.Conflicts), extras)
	}
	var censusPairs int
	for _, c := range conflict.Classes(m.T, algo.Set) {
		censusPairs += c.Pairs
	}
	if censusPairs != pairs {
		t.Errorf("census pairs = %d, group pairs = %d", censusPairs, pairs)
	}
}

// TestUtilizationAcrossLibrary: every conflict-free library mapping has
// utilization in (0, 1].
func TestUtilizationAcrossLibrary(t *testing.T) {
	cases := []struct {
		algo *uda.Algorithm
		s    *intmat.Matrix
	}{
		{uda.MatMul(3), intmat.FromRows([]int64{1, 1, -1})},
		{uda.TransitiveClosure(3), intmat.FromRows([]int64{0, 0, 1})},
		{uda.EditDistance(4, 4), intmat.FromRows([]int64{1, -1})},
		{uda.Convolution(5, 2), intmat.FromRows([]int64{1, -1})},
	}
	for _, c := range cases {
		res, err := schedule.FindOptimal(c.algo, c.s, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.algo.Name, err)
		}
		sim, err := New(res.Mapping, &ChecksumProgram{Streams: c.algo.NumDeps()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		u := run.Utilization()
		if u <= 0 || u > 1 {
			t.Errorf("%s: utilization %f out of (0, 1]", c.algo.Name, u)
		}
		t.Log(fmt.Sprintf("%s: %d PEs, %d cycles, utilization %.2f", c.algo.Name, run.Processors, run.Cycles, u))
	}
}
