package systolic

import (
	"fmt"

	"lodim/internal/intmat"
)

// BitMatMulProgram executes real bit-serial arithmetic on the 5-D
// bit-level matrix multiplication structure of uda.BitLevelMatMul,
// computing C = A·B for non-negative (muBit+1)-bit operands. It
// demonstrates that the bit-level dependence matrix is not just
// structurally plausible but functionally sufficient:
//
//   - stream 0 (1,0,0,0,0) transports bit p of b_{k,j} along i;
//   - stream 1 (0,1,0,0,0) transports bit l of a_{i,k} along j;
//   - stream 5 (0,0,0,1,−1), the carry dependence, chains the nodes of
//     one anti-diagonal l+p = c — all partial-product bits a_l·b_p of
//     the same binary weight 2^c — accumulating their count;
//   - stream 2 (0,0,1,0,0) accumulates, along k, the completed
//     anti-diagonal counts weighted by 2^c at each diagonal's terminal
//     node.
//
// Summing the stream-2 values leaving the k = μ face reconstructs
//
//	Σ_k Σ_{l,p} a_l(i,k)·b_p(k,j)·2^{l+p} = Σ_k a_{i,k}·b_{k,j},
//
// the exact word-level product. Streams 3 and 4 (the plain bit
// recurrences) carry no values in this realization — operand bits enter
// per bit-plane at the array boundary; in a physical bit-serial design
// they would pipeline the operand bits instead.
type BitMatMulProgram struct {
	A, B  [][]int64 // (μ+1)×(μ+1) non-negative operands, < 2^(muBit+1)
	MuBit int64
}

// NewBitMatMulProgram validates shapes and operand ranges.
func NewBitMatMulProgram(mu, muBit int64, a, b [][]int64) (*BitMatMulProgram, error) {
	n := int(mu + 1)
	limit := int64(1) << uint(muBit+1)
	check := func(name string, m [][]int64) error {
		if len(m) != n {
			return fmt.Errorf("systolic: %s has %d rows, want %d", name, len(m), n)
		}
		for i, row := range m {
			if len(row) != n {
				return fmt.Errorf("systolic: %s row %d has %d entries, want %d", name, i, len(row), n)
			}
			for j, v := range row {
				if v < 0 || v >= limit {
					return fmt.Errorf("systolic: %s[%d][%d] = %d outside [0, 2^%d)", name, i, j, v, muBit+1)
				}
			}
		}
		return nil
	}
	if err := check("A", a); err != nil {
		return nil, err
	}
	if err := check("B", b); err != nil {
		return nil, err
	}
	return &BitMatMulProgram{A: a, B: b, MuBit: muBit}, nil
}

// Boundary injects operand bits at the array faces and zeros the
// accumulator and carry chains.
func (p *BitMatMulProgram) Boundary(stream int, j intmat.Vector) int64 {
	i, jj, k, l, pp := j[0], j[1], j[2], j[3], j[4]
	switch stream {
	case 0: // bit pp of b_{k,jj} enters where i = 0
		return (p.B[k][jj] >> uint(pp)) & 1
	case 1: // bit l of a_{i,k} enters where jj = 0
		return (p.A[i][k] >> uint(l)) & 1
	default: // accumulator (2), bit recurrences (3, 4), carry (5)
		return 0
	}
}

// Step performs the bit-serial node computation.
func (p *BitMatMulProgram) Step(j intmat.Vector, in []int64) []int64 {
	l, pp := j[3], j[4]
	b, a, acc, diag := in[0], in[1], in[2], in[5]
	// Anti-diagonal count of same-weight partial products.
	diagOut := diag + a*b
	// Terminal node of its anti-diagonal: (l+1, p−1) leaves the bit box.
	accOut := acc
	if l == p.MuBit || pp == 0 {
		accOut += diagOut << uint(l+pp)
	}
	return []int64{b, a, accOut, 0, 0, diagOut}
}

// CollectBitMatMul reassembles the product matrix from the stream-2
// values leaving the k = μ face (non-terminal nodes contribute zero).
func CollectBitMatMul(mu int64, outputs []StreamOutput) [][]int64 {
	n := int(mu + 1)
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
	}
	for _, o := range outputs {
		if o.Stream == 2 && o.Point[2] == mu {
			c[o.Point[0]][o.Point[1]] += o.Value
		}
	}
	return c
}
