package systolic

import "lodim/internal/intmat"

// EditDistanceProgram carries the Levenshtein dynamic program through
// the array: point (i, j) computes the distance table entry
// D[i+1][j+1] for prefixes s1[0..i] and s2[0..j], with the classic
// recurrence
//
//	D[a][b] = min(D[a-1][b]+1, D[a][b-1]+1, D[a-1][b-1]+sub)
//
// carried by the three dependence streams (1,0), (0,1) and (1,1) of
// uda.EditDistance. All streams forward the freshly computed entry.
type EditDistanceProgram struct {
	S1, S2 []byte // lengths μ1+1 and μ2+1
}

// Boundary supplies the table borders: D[0][b] = b and D[a][0] = a.
func (p *EditDistanceProgram) Boundary(stream int, j intmat.Vector) int64 {
	i, jj := j[0], j[1]
	switch stream {
	case 0: // needs D[i][j+1]; out of set iff i = 0
		return jj + 1
	case 1: // needs D[i+1][j]; out of set iff j = 0
		return i + 1
	default: // diagonal D[i][j]; out of set iff i = 0 or j = 0
		if i == 0 {
			return jj
		}
		return i
	}
}

// Step computes the recurrence and forwards the entry on all streams.
func (p *EditDistanceProgram) Step(j intmat.Vector, in []int64) []int64 {
	sub := int64(1)
	if p.S1[j[0]] == p.S2[j[1]] {
		sub = 0
	}
	v := in[0] + 1
	if w := in[1] + 1; w < v {
		v = w
	}
	if w := in[2] + sub; w < v {
		v = w
	}
	return []int64{v, v, v}
}

// CollectEditDistance extracts the final distance (the value leaving
// the far corner).
func CollectEditDistance(mu1, mu2 int64, outputs []StreamOutput) int64 {
	for _, o := range outputs {
		if o.Stream == 2 && o.Point[0] == mu1 && o.Point[1] == mu2 {
			return o.Value
		}
	}
	return -1
}

// EditDistanceReference is the sequential Levenshtein distance.
func EditDistanceReference(s1, s2 []byte) int64 {
	n, m := len(s1), len(s2)
	prev := make([]int64, m+1)
	cur := make([]int64, m+1)
	for b := 0; b <= m; b++ {
		prev[b] = int64(b)
	}
	for a := 1; a <= n; a++ {
		cur[0] = int64(a)
		for b := 1; b <= m; b++ {
			sub := int64(1)
			if s1[a-1] == s2[b-1] {
				sub = 0
			}
			v := prev[b] + 1
			if w := cur[b-1] + 1; w < v {
				v = w
			}
			if w := prev[b-1] + sub; w < v {
				v = w
			}
			cur[b] = v
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// JacobiProgram carries an integer five-point Jacobi relaxation: the
// value at (t, x, y) is the floor-average of the five stencil sources
// on the previous time plane, with zero padding outside the spatial
// grid and the initial plane supplied at t = 0. The five dependence
// streams of uda.Jacobi2D — (1,0,0), (1,1,0), (1,−1,0), (1,0,1),
// (1,0,−1) — each forward the freshly computed value.
type JacobiProgram struct {
	Init [][]int64 // (μX+1)×(μY+1) initial grid
}

// Boundary supplies sources outside the index set: the initial plane
// for t = 0 (offset by the stream's spatial displacement), zero padding
// outside the spatial extent.
func (p *JacobiProgram) Boundary(stream int, j intmat.Vector) int64 {
	// The source of stream s at point (t,x,y) is (t,x,y) − d_s.
	dx := [5]int64{0, -1, 1, 0, 0}
	dy := [5]int64{0, 0, 0, -1, 1}
	x, y := j[1]+dx[stream], j[2]+dy[stream]
	if j[0] != 0 {
		// Inside the time range but spatially out of grid: zero pad.
		return 0
	}
	if x < 0 || y < 0 || int(x) >= len(p.Init) || int(y) >= len(p.Init[0]) {
		return 0
	}
	return p.Init[x][y]
}

// Step averages the five inputs (floor division) and forwards.
func (p *JacobiProgram) Step(j intmat.Vector, in []int64) []int64 {
	sum := in[0] + in[1] + in[2] + in[3] + in[4]
	v := floorDiv5(sum)
	return []int64{v, v, v, v, v}
}

func floorDiv5(a int64) int64 {
	q := a / 5
	if a%5 != 0 && a < 0 {
		q--
	}
	return q
}

// CollectJacobi assembles the final time plane from the outputs.
func CollectJacobi(muT, muX, muY int64, outputs []StreamOutput) [][]int64 {
	grid := make([][]int64, muX+1)
	for i := range grid {
		grid[i] = make([]int64, muY+1)
	}
	for _, o := range outputs {
		// Stream 0 (pure time step) exits at t = μT for every (x, y).
		if o.Stream == 0 && o.Point[0] == muT {
			grid[o.Point[1]][o.Point[2]] = o.Value
		}
	}
	return grid
}

// JacobiReference runs the identical recurrence sequentially.
func JacobiReference(init [][]int64, steps int64) [][]int64 {
	nx, ny := len(init), len(init[0])
	at := func(g [][]int64, x, y int) int64 {
		if x < 0 || y < 0 || x >= nx || y >= ny {
			return 0
		}
		return g[x][y]
	}
	prev := init
	for t := int64(0); t <= steps; t++ {
		next := make([][]int64, nx)
		for x := 0; x < nx; x++ {
			next[x] = make([]int64, ny)
			for y := 0; y < ny; y++ {
				sum := at(prev, x, y) + at(prev, x-1, y) + at(prev, x+1, y) + at(prev, x, y-1) + at(prev, x, y+1)
				next[x][y] = floorDiv5(sum)
			}
		}
		prev = next
	}
	return prev
}
