package systolic

import (
	"fmt"

	"lodim/internal/intmat"
)

// MatMulProgram carries the data semantics of the 3-D matrix
// multiplication algorithm of Example 3.1: computing C = A·B where the
// computation at j̄ = (j1, j2, j3) performs c_{j1,j2} += a_{j1,j3}·b_{j3,j2}.
// Stream assignment follows the paper: d̄_1 carries B (traveling along
// j1), d̄_2 carries A (along j2), d̄_3 accumulates C (along j3).
type MatMulProgram struct {
	A, B [][]int64 // (μ+1)×(μ+1) operand matrices
}

// NewMatMulProgram validates the operand shapes: both must be
// (μ+1)×(μ+1) for the cube bound μ.
func NewMatMulProgram(mu int64, a, b [][]int64) (*MatMulProgram, error) {
	n := int(mu + 1)
	check := func(name string, m [][]int64) error {
		if len(m) != n {
			return fmt.Errorf("systolic: %s has %d rows, want %d", name, len(m), n)
		}
		for i, row := range m {
			if len(row) != n {
				return fmt.Errorf("systolic: %s row %d has %d entries, want %d", name, i, len(row), n)
			}
		}
		return nil
	}
	if err := check("A", a); err != nil {
		return nil, err
	}
	if err := check("B", b); err != nil {
		return nil, err
	}
	return &MatMulProgram{A: a, B: b}, nil
}

// Boundary feeds operands at the faces of the cube: B enters at j1 = 0,
// A at j2 = 0, and the C accumulator starts at zero at j3 = 0.
func (p *MatMulProgram) Boundary(stream int, j intmat.Vector) int64 {
	switch stream {
	case 0: // B value b_{j3,j2} enters where j1 = 0
		return p.B[j[2]][j[1]]
	case 1: // A value a_{j1,j3} enters where j2 = 0
		return p.A[j[0]][j[2]]
	default: // C accumulator
		return 0
	}
}

// Step passes A and B through and accumulates C.
func (p *MatMulProgram) Step(j intmat.Vector, in []int64) []int64 {
	b, a, c := in[0], in[1], in[2]
	return []int64{b, a, c + a*b}
}

// CollectMatMulOutputs assembles the product matrix from the simulation
// outputs: the completed c_{j1,j2} leaves stream 2 at the j3 = μ face.
func CollectMatMulOutputs(mu int64, outputs []StreamOutput) [][]int64 {
	n := int(mu + 1)
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
	}
	for _, o := range outputs {
		if o.Stream == 2 && o.Point[2] == mu {
			c[o.Point[0]][o.Point[1]] = o.Value
		}
	}
	return c
}

// MatMulReference is the sequential ground truth C = A·B.
func MatMulReference(a, b [][]int64) [][]int64 {
	n := len(a)
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			var s int64
			for k := 0; k < n; k++ {
				s += a[i][k] * b[k][j]
			}
			c[i][j] = s
		}
	}
	return c
}

// ConvolutionProgram carries the semantics of the 2-D convolution
// y_i = Σ_k h_k·x_{i−k}: stream 0 holds the resident weight h_k
// (dependence (1,0)), stream 1 moves the input x diagonally (dependence
// (1,1)), and stream 2 accumulates y along k (dependence (0,1)).
type ConvolutionProgram struct {
	H []int64 // muTap+1 weights
	X []int64 // muOut+1 inputs
}

// Boundary feeds weights at i = 0, inputs along the i−k = const
// diagonals (zero for negative indices), and zero accumulators at k = 0.
func (p *ConvolutionProgram) Boundary(stream int, j intmat.Vector) int64 {
	i, k := j[0], j[1]
	switch stream {
	case 0:
		return p.H[k]
	case 1:
		if idx := i - k; idx >= 0 && int(idx) < len(p.X) {
			return p.X[idx]
		}
		return 0
	default:
		return 0
	}
}

// Step passes h and x through and accumulates y += h·x.
func (p *ConvolutionProgram) Step(j intmat.Vector, in []int64) []int64 {
	h, x, y := in[0], in[1], in[2]
	return []int64{h, x, y + h*x}
}

// CollectConvolutionOutputs assembles y from the k = muTap exit face.
func CollectConvolutionOutputs(muOut, muTap int64, outputs []StreamOutput) []int64 {
	y := make([]int64, muOut+1)
	for _, o := range outputs {
		if o.Stream == 2 && o.Point[1] == muTap {
			y[o.Point[0]] = o.Value
		}
	}
	return y
}

// ConvolutionReference is the sequential ground truth.
func ConvolutionReference(h, x []int64) []int64 {
	y := make([]int64, len(x))
	for i := range x {
		var s int64
		for k := range h {
			if i-k >= 0 {
				s += h[k] * x[i-k]
			}
		}
		y[i] = s
	}
	return y
}

// ChecksumProgram is a generic program for algorithms without a
// dedicated data semantics in this repository: every stream mixes its
// input with the point coordinates through an injective-ish hash, so
// any misrouting or mis-scheduling perturbs downstream values. It turns
// the simulator into a dataflow-determinism checker for arbitrary
// uniform dependence algorithms.
type ChecksumProgram struct{ Streams int }

// Boundary seeds each stream with a point-and-stream-dependent value.
func (p *ChecksumProgram) Boundary(stream int, j intmat.Vector) int64 {
	h := int64(stream + 1)
	for _, x := range j {
		h = h*1000003 + x
	}
	return h
}

// Step mixes all inputs into each output stream.
func (p *ChecksumProgram) Step(j intmat.Vector, in []int64) []int64 {
	var mix int64
	for _, v := range in {
		mix = mix*31 + v
	}
	out := make([]int64, p.Streams)
	for i := range out {
		out[i] = mix + int64(i)
	}
	return out
}
