package systolic

import (
	"strings"
	"testing"

	"lodim/internal/array"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

func traceMapping(t *testing.T) *Simulator {
	t.Helper()
	m, err := schedule.NewMapping(uda.MatMul(2), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(m, &ChecksumProgram{Streams: 3}, array.NearestNeighbor(1))
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestTraceEventCounts(t *testing.T) {
	sim := traceMapping(t)
	var c CollectTracer
	if err := sim.Trace(&c); err != nil {
		t.Fatal(err)
	}
	var computes, hops, outputs int
	for _, e := range c.Events {
		switch e.Kind {
		case "compute":
			computes++
		case "hop":
			hops++
		case "output":
			outputs++
		default:
			t.Errorf("unknown event kind %q", e.Kind)
		}
	}
	// Every index point computes once: 27 points.
	if computes != 27 {
		t.Errorf("computes = %d, want 27", computes)
	}
	// Outputs: one per (point, stream) whose successor leaves the set:
	// per stream a 3x3 face = 9, three streams → 27.
	if outputs != 27 {
		t.Errorf("outputs = %d, want 27", outputs)
	}
	// Hops: single-hop design → one hop per in-set transfer: 3 streams ×
	// (27 − 9) = 54.
	if hops != 54 {
		t.Errorf("hops = %d, want 54", hops)
	}
}

func TestTraceOrdering(t *testing.T) {
	sim := traceMapping(t)
	var c CollectTracer
	if err := sim.Trace(&c); err != nil {
		t.Fatal(err)
	}
	last := int64(-1 << 62)
	for _, e := range c.Events {
		if e.Cycle < last {
			t.Fatalf("events out of order: cycle %d after %d", e.Cycle, last)
		}
		last = e.Cycle
	}
	// The first event is the origin computing at t = 0.
	if c.Events[0].Kind != "compute" || c.Events[0].Cycle != 0 || !c.Events[0].Point.Equal(intmat.Vec(0, 0, 0)) {
		t.Errorf("first event = %v", c.Events[0])
	}
}

func TestWriterTracerLimit(t *testing.T) {
	sim := traceMapping(t)
	var sb strings.Builder
	if err := sim.Trace(&WriterTracer{W: &sb, Limit: 5}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // 5 events + truncation notice
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "trace truncated") {
		t.Errorf("missing truncation notice:\n%s", out)
	}
	if !strings.Contains(lines[0], "compute") {
		t.Errorf("first line = %q", lines[0])
	}
}

func TestTraceWithoutMachineHasNoHops(t *testing.T) {
	m, err := schedule.NewMapping(uda.MatMul(2), intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(m, &ChecksumProgram{Streams: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var c CollectTracer
	if err := sim.Trace(&c); err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Events {
		if e.Kind == "hop" {
			t.Fatal("hop event without a machine")
		}
	}
}

func TestEventString(t *testing.T) {
	for _, e := range []Event{
		{Cycle: 1, Kind: "compute", PE: intmat.Vec(0), Point: intmat.Vec(0, 0, 0), Stream: -1},
		{Cycle: 2, Kind: "hop", PE: intmat.Vec(1), Point: intmat.Vec(0, 0, 0), Stream: 1},
		{Cycle: 3, Kind: "output", PE: intmat.Vec(2), Point: intmat.Vec(1, 1, 1), Stream: 2},
		{Cycle: 4, Kind: "custom", PE: intmat.Vec(2), Point: intmat.Vec(1, 1, 1), Stream: 0},
	} {
		if e.String() == "" {
			t.Errorf("empty String for %v", e.Kind)
		}
	}
}
