package systolic

import (
	"fmt"
	"io"
	"sort"

	"lodim/internal/intmat"
)

// Event is one observable occurrence during a simulated execution.
type Event struct {
	Cycle int64
	// Kind is one of "compute" (a PE fires an index point), "hop" (a
	// token crosses a channel), or "output" (a token leaves the array).
	Kind string
	// PE is where the event happens (for hops: the source PE of the
	// crossing).
	PE intmat.Vector
	// Point is the index point that produced the value involved.
	Point intmat.Vector
	// Stream is the dependence stream (-1 for compute events).
	Stream int
}

func (e Event) String() string {
	switch e.Kind {
	case "compute":
		return fmt.Sprintf("t=%-4d compute  PE %v  point %v", e.Cycle, e.PE, e.Point)
	case "hop":
		return fmt.Sprintf("t=%-4d hop      PE %v  stream %d (from point %v)", e.Cycle, e.PE, e.Stream, e.Point)
	case "output":
		return fmt.Sprintf("t=%-4d output   PE %v  stream %d (from point %v)", e.Cycle, e.PE, e.Stream, e.Point)
	default:
		return fmt.Sprintf("t=%-4d %s PE %v point %v stream %d", e.Cycle, e.Kind, e.PE, e.Point, e.Stream)
	}
}

// Tracer receives simulation events in nondecreasing cycle order per
// kind (compute events globally sorted; hop/output events sorted at the
// end of the run).
type Tracer interface {
	Event(e Event)
}

// CollectTracer stores every event.
type CollectTracer struct {
	Events []Event
}

// Event implements Tracer.
func (c *CollectTracer) Event(e Event) { c.Events = append(c.Events, e) }

// WriterTracer prints each event as one line, up to Limit events
// (0 = unlimited).
type WriterTracer struct {
	W     io.Writer
	Limit int
	count int
}

// Event implements Tracer.
func (w *WriterTracer) Event(e Event) {
	if w.Limit > 0 && w.count >= w.Limit {
		if w.count == w.Limit {
			fmt.Fprintf(w.W, "… trace truncated at %d events\n", w.Limit)
			w.count++
		}
		return
	}
	w.count++
	fmt.Fprintln(w.W, e.String())
}

// Trace re-runs the schedule analysis emitting events to the tracer:
// every computation in time order, every routing hop (when the
// simulator has a machine), and every token leaving the array. It is a
// pure observation pass — Run's results are unaffected.
func (s *Simulator) Trace(tr Tracer) error {
	m := s.mapping
	algo := m.Algo
	var events []Event
	hopSeq := make([][]int, algo.NumDeps())
	if s.decomp != nil {
		for i := range hopSeq {
			for l := 0; l < s.decomp.K.Rows(); l++ {
				for c := int64(0); c < s.decomp.K.At(l, i); c++ {
					hopSeq[i] = append(hopSeq[i], l)
				}
			}
		}
	}
	algo.Set.Each(func(j intmat.Vector) bool {
		t := m.Time(j)
		pe := m.Processor(j)
		events = append(events, Event{Cycle: t, Kind: "compute", PE: pe, Point: j.Clone(), Stream: -1})
		for i := 0; i < algo.NumDeps(); i++ {
			if !algo.Set.Contains(j.Add(algo.Dep(i))) {
				events = append(events, Event{Cycle: t, Kind: "output", PE: pe, Point: j.Clone(), Stream: i})
				continue
			}
			if s.machine == nil {
				continue
			}
			pos := pe.Clone()
			for h, prim := range hopSeq[i] {
				events = append(events, Event{Cycle: t + int64(h) + 1, Kind: "hop", PE: pos.Clone(), Point: j.Clone(), Stream: i})
				pos = pos.Add(s.machine.P.Col(prim))
			}
		}
		return true
	})
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].Cycle != events[b].Cycle {
			return events[a].Cycle < events[b].Cycle
		}
		return kindOrder(events[a].Kind) < kindOrder(events[b].Kind)
	})
	for _, e := range events {
		tr.Event(e)
	}
	return nil
}

func kindOrder(k string) int {
	switch k {
	case "compute":
		return 0
	case "hop":
		return 1
	default:
		return 2
	}
}
