package systolic

import (
	"math/rand"
	"testing"

	"lodim/internal/array"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

func randMatrix64(rng *rand.Rand, n int, amp int64) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			m[i][j] = rng.Int63n(2*amp+1) - amp
		}
	}
	return m
}

func equal2D(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestFigure3MatMulExecution reproduces Figure 3: the μ = 4 matrix
// multiplication on the linear array with T = [[1,1,-1],[1,4,1]]. The
// execution must be conflict-free and collision-free, finish in
// t = μ(μ+2)+1 = 25 cycles, use 3μ+1 = 13 processors (S·j̄ = j1+j2−j3
// spans [−μ, 2μ]), and produce the correct product.
func TestFigure3MatMulExecution(t *testing.T) {
	mu := int64(4)
	rng := rand.New(rand.NewSource(41))
	a, b := randMatrix64(rng, int(mu+1), 9), randMatrix64(rng, int(mu+1), 9)
	algo := uda.MatMul(mu)
	m, err := schedule.NewMapping(algo, intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, mu, 1))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewMatMulProgram(mu, a, b)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(m, prog, array.NearestNeighbor(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("computational conflicts observed: %v", res.Conflicts[0])
	}
	if len(res.Collisions) != 0 {
		t.Errorf("link collisions observed: %v", res.Collisions[0])
	}
	if want := mu*(mu+2) + 1; res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
	if res.Processors != int(3*mu+1) {
		t.Errorf("processors = %d, want %d", res.Processors, 3*mu+1)
	}
	if res.Computations != algo.Set.Size() {
		t.Errorf("computations = %d, want %d", res.Computations, algo.Set.Size())
	}
	got := CollectMatMulOutputs(mu, res.Outputs)
	if want := MatMulReference(a, b); !equal2D(got, want) {
		t.Errorf("product mismatch:\ngot  %v\nwant %v", got, want)
	}
	// Buffer occupancy: the A stream (dependence d̄_2, slack Π·d̄_2 − 1 =
	// 3) must need exactly the paper's 3 registers at saturation; B and
	// C are consumed straight off the wire.
	if len(res.MaxBuffered) != 3 {
		t.Fatalf("MaxBuffered = %v", res.MaxBuffered)
	}
	if res.MaxBuffered[0] != 0 || res.MaxBuffered[2] != 0 {
		t.Errorf("B/C buffered: %v, want 0", res.MaxBuffered)
	}
	if res.MaxBuffered[1] != 3 {
		t.Errorf("A stream peak buffer = %d, want 3 (the paper's register count)", res.MaxBuffered[1])
	}
}

// TestConflictingMappingObserved: the schedule Π = [1,1,1] on the same
// space mapping is NOT conflict-free; the simulator must observe
// concrete conflicts, and their count must agree with the brute-force
// collision groups.
func TestConflictingMappingObserved(t *testing.T) {
	mu := int64(3)
	algo := uda.MatMul(mu)
	m, err := schedule.NewMapping(algo, intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	prog := &ChecksumProgram{Streams: algo.NumDeps()}
	sim, err := New(m, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) == 0 {
		t.Fatal("no conflicts observed for a conflicting mapping")
	}
	// Cross-check against the analytical verdict.
	chk, err := m.Check()
	if err != nil {
		t.Fatal(err)
	}
	if chk.ConflictFree {
		t.Error("analysis disagrees with observation")
	}
}

// TestSimulatorAgreesWithDecide: over a batch of mappings, the
// simulator observes a conflict iff conflict.Decide predicts one.
func TestSimulatorAgreesWithDecide(t *testing.T) {
	mu := int64(3)
	algo := uda.MatMul(mu)
	s := intmat.FromRows([]int64{1, 1, -1})
	for p1 := int64(1); p1 <= 4; p1++ {
		for p2 := int64(1); p2 <= 4; p2++ {
			for p3 := int64(1); p3 <= 4; p3++ {
				pi := intmat.Vec(p1, p2, p3)
				m, err := schedule.NewMapping(algo, s, pi)
				if err != nil {
					continue // rank-deficient T etc.
				}
				sim, err := New(m, &ChecksumProgram{Streams: 3}, nil)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				chk, err := m.Check()
				if err != nil {
					t.Fatal(err)
				}
				observed := len(res.Conflicts) > 0
				if observed == chk.ConflictFree {
					t.Errorf("Π = %v: observed conflict=%v but analysis says conflict-free=%v", pi, observed, chk.ConflictFree)
				}
			}
		}
	}
}

// TestExample52TransitiveClosureRun executes the transitive-closure
// mapping of Example 5.2 with the checksum program: conflict-free,
// collision-free, t = μ(μ+3)+1 cycles.
func TestExample52TransitiveClosureRun(t *testing.T) {
	mu := int64(4)
	algo := uda.TransitiveClosure(mu)
	m, err := schedule.NewMapping(algo, intmat.FromRows([]int64{0, 0, 1}), intmat.Vec(mu+1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(m, &ChecksumProgram{Streams: algo.NumDeps()}, array.NearestNeighbor(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 {
		t.Errorf("conflicts: %v", res.Conflicts[0])
	}
	if len(res.Collisions) != 0 {
		t.Errorf("collisions: %v", res.Collisions[0])
	}
	if want := mu*(mu+3) + 1; res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
	if res.Processors != int(mu+1) {
		t.Errorf("processors = %d, want %d (linear array of μ+1 PEs)", res.Processors, mu+1)
	}
}

// TestConvolutionExecution runs the 2-D convolution on a linear array
// (S = [1, 0]: output-stationary by diagonal... here PE = i) and checks
// the functional result against the sequential reference.
func TestConvolutionExecution(t *testing.T) {
	muOut, muTap := int64(6), int64(3)
	algo := uda.Convolution(muOut, muTap)
	// S = [1, -1]: PE index i−k; Π = [muTap+1, 1] is valid and
	// conflict-free (unique conflict vector check via the optimizer).
	res, err := schedule.FindOptimal(algo, intmat.FromRows([]int64{1, -1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	h := []int64{1, -2, 3, 0}
	x := []int64{5, 1, -1, 2, 0, 4, -3}
	prog := &ConvolutionProgram{H: h, X: x}
	sim, err := New(res.Mapping, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", run.Conflicts[0])
	}
	got := CollectConvolutionOutputs(muOut, muTap, run.Outputs)
	want := ConvolutionReference(h, x)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("y[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMatMulProgramValidation(t *testing.T) {
	if _, err := NewMatMulProgram(2, [][]int64{{1}}, [][]int64{{1}}); err == nil {
		t.Error("short A accepted")
	}
	good := [][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	bad := [][]int64{{1, 2, 3}, {4, 5}, {7, 8, 9}}
	if _, err := NewMatMulProgram(2, good, bad); err == nil {
		t.Error("ragged B accepted")
	}
}

// TestRoutingOnMesh maps 3-D matmul onto the 2-D mesh with S = I₂-like
// projection and checks the multi-hop router finds no collisions for
// the standard design.
func TestRoutingOnMesh(t *testing.T) {
	mu := int64(3)
	algo := uda.MatMul(mu)
	s := intmat.FromRows(
		[]int64{1, 0, 0},
		[]int64{0, 1, 0},
	)
	m, err := schedule.NewMapping(algo, s, intmat.Vec(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// k = n here: the square mapping is automatically conflict-free.
	chk, err := m.Check()
	if err != nil || !chk.ConflictFree {
		t.Fatalf("projection mapping not conflict-free: %v %v", chk, err)
	}
	sim, err := New(m, &ChecksumProgram{Streams: 3}, array.NearestNeighbor(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 0 || len(res.Collisions) != 0 {
		t.Errorf("conflicts=%d collisions=%d", len(res.Conflicts), len(res.Collisions))
	}
	if res.Processors != int((mu+1)*(mu+1)) {
		t.Errorf("processors = %d, want %d", res.Processors, (mu+1)*(mu+1))
	}
}

func TestUtilization(t *testing.T) {
	mu := int64(4)
	algo := uda.MatMul(mu)
	m, err := schedule.NewMapping(algo, intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, mu, 1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(m, &ChecksumProgram{Streams: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	want := float64(125) / (25.0 * 13.0)
	if u < want-1e-9 || u > want+1e-9 {
		t.Errorf("utilization = %f, want %f", u, want)
	}
	// Degenerate guard.
	empty := &RunResult{}
	if empty.Utilization() != 0 {
		t.Error("empty result utilization non-zero")
	}
}

func TestMaxOccupancyBounded(t *testing.T) {
	mu := int64(4)
	algo := uda.MatMul(mu)
	m, err := schedule.NewMapping(algo, intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, mu, 1))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(m, &ChecksumProgram{Streams: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Conflict-free: per-time occupancy can never exceed the processor
	// count.
	if res.MaxOccupancy > res.Processors {
		t.Errorf("occupancy %d exceeds processor count %d", res.MaxOccupancy, res.Processors)
	}
	if res.MaxOccupancy < 1 {
		t.Error("zero occupancy")
	}
}

func BenchmarkSimulateMatMulMu4(b *testing.B) {
	mu := int64(4)
	rng := rand.New(rand.NewSource(43))
	a, bb := randMatrix64(rng, int(mu+1), 9), randMatrix64(rng, int(mu+1), 9)
	algo := uda.MatMul(mu)
	m, err := schedule.NewMapping(algo, intmat.FromRows([]int64{1, 1, -1}), intmat.Vec(1, mu, 1))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := NewMatMulProgram(mu, a, bb)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := New(m, prog, array.NearestNeighbor(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
