package systolic

import (
	"math/rand"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// TestBitMatMulArithmetic is the functional validation of the 5-D
// bit-level dependence structure: real operands flow bit by bit through
// the array, carries chain along the (0,0,0,1,−1) dependence, and the
// collected product must equal the word-level reference.
func TestBitMatMulArithmetic(t *testing.T) {
	mu, muBit := int64(2), int64(2) // 3×3 matrices of 3-bit values
	algo := uda.BitLevelMatMul(mu, muBit)
	s := intmat.FromRows(
		[]int64{1, 0, 0, 0, 0},
		[]int64{0, 1, 0, 0, 0},
	)
	res, err := schedule.FindOptimal(algo, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 5; trial++ {
		n := int(mu + 1)
		a := make([][]int64, n)
		b := make([][]int64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]int64, n)
			b[i] = make([]int64, n)
			for j := 0; j < n; j++ {
				a[i][j] = rng.Int63n(1 << uint(muBit+1))
				b[i][j] = rng.Int63n(1 << uint(muBit+1))
			}
		}
		prog, err := NewBitMatMulProgram(mu, muBit, a, b)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(res.Mapping, prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Conflicts) != 0 {
			t.Fatalf("conflicts: %v", run.Conflicts[0])
		}
		got := CollectBitMatMul(mu, run.Outputs)
		want := MatMulReference(a, b)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Errorf("trial %d: C[%d][%d] = %d, want %d\nA=%v\nB=%v", trial, i, j, got[i][j], want[i][j], a, b)
				}
			}
		}
	}
}

// TestBitMatMulWiderOperands stretches the bit width.
func TestBitMatMulWiderOperands(t *testing.T) {
	mu, muBit := int64(1), int64(5) // 2×2 matrices of 6-bit values
	algo := uda.BitLevelMatMul(mu, muBit)
	m, err := schedule.NewMapping(algo,
		intmat.FromRows([]int64{1, 0, 0, 0, 0}, []int64{0, 1, 0, 0, 0}),
		// A valid conflict-free schedule: serialize (k, l, p) within a PE.
		intmat.Vec(1, 1, 1, 13, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := m.Check()
	if err != nil || !chk.ConflictFree {
		t.Fatalf("mapping: %v %v", chk, err)
	}
	a := [][]int64{{63, 17}, {5, 44}}
	b := [][]int64{{9, 61}, {33, 2}}
	prog, err := NewBitMatMulProgram(mu, muBit, a, b)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(m, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := CollectBitMatMul(mu, run.Outputs)
	want := MatMulReference(a, b)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("C[%d][%d] = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestBitMatMulProgramValidation(t *testing.T) {
	good := [][]int64{{1, 2}, {3, 4}}
	if _, err := NewBitMatMulProgram(1, 2, good, [][]int64{{1}}); err == nil {
		t.Error("short B accepted")
	}
	if _, err := NewBitMatMulProgram(1, 1, [][]int64{{4, 0}, {0, 0}}, good); err == nil {
		t.Error("out-of-range operand accepted (4 ≥ 2^2)")
	}
	if _, err := NewBitMatMulProgram(1, 1, [][]int64{{-1, 0}, {0, 0}}, good); err == nil {
		t.Error("negative operand accepted")
	}
	if _, err := NewBitMatMulProgram(2, 2, good, good); err == nil {
		t.Error("wrong shape accepted")
	}
}
