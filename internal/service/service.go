package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"lodim/internal/cli"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/jobs"
	"lodim/internal/schedule"
	"lodim/internal/slo"
	"lodim/internal/systolic"
	"lodim/internal/trace"
	"lodim/internal/uda"
)

// Input ceilings: the service refuses problems whose validation or
// simulation would enumerate unbounded state. Searches themselves are
// additionally bounded by the per-request deadline.
const (
	maxRequestDim  = 12      // algorithm dimension n
	maxRequestDeps = 64      // dependence count m
	maxIndexPoints = 1 << 20 // |J| ceiling for simulate/conflict enumeration
	maxBound       = 1 << 20 // single μ_i ceiling
)

// Config sizes the service.
type Config struct {
	// Pool is the number of searches/simulations that may run
	// concurrently (≤ 0 selects GOMAXPROCS).
	Pool int
	// Queue bounds the backlog: at most Pool+Queue requests may be
	// waiting for a slot at once; arrivals beyond that are answered
	// 429 immediately (0 selects 64; negative means "no extra queue",
	// i.e. at most Pool waiters).
	Queue int
	// CacheSize bounds the canonical result cache in entries
	// (≤ 0 selects 1024).
	CacheSize int
	// SearchWorkers is the Schedule.Workers fan-out of each joint
	// search (≤ 0 selects GOMAXPROCS). Results are deterministic at any
	// value.
	SearchWorkers int
	// DefaultTimeout applies when a request carries no deadline of its
	// own (0 selects 30s). MaxTimeout caps request-supplied deadlines
	// (0 selects 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Logger, when non-nil, receives one structured access-log line per
	// HTTP request (id, endpoint, status, cache disposition, stage
	// timings). Nil disables access logging.
	Logger *slog.Logger
	// TraceBuffer, when > 0, enables hierarchical request tracing and
	// sizes the ring of completed traces kept for GET /debug/requests.
	// 0 disables tracing entirely (the disabled path costs one nil
	// check per span site).
	TraceBuffer int
	// Cluster, when non-nil, federates this service with its peers:
	// canonical keys are sharded over a consistent-hash ring, non-owners
	// forward to owners and cache-fill locally, and the peer protocol
	// endpoints are served (see cluster.go). Nil runs single-node,
	// byte-for-byte identical to the pre-cluster behavior.
	Cluster *ClusterConfig
	// Jobs, when non-nil, enables the durable asynchronous job tier
	// (POST /v1/jobs and friends, see jobs.go): a spool-backed fair
	// queue whose workers run map/verify problems through the same
	// engines as the synchronous endpoints. Nil serves 404 on the job
	// endpoints.
	Jobs *JobsConfig
	// SLO, when non-nil with at least one objective enabled, runs the
	// rolling-window burn-rate engine over sync-endpoint outcomes: a
	// breach logs one alert line, flips /healthz to "degraded" and
	// triggers a rate-limited evidence capture (see slo.go).
	SLO *SLOConfig
}

func (c Config) withDefaults() Config {
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.SearchWorkers <= 0 {
		c.SearchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	return c
}

// Sentinel errors of the admission/lifecycle layer.
var (
	// ErrOverloaded reports that the worker pool and its queue are
	// full — the HTTP layer maps it to 429.
	ErrOverloaded = errors.New("service: overloaded, retry later")
	// ErrShuttingDown reports that the service no longer accepts work —
	// mapped to 503.
	ErrShuttingDown = errors.New("service: shutting down")
)

// BadRequestError wraps a validation failure — mapped to 400.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

func badRequest(format string, args ...any) error {
	return &BadRequestError{Err: fmt.Errorf(format, args...)}
}

// CacheStatus tells a map caller how its result was produced.
type CacheStatus string

const (
	CacheHit    CacheStatus = "hit"    // served from the canonical cache
	CacheMiss   CacheStatus = "miss"   // this request executed the search
	CacheShared CacheStatus = "shared" // joined an identical in-progress search

	// Clustered statuses: the key's ring owner answered and this node
	// cache-filled the result. The suffix is the owner's own disposition.
	CachePeerHit    CacheStatus = "peer_hit"
	CachePeerMiss   CacheStatus = "peer_miss"
	CachePeerShared CacheStatus = "peer_shared"
)

// Service is the concurrent mapping-as-a-service engine. Create with
// New, serve over HTTP with NewHandler, stop with Close.
type Service struct {
	cfg     Config
	cache   *lruCache
	flights *flightGroup
	sem     chan struct{}
	met     *metrics
	closed  chan struct{}
	closing sync.Once
	admit   sync.Mutex     // serializes begin's closed check + wg.Add against Close
	wg      sync.WaitGroup // in-flight requests, drained by Close
	started time.Time      // for Status().Uptime

	// tracer and traces are non-nil iff Config.TraceBuffer > 0: the
	// tracer mints one trace per HTTP request, the registry rings the
	// last TraceBuffer completed ones for the /debug/requests inspector.
	tracer *trace.Tracer
	traces *trace.Registry

	// clu is non-nil iff Config.Cluster was set: the consistent-hash
	// ring, the peer client, and the passive peer health tracker.
	clu *clusterState

	// jobsMgr is non-nil iff Config.Jobs was set: the durable async
	// job manager (spool, fair queue, worker pool — see jobs.go).
	jobsMgr *jobs.Manager

	// slo is non-nil iff Config.SLO enabled at least one objective:
	// the burn-rate engine plus alerting/evidence glue (see slo.go).
	slo *sloState

	// tenants is the bounded per-tenant usage table (always on — an
	// absent tenant header accounts under "anonymous").
	tenants *tenantTable

	// searchJoint is the search engine; tests substitute it to make
	// concurrency deterministic. Production always uses
	// schedule.FindJointMappingContext.
	searchJoint func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error)
	// searchPareto is the multi-objective engine behind /v1/pareto,
	// substitutable like searchJoint. Production always uses
	// schedule.FindParetoContext.
	searchPareto func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.ParetoOptions) (*schedule.ParetoResult, error)
}

// New builds a Service from the config (zero value = all defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:          cfg,
		cache:        newLRUCache(cfg.CacheSize),
		flights:      newFlightGroup(),
		sem:          make(chan struct{}, cfg.Pool),
		met:          &metrics{},
		closed:       make(chan struct{}),
		started:      time.Now(),
		searchJoint:  schedule.FindJointMappingContext,
		searchPareto: schedule.FindParetoContext,
	}
	s.flights.onJoin = func() { s.met.deduped.Add(1) }
	s.met.cacheStats = s.cache.Stats
	s.tenants = newTenantTable(defaultTenantLimit)
	s.met.tenantStats = s.tenants.snapshot
	if cfg.Cluster != nil {
		clu, err := newClusterState(cfg.Cluster)
		if err != nil {
			// Cluster misconfiguration (duplicate IDs, empty membership)
			// is a programming/deployment error callers must catch before
			// New — cmd/mapserve validates the flag set by building the
			// ring itself first.
			panic("service: invalid cluster config: " + err.Error())
		}
		s.clu = clu
		s.met.clustered = true
	}
	if cfg.TraceBuffer > 0 {
		s.tracer = trace.New(trace.Config{})
		s.traces = trace.NewRegistry(cfg.TraceBuffer)
		s.tracer.AddSink(s.traces.Add)
		s.met.traceCounters = s.tracer.Counters
	}
	if cfg.Jobs != nil {
		mgr, err := jobs.Open(jobs.Config{
			Dir:            cfg.Jobs.Dir,
			Workers:        cfg.Jobs.Workers,
			PerTenantQueue: cfg.Jobs.PerTenantQueue,
			Exec:           s.executeJob,
			Logger:         cfg.Logger,
		})
		if err != nil {
			// Like cluster misconfiguration: an unusable spool directory is
			// a deployment error callers must catch before New —
			// cmd/mapserve creates and probes the directory at flag time.
			panic("service: job tier: " + err.Error())
		}
		s.jobsMgr = mgr
		s.met.jobStats = mgr.Stats
	}
	if cfg.SLO.enabled() {
		st, err := newSLOState(s, cfg.SLO)
		if err != nil {
			// Same contract as cluster/jobs misconfiguration: cmd/mapserve
			// validates the flags (via slo.NewEngine) before New.
			panic("service: invalid slo config: " + err.Error())
		}
		s.slo = st
		s.met.sloStats = st.eng.Snapshot
	}
	return s
}

// Tracer returns the request tracer, or nil when tracing is disabled.
// Callers may AddSink on it (cmd/mapserve attaches the slowest-trace
// directory sink this way).
func (s *Service) Tracer() *trace.Tracer { return s.tracer }

// TraceRegistry returns the completed-trace ring, or nil when tracing
// is disabled.
func (s *Service) TraceRegistry() *trace.Registry { return s.traces }

// DebugHandler serves the /debug/requests trace inspector. It is not
// part of NewHandler: the inspector exposes request internals, so
// cmd/mapserve mounts it only on the private pprof listener.
func (s *Service) DebugHandler() http.Handler {
	if s.traces == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "tracing disabled (start the service with a trace buffer)", http.StatusNotFound)
		})
	}
	return trace.Handler(s.traces, func() any { return s.Status() }, s.traceExemplars)
}

// Status is the one health/identity snapshot shared by the /healthz
// probe and the /debug/requests inspector.
type Status struct {
	Status        string    `json:"status"` // "ok", "degraded" or "shutting_down"
	StartTime     time.Time `json:"start_time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	GoVersion     string    `json:"go_version"`
	BuildVersion  string    `json:"build_version,omitempty"`
	VCSRevision   string    `json:"vcs_revision,omitempty"`
	Goroutines    int       `json:"goroutines"`
	TraceEnabled  bool      `json:"trace_enabled"`
	TracesStored  int       `json:"traces_stored,omitempty"`
	// Cluster is present only on clustered nodes: identity, membership
	// and passive peer health (see cluster.go).
	Cluster *ClusterStatus `json:"cluster,omitempty"`
	// SLO is present only when objectives are configured: the engine's
	// full burn-rate snapshot.
	SLO *slo.Snapshot `json:"slo,omitempty"`
}

// buildFacts caches runtime/debug.ReadBuildInfo — immutable for the
// process lifetime, so read once.
type buildFacts struct{ version, revision string }

var readBuildFacts = sync.OnceValue(func() buildFacts {
	var bf buildFacts
	if bi, ok := debug.ReadBuildInfo(); ok {
		bf.version = bi.Main.Version
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				bf.revision = kv.Value
			}
		}
	}
	return bf
})

// Status reports liveness, build identity and runtime vitals.
func (s *Service) Status() Status {
	bf := readBuildFacts()
	st := Status{
		Status:        "ok",
		StartTime:     s.started,
		UptimeSeconds: time.Since(s.started).Seconds(),
		GoVersion:     runtime.Version(),
		BuildVersion:  bf.version,
		VCSRevision:   bf.revision,
		Goroutines:    runtime.NumGoroutine(),
		TraceEnabled:  s.traces != nil,
	}
	if s.slo != nil {
		snap := s.slo.eng.Snapshot()
		st.SLO = &snap
		if !snap.Healthy {
			st.Status = "degraded"
		}
	}
	if s.isClosed() {
		st.Status = "shutting_down"
	}
	if s.traces != nil {
		st.TracesStored = len(s.traces.Traces())
	}
	if s.clu != nil {
		st.Cluster = s.clu.status()
	}
	return st
}

// Close stops admitting requests and waits for in-flight ones to
// drain. Safe to call more than once.
func (s *Service) Close() {
	// The job tier stops first: its workers call back into the engines
	// through the same admission path as requests, so they must be out
	// (cancelled, with their spool records left resumable) before the
	// request drain below can complete.
	if s.jobsMgr != nil {
		s.jobsMgr.Close()
	}
	s.closing.Do(func() {
		// Taking admit orders the close against every begin: once we
		// hold it, no request can be between its closed check and its
		// wg.Add, so wg.Wait below cannot race an Add.
		s.admit.Lock()
		close(s.closed)
		s.admit.Unlock()
	})
	s.wg.Wait()
}

func (s *Service) isClosed() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// begin registers one in-flight request, refusing after Close. The
// returned done must be called when the request finishes. The admit
// mutex makes the closed check and wg.Add atomic with respect to
// Close, so an Add can never run concurrently with a Wait that has
// already observed a drained counter (a documented WaitGroup misuse).
func (s *Service) begin() (done func(), err error) {
	s.admit.Lock()
	defer s.admit.Unlock()
	if s.isClosed() {
		return nil, ErrShuttingDown
	}
	s.wg.Add(1)
	return s.wg.Done, nil
}

// FlushCache drops every cached result (operational hook; also used by
// the cache-miss benchmark).
func (s *Service) FlushCache() { s.cache.Flush() }

// CacheLen returns the number of cached canonical results.
func (s *Service) CacheLen() int { return s.cache.Len() }

// Metrics exposes the counters for rendering (Prometheus text or
// expvar snapshots).
func (s *Service) Metrics() *metrics { return s.met }

// EffectiveTimeout clamps a request-supplied timeout (milliseconds;
// ≤ 0 = unset) into the configured window.
func (s *Service) EffectiveTimeout(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// acquire admits one unit of pool work, honoring queue-depth limits:
// when Pool slots are busy and Queue requests already wait, it fails
// fast with ErrOverloaded instead of building an unbounded backlog.
func (s *Service) acquire(ctx context.Context) (release func(), err error) {
	if s.isClosed() {
		return nil, ErrShuttingDown
	}
	// queued counts both waiting and running holders transiently; the
	// admission bound is holders ≤ Pool + Queue.
	if q := s.met.queued.Add(1); q > int64(s.cfg.Pool+s.cfg.Queue) {
		s.met.queued.Add(-1)
		s.met.rejected.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case s.sem <- struct{}{}:
		s.met.queued.Add(-1)
		s.met.inflight.Add(1)
		return func() {
			s.met.inflight.Add(-1)
			<-s.sem
		}, nil
	case <-ctx.Done():
		s.met.queued.Add(-1)
		return nil, ctx.Err()
	case <-s.closed:
		s.met.queued.Add(-1)
		return nil, ErrShuttingDown
	}
}

// MapRequest asks for a time-optimal conflict-free joint (S, Π)
// mapping. The algorithm comes either from the named library
// (Algorithm + Sizes) or inline (Bounds + Dependencies, the uda JSON
// shape: dependence vectors as rows).
type MapRequest struct {
	Algorithm    string    `json:"algorithm,omitempty"`
	Sizes        []int64   `json:"sizes,omitempty"`
	Bounds       []int64   `json:"bounds,omitempty"`
	Dependencies [][]int64 `json:"dependencies,omitempty"`
	// Dims is the target array dimensionality (default 1).
	Dims int `json:"dims,omitempty"`
	// MaxEntry, WireWeight, MaxCost tune the search as in
	// schedule.SpaceOptions (0 = default).
	MaxEntry   int64 `json:"max_entry,omitempty"`
	WireWeight int64 `json:"wire_weight,omitempty"`
	MaxCost    int64 `json:"max_cost,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds
	// (0 = server default; capped by the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MapResponse is the search outcome, expressed in the request's axis
// order.
type MapResponse struct {
	Algorithm    string    `json:"algorithm"`
	Dim          int       `json:"n"`
	NumDeps      int       `json:"m"`
	Bounds       []int64   `json:"mu"`
	Dims         int       `json:"array_dims"`
	S            [][]int64 `json:"space_mapping"`
	Pi           []int64   `json:"schedule"`
	TotalTime    int64     `json:"total_time"`
	Objective    int64     `json:"objective"`
	Processors   int64     `json:"processors"`
	WireLength   int64     `json:"wire_length"`
	Cost         int64     `json:"array_cost"`
	Engine       string    `json:"engine"`
	Candidates   int       `json:"candidates"`
	Pruned       int       `json:"pruned"`
	Conflict     string    `json:"conflict_certificate"`
	CanonicalKey string    `json:"canonical_key"`
}

// algoFromRequest builds and validates the algorithm a request names or
// embeds.
func algoFromRequest(name string, sizes, bounds []int64, deps [][]int64) (*uda.Algorithm, error) {
	var algo *uda.Algorithm
	switch {
	case name != "":
		a, err := cli.Algorithm(name, sizes)
		if err != nil {
			return nil, &BadRequestError{Err: err}
		}
		algo = a
	case len(bounds) > 0:
		n := len(bounds)
		d := intmat.New(n, len(deps))
		for c, dep := range deps {
			if len(dep) != n {
				return nil, badRequest("service: dependence %d has %d entries, want %d", c+1, len(dep), n)
			}
			d.SetCol(c, dep)
		}
		algo = &uda.Algorithm{Name: "custom", Set: uda.IndexSet{Upper: append(intmat.Vector{}, bounds...)}, D: d}
	default:
		return nil, badRequest("service: request needs either \"algorithm\" or \"bounds\"+\"dependencies\"")
	}
	if err := algo.Validate(); err != nil {
		return nil, &BadRequestError{Err: err}
	}
	if algo.Dim() > maxRequestDim {
		return nil, badRequest("service: dimension %d exceeds the limit %d", algo.Dim(), maxRequestDim)
	}
	if algo.NumDeps() > maxRequestDeps {
		return nil, badRequest("service: %d dependencies exceed the limit %d", algo.NumDeps(), maxRequestDeps)
	}
	for i, u := range algo.Set.Upper {
		if u > maxBound {
			return nil, badRequest("service: bound μ_%d = %d exceeds the limit %d", i+1, u, maxBound)
		}
	}
	return algo, nil
}

// validateMapRequest builds the algorithm a map request names or embeds
// and checks the search knobs, returning the resolved target
// dimensionality. Shared by Map, the batch endpoint, and the peer
// protocol (which must re-validate wire problems before trusting them).
func validateMapRequest(req *MapRequest) (*uda.Algorithm, int, error) {
	algo, err := algoFromRequest(req.Algorithm, req.Sizes, req.Bounds, req.Dependencies)
	if err != nil {
		return nil, 0, err
	}
	dims := req.Dims
	if dims == 0 {
		dims = 1
	}
	if dims < 1 || dims >= algo.Dim() {
		return nil, 0, badRequest("service: array dimensionality %d out of range [1, %d]", dims, algo.Dim()-1)
	}
	if dims > 1 && algo.Set.SizeExceeds(maxIndexPoints) {
		// Multi-row processor counting enumerates the index set.
		return nil, 0, badRequest("service: index set exceeds %d points, the limit for dims > 1", maxIndexPoints)
	}
	if req.MaxEntry < 0 || req.WireWeight < 0 || req.MaxCost < 0 {
		return nil, 0, badRequest("service: max_entry, wire_weight and max_cost must be ≥ 0")
	}
	return algo, dims, nil
}

// mapCacheKey is the composite cache/shard key: the canonical problem
// key plus every knob that changes the search outcome. The cluster ring
// hashes exactly this string, so all nodes agree on ownership.
func mapCacheKey(canonKey string, dims int, req *MapRequest) string {
	return fmt.Sprintf("%s|dims=%d|me=%d|ww=%d|mc=%d", canonKey, dims, req.MaxEntry, req.WireWeight, req.MaxCost)
}

// Map answers a joint-mapping query: canonical cache first, then a
// singleflight-deduplicated flight that either forwards to the key's
// ring owner (clustered, non-owner) or runs the admission-controlled
// search in canonical coordinates, translated back to the caller's
// axis order.
func (s *Service) Map(ctx context.Context, req *MapRequest) (*MapResponse, CacheStatus, error) {
	done, err := s.begin()
	if err != nil {
		return nil, "", err
	}
	defer done()

	algo, dims, err := validateMapRequest(req)
	if err != nil {
		return nil, "", err
	}

	canonStart := time.Now()
	canon := Canonicalize(algo)
	key := mapCacheKey(canon.Key, dims, req)
	recordStage(ctx, stageCanonicalize, canonStart)
	if v, ok := s.cache.Get(key); ok {
		s.met.cacheHits.Add(1)
		return s.mapResponse(ctx, algo, canon, key, dims, v.(*schedule.JointResult)), CacheHit, nil
	}

	// The flight context — not the request context — drives the search:
	// it stays alive as long as any waiter (this request or one that
	// joined the flight) still wants the result.
	fctx, fspan := trace.Start(ctx, "flight")
	flightStart := time.Now()
	v, err, leader, mark := s.flights.DoMarked(fctx, key, func(fc context.Context) (any, error) {
		return s.runSearch(fc, key, canon, dims, req, true)
	})
	if !leader {
		s.recordFollowerWait(ctx, mark, flightStart)
	}
	if fspan != nil {
		role := "follower"
		if leader {
			role = "leader"
		}
		fspan.SetStr("role", role)
		if err != nil {
			fspan.SetStr("error", err.Error())
		}
		fspan.End()
	}
	if err != nil {
		status := CacheShared
		if leader {
			status = CacheMiss
			s.met.cacheMisses.Add(1)
		}
		return nil, status, err
	}
	out := v.(*flightOutcome)
	status := CacheShared
	switch {
	case leader && out.fromCache:
		// The flight landed on an already-cached result (another
		// flight completed between our cache lookup and leadership) —
		// report it as the hit it is.
		status = CacheHit
		s.met.cacheHits.Add(1)
	case leader && out.viaPeer:
		// The ring owner answered; report its disposition so clients
		// (and the load driver) can tell a cluster-wide hit from a
		// search. Local hit/miss counters stay untouched — they measure
		// this node's cache; the peer_forward_* counters measure this.
		status = CacheStatus("peer_" + out.peerDisposition)
	case leader:
		status = CacheMiss
		s.met.cacheMisses.Add(1)
	}
	return s.mapResponse(ctx, algo, canon, key, dims, out.res), status, nil
}

// mapResponse is buildMapResponse with the translate stage recorded
// against the request's timer.
func (s *Service) mapResponse(ctx context.Context, algo *uda.Algorithm, canon *Canonical, key string, dims int, res *schedule.JointResult) *MapResponse {
	defer recordStage(ctx, stageTranslate, time.Now())
	return buildMapResponse(algo, canon, key, dims, res)
}

// flightOutcome is what a map flight resolves to: the canonical search
// result, plus how it was produced — from the local cache, from the
// key's ring owner (viaPeer, with the owner's own disposition), or by
// searching here.
type flightOutcome struct {
	res             *schedule.JointResult
	fromCache       bool
	viaPeer         bool
	peerDisposition string // cluster.Disposition* when viaPeer
}

// recordFollowerWait books a follower's time inside flights.DoMarked
// against its own stage timer. The flight's stage records go to the
// leader's timer (the flight context carries the leader's values), so
// without this a follower would report no queue/search time at all —
// and the naive fix of booking the whole wait as search time would
// double-count pool-queue time the search never saw. The mark's
// searchStartNs splits the wait at the instant the search actually
// began: before it is queue, after it is search.
func (s *Service) recordFollowerWait(ctx context.Context, mark *flightMark, joined time.Time) {
	tm := timerFrom(ctx)
	if tm == nil || mark == nil {
		return
	}
	now := time.Now()
	startNs := mark.searchStartNs.Load()
	switch {
	case startNs == 0:
		// The search never started while we waited (the flight was still
		// queued for a pool slot, or failed before searching): the whole
		// wait was queue time.
		tm.record(stageQueue, now.Sub(joined))
	default:
		start := time.Unix(0, startNs)
		if start.After(joined) {
			tm.record(stageQueue, start.Sub(joined))
			tm.record(stageSearch, now.Sub(start))
		} else {
			// Joined after the search began: the wait was all search.
			tm.record(stageSearch, now.Sub(joined))
		}
	}
}

// runSearch is the body of a map flight: re-check the cache, forward
// to the key's ring owner when another node owns it (allowForward),
// otherwise acquire a pool slot and search in canonical coordinates,
// caching the result. ctx is the flight context — cancelled only when
// every waiter on this flight has detached.
//
// allowForward is false for flights opened by the peer-lookup handler:
// an owner answers locally even when its membership view disagrees, so
// a forward chain is at most origin → owner and can never loop.
func (s *Service) runSearch(ctx context.Context, key string, canon *Canonical, dims int, req *MapRequest, allowForward bool) (*flightOutcome, error) {
	// An earlier flight may have landed between the caller's cache
	// lookup and taking flight leadership — don't search (or forward)
	// twice. Checked before admission: a hit needs no pool slot.
	if v, ok := s.cache.Get(key); ok {
		return &flightOutcome{res: v.(*schedule.JointResult), fromCache: true}, nil
	}
	fellBack := false
	if allowForward {
		out, err, verdict := s.tryPeerLookup(ctx, key, canon, dims, req)
		switch verdict {
		case peerDone:
			return out, err
		case peerFailed:
			// Owner unreachable or answered garbage: degrade to a local
			// search so one dead node never takes its keys down, then
			// push the result to the owner for cluster convergence.
			fellBack = true
		}
	}
	// ctx descends (via context.WithoutCancel) from the flight leader's
	// request context, so its stage timer — when the request came over
	// HTTP — is visible here even though the flight may outlive the
	// leader's deadline. The timer's atomics make the late writes safe.
	queueStart := time.Now()
	release, err := s.acquire(ctx)
	recordStage(ctx, stageQueue, queueStart)
	if err != nil {
		return nil, err
	}
	defer release()
	if v, ok := s.cache.Get(key); ok {
		return &flightOutcome{res: v.(*schedule.JointResult), fromCache: true}, nil
	}
	s.met.searches.Add(1)
	// Stamp the flight mark so followers can split their wait into
	// queue-versus-search at the moment the search truly began.
	if fm := markFrom(ctx); fm != nil {
		fm.searchStartNs.CompareAndSwap(0, time.Now().UnixNano())
	}
	opts := &schedule.SpaceOptions{
		MaxEntry:   req.MaxEntry,
		WireWeight: req.WireWeight,
		Schedule:   schedule.Options{MaxCost: req.MaxCost, Workers: s.cfg.SearchWorkers},
	}
	start := time.Now()
	res, err := s.searchJoint(ctx, canon.Algo, dims, opts)
	s.met.observeSearch(time.Since(start), trace.FromContext(ctx).TraceID())
	recordStage(ctx, stageSearch, start)
	if err != nil {
		return nil, err
	}
	s.met.observeSearchStats(res.Stats)
	s.cache.Add(key, res, estimateResultBytes(key, res))
	if fellBack {
		s.fillOwnerAsync(key, canon, dims, req, res)
	}
	return &flightOutcome{res: res}, nil
}

// buildMapResponse translates a canonical-coordinate result into the
// request's axis order. Time, processor count, wire length and cost are
// invariant under the translation (it is an index-space isomorphism);
// only S's columns and Π's entries move.
func buildMapResponse(algo *uda.Algorithm, canon *Canonical, key string, dims int, res *schedule.JointResult) *MapResponse {
	sReq := canon.MatrixToRequest(res.Mapping.S)
	piReq := canon.VectorToRequest(res.Mapping.Pi)
	return &MapResponse{
		Algorithm:    algo.Name,
		Dim:          algo.Dim(),
		NumDeps:      algo.NumDeps(),
		Bounds:       algo.Set.Upper,
		Dims:         dims,
		S:            matrixRows(sReq),
		Pi:           piReq,
		TotalTime:    res.Time,
		Objective:    res.Time - 1,
		Processors:   res.Processors,
		WireLength:   res.WireLength,
		Cost:         res.Cost,
		Engine:       res.ScheduleResult.Method,
		Candidates:   res.Candidates,
		Pruned:       res.Pruned,
		Conflict:     res.ScheduleResult.Conflict.Method,
		CanonicalKey: key,
		// SearchStats deliberately stays out of the body: its wall-time
		// fields would break the byte-identical cache-hit invariant. The
		// aggregate counters flow to GET /metrics instead.
	}
}

func matrixRows(m *intmat.Matrix) [][]int64 {
	rows := make([][]int64, m.Rows())
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// ConflictRequest asks for a conflict-freeness verdict on a mapping
// matrix T (given directly as rows, or as space rows S plus schedule
// Pi) over the index set Bounds.
type ConflictRequest struct {
	Bounds []int64   `json:"bounds"`
	T      [][]int64 `json:"t,omitempty"`
	S      [][]int64 `json:"s,omitempty"`
	Pi     []int64   `json:"pi,omitempty"`
}

// ConflictResponse carries the exact decision and its certificate.
type ConflictResponse struct {
	ConflictFree bool    `json:"conflict_free"`
	Witness      []int64 `json:"witness,omitempty"`
	Method       string  `json:"method"`
}

// Conflict decides conflict-freeness of a mapping matrix.
func (s *Service) Conflict(ctx context.Context, req *ConflictRequest) (*ConflictResponse, error) {
	done, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer done()

	set := uda.IndexSet{Upper: append(intmat.Vector{}, req.Bounds...)}
	if err := set.Validate(); err != nil {
		return nil, &BadRequestError{Err: err}
	}
	if set.Dim() > maxRequestDim || set.SizeExceeds(maxIndexPoints) {
		return nil, badRequest("service: index set too large (dim ≤ %d, points ≤ %d)", maxRequestDim, maxIndexPoints)
	}
	rows := req.T
	if len(rows) == 0 {
		if req.Pi == nil {
			return nil, badRequest("service: conflict check needs \"t\" or \"s\"+\"pi\"")
		}
		rows = append(append([][]int64{}, req.S...), req.Pi)
	}
	n := set.Dim()
	for i, r := range rows {
		if len(r) != n {
			return nil, badRequest("service: T row %d has %d entries, want %d", i+1, len(r), n)
		}
	}
	t := intmat.FromRows(rows...)

	queueStart := time.Now()
	release, err := s.acquire(ctx)
	recordStage(ctx, stageQueue, queueStart)
	if err != nil {
		return nil, err
	}
	defer release()
	defer recordStage(ctx, stageSearch, time.Now())
	res, err := conflict.Decide(t, set)
	if err != nil {
		if errors.Is(err, conflict.ErrRank) {
			return nil, &BadRequestError{Err: err}
		}
		return nil, err
	}
	return &ConflictResponse{ConflictFree: res.ConflictFree, Witness: res.Witness, Method: res.Method}, nil
}

// SimulateRequest asks for a cycle-accurate run of a mapped algorithm
// on the systolic simulator with the generic checksum program.
type SimulateRequest struct {
	Algorithm    string    `json:"algorithm,omitempty"`
	Sizes        []int64   `json:"sizes,omitempty"`
	Bounds       []int64   `json:"bounds,omitempty"`
	Dependencies [][]int64 `json:"dependencies,omitempty"`
	S            [][]int64 `json:"s"`
	Pi           []int64   `json:"pi"`
	// Machine is a cli machine spec: "", "none", "meshN", or "p:...".
	Machine string `json:"machine,omitempty"`
}

// SimulateResponse carries the run statistics the simulator reports.
type SimulateResponse struct {
	Cycles          int64   `json:"cycles"`
	ScheduleTime    int64   `json:"schedule_time"`
	Processors      int     `json:"processors"`
	Computations    int64   `json:"computations"`
	PeakParallelism int     `json:"peak_parallelism"`
	Utilization     float64 `json:"utilization"`
	Conflicts       int     `json:"conflicts"`
	Collisions      int     `json:"collisions"`
	MaxBuffered     []int64 `json:"max_buffered"`
}

// Simulate runs a mapping through the systolic simulator.
func (s *Service) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	done, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer done()

	algo, err := algoFromRequest(req.Algorithm, req.Sizes, req.Bounds, req.Dependencies)
	if err != nil {
		return nil, err
	}
	if algo.Set.SizeExceeds(maxIndexPoints) {
		return nil, badRequest("service: index set exceeds the simulation limit of %d points", maxIndexPoints)
	}
	sm := intmat.New(0, algo.Dim())
	if len(req.S) > 0 {
		for i, r := range req.S {
			if len(r) != algo.Dim() {
				return nil, badRequest("service: S row %d has %d entries, want %d", i+1, len(r), algo.Dim())
			}
		}
		sm = intmat.FromRows(req.S...)
	}
	if len(req.Pi) != algo.Dim() {
		return nil, badRequest("service: Π has %d entries, want %d", len(req.Pi), algo.Dim())
	}
	mach, err := cli.Machine(req.Machine)
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	m, err := schedule.NewMapping(algo, sm, intmat.Vector(req.Pi))
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	// Request-supplied Π and μ can drive 1 + Σ|π_i|μ_i past int64; the
	// checked form turns the wrap into a 400 instead of reporting a
	// negative schedule time.
	totalTime, err := m.TotalTimeChecked()
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}

	queueStart := time.Now()
	release, err := s.acquire(ctx)
	recordStage(ctx, stageQueue, queueStart)
	if err != nil {
		return nil, err
	}
	defer release()
	defer recordStage(ctx, stageSearch, time.Now())
	sim, err := systolic.New(m, &systolic.ChecksumProgram{Streams: algo.NumDeps()}, mach)
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return &SimulateResponse{
		Cycles:          res.Cycles,
		ScheduleTime:    totalTime,
		Processors:      res.Processors,
		Computations:    res.Computations,
		PeakParallelism: res.MaxOccupancy,
		Utilization:     res.Utilization(),
		Conflicts:       len(res.Conflicts),
		Collisions:      len(res.Collisions),
		MaxBuffered:     res.MaxBuffered,
	}, nil
}
