package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestE2EBatch: a batch mixing permuted duplicates and one invalid item
// answers per item — the duplicates share one search, the bad item
// fails alone without failing the batch.
func TestE2EBatch(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 1})

	body := fmt.Sprintf(`{"items":[%s,%s,{"algorithm":"nope"}]}`, e2eBody, e2ePerm)
	status, _, raw := postJSON(t, srv.URL+"/v1/batch", body)
	if status != 200 {
		t.Fatalf("batch: %d (%s)", status, raw)
	}
	var resp BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(resp.Items))
	}
	if resp.OK != 2 || resp.Failed != 1 {
		t.Errorf("ok/failed = %d/%d, want 2/1", resp.OK, resp.Failed)
	}
	for i, item := range resp.Items {
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
	}
	for _, i := range []int{0, 1} {
		item := resp.Items[i]
		if item.Status != 200 || item.Response == nil || item.Error != "" {
			t.Errorf("item %d: %+v, want a 200 with a response", i, item)
		}
	}
	bad := resp.Items[2]
	if bad.Status != http.StatusBadRequest || bad.Response != nil || bad.Error == "" {
		t.Errorf("invalid item: %+v, want a 400 with an error", bad)
	}
	// The two valid items are one canonical problem: exactly one search.
	if n := svc.met.searches.Load(); n != 1 {
		t.Errorf("searches = %d, want 1 (permuted duplicates must dedup)", n)
	}
	// Both rendered responses agree on the canonical key and figures.
	a, b := resp.Items[0].Response, resp.Items[1].Response
	if a.CanonicalKey != b.CanonicalKey || a.TotalTime != b.TotalTime {
		t.Errorf("duplicate items disagree: %+v vs %+v", a, b)
	}
	if n := svc.met.batchRequests.Load(); n != 1 {
		t.Errorf("batch request counter = %d, want 1", n)
	}
}

// TestE2EBatchLimits: an empty batch and an oversized batch are refused
// whole with 400.
func TestE2EBatchLimits(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 1})

	status, _, raw := postJSON(t, srv.URL+"/v1/batch", `{"items":[]}`)
	if status != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400 (%s)", status, raw)
	}

	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"bounds":[2,2,2],"dependencies":[[1,0,0],[0,1,0],[0,0,1]],"dims":1}`)
	}
	sb.WriteString(`]}`)
	status, _, raw = postJSON(t, srv.URL+"/v1/batch", sb.String())
	if status != http.StatusBadRequest {
		t.Errorf("oversized batch: %d, want 400 (%s)", status, raw)
	}
	var e errorBody
	if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error, "limit") {
		t.Errorf("oversized batch error body: %s", raw)
	}
}

// TestRetryAfterHeaders: the backpressure statuses carry Retry-After so
// clients can pace resubmission, and other errors do not.
func TestRetryAfterHeaders(t *testing.T) {
	svc := New(Config{Pool: 1})
	t.Cleanup(func() { svc.Close() })

	cases := []struct {
		err    error
		status int
		after  time.Duration
	}{
		{ErrOverloaded, http.StatusTooManyRequests, time.Second},
		{ErrShuttingDown, http.StatusServiceUnavailable, 2 * time.Second},
		{badRequest("nope"), http.StatusBadRequest, 0},
	}
	for _, c := range cases {
		status, after := svc.classifyError(c.err)
		if status != c.status || after != c.after {
			t.Errorf("classifyError(%v) = (%d, %v), want (%d, %v)", c.err, status, after, c.status, c.after)
		}
	}

	rec := httptest.NewRecorder()
	svc.writeError(rec, ErrOverloaded)
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After header = %q, want \"1\"", got)
	}
	rec = httptest.NewRecorder()
	svc.writeError(rec, badRequest("nope"))
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("Retry-After on 400 = %q, want unset", got)
	}
}

// TestRetryAfterSubSecondPrecision: the two renderings of one pacing
// hint never disagree in a harmful direction. The header's
// whole-second grammar rounds up — a sub-second hint must not become
// "0", an immediate-retry invitation — while batch items carry the
// exact millisecond value, neither truncated nor inflated.
func TestRetryAfterSubSecondPrecision(t *testing.T) {
	cases := []struct {
		d      time.Duration
		header string
		ms     int64
	}{
		{250 * time.Millisecond, "1", 250},
		{999 * time.Millisecond, "1", 999},
		{time.Second, "1", 1000},
		{1001 * time.Millisecond, "2", 1001},
		{1500 * time.Millisecond, "2", 1500},
		{2 * time.Second, "2", 2000},
	}
	for _, c := range cases {
		if got := retryAfterHeader(c.d); got != c.header {
			t.Errorf("retryAfterHeader(%v) = %q, want %q", c.d, got, c.header)
		}
		if got := c.d.Milliseconds(); got != c.ms {
			t.Errorf("%v.Milliseconds() = %d, want %d", c.d, got, c.ms)
		}
	}
}

// TestBatchRetryAfterMillisecondField: a backpressured batch item
// reports its pacing hint in milliseconds, matching classifyError's
// duration exactly.
func TestBatchRetryAfterMillisecondField(t *testing.T) {
	svc := New(Config{Pool: 1})
	t.Cleanup(func() { svc.Close() })
	_, after := svc.classifyError(ErrOverloaded)
	if got := after.Milliseconds(); got != 1000 {
		t.Fatalf("overload hint = %dms, want 1000", got)
	}
}
