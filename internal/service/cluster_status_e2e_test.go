package service

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// logLines is a concurrency-safe slog sink for counting alert lines.
type logLines struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (l *logLines) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *logLines) count(substr string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Count(l.buf.String(), substr)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestClusterE2EStatusAggregation: three nodes run a tight latency SLO;
// tenant-tagged traffic to ONE node induces a breach there. Exactly that
// node flips /healthz to degraded, logs exactly one alert line, and
// writes exactly one evidence bundle; /v1/cluster/status asked of a
// DIFFERENT node reports the fleet-wide verdict, names the breached
// node, and merges the tenant top-K; /metrics carries an exemplar whose
// trace id resolves in /debug/requests' registry.
func TestClusterE2EStatusAggregation(t *testing.T) {
	logs := make([]*logLines, 3)
	evidence := make([]string, 3)
	tc := newTestCluster(t, 3, func(i int, cfg *Config) {
		logs[i] = &logLines{}
		evidence[i] = t.TempDir()
		cfg.TraceBuffer = 64
		cfg.Logger = slog.New(slog.NewTextHandler(logs[i], nil))
		cfg.SLO = &SLOConfig{
			LatencyP99:      time.Nanosecond, // every request is over threshold
			MinEvents:       5,
			EvidenceDir:     evidence[i],
			ProfileDuration: 10 * time.Millisecond,
		}
	})
	// Drive the owner so the search (and its exemplar) land on the same
	// node that breaches.
	owner := tc.ownerIndex(t, e2eBody)
	for i := 0; i < 8; i++ {
		req, err := http.NewRequest("POST", tc.srvs[owner].URL+"/v1/map", strings.NewReader(e2eBody))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(TenantHeader, []string{"acme", "globex"}[i%2])
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	// Exactly one node degrades, and its liveness stays intact: /healthz
	// answers 200 with the degraded status in the body.
	waitFor(t, "owner to degrade", func() bool { return tc.svcs[owner].Status().Status == "degraded" })
	for i, svc := range tc.svcs {
		want := "ok"
		if i == owner {
			want = "degraded"
		}
		if got := svc.Status().Status; got != want {
			t.Errorf("node%d status = %q, want %q", i, got, want)
		}
	}
	var hz Status
	if code := getJSON(t, tc.srvs[owner].URL+"/healthz", &hz); code != 200 {
		t.Errorf("degraded /healthz returned %d, want 200 (liveness must survive a breach)", code)
	}
	if hz.Status != "degraded" || hz.SLO == nil || hz.SLO.Healthy {
		t.Errorf("degraded /healthz body: status=%q slo=%+v", hz.Status, hz.SLO)
	}

	// Exactly one alert line, on exactly the breached node, and exactly
	// one evidence bundle with profile, metadata and traces.
	waitFor(t, "evidence capture", func() bool { return logs[owner].count("slo evidence captured") == 1 })
	for i, lg := range logs {
		want := 0
		if i == owner {
			want = 1
		}
		if got := lg.count(`msg="slo breach"`); got != want {
			t.Errorf("node%d breach alert lines = %d, want %d", i, got, want)
		}
	}
	for i, dir := range evidence {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if i != owner {
			if len(entries) != 0 {
				t.Errorf("node%d wrote evidence without breaching: %v", i, entries)
			}
			continue
		}
		if len(entries) != 1 || entries[0].Name() != "latency-p99-001" {
			t.Fatalf("owner evidence dirs = %v, want exactly [latency-p99-001]", entries)
		}
		bundle := filepath.Join(dir, entries[0].Name())
		for _, f := range []string{"meta.json", "cpu.pprof"} {
			if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
				t.Errorf("evidence bundle missing %s: %v", f, err)
			}
		}
		traces, err := filepath.Glob(filepath.Join(bundle, "traces", "*.json"))
		if err != nil || len(traces) == 0 {
			t.Errorf("evidence bundle has no trace flush (err=%v)", err)
		}
		var meta struct {
			Objective string `json:"objective"`
		}
		raw, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
		if err != nil || json.Unmarshal(raw, &meta) != nil || meta.Objective != "latency-p99" {
			t.Errorf("meta.json = %s (err=%v)", raw, err)
		}
	}

	// The fleet view from a NON-breached node: cross-node verdict names
	// the breached peer and the tenant top-K is merged.
	asker := (owner + 1) % 3
	var cs ClusterStatusResponse
	if code := getJSON(t, tc.srvs[asker].URL+"/v1/cluster/status", &cs); code != 200 {
		t.Fatalf("/v1/cluster/status returned %d", code)
	}
	f := cs.Fleet
	if f.Status != "degraded" || f.Nodes != 3 || f.Healthy != 2 || f.Degraded != 1 || f.Unreachable != 0 {
		t.Errorf("fleet = %+v, want degraded 3/2/1/0", f)
	}
	if len(cs.Nodes) != 3 {
		t.Fatalf("node reports = %d, want 3", len(cs.Nodes))
	}
	ownerID := tc.members[owner].ID
	var sawBreach bool
	for _, ob := range f.SLO {
		if ob.Objective == "latency-p99" {
			sawBreach = true
			if !ob.Breached || len(ob.BreachedNodes) != 1 || ob.BreachedNodes[0] != ownerID {
				t.Errorf("fleet latency verdict = %+v, want breached by %s only", ob, ownerID)
			}
			if ob.MaxSlowBurn < 4 {
				t.Errorf("fleet max slow burn = %g, want ≥ burn threshold", ob.MaxSlowBurn)
			}
		}
	}
	if !sawBreach {
		t.Errorf("fleet SLO list %+v missing latency-p99", f.SLO)
	}
	tenants := map[string]int64{}
	for _, u := range f.Tenants {
		tenants[u.Tenant] = u.Requests
	}
	if tenants["acme"] != 4 || tenants["globex"] != 4 {
		t.Errorf("fleet tenants = %v, want acme=4 globex=4", tenants)
	}
	for _, rep := range cs.Nodes {
		if rep.Err != "" || rep.Status == nil {
			t.Errorf("node report %s unreachable: %q", rep.Node, rep.Err)
			continue
		}
		if rep.Status.Ring == nil || len(rep.Status.Ring.Members) != 3 {
			t.Errorf("node %s ring view = %+v, want 3 members", rep.Node, rep.Status.Ring)
		}
	}

	// The exposition carries an exemplar and its trace id resolves in the
	// live registry behind /debug/requests.
	resp, err := http.Get(tc.srvs[owner].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(` # \{trace_id="([0-9a-f]+)"\}`).FindStringSubmatch(string(metricsBody))
	if m == nil {
		t.Fatal("/metrics has no exemplar")
	}
	if tc.svcs[owner].traces.Lookup(m[1]) == nil {
		t.Errorf("exemplar trace id %s does not resolve in the trace registry", m[1])
	}
}

// TestClusterE2EClusterStatusPeerDown: with one node hard-down, the
// fleet view still answers, reports the dead node with its error, and
// degrades the fleet verdict.
func TestClusterE2EClusterStatusPeerDown(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.srvs[2].Close() // node2 goes dark; Cleanup's second Close is a no-op

	var cs ClusterStatusResponse
	if code := getJSON(t, tc.srvs[0].URL+"/v1/cluster/status", &cs); code != 200 {
		t.Fatalf("/v1/cluster/status returned %d", code)
	}
	f := cs.Fleet
	if f.Status != "degraded" || f.Nodes != 3 || f.Healthy != 2 || f.Unreachable != 1 {
		t.Errorf("fleet = %+v, want degraded with 1 unreachable of 3", f)
	}
	var deadReport *NodeReport
	for i := range cs.Nodes {
		if cs.Nodes[i].Node == tc.members[2].ID {
			deadReport = &cs.Nodes[i]
		}
	}
	if deadReport == nil {
		t.Fatal("dead node missing from reports")
	}
	if deadReport.Err == "" || deadReport.Status != nil {
		t.Errorf("dead node report = %+v, want error and no snapshot", deadReport)
	}
}
