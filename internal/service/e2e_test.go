package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

func postJSON(t *testing.T, url string, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// A small asymmetric instance and its axis-permuted restatement under
// σ = (2,0,1): new axis i is old axis σ[i].
const (
	e2eBody = `{"bounds":[2,3,4],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1}`
	e2ePerm = `{"bounds":[4,2,3],"dependencies":[[0,1,0],[0,1,1],[1,0,1]],"dims":1}`
)

// TestE2ESingleflight: two concurrent identical /v1/map requests run
// exactly one search; one answer is the miss, the other is shared, and
// the bodies are byte-identical.
func TestE2ESingleflight(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 1})
	real := svc.searchJoint
	gate := make(chan struct{})
	svc.searchJoint = func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error) {
		<-gate
		return real(ctx, algo, dims, opts)
	}

	type reply struct {
		status int
		cache  string
		body   []byte
	}
	replies := make(chan reply, 2)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		status, hdr, body := postJSON(t, srv.URL+"/v1/map", e2eBody)
		replies <- reply{status, hdr.Get("X-Mapserve-Cache"), body}
	}
	wg.Add(1)
	go post()
	// First request must hold the flight before the second arrives.
	waitCounter(t, &svc.met.searches, 1)
	wg.Add(1)
	go post()
	// Second request must have joined the flight before it resolves.
	waitCounter(t, &svc.met.deduped, 1)
	close(gate)
	wg.Wait()
	close(replies)

	var got []reply
	for r := range replies {
		got = append(got, r)
	}
	if got[0].status != 200 || got[1].status != 200 {
		t.Fatalf("statuses: %d, %d (%s / %s)", got[0].status, got[1].status, got[0].body, got[1].body)
	}
	if n := svc.met.searches.Load(); n != 1 {
		t.Errorf("searches = %d, want exactly 1", n)
	}
	caches := []string{got[0].cache, got[1].cache}
	if !(caches[0] == "miss" && caches[1] == "shared") && !(caches[0] == "shared" && caches[1] == "miss") {
		t.Errorf("cache headers = %v, want one miss and one shared", caches)
	}
	if !bytes.Equal(got[0].body, got[1].body) {
		t.Errorf("shared and miss bodies differ:\n%s\n%s", got[0].body, got[1].body)
	}
}

// TestE2EPermutedVariantHitsCache: an axis-permuted restatement of a
// cached problem is a cache hit, its body is byte-identical to a fresh
// search of the same restatement, and the returned mapping is valid and
// conflict-free in the restated coordinates.
func TestE2EPermutedVariantHitsCache(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 1})

	status, hdr, body := postJSON(t, srv.URL+"/v1/map", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "miss" {
		t.Fatalf("cold request: %d %q %s", status, hdr.Get("X-Mapserve-Cache"), body)
	}
	status, hdr, permBody := postJSON(t, srv.URL+"/v1/map", e2ePerm)
	if status != 200 {
		t.Fatalf("permuted request: %d %s", status, permBody)
	}
	if hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("permuted request cache = %q, want hit", hdr.Get("X-Mapserve-Cache"))
	}
	if n := svc.met.searches.Load(); n != 1 {
		t.Errorf("searches = %d, want 1 (the permuted variant must reuse it)", n)
	}

	// The cached answer must be indistinguishable from a fresh search.
	svc.FlushCache()
	status, hdr, fresh := postJSON(t, srv.URL+"/v1/map", e2ePerm)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "miss" {
		t.Fatalf("fresh permuted search: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	if !bytes.Equal(permBody, fresh) {
		t.Errorf("cached and fresh bodies differ:\n%s\n%s", permBody, fresh)
	}

	// Decode and revalidate the mapping against the *request* axes.
	var out MapResponse
	if err := json.Unmarshal(permBody, &out); err != nil {
		t.Fatal(err)
	}
	var req MapRequest
	if err := json.Unmarshal([]byte(e2ePerm), &req); err != nil {
		t.Fatal(err)
	}
	algo, err := algoFromRequest("", nil, req.Bounds, req.Dependencies)
	if err != nil {
		t.Fatal(err)
	}
	m, err := schedule.NewMapping(algo, intmat.FromRows(out.S...), intmat.Vector(out.Pi))
	if err != nil {
		t.Fatalf("returned mapping invalid in request coordinates: %v", err)
	}
	cr, err := m.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !cr.ConflictFree {
		t.Errorf("returned mapping has conflicts: %v", cr)
	}
	if m.TotalTime() != out.TotalTime {
		t.Errorf("total time %d inconsistent with Π (%d)", out.TotalTime, m.TotalTime())
	}

	// Both orientations of one problem share every invariant figure.
	var orig MapResponse
	status, _, body2 := postJSON(t, srv.URL+"/v1/map", e2eBody)
	if status != 200 {
		t.Fatalf("re-request: %d", status)
	}
	if err := json.Unmarshal(body2, &orig); err != nil {
		t.Fatal(err)
	}
	if orig.TotalTime != out.TotalTime || orig.Processors != out.Processors ||
		orig.WireLength != out.WireLength || orig.Cost != out.Cost {
		t.Errorf("invariants differ across the permutation: %+v vs %+v", orig, out)
	}
	if orig.CanonicalKey != out.CanonicalKey {
		t.Errorf("canonical keys differ: %s vs %s", orig.CanonicalKey, out.CanonicalKey)
	}
}

// TestE2EDeadline: a 1ms-deadline request on a large instance returns
// promptly with 504 and leaks no goroutines.
func TestE2EDeadline(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 4})
	// Warm up the HTTP client/server goroutine population first.
	if status, _, body := postJSON(t, srv.URL+"/v1/map", e2eBody); status != 200 {
		t.Fatalf("warmup: %d %s", status, body)
	}
	baseline := runtime.NumGoroutine()

	start := time.Now()
	status, _, body := postJSON(t, srv.URL+"/v1/map",
		`{"algorithm":"transitive-closure","sizes":[30],"dims":1,"timeout_ms":1}`)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", status, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("timeout body lacks the error field: %s", body)
	}
	if elapsed > 3*time.Second {
		t.Errorf("1ms-deadline request took %v", elapsed)
	}
	if got := svc.met.timeouts.Load(); got != 1 {
		t.Errorf("timeouts metric = %d, want 1", got)
	}
	// Search workers must all have unwound; allow the runtime a moment.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines: baseline %d, now %d\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestE2EMetricsAndHealth: /metrics reports the cache traffic and the
// latency histogram; /healthz answers.
func TestE2EMetricsAndHealth(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 1})
	postJSON(t, srv.URL+"/v1/map", e2eBody)
	postJSON(t, srv.URL+"/v1/map", e2eBody) // hit

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"mapserve_cache_hits_total 1",
		"mapserve_cache_misses_total 1",
		"mapserve_searches_total 1",
		"mapserve_cache_hit_ratio 0.5",
		"mapserve_search_latency_seconds_count 1",
		`mapserve_requests_total{endpoint="map"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Errorf("healthz = %d", hr.StatusCode)
	}
}

// TestE2EConflictAndSimulate: the two auxiliary endpoints answer on the
// paper's matrix-multiplication example.
func TestE2EConflictAndSimulate(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 2})

	status, _, body := postJSON(t, srv.URL+"/v1/conflict",
		`{"bounds":[4,4,4],"s":[[1,1,-1]],"pi":[1,4,1]}`)
	if status != 200 {
		t.Fatalf("conflict: %d %s", status, body)
	}
	var cr ConflictResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.ConflictFree || cr.Method == "" {
		t.Errorf("conflict verdict = %+v, want conflict-free with a method", cr)
	}

	status, _, body = postJSON(t, srv.URL+"/v1/simulate",
		`{"algorithm":"matmul","sizes":[4],"s":[[1,1,-1]],"pi":[1,4,1]}`)
	if status != 200 {
		t.Fatalf("simulate: %d %s", status, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Computations != 125 { // (4+1)^3 index points
		t.Errorf("computations = %d, want 125", sr.Computations)
	}
	if sr.Conflicts != 0 || sr.Collisions != 0 {
		t.Errorf("conflicts/collisions = %d/%d, want 0/0", sr.Conflicts, sr.Collisions)
	}
	if sr.Cycles < 1 || sr.Processors < 1 {
		t.Errorf("degenerate run: %+v", sr)
	}
}

// TestE2EBadRequests: malformed inputs map to 400 with a JSON error.
func TestE2EBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 1})
	cases := []struct{ path, body string }{
		{"/v1/map", `{`},
		{"/v1/map", `{"unknown_field":1}`},
		{"/v1/map", `{"algorithm":"nope"}`},
		{"/v1/conflict", `{"bounds":[4,4]}`},
		{"/v1/simulate", `{"algorithm":"matmul","sizes":[4],"pi":[1]}`},
	}
	for _, c := range cases {
		status, _, body := postJSON(t, srv.URL+c.path, c.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400 (%s)", c.path, c.body, status, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body lacks error field: %s", c.path, body)
		}
	}
}

// waitCounter polls an atomic counter until it reaches want.
func waitCounter(t *testing.T, c interface{ Load() int64 }, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", c.Load(), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}
