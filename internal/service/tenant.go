package service

// Per-tenant usage accounting with bounded label cardinality. Tenants
// identify themselves with the X-Mapserve-Tenant header on the sync
// endpoints (the jobs tier already carries a tenant in its payloads);
// the table tracks the most recently active tenants in an LRU and
// folds everything evicted into a single "other" overflow bucket, so
// counts are conserved while /metrics label cardinality stays fixed no
// matter how many distinct header values arrive.

import (
	"container/list"
	"sort"
	"sync"

	"lodim/internal/cluster"
)

const (
	// TenantHeader names the requesting tenant on sync endpoints.
	TenantHeader = "X-Mapserve-Tenant"
	// tenantAnonymous labels requests without a tenant header.
	tenantAnonymous = "anonymous"
	// tenantOverflow is the fold-in bucket for evicted (or literally
	// so-named) tenants.
	tenantOverflow = "other"
	// defaultTenantLimit bounds distinct live tenant labels.
	defaultTenantLimit = 64
	// maxTenantNameLen truncates hostile header values.
	maxTenantNameLen = 64
)

// tenantName sanitizes a raw header value into a metrics-safe label:
// empty becomes "anonymous", characters outside [A-Za-z0-9._-] become
// '_', and over-long names are truncated. "other" maps to the overflow
// bucket by construction.
func tenantName(raw string) string {
	if raw == "" {
		return tenantAnonymous
	}
	if len(raw) > maxTenantNameLen {
		raw = raw[:maxTenantNameLen]
	}
	b := []byte(raw)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// tenantCounters is one tenant's accumulated usage.
type tenantCounters struct {
	requests        int64
	cacheHits       int64
	searchMillis    int64
	queueRejections int64
}

func (c *tenantCounters) add(o tenantCounters) {
	c.requests += o.requests
	c.cacheHits += o.cacheHits
	c.searchMillis += o.searchMillis
	c.queueRejections += o.queueRejections
}

// tenantEntry is one LRU slot.
type tenantEntry struct {
	name string
	c    tenantCounters
}

// tenantTable is the bounded per-tenant accounting table. A mutex (not
// atomics) is fine here: one short critical section per request, and
// the LRU list needs it anyway.
type tenantTable struct {
	mu     sync.Mutex
	limit  int
	ll     *list.List // front = most recently active
	byName map[string]*list.Element
	other  tenantCounters
}

func newTenantTable(limit int) *tenantTable {
	if limit <= 0 {
		limit = defaultTenantLimit
	}
	return &tenantTable{limit: limit, ll: list.New(), byName: make(map[string]*list.Element)}
}

// observe folds one request's usage into the tenant's counters,
// evicting the least recently active tenant into "other" when the
// table is full. name must already be sanitized by tenantName.
func (t *tenantTable) observe(name string, delta tenantCounters) {
	delta.requests = 1
	t.mu.Lock()
	defer t.mu.Unlock()
	if name == tenantOverflow {
		t.other.add(delta)
		return
	}
	if el, ok := t.byName[name]; ok {
		t.ll.MoveToFront(el)
		el.Value.(*tenantEntry).c.add(delta)
		return
	}
	if t.ll.Len() >= t.limit {
		back := t.ll.Back()
		evicted := back.Value.(*tenantEntry)
		t.other.add(evicted.c)
		delete(t.byName, evicted.name)
		t.ll.Remove(back)
	}
	t.byName[name] = t.ll.PushFront(&tenantEntry{name: name, c: delta})
}

// usage converts counters to the wire form.
func usage(name string, c tenantCounters) cluster.TenantUsage {
	return cluster.TenantUsage{
		Tenant:          name,
		Requests:        c.requests,
		CacheHits:       c.cacheHits,
		SearchMillis:    c.searchMillis,
		QueueRejections: c.queueRejections,
	}
}

// snapshot returns every live tenant plus the overflow bucket (when it
// has absorbed anything), sorted by tenant name for deterministic
// /metrics output.
func (t *tenantTable) snapshot() []cluster.TenantUsage {
	t.mu.Lock()
	out := make([]cluster.TenantUsage, 0, t.ll.Len()+1)
	for el := t.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*tenantEntry)
		out = append(out, usage(e.name, e.c))
	}
	if t.other.requests > 0 {
		out = append(out, usage(tenantOverflow, t.other))
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// topK returns the k tenants with the most requests (overflow bucket
// included), ties broken by name.
func (t *tenantTable) topK(k int) []cluster.TenantUsage {
	out := t.snapshot()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Tenant < out[j].Tenant
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
