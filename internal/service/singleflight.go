package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent work by key: the first caller of
// a key (the leader) executes fn; callers arriving while the flight is
// open wait for the leader's outcome instead of repeating the work.
// Waiters honor their own context — a waiter whose context ends detaches
// and returns the context error while the leader's work continues.
//
// This is a minimal, context-aware reimplementation of the well-known
// singleflight pattern (the module is dependency-free by design).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	// onJoin, when set, is called every time a waiter attaches to an
	// existing flight — the service counts deduplicated requests with
	// it, and tests use the count to sequence concurrent callers.
	onJoin func()
}

type flightCall struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do executes fn for key, deduplicating concurrent callers. The leader
// runs fn in its own goroutine (and under its own context, captured by
// fn); followers block until the flight completes or their ctx ends.
// leader reports whether this caller executed fn itself.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (v any, err error, leader bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		if g.onJoin != nil {
			g.onJoin()
		}
		select {
		case <-c.done:
			return c.val, c.err, false
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, true
}
