package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent work by key: the first caller of
// a key (the leader) opens the flight; callers arriving while it is
// open wait for its outcome instead of repeating the work.
//
// The work itself runs in a dedicated goroutine under a flight context
// that is detached from every caller: a waiter (the leader included)
// whose own context ends detaches and returns its context error, while
// the flight keeps running for the waiters that remain. Only when the
// last waiter detaches is the flight context cancelled — so a follower
// with a healthy deadline is never poisoned by a leader whose deadline
// was short or whose client disconnected.
//
// This is a minimal, context-aware reimplementation of the well-known
// singleflight pattern (the module is dependency-free by design).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	// onJoin, when set, is called every time a waiter attaches to an
	// existing flight — the service counts deduplicated requests with
	// it, and tests use the count to sequence concurrent callers.
	onJoin func()
}

type flightCall struct {
	done    chan struct{} // closed when val/err are final
	val     any
	err     error
	waiters int                // callers still waiting; guarded by flightGroup.mu
	cancel  context.CancelFunc // cancels the flight context
	mark    flightMark         // progress marks shared with every waiter
}

// flightMark publishes a flight's progress to its waiters. A follower
// that joined mid-flight reads searchStartNs to split its wait into
// "queued behind the pool" versus "the search itself was running":
// without the mark, a follower's whole wait would be booked as search
// time even when the leader spent most of it waiting for a slot.
type flightMark struct {
	// searchStartNs is the wall clock (UnixNano) at which the flight's
	// search actually began — i.e. after the pool slot was acquired and
	// the post-queue cache re-check missed. Zero until then.
	searchStartNs atomic.Int64
}

// markKey carries the flight's mark through the flight context so the
// flight body (runSearch) can stamp progress without widening its
// signature.
type markKey struct{}

// markFrom returns the flight mark, or nil outside a flight.
func markFrom(ctx context.Context) *flightMark {
	m, _ := ctx.Value(markKey{}).(*flightMark)
	return m
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do executes fn for key, deduplicating concurrent callers. fn runs in
// its own goroutine under a flight context detached from ctx; the
// flight context is cancelled when the last waiter detaches, so fn
// must honor it for abandoned work to stop. leader reports whether
// this caller opened the flight (and so executed fn).
func (g *flightGroup) Do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (v any, err error, leader bool) {
	v, err, leader, _ = g.DoMarked(ctx, key, fn)
	return v, err, leader
}

// DoMarked is Do plus the flight's progress mark, which is shared by
// the leader and every follower of one flight. The service uses it to
// attribute a follower's wait to the correct timing stages.
func (g *flightGroup) DoMarked(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (v any, err error, leader bool, mark *flightMark) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		if g.onJoin != nil {
			g.onJoin()
		}
		v, err, leader = g.wait(ctx, c, false)
		return v, err, leader, &c.mark
	}
	// WithoutCancel keeps ctx's values but drops its deadline and
	// cancellation: the flight outlives any individual caller.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	fctx = context.WithValue(fctx, markKey{}, &c.mark)
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		v, err := fn(fctx)
		g.mu.Lock()
		c.val, c.err = v, err
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	v, err, leader = g.wait(ctx, c, true)
	return v, err, leader, &c.mark
}

// wait blocks until the flight lands or ctx ends. A waiter that
// detaches decrements the flight's refcount and, as the last one out,
// cancels the flight context so fn stops burning resources on a result
// nobody will read.
func (g *flightGroup) wait(ctx context.Context, c *flightCall, leader bool) (any, error, bool) {
	select {
	case <-c.done:
		return c.val, c.err, leader
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		g.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, ctx.Err(), leader
	}
}
