package service

import (
	"math/rand"
	"sort"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// randomAlgo draws a valid random instance: n ∈ [2,5], m ∈ [1,6],
// entries in [-2,2] with zero columns repaired, bounds in [1,6] with
// deliberate repetitions so equal-μ groups (the interesting case for
// canonicalization) are common.
func randomAlgo(rng *rand.Rand) *uda.Algorithm {
	n := 2 + rng.Intn(4)
	m := 1 + rng.Intn(6)
	mu := make(intmat.Vector, n)
	for i := range mu {
		mu[i] = 1 + int64(rng.Intn(3)) // small range → many equal bounds
	}
	d := intmat.New(n, m)
	for c := 0; c < m; c++ {
		col := make(intmat.Vector, n)
		zero := true
		for i := range col {
			col[i] = int64(rng.Intn(5) - 2)
			zero = zero && col[i] == 0
		}
		if zero {
			col[rng.Intn(n)] = 1
		}
		d.SetCol(c, col)
	}
	return &uda.Algorithm{Name: "rand", Set: uda.IndexSet{Upper: mu}, D: d}
}

// permuteAlgo applies axis permutation σ: axis i of the result is axis
// sigma[i] of the input (bounds and dependence rows move together).
func permuteAlgo(a *uda.Algorithm, sigma []int) *uda.Algorithm {
	n := a.Dim()
	mu := make(intmat.Vector, n)
	d := intmat.New(n, a.NumDeps())
	for i, ax := range sigma {
		mu[i] = a.Set.Upper[ax]
		for c := 0; c < a.NumDeps(); c++ {
			d.Set(i, c, a.D.At(ax, c))
		}
	}
	return &uda.Algorithm{Name: a.Name, Set: uda.IndexSet{Upper: mu}, D: d}
}

// TestCanonicalKeyPermutationInvariant is the property at the heart of
// the cache: every axis permutation of an instance lands on the same
// canonical key and the same canonical-coordinate algorithm.
func TestCanonicalKeyPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		a := randomAlgo(rng)
		if err := a.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random instance: %v", trial, err)
		}
		ca := Canonicalize(a)
		sigma := rng.Perm(a.Dim())
		b := permuteAlgo(a, sigma)
		cb := Canonicalize(b)
		if ca.Key != cb.Key {
			t.Fatalf("trial %d: keys differ under σ=%v:\n  %s\n  %s", trial, sigma, ca.Key, cb.Key)
		}
		if !ca.Algo.Set.Upper.Equal(cb.Algo.Set.Upper) || !ca.Algo.D.Equal(cb.Algo.D) {
			t.Fatalf("trial %d: canonical instances differ under σ=%v", trial, sigma)
		}
	}
}

// TestCanonicalIsIdempotentAndSorted: canonicalizing twice is stable and
// the canonical μ is ascending.
func TestCanonicalIsIdempotentAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a := randomAlgo(rng)
		c1 := Canonicalize(a)
		mu := c1.Algo.Set.Upper
		for i := 1; i < len(mu); i++ {
			if mu[i] < mu[i-1] {
				t.Fatalf("trial %d: canonical μ not ascending: %v", trial, mu)
			}
		}
		c2 := Canonicalize(c1.Algo)
		if c1.Key != c2.Key {
			t.Fatalf("trial %d: key not idempotent:\n  %s\n  %s", trial, c1.Key, c2.Key)
		}
		if !c2.Algo.D.Equal(c1.Algo.D) {
			t.Fatalf("trial %d: canonical form not a fixed point", trial)
		}
	}
}

// TestCanonicalTranslationRoundTrip: translating the canonical
// dependence columns back through Perm recovers the request's
// dependence multiset, and matrix translation agrees with vector
// translation row by row.
func TestCanonicalTranslationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a := randomAlgo(rng)
		c := Canonicalize(a)

		var want, got []string
		for i := 0; i < a.NumDeps(); i++ {
			want = append(want, a.D.Col(i).String())
			got = append(got, c.VectorToRequest(c.Algo.D.Col(i)).String())
		}
		sort.Strings(want)
		sort.Strings(got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: dependence multiset changed:\nwant %v\ngot  %v", trial, want, got)
			}
		}

		// μ translates back exactly (not just as a multiset).
		muBack := c.VectorToRequest(c.Algo.Set.Upper)
		if !muBack.Equal(a.Set.Upper) {
			t.Fatalf("trial %d: μ round trip: %v → %v", trial, a.Set.Upper, muBack)
		}

		// A matrix is translated exactly like each of its rows.
		m := intmat.New(2, a.Dim())
		for j := 0; j < a.Dim(); j++ {
			m.Set(0, j, int64(rng.Intn(7)-3))
			m.Set(1, j, int64(rng.Intn(7)-3))
		}
		mt := c.MatrixToRequest(m)
		for r := 0; r < 2; r++ {
			if !mt.Row(r).Equal(c.VectorToRequest(m.Row(r))) {
				t.Fatalf("trial %d: MatrixToRequest disagrees with VectorToRequest on row %d", trial, r)
			}
		}
	}
}

// TestCanonicalKeySeparates: structurally different instances must not
// collide (sanity, not a hash-strength claim — keys are lossless).
func TestCanonicalKeySeparates(t *testing.T) {
	a := &uda.Algorithm{Set: uda.Cube(3, 4), D: intmat.FromRows(
		[]int64{1, 0, 0}, []int64{0, 1, 0}, []int64{0, 0, 1})}
	b := &uda.Algorithm{Set: uda.Cube(3, 4), D: intmat.FromRows(
		[]int64{1, 0, 0}, []int64{0, 1, 0}, []int64{0, 1, 1})}
	c := &uda.Algorithm{Set: uda.IndexSet{Upper: intmat.Vec(4, 4, 5)}, D: a.D.Clone()}
	ka, kb, kc := Canonicalize(a).Key, Canonicalize(b).Key, Canonicalize(c).Key
	if ka == kb || ka == kc || kb == kc {
		t.Fatalf("distinct instances collided: %q %q %q", ka, kb, kc)
	}
}
