package service

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"lodim/internal/cluster"
	"lodim/internal/jobs"
	"lodim/internal/schedule"
	"lodim/internal/slo"
)

// --- reqTimer unit tests ---------------------------------------------

func TestReqTimerEncoding(t *testing.T) {
	tm := newReqTimer("abc")
	if _, ok := tm.duration(stageDecode); ok {
		t.Error("unset stage reported as ran")
	}
	tm.record(stageDecode, 0) // 0ns stage must still register as "ran"
	if d, ok := tm.duration(stageDecode); !ok || d != 0 {
		t.Errorf("0ns stage: d=%v ok=%v", d, ok)
	}
	tm.record(stageSearch, 1500*time.Microsecond)
	tm.record(stageSearch, 500*time.Microsecond) // accumulates
	if d, ok := tm.duration(stageSearch); !ok || d != 2*time.Millisecond {
		t.Errorf("accumulated search stage = %v ok=%v, want 2ms", d, ok)
	}
	h := tm.timingHeader()
	if !strings.Contains(h, "decode;dur=0.000") || !strings.Contains(h, "search;dur=2.000") {
		t.Errorf("timing header = %q", h)
	}
	var nilTimer *reqTimer
	nilTimer.record(stageDecode, time.Second) // must not panic
	if _, ok := nilTimer.duration(stageDecode); ok {
		t.Error("nil timer reported a stage")
	}
}

// --- WritePrometheus invariants --------------------------------------

// scrapeMetrics renders the metrics and parses every sample line into
// name{labels} → value.
func scrapeMetrics(t *testing.T, m *metrics) map[string]float64 {
	t.Helper()
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	out := map[string]float64{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Strip an OpenMetrics exemplar suffix before splitting off the
		// sample value.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// histogramInvariants checks one rendered histogram family: cumulative
// non-decreasing buckets, +Inf bucket equal to _count, and a _sum
// consistent with the recorded durations.
func histogramInvariants(t *testing.T, samples map[string]float64, prefix, labels string, wantCount int64, wantSumS float64) {
	t.Helper()
	sep := ""
	if labels != "" {
		sep = ","
	}
	prev := -1.0
	for _, ub := range latencyBuckets {
		key := fmt.Sprintf("%s_bucket{%s%sle=\"%g\"}", prefix, labels, sep, ub)
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Errorf("bucket %s = %g below previous %g (cumulative le violated)", key, v, prev)
		}
		prev = v
	}
	infKey := fmt.Sprintf("%s_bucket{%s%sle=\"+Inf\"}", prefix, labels, sep)
	inf, ok := samples[infKey]
	if !ok {
		t.Fatalf("missing +Inf bucket %s", infKey)
	}
	if inf < prev {
		t.Errorf("+Inf bucket %g below last finite bucket %g", inf, prev)
	}
	countKey := prefix + "_count"
	sumKey := prefix + "_sum"
	if labels != "" {
		countKey += "{" + labels + "}"
		sumKey += "{" + labels + "}"
	}
	if got := samples[countKey]; got != float64(wantCount) {
		t.Errorf("%s = %g, want %d", countKey, got, wantCount)
	}
	if inf != float64(wantCount) {
		t.Errorf("+Inf bucket %g != count %d", inf, wantCount)
	}
	if got := samples[sumKey]; got < wantSumS-1e-9 || got > wantSumS+1e-9 {
		t.Errorf("%s = %g, want ≈ %g", sumKey, got, wantSumS)
	}
}

func TestWritePrometheusHistograms(t *testing.T) {
	m := &metrics{}
	durations := []time.Duration{500 * time.Microsecond, 30 * time.Millisecond, 3 * time.Second, 20 * time.Second}
	var sum time.Duration
	for _, d := range durations {
		m.observeSearch(d, "")
		m.observeStage(stageDecode, d)
		sum += d
	}
	m.observeStage(stageSearch, time.Millisecond)
	samples := scrapeMetrics(t, m)
	histogramInvariants(t, samples, "mapserve_search_latency_seconds", "", 4, sum.Seconds())
	histogramInvariants(t, samples, "mapserve_stage_duration_seconds", `stage="decode"`, 4, sum.Seconds())
	histogramInvariants(t, samples, "mapserve_stage_duration_seconds", `stage="search"`, 1, 0.001)
	// A 20s observation lands only in +Inf: the last finite bucket must
	// be strictly below it.
	last := samples[fmt.Sprintf("mapserve_search_latency_seconds_bucket{le=\"%g\"}", latencyBuckets[numLatencyBuckets-1])]
	if last != 3 {
		t.Errorf("last finite bucket = %g, want 3 (20s sample must spill to +Inf)", last)
	}
	// Every stage renders a family, even unobserved ones (zero series).
	for _, name := range stageNames {
		key := fmt.Sprintf("mapserve_stage_duration_seconds_count{stage=%q}", name)
		if _, ok := samples[key]; !ok {
			t.Errorf("missing per-stage histogram for %q", name)
		}
	}
}

// TestWritePrometheusExemplars: a traced search observation attaches an
// OpenMetrics exemplar to exactly its bucket line, the snapshot carries
// the same exemplar under the same le key, and the exposition still
// parses with the suffix present.
func TestWritePrometheusExemplars(t *testing.T) {
	m := &metrics{}
	const tid = "deadbeef00000000deadbeef00000000"
	m.observeSearch(40*time.Millisecond, tid)
	m.observeSearch(3*time.Second, "") // untraced → no exemplar
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	var exLines []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, " # {") {
			exLines = append(exLines, line)
		}
	}
	if len(exLines) != 1 {
		t.Fatalf("want exactly 1 exemplar line, got %d: %q", len(exLines), exLines)
	}
	line := exLines[0]
	if !strings.HasPrefix(line, "mapserve_search_latency_seconds_bucket{") {
		t.Errorf("exemplar attached to non-bucket line %q", line)
	}
	if !strings.Contains(line, fmt.Sprintf("# {trace_id=%q} 0.040000000", tid)) {
		t.Errorf("exemplar line %q missing trace id/value", line)
	}

	exs, ok := m.Snapshot()["search_latency_exemplars"].(map[string]any)
	if !ok || len(exs) != 1 {
		t.Fatalf("snapshot search_latency_exemplars = %v", m.Snapshot()["search_latency_exemplars"])
	}
	for bucket, v := range exs {
		ex, ok := v.(map[string]any)
		if !ok {
			t.Fatalf("snapshot exemplar is %T", v)
		}
		if ex["trace_id"] != tid {
			t.Errorf("snapshot exemplar trace_id = %v, want %s", ex["trace_id"], tid)
		}
		if ex["value_s"] != (40 * time.Millisecond).Seconds() {
			t.Errorf("snapshot exemplar value_s = %v, want 0.04", ex["value_s"])
		}
		if !strings.Contains(line, fmt.Sprintf("le=%q", bucket)) {
			t.Errorf("snapshot exemplar bucket %q does not match exemplar line %q", bucket, line)
		}
	}
	scrapeMetrics(t, m) // exposition must stay parseable with the suffix
}

func TestWritePrometheusSearchStatsCounters(t *testing.T) {
	m := &metrics{}
	m.observeSearchStats(nil) // no-op, must not panic
	st := &searchStatsFixture
	m.observeSearchStats(st)
	m.observeSearchStats(st)
	samples := scrapeMetrics(t, m)
	cases := map[string]int64{
		`mapserve_search_pruned_total{rule="orbit"}`:       2 * st.PrunedOrbit,
		`mapserve_search_pruned_total{rule="lower_bound"}`: 2 * st.PrunedLowerBound,
		`mapserve_search_pruned_total{rule="incumbent"}`:   2 * st.PrunedIncumbent,
		"mapserve_search_space_candidates_total":           2 * st.SpaceCandidates,
		"mapserve_search_schedule_candidates_total":        2 * st.ScheduleCandidates,
		"mapserve_search_cost_levels_total":                2 * st.CostLevels,
		"mapserve_search_inner_searches_total":             2 * st.InnerSearches,
	}
	for key, want := range cases {
		if got := samples[key]; got != float64(want) {
			t.Errorf("%s = %g, want %d", key, got, want)
		}
	}
}

// TestSnapshotPrometheusParity: every metric family rendered by
// WritePrometheus has a Snapshot counterpart and vice versa, per the
// explicit correspondence table — so the two surfaces cannot drift
// silently.
func TestSnapshotPrometheusParity(t *testing.T) {
	m := &metrics{}
	// Seed the gated families so both surfaces render them: the hit
	// ratio requires cacheable traffic, the trace counters a tracer, the
	// cache occupancy a wired cache, the peer families a cluster.
	m.cacheHits.Add(3)
	m.cacheMisses.Add(1)
	m.traceCounters = func() (int64, int64, int64) { return 5, 1, 2 }
	m.cacheStats = func() (int64, int64, int64) { return 4, 2, 4096 }
	m.clustered = true
	m.jobStats = func() jobs.Stats { return jobs.Stats{Submitted: 2, Done: 1, Queued: 1} }
	m.sloStats = func() slo.Snapshot {
		return slo.Snapshot{
			BurnRate: 4,
			Healthy:  false,
			Objectives: []slo.ObjectiveSnapshot{{
				Name:            "availability",
				Target:          0.99,
				Window:          "5m",
				FastWindow:      "1m",
				Burn:            []slo.WindowBurn{{Window: "1m", Burn: 6}, {Window: "5m", Burn: 5}},
				BudgetRemaining: -4,
				Events:          100,
				Bad:             5,
				Breached:        true,
				Breaches:        1,
				Captures:        1,
			}},
		}
	}
	m.tenantStats = func() []cluster.TenantUsage {
		return []cluster.TenantUsage{{Tenant: "acme", Requests: 9, CacheHits: 4, SearchMillis: 120, QueueRejections: 1}}
	}
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	families := map[string]bool{}
	for _, match := range regexp.MustCompile(`(?m)^# TYPE (\S+)`).FindAllStringSubmatch(buf.String(), -1) {
		families[match[1]] = true
	}
	snap := m.Snapshot()

	// family → snapshot keys (nil = deliberately Prometheus-only).
	table := map[string][]string{
		"mapserve_requests_total":                   {"map_requests", "pareto_requests", "conflict_requests", "simulate_requests", "verify_requests", "batch_requests", "jobs_requests", "peer_lookup_requests", "peer_fill_requests", "peer_status_requests", "cluster_status_requests"},
		"mapserve_cache_hits_total":                 {"cache_hits"},
		"mapserve_cache_misses_total":               {"cache_misses"},
		"mapserve_verify_cache_hits_total":          {"verify_cache_hits"},
		"mapserve_verify_cache_misses_total":        {"verify_cache_misses"},
		"mapserve_searches_total":                   {"searches"},
		"mapserve_singleflight_deduped_total":       {"singleflight_deduped"},
		"mapserve_rejected_total":                   {"rejected"},
		"mapserve_timeouts_total":                   {"timeouts"},
		"mapserve_failures_total":                   {"failures"},
		"mapserve_inflight_searches":                {"inflight_searches"},
		"mapserve_queued_requests":                  {"queued_requests"},
		"mapserve_search_latency_seconds":           {"search_latency_count", "search_latency_sum_s", "search_latency_buckets", "search_latency_exemplars"},
		"mapserve_search_pruned_total":              {"search_pruned_orbit", "search_pruned_lower_bound", "search_pruned_incumbent"},
		"mapserve_search_space_candidates_total":    {"search_space_candidates"},
		"mapserve_search_schedule_candidates_total": {"search_schedule_candidates"},
		"mapserve_search_cost_levels_total":         {"search_cost_levels"},
		"mapserve_search_inner_searches_total":      {"search_inner_searches"},
		"mapserve_cache_hit_ratio":                  {"cache_hit_ratio"},
		"mapserve_cache_entries":                    {"cache_entries"},
		"mapserve_cache_evictions_total":            {"cache_evictions"},
		"mapserve_cache_bytes_estimate":             {"cache_bytes_estimate"},
		"mapserve_peer_forward_total":               {"peer_forward_hit", "peer_forward_miss", "peer_forward_shared", "peer_forward_error"},
		"mapserve_peer_served_total":                {"peer_served_hit", "peer_served_miss", "peer_served_shared"},
		"mapserve_peer_fills_total":                 {"peer_fills_sent", "peer_fills_received", "peer_fills_rejected", "peer_fills_send_error"},
		"mapserve_trace_spans_total":                {"trace_spans"},
		"mapserve_trace_spans_dropped_total":        {"trace_spans_dropped"},
		"mapserve_traces_total":                     {"traces"},
		"mapserve_jobs_total":                       {"jobs_submitted", "jobs_deduped", "jobs_rejected", "jobs_done", "jobs_failed", "jobs_cancelled", "jobs_resumed", "jobs_requeued"},
		"mapserve_jobs_queued":                      {"jobs_queued"},
		"mapserve_jobs_running":                     {"jobs_running"},
		"mapserve_jobs_forwarded_total":             {"jobs_forwarded"},
		"mapserve_slo_burn_rate":                    {"slo_burn_rates"},
		"mapserve_slo_budget_remaining":             {"slo_budget_remaining"},
		"mapserve_slo_breached":                     {"slo_breached"},
		"mapserve_slo_breaches_total":               {"slo_breaches"},
		"mapserve_slo_captures_total":               {"slo_captures"},
		"mapserve_tenant_requests_total":            {"tenant_requests"},
		"mapserve_tenant_cache_hits_total":          {"tenant_cache_hits"},
		"mapserve_tenant_search_milliseconds_total": {"tenant_search_ms"},
		"mapserve_tenant_queue_rejections_total":    {"tenant_queue_rejections"},
	}
	var stageKeys []string
	for _, name := range stageNames {
		stageKeys = append(stageKeys, "stage_"+name+"_count", "stage_"+name+"_sum_s", "stage_"+name+"_buckets")
	}
	table["mapserve_stage_duration_seconds"] = stageKeys

	for family, keys := range table {
		if !families[family] {
			t.Errorf("table family %s not rendered by WritePrometheus", family)
		}
		for _, key := range keys {
			if _, ok := snap[key]; !ok {
				t.Errorf("family %s: snapshot key %q missing", family, key)
			}
		}
		delete(families, family)
	}
	for family := range families {
		t.Errorf("family %s rendered but absent from the parity table — add its Snapshot keys", family)
	}
	covered := map[string]bool{}
	for _, keys := range table {
		for _, k := range keys {
			covered[k] = true
		}
	}
	for key := range snap {
		if !covered[key] {
			t.Errorf("snapshot key %q has no WritePrometheus family in the parity table", key)
		}
	}
}

// TestSnapshotBucketValueParity: the expvar bucket maps and hit ratio
// carry the same values (cumulative, same le keys) as the Prometheus
// exposition — not just the same families.
func TestSnapshotBucketValueParity(t *testing.T) {
	m := &metrics{}
	for _, d := range []time.Duration{200 * time.Microsecond, 40 * time.Millisecond, 3 * time.Second, 30 * time.Second} {
		m.observeSearch(d, "")
		m.observeStage(stageSearch, d)
	}
	m.cacheHits.Add(7)
	m.cacheMisses.Add(3)
	samples := scrapeMetrics(t, m)
	snap := m.Snapshot()

	checkBuckets := func(snapKey, promPrefix, labels string) {
		t.Helper()
		buckets, ok := snap[snapKey].(map[string]int64)
		if !ok {
			t.Fatalf("snapshot %q is %T, want map[string]int64", snapKey, snap[snapKey])
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		for _, ub := range latencyBuckets {
			le := strconv.FormatFloat(ub, 'g', -1, 64)
			promKey := fmt.Sprintf("%s_bucket{%s%sle=\"%s\"}", promPrefix, labels, sep, le)
			if float64(buckets[le]) != samples[promKey] {
				t.Errorf("%s[%s] = %d, Prometheus %s = %g", snapKey, le, buckets[le], promKey, samples[promKey])
			}
		}
		infKey := fmt.Sprintf("%s_bucket{%s%sle=\"+Inf\"}", promPrefix, labels, sep)
		if float64(buckets["+Inf"]) != samples[infKey] {
			t.Errorf("%s[+Inf] = %d, Prometheus %s = %g", snapKey, buckets["+Inf"], infKey, samples[infKey])
		}
	}
	checkBuckets("search_latency_buckets", "mapserve_search_latency_seconds", "")
	checkBuckets("stage_search_buckets", "mapserve_stage_duration_seconds", `stage="search"`)

	ratio, ok := snap["cache_hit_ratio"].(float64)
	if !ok {
		t.Fatalf("cache_hit_ratio missing from snapshot: %v", snap["cache_hit_ratio"])
	}
	if prom := samples["mapserve_cache_hit_ratio"]; ratio < prom-1e-6 || ratio > prom+1e-6 {
		t.Errorf("cache_hit_ratio %g != Prometheus %g", ratio, prom)
	}
	if _, ok := (&metrics{}).Snapshot()["cache_hit_ratio"]; ok {
		t.Error("cache_hit_ratio rendered with no cacheable traffic (gate lost)")
	}
}

var searchStatsFixture = schedule.SearchStats{
	Engine:             "joint-6.2",
	Workers:            2,
	SpaceCandidates:    20,
	PrunedOrbit:        3,
	PrunedLowerBound:   5,
	PrunedIncumbent:    7,
	InnerSearches:      11,
	ScheduleCandidates: 400,
	CostLevels:         9,
}
