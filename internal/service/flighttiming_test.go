package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// These tests pin the follower-side stage attribution of singleflight
// waits (DESIGN.md §9/§10). A follower's whole wait happens inside
// flights.DoMarked; without the flight mark it would either record
// nothing or book pool-queue time as search time. The two tests cover
// the two sides of the split point.

// TestFollowerWaitAttributedToSearch: a follower that joins a flight
// whose search is already running books its wait as search time, not
// queue time.
func TestFollowerWaitAttributedToSearch(t *testing.T) {
	s := New(Config{Pool: 2, SearchWorkers: 1})
	defer s.Close()

	joined := make(chan struct{})
	orig := s.flights.onJoin
	s.flights.onJoin = func() { orig(); close(joined) }

	entered := make(chan struct{})
	release := make(chan struct{})
	s.searchJoint = func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error) {
		close(entered)
		<-release
		return schedule.FindJointMappingContext(ctx, algo, dims, opts)
	}
	req := &MapRequest{Algorithm: "matmul", Sizes: []int64{2}, Dims: 1}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, status, err := s.Map(context.Background(), req); err != nil || status != CacheMiss {
			t.Errorf("leader: status = %v, err = %v", status, err)
		}
	}()
	<-entered // the leader's search is now running

	followerTimer := newReqTimer("follower")
	fctx := withTimer(context.Background(), followerTimer)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, status, err := s.Map(fctx, req); err != nil || status != CacheShared {
			t.Errorf("follower: status = %v, err = %v", status, err)
		}
	}()
	<-joined
	time.Sleep(150 * time.Millisecond) // the follower waits inside a running search
	close(release)
	wg.Wait()

	if d, ok := followerTimer.duration(stageSearch); !ok || d < 100*time.Millisecond {
		t.Errorf("follower search stage = %v (recorded %v), want ≥ 100ms", d, ok)
	}
	if d, ok := followerTimer.duration(stageQueue); ok && d > 50*time.Millisecond {
		t.Errorf("follower queue stage = %v: time inside a running search was booked as queue", d)
	}
}

// TestFollowerWaitAttributedToQueue: a follower that joins while the
// flight is still waiting for a pool slot books that wait as queue
// time — the search stage must not absorb time the engine never saw.
func TestFollowerWaitAttributedToQueue(t *testing.T) {
	s := New(Config{Pool: 1, SearchWorkers: 1})
	defer s.Close()

	joined := make(chan struct{})
	orig := s.flights.onJoin
	s.flights.onJoin = func() { orig(); close(joined) }

	occupying := make(chan struct{})
	release := make(chan struct{})
	s.searchJoint = func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error) {
		if opts.Schedule.MaxCost == 0 { // the slot occupier's search
			close(occupying)
			<-release
		}
		return schedule.FindJointMappingContext(ctx, algo, dims, opts)
	}
	// Distinct MaxCost values give distinct flight keys for one problem.
	occupier := &MapRequest{Algorithm: "matmul", Sizes: []int64{2}, Dims: 1}
	contested := &MapRequest{Algorithm: "matmul", Sizes: []int64{2}, Dims: 1, MaxCost: 1000}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := s.Map(context.Background(), occupier); err != nil {
			t.Errorf("occupier: %v", err)
		}
	}()
	<-occupying // the only pool slot is now held

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, status, err := s.Map(context.Background(), contested); err != nil || status != CacheMiss {
			t.Errorf("leader: status = %v, err = %v", status, err)
		}
	}()
	// Wait until the contested flight's leader is queued for the slot.
	for start := time.Now(); s.met.queued.Load() == 0; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("contested leader never queued for the pool slot")
		}
		time.Sleep(time.Millisecond)
	}

	followerTimer := newReqTimer("follower")
	fctx := withTimer(context.Background(), followerTimer)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, status, err := s.Map(fctx, contested); err != nil || status != CacheShared {
			t.Errorf("follower: status = %v, err = %v", status, err)
		}
	}()
	<-joined
	time.Sleep(150 * time.Millisecond) // the follower waits behind the pool queue
	close(release)
	wg.Wait()

	if d, ok := followerTimer.duration(stageQueue); !ok || d < 100*time.Millisecond {
		t.Errorf("follower queue stage = %v (recorded %v), want ≥ 100ms", d, ok)
	}
	if d, ok := followerTimer.duration(stageSearch); ok && d > 100*time.Millisecond {
		t.Errorf("follower search stage = %v: pool-queue wait was double-counted into search", d)
	}
}
