package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lodim/internal/jobs"
	"lodim/internal/schedule"
	"lodim/internal/uda"
)

// End-to-end coverage of the async job tier over HTTP: lifecycle and
// byte-identical result replay, event streaming, dedup across axis
// permutations, restart resume from the spool, queue-full back-
// pressure, and cancellation releasing the worker slot.

func newHTTPServer(svc *Service) *httptest.Server {
	return httptest.NewServer(NewHandler(svc))
}

func jobsTestConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		Pool:          2,
		SearchWorkers: 1,
		Jobs:          &JobsConfig{Dir: dir},
	}
}

func httpReq(t *testing.T, method, url string, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func decodeJobResponse(t *testing.T, data []byte) *JobResponse {
	t.Helper()
	var jr JobResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatalf("decoding job response %q: %v", data, err)
	}
	return &jr
}

// waitJobHTTP polls GET /v1/jobs/{id} until the job reaches want.
func waitJobHTTP(t *testing.T, base, id string, want jobs.State) *JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _, body := httpReq(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if status != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", id, status, body)
		}
		jr := decodeJobResponse(t, body)
		if jr.State == want {
			return jr
		}
		if jr.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s state %q, want %q (error=%q)", id, jr.State, want, jr.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitMgrState polls the in-process manager until the job reaches want
// — used where the test needs the state before issuing the next HTTP
// request (e.g. restart while running).
func waitMgrState(t *testing.T, svc *Service, id string, want jobs.State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		sn, ok := svc.jobsMgr.Get(id)
		if ok && sn.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %q (now %q, found=%v)", id, want, sn.State, ok)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobsE2ELifecycle: submit → queued → running → done over HTTP,
// events stream the full transition history, and the stored result is
// byte-identical to the synchronous /v1/map response for the same
// problem.
func TestJobsE2ELifecycle(t *testing.T) {
	_, srv := newTestServer(t, jobsTestConfig(t, t.TempDir()))

	status, _, body := postJSON(t, srv.URL+"/v1/jobs", `{"map":`+e2eBody+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, body)
	}
	jr := decodeJobResponse(t, body)
	if jr.ID == "" || jr.Kind != JobKindMap {
		t.Fatalf("submit response %+v", jr)
	}
	if jr.StatusURL != "/v1/jobs/"+jr.ID || jr.EventsURL != "/v1/jobs/"+jr.ID+"/events" {
		t.Fatalf("endpoint URLs: %+v", jr)
	}

	// The events stream replays history and follows the job to its
	// terminal state, one JSON object per line.
	resp, err := http.Get(srv.URL + jr.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var states []jobs.State
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		if ev.Seq != len(states) {
			t.Fatalf("event seq %d at position %d", ev.Seq, len(states))
		}
		states = append(states, ev.State)
	}
	want := []jobs.State{jobs.StateQueued, jobs.StateRunning, jobs.StateDone}
	if len(states) != len(want) {
		t.Fatalf("event states %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("event states %v, want %v", states, want)
		}
	}

	final := waitJobHTTP(t, srv.URL, jr.ID, jobs.StateDone)
	if final.ResultURL != "/v1/jobs/"+jr.ID+"/result" {
		t.Fatalf("done job has result_url %q", final.ResultURL)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", final.Attempts)
	}

	status, hdr, jobResult := httpReq(t, http.MethodGet, srv.URL+final.ResultURL, "")
	if status != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("result status %d content-type %q", status, hdr.Get("Content-Type"))
	}
	status, _, syncBody := postJSON(t, srv.URL+"/v1/map", e2eBody)
	if status != http.StatusOK {
		t.Fatalf("sync map status %d", status)
	}
	if string(jobResult) != string(syncBody) {
		t.Fatalf("job result differs from synchronous response:\njob:  %s\nsync: %s", jobResult, syncBody)
	}
}

// TestJobsE2EDedup: re-submitting the same problem — verbatim or in a
// permuted axis order — returns the same job ID with deduped set, and
// runs the engine only once.
func TestJobsE2EDedup(t *testing.T) {
	svc, srv := newTestServer(t, jobsTestConfig(t, t.TempDir()))
	var runs atomic.Int32
	real := svc.searchJoint
	svc.searchJoint = func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error) {
		runs.Add(1)
		return real(ctx, algo, dims, opts)
	}

	status, _, body := postJSON(t, srv.URL+"/v1/jobs", `{"map":`+e2eBody+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, body)
	}
	first := decodeJobResponse(t, body)
	waitJobHTTP(t, srv.URL, first.ID, jobs.StateDone)

	for _, variant := range []string{e2eBody, e2ePerm} {
		status, _, body := postJSON(t, srv.URL+"/v1/jobs", `{"map":`+variant+`}`)
		if status != http.StatusAccepted {
			t.Fatalf("resubmit status %d: %s", status, body)
		}
		jr := decodeJobResponse(t, body)
		if jr.ID != first.ID {
			t.Fatalf("resubmission of %s got job %s, want %s", variant, jr.ID, first.ID)
		}
		if !jr.Deduped {
			t.Fatalf("resubmission not marked deduped: %+v", jr)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("engine ran %d times, want 1", got)
	}
	st := svc.JobStats()
	if st.Submitted != 1 || st.Deduped != 2 {
		t.Fatalf("stats %+v, want Submitted=1 Deduped=2", st)
	}
}

// TestJobsE2ERestartResume: a job interrupted mid-run by a shutdown is
// re-queued from the spool by the next Service on the same directory,
// keeps its job ID, and its eventual result is byte-identical to the
// synchronous response.
func TestJobsE2ERestartResume(t *testing.T) {
	dir := t.TempDir()
	cfg := jobsTestConfig(t, dir)

	svc1 := New(cfg)
	srv1 := newHTTPServer(svc1)
	// The search parks until the job's context is cancelled, so the job
	// is mid-run when the shutdown interrupts it.
	svc1.searchJoint = func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}

	status, _, body := postJSON(t, srv1.URL+"/v1/jobs", `{"map":`+e2eBody+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, body)
	}
	id := decodeJobResponse(t, body).ID
	waitMgrState(t, svc1, id, jobs.StateRunning)
	srv1.Close()
	svc1.Close()

	// The restarted service resumes the spooled job and completes it.
	svc2 := New(cfg)
	srv2 := newHTTPServer(svc2)
	final := waitJobHTTP(t, srv2.URL, id, jobs.StateDone)
	if final.ID != id {
		t.Fatalf("resumed job ID %s, want %s", final.ID, id)
	}
	resumed := false
	for _, ev := range final.Events {
		if strings.Contains(ev.Detail, "resumed") {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("no resume event in %+v", final.Events)
	}

	_, _, jobResult := httpReq(t, http.MethodGet, srv2.URL+"/v1/jobs/"+id+"/result", "")
	status, _, syncBody := postJSON(t, srv2.URL+"/v1/map", e2eBody)
	if status != http.StatusOK {
		t.Fatalf("sync map status %d", status)
	}
	if string(jobResult) != string(syncBody) {
		t.Fatalf("resumed job result differs from synchronous response:\njob:  %s\nsync: %s", jobResult, syncBody)
	}
	if st := svc2.JobStats(); st.Resumed != 1 {
		t.Fatalf("stats %+v, want Resumed=1", st)
	}
	attemptsBefore := final.Attempts
	srv2.Close()
	svc2.Close()

	// One more restart, this time with the job already done: the result
	// is now replayed from the spool rather than re-computed, and must
	// still be byte-identical to the synchronous body (the spool keeps
	// result bytes opaque so its own encoder can't reformat them).
	svc3 := New(cfg)
	srv3 := newHTTPServer(svc3)
	defer func() {
		srv3.Close()
		svc3.Close()
	}()
	final = waitJobHTTP(t, srv3.URL, id, jobs.StateDone)
	if got := final.Attempts; got != attemptsBefore {
		t.Fatalf("done job re-ran after restart: attempts = %d, want %d", got, attemptsBefore)
	}
	_, _, jobResult = httpReq(t, http.MethodGet, srv3.URL+"/v1/jobs/"+id+"/result", "")
	if string(jobResult) != string(syncBody) {
		t.Fatalf("spool-replayed result differs from synchronous response:\njob:  %s\nsync: %s", jobResult, syncBody)
	}
}

// TestJobsE2EQueueFull: with one worker and a per-tenant queue bound
// of one, the third distinct submission answers 429 with Retry-After,
// and is admitted once the backlog drains.
func TestJobsE2EQueueFull(t *testing.T) {
	cfg := jobsTestConfig(t, t.TempDir())
	cfg.Jobs.Workers = 1
	cfg.Jobs.PerTenantQueue = 1
	svc, srv := newTestServer(t, cfg)

	gate := make(chan struct{})
	real := svc.searchJoint
	svc.searchJoint = func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return real(ctx, algo, dims, opts)
	}

	bodies := []string{
		`{"map":{"bounds":[2,3,4],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1}}`,
		`{"map":{"bounds":[3,3,3],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1}}`,
		`{"map":{"bounds":[4,4,4],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1}}`,
	}
	status, _, body := postJSON(t, srv.URL+"/v1/jobs", bodies[0])
	if status != http.StatusAccepted {
		t.Fatalf("submit A status %d: %s", status, body)
	}
	idA := decodeJobResponse(t, body).ID
	waitMgrState(t, svc, idA, jobs.StateRunning) // worker occupied, queue empty

	status, _, body = postJSON(t, srv.URL+"/v1/jobs", bodies[1])
	if status != http.StatusAccepted {
		t.Fatalf("submit B status %d: %s", status, body)
	}
	idB := decodeJobResponse(t, body).ID

	status, hdr, body := postJSON(t, srv.URL+"/v1/jobs", bodies[2])
	if status != http.StatusTooManyRequests {
		t.Fatalf("submit C status %d, want 429: %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if st := svc.JobStats(); st.Rejected != 1 {
		t.Fatalf("stats %+v, want Rejected=1", st)
	}

	close(gate)
	waitJobHTTP(t, srv.URL, idA, jobs.StateDone)
	waitJobHTTP(t, srv.URL, idB, jobs.StateDone)
	status, _, body = postJSON(t, srv.URL+"/v1/jobs", bodies[2])
	if status != http.StatusAccepted {
		t.Fatalf("resubmit C after drain: status %d: %s", status, body)
	}
	waitJobHTTP(t, srv.URL, decodeJobResponse(t, body).ID, jobs.StateDone)
}

// TestJobsE2ECancel: cancelling a running job interrupts its engine
// run, settles it as cancelled, and releases the worker slot for the
// next job. Cancelling it again answers 409; an unknown ID answers
// 404.
func TestJobsE2ECancel(t *testing.T) {
	cfg := jobsTestConfig(t, t.TempDir())
	cfg.Jobs.Workers = 1
	svc, srv := newTestServer(t, cfg)

	var calls atomic.Int32
	real := svc.searchJoint
	entered := make(chan struct{})
	svc.searchJoint = func(ctx context.Context, algo *uda.Algorithm, dims int, opts *schedule.SpaceOptions) (*schedule.JointResult, error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return real(ctx, algo, dims, opts)
	}

	status, _, body := postJSON(t, srv.URL+"/v1/jobs", `{"map":`+e2eBody+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, body)
	}
	id := decodeJobResponse(t, body).ID
	<-entered

	status, _, body = httpReq(t, http.MethodDelete, srv.URL+"/v1/jobs/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("cancel status %d: %s", status, body)
	}
	waitJobHTTP(t, srv.URL, id, jobs.StateCancelled)

	status, _, body = httpReq(t, http.MethodDelete, srv.URL+"/v1/jobs/"+id, "")
	if status != http.StatusConflict {
		t.Fatalf("cancel terminal job: status %d, want 409: %s", status, body)
	}
	status, _, _ = httpReq(t, http.MethodGet, srv.URL+"/v1/jobs/j0123456789abcdef", "")
	if status != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", status)
	}
	status, _, _ = httpReq(t, http.MethodGet, srv.URL+"/v1/jobs/not-a-job-id", "")
	if status != http.StatusBadRequest {
		t.Fatalf("malformed job id status %d, want 400", status)
	}

	// The freed slot runs the next job to completion.
	status, _, body = postJSON(t, srv.URL+"/v1/jobs", `{"map":{"bounds":[3,3,3],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1}}`)
	if status != http.StatusAccepted {
		t.Fatalf("second submit status %d: %s", status, body)
	}
	waitJobHTTP(t, srv.URL, decodeJobResponse(t, body).ID, jobs.StateDone)
}

// TestJobsE2EDisabled: a service without a jobs spool answers 404 on
// the job endpoints rather than failing obscurely.
func TestJobsE2EDisabled(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 1})
	status, _, _ := postJSON(t, srv.URL+"/v1/jobs", `{"map":`+e2eBody+`}`)
	if status != http.StatusNotFound {
		t.Fatalf("submit on disabled tier: status %d, want 404", status)
	}
	status, _, _ = httpReq(t, http.MethodGet, srv.URL+"/v1/jobs/j0123456789abcdef", "")
	if status != http.StatusNotFound {
		t.Fatalf("get on disabled tier: status %d, want 404", status)
	}
}
