package service

// Fleet status aggregation: GET /peer/v1/status serves this node's
// observability snapshot; GET /v1/cluster/status fans out to every
// ring member in parallel under one deadline budget and merges the
// answers into per-node reports plus a fleet-wide view — summed
// counters, cross-node SLO verdicts, and a merged tenant top-K. A
// single-node service serves both too, reporting a one-node fleet.

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"lodim/internal/cluster"
	"lodim/internal/trace"
)

// statusFanoutTimeout bounds the whole peer fan-out. Status calls are
// cheap snapshot reads; a peer that cannot answer in 3s is reported
// unreachable rather than holding the fleet page.
const statusFanoutTimeout = 3 * time.Second

// tenantTopK bounds the tenant list in node and fleet views.
const tenantTopK = 10

// localNodeID labels a non-clustered node in status output.
const localNodeID = "local"

// nodeID is this node's identity in status output.
func (s *Service) nodeID() string {
	if s.clu != nil {
		return s.clu.self.ID
	}
	return localNodeID
}

// nodeStatus builds this node's wire snapshot.
func (s *Service) nodeStatus() *cluster.NodeStatus {
	st := s.Status()
	ns := &cluster.NodeStatus{
		Node:          s.nodeID(),
		Status:        st.Status,
		UptimeSeconds: st.UptimeSeconds,
		Requests:      s.met.requestsTotal(),
		CacheHits:     s.met.cacheHits.Load(),
		CacheMisses:   s.met.cacheMisses.Load(),
		Searches:      s.met.searches.Load(),
		Rejected:      s.met.rejected.Load(),
		Timeouts:      s.met.timeouts.Load(),
		Failures:      s.met.failures.Load(),
		SLO:           st.SLO,
		Tenants:       s.tenants.topK(tenantTopK),
	}
	if s.clu != nil {
		cs := s.clu.status()
		ns.Ring = &cluster.RingView{
			Self:    cs.Self,
			Members: cs.Members,
			VNodes:  cs.VNodes,
			Peers:   cs.Peers,
		}
	}
	return ns
}

// handlePeerStatus serves GET /peer/v1/status (instrumented as
// "peer_status"; hop-guarded like every peer leg).
func (s *Service) handlePeerStatus(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.nodeStatus())
}

// NodeReport is one node's entry in the cluster status response:
// either a snapshot or the error that kept it from answering.
type NodeReport struct {
	Node   string              `json:"node"`
	Err    string              `json:"error,omitempty"`
	Status *cluster.NodeStatus `json:"status,omitempty"`
}

// FleetSLO is one objective's cross-node verdict.
type FleetSLO struct {
	Objective     string   `json:"objective"`
	Breached      bool     `json:"breached"`
	BreachedNodes []string `json:"breached_nodes,omitempty"`
	MaxFastBurn   float64  `json:"max_fast_burn"`
	MaxSlowBurn   float64  `json:"max_slow_burn"`
}

// FleetStatus is the merged fleet-wide view.
type FleetStatus struct {
	Status      string `json:"status"` // "ok" or "degraded"
	Nodes       int    `json:"nodes"`
	Healthy     int    `json:"healthy"`
	Degraded    int    `json:"degraded"`
	Unreachable int    `json:"unreachable"`

	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Searches    int64 `json:"searches"`
	Rejected    int64 `json:"rejected"`
	Failures    int64 `json:"failures"`

	SLO     []FleetSLO            `json:"slo,omitempty"`
	Tenants []cluster.TenantUsage `json:"tenants,omitempty"`
}

// ClusterStatusResponse is the GET /v1/cluster/status payload.
type ClusterStatusResponse struct {
	Fleet FleetStatus  `json:"fleet"`
	Nodes []NodeReport `json:"nodes"`
}

// handleClusterStatus serves GET /v1/cluster/status (instrumented as
// "cluster_status").
func (s *Service) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), statusFanoutTimeout)
	defer cancel()
	var tp string
	if sp := trace.FromContext(r.Context()); sp != nil {
		tp = trace.Traceparent(sp.TraceID(), sp.IDHex())
	}
	writeJSON(w, http.StatusOK, s.clusterStatus(ctx, tp))
}

// clusterStatus gathers every node's snapshot (self locally, peers in
// parallel over the status leg) and merges the fleet view.
func (s *Service) clusterStatus(ctx context.Context, traceparent string) *ClusterStatusResponse {
	reports := []NodeReport{{Node: s.nodeID(), Status: s.nodeStatus()}}
	if s.clu != nil {
		var peers []cluster.Member
		for _, m := range s.clu.ring.Members() {
			if m.ID != s.clu.self.ID {
				peers = append(peers, m)
			}
		}
		peerReports := make([]NodeReport, len(peers))
		var wg sync.WaitGroup
		for i, m := range peers {
			wg.Add(1)
			go func(i int, m cluster.Member) {
				defer wg.Done()
				ns, err := s.clu.client.Status(ctx, m, traceparent)
				if err != nil {
					peerReports[i] = NodeReport{Node: m.ID, Err: err.Error()}
					return
				}
				peerReports[i] = NodeReport{Node: m.ID, Status: ns}
			}(i, m)
		}
		wg.Wait()
		reports = append(reports, peerReports...)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Node < reports[j].Node })
	return &ClusterStatusResponse{Fleet: mergeFleet(reports), Nodes: reports}
}

// mergeFleet folds per-node reports into the fleet-wide view.
func mergeFleet(reports []NodeReport) FleetStatus {
	fleet := FleetStatus{Status: "ok", Nodes: len(reports)}
	sloByName := map[string]*FleetSLO{}
	var sloOrder []string
	tenantAgg := map[string]cluster.TenantUsage{}
	for _, rep := range reports {
		if rep.Status == nil {
			fleet.Unreachable++
			continue
		}
		ns := rep.Status
		switch ns.Status {
		case "ok":
			fleet.Healthy++
		default: // degraded or shutting_down
			fleet.Degraded++
		}
		fleet.Requests += ns.Requests
		fleet.CacheHits += ns.CacheHits
		fleet.CacheMisses += ns.CacheMisses
		fleet.Searches += ns.Searches
		fleet.Rejected += ns.Rejected
		fleet.Failures += ns.Failures
		if ns.SLO != nil {
			for _, ob := range ns.SLO.Objectives {
				fs, ok := sloByName[ob.Name]
				if !ok {
					fs = &FleetSLO{Objective: ob.Name}
					sloByName[ob.Name] = fs
					sloOrder = append(sloOrder, ob.Name)
				}
				if ob.Breached {
					fs.Breached = true
					fs.BreachedNodes = append(fs.BreachedNodes, rep.Node)
				}
				for _, wb := range ob.Burn {
					switch wb.Window {
					case ob.FastWindow:
						fs.MaxFastBurn = max(fs.MaxFastBurn, wb.Burn)
					case ob.Window:
						fs.MaxSlowBurn = max(fs.MaxSlowBurn, wb.Burn)
					}
				}
			}
		}
		for _, t := range ns.Tenants {
			agg := tenantAgg[t.Tenant]
			agg.Tenant = t.Tenant
			agg.Requests += t.Requests
			agg.CacheHits += t.CacheHits
			agg.SearchMillis += t.SearchMillis
			agg.QueueRejections += t.QueueRejections
			tenantAgg[t.Tenant] = agg
		}
	}
	for _, name := range sloOrder {
		fleet.SLO = append(fleet.SLO, *sloByName[name])
	}
	for _, t := range tenantAgg {
		fleet.Tenants = append(fleet.Tenants, t)
	}
	sort.Slice(fleet.Tenants, func(i, j int) bool {
		if fleet.Tenants[i].Requests != fleet.Tenants[j].Requests {
			return fleet.Tenants[i].Requests > fleet.Tenants[j].Requests
		}
		return fleet.Tenants[i].Tenant < fleet.Tenants[j].Tenant
	})
	if len(fleet.Tenants) > tenantTopK {
		fleet.Tenants = fleet.Tenants[:tenantTopK]
	}
	if fleet.Degraded > 0 || fleet.Unreachable > 0 {
		fleet.Status = "degraded"
	}
	return fleet
}
