package service

// SLO wiring: the slo.Engine observes every sync-endpoint outcome from
// the instrument wrapper; breach events become exactly one structured
// alert line, a "degraded" /healthz, and (cooldown permitting) an
// evidence capture — a short CPU profile plus a slowest-trace flush —
// written under the configured evidence directory.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"lodim/internal/slo"
	"lodim/internal/trace"
)

// SLOConfig configures the rolling-window SLO engine.
type SLOConfig struct {
	// Availability, when in (0, 1), enables the availability objective:
	// a request is bad when it ends ≥ 500.
	Availability float64
	// LatencyP99, when > 0, enables the latency objective at a 0.99
	// target: a request is bad when its total duration exceeds the
	// threshold.
	LatencyP99 time.Duration
	// Window is the slow evaluation window ("5m", "30m", "6h"; ""
	// selects 5m). The fast window is one step shorter.
	Window string
	// BurnRate, MinEvents and CaptureCooldown tune alerting; zero
	// values select the slo package defaults (4, 20, 10m).
	BurnRate        float64
	MinEvents       int64
	CaptureCooldown time.Duration
	// EvidenceDir, when non-empty, receives one subdirectory per
	// capture (meta.json, cpu.pprof, traces/). Empty disables captures;
	// alerts and the degraded health flip still happen.
	EvidenceDir string
	// ProfileDuration bounds the capture's CPU profile (0 selects 1s).
	ProfileDuration time.Duration
	// Now injects the engine clock for tests.
	Now func() time.Time
}

// enabled reports whether the config asks for at least one objective.
func (c *SLOConfig) enabled() bool {
	return c != nil && (c.Availability > 0 || c.LatencyP99 > 0)
}

// engineConfig translates the service-facing knobs into slo.Config.
func (c *SLOConfig) engineConfig() slo.Config {
	var objs []slo.Objective
	if c.Availability > 0 {
		objs = append(objs, slo.Objective{Name: "availability", Target: c.Availability})
	}
	if c.LatencyP99 > 0 {
		objs = append(objs, slo.Objective{Name: "latency-p99", Target: 0.99, Threshold: c.LatencyP99})
	}
	return slo.Config{
		Objectives:      objs,
		Window:          c.Window,
		BurnRate:        c.BurnRate,
		MinEvents:       c.MinEvents,
		CaptureCooldown: c.CaptureCooldown,
		Now:             c.Now,
	}
}

// ValidateSLOConfig builds the engine once and discards it — the
// pre-New check cmd/mapserve runs at flag-parse time.
func ValidateSLOConfig(c *SLOConfig) error {
	if !c.enabled() {
		return nil
	}
	_, err := slo.NewEngine(c.engineConfig())
	return err
}

// sloState is the per-service SLO glue.
type sloState struct {
	svc         *Service
	eng         *slo.Engine
	evidenceDir string
	profileDur  time.Duration

	breachedObjectives atomic.Int64 // currently-breached count; > 0 → degraded
	captureSeq         atomic.Int64
}

func newSLOState(s *Service, cfg *SLOConfig) (*sloState, error) {
	eng, err := slo.NewEngine(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	profileDur := cfg.ProfileDuration
	if profileDur <= 0 {
		profileDur = time.Second
	}
	return &sloState{svc: s, eng: eng, evidenceDir: cfg.EvidenceDir, profileDur: profileDur}, nil
}

// observe feeds one finished sync request into the engine and handles
// any transitions it produced.
func (st *sloState) observe(status int, total time.Duration) {
	for _, ev := range st.eng.Observe(status >= 500, total) {
		st.handle(ev)
	}
}

// handle turns one engine transition into its operational effects.
// Exactly one log line per transition.
func (st *sloState) handle(ev slo.Event) {
	logger := st.svc.cfg.Logger
	if ev.Recovered {
		st.breachedObjectives.Add(-1)
		if logger != nil {
			logger.Info("slo recovered",
				slog.String("objective", ev.Objective),
				slog.String("fast_window", ev.FastWindow),
				slog.Float64("fast_burn", ev.FastBurn),
				slog.Float64("slow_burn", ev.SlowBurn))
		}
		return
	}
	st.breachedObjectives.Add(1)
	capturing := ev.Capture && st.evidenceDir != ""
	if logger != nil {
		logger.Warn("slo breach",
			slog.String("objective", ev.Objective),
			slog.String("window", ev.Window),
			slog.String("fast_window", ev.FastWindow),
			slog.Float64("fast_burn", ev.FastBurn),
			slog.Float64("slow_burn", ev.SlowBurn),
			slog.Float64("burn_rate_threshold", ev.BurnRate),
			slog.Bool("capture", capturing))
	}
	if capturing {
		// The capture runs off the request path, registered with begin()
		// so Close drains it like any in-flight work.
		done, err := st.svc.begin()
		if err != nil {
			return
		}
		go func() {
			defer done()
			st.capture(ev)
		}()
	}
}

// profileActive serializes CPU profiling process-wide:
// pprof.StartCPUProfile is global, and two engines (or two breaching
// objectives) must not fight over it.
var profileActive atomic.Bool

// capture writes one evidence bundle: the breach event, a CPU profile,
// and a fresh slowest-trace flush of the live registry. All errors are
// swallowed — evidence gathering must never hurt the service.
func (st *sloState) capture(ev slo.Event) {
	seq := st.captureSeq.Add(1)
	dir := filepath.Join(st.evidenceDir, fmt.Sprintf("%s-%03d", ev.Objective, seq))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	if meta, err := json.MarshalIndent(map[string]any{
		"objective":   ev.Objective,
		"window":      ev.Window,
		"fast_window": ev.FastWindow,
		"fast_burn":   ev.FastBurn,
		"slow_burn":   ev.SlowBurn,
		"captured_at": time.Now().UTC().Format(time.RFC3339Nano),
	}, "", " "); err == nil {
		os.WriteFile(filepath.Join(dir, "meta.json"), append(meta, '\n'), 0o644)
	}
	if profileActive.CompareAndSwap(false, true) {
		if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
			if pprof.StartCPUProfile(f) == nil {
				time.Sleep(st.profileDur)
				pprof.StopCPUProfile()
			}
			f.Close()
		}
		profileActive.Store(false)
	}
	if reg := st.svc.traces; reg != nil {
		if ds, err := trace.NewDirSinkLimited(filepath.Join(dir, "traces"), 4, 32); err == nil {
			for _, tr := range reg.Traces() {
				ds.Add(tr)
			}
		}
	}
	if logger := st.svc.cfg.Logger; logger != nil {
		logger.Info("slo evidence captured",
			slog.String("objective", ev.Objective),
			slog.String("dir", dir))
	}
}

// traceExemplars adapts the metrics exemplar table to the trace
// inspector's type — the /debug/requests click-through.
func (s *Service) traceExemplars() []trace.Exemplar {
	exs := s.met.exemplars()
	out := make([]trace.Exemplar, len(exs))
	for i, ex := range exs {
		out[i] = trace.Exemplar{
			Bucket:  ex.Bucket,
			TraceID: ex.TraceID,
			ValueMS: ex.Value * 1e3,
			UnixMS:  ex.UnixMS,
		}
	}
	return out
}
