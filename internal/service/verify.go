package service

import (
	"context"
	"strconv"
	"strings"
	"time"

	"lodim/internal/intmat"
	"lodim/internal/uda"
	"lodim/internal/verify"
)

// The verify endpoint certifies a caller-supplied (S, Π) mapping
// through the independent verification engine. Certificates are cached
// under the same canonical axis-permutation keys as map results: the
// engine runs in canonical coordinates, the canonical certificate is
// cached, and each response translates it into the caller's axis
// order — so permuted variants of one verification cost one engine run.

// VerifyRequest asks for a certificate on the mapping (S, Pi) of an
// algorithm (named from the library, or inline as Bounds +
// Dependencies).
type VerifyRequest struct {
	Algorithm    string    `json:"algorithm,omitempty"`
	Sizes        []int64   `json:"sizes,omitempty"`
	Bounds       []int64   `json:"bounds,omitempty"`
	Dependencies [][]int64 `json:"dependencies,omitempty"`
	S            [][]int64 `json:"s,omitempty"`
	Pi           []int64   `json:"pi"`
	// Simulate additionally replays the mapping on the systolic
	// simulator (bounded by the service's index-set ceiling).
	Simulate bool `json:"simulate,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds
	// (0 = server default; capped by the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// VerifyResponse carries the full certificate in the request's axis
// order. Valid duplicates the certificate's verdict at the top level so
// callers can branch without walking the witness structure.
type VerifyResponse struct {
	Valid         bool                `json:"valid"`
	FailedWitness string              `json:"failed_witness,omitempty"`
	Certificate   *verify.Certificate `json:"certificate"`
	CanonicalKey  string              `json:"canonical_key"`
}

// verifyCanon is a validated, canonicalized verify request: everything
// VerifyMapping (and the job tier's identity derivation) needs beyond
// the raw request.
type verifyCanon struct {
	algo    *uda.Algorithm
	canon   *Canonical
	canonS  *intmat.Matrix
	canonPi intmat.Vector
	colPerm []int
	key     string
}

// prepareVerify validates a verify request's shapes and derives its
// canonical coordinates and cache key — the single source of identity
// for both the synchronous endpoint and the async job tier.
func (s *Service) prepareVerify(req *VerifyRequest) (*verifyCanon, error) {
	algo, err := algoFromRequest(req.Algorithm, req.Sizes, req.Bounds, req.Dependencies)
	if err != nil {
		return nil, err
	}
	n := algo.Dim()
	sm := intmat.New(0, n)
	if len(req.S) > 0 {
		for i, r := range req.S {
			if len(r) != n {
				return nil, badRequest("service: S row %d has %d entries, want %d", i+1, len(r), n)
			}
		}
		sm = intmat.FromRows(req.S...)
	}
	if len(req.Pi) != n {
		return nil, badRequest("service: Π has %d entries, want %d", len(req.Pi), n)
	}
	if req.Simulate && algo.Set.SizeExceeds(maxIndexPoints) {
		return nil, badRequest("service: index set exceeds the simulation limit of %d points", maxIndexPoints)
	}
	canon := Canonicalize(algo)
	canonS := canon.MatrixToCanonical(sm)
	canonPi := canon.VectorToCanonical(req.Pi)
	return &verifyCanon{
		algo:    algo,
		canon:   canon,
		canonS:  canonS,
		canonPi: canonPi,
		// Canonical column j of D is request column colPerm[j]; computed
		// here because only the request still knows its column order.
		colPerm: canon.DepColumnPerm(algo.D),
		key:     verifyCacheKey(canon.Key, canonS, canonPi, req.Simulate),
	}, nil
}

// VerifyMapping certifies a mapping, serving repeated (and axis-
// permuted) queries from the canonical certificate cache.
func (s *Service) VerifyMapping(ctx context.Context, req *VerifyRequest) (*VerifyResponse, CacheStatus, error) {
	done, err := s.begin()
	if err != nil {
		return nil, "", err
	}
	defer done()

	canonStart := time.Now()
	vc, err := s.prepareVerify(req)
	if err != nil {
		return nil, "", err
	}
	canon, colPerm, key := vc.canon, vc.colPerm, vc.key
	recordStage(ctx, stageCanonicalize, canonStart)

	if v, ok := s.cache.Get(key); ok {
		s.met.verifyCacheHits.Add(1)
		return s.verifyResponse(ctx, canon, colPerm, key, v.(*verify.Certificate)), CacheHit, nil
	}

	queueStart := time.Now()
	release, err := s.acquire(ctx)
	recordStage(ctx, stageQueue, queueStart)
	if err != nil {
		return nil, "", err
	}
	defer release()
	if v, ok := s.cache.Get(key); ok { // landed while we waited for a slot
		s.met.verifyCacheHits.Add(1)
		return s.verifyResponse(ctx, canon, colPerm, key, v.(*verify.Certificate)), CacheHit, nil
	}
	s.met.verifyCacheMisses.Add(1)

	opts := &verify.Options{Simulate: req.Simulate}
	certStart := time.Now()
	// The context-aware form threads the request's trace span into the
	// engine, which records its certificate stages as child spans.
	cert, err := verify.CertifyContext(ctx, canon.Algo, vc.canonS, vc.canonPi, opts)
	recordStage(ctx, stageSearch, certStart)
	if err != nil {
		// Shape problems were screened above, so an engine error here is
		// a resource limit or arithmetic overflow on this input.
		return nil, CacheMiss, &BadRequestError{Err: err}
	}
	// Certificates are small and witness-bounded; a flat size hint keeps
	// the bytes gauge honest without walking the witness lists.
	s.cache.Add(key, cert, int64(len(key))+1024)
	return s.verifyResponse(ctx, canon, colPerm, key, cert), CacheMiss, nil
}

// verifyResponse is buildVerifyResponse with the translate stage
// recorded against the request's timer.
func (s *Service) verifyResponse(ctx context.Context, canon *Canonical, colPerm []int, key string, cert *verify.Certificate) *VerifyResponse {
	defer recordStage(ctx, stageTranslate, time.Now())
	return buildVerifyResponse(canon, colPerm, key, cert)
}

// verifyCacheKey derives the canonical cache identity of a
// verification: the canonical problem key plus the canonical-coordinate
// mapping and the witness set requested.
func verifyCacheKey(canonKey string, s *intmat.Matrix, pi intmat.Vector, simulate bool) string {
	var b strings.Builder
	b.WriteString("verify|")
	b.WriteString(canonKey)
	b.WriteString("|S=")
	for r := 0; r < s.Rows(); r++ {
		if r > 0 {
			b.WriteByte(';')
		}
		writeVec(&b, s.Row(r))
	}
	b.WriteString("|pi=")
	writeVec(&b, pi)
	if simulate {
		b.WriteString("|sim")
	}
	return b.String()
}

func writeVec(b *strings.Builder, v intmat.Vector) {
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(x, 10))
	}
}

// buildVerifyResponse translates a canonical-coordinate certificate
// into the request's axis order. Scalar facts (verdicts, times, bounds,
// the L diagonal — the HNF is invariant under column permutation) copy
// unchanged; axis-indexed data permutes through the canonicalization.
func buildVerifyResponse(canon *Canonical, colPerm []int, key string, cert *verify.Certificate) *VerifyResponse {
	out := *cert // shallow copy; every mutated field below is re-allocated
	out.Mu = canon.VectorToRequest(cert.Mu)
	out.Pi = canon.VectorToRequest(cert.Pi)
	out.S = make([][]int64, len(cert.S))
	for i, row := range cert.S {
		out.S[i] = canon.VectorToRequest(row)
	}
	// Schedule witnesses follow the canonical column sort; put them back
	// in the caller's dependence order.
	out.Schedule = make([]verify.ScheduleWitness, len(cert.Schedule))
	for j, w := range cert.Schedule {
		w.Dep = canon.VectorToRequest(w.Dep)
		out.Schedule[colPerm[j]] = w
	}
	out.Basis = make([]verify.BasisWitness, len(cert.Basis))
	for i, bw := range cert.Basis {
		bw.Gamma = canon.VectorToRequest(bw.Gamma)
		if bw.FeasibleIndex >= 0 {
			bw.FeasibleIndex = canon.AxisToRequest(bw.FeasibleIndex)
		}
		out.Basis[i] = bw
	}
	if cert.ConflictWitness != nil {
		out.ConflictWitness = canon.VectorToRequest(cert.ConflictWitness)
	}
	if cert.BruteForce != nil {
		bf := *cert.BruteForce
		if bf.Witness != nil {
			bf.Witness = canon.VectorToRequest(bf.Witness)
		}
		out.BruteForce = &bf
	}
	if cert.HNF != nil {
		hw := *cert.HNF
		hw.LDiag = append([]int64(nil), cert.HNF.LDiag...)
		out.HNF = &hw
	}
	if cert.Enumeration != nil {
		ew := *cert.Enumeration
		ew.BetaBounds = append([]int64(nil), cert.Enumeration.BetaBounds...)
		out.Enumeration = &ew
	}
	if cert.Simulation != nil {
		sw := *cert.Simulation
		out.Simulation = &sw
	}
	return &VerifyResponse{
		Valid:         out.Valid,
		FailedWitness: out.FailedWitness,
		Certificate:   &out,
		CanonicalKey:  key,
	}
}
