package service

// The cluster tier of the service: consistent-hash sharding of the
// canonical cache over a set of mapserve nodes (DESIGN.md §12).
//
// Every composite map key (mapCacheKey) has exactly one ring owner.
// A non-owner that misses its local cache forwards the problem to the
// owner over /peer/v1/lookup and caches the answer locally
// (forward-then-fill), so the owner's cache plus its singleflight group
// make each problem searched at most once cluster-wide, while repeat
// traffic on any node stays local after the first fill. When the owner
// is unreachable the non-owner degrades to a local search and then
// pushes the result to the owner over /peer/v1/fill, converging the
// cluster back onto its sharding invariant.
//
// Loop freedom is structural, not just header-enforced: only flights
// opened for origin /v1/map requests may forward, and a flight opened
// by the peer-lookup handler always resolves locally — so a forward
// chain is at most origin → owner even when nodes disagree about
// membership. The cluster.HopHeader check in the HTTP layer (508
// beyond cluster.MaxHops) is a belt-and-braces guard for buggy or
// misconfigured peers.
//
// Results received from peers are never trusted blindly: the receiver
// re-canonicalizes the wire problem, verifies the recomputed composite
// key, revalidates the mapping (shape, ΠD > 0, rank via
// schedule.NewMapping), recomputes the total time, and — within the
// enumeration ceiling — re-decides conflict-freeness before caching.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lodim/internal/cluster"
	"lodim/internal/conflict"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/trace"
	"lodim/internal/uda"
)

// peerLookupGrace pads the forwarded deadline so an owner that finishes
// just inside the caller's budget can still deliver its answer.
const peerLookupGrace = 2 * time.Second

// ClusterConfig federates a Service with its peers.
type ClusterConfig struct {
	// Self identifies this node. Self.URL is the advertise address peers
	// use to reach it (scheme + host + port, no path).
	Self cluster.Member
	// Peers are the other members. An entry whose ID equals Self.ID is
	// skipped, so every node can be handed the same membership list.
	Peers []cluster.Member
	// VNodes is the virtual-node count per member
	// (0 selects cluster.DefaultVNodes).
	VNodes int
	// Client, when non-nil, overrides the peer HTTP client. The default
	// carries no global timeout — per-call contexts bound each exchange.
	Client *http.Client
	// FillTimeout bounds each best-effort cache-fill push to an owner
	// (0 selects 5s).
	FillTimeout time.Duration
}

// clusterState is the built form of ClusterConfig inside the Service.
type clusterState struct {
	self        cluster.Member
	ring        *cluster.Ring
	client      *cluster.Client
	httpc       *http.Client // raw client, for job-endpoint proxying
	health      *cluster.Health
	fillTimeout time.Duration
}

func newClusterState(cc *ClusterConfig) (*clusterState, error) {
	members := []cluster.Member{cc.Self}
	var peers []cluster.Member
	for _, p := range cc.Peers {
		if p.ID == cc.Self.ID {
			continue
		}
		members = append(members, p)
		peers = append(peers, p)
	}
	ring, err := cluster.NewRing(cc.VNodes, members...)
	if err != nil {
		return nil, err
	}
	httpc := cc.Client
	if httpc == nil {
		httpc = &http.Client{}
	}
	health := cluster.NewHealth(peers...)
	ft := cc.FillTimeout
	if ft <= 0 {
		ft = 5 * time.Second
	}
	return &clusterState{
		self:        cc.Self,
		ring:        ring,
		client:      cluster.NewClient(httpc, health),
		httpc:       httpc,
		health:      health,
		fillTimeout: ft,
	}, nil
}

// ClusterStatus is the cluster section of Status: identity, membership
// and passive peer health.
type ClusterStatus struct {
	Self    string               `json:"self"`
	Members []string             `json:"members"`
	VNodes  int                  `json:"vnodes"`
	Peers   []cluster.PeerStatus `json:"peers"`
}

func (c *clusterState) status() *ClusterStatus {
	ms := c.ring.Members()
	ids := make([]string, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
	}
	return &ClusterStatus{Self: c.self.ID, Members: ids, VNodes: c.ring.VNodes(), Peers: c.health.Snapshot()}
}

// peerVerdict is tryPeerLookup's three-way outcome.
type peerVerdict int

const (
	peerSkip   peerVerdict = iota // not clustered, or this node owns the key
	peerDone                      // the owner answered definitively (result or terminal error)
	peerFailed                    // forwarding failed — fall back to a local search
)

// tryPeerLookup forwards a missed key to its ring owner. It runs inside
// the flight body, so concurrent local requests for the same problem
// share one forward exactly as they would share one search.
func (s *Service) tryPeerLookup(ctx context.Context, key string, canon *Canonical, dims int, req *MapRequest) (*flightOutcome, error, peerVerdict) {
	clu := s.clu
	if clu == nil {
		return nil, nil, peerSkip
	}
	owner := clu.ring.Owner(key)
	if owner.ID == clu.self.ID {
		return nil, nil, peerSkip
	}

	pctx, span := trace.Start(ctx, "peer-lookup")
	var tp string
	if span != nil {
		span.SetStr("peer", owner.ID)
		tp = trace.Traceparent(span.TraceID(), span.IDHex())
		defer span.End()
	}
	defer recordStage(ctx, stageForward, time.Now())
	// The flight context carries no deadline of its own (it lives while
	// any waiter does), so bound the exchange by the request's effective
	// budget: the owner clamps the forwarded TimeoutMS the same way and
	// the grace keeps a just-in-time answer deliverable.
	cctx, cancel := context.WithTimeout(pctx, s.EffectiveTimeout(req.TimeoutMS)+peerLookupGrace)
	defer cancel()
	lreq := &cluster.LookupRequest{Problem: clusterProblem(key, canon, dims, req), TimeoutMS: req.TimeoutMS}
	resp, err := clu.client.Lookup(cctx, owner, lreq, tp)
	if err != nil {
		var perr *cluster.PeerError
		if errors.As(err, &perr) && perr.Status == http.StatusUnprocessableEntity {
			// The owner ran the search and proved infeasibility within the
			// explored bound — a definite answer, not a failure to degrade
			// around. Counted as a miss: the owner did search for us.
			s.met.peerForwardMiss.Add(1)
			if span != nil {
				span.SetStr("disposition", "infeasible")
			}
			return nil, fmt.Errorf("%w (decided by peer %s)", schedule.ErrNoSchedule, owner.ID), peerDone
		}
		s.met.peerForwardErrors.Add(1)
		if span != nil {
			span.SetStr("error", err.Error())
		}
		if ctx.Err() != nil {
			// The flight itself is dead (every waiter detached): a local
			// fallback search would be cancelled work.
			return nil, ctx.Err(), peerDone
		}
		return nil, nil, peerFailed
	}
	res, err := resultFromWire(canon.Algo, dims, &resp.Result)
	if err != nil {
		// The owner answered 200 with a body that fails revalidation —
		// version skew or a corrupt peer. Treated like unreachability:
		// search locally rather than serve a bad mapping.
		s.met.peerForwardErrors.Add(1)
		if span != nil {
			span.SetStr("error", err.Error())
		}
		return nil, nil, peerFailed
	}
	switch resp.Disposition {
	case cluster.DispositionHit:
		s.met.peerForwardHit.Add(1)
	case cluster.DispositionShared:
		s.met.peerForwardShared.Add(1)
	default:
		s.met.peerForwardMiss.Add(1)
	}
	if span != nil {
		span.SetStr("disposition", resp.Disposition)
	}
	// Forward-then-fill: repeat traffic for this key on this node is
	// local from here on.
	s.cache.Add(key, res, estimateResultBytes(key, res))
	return &flightOutcome{res: res, viaPeer: true, peerDisposition: resp.Disposition}, nil, peerDone
}

// fillOwnerAsync pushes a locally-searched result to the key's ring
// owner after a failed forward, converging the cluster back onto "the
// owner holds its keys" once the owner returns. Best-effort: a failure
// only counts a metric. The goroutine registers with begin() so Close
// still drains it.
func (s *Service) fillOwnerAsync(key string, canon *Canonical, dims int, req *MapRequest, res *schedule.JointResult) {
	clu := s.clu
	if clu == nil {
		return
	}
	owner := clu.ring.Owner(key)
	if owner.ID == clu.self.ID {
		return
	}
	done, err := s.begin()
	if err != nil {
		return
	}
	freq := &cluster.FillRequest{Problem: clusterProblem(key, canon, dims, req), Result: *wireFromResult(res)}
	go func() {
		defer done()
		ctx, cancel := context.WithTimeout(context.Background(), clu.fillTimeout)
		defer cancel()
		if err := clu.client.Fill(ctx, owner, freq); err != nil {
			s.met.peerFillSendErrs.Add(1)
			return
		}
		s.met.peerFillsSent.Add(1)
	}()
}

// PeerLookup answers one forwarded problem as its ring owner: cache
// first, then the same flight group /v1/map uses — so an origin request
// and a forwarded one for the same problem share a single search. The
// flight is opened with forwarding disabled: an owner resolves locally
// even when its membership view disagrees with the caller's, which
// bounds every forward chain at origin → owner.
func (s *Service) PeerLookup(ctx context.Context, lreq *cluster.LookupRequest) (*cluster.LookupResponse, error) {
	done, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer done()

	canon, dims, req, key, err := s.problemFromWire(&lreq.Problem)
	if err != nil {
		return nil, err
	}
	req.TimeoutMS = lreq.TimeoutMS
	if v, ok := s.cache.Get(key); ok {
		s.met.peerServedHit.Add(1)
		return &cluster.LookupResponse{Disposition: cluster.DispositionHit, Result: *wireFromResult(v.(*schedule.JointResult))}, nil
	}

	fctx, fspan := trace.Start(ctx, "flight")
	flightStart := time.Now()
	v, err, leader, mark := s.flights.DoMarked(fctx, key, func(fc context.Context) (any, error) {
		return s.runSearch(fc, key, canon, dims, req, false)
	})
	if !leader {
		s.recordFollowerWait(ctx, mark, flightStart)
	}
	if fspan != nil {
		role := "follower"
		if leader {
			role = "leader"
		}
		fspan.SetStr("role", role)
		if err != nil {
			fspan.SetStr("error", err.Error())
		}
		fspan.End()
	}
	if err != nil {
		return nil, err
	}
	out := v.(*flightOutcome)
	disposition := cluster.DispositionShared
	switch {
	case !leader:
		s.met.peerServedShared.Add(1)
	case out.fromCache:
		disposition = cluster.DispositionHit
		s.met.peerServedHit.Add(1)
	default:
		disposition = cluster.DispositionMiss
		s.met.peerServedMiss.Add(1)
	}
	return &cluster.LookupResponse{Disposition: disposition, Result: *wireFromResult(out.res)}, nil
}

// PeerFill accepts a best-effort cache push from a peer that searched
// one of this node's keys while it was unreachable. The payload is
// revalidated end to end before it enters the cache.
func (s *Service) PeerFill(ctx context.Context, freq *cluster.FillRequest) (*cluster.FillResponse, error) {
	done, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer done()

	canon, dims, _, key, err := s.problemFromWire(&freq.Problem)
	if err != nil {
		s.met.peerFillsRejected.Add(1)
		return nil, err
	}
	res, err := resultFromWire(canon.Algo, dims, &freq.Result)
	if err != nil {
		s.met.peerFillsRejected.Add(1)
		return nil, &BadRequestError{Err: err}
	}
	s.cache.Add(key, res, estimateResultBytes(key, res))
	s.met.peerFillsRecv.Add(1)
	return &cluster.FillResponse{Stored: true}, nil
}

// clusterProblem serializes a canonical problem for the peer protocol.
// Bounds and dependencies are the canonical-coordinate instance, so
// every node re-derives the identical composite key.
func clusterProblem(key string, canon *Canonical, dims int, req *MapRequest) cluster.Problem {
	algo := canon.Algo
	deps := make([][]int64, algo.NumDeps())
	for c := range deps {
		deps[c] = algo.D.Col(c)
	}
	return cluster.Problem{
		Key:          key,
		Bounds:       algo.Set.Upper,
		Dependencies: deps,
		Dims:         dims,
		MaxEntry:     req.MaxEntry,
		WireWeight:   req.WireWeight,
		MaxCost:      req.MaxCost,
	}
}

// problemFromWire rebuilds and verifies a peer-supplied problem: full
// request validation, re-canonicalization, and a recomputed composite
// key that must match the wire key — so a confused or malicious peer
// cannot make this node cache under a key it would never derive itself.
func (s *Service) problemFromWire(p *cluster.Problem) (*Canonical, int, *MapRequest, string, error) {
	if p.Key == "" {
		return nil, 0, nil, "", badRequest("service: peer problem carries no key")
	}
	req := &MapRequest{
		Bounds:       p.Bounds,
		Dependencies: p.Dependencies,
		Dims:         p.Dims,
		MaxEntry:     p.MaxEntry,
		WireWeight:   p.WireWeight,
		MaxCost:      p.MaxCost,
	}
	algo, dims, err := validateMapRequest(req)
	if err != nil {
		return nil, 0, nil, "", err
	}
	canon := Canonicalize(algo)
	key := mapCacheKey(canon.Key, dims, req)
	if key != p.Key {
		return nil, 0, nil, "", badRequest("service: peer problem key %q does not match recomputed key %q", p.Key, key)
	}
	return canon, dims, req, key, nil
}

// wireFromResult flattens a canonical-coordinate result for the peer
// protocol. It carries exactly the fields buildMapResponse reads, so a
// result reconstructed on the far side renders byte-identically there.
func wireFromResult(res *schedule.JointResult) *cluster.WireResult {
	return &cluster.WireResult{
		S:                  matrixRows(res.Mapping.S),
		Pi:                 res.Mapping.Pi,
		Time:               res.Time,
		Processors:         res.Processors,
		WireLength:         res.WireLength,
		Cost:               res.Cost,
		Candidates:         res.Candidates,
		Pruned:             res.Pruned,
		ScheduleCandidates: res.ScheduleResult.Candidates,
		Engine:             res.ScheduleResult.Method,
		ConflictMethod:     res.ScheduleResult.Conflict.Method,
	}
}

// resultFromWire revalidates a peer-supplied result against the
// canonical algorithm and reassembles the JointResult the cache and
// response builder expect. Validation is the cache-poisoning defense:
// shapes, ΠD > 0 and rank via schedule.NewMapping, the total time
// recomputed from Π and μ, and — when the index set is within the
// enumeration ceiling — conflict-freeness re-decided locally.
// Optimality cannot be cheaply re-proved and is trusted; a buggy peer
// can therefore at worst serve a valid-but-suboptimal mapping, never an
// incorrect one.
func resultFromWire(canonAlgo *uda.Algorithm, dims int, w *cluster.WireResult) (*schedule.JointResult, error) {
	n := canonAlgo.Dim()
	if len(w.S) != dims {
		return nil, fmt.Errorf("service: peer result has %d space rows, want %d", len(w.S), dims)
	}
	for i, r := range w.S {
		if len(r) != n {
			return nil, fmt.Errorf("service: peer result S row %d has %d entries, want %d", i+1, len(r), n)
		}
	}
	if len(w.Pi) != n {
		return nil, fmt.Errorf("service: peer result Π has %d entries, want %d", len(w.Pi), n)
	}
	sm := intmat.New(0, n)
	if dims > 0 {
		sm = intmat.FromRows(w.S...)
	}
	m, err := schedule.NewMapping(canonAlgo, sm, intmat.Vector(w.Pi))
	if err != nil {
		return nil, fmt.Errorf("service: peer result rejected: %w", err)
	}
	tt, err := m.TotalTimeChecked()
	if err != nil {
		return nil, fmt.Errorf("service: peer result rejected: %w", err)
	}
	if tt != w.Time {
		return nil, fmt.Errorf("service: peer result total time %d does not match recomputed %d", w.Time, tt)
	}
	if w.Processors < 1 || w.Time < 1 {
		return nil, fmt.Errorf("service: peer result has degenerate processors %d / time %d", w.Processors, w.Time)
	}
	if !canonAlgo.Set.SizeExceeds(maxIndexPoints) {
		cres, err := conflict.Decide(m.T, canonAlgo.Set)
		if err != nil {
			return nil, fmt.Errorf("service: peer result conflict re-check failed: %w", err)
		}
		if !cres.ConflictFree {
			return nil, fmt.Errorf("service: peer result is not conflict-free (witness %v)", cres.Witness)
		}
	}
	return &schedule.JointResult{
		SpaceResult: schedule.SpaceResult{
			Mapping:    m,
			Processors: w.Processors,
			WireLength: w.WireLength,
			Cost:       w.Cost,
			Candidates: w.Candidates,
			Pruned:     w.Pruned,
			Time:       w.Time,
		},
		ScheduleResult: &schedule.Result{
			Mapping:    m,
			Time:       w.Time,
			Conflict:   conflict.Result{ConflictFree: true, Method: w.ConflictMethod},
			Candidates: w.ScheduleCandidates,
			Method:     w.Engine,
		},
	}, nil
}

// estimateResultBytes approximates the resident size of one cached
// result: the key string, the mapping's integer payloads, and a fixed
// struct/pointer overhead. An estimate by design — the bytes gauge
// exists for sizing and shard-balance decisions, not accounting.
func estimateResultBytes(key string, res *schedule.JointResult) int64 {
	b := int64(len(key)) + 768
	if res.Mapping != nil {
		// S, Π and the assembled T ≈ 2(k−1)+2 rows of n int64s each.
		n := int64(res.Mapping.S.Cols())
		rows := int64(res.Mapping.S.Rows())
		b += 8 * n * (2*rows + 2)
	}
	return b
}
