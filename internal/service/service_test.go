package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lodim/internal/schedule"
	"lodim/internal/uda"
)

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", 1, 10)
	c.Add("b", 2, 10)
	c.Add("c", 3, 10) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a survived eviction")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Errorf("b = %v, %v", v, ok)
	}
	// b is now most recent; adding d evicts c.
	c.Add("d", 4, 10)
	if _, ok := c.Get("c"); ok {
		t.Error("c survived eviction despite b's promotion")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if entries, evictions, bytes := c.Stats(); entries != 2 || evictions != 2 || bytes != 20 {
		t.Errorf("Stats = (%d, %d, %d), want (2, 2, 20)", entries, evictions, bytes)
	}
	// Refreshing an entry replaces its size contribution, not adds to it.
	c.Add("d", 5, 30)
	if _, _, bytes := c.Stats(); bytes != 40 {
		t.Errorf("bytes after refresh = %d, want 40", bytes)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len after Flush = %d", c.Len())
	}
	// Flush zeroes occupancy but preserves the eviction counter — it
	// measures capacity pressure, not operator action.
	if entries, evictions, bytes := c.Stats(); entries != 0 || evictions != 2 || bytes != 0 {
		t.Errorf("Stats after Flush = (%d, %d, %d), want (0, 2, 0)", entries, evictions, bytes)
	}
}

func TestFlightGroupDeduplicates(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	joined := make(chan struct{})
	g.onJoin = func() { close(joined) }

	var wg sync.WaitGroup
	var leaderV, followerV any
	var followerLeader bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderV, _, _ = g.Do(context.Background(), "k", func(context.Context) (any, error) {
			<-gate
			return 42, nil
		})
	}()
	// Start the follower only once the leader's flight is registered,
	// and open the gate only once the follower has attached (onJoin) —
	// the two polls make the dedup deterministic, not timing-dependent.
	for {
		g.mu.Lock()
		_, inFlight := g.calls["k"]
		g.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerV, _, followerLeader = g.Do(context.Background(), "k", func(context.Context) (any, error) {
			t.Error("follower executed fn")
			return nil, nil
		})
	}()
	<-joined
	close(gate)
	wg.Wait()
	if leaderV != 42 || followerV != 42 {
		t.Errorf("values = %v, %v, want 42, 42", leaderV, followerV)
	}
	if followerLeader {
		t.Error("follower claims leadership")
	}
	select {
	case <-joined:
	default:
		t.Error("onJoin never fired")
	}
}

func TestFlightGroupFollowerHonorsContext(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	defer close(gate)
	go g.Do(context.Background(), "k", func(context.Context) (any, error) { <-gate; return nil, nil })
	waitForFlight(t, g, "k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, leader := g.Do(ctx, "k", func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) || leader {
		t.Errorf("detached follower: err = %v, leader = %v", err, leader)
	}
}

// waitForFlight polls until key has an open flight.
func waitForFlight(t *testing.T, g *flightGroup, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		_, inFlight := g.calls[key]
		g.mu.Unlock()
		if inFlight {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight %q never opened", key)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFlightGroupFollowerSurvivesLeaderCancel: a follower with a
// healthy context must get the real result even when the leader's
// context ends mid-flight — the flight detaches from the leader rather
// than poisoning its followers with the leader's context error.
func TestFlightGroupFollowerSurvivesLeaderCancel(t *testing.T) {
	g := newFlightGroup()
	joined := make(chan struct{})
	g.onJoin = func() { close(joined) }
	gate := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())

	leaderErr := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(leaderCtx, "k", func(fctx context.Context) (any, error) {
			select {
			case <-gate:
				return 7, nil
			case <-fctx.Done():
				return nil, fctx.Err()
			}
		})
		leaderErr <- err
	}()
	waitForFlight(t, g, "k")

	type res struct {
		v   any
		err error
	}
	followerRes := make(chan res, 1)
	go func() {
		v, err, _ := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			t.Error("follower executed fn")
			return nil, nil
		})
		followerRes <- res{v, err}
	}()
	<-joined

	// The leader detaches with its own context error...
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("detached leader: err = %v", err)
	}
	// ...while the flight keeps running and lands for the follower.
	close(gate)
	r := <-followerRes
	if r.err != nil || r.v != 7 {
		t.Errorf("follower after leader cancel: v = %v, err = %v, want 7, nil", r.v, r.err)
	}
}

// TestFlightGroupLastWaiterCancelsFlight: when every waiter has
// detached, the flight context is cancelled so fn stops doing work
// nobody will read.
func TestFlightGroupLastWaiterCancelsFlight(t *testing.T) {
	g := newFlightGroup()
	fnDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go g.Do(ctx, "k", func(fctx context.Context) (any, error) {
		<-fctx.Done()
		fnDone <- fctx.Err()
		return nil, fctx.Err()
	})
	waitForFlight(t, g, "k")
	cancel() // sole waiter leaves → flight context must end
	select {
	case err := <-fnDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("flight context err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight context never cancelled after last waiter left")
	}
}

func TestAcquireRejectsBeyondQueue(t *testing.T) {
	s := New(Config{Pool: 1, Queue: -1}) // bound: 1 waiter at most
	defer s.Close()
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter is admitted (it backs the single pool slot)...
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterIn := make(chan error, 1)
	go func() {
		r, err := s.acquire(waiterCtx)
		if r != nil {
			r()
		}
		waiterIn <- err
	}()
	for s.met.queued.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// ...and the next arrival is rejected immediately.
	if _, err := s.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire: err = %v, want ErrOverloaded", err)
	}
	if got := s.met.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	// A waiter whose context ends gets the context error.
	cancelWaiter()
	if err := <-waiterIn; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter: err = %v", err)
	}
	release()
	// With the slot free again, admission recovers.
	r2, err := s.acquire(context.Background())
	if err != nil {
		t.Fatalf("post-recovery acquire: %v", err)
	}
	r2()
}

func TestCloseRejectsNewWork(t *testing.T) {
	s := New(Config{Pool: 1})
	s.Close()
	if _, err := s.acquire(context.Background()); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("acquire after Close: %v", err)
	}
	if _, _, err := s.Map(context.Background(), &MapRequest{Algorithm: "matmul"}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Map after Close: %v", err)
	}
	if _, err := s.Conflict(context.Background(), &ConflictRequest{}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Conflict after Close: %v", err)
	}
	if _, err := s.Simulate(context.Background(), &SimulateRequest{}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Simulate after Close: %v", err)
	}
	s.Close() // idempotent
}

func TestEffectiveTimeoutClamps(t *testing.T) {
	s := New(Config{DefaultTimeout: time.Second, MaxTimeout: 5 * time.Second})
	defer s.Close()
	if got := s.EffectiveTimeout(0); got != time.Second {
		t.Errorf("unset → %v", got)
	}
	if got := s.EffectiveTimeout(250); got != 250*time.Millisecond {
		t.Errorf("250ms → %v", got)
	}
	if got := s.EffectiveTimeout(60_000); got != 5*time.Second {
		t.Errorf("60s → %v, want the 5s ceiling", got)
	}
}

func TestMapValidation(t *testing.T) {
	s := New(Config{Pool: 1})
	defer s.Close()
	cases := []struct {
		name string
		req  MapRequest
	}{
		{"no algorithm", MapRequest{}},
		{"unknown algorithm", MapRequest{Algorithm: "no-such-algo"}},
		{"dims too large", MapRequest{Algorithm: "matmul", Sizes: []int64{3}, Dims: 3}},
		{"negative option", MapRequest{Algorithm: "matmul", Sizes: []int64{3}, MaxCost: -1}},
		{"ragged deps", MapRequest{Bounds: []int64{2, 2}, Dependencies: [][]int64{{1}}}},
		{"zero dep", MapRequest{Bounds: []int64{2, 2}, Dependencies: [][]int64{{0, 0}}}},
		{"huge bound", MapRequest{Bounds: []int64{maxBound + 1}, Dependencies: [][]int64{{1}}}},
		// ∏(μ_i+1) = 2^64 wraps an int64 to 0 — the guard must reject
		// by saturation, not by trusting the wrapped product.
		{"overflowing index set", MapRequest{
			Bounds:       []int64{65535, 65535, 65535, 65535},
			Dependencies: [][]int64{{1, 0, 0, 0}},
			Dims:         2,
		}},
	}
	for _, c := range cases {
		var bad *BadRequestError
		if _, _, err := s.Map(context.Background(), &c.req); !errors.As(err, &bad) {
			t.Errorf("%s: err = %v, want BadRequestError", c.name, err)
		}
	}
}

// TestSizeGuardsRejectOverflow: the point-count ceilings of Conflict
// and Simulate must hold even when ∏(μ_i+1) wraps int64 (here 2^64 → 0,
// which a plain comparison against the limit would wave through).
func TestSizeGuardsRejectOverflow(t *testing.T) {
	s := New(Config{Pool: 1})
	defer s.Close()
	overflow := []int64{65535, 65535, 65535, 65535}

	var bad *BadRequestError
	_, err := s.Conflict(context.Background(), &ConflictRequest{
		Bounds: overflow,
		T:      [][]int64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}},
	})
	if !errors.As(err, &bad) {
		t.Errorf("Conflict on overflowing bounds: err = %v, want BadRequestError", err)
	}
	_, err = s.Simulate(context.Background(), &SimulateRequest{
		Bounds:       overflow,
		Dependencies: [][]int64{{1, 0, 0, 0}},
		S:            [][]int64{{1, 0, 0, 0}},
		Pi:           []int64{1, 1, 1, 1},
	})
	if !errors.As(err, &bad) {
		t.Errorf("Simulate on overflowing bounds: err = %v, want BadRequestError", err)
	}
}

// TestRunSearchReportsCacheLanding: a flight that finds its key already
// cached (another flight landed between the caller's cache lookup and
// taking leadership) must report fromCache so Map labels it a hit, not
// a miss.
func TestRunSearchReportsCacheLanding(t *testing.T) {
	s := New(Config{Pool: 1, SearchWorkers: 1})
	defer s.Close()
	req := &MapRequest{Algorithm: "matmul", Sizes: []int64{3}, Dims: 1}

	// Populate the cache with a genuine search…
	if _, status, err := s.Map(context.Background(), req); err != nil || status != CacheMiss {
		t.Fatalf("cold Map: status = %v, err = %v", status, err)
	}
	hits, misses := s.met.cacheHits.Load(), s.met.cacheMisses.Load()

	// …then drive the flight body directly with the search engine
	// booby-trapped: it must come back from the cache without searching.
	s.searchJoint = func(context.Context, *uda.Algorithm, int, *schedule.SpaceOptions) (*schedule.JointResult, error) {
		t.Error("runSearch searched despite a cached result")
		return nil, errors.New("unreachable")
	}
	algo, err := algoFromRequest(req.Algorithm, req.Sizes, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	canon := Canonicalize(algo)
	key := fmt.Sprintf("%s|dims=%d|me=%d|ww=%d|mc=%d", canon.Key, 1, 0, 0, 0)
	out, err := s.runSearch(context.Background(), key, canon, 1, req, true)
	if err != nil {
		t.Fatal(err)
	}
	if !out.fromCache || out.res == nil {
		t.Errorf("outcome = {res: %v, fromCache: %v}, want cached result", out.res, out.fromCache)
	}

	// And end to end, the whole Map path counts that landing as a hit.
	if _, status, err := s.Map(context.Background(), req); err != nil || status != CacheHit {
		t.Errorf("warm Map: status = %v, err = %v, want hit", status, err)
	}
	if h := s.met.cacheHits.Load(); h != hits+1 {
		t.Errorf("cacheHits = %d, want %d", h, hits+1)
	}
	if m := s.met.cacheMisses.Load(); m != misses {
		t.Errorf("cacheMisses = %d, want %d", m, misses)
	}
}
