package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("c", 3) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a survived eviction")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Errorf("b = %v, %v", v, ok)
	}
	// b is now most recent; adding d evicts c.
	c.Add("d", 4)
	if _, ok := c.Get("c"); ok {
		t.Error("c survived eviction despite b's promotion")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len after Flush = %d", c.Len())
	}
}

func TestFlightGroupDeduplicates(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	joined := make(chan struct{})
	g.onJoin = func() { close(joined) }

	var wg sync.WaitGroup
	var leaderV, followerV any
	var followerLeader bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderV, _, _ = g.Do(context.Background(), "k", func() (any, error) {
			<-gate
			return 42, nil
		})
	}()
	// Start the follower only once the leader's flight is registered,
	// and open the gate only once the follower has attached (onJoin) —
	// the two polls make the dedup deterministic, not timing-dependent.
	for {
		g.mu.Lock()
		_, inFlight := g.calls["k"]
		g.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerV, _, followerLeader = g.Do(context.Background(), "k", func() (any, error) {
			t.Error("follower executed fn")
			return nil, nil
		})
	}()
	<-joined
	close(gate)
	wg.Wait()
	if leaderV != 42 || followerV != 42 {
		t.Errorf("values = %v, %v, want 42, 42", leaderV, followerV)
	}
	if followerLeader {
		t.Error("follower claims leadership")
	}
	select {
	case <-joined:
	default:
		t.Error("onJoin never fired")
	}
}

func TestFlightGroupFollowerHonorsContext(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	defer close(gate)
	go g.Do(context.Background(), "k", func() (any, error) { <-gate; return nil, nil })
	for {
		g.mu.Lock()
		_, inFlight := g.calls["k"]
		g.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, leader := g.Do(ctx, "k", func() (any, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) || leader {
		t.Errorf("detached follower: err = %v, leader = %v", err, leader)
	}
}

func TestAcquireRejectsBeyondQueue(t *testing.T) {
	s := New(Config{Pool: 1, Queue: -1}) // bound: 1 waiter at most
	defer s.Close()
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter is admitted (it backs the single pool slot)...
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterIn := make(chan error, 1)
	go func() {
		r, err := s.acquire(waiterCtx)
		if r != nil {
			r()
		}
		waiterIn <- err
	}()
	for s.met.queued.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// ...and the next arrival is rejected immediately.
	if _, err := s.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire: err = %v, want ErrOverloaded", err)
	}
	if got := s.met.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	// A waiter whose context ends gets the context error.
	cancelWaiter()
	if err := <-waiterIn; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter: err = %v", err)
	}
	release()
	// With the slot free again, admission recovers.
	r2, err := s.acquire(context.Background())
	if err != nil {
		t.Fatalf("post-recovery acquire: %v", err)
	}
	r2()
}

func TestCloseRejectsNewWork(t *testing.T) {
	s := New(Config{Pool: 1})
	s.Close()
	if _, err := s.acquire(context.Background()); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("acquire after Close: %v", err)
	}
	if _, _, err := s.Map(context.Background(), &MapRequest{Algorithm: "matmul"}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Map after Close: %v", err)
	}
	if _, err := s.Conflict(context.Background(), &ConflictRequest{}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Conflict after Close: %v", err)
	}
	if _, err := s.Simulate(context.Background(), &SimulateRequest{}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Simulate after Close: %v", err)
	}
	s.Close() // idempotent
}

func TestEffectiveTimeoutClamps(t *testing.T) {
	s := New(Config{DefaultTimeout: time.Second, MaxTimeout: 5 * time.Second})
	defer s.Close()
	if got := s.EffectiveTimeout(0); got != time.Second {
		t.Errorf("unset → %v", got)
	}
	if got := s.EffectiveTimeout(250); got != 250*time.Millisecond {
		t.Errorf("250ms → %v", got)
	}
	if got := s.EffectiveTimeout(60_000); got != 5*time.Second {
		t.Errorf("60s → %v, want the 5s ceiling", got)
	}
}

func TestMapValidation(t *testing.T) {
	s := New(Config{Pool: 1})
	defer s.Close()
	cases := []struct {
		name string
		req  MapRequest
	}{
		{"no algorithm", MapRequest{}},
		{"unknown algorithm", MapRequest{Algorithm: "no-such-algo"}},
		{"dims too large", MapRequest{Algorithm: "matmul", Sizes: []int64{3}, Dims: 3}},
		{"negative option", MapRequest{Algorithm: "matmul", Sizes: []int64{3}, MaxCost: -1}},
		{"ragged deps", MapRequest{Bounds: []int64{2, 2}, Dependencies: [][]int64{{1}}}},
		{"zero dep", MapRequest{Bounds: []int64{2, 2}, Dependencies: [][]int64{{0, 0}}}},
		{"huge bound", MapRequest{Bounds: []int64{maxBound + 1}, Dependencies: [][]int64{{1}}}},
	}
	for _, c := range cases {
		var bad *BadRequestError
		if _, _, err := s.Map(context.Background(), &c.req); !errors.As(err, &bad) {
			t.Errorf("%s: err = %v, want BadRequestError", c.name, err)
		}
	}
}
