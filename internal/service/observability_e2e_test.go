package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink for Config.Logger: the
// access-log line is written after the handler returns, so the client
// can observe the response before the line lands.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// waitLines polls until the buffer holds n complete log lines.
func waitLines(t *testing.T, b *syncBuffer, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ls := b.lines(); len(ls) >= n {
			return ls
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d access-log lines, have %d", n, len(b.lines()))
		}
		time.Sleep(time.Millisecond)
	}
}

// accessLine is the JSON shape of one structured access-log record.
type accessLine struct {
	Msg      string             `json:"msg"`
	ID       string             `json:"id"`
	Endpoint string             `json:"endpoint"`
	Status   int                `json:"status"`
	Total    int64              `json:"total"`
	Cache    string             `json:"cache"`
	Stages   map[string]float64 `json:"stages"`
}

// TestE2EAccessLogAndTimingHeaders drives the three request shapes the
// access log distinguishes (map miss, map hit, conflict) and checks:
// exactly one structured line per request, each carrying the same
// request ID the client saw in X-Mapserve-Request, with per-stage
// timings in both the log line and the X-Mapserve-Timing header.
func TestE2EAccessLogAndTimingHeaders(t *testing.T) {
	var logBuf syncBuffer
	_, srv := newTestServer(t, Config{
		Pool:   2,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})

	type probe struct {
		path, body string
		wantCache  string
	}
	probes := []probe{
		{"/v1/map", e2eBody, "miss"},
		{"/v1/map", e2eBody, "hit"},
		{"/v1/conflict", `{"bounds":[4,4,4],"s":[[1,1,-1]],"pi":[1,4,1]}`, ""},
	}
	var ids []string
	for _, p := range probes {
		status, hdr, body := postJSON(t, srv.URL+p.path, p.body)
		if status != 200 {
			t.Fatalf("%s: status %d %s", p.path, status, body)
		}
		id := hdr.Get("X-Mapserve-Request")
		if len(id) != 16 {
			t.Errorf("%s: request id = %q, want 16 hex digits", p.path, id)
		}
		ids = append(ids, id)
		timing := hdr.Get("X-Mapserve-Timing")
		if !strings.Contains(timing, "decode;dur=") {
			t.Errorf("%s: timing header %q missing decode stage", p.path, timing)
		}
		if p.wantCache == "miss" && !strings.Contains(timing, "search;dur=") {
			t.Errorf("map miss: timing header %q missing search stage", timing)
		}
		if got := hdr.Get("X-Mapserve-Cache"); got != p.wantCache {
			t.Errorf("%s: cache header = %q, want %q", p.path, got, p.wantCache)
		}
	}
	if ids[0] == ids[1] || ids[0] == ids[2] || ids[1] == ids[2] {
		t.Errorf("request ids not unique: %v", ids)
	}

	lines := waitLines(t, &logBuf, len(probes))
	if len(lines) != len(probes) {
		t.Fatalf("%d access-log lines for %d requests:\n%s", len(lines), len(probes), strings.Join(lines, "\n"))
	}
	for i, line := range lines {
		var rec accessLine
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		p := probes[i]
		if rec.Msg != "request" || rec.Status != 200 {
			t.Errorf("line %d: msg=%q status=%d, want request/200", i, rec.Msg, rec.Status)
		}
		if rec.ID != ids[i] {
			t.Errorf("line %d: id %q does not match X-Mapserve-Request %q", i, rec.ID, ids[i])
		}
		if want := strings.TrimPrefix(p.path, "/v1/"); rec.Endpoint != want {
			t.Errorf("line %d: endpoint = %q, want %q", i, rec.Endpoint, want)
		}
		if rec.Cache != p.wantCache {
			t.Errorf("line %d: cache = %q, want %q", i, rec.Cache, p.wantCache)
		}
		if rec.Total <= 0 {
			t.Errorf("line %d: total = %d, want > 0", i, rec.Total)
		}
		if _, ok := rec.Stages["decode_ms"]; !ok {
			t.Errorf("line %d: stages missing decode_ms: %v", i, rec.Stages)
		}
		if _, ok := rec.Stages["encode_ms"]; !ok {
			t.Errorf("line %d: stages missing encode_ms: %v", i, rec.Stages)
		}
		if p.wantCache == "miss" {
			for _, stage := range []string{"canonicalize_ms", "queue_ms", "search_ms", "translate_ms"} {
				if _, ok := rec.Stages[stage]; !ok {
					t.Errorf("map miss line: stages missing %s: %v", stage, rec.Stages)
				}
			}
		}
	}
}

// TestE2EContentTooLarge: a body over maxBodyBytes is a 413, not a 400
// — the regression this PR fixes. The request still counts exactly once
// and is not recorded as an internal failure.
func TestE2EContentTooLarge(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 1})

	huge := `{"algorithm":"` + strings.Repeat("a", maxBodyBytes+1) + `"}`
	status, _, body := postJSON(t, srv.URL+"/v1/map", huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%s), want 413", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "exceeds") {
		t.Errorf("413 body = %s (err %v), want an 'exceeds' error message", body, err)
	}
	if got := svc.met.mapRequests.Load(); got != 1 {
		t.Errorf("map counter = %d after oversized request, want 1", got)
	}
	if got := svc.met.failures.Load(); got != 0 {
		t.Errorf("failures = %d after oversized request, want 0", got)
	}
}

// TestE2ERequestCountersExactlyOnce: for every endpoint, each of the
// three request outcomes — decode error, service error, success —
// bumps the per-endpoint counter by exactly one. Before this PR the
// decode-error path double-counted nothing while service methods
// counted only their own paths, so handler-level rejects went missing.
func TestE2ERequestCountersExactlyOnce(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2})

	cases := []struct {
		endpoint string
		path     string
		steps    []struct {
			body string
			want int
		}
	}{
		{"map", "/v1/map", []struct {
			body string
			want int
		}{
			{`{`, 400},
			{`{"algorithm":"nope"}`, 400},
			{e2eBody, 200},
		}},
		{"conflict", "/v1/conflict", []struct {
			body string
			want int
		}{
			{`not json`, 400},
			{`{"bounds":[4,4]}`, 400},
			{`{"bounds":[4,4,4],"s":[[1,1,-1]],"pi":[1,4,1]}`, 200},
		}},
		{"simulate", "/v1/simulate", []struct {
			body string
			want int
		}{
			{`{"trailing":1}garbage`, 400},
			{`{"algorithm":"matmul","sizes":[4],"pi":[1]}`, 400},
			{`{"algorithm":"matmul","sizes":[4],"s":[[1,1,-1]],"pi":[1,4,1]}`, 200},
		}},
		{"verify", "/v1/verify", []struct {
			body string
			want int
		}{
			{`{"unknown_field":true}`, 400},
			{`{"pi":[1,1,1]}`, 400},
			{`{"algorithm":"matmul","sizes":[2],"s":[[1,1,-1]],"pi":[1,3,1]}`, 200},
		}},
	}
	for _, c := range cases {
		counter := svc.met.requestCounter(c.endpoint)
		for _, step := range c.steps {
			before := counter.Load()
			status, _, body := postJSON(t, srv.URL+c.path, step.body)
			if status != step.want {
				t.Errorf("%s %s: status %d (%s), want %d", c.path, step.body[:min(len(step.body), 40)], status, body, step.want)
			}
			if delta := counter.Load() - before; delta != 1 {
				t.Errorf("%s (status %d): counter delta = %d, want exactly 1", c.path, status, delta)
			}
		}
	}
}

// TestE2EMetricsExposeSearchEffort: after a real map search, the
// /metrics payload carries the per-stage histograms and the
// search-effort counters fed from SearchStats.
func TestE2EMetricsExposeSearchEffort(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 2})
	if status, _, body := postJSON(t, srv.URL+"/v1/map", e2eBody); status != 200 {
		t.Fatalf("map: %d %s", status, body)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)

	for _, want := range []string{
		`mapserve_stage_duration_seconds_bucket{stage="decode",le="+Inf"}`,
		`mapserve_stage_duration_seconds_bucket{stage="search",le="+Inf"}`,
		`mapserve_search_pruned_total{rule="orbit"}`,
		`mapserve_search_pruned_total{rule="lower_bound"}`,
		`mapserve_search_pruned_total{rule="incumbent"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	for _, counter := range []string{
		"mapserve_search_space_candidates_total",
		"mapserve_search_schedule_candidates_total",
		"mapserve_search_cost_levels_total",
		"mapserve_search_inner_searches_total",
	} {
		m := regexp.MustCompile(`(?m)^` + counter + ` (\d+)$`).FindStringSubmatch(text)
		if m == nil {
			t.Errorf("/metrics missing %s", counter)
			continue
		}
		if v, _ := strconv.Atoi(m[1]); v < 1 {
			t.Errorf("%s = %d after a real search, want >= 1", counter, v)
		}
	}
	if !regexp.MustCompile(`(?m)^mapserve_stage_duration_seconds_count\{stage="search"\} [1-9]`).MatchString(text) {
		t.Error("search stage histogram count is zero after a real search")
	}
}
