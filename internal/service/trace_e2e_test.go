package service

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lodim/internal/trace"
)

// clientTraceparent is the W3C example traceparent: the e2e test plays
// an upstream caller that already has a trace open.
const clientTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// TestE2ETraceRoundTrip is the tracing acceptance path: a /v1/map
// request carrying a W3C traceparent joins the caller's trace, the
// response header and the access-log line agree on the trace id, the
// /debug/requests inspector shows the completed trace with the nested
// search spans, and its Perfetto export validates.
func TestE2ETraceRoundTrip(t *testing.T) {
	var logBuf syncBuffer
	svc, srv := newTestServer(t, Config{
		Pool: 2,
		// ≥ 2 workers forces the parallel candidate sweep so the span
		// taxonomy includes worker spans regardless of the host's cores.
		SearchWorkers: 2,
		TraceBuffer:   8,
		Logger:        slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	debug := httptest.NewServer(svc.DebugHandler())
	defer debug.Close()

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/map", strings.NewReader(e2eBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", clientTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status = %d", resp.StatusCode)
	}

	// The response traceparent continues the caller's trace under the
	// server's own root span id.
	traceID, spanID, ok := trace.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get("Traceparent"))
	}
	if want := "4bf92f3577b34da6a3ce929d0e0e4736"; traceID != want {
		t.Fatalf("response trace id = %s, want the caller's %s", traceID, want)
	}
	if spanID == "00f067aa0ba902b7" {
		t.Error("response span id echoes the caller's span instead of the server root")
	}
	reqID := resp.Header.Get("X-Mapserve-Request")
	if reqID == "" {
		t.Fatal("no X-Mapserve-Request id")
	}

	// The access-log line carries the same trace id, joined to the same
	// request id the client saw.
	var line struct {
		accessLine
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal([]byte(waitLines(t, &logBuf, 1)[0]), &line); err != nil {
		t.Fatal(err)
	}
	if line.Trace != traceID {
		t.Errorf("access-log trace = %q, header trace = %q", line.Trace, traceID)
	}
	if line.ID != reqID {
		t.Errorf("access-log id = %q, header id = %q", line.ID, reqID)
	}

	// The inspector shows the completed trace. The root span ends just
	// after the response bytes leave, so poll briefly.
	var detail string
	for deadline := time.Now().Add(5 * time.Second); ; {
		dresp, err := http.Get(debug.URL + "/?id=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(dresp.Body)
		dresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if dresp.StatusCode == http.StatusOK {
			detail = string(body)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared in the inspector (last: %d %s)", traceID, dresp.StatusCode, body)
		}
		time.Sleep(time.Millisecond)
	}
	for _, want := range []string{
		"<b>map</b>", "<b>flight</b>", "<b>joint-search</b>", "<b>worker</b>", "<b>pi-search</b>",
		"request_id=" + reqID, "parent_span_id=00f067aa0ba902b7",
	} {
		if !strings.Contains(detail, want) {
			t.Errorf("inspector detail missing %q", want)
		}
	}

	// The JSON list view carries the trace and the shared status block.
	lresp, err := http.Get(debug.URL + "/?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
		} `json:"traces"`
		Total  int64  `json:"total"`
		Status Status `json:"status"`
	}
	err = json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 || list.Traces[0].TraceID != traceID || list.Traces[0].Name != "map" {
		t.Errorf("inspector list = %+v, want trace %s (map) first", list.Traces, traceID)
	}
	if list.Status.Status != "ok" || !list.Status.TraceEnabled {
		t.Errorf("inspector status block = %+v", list.Status)
	}

	// The Perfetto export validates against the schema.
	presp, err := http.Get(debug.URL + "/?id=" + traceID + "&format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(presp.Body)
	presp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidatePerfetto(data); err != nil {
		t.Errorf("exported trace rejected: %v\n%s", err, data)
	}
}

// TestE2ETraceDisabled: with TraceBuffer 0 nothing traces — no
// response traceparent, no trace field in the log, and the debug
// handler says so instead of serving an empty inspector.
func TestE2ETraceDisabled(t *testing.T) {
	var logBuf syncBuffer
	svc, srv := newTestServer(t, Config{
		Pool:   1,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	status, hdr, _ := postJSON(t, srv.URL+"/v1/map", e2eBody)
	if status != http.StatusOK {
		t.Fatalf("map status = %d", status)
	}
	if tp := hdr.Get("Traceparent"); tp != "" {
		t.Errorf("untraced response carries traceparent %q", tp)
	}
	if line := waitLines(t, &logBuf, 1)[0]; strings.Contains(line, `"trace"`) {
		t.Errorf("untraced access log carries a trace field: %s", line)
	}
	dsrv := httptest.NewServer(svc.DebugHandler())
	defer dsrv.Close()
	dresp, err := http.Get(dsrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "tracing disabled") {
		t.Errorf("disabled inspector: %d %s", dresp.StatusCode, body)
	}
}

// TestE2EHealthzStatusJSON: the liveness probe serves the shared
// Status snapshot as JSON — 200/ok while serving, 503/shutting_down
// after Close — with build identity and runtime vitals populated.
func TestE2EHealthzStatusJSON(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 1, TraceBuffer: 4})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("healthz content type = %q", ct)
	}
	var st Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" {
		t.Errorf("status = %q, want ok", st.Status)
	}
	if st.GoVersion == "" || st.Goroutines <= 0 || st.UptimeSeconds < 0 {
		t.Errorf("vitals incomplete: %+v", st)
	}
	if !st.TraceEnabled {
		t.Error("trace_enabled false with a trace buffer configured")
	}
	if st.StartTime.IsZero() {
		t.Error("start_time missing")
	}

	svc.Close()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || st.Status != "shutting_down" {
		t.Errorf("post-close healthz = %d %q, want 503 shutting_down", resp.StatusCode, st.Status)
	}
}
