package service

// The Pareto endpoint: POST /v1/pareto runs the multi-objective joint
// search (schedule.FindPareto) and returns the certified front over
// (total time, processors, buffer depth, link count).
//
// Caching follows the map endpoint's canonical discipline with one
// extra move: the composite key covers only the knobs that shape the
// front (problem identity, dims, MaxEntry, MaxCost, TimeSlack).
// Selection knobs — mode, lex order, weights — never enter the key,
// because they pick a member *from* the front without changing it; the
// Best index is recomputed per request from the cached front, so every
// selection of one problem costs a single search.
//
// Every front that enters the cache is verifier-certified first: the
// searching node runs verify.CertifyPareto (member certificates plus
// the non-domination and pinned-order invariants) on the canonical
// result, and a node receiving a front over the peer protocol runs the
// same certification before trusting it — the Pareto leg's
// cache-poisoning defense subsumes the map leg's revalidation.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lodim/internal/cluster"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/trace"
	"lodim/internal/uda"
	"lodim/internal/verify"
)

// maxTimeSlack caps the requested window widening: every extra level
// re-enumerates the schedule cone once per candidate S, so an
// unbounded slack would let one request buy an unbounded search.
const maxTimeSlack = 64

// ParetoRequest asks for the Pareto front of a mapping problem. The
// algorithm and search knobs mirror MapRequest (WireWeight is absent:
// the link axis replaces the scalarized wire term); the selection
// knobs choose which front member the response marks Best.
type ParetoRequest struct {
	Algorithm    string    `json:"algorithm,omitempty"`
	Sizes        []int64   `json:"sizes,omitempty"`
	Bounds       []int64   `json:"bounds,omitempty"`
	Dependencies [][]int64 `json:"dependencies,omitempty"`
	Dims         int       `json:"dims,omitempty"`
	MaxEntry     int64     `json:"max_entry,omitempty"`
	MaxCost      int64     `json:"max_cost,omitempty"`
	// TimeSlack admits schedules up to (optimal time + TimeSlack) into
	// the front (0 = time-optimal members only; capped by maxTimeSlack).
	TimeSlack int64 `json:"time_slack,omitempty"`
	// Mode selects Best: "front" (default — the pinned-order head),
	// "lex", or "weighted".
	Mode string `json:"mode,omitempty"`
	// LexOrder is the axis priority for mode "lex": names among
	// "time", "processors", "buffers", "links"; omitted axes follow in
	// canonical order.
	LexOrder []string `json:"lex_order,omitempty"`
	// Weights are the per-axis scalarization weights for mode
	// "weighted", keyed by axis name.
	Weights   map[string]int64 `json:"weights,omitempty"`
	TimeoutMS int64            `json:"timeout_ms,omitempty"`
}

// ParetoFrontMember is one front element in the request's axis order.
type ParetoFrontMember struct {
	S          [][]int64 `json:"space_mapping"`
	Pi         []int64   `json:"schedule"`
	TotalTime  int64     `json:"total_time"`
	Processors int64     `json:"processors"`
	Buffers    int64     `json:"buffers"`
	Links      int64     `json:"links"`
}

// ParetoResponse carries the certified front in pinned deterministic
// order. Best indexes the member the request's selection mode picked.
type ParetoResponse struct {
	Algorithm    string              `json:"algorithm"`
	Dim          int                 `json:"n"`
	NumDeps      int                 `json:"m"`
	Bounds       []int64             `json:"mu"`
	Dims         int                 `json:"array_dims"`
	Front        []ParetoFrontMember `json:"front"`
	Best         int                 `json:"best"`
	TimeBound    int64               `json:"time_bound"`
	Candidates   int                 `json:"candidates"`
	Pruned       int                 `json:"pruned"`
	Certified    bool                `json:"certified"`
	CanonicalKey string              `json:"canonical_key"`
}

// paretoSelection parses and validates the request's selection knobs.
// Knobs belonging to a mode that is not selected are rejected rather
// than ignored — a silently dropped knob reads like a different front.
func paretoSelection(req *ParetoRequest) (*schedule.ParetoOptions, error) {
	sel := &schedule.ParetoOptions{}
	switch req.Mode {
	case "", "front":
		sel.Mode = schedule.ModeFront
	case "lex":
		sel.Mode = schedule.ModeLex
	case "weighted":
		sel.Mode = schedule.ModeWeighted
	default:
		return nil, badRequest("service: unknown pareto mode %q (want front|lex|weighted)", req.Mode)
	}
	if sel.Mode != schedule.ModeLex && len(req.LexOrder) > 0 {
		return nil, badRequest("service: lex_order is only valid with mode \"lex\"")
	}
	if sel.Mode != schedule.ModeWeighted && len(req.Weights) > 0 {
		return nil, badRequest("service: weights are only valid with mode \"weighted\"")
	}
	for _, name := range req.LexOrder {
		o, err := schedule.ParseObjective(name)
		if err != nil {
			return nil, &BadRequestError{Err: err}
		}
		sel.LexOrder = append(sel.LexOrder, o)
	}
	for name, w := range req.Weights {
		o, err := schedule.ParseObjective(name)
		if err != nil {
			return nil, &BadRequestError{Err: err}
		}
		sel.Weights[o] = w
	}
	if err := sel.ValidateSelection(); err != nil {
		return nil, &BadRequestError{Err: err}
	}
	return sel, nil
}

// validateParetoRequest reuses the map request validation for the
// shared fields and checks the Pareto-specific knobs.
func validateParetoRequest(req *ParetoRequest) (*uda.Algorithm, int, *schedule.ParetoOptions, error) {
	mreq := &MapRequest{
		Algorithm:    req.Algorithm,
		Sizes:        req.Sizes,
		Bounds:       req.Bounds,
		Dependencies: req.Dependencies,
		Dims:         req.Dims,
		MaxEntry:     req.MaxEntry,
		MaxCost:      req.MaxCost,
	}
	algo, dims, err := validateMapRequest(mreq)
	if err != nil {
		return nil, 0, nil, err
	}
	if req.TimeSlack < 0 || req.TimeSlack > maxTimeSlack {
		return nil, 0, nil, badRequest("service: time_slack %d out of range [0, %d]", req.TimeSlack, maxTimeSlack)
	}
	sel, err := paretoSelection(req)
	if err != nil {
		return nil, 0, nil, err
	}
	return algo, dims, sel, nil
}

// paretoCacheKey is the front's composite cache/shard identity. The
// selection knobs are absent by design (see the file comment).
func paretoCacheKey(canonKey string, dims int, req *ParetoRequest) string {
	return fmt.Sprintf("pareto|%s|dims=%d|me=%d|mc=%d|slack=%d", canonKey, dims, req.MaxEntry, req.MaxCost, req.TimeSlack)
}

// Pareto answers a multi-objective front query: canonical cache first,
// then a singleflight-deduplicated flight that forwards to the key's
// ring owner or runs the admission-controlled search, certifying the
// front before it is cached.
func (s *Service) Pareto(ctx context.Context, req *ParetoRequest) (*ParetoResponse, CacheStatus, error) {
	done, err := s.begin()
	if err != nil {
		return nil, "", err
	}
	defer done()

	algo, dims, sel, err := validateParetoRequest(req)
	if err != nil {
		return nil, "", err
	}

	canonStart := time.Now()
	canon := Canonicalize(algo)
	key := paretoCacheKey(canon.Key, dims, req)
	recordStage(ctx, stageCanonicalize, canonStart)
	if v, ok := s.cache.Get(key); ok {
		s.met.cacheHits.Add(1)
		return s.paretoResponse(ctx, algo, canon, key, dims, sel, v.(*schedule.ParetoResult))
	}

	fctx, fspan := trace.Start(ctx, "flight")
	flightStart := time.Now()
	v, err, leader, mark := s.flights.DoMarked(fctx, key, func(fc context.Context) (any, error) {
		return s.runParetoSearch(fc, key, canon, dims, req, true)
	})
	if !leader {
		s.recordFollowerWait(ctx, mark, flightStart)
	}
	if fspan != nil {
		role := "follower"
		if leader {
			role = "leader"
		}
		fspan.SetStr("role", role)
		if err != nil {
			fspan.SetStr("error", err.Error())
		}
		fspan.End()
	}
	if err != nil {
		status := CacheShared
		if leader {
			status = CacheMiss
			s.met.cacheMisses.Add(1)
		}
		return nil, status, err
	}
	out := v.(*paretoFlightOutcome)
	status := CacheShared
	switch {
	case leader && out.fromCache:
		status = CacheHit
		s.met.cacheHits.Add(1)
	case leader && out.viaPeer:
		status = CacheStatus("peer_" + out.peerDisposition)
	case leader:
		status = CacheMiss
		s.met.cacheMisses.Add(1)
	}
	resp, _, err := s.paretoResponse(ctx, algo, canon, key, dims, sel, out.res)
	return resp, status, err
}

// paretoFlightOutcome mirrors flightOutcome for the Pareto flight.
type paretoFlightOutcome struct {
	res             *schedule.ParetoResult
	fromCache       bool
	viaPeer         bool
	peerDisposition string
}

// runParetoSearch is the body of a Pareto flight — the exact shape of
// runSearch with the multi-objective engine and a certification gate
// in front of the cache.
func (s *Service) runParetoSearch(ctx context.Context, key string, canon *Canonical, dims int, req *ParetoRequest, allowForward bool) (*paretoFlightOutcome, error) {
	if v, ok := s.cache.Get(key); ok {
		return &paretoFlightOutcome{res: v.(*schedule.ParetoResult), fromCache: true}, nil
	}
	fellBack := false
	if allowForward {
		out, err, verdict := s.tryParetoPeerLookup(ctx, key, canon, dims, req)
		switch verdict {
		case peerDone:
			return out, err
		case peerFailed:
			fellBack = true
		}
	}
	queueStart := time.Now()
	release, err := s.acquire(ctx)
	recordStage(ctx, stageQueue, queueStart)
	if err != nil {
		return nil, err
	}
	defer release()
	if v, ok := s.cache.Get(key); ok {
		return &paretoFlightOutcome{res: v.(*schedule.ParetoResult), fromCache: true}, nil
	}
	s.met.searches.Add(1)
	if fm := markFrom(ctx); fm != nil {
		fm.searchStartNs.CompareAndSwap(0, time.Now().UnixNano())
	}
	opts := &schedule.ParetoOptions{
		Space: schedule.SpaceOptions{
			MaxEntry: req.MaxEntry,
			Schedule: schedule.Options{MaxCost: req.MaxCost, Workers: s.cfg.SearchWorkers},
		},
		TimeSlack: req.TimeSlack,
		// ModeFront: selection happens per request, after the cache.
	}
	start := time.Now()
	res, err := s.searchPareto(ctx, canon.Algo, dims, opts)
	s.met.observeSearch(time.Since(start), trace.FromContext(ctx).TraceID())
	recordStage(ctx, stageSearch, start)
	if err != nil {
		return nil, err
	}
	s.met.observeSearchStats(res.Stats)
	// No front enters the cache uncertified: the independent verifier
	// re-derives every member certificate, every objective vector, and
	// the non-domination/order invariants. A failure here is an engine
	// bug, not a bad request — surface it loudly.
	if err := s.certifyFront(ctx, canon.Algo, res); err != nil {
		return nil, fmt.Errorf("service: front failed certification: %w", err)
	}
	s.cache.Add(key, res, estimateParetoBytes(key, res))
	if fellBack {
		s.fillParetoOwnerAsync(key, canon, dims, req, res)
	}
	return &paretoFlightOutcome{res: res}, nil
}

// certifyFront runs the Pareto verifier over a canonical-coordinate
// result. Optimality analysis is skipped — slack-window members are
// deliberately non-optimal in time — but member validity, conflict-
// freedom, objective recomputation, the window, non-domination, and
// the pinned order are all re-derived.
func (s *Service) certifyFront(ctx context.Context, canonAlgo *uda.Algorithm, res *schedule.ParetoResult) error {
	cert, err := verify.CertifyPareto(ctx, canonAlgo, paretoVerifyInputs(res), res.TimeBound, &verify.Options{SkipOptimality: true})
	if err != nil {
		return err
	}
	return cert.Err()
}

func paretoVerifyInputs(res *schedule.ParetoResult) []verify.ParetoInput {
	inputs := make([]verify.ParetoInput, len(res.Front))
	for i, m := range res.Front {
		inputs[i] = verify.ParetoInput{S: m.Mapping.S, Pi: m.Mapping.Pi, Vector: [verify.ParetoAxes]int64(m.Vector)}
	}
	return inputs
}

// paretoResponse translates a canonical front into the request's axis
// order and selects Best under the request's mode. The translation is
// an index-space isomorphism, so every objective vector is invariant;
// only S's columns and Π's entries move.
func (s *Service) paretoResponse(ctx context.Context, algo *uda.Algorithm, canon *Canonical, key string, dims int, sel *schedule.ParetoOptions, res *schedule.ParetoResult) (*ParetoResponse, CacheStatus, error) {
	defer recordStage(ctx, stageTranslate, time.Now())
	best, err := schedule.SelectBest(res.Front, sel)
	if err != nil {
		// Selection was validated before the search; failing here means a
		// cached front turned empty, which cannot happen.
		return nil, "", err
	}
	front := make([]ParetoFrontMember, len(res.Front))
	for i, m := range res.Front {
		front[i] = ParetoFrontMember{
			S:          matrixRows(canon.MatrixToRequest(m.Mapping.S)),
			Pi:         canon.VectorToRequest(m.Mapping.Pi),
			TotalTime:  m.Vector[schedule.ObjTime],
			Processors: m.Vector[schedule.ObjProcessors],
			Buffers:    m.Vector[schedule.ObjBuffers],
			Links:      m.Vector[schedule.ObjLinks],
		}
	}
	return &ParetoResponse{
		Algorithm:    algo.Name,
		Dim:          algo.Dim(),
		NumDeps:      algo.NumDeps(),
		Bounds:       algo.Set.Upper,
		Dims:         dims,
		Front:        front,
		Best:         best,
		TimeBound:    res.TimeBound,
		Candidates:   res.Candidates,
		Pruned:       res.Pruned,
		Certified:    true,
		CanonicalKey: key,
	}, CacheHit, nil
}

// tryParetoPeerLookup forwards a missed front key to its ring owner —
// the Pareto leg of tryPeerLookup, with the same three-way verdict.
func (s *Service) tryParetoPeerLookup(ctx context.Context, key string, canon *Canonical, dims int, req *ParetoRequest) (*paretoFlightOutcome, error, peerVerdict) {
	clu := s.clu
	if clu == nil {
		return nil, nil, peerSkip
	}
	owner := clu.ring.Owner(key)
	if owner.ID == clu.self.ID {
		return nil, nil, peerSkip
	}

	pctx, span := trace.Start(ctx, "peer-lookup")
	var tp string
	if span != nil {
		span.SetStr("peer", owner.ID)
		tp = trace.Traceparent(span.TraceID(), span.IDHex())
		defer span.End()
	}
	defer recordStage(ctx, stageForward, time.Now())
	cctx, cancel := context.WithTimeout(pctx, s.EffectiveTimeout(req.TimeoutMS)+peerLookupGrace)
	defer cancel()
	lreq := &cluster.ParetoLookupRequest{ParetoProblem: clusterParetoProblem(key, canon, dims, req), TimeoutMS: req.TimeoutMS}
	resp, err := clu.client.ParetoLookup(cctx, owner, lreq, tp)
	if err != nil {
		var perr *cluster.PeerError
		if errors.As(err, &perr) && perr.Status == http.StatusUnprocessableEntity {
			s.met.peerForwardMiss.Add(1)
			if span != nil {
				span.SetStr("disposition", "infeasible")
			}
			return nil, fmt.Errorf("%w (decided by peer %s)", schedule.ErrNoSchedule, owner.ID), peerDone
		}
		s.met.peerForwardErrors.Add(1)
		if span != nil {
			span.SetStr("error", err.Error())
		}
		if ctx.Err() != nil {
			return nil, ctx.Err(), peerDone
		}
		return nil, nil, peerFailed
	}
	res, err := s.paretoFromWire(cctx, canon.Algo, dims, &resp.Result)
	if err != nil {
		s.met.peerForwardErrors.Add(1)
		if span != nil {
			span.SetStr("error", err.Error())
		}
		return nil, nil, peerFailed
	}
	switch resp.Disposition {
	case cluster.DispositionHit:
		s.met.peerForwardHit.Add(1)
	case cluster.DispositionShared:
		s.met.peerForwardShared.Add(1)
	default:
		s.met.peerForwardMiss.Add(1)
	}
	if span != nil {
		span.SetStr("disposition", resp.Disposition)
	}
	s.cache.Add(key, res, estimateParetoBytes(key, res))
	return &paretoFlightOutcome{res: res, viaPeer: true, peerDisposition: resp.Disposition}, nil, peerDone
}

// fillParetoOwnerAsync pushes a locally-searched front to its ring
// owner after a failed forward, like fillOwnerAsync.
func (s *Service) fillParetoOwnerAsync(key string, canon *Canonical, dims int, req *ParetoRequest, res *schedule.ParetoResult) {
	clu := s.clu
	if clu == nil {
		return
	}
	owner := clu.ring.Owner(key)
	if owner.ID == clu.self.ID {
		return
	}
	done, err := s.begin()
	if err != nil {
		return
	}
	freq := &cluster.ParetoFillRequest{ParetoProblem: clusterParetoProblem(key, canon, dims, req), Result: *wireFromPareto(res)}
	go func() {
		defer done()
		ctx, cancel := context.WithTimeout(context.Background(), clu.fillTimeout)
		defer cancel()
		if err := clu.client.ParetoFill(ctx, owner, freq); err != nil {
			s.met.peerFillSendErrs.Add(1)
			return
		}
		s.met.peerFillsSent.Add(1)
	}()
}

// PeerParetoLookup answers one forwarded front problem as its ring
// owner, sharing the flight group with origin /v1/pareto requests.
func (s *Service) PeerParetoLookup(ctx context.Context, lreq *cluster.ParetoLookupRequest) (*cluster.ParetoLookupResponse, error) {
	done, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer done()

	canon, dims, req, key, err := s.problemFromParetoWire(&lreq.ParetoProblem)
	if err != nil {
		return nil, err
	}
	req.TimeoutMS = lreq.TimeoutMS
	if v, ok := s.cache.Get(key); ok {
		s.met.peerServedHit.Add(1)
		return &cluster.ParetoLookupResponse{Disposition: cluster.DispositionHit, Result: *wireFromPareto(v.(*schedule.ParetoResult))}, nil
	}

	fctx, fspan := trace.Start(ctx, "flight")
	flightStart := time.Now()
	v, err, leader, mark := s.flights.DoMarked(fctx, key, func(fc context.Context) (any, error) {
		return s.runParetoSearch(fc, key, canon, dims, req, false)
	})
	if !leader {
		s.recordFollowerWait(ctx, mark, flightStart)
	}
	if fspan != nil {
		role := "follower"
		if leader {
			role = "leader"
		}
		fspan.SetStr("role", role)
		if err != nil {
			fspan.SetStr("error", err.Error())
		}
		fspan.End()
	}
	if err != nil {
		return nil, err
	}
	out := v.(*paretoFlightOutcome)
	disposition := cluster.DispositionShared
	switch {
	case !leader:
		s.met.peerServedShared.Add(1)
	case out.fromCache:
		disposition = cluster.DispositionHit
		s.met.peerServedHit.Add(1)
	default:
		disposition = cluster.DispositionMiss
		s.met.peerServedMiss.Add(1)
	}
	return &cluster.ParetoLookupResponse{Disposition: disposition, Result: *wireFromPareto(out.res)}, nil
}

// PeerParetoFill accepts a best-effort front push, fully re-certified
// before it enters the cache.
func (s *Service) PeerParetoFill(ctx context.Context, freq *cluster.ParetoFillRequest) (*cluster.ParetoFillResponse, error) {
	done, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer done()

	canon, dims, _, key, err := s.problemFromParetoWire(&freq.ParetoProblem)
	if err != nil {
		s.met.peerFillsRejected.Add(1)
		return nil, err
	}
	res, err := s.paretoFromWire(ctx, canon.Algo, dims, &freq.Result)
	if err != nil {
		s.met.peerFillsRejected.Add(1)
		return nil, &BadRequestError{Err: err}
	}
	s.cache.Add(key, res, estimateParetoBytes(key, res))
	s.met.peerFillsRecv.Add(1)
	return &cluster.ParetoFillResponse{Stored: true}, nil
}

// clusterParetoProblem serializes a canonical front problem for the
// peer protocol.
func clusterParetoProblem(key string, canon *Canonical, dims int, req *ParetoRequest) cluster.ParetoProblem {
	algo := canon.Algo
	deps := make([][]int64, algo.NumDeps())
	for c := range deps {
		deps[c] = algo.D.Col(c)
	}
	return cluster.ParetoProblem{
		Key:          key,
		Bounds:       algo.Set.Upper,
		Dependencies: deps,
		Dims:         dims,
		MaxEntry:     req.MaxEntry,
		MaxCost:      req.MaxCost,
		TimeSlack:    req.TimeSlack,
	}
}

// problemFromParetoWire rebuilds and verifies a peer-supplied front
// problem: full request validation, re-canonicalization, and the
// recomputed key must match the wire key.
func (s *Service) problemFromParetoWire(p *cluster.ParetoProblem) (*Canonical, int, *ParetoRequest, string, error) {
	if p.Key == "" {
		return nil, 0, nil, "", badRequest("service: peer pareto problem carries no key")
	}
	req := &ParetoRequest{
		Bounds:       p.Bounds,
		Dependencies: p.Dependencies,
		Dims:         p.Dims,
		MaxEntry:     p.MaxEntry,
		MaxCost:      p.MaxCost,
		TimeSlack:    p.TimeSlack,
	}
	algo, dims, _, err := validateParetoRequest(req)
	if err != nil {
		return nil, 0, nil, "", err
	}
	canon := Canonicalize(algo)
	key := paretoCacheKey(canon.Key, dims, req)
	if key != p.Key {
		return nil, 0, nil, "", badRequest("service: peer pareto key %q does not match recomputed key %q", p.Key, key)
	}
	return canon, dims, req, key, nil
}

// wireFromPareto flattens a canonical front for the peer protocol.
func wireFromPareto(res *schedule.ParetoResult) *cluster.ParetoWireResult {
	members := make([]cluster.ParetoWireMember, len(res.Front))
	for i, m := range res.Front {
		members[i] = cluster.ParetoWireMember{
			S:      matrixRows(m.Mapping.S),
			Pi:     m.Mapping.Pi,
			Vector: [cluster.ParetoAxes]int64(m.Vector),
		}
	}
	return &cluster.ParetoWireResult{
		Members:    members,
		TimeBound:  res.TimeBound,
		Candidates: res.Candidates,
		Pruned:     res.Pruned,
	}
}

// paretoFromWire revalidates a peer-supplied front end to end and
// reassembles the canonical ParetoResult. The revalidation IS the
// Pareto verifier: every member independently re-certified, every
// objective vector recomputed, the window, non-domination and pinned
// order re-checked — so a buggy or malicious peer cannot plant an
// invalid member, a dominated vector, or a misordered front.
func (s *Service) paretoFromWire(ctx context.Context, canonAlgo *uda.Algorithm, dims int, w *cluster.ParetoWireResult) (*schedule.ParetoResult, error) {
	if len(w.Members) == 0 {
		return nil, errors.New("service: peer front is empty")
	}
	n := canonAlgo.Dim()
	front := make([]schedule.ParetoMember, len(w.Members))
	inputs := make([]verify.ParetoInput, len(w.Members))
	for i := range w.Members {
		wm := &w.Members[i]
		if len(wm.S) != dims {
			return nil, fmt.Errorf("service: peer front member %d has %d space rows, want %d", i, len(wm.S), dims)
		}
		for r, row := range wm.S {
			if len(row) != n {
				return nil, fmt.Errorf("service: peer front member %d S row %d has %d entries, want %d", i, r+1, len(row), n)
			}
		}
		if len(wm.Pi) != n {
			return nil, fmt.Errorf("service: peer front member %d Π has %d entries, want %d", i, len(wm.Pi), n)
		}
		m, err := schedule.NewMapping(canonAlgo, intmat.FromRows(wm.S...), intmat.Vector(wm.Pi))
		if err != nil {
			return nil, fmt.Errorf("service: peer front member %d rejected: %w", i, err)
		}
		front[i] = schedule.ParetoMember{Mapping: m, Vector: schedule.ObjectiveVector(wm.Vector)}
		inputs[i] = verify.ParetoInput{S: m.S, Pi: m.Pi, Vector: [verify.ParetoAxes]int64(wm.Vector)}
	}
	cert, err := verify.CertifyPareto(ctx, canonAlgo, inputs, w.TimeBound, &verify.Options{SkipOptimality: true})
	if err != nil {
		return nil, fmt.Errorf("service: peer front certification: %w", err)
	}
	if cerr := cert.Err(); cerr != nil {
		return nil, fmt.Errorf("service: peer front rejected: %w", cerr)
	}
	return &schedule.ParetoResult{
		Front:      front,
		Best:       0,
		TimeBound:  w.TimeBound,
		Candidates: w.Candidates,
		Pruned:     w.Pruned,
	}, nil
}

// estimateParetoBytes approximates the resident size of one cached
// front, like estimateResultBytes per member.
func estimateParetoBytes(key string, res *schedule.ParetoResult) int64 {
	b := int64(len(key)) + 512
	for _, m := range res.Front {
		if m.Mapping == nil {
			continue
		}
		n := int64(m.Mapping.S.Cols())
		rows := int64(m.Mapping.S.Rows())
		b += 256 + 8*n*(2*rows+2)
	}
	return b
}
