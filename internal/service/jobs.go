package service

// The async job tier of the service (DESIGN.md §13): problems that do
// not fit a request deadline are submitted to POST /v1/jobs, executed
// by the internal/jobs worker pool through the same engines as the
// synchronous endpoints, spooled to disk at every transition, and
// resumed after a restart.
//
// Identity and routing share one principle with the cache tier: a job
// ID is a deterministic hash of the job kind and the canonical problem
// key, so duplicate submissions (in any axis permutation) collapse
// onto one job, a restarted node re-derives the same IDs from its
// spool, and a cluster routes every job endpoint by hashing the ID on
// the same consistent ring as cache keys. A non-owner proxies job
// requests to the ring owner; requests arriving with a hop header are
// always handled locally, so a job forward chain is at most
// origin → owner, mirroring the cache tier's structural loop freedom.
//
// The stored result of a done map/verify job is produced with exactly
// the encoder settings of writeJSON, so GET /v1/jobs/{id}/result
// replays the bytes the synchronous endpoint would have sent.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"

	"lodim/internal/cluster"
	"lodim/internal/jobs"
	"lodim/internal/trace"
)

// JobsConfig enables the durable async job tier.
type JobsConfig struct {
	// Dir is the spool directory (required when Jobs is set).
	Dir string
	// Workers is the job execution fan-out (≤ 0 selects 2). Job workers
	// acquire the same admission pool as synchronous requests, so the
	// total search concurrency stays bounded by Config.Pool.
	Workers int
	// PerTenantQueue bounds each tenant's queued backlog (≤ 0 selects
	// 64); beyond it submissions answer 429 with Retry-After.
	PerTenantQueue int
}

// Job kinds accepted by POST /v1/jobs.
const (
	JobKindMap    = "map"
	JobKindVerify = "verify"
)

// ErrJobsDisabled answers job requests on a node without a configured
// job tier — mapped to 404.
var ErrJobsDisabled = errors.New("service: job tier disabled (start with a jobs spool directory)")

// JobSubmitRequest asks for asynchronous execution of one problem.
// Exactly one of Map/Verify must be set, matching Kind.
type JobSubmitRequest struct {
	// Kind selects the engine: "map" (default when only Map is set) or
	// "verify".
	Kind string `json:"kind,omitempty"`
	// Tenant is the fairness bucket the job queues under; empty is the
	// anonymous tenant.
	Tenant string         `json:"tenant,omitempty"`
	Map    *MapRequest    `json:"map,omitempty"`
	Verify *VerifyRequest `json:"verify,omitempty"`
}

// JobResponse is the status body of the job endpoints: the snapshot
// plus the endpoint URLs a client polls or streams.
type JobResponse struct {
	jobs.Snapshot
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
	ResultURL string `json:"result_url,omitempty"`
}

func jobResponse(sn jobs.Snapshot) *JobResponse {
	resp := &JobResponse{
		Snapshot:  sn,
		StatusURL: "/v1/jobs/" + sn.ID,
		EventsURL: "/v1/jobs/" + sn.ID + "/events",
	}
	if sn.State == jobs.StateDone {
		resp.ResultURL = "/v1/jobs/" + sn.ID + "/result"
	}
	return resp
}

// jobIdentity validates a submission and derives its deterministic
// identity: the kind, the canonical composite key (the same string the
// cache and cluster tiers use), and the payload stored for the
// executor.
func (s *Service) jobIdentity(req *JobSubmitRequest) (kind, key string, payload []byte, err error) {
	kind = req.Kind
	if kind == "" {
		switch {
		case req.Map != nil && req.Verify == nil:
			kind = JobKindMap
		case req.Verify != nil && req.Map == nil:
			kind = JobKindVerify
		}
	}
	switch kind {
	case JobKindMap:
		if req.Map == nil || req.Verify != nil {
			return "", "", nil, badRequest("service: job kind %q needs exactly the \"map\" problem", kind)
		}
		algo, dims, err := validateMapRequest(req.Map)
		if err != nil {
			return "", "", nil, err
		}
		canon := Canonicalize(algo)
		key = mapCacheKey(canon.Key, dims, req.Map)
		payload, err = json.Marshal(req.Map)
		if err != nil {
			return "", "", nil, err
		}
		return kind, key, payload, nil
	case JobKindVerify:
		if req.Verify == nil || req.Map != nil {
			return "", "", nil, badRequest("service: job kind %q needs exactly the \"verify\" problem", kind)
		}
		vc, err := s.prepareVerify(req.Verify)
		if err != nil {
			return "", "", nil, err
		}
		key = vc.key
		payload, err = json.Marshal(req.Verify)
		if err != nil {
			return "", "", nil, err
		}
		return kind, key, payload, nil
	default:
		return "", "", nil, badRequest("service: unknown job kind %q (want %q or %q)", kind, JobKindMap, JobKindVerify)
	}
}

// executeJob is the jobs.Executor: it runs one attempt through the
// synchronous engines under a background context (jobs outlive the
// submitting request) bounded by the request's own clamped timeout,
// and encodes the result with writeJSON's exact encoder settings so
// the stored bytes equal the synchronous response body. Admission
// pressure and shutdown races surface as retryable errors — the
// manager re-queues instead of failing the job.
func (s *Service) executeJob(ctx context.Context, kind string, payload json.RawMessage) ([]byte, error) {
	if s.tracer != nil {
		var root *trace.Span
		ctx, root = s.tracer.StartRoot(ctx, "job-"+kind, "")
		root.SetStr("origin", "job")
		defer root.End()
	}
	switch kind {
	case JobKindMap:
		var req MapRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("service: job payload: %w", err)
		}
		rctx, cancel := context.WithTimeout(ctx, s.EffectiveTimeout(req.TimeoutMS))
		defer cancel()
		resp, _, err := s.Map(rctx, &req)
		if err != nil {
			return nil, jobExecError(ctx, err)
		}
		return encodeJobResult(resp)
	case JobKindVerify:
		var req VerifyRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("service: job payload: %w", err)
		}
		rctx, cancel := context.WithTimeout(ctx, s.EffectiveTimeout(req.TimeoutMS))
		defer cancel()
		resp, _, err := s.VerifyMapping(rctx, &req)
		if err != nil {
			return nil, jobExecError(ctx, err)
		}
		return encodeJobResult(resp)
	default:
		return nil, fmt.Errorf("service: job kind %q has no executor", kind)
	}
}

// jobExecError classifies an engine error for the job manager:
// transient admission/lifecycle pressure is retryable; everything else
// (including a definite ErrNoSchedule infeasibility answer) fails the
// job with its message. jobCtx is the job's own context — when *it*
// was cancelled the run was aborted externally (cancellation or
// shutdown), which the manager settles itself.
func jobExecError(jobCtx context.Context, err error) error {
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrShuttingDown) {
		return &jobs.RetryableError{Err: err}
	}
	if jobCtx.Err() != nil {
		return jobCtx.Err()
	}
	return err
}

// encodeJobResult mirrors writeJSON's encoder settings (indent two
// spaces, trailing newline) byte for byte — the stored result must
// equal the synchronous response body.
func encodeJobResult(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SubmitJob validates, keys, and enqueues one asynchronous job,
// deduplicating by canonical identity.
func (s *Service) SubmitJob(req *JobSubmitRequest) (*JobResponse, error) {
	done, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer done()
	if s.jobsMgr == nil {
		return nil, ErrJobsDisabled
	}
	kind, key, payload, err := s.jobIdentity(req)
	if err != nil {
		return nil, err
	}
	sn, err := s.jobsMgr.Submit(kind, req.Tenant, key, payload)
	if err != nil {
		return nil, err
	}
	return jobResponse(sn), nil
}

// jobIDPattern bounds what the path parameter may look like before it
// is hashed onto the ring (a deterministic ID is 'j' + 16 hex chars).
var jobIDPattern = regexp.MustCompile(`^j[0-9a-f]{16}$`)

// jobOwner resolves the ring owner of a job ID; forward reports
// whether the request should be proxied (clustered, foreign owner, and
// not already a forwarded hop).
func (s *Service) jobOwner(r *http.Request, id string) (owner cluster.Member, forward bool) {
	if s.clu == nil {
		return cluster.Member{}, false
	}
	if r.Header.Get(cluster.HopHeader) != "" {
		// Forwarded once already: answer locally no matter what the
		// membership view says, so job forwards can never loop.
		return cluster.Member{}, false
	}
	owner = s.clu.ring.Owner("job|" + id)
	return owner, owner.ID != s.clu.self.ID
}

// proxyJob relays a job request to the ring owner verbatim, streaming
// the response back (flushing as it goes, so event streams stay live).
// Returns false when the owner was unreachable and the caller should
// degrade to local handling.
func (s *Service) proxyJob(w http.ResponseWriter, r *http.Request, owner cluster.Member, body []byte) bool {
	url := owner.URL + r.URL.Path
	preq, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set(cluster.HopHeader, strconv.Itoa(cluster.MaxHops))
	if len(body) > 0 {
		preq.Header.Set("Content-Type", "application/json")
	}
	resp, err := s.clu.httpc.Do(preq)
	if err != nil {
		s.clu.health.ReportError(owner.ID, err)
		return false
	}
	defer resp.Body.Close()
	s.clu.health.ReportOK(owner.ID)
	s.met.jobsForwarded.Add(1)
	for _, h := range []string{"Content-Type", "Retry-After", "X-Mapserve-Cache"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return true
		}
	}
}

func (s *Service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, &contentTooLargeError{err: fmt.Errorf("service: request body exceeds %d bytes", mbe.Limit)})
			return
		}
		s.writeError(w, badRequest("service: reading request body: %v", err))
		return
	}
	var req JobSubmitRequest
	if err := decodeJSONBytes(body, &req); err != nil {
		s.writeError(w, err)
		return
	}
	// Routing needs the deterministic ID, which needs the canonical key:
	// validate and key the problem before deciding where it runs. The
	// owner revalidates on arrival — forwarded bytes are not trusted.
	kind, key, _, err := s.jobIdentity(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	id := jobs.ID(kind, key)
	if owner, forward := s.jobOwner(r, id); forward {
		if s.proxyJob(w, r, owner, body) {
			return
		}
		// Owner unreachable: accept the job locally rather than failing
		// the submission — availability over placement, like the cache
		// tier's local-search fallback.
	}
	resp, err := s.SubmitJob(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// jobFromPath extracts and validates the {id} path parameter.
func (s *Service) jobFromPath(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.PathValue("id")
	if !jobIDPattern.MatchString(id) {
		s.writeError(w, badRequest("service: malformed job id %q", id))
		return "", false
	}
	return id, true
}

func (s *Service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	id, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if owner, forward := s.jobOwner(r, id); forward && s.proxyJob(w, r, owner, nil) {
		return
	}
	if s.jobsMgr == nil {
		s.writeError(w, ErrJobsDisabled)
		return
	}
	sn, found := s.jobsMgr.Get(id)
	if !found {
		s.writeError(w, jobs.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, jobResponse(sn))
}

func (s *Service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	id, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if owner, forward := s.jobOwner(r, id); forward && s.proxyJob(w, r, owner, nil) {
		return
	}
	if s.jobsMgr == nil {
		s.writeError(w, ErrJobsDisabled)
		return
	}
	sn, found := s.jobsMgr.Get(id)
	switch {
	case !found:
		s.writeError(w, jobs.ErrNotFound)
	case sn.State != jobs.StateDone:
		msg := fmt.Sprintf("service: job %s is %s, no result yet", id, sn.State)
		if sn.State == jobs.StateFailed {
			msg = fmt.Sprintf("service: job %s failed: %s", id, sn.Error)
		}
		writeJSON(w, http.StatusConflict, errorBody{Error: msg})
	default:
		// The stored bytes are the synchronous response body, byte for
		// byte — write them verbatim, no re-encoding.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(sn.Result)
	}
}

func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	id, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if owner, forward := s.jobOwner(r, id); forward && s.proxyJob(w, r, owner, nil) {
		return
	}
	if s.jobsMgr == nil {
		s.writeError(w, ErrJobsDisabled)
		return
	}
	sn, err := s.jobsMgr.Cancel(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobResponse(sn))
}

// handleJobEvents streams a job's state transitions as one JSON event
// per line (application/x-ndjson): the full history first, then live
// transitions until the job is terminal or the client disconnects.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	id, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if owner, forward := s.jobOwner(r, id); forward && s.proxyJob(w, r, owner, nil) {
		return
	}
	if s.jobsMgr == nil {
		s.writeError(w, ErrJobsDisabled)
		return
	}
	history, live, cancel, err := s.jobsMgr.Subscribe(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seen := 0
	emit := func(ev jobs.Event) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, ev := range history {
		emit(ev)
		seen = ev.Seq + 1
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return
			}
			if ev.Seq < seen {
				continue // already replayed from history
			}
			emit(ev)
			seen = ev.Seq + 1
		case <-r.Context().Done():
			return
		}
	}
}

// decodeJSONBytes is decodeJSON for a body already read into memory
// (the submit handler needs the raw bytes again when proxying).
func decodeJSONBytes(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("service: invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("service: trailing data after JSON body")
	}
	return nil
}

// JobStats exposes the job-tier counters (nil manager = zero stats).
func (s *Service) JobStats() jobs.Stats {
	if s.jobsMgr == nil {
		return jobs.Stats{}
	}
	return s.jobsMgr.Stats()
}
