// Package service is the mapping-as-a-service layer: it exposes the
// joint (S, Π) search, conflict checking, and systolic simulation of
// this repository behind a concurrent, cache-aware, admission-controlled
// API (HTTP handlers in http.go, plain Go methods in service.go).
//
// The centerpiece is canonical caching: a mapping query is determined by
// its index-set bounds μ, dependence matrix D, and search parameters —
// but many distinct queries are the same problem up to relabeling the
// loop axes, the exact symmetry the joint search already prunes by
// (schedule.spaceopt's axis automorphisms). The service normalizes every
// query to a canonical representative of its axis-permutation orbit,
// runs the search in canonical coordinates, caches by the canonical key,
// and translates the winning mapping back into the caller's axis order —
// so permuted variants of one problem cost a single search.
package service

import (
	"strconv"
	"strings"

	"lodim/internal/intmat"
	"lodim/internal/uda"
)

// maxCanonPerms bounds the number of axis permutations the
// canonicalizer will enumerate (the product of factorials of the
// equal-μ group sizes). Beyond the bound — which no realistic query
// reaches before the search itself becomes intractable — the
// canonicalizer degrades to the μ-sorting permutation alone: keys stay
// deterministic and cache lookups stay correct, but permuted variants
// within one oversized equal-μ group may miss each other's entries.
const maxCanonPerms = 5040 // 7!

// Canonical is an algorithm normalized under axis permutation.
type Canonical struct {
	// Algo is the canonical-coordinate instance the search runs on: μ
	// sorted ascending, dependence rows permuted accordingly, columns
	// sorted lexicographically (column order is a multiset).
	Algo *uda.Algorithm
	// Perm maps canonical axes to request axes: canonical axis i is
	// request axis Perm[i].
	Perm []int
	// Key is the canonical problem identity: every axis permutation of
	// one algorithm yields the same key (within maxCanonPerms), and
	// structurally different algorithms yield different keys.
	Key string
}

// Canonicalize normalizes a validated algorithm under the axis
// permutation symmetry. Among all permutations that sort μ ascending it
// picks the one whose permuted, column-sorted dependence matrix encodes
// lexicographically least — a total representative choice, so the
// result depends only on the algorithm's isomorphism class.
func Canonicalize(algo *uda.Algorithm) *Canonical {
	n := algo.Dim()
	mu := algo.Set.Upper
	// Stable μ-ascending base order; equal-μ axes form the groups whose
	// internal order the dependence matrix must decide.
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: stable, n is tiny
		for j := i; j > 0 && mu[base[j]] < mu[base[j-1]]; j-- {
			base[j], base[j-1] = base[j-1], base[j]
		}
	}
	var groups [][2]int
	perms := int64(1)
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && mu[base[hi]] == mu[base[lo]] {
			hi++
		}
		if hi-lo > 1 {
			groups = append(groups, [2]int{lo, hi})
			for f := int64(2); f <= int64(hi-lo); f++ {
				perms *= f
			}
		}
		lo = hi
	}

	perm := append([]int(nil), base...)
	bestPerm := append([]int(nil), base...)
	bestEnc := encodeDeps(algo.D, base)
	if perms > 1 && perms <= maxCanonPerms {
		var rec func(g int)
		rec = func(g int) {
			if g == len(groups) {
				if enc := encodeDeps(algo.D, perm); enc < bestEnc {
					bestEnc = enc
					copy(bestPerm, perm)
				}
				return
			}
			lo, hi := groups[g][0], groups[g][1]
			var permute func(i int)
			permute = func(i int) {
				if i == hi {
					rec(g + 1)
					return
				}
				for j := i; j < hi; j++ {
					perm[i], perm[j] = perm[j], perm[i]
					permute(i + 1)
					perm[i], perm[j] = perm[j], perm[i]
				}
			}
			permute(lo)
		}
		rec(0)
	}

	muCan := make(intmat.Vector, n)
	for i, ax := range bestPerm {
		muCan[i] = mu[ax]
	}
	canAlgo := &uda.Algorithm{
		Name: algo.Name,
		Set:  uda.IndexSet{Upper: muCan},
		D:    depsMatrix(algo.D, bestPerm),
	}
	var key strings.Builder
	key.WriteString("v1|mu=")
	for i, u := range muCan {
		if i > 0 {
			key.WriteByte(',')
		}
		key.WriteString(strconv.FormatInt(u, 10))
	}
	key.WriteString("|D=")
	key.WriteString(bestEnc)
	return &Canonical{Algo: canAlgo, Perm: bestPerm, Key: key.String()}
}

// encodeDeps serializes the dependence matrix with rows permuted by
// perm and columns sorted — the comparable part of a candidate key.
func encodeDeps(d *intmat.Matrix, perm []int) string {
	cols := sortedDepColumns(d, perm)
	return strings.Join(cols, ";")
}

// sortedDepColumns returns the permuted dependence columns as sorted
// strings (the multiset normal form of D's column order).
func sortedDepColumns(d *intmat.Matrix, perm []int) []string {
	cols := make([]string, d.Cols())
	var b strings.Builder
	for c := range cols {
		b.Reset()
		for i, ax := range perm {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(d.At(ax, c), 10))
		}
		cols[c] = b.String()
	}
	// Insertion sort keeps this allocation-free; m is small.
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
	return cols
}

// depsMatrix rebuilds D in canonical form: rows permuted by perm,
// columns sorted.
func depsMatrix(d *intmat.Matrix, perm []int) *intmat.Matrix {
	n, m := d.Rows(), d.Cols()
	cols := sortedDepColumns(d, perm)
	out := intmat.New(n, m)
	for c, enc := range cols {
		parts := strings.Split(enc, ",")
		v := make(intmat.Vector, n)
		for i, p := range parts {
			x, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				panic("service: internal canonical encoding error: " + err.Error())
			}
			v[i] = x
		}
		out.SetCol(c, v)
	}
	return out
}

// VectorToRequest maps a canonical-coordinate vector (a schedule Π)
// back to the request's axis order.
func (c *Canonical) VectorToRequest(v intmat.Vector) intmat.Vector {
	out := make(intmat.Vector, len(v))
	for i, ax := range c.Perm {
		out[ax] = v[i]
	}
	return out
}

// MatrixToRequest maps a canonical-coordinate matrix (a space mapping
// S, whose columns index axes) back to the request's axis order.
func (c *Canonical) MatrixToRequest(m *intmat.Matrix) *intmat.Matrix {
	out := intmat.New(m.Rows(), m.Cols())
	for i, ax := range c.Perm {
		out.SetCol(ax, m.Col(i))
	}
	return out
}

// VectorToCanonical maps a request-coordinate vector into canonical
// axis order — the inverse of VectorToRequest: out[i] = v[Perm[i]].
func (c *Canonical) VectorToCanonical(v intmat.Vector) intmat.Vector {
	out := make(intmat.Vector, len(v))
	for i, ax := range c.Perm {
		out[i] = v[ax]
	}
	return out
}

// MatrixToCanonical maps a request-coordinate matrix (columns indexed
// by axes) into canonical axis order — the inverse of MatrixToRequest.
func (c *Canonical) MatrixToCanonical(m *intmat.Matrix) *intmat.Matrix {
	out := intmat.New(m.Rows(), m.Cols())
	if m.Rows() == 0 {
		return out
	}
	for i, ax := range c.Perm {
		out.SetCol(i, m.Col(ax))
	}
	return out
}

// AxisToRequest translates a canonical axis index into the request's
// axis numbering.
func (c *Canonical) AxisToRequest(i int) int {
	if i < 0 || i >= len(c.Perm) {
		return i
	}
	return c.Perm[i]
}

// DepColumnPerm returns the column correspondence induced by the
// canonicalization's column sort: canonical dependence column j is
// request column perm[j] of d (the request's dependence matrix). When
// several request columns are identical the assignment among them is
// arbitrary — they are the same vector, so any choice is correct.
func (c *Canonical) DepColumnPerm(d *intmat.Matrix) []int {
	m := d.Cols()
	enc := make([]string, m)
	var b strings.Builder
	for col := 0; col < m; col++ {
		b.Reset()
		for i, ax := range c.Perm {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(d.At(ax, col), 10))
		}
		enc[col] = b.String()
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	// Stable insertion sort by encoding, mirroring sortedDepColumns so
	// position j here holds the request column that became canonical
	// column j.
	for i := 1; i < m; i++ {
		for j := i; j > 0 && enc[idx[j]] < enc[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}
