package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"lodim/internal/cluster"
	"lodim/internal/corpus"
	"lodim/internal/intmat"
	"lodim/internal/schedule"
	"lodim/internal/verify"
)

// vec is one front member's objective vector as the API renders it.
type vec struct{ Time, Procs, Bufs, Links int64 }

func frontVectors(resp *ParetoResponse) []vec {
	out := make([]vec, len(resp.Front))
	for i, m := range resp.Front {
		out[i] = vec{m.TotalTime, m.Processors, m.Buffers, m.Links}
	}
	return out
}

// checkFrontInvariants asserts the response-level front contract: the
// pinned order (strictly ascending lexicographic vectors — equal
// vectors cannot both be non-dominated) and pairwise non-domination.
func checkFrontInvariants(t *testing.T, resp *ParetoResponse) {
	t.Helper()
	vs := frontVectors(resp)
	if len(vs) == 0 {
		t.Fatal("empty front")
	}
	less := func(a, b vec) bool {
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Procs != b.Procs {
			return a.Procs < b.Procs
		}
		if a.Bufs != b.Bufs {
			return a.Bufs < b.Bufs
		}
		return a.Links < b.Links
	}
	dominates := func(a, b vec) bool {
		return a.Time <= b.Time && a.Procs <= b.Procs && a.Bufs <= b.Bufs && a.Links <= b.Links && a != b
	}
	for i := 1; i < len(vs); i++ {
		if !less(vs[i-1], vs[i]) {
			t.Errorf("front order violated at %d: %+v !< %+v", i, vs[i-1], vs[i])
		}
	}
	for i := range vs {
		for j := range vs {
			if i != j && dominates(vs[i], vs[j]) {
				t.Errorf("front member %d (%+v) dominates member %d (%+v)", i, vs[i], j, vs[j])
			}
		}
	}
	if resp.Best < 0 || resp.Best >= len(vs) {
		t.Errorf("best index %d out of front range [0,%d)", resp.Best, len(vs))
	}
	if !resp.Certified {
		t.Error("response not marked certified")
	}
}

// certifyResponse re-runs the independent Pareto verifier over the
// response as delivered — members and vectors in request coordinates.
func certifyResponse(t *testing.T, reqBody string, resp *ParetoResponse) {
	t.Helper()
	var req ParetoRequest
	if err := json.Unmarshal([]byte(reqBody), &req); err != nil {
		t.Fatal(err)
	}
	algo, err := algoFromRequest(req.Algorithm, req.Sizes, req.Bounds, req.Dependencies)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]verify.ParetoInput, len(resp.Front))
	for i, m := range resp.Front {
		members[i] = verify.ParetoInput{
			S:  intmat.FromRows(m.S...),
			Pi: intmat.Vector(m.Pi),
			Vector: [verify.ParetoAxes]int64{
				m.TotalTime, m.Processors, m.Buffers, m.Links,
			},
		}
	}
	cert, err := verify.CertifyPareto(context.Background(), algo, members, resp.TimeBound, &verify.Options{SkipOptimality: true})
	if err != nil {
		t.Fatalf("verifier on delivered front: %v", err)
	}
	if cerr := cert.Err(); cerr != nil {
		t.Errorf("verifier rejected the delivered front: %v", cerr)
	}
}

// TestE2EPareto: the endpoint's core contract — a miss then a
// byte-identical hit, a certified front in pinned order, the min-time
// member agreeing with /v1/map, and selection modes answered from the
// cached front without a second search.
func TestE2EPareto(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 1})

	status, hdr, body := postJSON(t, srv.URL+"/v1/pareto", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "miss" {
		t.Fatalf("cold request: %d %q %s", status, hdr.Get("X-Mapserve-Cache"), body)
	}
	status, hdr, again := postJSON(t, srv.URL+"/v1/pareto", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("warm request: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	if !bytes.Equal(body, again) {
		t.Errorf("hit body differs from miss body:\n%s\n%s", body, again)
	}
	if n := svc.met.searches.Load(); n != 1 {
		t.Fatalf("searches = %d, want 1", n)
	}

	var resp ParetoResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	checkFrontInvariants(t, &resp)
	certifyResponse(t, e2eBody, &resp)

	// The pinned order leads with time, so the head is the time-optimal
	// member — it must agree with the single-objective endpoint.
	status, _, mapBody := postJSON(t, srv.URL+"/v1/map", e2eBody)
	if status != 200 {
		t.Fatalf("/v1/map: %d %s", status, mapBody)
	}
	var mresp MapResponse
	if err := json.Unmarshal(mapBody, &mresp); err != nil {
		t.Fatal(err)
	}
	if resp.Front[0].TotalTime != mresp.TotalTime {
		t.Errorf("pareto min-time member at %d, /v1/map optimum %d", resp.Front[0].TotalTime, mresp.TotalTime)
	}

	// Selection modes pick from the cached front: no new search, same
	// front bytes modulo the best index.
	lexBody := `{"bounds":[2,3,4],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1,"mode":"lex","lex_order":["processors","time"]}`
	status, hdr, lex := postJSON(t, srv.URL+"/v1/pareto", lexBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("lex request: %d %q %s", status, hdr.Get("X-Mapserve-Cache"), lex)
	}
	var lresp ParetoResponse
	if err := json.Unmarshal(lex, &lresp); err != nil {
		t.Fatal(err)
	}
	minProcs := lresp.Front[0].Processors
	for _, m := range lresp.Front {
		if m.Processors < minProcs {
			minProcs = m.Processors
		}
	}
	if got := lresp.Front[lresp.Best].Processors; got != minProcs {
		t.Errorf("lex(processors,time) best has %d processors, front minimum is %d", got, minProcs)
	}

	wBody := `{"bounds":[2,3,4],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1,"mode":"weighted","weights":{"time":1,"links":100}}`
	status, hdr, _ = postJSON(t, srv.URL+"/v1/pareto", wBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("weighted request: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	// One pareto search plus the /v1/map search above — the selection
	// requests must not have added any.
	if n := svc.met.searches.Load(); n != 2 {
		t.Errorf("searches = %d after selection-mode requests, want still 2", n)
	}
}

// TestE2EParetoSlackWidensFront: a slack window admits near-optimal
// members, never loses the time-optimal head, and keys the cache
// separately from the slack-0 front.
func TestE2EParetoSlackWidensFront(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 1})

	status, _, tight := postJSON(t, srv.URL+"/v1/pareto", e2eBody)
	if status != 200 {
		t.Fatalf("slack-0: %d %s", status, tight)
	}
	slackBody := `{"bounds":[2,3,4],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1,"time_slack":3}`
	status, hdr, wide := postJSON(t, srv.URL+"/v1/pareto", slackBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "miss" {
		t.Fatalf("slack-3 request: %d %q %s", status, hdr.Get("X-Mapserve-Cache"), wide)
	}
	if n := svc.met.searches.Load(); n != 2 {
		t.Errorf("searches = %d, want 2 (slack is part of the front's identity)", n)
	}
	var tr, wr ParetoResponse
	if err := json.Unmarshal(tight, &tr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wide, &wr); err != nil {
		t.Fatal(err)
	}
	checkFrontInvariants(t, &wr)
	certifyResponse(t, slackBody, &wr)
	if len(wr.Front) < len(tr.Front) {
		t.Errorf("slack-3 front has %d members, slack-0 has %d", len(wr.Front), len(tr.Front))
	}
	if wr.Front[0].TotalTime != tr.Front[0].TotalTime {
		t.Errorf("slack window moved the time-optimal head: %d vs %d", wr.Front[0].TotalTime, tr.Front[0].TotalTime)
	}
	if wr.TimeBound != tr.TimeBound+3 {
		t.Errorf("time_bound = %d, want %d+3", wr.TimeBound, tr.TimeBound)
	}
}

// TestE2EParetoPermutationInvariance: an axis-permuted restatement of
// a cached problem is a cache hit whose front carries the identical
// objective-vector sequence — the metamorphic front-invariance oracle
// at the API boundary.
func TestE2EParetoPermutationInvariance(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 1})

	status, hdr, body := postJSON(t, srv.URL+"/v1/pareto", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "miss" {
		t.Fatalf("cold request: %d %q %s", status, hdr.Get("X-Mapserve-Cache"), body)
	}
	status, hdr, perm := postJSON(t, srv.URL+"/v1/pareto", e2ePerm)
	if status != 200 {
		t.Fatalf("permuted request: %d %s", status, perm)
	}
	if hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("permuted request cache = %q, want hit", hdr.Get("X-Mapserve-Cache"))
	}
	if n := svc.met.searches.Load(); n != 1 {
		t.Errorf("searches = %d, want 1", n)
	}

	var orig, permResp ParetoResponse
	if err := json.Unmarshal(body, &orig); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(perm, &permResp); err != nil {
		t.Fatal(err)
	}
	ov, pv := frontVectors(&orig), frontVectors(&permResp)
	if len(ov) != len(pv) {
		t.Fatalf("front sizes differ across the permutation: %d vs %d", len(ov), len(pv))
	}
	for i := range ov {
		if ov[i] != pv[i] {
			t.Errorf("member %d vector differs across the permutation: %+v vs %+v", i, ov[i], pv[i])
		}
	}
	if orig.TimeBound != permResp.TimeBound || orig.CanonicalKey != permResp.CanonicalKey {
		t.Errorf("time_bound/canonical_key differ: %d/%s vs %d/%s",
			orig.TimeBound, orig.CanonicalKey, permResp.TimeBound, permResp.CanonicalKey)
	}
	// The translated members must be valid in the *permuted* request's
	// own coordinates — the verifier re-derives every certificate there.
	checkFrontInvariants(t, &permResp)
	certifyResponse(t, e2ePerm, &permResp)

	// A fresh search of the restatement returns the cached translation
	// byte for byte.
	svc.FlushCache()
	status, hdr, fresh := postJSON(t, srv.URL+"/v1/pareto", e2ePerm)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "miss" {
		t.Fatalf("fresh permuted search: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	if !bytes.Equal(perm, fresh) {
		t.Errorf("cached and fresh permuted bodies differ:\n%s\n%s", perm, fresh)
	}
}

// TestE2EParetoBadRequests: malformed Pareto inputs map to 400 with a
// JSON error; knobs for an unselected mode are rejected, not ignored.
func TestE2EParetoBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 1})
	base := `"bounds":[2,3,4],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"dims":1`
	cases := []string{
		`{` + base + `,"mode":"pareto-ish"}`,
		`{` + base + `,"lex_order":["time"]}`,
		`{` + base + `,"mode":"lex","weights":{"time":1}}`,
		`{` + base + `,"mode":"weighted","lex_order":["time"]}`,
		`{` + base + `,"mode":"lex","lex_order":["time","latency"]}`,
		`{` + base + `,"mode":"weighted","weights":{"wires":1}}`,
		`{` + base + `,"time_slack":-1}`,
		`{` + base + `,"time_slack":65}`,
		`{` + base + `,"unknown_knob":1}`,
	}
	for _, c := range cases {
		status, _, body := postJSON(t, srv.URL+"/v1/pareto", c)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c, status, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body lacks error field: %s", c, body)
		}
	}
}

// paretoOwnerIndex resolves which node owns the Pareto key a request
// body describes (the composite key shards independently of the map
// key, so the map ownerIndex does not apply).
func (tc *testCluster) paretoOwnerIndex(t *testing.T, body string) int {
	t.Helper()
	var req ParetoRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	algo, dims, _, err := validateParetoRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	key := paretoCacheKey(Canonicalize(algo).Key, dims, &req)
	owner := tc.svcs[0].clu.ring.Owner(key)
	for i, m := range tc.members {
		if m.ID == owner.ID {
			return i
		}
	}
	t.Fatalf("owner %q is not a member", owner.ID)
	return -1
}

// TestClusterE2EPareto: front queries shard over the ring like map
// queries — a non-owner forwards, the owner searches once, and every
// later query anywhere answers from caches.
func TestClusterE2EPareto(t *testing.T) {
	tc := newTestCluster(t, 3)
	ownerIdx := tc.paretoOwnerIndex(t, e2eBody)
	nonOwners := make([]int, 0, 2)
	for i := range tc.svcs {
		if i != ownerIdx {
			nonOwners = append(nonOwners, i)
		}
	}

	// A non-owner forwards; the owner runs the cluster's only search.
	status, hdr, body := postJSON(t, tc.srvs[nonOwners[0]].URL+"/v1/pareto", e2ePerm)
	if status != 200 {
		t.Fatalf("forwarded request: %d %s", status, body)
	}
	if got := hdr.Get("X-Mapserve-Cache"); got != "peer_miss" {
		t.Errorf("forwarded request cache = %q, want peer_miss", got)
	}
	if n := tc.totalSearches(); n != 1 {
		t.Errorf("cluster ran %d searches, want 1", n)
	}
	if n := tc.svcs[ownerIdx].met.searches.Load(); n != 1 {
		t.Errorf("owner ran %d searches, want 1", n)
	}

	// The owner answers its own statement from cache.
	status, hdr, _ = postJSON(t, tc.srvs[ownerIdx].URL+"/v1/pareto", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Errorf("owner request: %d %q, want 200 hit", status, hdr.Get("X-Mapserve-Cache"))
	}

	// The second non-owner forwards and lands on the owner's cache.
	status, hdr, body2 := postJSON(t, tc.srvs[nonOwners[1]].URL+"/v1/pareto", e2ePerm)
	if status != 200 {
		t.Fatalf("second forwarded request: %d %s", status, body2)
	}
	if got := hdr.Get("X-Mapserve-Cache"); got != "peer_hit" {
		t.Errorf("second forwarded request cache = %q, want peer_hit", got)
	}
	if n := tc.totalSearches(); n != 1 {
		t.Errorf("cluster ran %d searches after three requests, want 1", n)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("identical forwarded requests returned different bodies:\n%s\n%s", body, body2)
	}

	// Both forwarded answers carry a certified, verifier-checked front
	// in their own request coordinates.
	var resp ParetoResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	checkFrontInvariants(t, &resp)
	certifyResponse(t, e2ePerm, &resp)
}

// TestPeerParetoFillRevalidation: a pushed front is re-certified
// before it enters the receiver's cache — a valid push is stored and
// served, a doctored vector is rejected.
func TestPeerParetoFillRevalidation(t *testing.T) {
	tc := newTestCluster(t, 2)
	svc := tc.svcs[1]

	var req ParetoRequest
	if err := json.Unmarshal([]byte(e2eBody), &req); err != nil {
		t.Fatal(err)
	}
	algo, dims, _, err := validateParetoRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	canon := Canonicalize(algo)
	key := paretoCacheKey(canon.Key, dims, &req)
	res, err := schedule.FindPareto(canon.Algo, dims, &schedule.ParetoOptions{
		Space: schedule.SpaceOptions{Schedule: schedule.Options{Workers: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	fill, err := svc.PeerParetoFill(context.Background(), &cluster.ParetoFillRequest{
		ParetoProblem: clusterParetoProblem(key, canon, dims, &req),
		Result:        *wireFromPareto(res),
	})
	if err != nil {
		t.Fatalf("valid fill rejected: %v", err)
	}
	if !fill.Stored {
		t.Error("valid fill not stored")
	}
	status, hdr, _ := postJSON(t, tc.srvs[1].URL+"/v1/pareto", e2eBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Errorf("filled front not served from cache: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	if n := svc.met.searches.Load(); n != 0 {
		t.Errorf("receiver searched %d times despite the fill", n)
	}

	// A doctored objective vector must not survive revalidation.
	doctored := *wireFromPareto(res)
	doctored.Members = append([]cluster.ParetoWireMember(nil), doctored.Members...)
	doctored.Members[0].Vector[2]++
	svc.FlushCache()
	if _, err := svc.PeerParetoFill(context.Background(), &cluster.ParetoFillRequest{
		ParetoProblem: clusterParetoProblem(key, canon, dims, &req),
		Result:        doctored,
	}); err == nil {
		t.Error("doctored fill accepted")
	}
	if n := svc.met.peerFillsRejected.Load(); n != 1 {
		t.Errorf("peerFillsRejected = %d, want 1", n)
	}
	if _, ok := svc.cache.Get(key); ok {
		t.Error("doctored front entered the cache")
	}
}

// TestE2EParetoCorpusReplay: a stratified sample of the committed
// corpus replays through the endpoint — feasible instances return a
// certified front whose time-optimal head reproduces the recorded
// optimum, infeasible instances stay 422.
func TestE2EParetoCorpusReplay(t *testing.T) {
	path := filepath.Join("..", "..", "corpus", "manifest.jsonl")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("committed manifest not present: %v", err)
	}
	_, insts, err := corpus.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, srv := newTestServer(t, Config{Pool: 2, SearchWorkers: 2})

	for _, inst := range corpus.Sample(insts, 10, 3) {
		req := ParetoRequest{
			Bounds:       inst.Bounds,
			Dependencies: inst.Dependencies,
			Dims:         inst.Dims,
			MaxEntry:     inst.MaxEntry,
			MaxCost:      inst.MaxCost,
		}
		body, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		status, _, out := postJSON(t, srv.URL+"/v1/pareto", string(body))
		if !inst.Feasible {
			if status != http.StatusUnprocessableEntity {
				t.Errorf("%s: infeasible instance answered %d (%s)", inst.ID, status, out)
			}
			continue
		}
		if status != 200 {
			t.Errorf("%s: status %d (%s)", inst.ID, status, out)
			continue
		}
		var resp ParetoResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		checkFrontInvariants(t, &resp)
		certifyResponse(t, string(body), &resp)
		if resp.Front[0].TotalTime != inst.TotalTime {
			t.Errorf("%s: pareto min-time member at %d, manifest recorded %d", inst.ID, resp.Front[0].TotalTime, inst.TotalTime)
		}
	}
}
