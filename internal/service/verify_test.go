package service

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"lodim/internal/intmat"
	"lodim/internal/uda"
	"lodim/internal/verify"
)

// A conflict-free mapping of the e2e instance (bounds [2,3,4], deps
// (1,0,0),(1,1,0),(0,1,1)): S = [0 0 1], Π = [1 3 1]. T's null space is
// spanned by (3,−1,0) and |3| > μ_1 = 2, so Theorem 2.2 certifies it.
const (
	verifyBody = `{"bounds":[2,3,4],"dependencies":[[1,0,0],[1,1,0],[0,1,1]],"s":[[0,0,1]],"pi":[1,3,1]}`
	// The same mapping under σ = (2,0,1) — new axis i is old axis σ[i] —
	// matching the e2ePerm restatement of the problem.
	verifyPermBody = `{"bounds":[4,2,3],"dependencies":[[0,1,0],[0,1,1],[1,0,1]],"s":[[1,0,0]],"pi":[1,1,3]}`
)

func verifyAlgo(t *testing.T, bounds []int64, deps [][]int64) *uda.Algorithm {
	t.Helper()
	d := intmat.New(len(bounds), len(deps))
	for c, dep := range deps {
		d.SetCol(c, dep)
	}
	algo := &uda.Algorithm{Name: "custom", Set: uda.IndexSet{Upper: bounds}, D: d}
	if err := algo.Validate(); err != nil {
		t.Fatal(err)
	}
	return algo
}

func TestVerifyEndpointE2E(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2})

	status, hdr, body := postJSON(t, srv.URL+"/v1/verify", verifyBody)
	if status != 200 {
		t.Fatalf("cold verify: %d %s", status, body)
	}
	if c := hdr.Get("X-Mapserve-Cache"); c != "miss" {
		t.Errorf("cold verify cache header = %q, want miss", c)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if !resp.Valid || resp.Certificate == nil || !resp.Certificate.Valid {
		t.Fatalf("valid mapping rejected: %s", body)
	}
	if !resp.Certificate.ConflictFree {
		t.Errorf("conflict-free mapping flagged conflicting")
	}
	if resp.Certificate.TotalTime != 16 {
		t.Errorf("total time = %d, want 16", resp.Certificate.TotalTime)
	}
	// The response certificate must check out against the request-order
	// mapping — this is what proves the canonical translation exact.
	algo := verifyAlgo(t, []int64{2, 3, 4}, [][]int64{{1, 0, 0}, {1, 1, 0}, {0, 1, 1}})
	if err := resp.Certificate.Check(algo, intmat.FromRows([]int64{0, 0, 1}), intmat.Vec(1, 3, 1)); err != nil {
		t.Errorf("response certificate fails Check: %v\n%s", err, body)
	}

	// Same request again: a certificate cache hit.
	status, hdr, body2 := postJSON(t, srv.URL+"/v1/verify", verifyBody)
	if status != 200 || hdr.Get("X-Mapserve-Cache") != "hit" {
		t.Fatalf("warm verify: %d %q", status, hdr.Get("X-Mapserve-Cache"))
	}
	if string(body) != string(body2) {
		t.Errorf("hit and miss bodies differ:\n%s\n%s", body, body2)
	}
	if hits, misses := svc.met.verifyCacheHits.Load(), svc.met.verifyCacheMisses.Load(); hits != 1 || misses != 1 {
		t.Errorf("verify cache hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

// TestVerifyPermutedVariantHitsCache is the service-level metamorphic
// test: an axis-permuted restatement of a certified mapping must hit
// the canonical certificate cache, and the translated certificate must
// check out against the restated coordinates.
func TestVerifyPermutedVariantHitsCache(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 2})

	status, _, body := postJSON(t, srv.URL+"/v1/verify", verifyBody)
	if status != 200 {
		t.Fatalf("cold verify: %d %s", status, body)
	}
	status, hdr, permBody := postJSON(t, srv.URL+"/v1/verify", verifyPermBody)
	if status != 200 {
		t.Fatalf("permuted verify: %d %s", status, permBody)
	}
	if c := hdr.Get("X-Mapserve-Cache"); c != "hit" {
		t.Errorf("permuted variant cache header = %q, want hit", c)
	}
	if n := svc.met.verifyCacheMisses.Load(); n != 1 {
		t.Errorf("verify cache misses = %d, want 1 (one engine run for both variants)", n)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(permBody, &resp); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, permBody)
	}
	if !resp.Valid {
		t.Fatalf("permuted valid mapping rejected: %s", permBody)
	}
	algo := verifyAlgo(t, []int64{4, 2, 3}, [][]int64{{0, 1, 0}, {0, 1, 1}, {1, 0, 1}})
	if err := resp.Certificate.Check(algo, intmat.FromRows([]int64{1, 0, 0}), intmat.Vec(1, 1, 3)); err != nil {
		t.Errorf("translated certificate fails Check in permuted coordinates: %v\n%s", err, permBody)
	}
}

// TestVerifyRejectsCorruptedMapping: a deliberately broken schedule is
// answered 200 with Valid=false and the failing witness named — the
// acceptance-criteria case.
func TestVerifyRejectsCorruptedMapping(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 2})

	body := `{"algorithm":"matmul","sizes":[2],"s":[[1,1,-1]],"pi":[1,-1,1]}`
	status, _, data := postJSON(t, srv.URL+"/v1/verify", body)
	if status != 200 {
		t.Fatalf("corrupted mapping: %d %s", status, data)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if resp.Valid {
		t.Fatalf("corrupted mapping accepted: %s", data)
	}
	if resp.FailedWitness != verify.WitnessSchedule {
		t.Errorf("failed witness = %q, want %q", resp.FailedWitness, verify.WitnessSchedule)
	}
	// A conflicting (but schedule-valid) mapping names the conflict
	// witness instead.
	body = `{"algorithm":"matmul","sizes":[2],"pi":[1,1,1]}`
	status, _, data = postJSON(t, srv.URL+"/v1/verify", body)
	if status != 200 {
		t.Fatalf("conflicting mapping: %d %s", status, data)
	}
	resp = VerifyResponse{}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Valid || resp.FailedWitness != verify.WitnessConflict {
		t.Errorf("conflicting mapping: valid=%v witness=%q, want %q", resp.Valid, resp.FailedWitness, verify.WitnessConflict)
	}
	if len(resp.Certificate.ConflictWitness) == 0 {
		t.Errorf("conflict rejection carries no witness vector: %s", data)
	}
}

func TestVerifyBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Config{Pool: 1})
	cases := []string{
		`{"algorithm":"matmul","sizes":[2],"pi":[1,1]}`,               // Π too short
		`{"algorithm":"matmul","sizes":[2],"s":[[1,1]],"pi":[1,1,1]}`, // S row too short
		`{"pi":[1,1,1]}`, // no algorithm
		`{"algorithm":"matmul","sizes":[2],"pi":[1,1,1],"x":1}`, // unknown field
	}
	for _, body := range cases {
		if status, _, data := postJSON(t, srv.URL+"/v1/verify", body); status != 400 {
			t.Errorf("body %s: status %d (%s), want 400", body, status, data)
		}
	}
}

// TestVerifyConcurrent hammers the endpoint from many goroutines over a
// mixed workload — the -race gate for the certificate cache path.
func TestVerifyConcurrent(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pool: 4})
	bodies := []string{verifyBody, verifyPermBody,
		`{"algorithm":"matmul","sizes":[2],"s":[[1,1,-1]],"pi":[1,2,1]}`,
		`{"algorithm":"matmul","sizes":[2],"pi":[1,1,1]}`,
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				status, _, data := postJSON(t, srv.URL+"/v1/verify", bodies[(w+i)%len(bodies)])
				if status != 200 {
					t.Errorf("concurrent verify: %d %s", status, data)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := svc.met.verifyRequests.Load(); got != 48 {
		t.Errorf("verify requests = %d, want 48", got)
	}
	// Three canonical classes (the permuted body shares verifyBody's): at
	// least one engine run each, and every other request resolves from
	// the cache (a few concurrent first requests may race past the
	// double-checked lookup).
	if hits, misses := svc.met.verifyCacheHits.Load(), svc.met.verifyCacheMisses.Load(); hits+misses != 48 || misses < 3 {
		t.Errorf("verify cache hits/misses = %d/%d, want 48 total with >=3 misses", hits, misses)
	}
}

// TestVerifyServiceMethodDirect exercises the Go-level method,
// including shutdown refusal.
func TestVerifyServiceMethodDirect(t *testing.T) {
	svc := New(Config{Pool: 1})
	req := &VerifyRequest{Algorithm: "matmul", Sizes: []int64{2}, S: [][]int64{{1, 1, -1}}, Pi: []int64{1, 2, 1}}
	resp, status, err := svc.VerifyMapping(context.Background(), req)
	if err != nil {
		t.Fatalf("VerifyMapping: %v", err)
	}
	if !resp.Valid || status != CacheMiss {
		t.Fatalf("valid=%v status=%q, want valid miss", resp.Valid, status)
	}
	if !strings.HasPrefix(resp.CanonicalKey, "verify|") {
		t.Errorf("canonical key %q lacks the verify| prefix", resp.CanonicalKey)
	}
	svc.Close()
	if _, _, err := svc.VerifyMapping(context.Background(), req); err != ErrShuttingDown {
		t.Errorf("after Close: err = %v, want ErrShuttingDown", err)
	}
}
