package service

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded, thread-safe LRU map from canonical keys
// to search results. Values are stored in canonical coordinates and
// never mutated after insertion, so readers share them without copying.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and promotes the entry.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts or refreshes an entry, evicting the least recently used
// entry when the cache is full.
func (c *lruCache) Add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Flush drops every entry.
func (c *lruCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}
