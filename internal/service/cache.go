package service

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded, thread-safe LRU map from canonical keys
// to search results. Values are stored in canonical coordinates and
// never mutated after insertion, so readers share them without copying.
//
// Besides hit/miss (counted by the service), the cache tracks its own
// occupancy: entry count, cumulative evictions, and a bytes estimate
// supplied by the caller at Add time — the signals /metrics needs for
// shard-balance and sizing decisions.
type lruCache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions int64
	bytes     int64 // Σ size hints of resident entries
}

type lruEntry struct {
	key   string
	val   any
	bytes int64
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and promotes the entry.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts or refreshes an entry, evicting the least recently used
// entry when the cache is full. bytes is the caller's size estimate for
// the entry (see estimateResultBytes), folded into the occupancy gauge.
func (c *lruCache) Add(key string, val any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += bytes - e.bytes
		e.val, e.bytes = val, bytes
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, bytes: bytes})
	c.bytes += bytes
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		e := last.Value.(*lruEntry)
		delete(c.items, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the occupancy snapshot: resident entries, cumulative
// evictions (monotone across Flush), and the bytes estimate.
func (c *lruCache) Stats() (entries, evictions, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(c.ll.Len()), c.evictions, c.bytes
}

// Flush drops every entry. Flushed entries do not count as evictions —
// the eviction counter measures capacity pressure, not operator action.
func (c *lruCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
	c.bytes = 0
}
