package service

import (
	"fmt"
	"strings"
	"testing"
)

func TestTenantName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", tenantAnonymous},
		{"acme", "acme"},
		{"Team.A_1-x", "Team.A_1-x"},
		{"weird tenant{le=\"x\"}", "weird_tenant_le__x__"},
		{"tabs\tand\nnewlines", "tabs_and_newlines"},
		{strings.Repeat("a", 100), strings.Repeat("a", maxTenantNameLen)},
	}
	for _, c := range cases {
		if got := tenantName(c.in); got != c.want {
			t.Errorf("tenantName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTenantTableLRUOverflow(t *testing.T) {
	tt := newTenantTable(3)
	// Fill to capacity, then keep t0 warm and add a fourth: the coldest
	// (t1) must fold into "other" with its counters conserved.
	tt.observe("t0", tenantCounters{searchMillis: 10})
	tt.observe("t1", tenantCounters{cacheHits: 1, searchMillis: 20})
	tt.observe("t2", tenantCounters{})
	tt.observe("t0", tenantCounters{queueRejections: 1})
	tt.observe("t3", tenantCounters{})

	snap := tt.snapshot()
	byName := map[string]int64{}
	var totalReqs, totalMS int64
	for _, u := range snap {
		byName[u.Tenant] = u.Requests
		totalReqs += u.Requests
		totalMS += u.SearchMillis
	}
	if _, live := byName["t1"]; live {
		t.Error("t1 still live after eviction")
	}
	if byName[tenantOverflow] != 1 {
		t.Errorf("other requests = %d, want 1 (t1 folded in)", byName[tenantOverflow])
	}
	if totalReqs != 5 {
		t.Errorf("total requests = %d, want 5 (counters must be conserved)", totalReqs)
	}
	if totalMS != 30 {
		t.Errorf("total search ms = %d, want 30", totalMS)
	}
	if byName["t0"] != 2 {
		t.Errorf("t0 requests = %d, want 2", byName["t0"])
	}

	// A literal "other" tenant merges into the overflow bucket rather
	// than occupying an LRU slot.
	tt.observe(tenantOverflow, tenantCounters{})
	if got := len(tt.byName); got != 3 {
		t.Errorf("literal %q took an LRU slot (%d live entries)", tenantOverflow, got)
	}
}

func TestTenantTableTopK(t *testing.T) {
	tt := newTenantTable(16)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("t%d", i)
		for j := 0; j <= i; j++ {
			tt.observe(name, tenantCounters{})
		}
	}
	top := tt.topK(3)
	if len(top) != 3 {
		t.Fatalf("topK(3) returned %d entries", len(top))
	}
	for i, want := range []string{"t5", "t4", "t3"} {
		if top[i].Tenant != want {
			t.Errorf("topK[%d] = %s (%d reqs), want %s", i, top[i].Tenant, top[i].Requests, want)
		}
	}
	// Ties break by name for deterministic output.
	tt2 := newTenantTable(8)
	tt2.observe("b", tenantCounters{})
	tt2.observe("a", tenantCounters{})
	top2 := tt2.topK(2)
	if top2[0].Tenant != "a" || top2[1].Tenant != "b" {
		t.Errorf("tie order = %s, %s, want a, b", top2[0].Tenant, top2[1].Tenant)
	}
}
