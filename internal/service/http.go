package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"lodim/internal/cluster"
	"lodim/internal/jobs"
	"lodim/internal/schedule"
	"lodim/internal/trace"
)

// maxBodyBytes bounds request bodies; every valid problem within the
// service's dimension/dependence limits encodes far below this.
const maxBodyBytes = 1 << 20

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// NewHandler wires the service's endpoints:
//
//	POST /v1/map       — joint (S, Π) mapping search
//	POST /v1/pareto    — multi-objective search: the certified Pareto
//	                     front over (time, processors, buffers, links)
//	POST /v1/batch     — many map queries, one admission-shared request
//	POST /v1/conflict  — conflict-freeness decision
//	POST /v1/simulate  — systolic simulation
//	POST /v1/verify    — independent mapping certification
//	GET  /metrics      — Prometheus text exposition (with exemplars)
//	GET  /healthz      — liveness probe ("degraded" on an SLO breach,
//	                     503 only while shutting down)
//
// Fleet observability (served in every mode; single-node reports a
// one-node fleet):
//
//	GET /peer/v1/status    — this node's observability snapshot
//	GET /v1/cluster/status — fan-out to all peers, merged fleet view
//
// The async job tier (404 unless Config.Jobs is set):
//
//	POST   /v1/jobs              — submit a map/verify problem, get a job ID
//	GET    /v1/jobs/{id}         — poll status, events and result
//	GET    /v1/jobs/{id}/result  — the stored result, byte-identical to the
//	                               synchronous response for the same problem
//	GET    /v1/jobs/{id}/events  — stream state transitions (ndjson)
//	DELETE /v1/jobs/{id}         — cancel a queued or running job
//
// Clustered nodes additionally serve the peer protocol (the pareto
// legs mirror the map legs key-for-key):
//
//	POST /peer/v1/lookup        — owner-side answer for a forwarded problem
//	POST /peer/v1/fill          — best-effort cache push from a peer
//	POST /peer/v1/pareto/lookup — owner-side answer for a forwarded front
//	POST /peer/v1/pareto/fill   — best-effort front push from a peer
//
// Every POST endpoint runs inside the instrument wrapper, which owns
// the per-endpoint request counter (exactly one increment per request,
// on every path), the request ID, the stage timer, and the structured
// access-log line.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", s.instrument("map", s.handleMap))
	mux.HandleFunc("POST /v1/pareto", s.instrument("pareto", s.handlePareto))
	mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("POST /v1/conflict", s.instrument("conflict", s.handleConflict))
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/verify", s.instrument("verify", s.handleVerify))
	mux.HandleFunc("POST /v1/jobs", s.instrument("jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// The status legs are served even single-node: /v1/cluster/status
	// then reports a one-node fleet, so dashboards need no mode switch.
	mux.HandleFunc("GET "+cluster.StatusPath, s.instrument("peer_status", s.handlePeerStatus))
	mux.HandleFunc("GET /v1/cluster/status", s.instrument("cluster_status", s.handleClusterStatus))
	if s.clu != nil {
		mux.HandleFunc("POST "+cluster.LookupPath, s.instrument("peer_lookup", s.handlePeerLookup))
		mux.HandleFunc("POST "+cluster.FillPath, s.instrument("peer_fill", s.handlePeerFill))
		mux.HandleFunc("POST "+cluster.ParetoLookupPath, s.instrument("peer_pareto_lookup", s.handlePeerParetoLookup))
		mux.HandleFunc("POST "+cluster.ParetoFillPath, s.instrument("peer_pareto_fill", s.handlePeerParetoFill))
	}
	return mux
}

// obsWriter wraps the ResponseWriter to inject the observability
// headers at WriteHeader time (headers must precede the status line)
// and to remember the status for the access log.
type obsWriter struct {
	http.ResponseWriter
	timer       *reqTimer
	status      int
	traceparent string // response traceparent; empty when tracing is off
}

func (w *obsWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
		w.Header().Set("X-Mapserve-Request", w.timer.id)
		if th := w.timer.timingHeader(); th != "" {
			w.Header().Set("X-Mapserve-Timing", th)
		}
		if w.traceparent != "" {
			w.Header().Set("Traceparent", w.traceparent)
		}
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *obsWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps a POST handler with the per-request observability:
// one counter increment, a fresh request ID and stage timer threaded
// through the context, a root trace span (joining any W3C traceparent
// the caller sent), per-stage histogram ingestion, and one structured
// access-log line when a logger is configured. The trace id rides in
// the response Traceparent header and the access-log line, keyed to
// the same request id — one identity across all three surfaces.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	counter := s.met.requestCounter(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		counter.Add(1)
		start := time.Now()
		tm := newReqTimer(newRequestID())
		ctx := withTimer(r.Context(), tm)

		var root *trace.Span
		if s.tracer != nil {
			incomingTrace, incomingSpan, joined := trace.ParseTraceparent(r.Header.Get("Traceparent"))
			if !joined {
				incomingTrace = ""
			}
			ctx, root = s.tracer.StartRoot(ctx, endpoint, incomingTrace)
			root.SetStr("request_id", tm.id)
			if joined {
				root.SetStr("parent_span_id", incomingSpan)
			}
		}
		r = r.WithContext(ctx)
		ow := &obsWriter{ResponseWriter: w, timer: tm}
		if root != nil {
			ow.traceparent = trace.Traceparent(root.TraceID(), root.IDHex())
		}
		h(ow, r)
		status := ow.status
		if status == 0 {
			status = http.StatusOK
		}
		if root != nil {
			root.SetInt("status", int64(status))
			root.End() // completes the trace: sinks (ring, dir) fire here
		}
		s.met.observeTimer(tm)
		cache := ow.Header().Get("X-Mapserve-Cache")
		var tenant string
		if observedEndpoint(endpoint) {
			// Tenant accounting and the SLO engine watch only the public
			// sync endpoints: peer traffic carries no tenant, and status
			// polling must not dilute (or pollute) the latency objective.
			tenant = tenantName(r.Header.Get(TenantHeader))
			delta := tenantCounters{}
			if cache == string(CacheHit) || cache == string(CachePeerHit) {
				delta.cacheHits = 1
			}
			if status == http.StatusTooManyRequests {
				delta.queueRejections = 1
			}
			if d, ok := tm.duration(stageSearch); ok {
				delta.searchMillis = d.Milliseconds()
			}
			s.tenants.observe(tenant, delta)
			if s.slo != nil {
				s.slo.observe(status, time.Since(start))
			}
		}
		if s.cfg.Logger != nil {
			attrs := []any{
				slog.String("id", tm.id),
				slog.String("endpoint", endpoint),
				slog.Int("status", status),
				slog.Duration("total", time.Since(start)),
			}
			if root != nil {
				attrs = append(attrs, slog.String("trace", root.TraceID()))
			}
			if cache != "" {
				attrs = append(attrs, slog.String("cache", cache))
			}
			if tenant != "" {
				attrs = append(attrs, slog.String("tenant", tenant))
			}
			attrs = append(attrs, slog.Group("stages", tm.stageAttrs()...))
			s.cfg.Logger.Info("request", attrs...)
		}
	}
}

// observedEndpoint gates SLO observation and tenant accounting to the
// public synchronous endpoints.
func observedEndpoint(endpoint string) bool {
	switch endpoint {
	case "map", "pareto", "conflict", "simulate", "verify", "batch", "jobs":
		return true
	}
	return false
}

// contentTooLargeError marks a body that exceeded maxBodyBytes — mapped
// to 413, not 400: the request was never parsed, so "bad request"
// would misreport a size limit as a syntax problem.
type contentTooLargeError struct{ err error }

func (e *contentTooLargeError) Error() string { return e.err.Error() }
func (e *contentTooLargeError) Unwrap() error { return e.err }

// decodeJSON reads one strict JSON document into dst, rejecting unknown
// fields, trailing garbage, and oversized bodies. Oversized bodies
// surface as *contentTooLargeError (413); everything else is a 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	defer recordStage(r.Context(), stageDecode, time.Now())
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &contentTooLargeError{err: fmt.Errorf("service: request body exceeds %d bytes", mbe.Limit)}
		}
		return badRequest("service: invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("service: trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	if ow, ok := w.(*obsWriter); ok {
		defer func(start time.Time) {
			ow.timer.record(stageEncode, time.Since(start))
		}(time.Now())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// classifyError maps a service error to its HTTP status and an
// optional Retry-After pacing hint (0 = no hint), recording
// timeout/failure metrics as it goes. Shared by writeError and the
// batch endpoint's per-item statuses so the two surfaces can never
// disagree. The hint is a duration, not header text: the header's
// whole-second grammar rounds up (retryAfterHeader) while the batch
// items keep millisecond precision, so sub-second hints are neither
// truncated to "0" nor inflated a full second in the JSON.
func (s *Service) classifyError(err error) (status int, retryAfter time.Duration) {
	status = http.StatusInternalServerError
	var bad *BadRequestError
	var tooLarge *contentTooLargeError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.As(err, &tooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrOverloaded):
		// Queue pressure clears as fast as searches finish — retry soon.
		status = http.StatusTooManyRequests
		retryAfter = time.Second
	case errors.As(err, new(*jobs.QueueFullError)):
		// A tenant's job backlog drains at worker speed, not request
		// speed — hint a longer pause than plain admission pressure.
		status = http.StatusTooManyRequests
		retryAfter = 2 * time.Second
	case errors.Is(err, jobs.ErrNotFound), errors.Is(err, ErrJobsDisabled):
		status = http.StatusNotFound
	case errors.Is(err, jobs.ErrTerminal):
		status = http.StatusConflict
	case errors.Is(err, jobs.ErrClosed):
		status = http.StatusServiceUnavailable
		retryAfter = 2 * time.Second
	case errors.Is(err, ErrShuttingDown):
		// Shutdown never un-happens here; the hint sizes a client's pause
		// before trying a replacement or a restarted node.
		status = http.StatusServiceUnavailable
		retryAfter = 2 * time.Second
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
		s.met.timeouts.Add(1)
	case errors.Is(err, schedule.ErrNoSchedule):
		// The search completed and proved infeasibility within its
		// bounds — a definite answer about the problem, not a failure.
		status = http.StatusUnprocessableEntity
	default:
		s.met.failures.Add(1)
	}
	return status, retryAfter
}

// writeError renders a service error as its JSON error body, with the
// Retry-After header on backpressure statuses (429/503) so well-behaved
// clients — including cmd/maploadgen — pace their retries.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	status, retryAfter := s.classifyError(err)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", retryAfterHeader(retryAfter))
	}
	// A tenant-queue rejection tells the client *whose* queue is full
	// and how full, so a well-behaved client can pace per tenant rather
	// than globally.
	var qf *jobs.QueueFullError
	if errors.As(err, &qf) {
		writeJSON(w, status, queueFullBody{
			Error:      err.Error(),
			Tenant:     qf.Tenant,
			QueueDepth: qf.Depth,
			QueueLimit: qf.Limit,
		})
		return
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// queueFullBody is the extended 429 body for tenant-queue rejections.
type queueFullBody struct {
	Error      string `json:"error"`
	Tenant     string `json:"tenant"`
	QueueDepth int    `json:"queue_depth"`
	QueueLimit int    `json:"queue_limit"`
}

// retryAfterHeader renders a pacing hint in the header's whole-second
// grammar, rounding *up*: rounding down would turn a sub-second hint
// into "0" (an immediate-retry invitation) or silently shorten the
// intended pause.
func retryAfterHeader(d time.Duration) string {
	secs := (d + time.Second - 1) / time.Second
	return strconv.FormatInt(int64(secs), 10)
}

// withDeadline derives the request context honoring the body-supplied
// timeout clamped into the configured window.
func (s *Service) withDeadline(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.EffectiveTimeout(timeoutMS))
}

func (s *Service) handleMap(w http.ResponseWriter, r *http.Request) {
	var req MapRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, status, err := s.Map(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Cache status travels in a header so hit, miss and shared bodies
	// stay byte-identical for one problem.
	w.Header().Set("X-Mapserve-Cache", string(status))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handlePareto(w http.ResponseWriter, r *http.Request) {
	var req ParetoRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, status, err := s.Pareto(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("X-Mapserve-Cache", string(status))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handlePeerParetoLookup(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	var req cluster.ParetoLookupRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, err := s.PeerParetoLookup(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handlePeerParetoFill(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	var req cluster.ParetoFillRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, 0)
	defer cancel()
	resp, err := s.PeerParetoFill(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleConflict(w http.ResponseWriter, r *http.Request) {
	var req ConflictRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, 0)
	defer cancel()
	resp, err := s.Conflict(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, 0)
	defer cancel()
	resp, err := s.Simulate(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, status, err := s.VerifyMapping(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if status != "" {
		w.Header().Set("X-Mapserve-Cache", string(status))
	}
	// An invalid mapping is a definite answer, not an error: the body
	// carries the certificate with its named failing witness.
	writeJSON(w, http.StatusOK, resp)
}

// checkHop rejects peer requests whose hop count exceeds the protocol
// bound with 508 Loop Detected. Forwarding is structurally loop-free
// (peer-opened flights never forward), so a trip here means a buggy or
// misconfigured peer — failing loudly beats amplifying its traffic. A
// missing header is allowed (a human poking the endpoint with curl).
func (s *Service) checkHop(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get(cluster.HopHeader)
	if h == "" {
		return true
	}
	hops, err := strconv.Atoi(h)
	if err != nil {
		s.writeError(w, badRequest("service: malformed %s header %q", cluster.HopHeader, h))
		return false
	}
	if hops > cluster.MaxHops {
		writeJSON(w, http.StatusLoopDetected, errorBody{
			Error: fmt.Sprintf("service: peer request exceeded %d hop(s) — forwarding loop", cluster.MaxHops),
		})
		return false
	}
	return true
}

func (s *Service) handlePeerLookup(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	var req cluster.LookupRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	// The forwarder propagates its caller's budget in TimeoutMS; clamp
	// it into this node's window exactly like an origin request.
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, err := s.PeerLookup(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handlePeerFill(w http.ResponseWriter, r *http.Request) {
	if !s.checkHop(w, r) {
		return
	}
	var req cluster.FillRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, 0)
	defer cancel()
	resp, err := s.PeerFill(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WritePrometheus(w)
}

// handleHealthz reports the shared Status snapshot as JSON: probes key
// on the HTTP status (503 while shutting down), humans and tooling get
// uptime, build identity and runtime vitals — the same source the
// /debug/requests inspector renders. An SLO breach reports "degraded"
// in the body but stays 200: the process is alive and serving, and a
// liveness probe that restarts a breaching node would turn a latency
// incident into an availability one.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Status()
	code := http.StatusOK
	if st.Status == "shutting_down" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}
