package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lodim/internal/schedule"
)

// maxBodyBytes bounds request bodies; every valid problem within the
// service's dimension/dependence limits encodes far below this.
const maxBodyBytes = 1 << 20

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// NewHandler wires the service's endpoints:
//
//	POST /v1/map       — joint (S, Π) mapping search
//	POST /v1/conflict  — conflict-freeness decision
//	POST /v1/simulate  — systolic simulation
//	POST /v1/verify    — independent mapping certification
//	GET  /metrics      — Prometheus text exposition
//	GET  /healthz      — liveness probe
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("POST /v1/conflict", s.handleConflict)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// decodeJSON reads one strict JSON document into dst, rejecting unknown
// fields, trailing garbage, and oversized bodies.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("service: invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("service: trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps a service error to its HTTP status and JSON body,
// recording timeout/failure metrics as it goes.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var bad *BadRequestError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
		s.met.timeouts.Add(1)
	case errors.Is(err, schedule.ErrNoSchedule):
		// The search completed and proved infeasibility within its
		// bounds — a definite answer about the problem, not a failure.
		status = http.StatusUnprocessableEntity
	default:
		s.met.failures.Add(1)
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// withDeadline derives the request context honoring the body-supplied
// timeout clamped into the configured window.
func (s *Service) withDeadline(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.EffectiveTimeout(timeoutMS))
}

func (s *Service) handleMap(w http.ResponseWriter, r *http.Request) {
	var req MapRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.met.mapRequests.Add(1)
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, status, err := s.Map(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Cache status travels in a header so hit, miss and shared bodies
	// stay byte-identical for one problem.
	w.Header().Set("X-Mapserve-Cache", string(status))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleConflict(w http.ResponseWriter, r *http.Request) {
	var req ConflictRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.met.conflictRequests.Add(1)
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, 0)
	defer cancel()
	resp, err := s.Conflict(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.met.simulateRequests.Add(1)
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, 0)
	defer cancel()
	resp, err := s.Simulate(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.met.verifyRequests.Add(1)
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, status, err := s.VerifyMapping(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if status != "" {
		w.Header().Set("X-Mapserve-Cache", string(status))
	}
	// An invalid mapping is a definite answer, not an error: the body
	// carries the certificate with its named failing witness.
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WritePrometheus(w)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
