package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"lodim/internal/schedule"
	"lodim/internal/trace"
)

// maxBodyBytes bounds request bodies; every valid problem within the
// service's dimension/dependence limits encodes far below this.
const maxBodyBytes = 1 << 20

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// NewHandler wires the service's endpoints:
//
//	POST /v1/map       — joint (S, Π) mapping search
//	POST /v1/conflict  — conflict-freeness decision
//	POST /v1/simulate  — systolic simulation
//	POST /v1/verify    — independent mapping certification
//	GET  /metrics      — Prometheus text exposition
//	GET  /healthz      — liveness probe
//
// Every POST endpoint runs inside the instrument wrapper, which owns
// the per-endpoint request counter (exactly one increment per request,
// on every path), the request ID, the stage timer, and the structured
// access-log line.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", s.instrument("map", s.handleMap))
	mux.HandleFunc("POST /v1/conflict", s.instrument("conflict", s.handleConflict))
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/verify", s.instrument("verify", s.handleVerify))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// obsWriter wraps the ResponseWriter to inject the observability
// headers at WriteHeader time (headers must precede the status line)
// and to remember the status for the access log.
type obsWriter struct {
	http.ResponseWriter
	timer       *reqTimer
	status      int
	traceparent string // response traceparent; empty when tracing is off
}

func (w *obsWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
		w.Header().Set("X-Mapserve-Request", w.timer.id)
		if th := w.timer.timingHeader(); th != "" {
			w.Header().Set("X-Mapserve-Timing", th)
		}
		if w.traceparent != "" {
			w.Header().Set("Traceparent", w.traceparent)
		}
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *obsWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps a POST handler with the per-request observability:
// one counter increment, a fresh request ID and stage timer threaded
// through the context, a root trace span (joining any W3C traceparent
// the caller sent), per-stage histogram ingestion, and one structured
// access-log line when a logger is configured. The trace id rides in
// the response Traceparent header and the access-log line, keyed to
// the same request id — one identity across all three surfaces.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	counter := s.met.requestCounter(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		counter.Add(1)
		start := time.Now()
		tm := newReqTimer(newRequestID())
		ctx := withTimer(r.Context(), tm)

		var root *trace.Span
		if s.tracer != nil {
			incomingTrace, incomingSpan, joined := trace.ParseTraceparent(r.Header.Get("Traceparent"))
			if !joined {
				incomingTrace = ""
			}
			ctx, root = s.tracer.StartRoot(ctx, endpoint, incomingTrace)
			root.SetStr("request_id", tm.id)
			if joined {
				root.SetStr("parent_span_id", incomingSpan)
			}
		}
		r = r.WithContext(ctx)
		ow := &obsWriter{ResponseWriter: w, timer: tm}
		if root != nil {
			ow.traceparent = trace.Traceparent(root.TraceID(), root.IDHex())
		}
		h(ow, r)
		status := ow.status
		if status == 0 {
			status = http.StatusOK
		}
		if root != nil {
			root.SetInt("status", int64(status))
			root.End() // completes the trace: sinks (ring, dir) fire here
		}
		s.met.observeTimer(tm)
		if s.cfg.Logger != nil {
			attrs := []any{
				slog.String("id", tm.id),
				slog.String("endpoint", endpoint),
				slog.Int("status", status),
				slog.Duration("total", time.Since(start)),
			}
			if root != nil {
				attrs = append(attrs, slog.String("trace", root.TraceID()))
			}
			if cache := ow.Header().Get("X-Mapserve-Cache"); cache != "" {
				attrs = append(attrs, slog.String("cache", cache))
			}
			attrs = append(attrs, slog.Group("stages", tm.stageAttrs()...))
			s.cfg.Logger.Info("request", attrs...)
		}
	}
}

// contentTooLargeError marks a body that exceeded maxBodyBytes — mapped
// to 413, not 400: the request was never parsed, so "bad request"
// would misreport a size limit as a syntax problem.
type contentTooLargeError struct{ err error }

func (e *contentTooLargeError) Error() string { return e.err.Error() }
func (e *contentTooLargeError) Unwrap() error { return e.err }

// decodeJSON reads one strict JSON document into dst, rejecting unknown
// fields, trailing garbage, and oversized bodies. Oversized bodies
// surface as *contentTooLargeError (413); everything else is a 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	defer recordStage(r.Context(), stageDecode, time.Now())
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &contentTooLargeError{err: fmt.Errorf("service: request body exceeds %d bytes", mbe.Limit)}
		}
		return badRequest("service: invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("service: trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	if ow, ok := w.(*obsWriter); ok {
		defer func(start time.Time) {
			ow.timer.record(stageEncode, time.Since(start))
		}(time.Now())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps a service error to its HTTP status and JSON body,
// recording timeout/failure metrics as it goes.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var bad *BadRequestError
	var tooLarge *contentTooLargeError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.As(err, &tooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
		s.met.timeouts.Add(1)
	case errors.Is(err, schedule.ErrNoSchedule):
		// The search completed and proved infeasibility within its
		// bounds — a definite answer about the problem, not a failure.
		status = http.StatusUnprocessableEntity
	default:
		s.met.failures.Add(1)
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// withDeadline derives the request context honoring the body-supplied
// timeout clamped into the configured window.
func (s *Service) withDeadline(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.EffectiveTimeout(timeoutMS))
}

func (s *Service) handleMap(w http.ResponseWriter, r *http.Request) {
	var req MapRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, status, err := s.Map(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Cache status travels in a header so hit, miss and shared bodies
	// stay byte-identical for one problem.
	w.Header().Set("X-Mapserve-Cache", string(status))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleConflict(w http.ResponseWriter, r *http.Request) {
	var req ConflictRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, 0)
	defer cancel()
	resp, err := s.Conflict(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, 0)
	defer cancel()
	resp, err := s.Simulate(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.withDeadline(r, req.TimeoutMS)
	defer cancel()
	resp, status, err := s.VerifyMapping(ctx, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if status != "" {
		w.Header().Set("X-Mapserve-Cache", string(status))
	}
	// An invalid mapping is a definite answer, not an error: the body
	// carries the certificate with its named failing witness.
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WritePrometheus(w)
}

// handleHealthz reports the shared Status snapshot as JSON: probes key
// on the HTTP status (503 while shutting down), humans and tooling get
// uptime, build identity and runtime vitals — the same source the
// /debug/requests inspector renders.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Status()
	code := http.StatusOK
	if st.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}
