package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"
)

// The per-request stage taxonomy (DESIGN.md §9). Every request passes
// through decode and encode; canonicalize/translate apply to the
// endpoints that move between request and canonical coordinates (map,
// verify); queue and search wrap the pool wait and the engine call.
const (
	stageDecode = iota
	stageCanonicalize
	stageQueue
	stageForward // clustered only: the wait on the key owner's answer
	stageSearch
	stageTranslate
	stageEncode
	numStages
)

// stageNames indexes the taxonomy for headers, metrics and logs.
var stageNames = [numStages]string{"decode", "canonicalize", "queue", "forward", "search", "translate", "encode"}

// reqTimer accumulates one request's stage durations. Writes go through
// atomics because a map flight outlives a leader that timed out: the
// flight goroutine may still be recording the search stage while the
// handler renders headers and the access-log line. Durations are stored
// as nanoseconds + 1 so zero means "stage never ran" (a stage that ran
// in 0ns still renders).
type reqTimer struct {
	id string
	ns [numStages]atomic.Int64
}

func newReqTimer(id string) *reqTimer { return &reqTimer{id: id} }

// record stores d for the stage; repeated records accumulate (e.g. the
// two cache probes around a pool wait). The first record contributes an
// extra +1 marker via CAS so the encoding stays consistent under
// concurrent recorders.
func (t *reqTimer) record(stage int, d time.Duration) {
	if t == nil {
		return
	}
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	for {
		cur := t.ns[stage].Load()
		next := cur + n
		if cur == 0 {
			next = n + 1
		}
		if t.ns[stage].CompareAndSwap(cur, next) {
			return
		}
	}
}

// duration returns the recorded duration and whether the stage ran.
func (t *reqTimer) duration(stage int) (time.Duration, bool) {
	if t == nil {
		return 0, false
	}
	n := t.ns[stage].Load()
	if n == 0 {
		return 0, false
	}
	return time.Duration(n - 1), true
}

// timingHeader renders the recorded stages in Server-Timing syntax:
// "decode;dur=0.041, search;dur=12.532" (dur in milliseconds).
func (t *reqTimer) timingHeader() string {
	var b strings.Builder
	for stage := 0; stage < numStages; stage++ {
		d, ok := t.duration(stage)
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", stageNames[stage], float64(d.Nanoseconds())/1e6)
	}
	return b.String()
}

// stageAttrs renders the recorded stages as slog attributes
// ("<stage>_ms" keys), for the access-log line.
func (t *reqTimer) stageAttrs() []any {
	attrs := make([]any, 0, numStages)
	for stage := 0; stage < numStages; stage++ {
		d, ok := t.duration(stage)
		if !ok {
			continue
		}
		attrs = append(attrs, slog.Float64(stageNames[stage]+"_ms", float64(d.Nanoseconds())/1e6))
	}
	return attrs
}

// timerKey carries the reqTimer through contexts. The singleflight
// layer builds flight contexts with context.WithoutCancel(ctx), which
// preserves values — so the flight leader's timer is visible inside
// runSearch even though the flight outlives the leader's deadline.
type timerKey struct{}

func withTimer(ctx context.Context, t *reqTimer) context.Context {
	return context.WithValue(ctx, timerKey{}, t)
}

// timerFrom returns the request timer, or nil when the context carries
// none (direct Service calls outside the HTTP layer).
func timerFrom(ctx context.Context) *reqTimer {
	t, _ := ctx.Value(timerKey{}).(*reqTimer)
	return t
}

// recordStage records elapsed time since start for the context's timer,
// if any. The helper keeps call sites one line:
//
//	defer recordStage(ctx, stageSearch, time.Now())
func recordStage(ctx context.Context, stage int, start time.Time) {
	timerFrom(ctx).record(stage, time.Since(start))
}

// newRequestID returns a 16-hex-digit random request identifier.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; degrade to
		// a counter so requests stay distinguishable.
		return fmt.Sprintf("fallback-%d", fallbackID.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Int64
